// Command scand is the SCAN scheduler daemon: it serves the HTTP RPC
// interface (jobs, knowledge-base queries, status) and executes submitted
// analyses on a local worker pool — the Go equivalent of the paper's
// CherryPy prototype.
//
// Usage:
//
//	scand [-addr :7390] [-pool N] [-executors N] [-retain N]
//	      [-data-dir DIR] [-max-datasets N] [-max-dataset-mb N]
//	      [-tenants FILE]
//	      [-fleet-token T] [-fleet-scaling predictive] [-fleet-baseline N]
//	      [-quiet]
//	scand -role worker -join http://coordinator:7390 [-name NODE]
//	      [-pool N] [-fleet-token T] [-quiet]
//
// scand serves /api/v1 (the original flat RPC surface, kept
// wire-compatible) and /api/v2 (resource-oriented jobs with cancellation,
// paginated listing, SSE event streams, the dataset registry, resumable
// uploads, and the worker-fleet endpoints). -retain bounds how many
// finished jobs the store keeps before evicting the oldest; -max-datasets
// and -max-dataset-mb bound the dataset registry the same retention-style
// way; -quiet suppresses the per-request access log.
//
// -data-dir makes the data plane durable: uploaded datasets live in a
// content-addressed blob store under DIR and survive restarts, datasets
// over the -max-dataset-mb memory budget spill to disk instead of being
// rejected, and the knowledge base's accumulated run telemetry is
// WAL-logged and snapshotted under DIR/kb, replayed on the next start.
// Without it every byte is heap-resident and dies with the process.
//
// -tenants names a JSON file of API-key tenants (docs/SERVING.md); the
// SCAN_TENANTS environment variable carries the same JSON inline when no
// flag is given. With tenants configured, /api/v2 requires a tenant key
// and enforces per-tenant rate limits and quotas; without, v2 stays open
// exactly as before (and /api/v1 is never authenticated either way).
//
// -pool sizes the local shard pool (it was called -workers before the
// daemon grew remote workers; the old name still works, deprecated).
//
// With -role worker the daemon runs no HTTP server of its own: it joins
// the coordinator named by -join, pulls shard work over /api/v2/fleet, and
// executes it through the same engine path the coordinator's local pool
// uses. -fleet-scaling and -fleet-baseline pick the coordinator's
// horizontal-scaling policy (see docs/FLEET.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"scan/internal/core"
	"scan/internal/fleet"
	"scan/internal/registry"
	"scan/internal/rpc"
	"scan/internal/scheduler"
	"scan/internal/tenant"
)

func main() {
	var (
		addr       = flag.String("addr", ":7390", "listen address (serve role)")
		pool       = flag.Int("pool", runtime.GOMAXPROCS(0), "local shard pool width (per job in serve role, per worker in worker role)")
		poolOld    = flag.Int("workers", 0, "deprecated alias for -pool")
		executors  = flag.Int("executors", 2, "concurrent jobs")
		retain     = flag.Int("retain", rpc.DefaultRetention, "finished jobs kept before eviction")
		dataDir    = flag.String("data-dir", "", "durable state directory (blob store, dataset manifest, knowledge WAL); empty keeps all state in memory")
		maxDS      = flag.Int("max-datasets", registry.DefaultMaxDatasets, "registered datasets kept before eviction")
		maxDSMB    = flag.Int64("max-dataset-mb", registry.DefaultMaxBytes>>20, "registered dataset bytes kept resident before eviction (MiB; with -data-dir the overflow spills to disk)")
		role       = flag.String("role", "serve", `"serve" (coordinator daemon) or "worker" (join a fleet)`)
		join       = flag.String("join", "", "coordinator base URL to join (worker role)")
		name       = flag.String("name", "", "worker name on the roster (worker role; default hostname)")
		tenantFile = flag.String("tenants", "", "JSON tenants file enabling v2 API-key admission (or inline JSON via SCAN_TENANTS)")
		fleetToken = flag.String("fleet-token", "", "shared token for the fleet control and blob endpoints")
		scaling    = flag.String("fleet-scaling", "always", `worker-hire policy: "always", "never" or "predictive"`)
		baseline   = flag.Int("fleet-baseline", 1, "workers engaged without economic justification (predictive scaling)")
		quiet      = flag.Bool("quiet", false, "suppress the per-request access log")
	)
	flag.Parse()

	workersSet := false
	flag.Visit(func(f *flag.Flag) { workersSet = workersSet || f.Name == "workers" })
	if workersSet {
		log.Printf("scand: -workers is deprecated, use -pool")
		*pool = *poolOld
	}

	logf := log.Printf
	if *quiet {
		logf = nil
	}

	switch *role {
	case "worker":
		runWorker(*join, *name, *fleetToken, *pool, logf)
		return
	case "serve":
	default:
		log.Fatalf("scand: unknown -role %q (want serve or worker)", *role)
	}

	var policy scheduler.ScalingPolicy
	switch *scaling {
	case "always":
		policy = scheduler.AlwaysScale
	case "never":
		policy = scheduler.NeverScale
	case "predictive":
		policy = scheduler.PredictiveScale
	default:
		log.Fatalf("scand: unknown -fleet-scaling %q (want always, never or predictive)", *scaling)
	}

	tenants, err := loadTenants(*tenantFile)
	if err != nil {
		log.Fatalf("scand: %v", err)
	}

	platform, err := core.OpenPlatform(core.Options{
		Workers:  *pool,
		DataDir:  *dataDir,
		Registry: registry.Options{MaxDatasets: *maxDS, MaxBytes: *maxDSMB << 20},
		Logf:     log.Printf, // persistence warnings matter even under -quiet
	})
	if err != nil {
		log.Fatalf("scand: %v", err)
	}
	defer platform.Close()
	server := rpc.NewServerOptions(platform, rpc.ServerOptions{
		Executors: *executors,
		Retention: *retain,
		Tenants:   tenants,
		Logf:      logf,
		Fleet: fleet.NewCoordinator(fleet.Options{
			Token:      *fleetToken,
			Scaling:    policy,
			Allocation: scheduler.LongTermAdaptive,
			Baseline:   *baseline,
			Logf:       logf,
			Blobs:      platform.Datasets().Blobs(),
		}),
	})
	defer server.Close()

	httpServer := &http.Server{Addr: *addr, Handler: server.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "scand: shutting down")
		_ = httpServer.Close()
	}()
	if *dataDir != "" {
		log.Printf("scand: durable state under %s", *dataDir)
	}
	if tenants != nil {
		log.Printf("scand: v2 admission enabled for %d tenants", len(tenants.Tenants()))
	}
	log.Printf("scand: listening on %s (%d pool, %d executors, %s scaling)", *addr, *pool, *executors, policy)
	if err := httpServer.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("scand: %v", err)
	}
}

// loadTenants resolves the tenant configuration: the -tenants file when
// given, otherwise inline JSON from SCAN_TENANTS, otherwise nil (tenancy
// off — the open-daemon default).
func loadTenants(path string) (*tenant.Registry, error) {
	if path != "" {
		return tenant.Load(path)
	}
	if raw := os.Getenv("SCAN_TENANTS"); raw != "" {
		return tenant.Parse([]byte(raw))
	}
	return nil, nil
}

// runWorker joins a coordinator's fleet and pulls shard work until
// interrupted.
func runWorker(join, name, token string, slots int, logf func(string, ...any)) {
	if join == "" {
		log.Fatal("scand: -role worker needs -join <coordinator URL>")
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		fmt.Fprintln(os.Stderr, "scand: worker shutting down")
		cancel()
		// A second interrupt (or a hung drain) exits hard.
		select {
		case <-sig:
		case <-time.After(30 * time.Second):
		}
		os.Exit(1)
	}()
	log.Printf("scand: worker joining %s (%d slots)", join, slots)
	if err := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: join,
		Token:       token,
		Name:        name,
		Slots:       slots,
		Logf:        logf,
	}).Run(ctx); err != nil && err != context.Canceled {
		log.Fatalf("scand: worker: %v", err)
	}
}
