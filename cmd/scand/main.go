// Command scand is the SCAN scheduler daemon: it serves the HTTP RPC
// interface (jobs, knowledge-base queries, status) and executes submitted
// analyses on a local worker pool — the Go equivalent of the paper's
// CherryPy prototype.
//
// Usage:
//
//	scand [-addr :7390] [-workers N] [-executors N] [-retain N]
//	      [-max-datasets N] [-max-dataset-mb N] [-quiet]
//
// scand serves /api/v1 (the original flat RPC surface, kept
// wire-compatible) and /api/v2 (resource-oriented jobs with cancellation,
// paginated listing, SSE event streams, and the dataset registry —
// streaming uploads jobs reference by id instead of shipping records per
// submission). -retain bounds how many finished jobs the store keeps
// before evicting the oldest; -max-datasets and -max-dataset-mb bound the
// dataset registry the same retention-style way (oldest unreferenced
// datasets are evicted to admit new uploads); -quiet suppresses the
// per-request access log.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"

	"scan/internal/core"
	"scan/internal/registry"
	"scan/internal/rpc"
)

func main() {
	var (
		addr      = flag.String("addr", ":7390", "listen address")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "pipeline workers per job")
		executors = flag.Int("executors", 2, "concurrent jobs")
		retain    = flag.Int("retain", rpc.DefaultRetention, "finished jobs kept before eviction")
		maxDS     = flag.Int("max-datasets", registry.DefaultMaxDatasets, "registered datasets kept before eviction")
		maxDSMB   = flag.Int64("max-dataset-mb", registry.DefaultMaxBytes>>20, "registered dataset bytes kept before eviction (MiB)")
		quiet     = flag.Bool("quiet", false, "suppress the per-request access log")
	)
	flag.Parse()

	logf := log.Printf
	if *quiet {
		logf = nil
	}
	platform := core.NewPlatform(core.Options{
		Workers:  *workers,
		Datasets: registry.NewStore(registry.Options{MaxDatasets: *maxDS, MaxBytes: *maxDSMB << 20}),
	})
	server := rpc.NewServerOptions(platform, rpc.ServerOptions{
		Executors: *executors,
		Retention: *retain,
		Logf:      logf,
	})
	defer server.Close()

	httpServer := &http.Server{Addr: *addr, Handler: server.Handler()}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Fprintln(os.Stderr, "scand: shutting down")
		_ = httpServer.Close()
	}()
	log.Printf("scand: listening on %s (%d workers, %d executors)", *addr, *workers, *executors)
	if err := httpServer.ListenAndServe(); err != http.ErrServerClosed {
		log.Fatalf("scand: %v", err)
	}
}
