// Command benchguard is CI's Data Broker performance gate: it compares a
// freshly produced BENCH_broker.json trajectory against the committed
// baseline and exits non-zero when any guarded entry (advice or ingest
// ns/op) regresses past the allowance.
//
//	cp BENCH_broker.json /tmp/baseline.json
//	go test -run '^$' -bench Broker -benchtime 20000x .
//	benchguard -baseline /tmp/baseline.json -current BENCH_broker.json
package main

import (
	"flag"
	"fmt"
	"os"

	"scan/internal/benchguard"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed trajectory to compare against")
	currentPath := flag.String("current", "BENCH_broker.json", "freshly benchmarked trajectory")
	maxRegression := flag.Float64("max-regression", 0.30, "allowed ns/op slowdown (0.30 = +30%)")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	baseline, err := benchguard.Load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := benchguard.Load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	cs, err := benchguard.Compare(baseline, current, *maxRegression)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	for _, c := range cs {
		status := "ok"
		if c.Regressed {
			status = "REGRESSED"
		}
		fmt.Printf("%-28s baseline %12.2f ns/op  current %12.2f ns/op  %6.2fx  %s\n",
			c.Name, c.BaselineNs, c.CurrentNs, c.Ratio, status)
	}
	if regs := benchguard.Regressions(cs); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d guarded entries regressed past +%.0f%%\n",
			len(regs), *maxRegression*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %d guarded entries within +%.0f%%\n", len(cs), *maxRegression*100)
}
