// Command benchguard is CI's performance gate: it compares a freshly
// produced benchmark trajectory against the committed baseline and exits
// non-zero when any guarded entry regresses past the allowance. The default
// guards are the Data Broker's (advice/, ingest/ in BENCH_broker.json);
// -guard selects other families, e.g. the workflow engine's makespan
// trajectory:
//
//	cp BENCH_broker.json /tmp/baseline.json
//	go test -run '^$' -bench Broker -benchtime 20000x .
//	benchguard -baseline /tmp/baseline.json -current BENCH_broker.json
//
//	cp BENCH_engine.json /tmp/engine-baseline.json
//	go test -run '^$' -bench EnginePipelined .
//	benchguard -baseline /tmp/engine-baseline.json -current BENCH_engine.json -guard engine/
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scan/internal/benchguard"
)

func main() {
	baselinePath := flag.String("baseline", "", "committed trajectory to compare against")
	currentPath := flag.String("current", "BENCH_broker.json", "freshly benchmarked trajectory")
	maxRegression := flag.Float64("max-regression", 0.30, "allowed ns/op slowdown (0.30 = +30%)")
	guard := flag.String("guard", "", "comma-separated guarded name prefixes (default: advice/,ingest/)")
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "benchguard: -baseline is required")
		os.Exit(2)
	}
	baseline, err := benchguard.Load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	current, err := benchguard.Load(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	var prefixes []string
	for _, p := range strings.Split(*guard, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	cs, err := benchguard.Compare(baseline, current, *maxRegression, prefixes...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	for _, c := range cs {
		status := "ok"
		if c.Regressed {
			status = "REGRESSED"
		}
		fmt.Printf("%-28s baseline %12.2f ns/op  current %12.2f ns/op  %6.2fx  %s\n",
			c.Name, c.BaselineNs, c.CurrentNs, c.Ratio, status)
	}
	if regs := benchguard.Regressions(cs); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d guarded entries regressed past +%.0f%%\n",
			len(regs), *maxRegression*100)
		os.Exit(1)
	}
	fmt.Printf("benchguard: all %d guarded entries within +%.0f%%\n", len(cs), *maxRegression*100)
}
