// Command scanvet runs the platform's invariant analyzer suite
// (internal/invariant) over Go packages: project-specific vet passes that
// mechanically enforce the carry-forward invariants — cancellation polls
// in executor loops, the *Locked calling convention, streaming executors
// routing Execute through runStreamBarrier, the registry zero-copy rule,
// and the knowledge base's Flush-before-read telemetry barrier. See
// docs/ANALYSIS.md.
//
// Usage:
//
//	scanvet [-run name,name] [-list] [packages]
//
// With no packages, ./... is checked. Exit status 1 means findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"golang.org/x/tools/go/analysis"

	"scan/internal/invariant"
	"scan/internal/invariant/load"
)

func main() {
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the suite's analyzers and exit")
	flag.Parse()

	suite := invariant.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *runNames != "" {
		keep := make(map[string]bool)
		for _, n := range strings.Split(*runNames, ",") {
			keep[strings.TrimSpace(n)] = true
		}
		var filtered []*analysis.Analyzer
		for _, a := range suite {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for n := range keep {
			fmt.Fprintf(os.Stderr, "scanvet: unknown analyzer %q (see -list)\n", n)
			os.Exit(2)
		}
		suite = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanvet:", err)
		os.Exit(2)
	}
	pkgs, err := load.Packages(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanvet:", err)
		os.Exit(2)
	}
	diags, err := load.Run(pkgs, suite)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scanvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "scanvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
