// Command scanctl is the client for scand, speaking the v2 job API
// (cancellation, event streaming, paginated listing) plus the shared
// knowledge-base endpoints.
//
// Usage:
//
//	scanctl [-addr http://localhost:7390] [-api-key KEY] status
//	scanctl workflows
//	scanctl workers
//	scanctl submit -ref 20000 -reads 4000 -snvs 12 -seed 7 [-wait]
//	scanctl submit -workflow somatic-mutation-detection -reads 4000 [-wait]
//	scanctl submit -reads 4000 -read-length 150 -error-rate 0 [-wait]
//	scanctl submit -spectra 400 -proteins 20 [-wait]
//	scanctl submit -images 4 -cells 6 [-wait]
//	scanctl submit -genes 200 -modules 5 [-wait]
//	scanctl dataset upload -name sample1 -family fastq -data reads.fq [-reference ref.fa] [-resume]
//	scanctl dataset upload -name acq1 -family mgf -peptides db.txt -spectra scans.mgf
//	scanctl dataset list
//	scanctl dataset rm <id|name>
//	scanctl submit -dataset sample1 [-wait]
//	scanctl submit -dataset reads-only -reference grch-toy [-wait]
//	scanctl jobs [-state done] [-workflow NAME] [-limit 20] [-page TOKEN]
//	scanctl job <id>
//	scanctl watch <id>
//	scanctl cancel <id>
//	scanctl profiles
//	scanctl query 'PREFIX scan: <...> SELECT ?app WHERE { ... }'
//	scanctl export rdfxml
//
// Submitting a named workflow runs any catalogued analysis through the
// daemon's workflow engine; `scanctl workflows` lists the catalogue, whose
// four data-process families are all executable. The flags pick the
// dataset family: the default is synthetic sequencing reads, -spectra /
// -proteins generate a proteomic (MGF) dataset, -images / -cells a
// microscopy (TIFF) dataset, and -genes / -modules an integrative
// feature-table dataset — each defaulting to its family's canonical
// workflow when -workflow is not given. Naming a workflow without any
// family flag also works: the client looks up the workflow's consumed
// data type in the catalogue and generates a matching dataset, so
// `scanctl submit -workflow proteome-gpm -wait` runs with default
// spectra instead of shipping reads the workflow would reject.
//
// `scanctl watch` (and `submit -wait`) subscribes to the job's server-sent
// event stream instead of polling: state transitions and per-stage
// completions print as the daemon reports them, e.g.
//
//	scanctl submit -workflow rna-expression -reads 6000 -wait
//	job 3 running
//	job 3   stage Align            4 shards  0.11s
//	job 3   stage Quantify         8 shards  0.02s
//	job 3 done ...
//
// `scanctl cancel` stops a job: immediately when it is still queued, by
// cancelling its run context when it is already executing. `scanctl jobs`
// pages through the daemon's bounded job store; pass the printed next-page
// token back via -page to continue a listing.
//
// `scanctl dataset upload` streams local files into the daemon's dataset
// registry (FASTQ reads, a FASTA reference genome, MGF spectra plus their
// peptide database, PGM-encoded frames, or a feature table; "-" reads
// stdin), after which `submit -dataset NAME` runs any number of jobs over
// the one stored copy — no records ride along the submission. A registered
// reference genome (family "reference") is named via `submit -reference`,
// so the same genome serves every read set uploaded after it.
//
// `scanctl workers` prints the daemon's fleet roster (GET /api/v2/workers):
// every scand worker process that joined via `-role worker -join`, its
// engagement state and shard counts, plus the dispatch queue depth and the
// coordinator's hire/redispatch metrics. An empty roster means jobs run on
// the daemon's local pool.
//
// Against a daemon running with -tenants, pass the tenant's API key via
// -api-key or the SCAN_API_KEY environment variable (docs/SERVING.md);
// without it the daemon answers 401 on every /api/v2 request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"scan/internal/rpc"
)

func main() {
	addr := flag.String("addr", "http://localhost:7390", "scand base URL")
	apiKey := flag.String("api-key", os.Getenv("SCAN_API_KEY"), "tenant API key for daemons running -tenants (env SCAN_API_KEY)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var opts []rpc.ClientOption
	if *apiKey != "" {
		opts = append(opts, rpc.WithAPIKey(*apiKey))
	}
	client := rpc.NewClient(*addr, opts...)
	ctx := context.Background()
	var err error
	switch args[0] {
	case "status":
		err = cmdStatus(ctx, client)
	case "submit":
		err = cmdSubmit(ctx, client, args[1:])
	case "jobs":
		err = cmdJobs(ctx, client, args[1:])
	case "job":
		if len(args) < 2 {
			usage()
		}
		err = cmdJob(ctx, client, args[1])
	case "watch":
		if len(args) < 2 {
			usage()
		}
		err = cmdWatch(ctx, client, args[1])
	case "cancel":
		if len(args) < 2 {
			usage()
		}
		err = cmdCancel(ctx, client, args[1])
	case "dataset":
		if len(args) < 2 {
			usage()
		}
		err = cmdDataset(ctx, client, args[1], args[2:])
	case "workflows":
		err = cmdWorkflows(ctx, client)
	case "workers":
		err = cmdWorkers(ctx, client)
	case "profiles":
		err = cmdProfiles(ctx, client)
	case "query":
		if len(args) < 2 {
			usage()
		}
		err = cmdQuery(ctx, client, args[1])
	case "export":
		format := "turtle"
		if len(args) > 1 {
			format = args[1]
		}
		err = cmdExport(ctx, client, format)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scanctl [-addr URL] <status|workflows|workers|submit|dataset upload|list|rm|jobs|job ID|watch ID|cancel ID|profiles|query SPARQL|export [turtle|rdfxml]>")
	os.Exit(2)
}

func parseID(idStr string) (int, error) {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return 0, fmt.Errorf("bad job id %q", idStr)
	}
	return id, nil
}

func cmdStatus(ctx context.Context, c *rpc.Client) error {
	st, err := c.Status(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("workers %d  pending %d  running %d  completed %d  failed %d  run-logs %d  run-logs-pending %d\n",
		st.Workers, st.Pending, st.Running, st.Completed, st.Failed, st.RunLogs, st.RunLogsPending)
	return nil
}

func cmdSubmit(ctx context.Context, c *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	workflowName := fs.String("workflow", "", "catalogued workflow to run (default: the dataset family's canonical analysis; see `scanctl workflows`)")
	refLen := fs.Int("ref", 20000, "synthetic reference length (bases)")
	reads := fs.Int("reads", 4000, "simulated read count")
	snvs := fs.Int("snvs", 12, "planted SNVs")
	seed := fs.Int64("seed", 1, "dataset seed")
	shardRecs := fs.Int("shard-records", 0, "records per shard (0 = knowledge base decides)")
	readLen := fs.Int("read-length", rpc.DefaultReadLength, "simulated read length (bases)")
	errRate := fs.Float64("error-rate", rpc.DefaultErrorRate, "per-base sequencing error rate (0 = error-free reads)")
	spectra := fs.Int("spectra", 400, "proteomic: simulated MS/MS spectra (selects the MGF dataset family)")
	proteins := fs.Int("proteins", 20, "proteomic: synthetic proteins in the peptide database (selects the MGF dataset family)")
	images := fs.Int("images", 2, "imaging: microscopy frames (selects the TIFF dataset family)")
	cells := fs.Int("cells", 6, "imaging: planted cells per frame (selects the TIFF dataset family)")
	genes := fs.Int("genes", 200, "integrative: gene measurements (selects the feature-table dataset family)")
	modules := fs.Int("modules", 4, "integrative: planted modules (selects the feature-table dataset family)")
	dataset := fs.String("dataset", "", "registered dataset (id or name) to run over instead of generating data")
	reference := fs.String("reference", "", "registered reference genome (id or name) for sequencing submissions")
	wait := fs.Bool("wait", false, "stream the job's events until it finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *reference != "" && *dataset == "" {
		// Without this, the reference would be silently dropped and the
		// job run against a freshly generated synthetic genome.
		return fmt.Errorf("-reference requires -dataset (a registered read set to run against the named genome)")
	}
	// A registered dataset is its own source: the daemon already knows its
	// family, so none of the generation flags apply.
	if *dataset != "" {
		job, err := c.CreateJob(ctx, rpc.SubmitJobRequest{
			Workflow:     *workflowName,
			Dataset:      *dataset,
			Reference:    *reference,
			ShardRecords: *shardRecs,
		})
		if err != nil {
			return err
		}
		fmt.Printf("job %d (%s) submitted (%s) over dataset %s\n", job.ID, job.Workflow, job.State, job.Dataset)
		if !*wait {
			return nil
		}
		return watchJob(ctx, c, job.ID)
	}
	// The dataset family follows the flags the user actually passed; with
	// only -workflow given, it follows the catalogue's consumed data type
	// instead of silently shipping reads a non-genomic workflow rejects.
	consumes := ""
	switch {
	case set["spectra"] || set["proteins"]:
		consumes = "MGF"
	case set["images"] || set["cells"]:
		consumes = "TIFF"
	case set["genes"] || set["modules"]:
		consumes = "FeatureTable"
	case *workflowName != "":
		wfs, err := c.Workflows(ctx)
		if err != nil {
			return err
		}
		for _, wf := range wfs {
			if wf.Name == *workflowName {
				consumes = wf.Consumes
				break
			}
		}
		// An unknown name submits as FASTQ and gets the server's
		// machine-readable "not found".
	}
	req := rpc.SubmitJobRequest{Workflow: *workflowName, ShardRecords: *shardRecs}
	switch consumes {
	case "MGF":
		req.Proteome = &rpc.ProteomeSpec{Proteins: *proteins, Spectra: *spectra, Seed: *seed}
	case "TIFF":
		req.Imaging = &rpc.ImagingSpec{Images: *images, CellsPerImage: *cells, Seed: *seed}
	case "FeatureTable":
		req.Network = &rpc.NetworkSpec{Genes: *genes, Modules: *modules, Seed: *seed}
	default:
		spec := &rpc.SyntheticSpec{
			ReferenceLength: *refLen,
			Reads:           *reads,
			SNVs:            *snvs,
			Seed:            *seed,
		}
		// Only explicitly passed flags go on the wire: the daemon
		// distinguishes "absent" from "zero" (an explicit -error-rate 0
		// means error-free reads, not "use the default").
		if set["read-length"] {
			spec.ReadLength = readLen
		}
		if set["error-rate"] {
			spec.ErrorRate = errRate
		}
		req.Synthetic = spec
	}
	job, err := c.CreateJob(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("job %d (%s) submitted (%s)\n", job.ID, job.Workflow, job.State)
	if !*wait {
		return nil
	}
	return watchJob(ctx, c, job.ID)
}

// watchJob follows a job's event stream, printing transitions and stage
// completions, then the final record.
func watchJob(ctx context.Context, c *rpc.Client, id int) error {
	final, err := c.Watch(ctx, id, func(ev rpc.JobEvent) {
		switch ev.Type {
		case rpc.EventStage:
			fmt.Printf("job %d   stage %-18s %3d shards  %.2fs\n",
				id, ev.Stage.Name, ev.Stage.Shards, ev.Stage.ElapsedSec)
		case rpc.EventState:
			if !ev.State.Terminal() {
				fmt.Printf("job %d %s\n", id, ev.State)
			}
		}
	})
	if err != nil {
		return err
	}
	printJob(final)
	return nil
}

func cmdJobs(ctx context.Context, c *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("jobs", flag.ExitOnError)
	state := fs.String("state", "", "filter by state (pending|running|done|failed|canceled)")
	workflowName := fs.String("workflow", "", "filter by workflow name")
	limit := fs.Int("limit", 0, "page size (default 100)")
	page := fs.String("page", "", "continuation token from a previous listing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pageRes, err := c.ListJobs(ctx, rpc.ListJobsOptions{
		State:     rpc.JobState(*state),
		Workflow:  *workflowName,
		Limit:     *limit,
		PageToken: *page,
	})
	if err != nil {
		return err
	}
	for _, j := range pageRes.Jobs {
		printJob(j)
	}
	if pageRes.NextPageToken != "" {
		fmt.Printf("next page: scanctl jobs -page %s\n", pageRes.NextPageToken)
	}
	return nil
}

func cmdJob(ctx context.Context, c *rpc.Client, idStr string) error {
	id, err := parseID(idStr)
	if err != nil {
		return err
	}
	job, err := c.GetJob(ctx, id)
	if err != nil {
		return err
	}
	printJob(job)
	if job.Result != nil {
		for _, st := range job.Result.Stages {
			fmt.Printf("  stage %-18s %3d shards  %.2fs\n", st.Name, st.Shards, st.ElapsedSec)
		}
	}
	return nil
}

func cmdWatch(ctx context.Context, c *rpc.Client, idStr string) error {
	id, err := parseID(idStr)
	if err != nil {
		return err
	}
	return watchJob(ctx, c, id)
}

func cmdCancel(ctx context.Context, c *rpc.Client, idStr string) error {
	id, err := parseID(idStr)
	if err != nil {
		return err
	}
	job, err := c.Cancel(ctx, id)
	if err != nil {
		return err
	}
	if job.State == rpc.StateCanceled {
		fmt.Printf("job %d canceled\n", job.ID)
	} else {
		fmt.Printf("job %d cancel requested (still %s; `scanctl watch %d` follows it)\n",
			job.ID, job.State, job.ID)
	}
	return nil
}

// jobFamily classifies a done job for rendering: the server reports the
// catalogue family on the Job resource; against an older daemon without
// the field, fall back to sniffing the executing tools — never output
// counts, since a zero-hit proteomic or imaging run must still print as
// its own family.
func jobFamily(j rpc.Job) string {
	if j.Family != "" {
		return j.Family
	}
	for _, st := range j.Result.Stages {
		switch st.Tool {
		case "MaxQuant", "GPM":
			return "proteomic"
		case "CellProfiler":
			return "imaging"
		case "Cytoscape":
			return "integrative"
		}
	}
	return "genomic"
}

func printJob(j rpc.Job) {
	switch j.State {
	case rpc.StateDone:
		r := j.Result
		switch jobFamily(j) {
		case "integrative":
			fmt.Printf("job %d %-8s %-26s nodes %d  edges %d  modules %d  shards %d  %.2fs\n",
				j.ID, j.State, j.Workflow, r.Nodes, r.Edges, r.Modules, r.Shards, r.ElapsedSec)
		case "proteomic":
			fmt.Printf("job %d %-8s %-26s spectra %d  proteins %d  shards %d  %.2fs\n",
				j.ID, j.State, j.Workflow, r.TotalRecords, r.Proteins, r.Shards, r.ElapsedSec)
		case "imaging":
			fmt.Printf("job %d %-8s %-26s images %d  cells %d  shards %d  %.2fs\n",
				j.ID, j.State, j.Workflow, r.TotalRecords, r.Features, r.Shards, r.ElapsedSec)
		default:
			fmt.Printf("job %d %-8s %-26s mapped %d/%d  variants %d  features %d  recovered %d/%d  shards %d  %.2fs\n",
				j.ID, j.State, j.Workflow, r.Mapped, r.TotalReads, r.Variants, r.Features,
				r.Recovered, r.Planted, r.Shards, r.ElapsedSec)
		}
	case rpc.StateFailed, rpc.StateCanceled:
		fmt.Printf("job %d %-8s %-26s %s: %s\n",
			j.ID, j.State, j.Workflow, j.Error.Code, j.Error.Message)
	default:
		fmt.Printf("job %d %-8s %-26s\n", j.ID, j.State, j.Workflow)
	}
}

// cmdDataset drives the dataset registry: upload streams local files into
// the daemon (multipart, decoded record by record server-side), list and
// rm manage the bounded store.
func cmdDataset(ctx context.Context, c *rpc.Client, sub string, args []string) error {
	switch sub {
	case "upload":
		return cmdDatasetUpload(ctx, c, args)
	case "list":
		infos, err := c.Datasets(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-20s %-14s %9s %12s  %s\n", "id", "name", "family", "records", "bytes", "hash")
		for _, d := range infos {
			fam := d.Family
			if d.Reference && d.Family == "fastq" {
				fam += "+ref"
			}
			fmt.Printf("%-8s %-20s %-14s %9d %12d  %.12s…\n", d.ID, d.Name, fam, d.Records, d.Bytes, d.Hash)
		}
		return nil
	case "rm":
		if len(args) < 1 {
			usage()
		}
		d, err := c.DeleteDataset(ctx, args[0])
		if err != nil {
			return err
		}
		fmt.Printf("dataset %s (%s) deleted\n", d.ID, d.Name)
		return nil
	default:
		usage()
		return nil
	}
}

func cmdDatasetUpload(ctx context.Context, c *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("dataset upload", flag.ExitOnError)
	name := fs.String("name", "", "unique dataset name (required)")
	family := fs.String("family", "", "dataset family: fastq, mgf, tiff, feature-table or reference (required)")
	data := fs.String("data", "", "data file: FASTQ reads, PGM frames, feature rows, or the FASTA reference ('-' = stdin)")
	refFile := fs.String("reference", "", "fastq only: FASTA reference to embed alongside the reads")
	peptides := fs.String("peptides", "", "mgf only: peptide database file")
	spectra := fs.String("spectra", "", "mgf only: MGF scan file")
	resume := fs.Bool("resume", false, "use the resumable session API: survive disconnects and continue an interrupted upload without re-sending verified bytes (files only, no stdin)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *name == "" || *family == "" {
		return fmt.Errorf("dataset upload needs -name and -family")
	}
	var parts []rpc.UploadPart
	var seekable []rpc.SeekablePart
	var closers []io.Closer
	defer func() {
		for _, cl := range closers {
			cl.Close()
		}
	}()
	add := func(field, path string) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			if *resume {
				// Resume re-reads the local prefix to verify the server's
				// running hash; a pipe cannot be re-read.
				return fmt.Errorf("-resume needs seekable files, not stdin (-%s -)", field)
			}
			parts = append(parts, rpc.UploadPart{Field: field, R: os.Stdin})
			return nil
		}
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		closers = append(closers, f)
		parts = append(parts, rpc.UploadPart{Field: field, R: f})
		seekable = append(seekable, rpc.SeekablePart{Field: field, R: f})
		return nil
	}
	// Part order matters for fastq+reference only in that both must arrive;
	// the daemon accepts either order.
	for _, p := range []struct{ field, path string }{
		{"reference", *refFile}, {"data", *data}, {"peptides", *peptides}, {"spectra", *spectra},
	} {
		if err := add(p.field, p.path); err != nil {
			return err
		}
	}
	if len(parts) == 0 {
		return fmt.Errorf("dataset upload needs a data source (-data, or -peptides/-spectra for mgf)")
	}
	var d rpc.DatasetInfo
	var err error
	if *resume {
		d, err = c.UploadDatasetResumable(ctx, *name, *family, seekable...)
	} else {
		d, err = c.UploadDataset(ctx, *name, *family, parts...)
	}
	if err != nil {
		return err
	}
	fmt.Printf("dataset %s (%s, %s) stored: %d records, %d bytes, sha256 %.12s…\n",
		d.ID, d.Name, d.Family, d.Records, d.Bytes, d.Hash)
	return nil
}

func cmdWorkflows(ctx context.Context, c *rpc.Client) error {
	wfs, err := c.Workflows(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-12s %-12s %-14s %6s  %s\n",
		"name", "family", "consumes", "produces", "stages", "runnable")
	for _, wf := range wfs {
		runnable := "yes"
		if !wf.Runnable {
			runnable = "no (" + wf.Reason + ")"
		}
		fmt.Printf("%-28s %-12s %-12s %-14s %6d  %s\n",
			wf.Name, wf.Family, wf.Consumes, wf.Produces, len(wf.Stages), runnable)
	}
	return nil
}

func cmdWorkers(ctx context.Context, c *rpc.Client) error {
	roster, err := c.Workers(ctx)
	if err != nil {
		return err
	}
	if len(roster.Workers) == 0 {
		fmt.Println("no workers registered (start one with: scand -role worker -join <coordinator URL>)")
		return nil
	}
	fmt.Printf("%-6s %-16s %-22s %-8s %5s %8s %6s  %s\n",
		"id", "name", "addr", "state", "slots", "inflight", "done", "heartbeat")
	for _, ws := range roster.Workers {
		fmt.Printf("%-6s %-16s %-22s %-8s %5d %8d %6d  %dms ago\n",
			ws.ID, ws.Name, ws.Addr, ws.State, ws.Slots, ws.Inflight, ws.ShardsDone, ws.LastHeartbeatMS)
	}
	m := roster.Metrics
	fmt.Printf("queued %d  hires %d  releases %d  dispatched %d  redispatched %d  completed %d  duplicates %d  remote-stages %d\n",
		roster.Queued, m.Hires, m.Releases, m.Dispatched, m.Redispatched, m.Completed, m.DuplicatesDiscarded, m.RemoteStages)
	return nil
}

func cmdProfiles(ctx context.Context, c *rpc.Client) error {
	ps, err := c.Profiles(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %6s %5s %5s %8s\n", "name", "input", "steps", "ram", "cpu", "etime")
	for _, p := range ps {
		fmt.Printf("%-10s %10.1f %6d %5d %5d %8.1f\n",
			p.Name, p.InputFileSize, p.Steps, p.RAM, p.CPU, p.ETime)
	}
	return nil
}

func cmdExport(ctx context.Context, c *rpc.Client, format string) error {
	doc, err := c.Export(ctx, format)
	if err != nil {
		return err
	}
	fmt.Print(doc)
	return nil
}

func cmdQuery(ctx context.Context, c *rpc.Client, q string) error {
	res, err := c.Query(ctx, q)
	if err != nil {
		return err
	}
	fmt.Println("?" + strings.Join(res.Vars, "\t?"))
	for _, row := range res.Rows {
		vals := make([]string, len(res.Vars))
		for i, v := range res.Vars {
			vals[i] = row[v]
		}
		fmt.Println(strings.Join(vals, "\t"))
	}
	return nil
}
