// Command scanctl is the client for scand.
//
// Usage:
//
//	scanctl [-addr http://localhost:7390] status
//	scanctl workflows
//	scanctl submit -ref 20000 -reads 4000 -snvs 12 -seed 7 [-wait]
//	scanctl submit -workflow somatic-mutation-detection -reads 4000 [-wait]
//	scanctl submit -reads 4000 -read-length 150 -error-rate 0 [-wait]
//	scanctl jobs
//	scanctl job <id>
//	scanctl profiles
//	scanctl query 'PREFIX scan: <...> SELECT ?app WHERE { ... }'
//	scanctl export rdfxml
//
// Submitting a named workflow runs any catalogued genomic analysis through
// the daemon's workflow engine; `scanctl workflows` lists the catalogue
// and marks which entries the engine can execute. For example,
//
//	scanctl workflows
//	scanctl submit -workflow rna-expression -ref 20000 -reads 6000 -wait
//
// runs the RNA-seq expression workflow (align → quantify) end to end and
// prints the per-region feature count when it completes.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"scan/internal/rpc"
)

func main() {
	addr := flag.String("addr", "http://localhost:7390", "scand base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	client := rpc.NewClient(*addr)
	ctx := context.Background()
	var err error
	switch args[0] {
	case "status":
		err = cmdStatus(ctx, client)
	case "submit":
		err = cmdSubmit(ctx, client, args[1:])
	case "jobs":
		err = cmdJobs(ctx, client)
	case "job":
		if len(args) < 2 {
			usage()
		}
		err = cmdJob(ctx, client, args[1])
	case "workflows":
		err = cmdWorkflows(ctx, client)
	case "profiles":
		err = cmdProfiles(ctx, client)
	case "query":
		if len(args) < 2 {
			usage()
		}
		err = cmdQuery(ctx, client, args[1])
	case "export":
		format := "turtle"
		if len(args) > 1 {
			format = args[1]
		}
		err = cmdExport(ctx, client, format)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "scanctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: scanctl [-addr URL] <status|workflows|submit|jobs|job ID|profiles|query SPARQL|export [turtle|rdfxml]>")
	os.Exit(2)
}

func cmdStatus(ctx context.Context, c *rpc.Client) error {
	st, err := c.Status(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("workers %d  pending %d  running %d  completed %d  failed %d  run-logs %d\n",
		st.Workers, st.Pending, st.Running, st.Completed, st.Failed, st.RunLogs)
	return nil
}

func cmdSubmit(ctx context.Context, c *rpc.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	workflowName := fs.String("workflow", "", "catalogued workflow to run (default dna-variant-detection; see `scanctl workflows`)")
	refLen := fs.Int("ref", 20000, "synthetic reference length (bases)")
	reads := fs.Int("reads", 4000, "simulated read count")
	snvs := fs.Int("snvs", 12, "planted SNVs")
	seed := fs.Int64("seed", 1, "dataset seed")
	shardRecs := fs.Int("shard-records", 0, "records per shard (0 = knowledge base decides)")
	readLen := fs.Int("read-length", rpc.DefaultReadLength, "simulated read length (bases)")
	errRate := fs.Float64("error-rate", rpc.DefaultErrorRate, "per-base sequencing error rate (0 = error-free reads)")
	wait := fs.Bool("wait", false, "block until the job finishes")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := rpc.SubmitRequest{
		Workflow:        *workflowName,
		ReferenceLength: *refLen,
		Reads:           *reads,
		SNVs:            *snvs,
		Seed:            *seed,
		ShardRecords:    *shardRecs,
	}
	// Only explicitly passed flags go on the wire: the daemon distinguishes
	// "absent" from "zero" (an explicit -error-rate 0 means error-free
	// reads, not "use the default").
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "read-length":
			req.ReadLength = readLen
		case "error-rate":
			req.ErrorRate = errRate
		}
	})
	info, err := c.Submit(ctx, req)
	if err != nil {
		return err
	}
	fmt.Printf("job %d (%s) submitted (%s)\n", info.ID, info.Workflow, info.State)
	if !*wait {
		return nil
	}
	done, err := c.Wait(ctx, info.ID, 200*time.Millisecond)
	if err != nil {
		return err
	}
	printJob(done)
	return nil
}

func cmdJobs(ctx context.Context, c *rpc.Client) error {
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return err
	}
	for _, j := range jobs {
		printJob(j)
	}
	return nil
}

func cmdJob(ctx context.Context, c *rpc.Client, idStr string) error {
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return fmt.Errorf("bad job id %q", idStr)
	}
	info, err := c.Job(ctx, id)
	if err != nil {
		return err
	}
	printJob(info)
	return nil
}

func printJob(j rpc.JobInfo) {
	name := j.Workflow // always set by the server at submit time
	switch j.State {
	case rpc.StateDone:
		fmt.Printf("job %d %-8s %-26s mapped %d/%d  variants %d  features %d  recovered %d/%d  shards %d  %.2fs\n",
			j.ID, j.State, name, j.Mapped, j.TotalReads, j.Variants, j.Features,
			j.Recovered, j.Planted, j.Shards, j.ElapsedSec)
	case rpc.StateFailed:
		fmt.Printf("job %d %-8s %-26s error: %s\n", j.ID, j.State, name, j.Error)
	default:
		fmt.Printf("job %d %-8s %-26s\n", j.ID, j.State, name)
	}
}

func cmdWorkflows(ctx context.Context, c *rpc.Client) error {
	wfs, err := c.Workflows(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-28s %-12s %-12s %-14s %6s  %s\n",
		"name", "family", "consumes", "produces", "stages", "runnable")
	for _, wf := range wfs {
		runnable := "yes"
		if !wf.Runnable {
			runnable = "no (" + wf.Reason + ")"
		}
		fmt.Printf("%-28s %-12s %-12s %-14s %6d  %s\n",
			wf.Name, wf.Family, wf.Consumes, wf.Produces, len(wf.Stages), runnable)
	}
	return nil
}

func cmdProfiles(ctx context.Context, c *rpc.Client) error {
	ps, err := c.Profiles(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %10s %6s %5s %5s %8s\n", "name", "input", "steps", "ram", "cpu", "etime")
	for _, p := range ps {
		fmt.Printf("%-10s %10.1f %6d %5d %5d %8.1f\n",
			p.Name, p.InputFileSize, p.Steps, p.RAM, p.CPU, p.ETime)
	}
	return nil
}

func cmdExport(ctx context.Context, c *rpc.Client, format string) error {
	doc, err := c.Export(ctx, format)
	if err != nil {
		return err
	}
	fmt.Print(doc)
	return nil
}

func cmdQuery(ctx context.Context, c *rpc.Client, q string) error {
	res, err := c.Query(ctx, q)
	if err != nil {
		return err
	}
	for _, v := range res.Vars {
		fmt.Printf("?%s\t", v)
	}
	fmt.Println()
	for _, row := range res.Rows {
		for _, v := range res.Vars {
			fmt.Printf("%s\t", row[v])
		}
		fmt.Println()
	}
	return nil
}
