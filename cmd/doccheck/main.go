// Command doccheck is CI's docs gate: it checks every relative markdown
// link in the repository's *.md files (root + docs/) resolves to a real
// file, and that every package under internal/, cmd/ and examples/ has a
// package comment. Findings print one per line and fail the run.
//
// Usage:
//
//	doccheck [-root DIR]
package main

import (
	"flag"
	"fmt"
	"os"

	"scan/internal/doccheck"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	problems, err := doccheck.Run(*root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
		os.Exit(1)
	}
	for _, p := range problems {
		fmt.Println(p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("doccheck: ok")
}
