package main

// Serving-load mode: scansim doubles as the load generator for a live
// scand. It replays mixed-family traffic — synthetic submissions from all
// four analysis families, upload-once-run-many dataset jobs, SSE watch
// streams, and a sprinkling of cancellations — at several concurrency
// levels, and writes the measured latency/throughput trajectory to a
// benchguard artifact (BENCH_serving.json). With -hostile-key it repeats
// every level while a hostile over-quota tenant hammers admission, so the
// artifact also records what isolation costs the compliant tenant.
//
// The guarded entries live under serving/p99/; the contended (hostile)
// and p50/throughput entries are informational context. CI regenerates
// the artifact against a freshly started daemon and gates on the guarded
// prefix (see .github/workflows/ci.yml and docs/SERVING.md).

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"scan/internal/rpc"
)

// loadConfig carries the -load flags.
type loadConfig struct {
	addr       string
	levels     []int
	jobs       int // operations per concurrency level
	repeats    int // passes per level; min-of-N damps scheduler noise
	apiKey     string
	hostileKey string
	out        string
	seed       int64
}

// loadEntry is one trajectory measurement, benchguard's Entry shape plus
// the sample count.
type loadEntry struct {
	Name    string  `json:"name"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
}

// loadReport is the BENCH_serving.json artifact.
type loadReport struct {
	Benchmark  string      `json:"benchmark"`
	Note       string      `json:"note"`
	Levels     []int       `json:"levels"`
	Jobs       int         `json:"jobs_per_level"`
	Repeats    int         `json:"passes_per_level"`
	Trajectory []loadEntry `json:"trajectory"`
}

// phaseStats is what one concurrency level measures: submit→terminal
// latencies of completed jobs, the cancellation count, and the phase wall
// time for throughput.
type phaseStats struct {
	latencies []time.Duration
	canceled  int
	elapsed   time.Duration
}

func runLoad(cfg loadConfig) {
	if err := waitHealthy(cfg.addr, 30*time.Second); err != nil {
		fmt.Fprintf(os.Stderr, "scansim: %v\n", err)
		os.Exit(1)
	}
	var opts []rpc.ClientOption
	if cfg.apiKey != "" {
		opts = append(opts, rpc.WithAPIKey(cfg.apiKey))
	}
	c := rpc.NewClient(cfg.addr, opts...)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()

	dataset, err := ensureLoadDataset(ctx, c, cfg.seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scansim: seeding the run-many dataset: %v\n", err)
		os.Exit(1)
	}

	report := loadReport{
		Benchmark: "serving-load",
		Note: "Mixed-family traffic (4 synthetic families + upload-once-run-many dataset jobs, " +
			"SSE-watched to terminal, ~1/7 canceled mid-flight) against a live scand. ns_per_op is " +
			"submit→terminal latency (p50/p99) or wall time per completed job (throughput), " +
			"min over the repeated passes per level (min-of-N, as the broker benchmarks dampen " +
			"noise). contended/* entries repeat the level while a hostile over-quota tenant " +
			"hammers admission; only serving/p99/* is guarded by CI.",
		Levels:  cfg.levels,
		Jobs:    cfg.jobs,
		Repeats: cfg.repeats,
	}
	for _, level := range cfg.levels {
		m := measureLevel(ctx, c, dataset, cfg, level, nil)
		report.Trajectory = append(report.Trajectory, phaseEntries("serving", level, m)...)
		fmt.Fprintf(os.Stderr, "scansim: load c=%d: %d jobs/pass × %d passes, %d canceled, p99 %v\n",
			level, m.ops, cfg.repeats, m.canceled, m.p99.Round(time.Millisecond))
		if cfg.hostileKey == "" {
			continue
		}
		hostile := rpc.NewClient(cfg.addr, rpc.WithAPIKey(cfg.hostileKey))
		m = measureLevel(ctx, c, dataset, cfg, level, hostile)
		report.Trajectory = append(report.Trajectory, phaseEntries("contended", level, m)...)
		fmt.Fprintf(os.Stderr, "scansim: load c=%d (contended): %d jobs/pass × %d passes, %d canceled, p99 %v\n",
			level, m.ops, cfg.repeats, m.canceled, m.p99.Round(time.Millisecond))
	}

	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "scansim: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(cfg.out, append(raw, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "scansim: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "scansim: wrote %s (%d entries)\n", cfg.out, len(report.Trajectory))
}

// levelMetrics is the min-of-N aggregate one concurrency level reports.
type levelMetrics struct {
	p99, p50 time.Duration
	nsPerJob float64
	ops      int // completed jobs per pass (latency samples)
	canceled int // cancel-intent ops across all passes
}

// measureLevel runs cfg.repeats passes at the given concurrency and keeps
// the fastest p99, p50 and per-job wall time across them — the same
// min-of-N damping the broker benchmarks use, so one noisy scheduler
// moment does not masquerade as a serving regression.
func measureLevel(ctx context.Context, c *rpc.Client, dataset string, cfg loadConfig, level int, hostile *rpc.Client) levelMetrics {
	var m levelMetrics
	for rep := 0; rep < cfg.repeats; rep++ {
		st := runPhase(ctx, c, dataset, cfg, level, hostile)
		n := len(st.latencies)
		m.canceled += st.canceled
		if n == 0 {
			continue
		}
		p99, p50 := percentile(st.latencies, 0.99), percentile(st.latencies, 0.50)
		perJob := float64(st.elapsed) / float64(n)
		if m.ops == 0 || p99 < m.p99 {
			m.p99 = p99
		}
		if m.ops == 0 || p50 < m.p50 {
			m.p50 = p50
		}
		if m.ops == 0 || perJob < m.nsPerJob {
			m.nsPerJob = perJob
		}
		m.ops = n
	}
	return m
}

// runPhase drives cfg.jobs mixed operations through level concurrent
// workers. A non-nil hostile client spends the whole phase firing
// over-quota submissions and uploads from the hostile tenant.
func runPhase(ctx context.Context, c *rpc.Client, dataset string, cfg loadConfig, level int, hostile *rpc.Client) phaseStats {
	phaseCtx, stop := context.WithCancel(ctx)
	defer stop()
	var hostileWG sync.WaitGroup
	if hostile != nil {
		for g := 0; g < 2; g++ {
			hostileWG.Add(1)
			go func(g int) {
				defer hostileWG.Done()
				hammer(phaseCtx, hostile, cfg.seed+int64(g))
			}(g)
		}
	}

	var (
		next  atomic.Int64
		mu    sync.Mutex
		stats phaseStats
		wg    sync.WaitGroup
	)
	start := time.Now()
	for w := 0; w < level; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= cfg.jobs {
					return
				}
				lat, canceled, err := oneOp(phaseCtx, c, dataset, cfg.seed, i)
				if err != nil {
					fmt.Fprintf(os.Stderr, "scansim: load op %d: %v\n", i, err)
					continue
				}
				mu.Lock()
				if canceled {
					stats.canceled++
				} else {
					stats.latencies = append(stats.latencies, lat)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.elapsed = time.Since(start)
	stop()
	hostileWG.Wait()
	return stats
}

// oneOp runs a single traffic item: the family rotates with the index,
// every seventh submission is canceled mid-flight, and every job is
// followed over its SSE event stream to the terminal state. Rate-limit
// rejections back off and retry — the compliant tenant is expected to be
// provisioned for its own load, but the contended phases share a daemon
// with a hostile one.
func oneOp(ctx context.Context, c *rpc.Client, dataset string, seed int64, i int) (time.Duration, bool, error) {
	req := rpc.SubmitJobRequest{}
	switch opSeed := seed + int64(i); i % 5 {
	case 0:
		req.Dataset = dataset // upload once, run many
	case 1:
		req.Synthetic = &rpc.SyntheticSpec{ReferenceLength: 2000, Reads: 150, SNVs: 3, Seed: opSeed}
	case 2:
		req.Proteome = &rpc.ProteomeSpec{Proteins: 10, Spectra: 150, Seed: opSeed}
	case 3:
		req.Imaging = &rpc.ImagingSpec{Images: 1, Width: 64, Height: 64, CellsPerImage: 4, Seed: opSeed}
	case 4:
		req.Network = &rpc.NetworkSpec{Genes: 50, Modules: 3, Seed: opSeed}
	}
	cancelOp := i%7 == 5
	if cancelOp {
		// A meatier run so the cancellation usually lands while the job is
		// still in flight. Cancel-intent ops never contribute latency
		// samples — the cancel changes what the sample would measure.
		req = rpc.SubmitJobRequest{
			Synthetic: &rpc.SyntheticSpec{ReferenceLength: 12000, Reads: 4000, SNVs: 5, Seed: seed + int64(i)},
		}
	}
	start := time.Now()
	job, err := submitWithRetry(ctx, c, req)
	if err != nil {
		return 0, false, err
	}
	if cancelOp {
		// The job may reach done first; the watch below settles which.
		_, _ = c.Cancel(ctx, job.ID)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil {
		return 0, false, fmt.Errorf("watching job %d: %w", job.ID, err)
	}
	switch final.State {
	case rpc.StateDone:
		if cancelOp {
			return 0, true, nil
		}
		return time.Since(start), false, nil
	case rpc.StateCanceled:
		if cancelOp {
			return 0, true, nil
		}
		return 0, false, fmt.Errorf("job %d canceled unexpectedly", job.ID)
	default:
		return 0, false, fmt.Errorf("job %d ended %s: %+v", job.ID, final.State, final.Error)
	}
}

// submitWithRetry submits a job, backing off through rate-limit rejections.
func submitWithRetry(ctx context.Context, c *rpc.Client, req rpc.SubmitJobRequest) (rpc.Job, error) {
	for attempt := 0; ; attempt++ {
		job, err := c.CreateJob(ctx, req)
		if err == nil {
			return job, nil
		}
		if attempt >= 40 || !strings.Contains(err.Error(), rpc.CodeRateLimited) {
			return rpc.Job{}, err
		}
		select {
		case <-time.After(250 * time.Millisecond):
		case <-ctx.Done():
			return rpc.Job{}, ctx.Err()
		}
	}
}

// hammer is the hostile tenant's loop: submissions and uploads far past
// its quotas, as fast as its rate limit lets it be rejected. Every error
// is the point.
func hammer(ctx context.Context, hostile *rpc.Client, seed int64) {
	for i := 0; ctx.Err() == nil; i++ {
		switch i % 3 {
		case 0:
			_, _ = hostile.CreateJob(ctx, rpc.SubmitJobRequest{
				Synthetic: &rpc.SyntheticSpec{ReferenceLength: 2000, Reads: 100, Seed: seed + int64(i)},
			})
		case 1:
			_, _ = hostile.UploadDataset(ctx, fmt.Sprintf("hostile-%d-%d", seed, i), "feature-table",
				rpc.UploadPart{Field: "data", R: strings.NewReader("g1 1.0\n")})
		case 2:
			_, _ = hostile.Datasets(ctx)
		}
		select {
		case <-time.After(10 * time.Millisecond):
		case <-ctx.Done():
		}
	}
}

// ensureLoadDataset registers the feature table the dataset-backed jobs
// reuse, tolerating a leftover from a previous run against the same daemon.
func ensureLoadDataset(ctx context.Context, c *rpc.Client, seed int64) (string, error) {
	const name = "scansim-load-rows"
	var rows strings.Builder
	for g := 0; g < 60; g++ {
		fmt.Fprintf(&rows, "gene%04d %.4f\n", g, float64((seed+int64(g)*37)%97)/10)
	}
	if _, err := c.UploadDataset(ctx, name, "feature-table",
		rpc.UploadPart{Field: "data", R: strings.NewReader(rows.String())}); err != nil {
		if _, lookupErr := c.Dataset(ctx, name); lookupErr == nil {
			return name, nil // an earlier run already registered it
		}
		return "", err
	}
	return name, nil
}

// phaseEntries turns one level's aggregate into trajectory entries. Only
// the serving/p99/* names fall under CI's guard prefix.
func phaseEntries(prefix string, level int, m levelMetrics) []loadEntry {
	suffix := "mixed-c" + strconv.Itoa(level)
	entries := []loadEntry{
		{Name: prefix + "/p99/" + suffix, Ops: m.ops, NsPerOp: float64(m.p99)},
		{Name: prefix + "/p50/" + suffix, Ops: m.ops, NsPerOp: float64(m.p50)},
	}
	if m.ops > 0 {
		entries = append(entries, loadEntry{
			Name: prefix + "/throughput/" + suffix, Ops: m.ops, NsPerOp: m.nsPerJob,
		})
	}
	return entries
}

// percentile returns the q-th percentile (0 < q <= 1) of the samples.
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted))*q+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// waitHealthy polls the daemon's health endpoint until it answers.
func waitHealthy(addr string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := http.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scand at %s never became healthy: %v", addr, err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// parseLevels parses the -levels flag ("1,4,8").
func parseLevels(raw string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		levels = append(levels, n)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("no concurrency levels given")
	}
	return levels, nil
}
