// Command scansim regenerates the paper's evaluation artifacts: Figure 4,
// Figure 5, the Table I parameter sweep, the allocation-policy comparison,
// and the Table II profiling regression.
//
// Usage:
//
//	scansim -exp fig4   [-simtime 10000] [-repeats 10]
//	scansim -exp fig5   [-simtime 10000] [-repeats 10]
//	scansim -exp alloc  [-simtime 10000] [-repeats 10]
//	scansim -exp sweep  [-simtime 2000]  [-repeats 3]
//	scansim -exp ablate [-simtime 2000]  [-repeats 5]
//	scansim -exp profile
//
// The defaults reproduce the paper's settings; smaller -simtime values
// trade precision for speed (shapes stabilise from roughly 2000 TU).
//
// With -load, scansim is instead the serving-load harness: it replays
// mixed-family traffic against a live scand and writes the latency and
// throughput trajectory CI guards (see load.go and docs/SERVING.md):
//
//	scansim -load [-addr http://127.0.0.1:7390] [-levels 1,4,8]
//	        [-load-jobs 120] [-load-repeats 3] [-api-key KEY]
//	        [-hostile-key KEY] [-out BENCH_serving.json]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
	"time"

	"scan/internal/experiment"
	"scan/internal/gatk"
	"scan/internal/knowledge"
)

func main() {
	var (
		exp     = flag.String("exp", "fig4", "experiment: fig4, fig5, alloc, sweep, profile, ablate")
		simTime = flag.Float64("simtime", 0, "arrival window in TU (0 = experiment default)")
		repeats = flag.Int("repeats", 0, "repetitions per point (0 = experiment default)")
		seed    = flag.Int64("seed", 1, "base RNG seed")
		cores   = flag.Int("cores", experiment.CalibratedPrivateCores, "private tier cores")

		load       = flag.Bool("load", false, "serving-load mode: replay mixed-family traffic against a live scand")
		addr       = flag.String("addr", "http://127.0.0.1:7390", "scand base URL (load mode)")
		levelsFlag = flag.String("levels", "1,4,8", "comma-separated concurrency levels (load mode)")
		loadJobs   = flag.Int("load-jobs", 120, "operations per concurrency level and pass (load mode)")
		loadReps   = flag.Int("load-repeats", 3, "passes per concurrency level; min-of-N per entry (load mode)")
		apiKey     = flag.String("api-key", "", "compliant tenant API key (load mode; empty = unauthenticated daemon)")
		hostileKey = flag.String("hostile-key", "", "hostile tenant API key; adds a contended pass per level (load mode)")
		out        = flag.String("out", "BENCH_serving.json", "trajectory artifact path (load mode)")
	)
	flag.Parse()

	if *load {
		levels, err := parseLevels(*levelsFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scansim: %v\n", err)
			os.Exit(2)
		}
		runLoad(loadConfig{
			addr:       strings.TrimRight(*addr, "/"),
			levels:     levels,
			jobs:       *loadJobs,
			repeats:    defaultInt(*loadReps, 1),
			apiKey:     *apiKey,
			hostileKey: *hostileKey,
			out:        *out,
			seed:       *seed,
		})
		return
	}

	base := experiment.DefaultConfig()
	base.Seed = *seed
	base.PrivateCores = *cores
	if *simTime > 0 {
		base.SimTime = *simTime
	}

	start := time.Now()
	switch *exp {
	case "fig4":
		n := defaultInt(*repeats, 10)
		experiment.WriteFigure4(os.Stdout, experiment.Figure4(base, n))
	case "fig5":
		n := defaultInt(*repeats, 10)
		experiment.WriteFigure5(os.Stdout, experiment.Figure5(base, n))
	case "alloc":
		n := defaultInt(*repeats, 10)
		experiment.WriteAllocation(os.Stdout, experiment.CompareAllocation(base, n))
	case "ablate":
		if *simTime <= 0 {
			base.SimTime = 2000
		}
		n := defaultInt(*repeats, 5)
		experiment.WriteAblation(os.Stdout, experiment.AblateShardSize(base, n))
		experiment.WriteAblation(os.Stdout, experiment.AblatePredictiveMargin(base, n))
		experiment.WriteAblation(os.Stdout, experiment.AblateIdleWindow(base, n))
	case "sweep":
		if *simTime <= 0 {
			base.SimTime = 2000 // the full grid at 10k TU runs for hours
		}
		pts := experiment.Sweep(base, experiment.SweepOptions{Repeats: defaultInt(*repeats, 3)})
		experiment.WriteSweep(os.Stdout, pts)
	case "profile":
		runProfile(*seed)
	default:
		fmt.Fprintf(os.Stderr, "scansim: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "scansim: %s done in %v\n", *exp, time.Since(start).Round(time.Millisecond))
}

func defaultInt(v, def int) int {
	if v > 0 {
		return v
	}
	return def
}

// runProfile reproduces Table II's derivation: synthesize profiling runs
// from the ground-truth stage models (with measurement noise), log them to
// a knowledge base, regress, and print recovered vs. paper coefficients.
func runProfile(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	kb := knowledge.New()
	stages := gatk.DefaultStages()
	for si, model := range stages {
		for _, d := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9} {
			logRun(kb, si, d, 1, model.SerialTime(d)*(1+rng.NormFloat64()*0.01))
		}
		for _, th := range []int{1, 2, 4, 8, 16} {
			logRun(kb, si, 5, th, model.Time(th, 5)*(1+rng.NormFloat64()*0.01))
		}
	}
	fmt.Println("Table II recovery: per-stage scalability factors via regression over profiling logs")
	fmt.Printf("%-24s %8s %8s %8s %10s %10s %10s\n",
		"stage", "a", "b", "c", "fit a", "fit b", "fit c")
	for si, want := range stages {
		got, err := kb.FitStageModel("GATK", si)
		if err != nil {
			fmt.Fprintf(os.Stderr, "scansim: stage %d: %v\n", si, err)
			os.Exit(1)
		}
		fmt.Printf("%-24s %8.2f %8.2f %8.2f %10.3f %10.3f %10.3f\n",
			want.Name, want.A, want.B, want.C, got.A, got.B, got.C)
	}
}

func logRun(kb *knowledge.Base, stage int, d float64, threads int, t float64) {
	if err := kb.LogRun(knowledge.RunLog{
		App: "GATK", Stage: stage, InputSize: d, Threads: threads, ETime: t,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "scansim: %v\n", err)
		os.Exit(1)
	}
}
