// Benchmarks regenerating each evaluation artifact of the paper (see the
// experiment index in DESIGN.md). Each benchmark runs a reduced-fidelity
// version of the corresponding experiment per iteration — the full-fidelity
// versions are produced by cmd/scansim. Benchmark *output* is the paper's
// artifact shape; the reported ns/op measures the harness itself.
package scan_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"

	"scan/internal/core"
	"scan/internal/experiment"
	"scan/internal/gatk"
	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/scheduler"
	"scan/internal/variant"
)

// benchConfig is the reduced-fidelity session used inside benchmarks.
func benchConfig(seed int64) experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Seed = seed
	cfg.SimTime = 300
	return cfg
}

// BenchmarkTableISweep runs one cell of the Table I grid per iteration,
// cycling through the full cross-product (experiment T1).
func BenchmarkTableISweep(b *testing.B) {
	allocs := []scheduler.AllocationPolicy{
		scheduler.BestConstant, scheduler.Greedy,
		scheduler.LongTerm, scheduler.LongTermAdaptive,
	}
	scalers := []scheduler.ScalingPolicy{
		scheduler.AlwaysScale, scheduler.NeverScale, scheduler.PredictiveScale,
	}
	costs := []float64{20, 50, 80, 110}
	intervals := experiment.ArrivalIntervals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i))
		cfg.Allocation = allocs[i%len(allocs)]
		cfg.Scaling = scalers[i%len(scalers)]
		cfg.PublicPrice = costs[i%len(costs)]
		cfg.MeanInterArrival = intervals[i%len(intervals)]
		r := experiment.Run(cfg)
		if r.Metrics.JobsCompleted == 0 {
			b.Fatal("no jobs completed")
		}
	}
}

// BenchmarkTableIIProfileFit regenerates Table II: synthesize profiling
// logs from the ground-truth stage models and recover (a, b, c) by
// regression (experiment T2).
func BenchmarkTableIIProfileFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		kb := knowledge.New()
		stages := gatk.DefaultStages()
		for si, model := range stages {
			for _, d := range []float64{1, 3, 5, 7, 9} {
				if err := kb.LogRun(knowledge.RunLog{
					App: "GATK", Stage: si, InputSize: d, Threads: 1,
					ETime: model.SerialTime(d) * (1 + rng.NormFloat64()*0.01),
				}); err != nil {
					b.Fatal(err)
				}
			}
			for _, th := range []int{1, 2, 4, 8, 16} {
				if err := kb.LogRun(knowledge.RunLog{
					App: "GATK", Stage: si, InputSize: 5, Threads: th,
					ETime: model.Time(th, 5) * (1 + rng.NormFloat64()*0.01),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		for si := range stages {
			if _, err := kb.FitStageModel("GATK", si); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4 regenerates one Figure 4 point set (three scaling
// policies at one arrival interval) per iteration (experiment F4).
func BenchmarkFigure4(b *testing.B) {
	intervals := experiment.ArrivalIntervals()
	for i := 0; i < b.N; i++ {
		base := benchConfig(int64(i))
		base.MeanInterArrival = intervals[i%len(intervals)]
		for _, sc := range []scheduler.ScalingPolicy{
			scheduler.PredictiveScale, scheduler.AlwaysScale, scheduler.NeverScale,
		} {
			cfg := base
			cfg.Scaling = sc
			if r := experiment.Run(cfg); r.Metrics.JobsCompleted == 0 {
				b.Fatal("no jobs completed")
			}
		}
	}
}

// BenchmarkFigure5 regenerates one Figure 5 point (one fixed plan under
// dynamic scaling + heterogeneous workers) per iteration (experiments F5
// and C3).
func BenchmarkFigure5(b *testing.B) {
	plans := experiment.Figure5Plans(gatk.NewPipeline())
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i))
		cfg.Heterogeneous = true
		plan := plans[i%len(plans)]
		cfg.FixedPlan = &plan
		r := experiment.Run(cfg)
		if r.Metrics.TotalCost <= 0 {
			b.Fatal("no cost accrued")
		}
	}
}

// BenchmarkAllocationComparison runs the four allocation policies at one
// interval per iteration (experiment C2).
func BenchmarkAllocationComparison(b *testing.B) {
	intervals := experiment.ArrivalIntervals()
	for i := 0; i < b.N; i++ {
		base := benchConfig(int64(i))
		base.MeanInterArrival = intervals[i%len(intervals)]
		for _, al := range []scheduler.AllocationPolicy{
			scheduler.BestConstant, scheduler.Greedy,
			scheduler.LongTerm, scheduler.LongTermAdaptive,
		} {
			cfg := base
			cfg.Allocation = al
			if r := experiment.Run(cfg); r.Metrics.JobsCompleted == 0 {
				b.Fatal("no jobs completed")
			}
		}
	}
}

// BenchmarkRealPipeline measures the non-simulated execution surface: the
// sharded align→call pipeline on synthetic data (the platform the paper's
// prototype exposes over RPC).
func BenchmarkRealPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := genomics.GenerateReference(rng, "chr1", 20000)
	mutated, _ := genomics.PlantSNVs(rng, ref, 10)
	reads, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: 4000, Length: 100, ErrorRate: 0.002,
	})
	if err != nil {
		b.Fatal(err)
	}
	platform := core.NewPlatform(core.Options{Workers: 4})
	job := core.VariantCallingJob{
		Reference:    ref,
		Reads:        reads,
		Caller:       variant.Config{MinDepth: 8, MinAltFraction: 0.6},
		ShardRecords: 500,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.RunVariantCalling(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Data Broker fast-path benchmarks ---
//
// These measure the knowledge base's two hot paths under load — advice on a
// KB that has accumulated thousands of run logs, and concurrent run-log
// ingestion — and emit their trajectory to BENCH_broker.json (the artifact
// CI uploads). Run with a fixed iteration count so the two ingest variants
// build identically sized graphs (time-based -benchtime lets the fast
// variant run orders of magnitude more iterations, then charges it for the
// much larger graph it built):
//
//	go test -run '^$' -bench Broker -benchtime 20000x .

const brokerBenchFile = "BENCH_broker.json"

type brokerBenchEntry struct {
	Name    string  `json:"name"`
	KBRuns  int     `json:"kb_runs,omitempty"`
	Ops     int     `json:"ops"`
	NsPerOp float64 `json:"ns_per_op"`
	Lost    *int    `json:"lost_observations,omitempty"`
}

type brokerBenchReport struct {
	Benchmark  string             `json:"benchmark"`
	Note       string             `json:"note"`
	Trajectory []brokerBenchEntry `json:"trajectory"`
	// AdviceSpeedup10K is cached vs uncached ns/op on the 10k-run KB.
	AdviceSpeedup10K float64 `json:"advice_speedup_10k_runs,omitempty"`
}

var brokerBench struct {
	sync.Mutex
	entries []brokerBenchEntry
}

// recordBrokerBench stores one benchmark measurement and rewrites the JSON
// artifact, so any -bench selection leaves a consistent file behind. When
// the same entry records more than once in one process (`-count N`), the
// fastest measurement wins: min-of-N is the standard scheduler-noise
// reducer, and CI's regression guard compares these trajectories across
// machines, so each entry should be the machine's best case, not its
// noisiest run.
func recordBrokerBench(b *testing.B, name string, kbRuns int, lost *int) {
	b.Helper()
	entry := brokerBenchEntry{
		Name:    name,
		KBRuns:  kbRuns,
		Ops:     b.N,
		NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		Lost:    lost,
	}
	brokerBench.Lock()
	defer brokerBench.Unlock()
	replaced := false
	for i, e := range brokerBench.entries {
		if e.Name == name {
			if entry.NsPerOp < e.NsPerOp {
				brokerBench.entries[i] = entry
			}
			replaced = true
			break
		}
	}
	if !replaced {
		brokerBench.entries = append(brokerBench.entries, entry)
	}
	report := brokerBenchReport{
		Benchmark: "data-broker-fast-path",
		Note: "ShardAdvice served from the materialized profile cache vs " +
			"re-evaluating SPARQL per call (the uncached seed path); LogRun " +
			"ingest via the batched buffer vs one write lock per observation.",
		Trajectory: append([]brokerBenchEntry(nil), brokerBench.entries...),
	}
	var cached, uncached float64
	for _, e := range brokerBench.entries {
		switch e.Name {
		case "advice/cached/10000runs":
			cached = e.NsPerOp
		case "advice/uncached/10000runs":
			uncached = e.NsPerOp
		}
	}
	if cached > 0 && uncached > 0 {
		report.AdviceSpeedup10K = uncached / cached
	}
	raw, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(brokerBenchFile, append(raw, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}

// buildBrokerKB seeds the paper profiles and folds `runs` logged
// observations, the state of a long-lived platform under traffic.
func buildBrokerKB(tb testing.TB, runs int) *knowledge.Base {
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	for i := 0; i < runs; i++ {
		if err := kb.LogRunAsync(knowledge.RunLog{
			App: "GATK1", Stage: i % 7, InputSize: float64(i%9) + 1,
			Threads: 1 << (i % 4), ETime: float64(i%300) + 1,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	kb.Flush()
	return kb
}

// BenchmarkBrokerAdvice measures ShardAdvice latency across KB sizes, with
// the materialized cache (the fast path) and without it (every call
// re-evaluates the profile SPARQL over the whole graph — the seed
// behavior).
func BenchmarkBrokerAdvice(b *testing.B) {
	for _, runs := range []int{1000, 10000, 20000} {
		kb := buildBrokerKB(b, runs)
		b.Run(fmt.Sprintf("cached/%druns", runs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := kb.ShardAdvice(25); err != nil {
					b.Fatal(err)
				}
			}
			recordBrokerBench(b, fmt.Sprintf("advice/cached/%druns", runs), runs, nil)
		})
		b.Run(fmt.Sprintf("uncached/%druns", runs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kb.InvalidateCache()
				if _, err := kb.ShardAdvice(25); err != nil {
					b.Fatal(err)
				}
			}
			recordBrokerBench(b, fmt.Sprintf("advice/uncached/%druns", runs), runs, nil)
		})
	}
}

// BenchmarkBrokerIngest measures concurrent run-log ingestion: the batched
// asynchronous buffer against the synchronous one-lock-per-observation
// path. The async variant also proves the no-lost-observations invariant:
// after Flush, RunCount must equal exactly the observations accepted.
func BenchmarkBrokerIngest(b *testing.B) {
	l := knowledge.RunLog{App: "GATK1", Stage: 1, InputSize: 5, Threads: 1, ETime: 3}
	b.Run("batched", func(b *testing.B) {
		kb := knowledge.New()
		kb.SeedPaperProfiles()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := kb.LogRunAsync(l); err != nil {
					// FailNow must not run on a RunParallel worker.
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		kb.Flush()
		lost := b.N - kb.RunCount()
		if lost != 0 {
			b.Fatalf("lost %d observations", lost)
		}
		recordBrokerBench(b, "ingest/batched", 0, &lost)
	})
	b.Run("lock-per-log", func(b *testing.B) {
		kb := knowledge.New()
		kb.SeedPaperProfiles()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if err := kb.LogRun(l); err != nil {
					b.Error(err)
					return
				}
			}
		})
		b.StopTimer()
		lost := b.N - kb.RunCount()
		if lost != 0 {
			b.Fatalf("lost %d observations", lost)
		}
		recordBrokerBench(b, "ingest/lock-per-log", 0, &lost)
	})
}

// BenchmarkBrokerMixed is the contention shape of the ROADMAP's
// heavy-traffic north star: every worker both asks for advice and logs
// telemetry, against one shared KB with history.
func BenchmarkBrokerMixed(b *testing.B) {
	kb := buildBrokerKB(b, 10000)
	l := knowledge.RunLog{App: "GATK1", Stage: 2, InputSize: 4, Threads: 1, ETime: 2}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := kb.ShardAdvice(25); err != nil {
				b.Error(err)
				return
			}
			if err := kb.LogRunAsync(l); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.StopTimer()
	kb.Flush()
	recordBrokerBench(b, "mixed/advice+ingest", 10000, nil)
}
