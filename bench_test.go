// Benchmarks regenerating each evaluation artifact of the paper (see the
// experiment index in DESIGN.md). Each benchmark runs a reduced-fidelity
// version of the corresponding experiment per iteration — the full-fidelity
// versions are produced by cmd/scansim. Benchmark *output* is the paper's
// artifact shape; the reported ns/op measures the harness itself.
package scan_test

import (
	"context"
	"math/rand"
	"testing"

	"scan/internal/core"
	"scan/internal/experiment"
	"scan/internal/gatk"
	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/scheduler"
	"scan/internal/variant"
)

// benchConfig is the reduced-fidelity session used inside benchmarks.
func benchConfig(seed int64) experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Seed = seed
	cfg.SimTime = 300
	return cfg
}

// BenchmarkTableISweep runs one cell of the Table I grid per iteration,
// cycling through the full cross-product (experiment T1).
func BenchmarkTableISweep(b *testing.B) {
	allocs := []scheduler.AllocationPolicy{
		scheduler.BestConstant, scheduler.Greedy,
		scheduler.LongTerm, scheduler.LongTermAdaptive,
	}
	scalers := []scheduler.ScalingPolicy{
		scheduler.AlwaysScale, scheduler.NeverScale, scheduler.PredictiveScale,
	}
	costs := []float64{20, 50, 80, 110}
	intervals := experiment.ArrivalIntervals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i))
		cfg.Allocation = allocs[i%len(allocs)]
		cfg.Scaling = scalers[i%len(scalers)]
		cfg.PublicPrice = costs[i%len(costs)]
		cfg.MeanInterArrival = intervals[i%len(intervals)]
		r := experiment.Run(cfg)
		if r.Metrics.JobsCompleted == 0 {
			b.Fatal("no jobs completed")
		}
	}
}

// BenchmarkTableIIProfileFit regenerates Table II: synthesize profiling
// logs from the ground-truth stage models and recover (a, b, c) by
// regression (experiment T2).
func BenchmarkTableIIProfileFit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		kb := knowledge.New()
		stages := gatk.DefaultStages()
		for si, model := range stages {
			for _, d := range []float64{1, 3, 5, 7, 9} {
				if err := kb.LogRun(knowledge.RunLog{
					App: "GATK", Stage: si, InputSize: d, Threads: 1,
					ETime: model.SerialTime(d) * (1 + rng.NormFloat64()*0.01),
				}); err != nil {
					b.Fatal(err)
				}
			}
			for _, th := range []int{1, 2, 4, 8, 16} {
				if err := kb.LogRun(knowledge.RunLog{
					App: "GATK", Stage: si, InputSize: 5, Threads: th,
					ETime: model.Time(th, 5) * (1 + rng.NormFloat64()*0.01),
				}); err != nil {
					b.Fatal(err)
				}
			}
		}
		for si := range stages {
			if _, err := kb.FitStageModel("GATK", si); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFigure4 regenerates one Figure 4 point set (three scaling
// policies at one arrival interval) per iteration (experiment F4).
func BenchmarkFigure4(b *testing.B) {
	intervals := experiment.ArrivalIntervals()
	for i := 0; i < b.N; i++ {
		base := benchConfig(int64(i))
		base.MeanInterArrival = intervals[i%len(intervals)]
		for _, sc := range []scheduler.ScalingPolicy{
			scheduler.PredictiveScale, scheduler.AlwaysScale, scheduler.NeverScale,
		} {
			cfg := base
			cfg.Scaling = sc
			if r := experiment.Run(cfg); r.Metrics.JobsCompleted == 0 {
				b.Fatal("no jobs completed")
			}
		}
	}
}

// BenchmarkFigure5 regenerates one Figure 5 point (one fixed plan under
// dynamic scaling + heterogeneous workers) per iteration (experiments F5
// and C3).
func BenchmarkFigure5(b *testing.B) {
	plans := experiment.Figure5Plans(gatk.NewPipeline())
	for i := 0; i < b.N; i++ {
		cfg := benchConfig(int64(i))
		cfg.Heterogeneous = true
		plan := plans[i%len(plans)]
		cfg.FixedPlan = &plan
		r := experiment.Run(cfg)
		if r.Metrics.TotalCost <= 0 {
			b.Fatal("no cost accrued")
		}
	}
}

// BenchmarkAllocationComparison runs the four allocation policies at one
// interval per iteration (experiment C2).
func BenchmarkAllocationComparison(b *testing.B) {
	intervals := experiment.ArrivalIntervals()
	for i := 0; i < b.N; i++ {
		base := benchConfig(int64(i))
		base.MeanInterArrival = intervals[i%len(intervals)]
		for _, al := range []scheduler.AllocationPolicy{
			scheduler.BestConstant, scheduler.Greedy,
			scheduler.LongTerm, scheduler.LongTermAdaptive,
		} {
			cfg := base
			cfg.Allocation = al
			if r := experiment.Run(cfg); r.Metrics.JobsCompleted == 0 {
				b.Fatal("no jobs completed")
			}
		}
	}
}

// BenchmarkRealPipeline measures the non-simulated execution surface: the
// sharded align→call pipeline on synthetic data (the platform the paper's
// prototype exposes over RPC).
func BenchmarkRealPipeline(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := genomics.GenerateReference(rng, "chr1", 20000)
	mutated, _ := genomics.PlantSNVs(rng, ref, 10)
	reads, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: 4000, Length: 100, ErrorRate: 0.002,
	})
	if err != nil {
		b.Fatal(err)
	}
	platform := core.NewPlatform(core.Options{Workers: 4})
	job := core.VariantCallingJob{
		Reference:    ref,
		Reads:        reads,
		Caller:       variant.Config{MinDepth: 8, MinAltFraction: 0.6},
		ShardRecords: 500,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := platform.RunVariantCalling(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}
