package proteome

import (
	"fmt"
	"math/rand"
	"sort"
)

// Mass range of simulated fragment ions, in Daltons. Wide relative to the
// match tolerance, so fragments of unrelated peptides rarely collide and a
// spectrum's true peptide wins the search by a large margin.
const (
	minFragmentMass = 100.0
	maxFragmentMass = 1900.0
)

// fragmentsPerPeptide is the simulated fragment-ladder length.
const fragmentsPerPeptide = 10

// Peptide is one theoretical peptide: a named, ascending fragment-mass
// ladder tied to its parent protein.
type Peptide struct {
	Protein string
	Name    string
	Masses  []float64
}

// Database is the reference peptide index spectra are searched against —
// the role the FASTA reference plays for alignment.
type Database struct {
	Peptides []Peptide
}

// Proteins returns the number of distinct parent proteins.
func (db *Database) Proteins() int {
	seen := map[string]bool{}
	for _, p := range db.Peptides {
		seen[p.Protein] = true
	}
	return len(seen)
}

// GenerateDatabase builds a synthetic peptide database: proteins named
// P000, P001, … with peptidesPerProtein tryptic peptides each, every
// peptide carrying a random ascending fragment ladder. Seeded generation
// regenerates identical databases, like genomics.GenerateReference.
func GenerateDatabase(rng *rand.Rand, proteins, peptidesPerProtein int) Database {
	if proteins < 1 {
		proteins = 1
	}
	if peptidesPerProtein < 1 {
		peptidesPerProtein = 1
	}
	db := Database{Peptides: make([]Peptide, 0, proteins*peptidesPerProtein)}
	for p := 0; p < proteins; p++ {
		name := fmt.Sprintf("P%03d", p)
		for q := 0; q < peptidesPerProtein; q++ {
			masses := make([]float64, fragmentsPerPeptide)
			for i := range masses {
				masses[i] = minFragmentMass + rng.Float64()*(maxFragmentMass-minFragmentMass)
			}
			sort.Float64s(masses)
			db.Peptides = append(db.Peptides, Peptide{
				Protein: name,
				Name:    fmt.Sprintf("%s.pep%d", name, q),
				Masses:  masses,
			})
		}
	}
	return db
}

// Spectrum is one acquired MS/MS scan: an ascending peak list.
type Spectrum struct {
	ID    string
	Peaks []float64
}

// SimConfig controls spectrum simulation. The noise fields are used
// verbatim — zero means a clean acquisition (no spurious peaks, no
// dropout, no mass error); defaults, where wanted, belong to the caller
// (the daemon's spec layer resolves absent-vs-zero there, mirroring the
// read-simulation fields' tri-state convention).
type SimConfig struct {
	// Count is the number of spectra to simulate.
	Count int
	// NoisePeaks is the number of spurious peaks added per spectrum.
	NoisePeaks int
	// DropoutRate is the probability each true fragment peak is lost.
	DropoutRate float64
	// Jitter bounds the per-peak mass error in Daltons; keep it inside
	// the search tolerance.
	Jitter float64
}

// SimulateSpectra draws Count spectra from random database peptides,
// dropping fragments at DropoutRate, jittering surviving masses by ±Jitter
// and adding NoisePeaks random peaks — the acquisition noise a real search
// must see through. The returned truth slice holds each spectrum's source
// peptide index, the ground truth recovery tests score against.
func SimulateSpectra(rng *rand.Rand, db Database, cfg SimConfig) (spectra []Spectrum, truth []int, err error) {
	if len(db.Peptides) == 0 {
		return nil, nil, fmt.Errorf("proteome: empty peptide database")
	}
	if cfg.Count < 1 {
		return nil, nil, fmt.Errorf("proteome: spectrum count %d invalid", cfg.Count)
	}
	if cfg.NoisePeaks < 0 || cfg.DropoutRate < 0 || cfg.DropoutRate >= 1 || cfg.Jitter < 0 {
		return nil, nil, fmt.Errorf("proteome: invalid noise config %+v", cfg)
	}
	spectra = make([]Spectrum, 0, cfg.Count)
	truth = make([]int, 0, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		pi := rng.Intn(len(db.Peptides))
		pep := db.Peptides[pi]
		peaks := make([]float64, 0, len(pep.Masses)+cfg.NoisePeaks)
		for _, m := range pep.Masses {
			if rng.Float64() < cfg.DropoutRate {
				continue
			}
			peaks = append(peaks, m+(rng.Float64()*2-1)*cfg.Jitter)
		}
		for n := 0; n < cfg.NoisePeaks; n++ {
			peaks = append(peaks, minFragmentMass+rng.Float64()*(maxFragmentMass-minFragmentMass))
		}
		sort.Float64s(peaks)
		spectra = append(spectra, Spectrum{ID: fmt.Sprintf("spec%05d", i), Peaks: peaks})
		truth = append(truth, pi)
	}
	return spectra, truth, nil
}

// Config tunes the search.
type Config struct {
	// Tolerance is the fragment-mass match window in Daltons (default 0.5).
	Tolerance float64
	// MinScore is the matched-fraction floor below which a spectrum stays
	// unassigned (default 0.5).
	MinScore float64
}

func (c Config) withDefaults() Config {
	if c.Tolerance <= 0 {
		c.Tolerance = 0.5
	}
	if c.MinScore <= 0 {
		c.MinScore = 0.5
	}
	return c
}

// Match is one spectrum's search outcome.
type Match struct {
	// Spectrum is the searched spectrum's ID.
	Spectrum string
	// Peptide indexes the database peptide, -1 when unassigned.
	Peptide int
	// Score is the fraction of the peptide's fragments found in the
	// spectrum.
	Score float64
}

// Search assigns one spectrum to the best-covered database peptide: for
// each peptide, the score is the fraction of its fragment ladder present in
// the spectrum within Tolerance; the best score wins if it clears MinScore.
// Ties resolve to the lower peptide index, keeping results deterministic.
func Search(db Database, sp Spectrum, cfg Config) Match {
	cfg = cfg.withDefaults()
	m := Match{Spectrum: sp.ID, Peptide: -1}
	for i, pep := range db.Peptides {
		hits := 0
		for _, mass := range pep.Masses {
			if hasPeakNear(sp.Peaks, mass, cfg.Tolerance) {
				hits++
			}
		}
		if len(pep.Masses) == 0 {
			continue
		}
		score := float64(hits) / float64(len(pep.Masses))
		if score > m.Score {
			m.Peptide, m.Score = i, score
		}
	}
	if m.Score < cfg.MinScore {
		m.Peptide, m.Score = -1, 0
	}
	return m
}

// hasPeakNear reports whether the ascending peak list holds a peak within
// tol of mass (binary search).
func hasPeakNear(peaks []float64, mass, tol float64) bool {
	i := sort.SearchFloat64s(peaks, mass-tol)
	return i < len(peaks) && peaks[i] <= mass+tol
}

// ProteinQuant is one row of a ProteinTable: per-protein evidence gathered
// from spectrum matches.
type ProteinQuant struct {
	// Protein is the parent protein name.
	Protein string
	// Peptides counts distinct peptides with at least one matched spectrum.
	Peptides int
	// Spectra is the spectral count — matched spectra across the protein's
	// peptides.
	Spectra int
	// Abundance is the sum of match scores, the label-free quantification
	// proxy (zero in search-only mode).
	Abundance float64
}

// Quantify gathers per-spectrum matches into a protein table sorted by
// protein name: spectral counts, distinct peptide evidence, and summed
// match scores. Unassigned matches are dropped. The gather is associative,
// so per-shard match sets can be concatenated in any order first.
func Quantify(db Database, matches []Match) []ProteinQuant {
	type acc struct {
		peptides map[string]bool
		spectra  int
		score    float64
	}
	byProtein := map[string]*acc{}
	for _, m := range matches {
		if m.Peptide < 0 || m.Peptide >= len(db.Peptides) {
			continue
		}
		pep := db.Peptides[m.Peptide]
		a := byProtein[pep.Protein]
		if a == nil {
			a = &acc{peptides: map[string]bool{}}
			byProtein[pep.Protein] = a
		}
		a.peptides[pep.Name] = true
		a.spectra++
		a.score += m.Score
	}
	out := make([]ProteinQuant, 0, len(byProtein))
	for name, a := range byProtein {
		out = append(out, ProteinQuant{
			Protein:   name,
			Peptides:  len(a.peptides),
			Spectra:   a.spectra,
			Abundance: a.score,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Protein < out[j].Protein })
	return out
}
