package proteome

import (
	"math/rand"
	"testing"
)

func TestGenerateDatabaseDeterministic(t *testing.T) {
	a := GenerateDatabase(rand.New(rand.NewSource(1)), 5, 3)
	b := GenerateDatabase(rand.New(rand.NewSource(1)), 5, 3)
	if len(a.Peptides) != 15 || len(b.Peptides) != 15 {
		t.Fatalf("peptides = %d, %d, want 15", len(a.Peptides), len(b.Peptides))
	}
	for i := range a.Peptides {
		if a.Peptides[i].Name != b.Peptides[i].Name {
			t.Fatalf("peptide %d differs: %q vs %q", i, a.Peptides[i].Name, b.Peptides[i].Name)
		}
		for j := range a.Peptides[i].Masses {
			if a.Peptides[i].Masses[j] != b.Peptides[i].Masses[j] {
				t.Fatalf("peptide %d mass %d differs", i, j)
			}
		}
	}
	if got := a.Proteins(); got != 5 {
		t.Fatalf("proteins = %d, want 5", got)
	}
	// Fragment ladders arrive sorted — the search's binary probe needs it.
	for _, p := range a.Peptides {
		for j := 1; j < len(p.Masses); j++ {
			if p.Masses[j-1] > p.Masses[j] {
				t.Fatalf("peptide %s masses unsorted", p.Name)
			}
		}
	}
}

func TestSearchRecoversTruePeptides(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := GenerateDatabase(rng, 20, 3)
	// Full acquisition noise: dropout, mass jitter and spurious peaks.
	spectra, truth, err := SimulateSpectra(rng, db, SimConfig{
		Count: 300, NoisePeaks: 3, DropoutRate: 0.1, Jitter: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, sp := range spectra {
		m := Search(db, sp, Config{})
		if m.Peptide == truth[i] {
			correct++
		}
		if m.Peptide >= 0 && (m.Score <= 0 || m.Score > 1) {
			t.Fatalf("spectrum %s: score %v out of range", sp.ID, m.Score)
		}
	}
	// 10% dropout leaves ≥ 90% of fragments on average; with fragments of
	// unrelated peptides spread over 1800 Da, essentially every assigned
	// spectrum resolves to its source peptide.
	if correct < len(spectra)*95/100 {
		t.Fatalf("recovered %d/%d spectra", correct, len(spectra))
	}
}

func TestSearchRejectsNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	db := GenerateDatabase(rng, 10, 2)
	// A pure-noise spectrum matches nothing above the score floor.
	noise := Spectrum{ID: "noise", Peaks: []float64{150, 400, 750, 1100, 1500}}
	if m := Search(db, noise, Config{}); m.Peptide != -1 || m.Score != 0 {
		t.Fatalf("noise spectrum matched: %+v", m)
	}
}

func TestQuantifyGathersByProtein(t *testing.T) {
	db := Database{Peptides: []Peptide{
		{Protein: "P000", Name: "P000.pep0", Masses: []float64{100}},
		{Protein: "P000", Name: "P000.pep1", Masses: []float64{200}},
		{Protein: "P001", Name: "P001.pep0", Masses: []float64{300}},
	}}
	matches := []Match{
		{Spectrum: "s0", Peptide: 0, Score: 0.9},
		{Spectrum: "s1", Peptide: 0, Score: 0.8},
		{Spectrum: "s2", Peptide: 1, Score: 1.0},
		{Spectrum: "s3", Peptide: 2, Score: 0.7},
		{Spectrum: "s4", Peptide: -1}, // unassigned: dropped
	}
	out := Quantify(db, matches)
	if len(out) != 2 || out[0].Protein != "P000" || out[1].Protein != "P001" {
		t.Fatalf("quant = %+v", out)
	}
	p0 := out[0]
	if p0.Peptides != 2 || p0.Spectra != 3 || p0.Abundance < 2.69 || p0.Abundance > 2.71 {
		t.Fatalf("P000 = %+v", p0)
	}
	if out[1].Spectra != 1 || out[1].Peptides != 1 {
		t.Fatalf("P001 = %+v", out[1])
	}
}

func TestQuantifyIsGatherOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := GenerateDatabase(rng, 8, 2)
	spectra, _, err := SimulateSpectra(rng, db, SimConfig{
		Count: 120, NoisePeaks: 3, DropoutRate: 0.1, Jitter: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	matches := make([]Match, len(spectra))
	for i, sp := range spectra {
		matches[i] = Search(db, sp, Config{})
	}
	reversed := make([]Match, len(matches))
	for i, m := range matches {
		reversed[len(matches)-1-i] = m
	}
	a, b := Quantify(db, matches), Quantify(db, reversed)
	if len(a) != len(b) {
		t.Fatalf("gather order changed protein count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Protein != b[i].Protein || a[i].Peptides != b[i].Peptides || a[i].Spectra != b[i].Spectra {
			t.Fatalf("row %d differs: %+v vs %+v", i, a[i], b[i])
		}
		// Abundance is a float sum: equal up to summation-order rounding.
		if d := a[i].Abundance - b[i].Abundance; d > 1e-9 || d < -1e-9 {
			t.Fatalf("row %d abundance differs: %v vs %v", i, a[i].Abundance, b[i].Abundance)
		}
	}
}

func TestSimulateSpectraValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, _, err := SimulateSpectra(rng, Database{}, SimConfig{Count: 1}); err == nil {
		t.Fatal("empty database accepted")
	}
	db := GenerateDatabase(rng, 1, 1)
	if _, _, err := SimulateSpectra(rng, db, SimConfig{Count: 0}); err == nil {
		t.Fatal("zero spectra accepted")
	}
	if _, _, err := SimulateSpectra(rng, db, SimConfig{Count: 1, NoisePeaks: -1}); err == nil {
		t.Fatal("negative noise peaks accepted")
	}
	// An all-zero noise config is a clean acquisition, not "defaults":
	// every spectrum is its peptide's exact fragment ladder.
	spectra, truth, err := SimulateSpectra(rng, db, SimConfig{Count: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, sp := range spectra {
		pep := db.Peptides[truth[i]]
		if len(sp.Peaks) != len(pep.Masses) {
			t.Fatalf("clean spectrum %d has %d peaks, peptide has %d fragments",
				i, len(sp.Peaks), len(pep.Masses))
		}
		for j := range sp.Peaks {
			if sp.Peaks[j] != pep.Masses[j] {
				t.Fatalf("clean spectrum %d peak %d jittered", i, j)
			}
		}
	}
}
