// Package proteome implements SCAN's proteomic substrate: a deterministic
// spectral peptide-matching toolkit standing in for MaxQuant and the
// Global Proteome Machine in the paper's Figure 1 MS path.
//
// The model is the core of every database search engine, reduced to what
// the platform needs to exercise its scatter/gather machinery honestly: a
// reference peptide database (named fragment-mass lists per protein),
// simulated MS/MS spectra drawn from it (fragment dropout, mass jitter,
// noise peaks), and a search that assigns each spectrum to the peptide
// whose fragments it covers best. Matches gather into a ProteinTable —
// spectral counts per protein, the label-free quantification proxy.
//
// Scatter/gather shape: the spectrum is the scatter unit. Each spectrum
// searches the database independently, so a large acquisition fans out
// into Data-Broker-sized spectrum shards exactly the way FASTQ reads fan
// out for alignment; the per-shard match sets gather into one table.
//
// Determinism guarantee: generation is seeded (GenerateDatabase and
// SimulateSpectra regenerate identical data from equal seeds), Search is a
// pure function of (database, spectrum, config), and Quantify sorts its
// output by protein name — so results are identical across runs and
// independent of shard count or gather order. The workflow engine relies
// on this: sharded and unsharded executions of the proteomic stages are
// byte-equivalent.
package proteome
