package fleet

// The fleet wire protocol: JSON envelopes for control (register, poll,
// result, roster) with gob payloads (workflow/wire.go) for data. Decode
// helpers validate structurally here so both ends and the fuzz targets
// share one entry point.

import (
	"encoding/json"
	"errors"
	"fmt"

	"scan/internal/align"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// maxEnvelope bounds a control envelope's decoded size; data travels in
// blobs, so a control message beyond this is malformed or hostile.
const maxEnvelope = 64 << 20

// RegisterRequest announces a worker to the coordinator.
type RegisterRequest struct {
	// Name is the worker's self-chosen label (hostname by default).
	Name string `json:"name"`
	// Slots is how many shards the worker runs concurrently.
	Slots int `json:"slots"`
}

// RegisterResponse assigns the worker its roster identity.
type RegisterResponse struct {
	ID string `json:"id"`
	// PollWaitMS hints how long the coordinator holds an empty poll.
	PollWaitMS int `json:"poll_wait_ms"`
}

// PollRequest asks for work (long poll).
type PollRequest struct {
	WorkerID string `json:"worker_id"`
}

// PollResponse carries at most one task; nil means "nothing for you now"
// (not engaged, or the queue is empty).
type PollResponse struct {
	Task *Task `json:"task,omitempty"`
}

// TaskOptions are the coordinator-pinned run options a worker needs to
// rebuild a stage's stream deterministically (StageEnv.RemoteOptions):
// the shard plan and region width are already decided, so the worker's
// re-Split is byte-identical without a Data Broker.
type TaskOptions struct {
	Aligner      align.Config   `json:"aligner"`
	Caller       variant.Config `json:"caller"`
	ShardRecords int            `json:"shard_records,omitempty"`
	Regions      int            `json:"regions,omitempty"`
	MinQual      float64        `json:"min_qual,omitempty"`
}

// PinOptions converts the engine's pinned options to wire form.
func PinOptions(opts workflow.RunOptions) TaskOptions {
	return TaskOptions{
		Aligner:      opts.Aligner,
		Caller:       opts.Caller,
		ShardRecords: opts.ShardRecords,
		Regions:      opts.Regions,
		MinQual:      opts.MinQual,
	}
}

// RunOptions converts wire options back to engine form.
func (o TaskOptions) RunOptions() workflow.RunOptions {
	return workflow.RunOptions{
		Aligner:      o.Aligner,
		Caller:       o.Caller,
		ShardRecords: o.ShardRecords,
		Regions:      o.Regions,
		MinQual:      o.MinQual,
		Barrier:      true,
	}
}

// Task is one shard dispatch: which shard of which stage of which
// workflow, plus where the stage's input lives — by content hash
// (GET /api/v2/blobs/{ContextHash}, cacheable) or inline for small
// contexts. The worker re-Splits the context with the pinned Options and
// transforms shard Shard.
type Task struct {
	ID          string      `json:"id"`
	Workflow    string      `json:"workflow"`
	Stage       int         `json:"stage"`
	Shard       int         `json:"shard"`
	Attempt     int         `json:"attempt"`
	ContextHash string      `json:"context_hash,omitempty"`
	Context     []byte      `json:"context,omitempty"`
	Options     TaskOptions `json:"options"`
}

// ResultRequest reports one finished dispatch. Exactly one of Output or
// Error is set; Records is the shard's input record count and ElapsedMS
// the worker-observed transform time — the coordinator feeds both to the
// Data Broker as the stage's shard telemetry.
type ResultRequest struct {
	WorkerID  string  `json:"worker_id"`
	TaskID    string  `json:"task_id"`
	Output    []byte  `json:"output,omitempty"`
	Records   int     `json:"records"`
	ElapsedMS float64 `json:"elapsed_ms"`
	Error     string  `json:"error,omitempty"`
}

// ResultResponse acknowledges a result; Accepted is false when the shard
// was already completed by another dispatch (the duplicate is discarded).
type ResultResponse struct {
	Accepted bool `json:"accepted"`
}

// WorkerStatus is one roster row of GET /api/v2/workers.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Addr is the worker's remote address as seen at registration.
	Addr string `json:"addr"`
	// State is "active" (engaged, running or ready for shards), "idle"
	// (registered, not engaged) or "gone" (heartbeat expired).
	State string `json:"state"`
	// Slots is the worker's concurrent shard capacity.
	Slots int `json:"slots"`
	// Inflight counts shards currently dispatched to the worker.
	Inflight int `json:"inflight"`
	// ShardsDone counts shard results the coordinator accepted from it.
	ShardsDone int `json:"shards_done"`
	// LastHeartbeatMS is milliseconds since the worker last polled or
	// reported.
	LastHeartbeatMS int64 `json:"last_heartbeat_ms"`
}

// Metrics counts coordinator-side fleet events.
type Metrics struct {
	// Hires and Releases count engagement transitions (the ScalingPolicy's
	// decisions on a live fleet).
	Hires    int `json:"hires"`
	Releases int `json:"releases"`
	// Dispatched counts task grants; Redispatched the subset that re-ran a
	// shard after a timeout, worker loss, or straggler duplicate.
	Dispatched   int `json:"dispatched"`
	Redispatched int `json:"redispatched"`
	// Completed counts accepted shard results; DuplicatesDiscarded counts
	// results for already-completed shards (straggler losses of the
	// first-result-wins race).
	Completed           int `json:"completed"`
	DuplicatesDiscarded int `json:"duplicates_discarded"`
	// RemoteStages counts stages executed through the fleet.
	RemoteStages int `json:"remote_stages"`
}

// Roster is GET /api/v2/workers' body.
type Roster struct {
	Workers []WorkerStatus `json:"workers"`
	// Queued is the current dispatch-queue depth.
	Queued  int     `json:"queued"`
	Metrics Metrics `json:"metrics"`
}

// Errors shared by the decode helpers.
var (
	ErrBadEnvelope = errors.New("fleet: bad envelope")
)

// DecodeTask parses and validates a task envelope (the worker's half of
// the shard-dispatch wire; fuzzed in fuzz_test.go).
func DecodeTask(b []byte) (Task, error) {
	if len(b) > maxEnvelope {
		return Task{}, fmt.Errorf("%w: task envelope over %d bytes", ErrBadEnvelope, maxEnvelope)
	}
	var t Task
	if err := json.Unmarshal(b, &t); err != nil {
		return Task{}, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if t.ID == "" || t.Workflow == "" {
		return Task{}, fmt.Errorf("%w: task needs id and workflow", ErrBadEnvelope)
	}
	if t.Stage < 0 || t.Shard < 0 {
		return Task{}, fmt.Errorf("%w: negative stage or shard index", ErrBadEnvelope)
	}
	if t.ContextHash == "" && t.Context == nil {
		return Task{}, fmt.Errorf("%w: task needs a context hash or inline context", ErrBadEnvelope)
	}
	return t, nil
}

// DecodeResult parses and validates a result envelope (the coordinator's
// half; fuzzed in fuzz_test.go). The gob Output payload is decoded
// separately by the coordinator so a duplicate result can be discarded
// without paying for its decode.
func DecodeResult(b []byte) (ResultRequest, error) {
	if len(b) > maxEnvelope {
		return ResultRequest{}, fmt.Errorf("%w: result envelope over %d bytes", ErrBadEnvelope, maxEnvelope)
	}
	var res ResultRequest
	if err := json.Unmarshal(b, &res); err != nil {
		return ResultRequest{}, fmt.Errorf("%w: %v", ErrBadEnvelope, err)
	}
	if res.WorkerID == "" || res.TaskID == "" {
		return ResultRequest{}, fmt.Errorf("%w: result needs worker_id and task_id", ErrBadEnvelope)
	}
	if res.Error == "" && res.Output == nil {
		return ResultRequest{}, fmt.Errorf("%w: result needs an output or an error", ErrBadEnvelope)
	}
	return res, nil
}
