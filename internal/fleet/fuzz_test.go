package fleet

import (
	"encoding/json"
	"errors"
	"testing"

	"scan/internal/workflow"
)

// The fleet's wire surface decodes bytes from the network on both ends:
// the worker decodes task envelopes, the coordinator decodes result
// envelopes and their gob shard payloads. The fuzzers assert the decoders
// never panic and that every accepted envelope satisfies the validated
// invariants — a malformed or hostile peer can produce errors, not
// crashes. CI's fuzz-smoke job runs these alongside the registry's
// upload-decoder fuzzers.

func FuzzDecodeTask(f *testing.F) {
	seed, err := json.Marshal(Task{
		ID: "t1", Workflow: "dna-variant-detection", Stage: 0, Shard: 2,
		Attempt: 1, ContextHash: "deadbeef",
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"id":"t2","workflow":"w","stage":0,"shard":0,"context":"aGk="}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"id":"t3","workflow":"w","stage":-1,"shard":0,"context_hash":"x"}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		task, err := DecodeTask(data)
		if err != nil {
			if !errors.Is(err, ErrBadEnvelope) {
				t.Fatalf("decode error outside ErrBadEnvelope: %v", err)
			}
			return
		}
		if task.ID == "" || task.Workflow == "" {
			t.Fatalf("accepted task without identity: %+v", task)
		}
		if task.Stage < 0 || task.Shard < 0 {
			t.Fatalf("accepted negative indices: %+v", task)
		}
		if task.ContextHash == "" && task.Context == nil {
			t.Fatalf("accepted task with no context source: %+v", task)
		}
	})
}

func FuzzDecodeResult(f *testing.F) {
	out, err := workflow.EncodeShard(workflow.StreamShard{Records: 3, Data: workflow.Feature{Name: "g1", Value: 1.5}})
	if err != nil {
		f.Fatal(err)
	}
	seed, err := json.Marshal(ResultRequest{
		WorkerID: "w1", TaskID: "t1", Output: out, Records: 3, ElapsedMS: 12.5,
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte(`{"worker_id":"w1","task_id":"t1","error":"boom"}`))
	f.Add([]byte(`{"worker_id":"","task_id":"t1","output":"aGk="}`))
	f.Add([]byte(`{"worker_id":"w1","task_id":"t1","output":"aGk="}`))
	f.Add([]byte(`[]`))
	f.Fuzz(func(t *testing.T, data []byte) {
		res, err := DecodeResult(data)
		if err != nil {
			if !errors.Is(err, ErrBadEnvelope) {
				t.Fatalf("decode error outside ErrBadEnvelope: %v", err)
			}
			return
		}
		if res.WorkerID == "" || res.TaskID == "" {
			t.Fatalf("accepted result without identity: %+v", res)
		}
		if res.Error == "" && res.Output == nil {
			t.Fatalf("accepted result with neither output nor error: %+v", res)
		}
		// The gob payload decode is the coordinator's second step; arbitrary
		// bytes must error cleanly, never panic.
		if res.Output != nil {
			_, _ = workflow.DecodeShard(res.Output)
		}
	})
}
