package fleet

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"scan/internal/blobstore"
	"scan/internal/scheduler"
	"scan/internal/workflow"
)

// Options tunes a Coordinator. The zero value works: every knob has a
// production default, and tests shrink the timing knobs.
type Options struct {
	// Token, when non-empty, is required as `Authorization: Bearer <Token>`
	// on the fleet control endpoints and the blob data plane.
	Token string
	// Scaling selects the Table I horizontal-scaling algorithm that
	// gates worker engagement (default AlwaysScale).
	Scaling scheduler.ScalingPolicy
	// Allocation selects the Table I resource-allocation policy, mapped
	// onto idle-release horizons (scheduler.FleetAdvisor.IdleRelease).
	Allocation scheduler.AllocationPolicy
	// Baseline, HirePrice, DelayCostPerSec, Margin and StartupDelay feed
	// the FleetAdvisor (zero: its defaults).
	Baseline        int
	HirePrice       float64
	DelayCostPerSec float64
	Margin          float64
	StartupDelay    time.Duration
	// ShardTimeout bounds one dispatch; past it the shard re-queues
	// (default 60s).
	ShardTimeout time.Duration
	// MaxAttempts bounds dispatches per shard, counting retries and
	// straggler duplicates (default 5).
	MaxAttempts int
	// StragglerAfter is the minimum age before a running dispatch can be
	// raced by a duplicate (default 2s); StragglerFactor scales the stage's
	// median completion time into the effective threshold (default 3).
	StragglerAfter  time.Duration
	StragglerFactor float64
	// WorkerExpiry is the heartbeat horizon: a worker silent for longer is
	// treated as lost and its dispatches re-queue (default 10s).
	WorkerExpiry time.Duration
	// PollWait is how long an empty poll is held before returning no task
	// (default 1s).
	PollWait time.Duration
	// SweepEvery is the active-stage bookkeeping cadence: timeouts, lost
	// workers, stragglers (default 25ms).
	SweepEvery time.Duration
	// InlineLimit is the largest encoded context shipped inline in the
	// dispatch instead of by blob hash (default 64 KiB).
	InlineLimit int
	// MaxBlobs bounds the coordinator's cached context blobs (default 16;
	// blobs referenced by active stages are never evicted).
	MaxBlobs int
	// Blobs is the durable content-addressed store the dataset registry
	// spills into. When set, blob GETs that miss the in-memory context
	// cache fall back to it, so coordinator and workers share one
	// content-addressed data plane (a worker fetches a spilled dataset
	// part by the same hash a stage context travels under). Nil keeps the
	// data plane memory-only.
	Blobs *blobstore.Store
	// Logf receives coordinator events (default: silent).
	Logf func(format string, args ...any)
	// Now is the clock (default time.Now; a test seam).
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.ShardTimeout <= 0 {
		o.ShardTimeout = 60 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 5
	}
	if o.StragglerAfter <= 0 {
		o.StragglerAfter = 2 * time.Second
	}
	if o.StragglerFactor <= 0 {
		o.StragglerFactor = 3
	}
	if o.WorkerExpiry <= 0 {
		o.WorkerExpiry = 10 * time.Second
	}
	if o.PollWait <= 0 {
		o.PollWait = time.Second
	}
	if o.SweepEvery <= 0 {
		o.SweepEvery = 25 * time.Millisecond
	}
	if o.InlineLimit <= 0 {
		o.InlineLimit = 64 << 10
	}
	if o.MaxBlobs <= 0 {
		o.MaxBlobs = 16
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Coordinator owns the fleet's server half: the worker roster, the
// dispatch queue, the content-addressed blob store, and the engagement
// decisions. It implements workflow.ShardPool, so a run whose
// RunOptions.ShardPool points here executes its streaming stages on the
// fleet. All state is in-memory and mutex-guarded; the coordinator spawns
// no goroutines of its own (sweeps ride the RunShards callers' tickers,
// long-polls ride their requests).
type Coordinator struct {
	opts    Options
	advisor scheduler.FleetAdvisor

	mu      sync.Mutex
	wake    chan struct{} // closed + replaced whenever work arrives
	seq     int
	taskSeq int
	workers map[string]*workerState
	order   []string // registration order, for stable rosters
	queue   []*task
	tasks   map[string]*task // dispatched and still routable
	stages  map[*stageRun]struct{}
	blobs   map[string][]byte
	blobRef map[string]int
	blobAge []string
	metrics Metrics
	// lastDrain and gapSec observe the spacing of work bursts for the
	// LongTermAdaptive idle-release horizon.
	lastDrain time.Time
	gapSec    float64
}

// NewCoordinator builds a coordinator.
func NewCoordinator(opts Options) *Coordinator {
	opts = opts.withDefaults()
	return &Coordinator{
		opts: opts,
		advisor: scheduler.FleetAdvisor{
			Policy:          opts.Scaling,
			Baseline:        opts.Baseline,
			HirePrice:       opts.HirePrice,
			DelayCostPerSec: opts.DelayCostPerSec,
			Margin:          opts.Margin,
			StartupDelaySec: opts.StartupDelay.Seconds(),
		},
		wake:    make(chan struct{}),
		workers: make(map[string]*workerState),
		tasks:   make(map[string]*task),
		stages:  make(map[*stageRun]struct{}),
		blobs:   make(map[string][]byte),
		blobRef: make(map[string]int),
	}
}

var _ workflow.ShardPool = (*Coordinator)(nil)

type workerState struct {
	id, name, addr string
	slots          int
	engaged        bool
	lastSeen       time.Time
	lastWork       time.Time
	inflight       map[string]*task
	done           int
}

type stageRun struct {
	spec        Task // template: workflow, stage, context, options
	estSec      float64
	n           int
	done        []bool
	outs        []workflow.StreamShard
	recs        []int
	elaps       []time.Duration
	attempts    []int
	outstanding []int // queued + dispatched, per shard
	remaining   int
	closed      bool
	err         error
	lastErr     error
	finished    chan struct{}
	completions []float64 // accepted shard durations, seconds
	blobHash    string
}

type task struct {
	id         string
	sr         *stageRun
	shard      int
	worker     *workerState
	dispatched time.Time
	deadline   time.Time
	// superseded dispatches timed out or lost their worker; a late result
	// still routes (first result wins) but the shard has re-queued.
	superseded bool
}

func (sr *stageRun) failLocked(err error) {
	if sr.closed {
		return
	}
	sr.closed = true
	sr.err = err
	close(sr.finished)
}

// RunShards implements workflow.ShardPool: encode the stage's input for
// the data plane, enqueue one task per shard, and wait for first-wins
// results while sweeping timeouts, lost workers and stragglers.
func (c *Coordinator) RunShards(ctx context.Context, env *workflow.StageEnv, shards []workflow.StreamShard) ([]workflow.StreamShard, error) {
	if len(shards) == 0 {
		return []workflow.StreamShard{}, ctx.Err()
	}
	c.mu.Lock()
	alive := c.aliveLocked(c.opts.Now())
	c.mu.Unlock()
	if alive == 0 {
		return nil, workflow.ErrNoWorkers
	}
	enc, err := workflow.EncodeDataset(env.Input())
	if err != nil {
		return nil, err
	}
	n := len(shards)
	sr := &stageRun{
		spec: Task{
			Workflow: env.Workflow(),
			Stage:    env.StageIndex(),
			Options:  PinOptions(env.RemoteOptions()),
		},
		n:           n,
		done:        make([]bool, n),
		outs:        make([]workflow.StreamShard, n),
		recs:        make([]int, n),
		elaps:       make([]time.Duration, n),
		attempts:    make([]int, n),
		outstanding: make([]int, n),
		remaining:   n,
		finished:    make(chan struct{}),
	}
	total := 0
	for _, s := range shards {
		total += s.Records
	}
	sr.estSec = env.EstimateShardCost(total/n, 1.0)
	if len(enc) <= c.opts.InlineLimit {
		sr.spec.Context = enc
	} else {
		sum := sha256.Sum256(enc)
		sr.blobHash = hex.EncodeToString(sum[:])
		sr.spec.ContextHash = sr.blobHash
	}

	c.mu.Lock()
	if sr.blobHash != "" {
		c.putBlobLocked(sr.blobHash, enc)
	}
	c.stages[sr] = struct{}{}
	c.metrics.RemoteStages++
	now := c.opts.Now()
	if len(c.queue) == 0 && len(c.tasks) == 0 && !c.lastDrain.IsZero() {
		gap := now.Sub(c.lastDrain).Seconds()
		if c.gapSec == 0 {
			c.gapSec = gap
		} else {
			c.gapSec = 0.3*gap + 0.7*c.gapSec
		}
	}
	for i := 0; i < n; i++ {
		c.enqueueLocked(&task{sr: sr, shard: i}, false)
	}
	c.mu.Unlock()
	src := "inline context"
	if sr.blobHash != "" {
		src = "blob " + sr.blobHash[:12]
	}
	c.opts.Logf("fleet: stage %s[%d]: dispatching %d shards from %s (est %.3fs/shard)",
		sr.spec.Workflow, sr.spec.Stage, n, src, sr.estSec)

	sweep := time.NewTicker(c.opts.SweepEvery)
	defer sweep.Stop()
wait:
	for {
		select {
		case <-ctx.Done():
			c.mu.Lock()
			c.abortStageLocked(sr, ctx.Err())
			c.mu.Unlock()
			return nil, ctx.Err()
		case <-sr.finished:
			break wait
		case <-sweep.C:
			c.mu.Lock()
			c.sweepLocked(c.opts.Now())
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	err = sr.err
	c.cleanupStageLocked(sr)
	c.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		env.LogShard(sr.recs[i], sr.elaps[i])
	}
	return sr.outs, nil
}

// ReadyWorkers reports live registered workers — the gate callers use to
// decide whether to offer a run to the fleet at all.
func (c *Coordinator) ReadyWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveLocked(c.opts.Now())
}

// FleetMetrics snapshots the coordinator's counters.
func (c *Coordinator) FleetMetrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.metrics
}

func (c *Coordinator) aliveLocked(now time.Time) int {
	n := 0
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.opts.WorkerExpiry {
			n++
		}
	}
	return n
}

func (c *Coordinator) engagedLocked(now time.Time) int {
	n := 0
	for _, ws := range c.workers {
		if ws.engaged && now.Sub(ws.lastSeen) <= c.opts.WorkerExpiry {
			n++
		}
	}
	return n
}

func (c *Coordinator) desiredLocked(now time.Time) int {
	est := 1.0
	if len(c.queue) > 0 {
		est = c.queue[0].sr.estSec
	}
	return c.advisor.DesiredWorkers(len(c.queue), c.engagedLocked(now), c.aliveLocked(now), est)
}

func (c *Coordinator) notifyLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

func (c *Coordinator) enqueueLocked(t *task, redispatch bool) {
	sr := t.sr
	if sr.closed || sr.done[t.shard] {
		return
	}
	if sr.attempts[t.shard] >= c.opts.MaxAttempts {
		if sr.outstanding[t.shard] == 0 {
			err := sr.lastErr
			if err == nil {
				err = errors.New("fleet: dispatch attempts exhausted")
			}
			sr.failLocked(fmt.Errorf("fleet: shard %d failed after %d dispatches: %w",
				t.shard, sr.attempts[t.shard], err))
		}
		return
	}
	sr.outstanding[t.shard]++
	c.queue = append(c.queue, t)
	if redispatch {
		c.metrics.Redispatched++
	}
	c.notifyLocked()
}

// grantLocked hands the polling worker a task if policy allows: engaged
// workers (or workers the ScalingPolicy says to engage now) take the queue
// head; everyone else waits.
func (c *Coordinator) grantLocked(ws *workerState, now time.Time) *Task {
	// Drop stale queue entries (their shard finished via another dispatch).
	for len(c.queue) > 0 {
		head := c.queue[0]
		if head.sr.closed || head.sr.done[head.shard] {
			head.sr.outstanding[head.shard]--
			c.queue = c.queue[1:]
			continue
		}
		break
	}
	if len(c.queue) == 0 {
		c.maybeReleaseLocked(ws, now)
		return nil
	}
	if !ws.engaged {
		if c.engagedLocked(now) >= c.desiredLocked(now) {
			return nil
		}
		ws.engaged = true
		c.metrics.Hires++
		c.opts.Logf("fleet: engaged worker %s (%s): queue %d", ws.id, ws.name, len(c.queue))
	}
	if len(ws.inflight) >= ws.slots {
		return nil
	}
	t := c.queue[0]
	c.queue = c.queue[1:]
	c.taskSeq++
	t.id = fmt.Sprintf("t%d", c.taskSeq)
	t.worker = ws
	t.dispatched = now
	t.deadline = now.Add(c.opts.ShardTimeout)
	t.sr.attempts[t.shard]++
	ws.inflight[t.id] = t
	ws.lastWork = now
	c.tasks[t.id] = t
	c.metrics.Dispatched++
	wire := t.sr.spec
	wire.ID = t.id
	wire.Shard = t.shard
	wire.Attempt = t.sr.attempts[t.shard]
	return &wire
}

func (c *Coordinator) maybeReleaseLocked(ws *workerState, now time.Time) {
	if !ws.engaged || len(ws.inflight) > 0 {
		return
	}
	hold := c.advisor.IdleRelease(c.opts.Allocation, c.gapSec)
	if ws.lastWork.IsZero() || now.Sub(ws.lastWork) >= hold {
		ws.engaged = false
		c.metrics.Releases++
		c.opts.Logf("fleet: released worker %s (%s) after %s idle", ws.id, ws.name, hold)
	}
}

// sweepLocked is the periodic bookkeeping pass: expire silent workers and
// re-queue their dispatches, time out overdue dispatches, race stragglers
// with duplicates, and fail active stages with ErrNoWorkers when the whole
// fleet is gone (the engine then falls back to its local pool).
func (c *Coordinator) sweepLocked(now time.Time) {
	for _, ws := range c.workers {
		if now.Sub(ws.lastSeen) <= c.opts.WorkerExpiry {
			continue
		}
		if len(ws.inflight) > 0 {
			c.opts.Logf("fleet: worker %s (%s) lost with %d shards in flight; re-queueing",
				ws.id, ws.name, len(ws.inflight))
		}
		for id, t := range ws.inflight {
			delete(ws.inflight, id)
			t.superseded = true
			t.sr.outstanding[t.shard]--
			if t.sr.lastErr == nil {
				t.sr.lastErr = fmt.Errorf("fleet: worker %s lost mid-shard", ws.id)
			}
			c.enqueueLocked(&task{sr: t.sr, shard: t.shard}, true)
		}
		ws.engaged = false
	}
	for id, t := range c.tasks {
		if t.superseded || !now.After(t.deadline) {
			continue
		}
		t.superseded = true
		if t.worker != nil {
			delete(t.worker.inflight, id)
		}
		t.sr.outstanding[t.shard]--
		if !t.sr.done[t.shard] {
			t.sr.lastErr = fmt.Errorf("fleet: shard %d dispatch timed out after %s", t.shard, c.opts.ShardTimeout)
		}
		c.enqueueLocked(&task{sr: t.sr, shard: t.shard}, true)
	}
	// Straggler duplicates: one extra dispatch for a shard whose only
	// outstanding dispatch has outlived the stage's straggler threshold.
	for sr := range c.stages {
		if sr.closed {
			continue
		}
		threshold := c.opts.StragglerAfter
		if med := medianSeconds(sr.completions); med > 0 {
			if t := time.Duration(c.opts.StragglerFactor * med * float64(time.Second)); t > threshold {
				threshold = t
			}
		}
		for _, t := range c.tasks {
			if t.sr != sr || t.superseded || sr.done[t.shard] {
				continue
			}
			if sr.outstanding[t.shard] != 1 || now.Sub(t.dispatched) < threshold {
				continue
			}
			c.opts.Logf("fleet: shard %d straggling on worker %s for %s; racing a duplicate",
				t.shard, t.worker.id, now.Sub(t.dispatched))
			c.enqueueLocked(&task{sr: sr, shard: t.shard}, true)
		}
	}
	if c.aliveLocked(now) == 0 {
		for sr := range c.stages {
			sr.failLocked(fmt.Errorf("%w: every fleet worker expired mid-stage", workflow.ErrNoWorkers))
		}
	}
	// Forget long-gone workers so the roster does not grow without bound.
	for id, ws := range c.workers {
		if now.Sub(ws.lastSeen) > 6*c.opts.WorkerExpiry && len(ws.inflight) == 0 {
			delete(c.workers, id)
			for i, oid := range c.order {
				if oid == id {
					c.order = append(c.order[:i], c.order[i+1:]...)
					break
				}
			}
		}
	}
}

// abortStageLocked fails sr and releases its coordinator-side state in
// one step. A stageRun is guarded by c.mu, so the *Locked obligation
// roots at the coordinator, not the run.
func (c *Coordinator) abortStageLocked(sr *stageRun, err error) {
	sr.failLocked(err)
	c.cleanupStageLocked(sr)
}

func (c *Coordinator) cleanupStageLocked(sr *stageRun) {
	delete(c.stages, sr)
	kept := c.queue[:0]
	for _, t := range c.queue {
		if t.sr != sr {
			kept = append(kept, t)
		}
	}
	c.queue = kept
	for id, t := range c.tasks {
		if t.sr != sr {
			continue
		}
		if t.worker != nil {
			delete(t.worker.inflight, id)
		}
		delete(c.tasks, id)
	}
	if sr.blobHash != "" {
		c.blobRef[sr.blobHash]--
		c.evictBlobsLocked()
	}
	if len(c.queue) == 0 && len(c.tasks) == 0 {
		c.lastDrain = c.opts.Now()
	}
}

func medianSeconds(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// putBlobLocked stores a context blob and pins it for one stage.
func (c *Coordinator) putBlobLocked(hash string, b []byte) {
	if _, ok := c.blobs[hash]; !ok {
		c.blobs[hash] = b
		c.blobAge = append(c.blobAge, hash)
	}
	c.blobRef[hash]++
	c.evictBlobsLocked()
}

func (c *Coordinator) evictBlobsLocked() {
	for len(c.blobAge) > c.opts.MaxBlobs {
		evicted := false
		for i, h := range c.blobAge {
			if c.blobRef[h] <= 0 {
				delete(c.blobs, h)
				delete(c.blobRef, h)
				c.blobAge = append(c.blobAge[:i], c.blobAge[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return // everything pinned by active stages
		}
	}
}

// --- HTTP surface -----------------------------------------------------

// Mount registers the fleet's routes on mux: the token-authed control
// plane (register/poll/result) and blob data plane, plus the open
// GET /api/v2/workers roster. rpc.Server and the in-process tests mount
// the same set, so the paths have one definition.
func Mount(mux *http.ServeMux, c *Coordinator) {
	mux.HandleFunc("/api/v2/fleet/register", c.handleRegister)
	mux.HandleFunc("/api/v2/fleet/poll", c.handlePoll)
	mux.HandleFunc("/api/v2/fleet/result", c.handleResult)
	mux.HandleFunc("/api/v2/blobs/", c.handleBlob)
	mux.HandleFunc("/api/v2/workers", c.handleWorkers)
}

// writeErr emits the same structured envelope as the /api/v2 handlers
// ({"error":{"code","message"}}), so fleet endpoints honor the v2 route
// contract without importing internal/rpc.
func writeErr(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]string{"code": code, "message": fmt.Sprintf(format, args...)},
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (c *Coordinator) authed(w http.ResponseWriter, r *http.Request) bool {
	if c.opts.Token == "" {
		return true
	}
	want := "Bearer " + c.opts.Token
	got := r.Header.Get("Authorization")
	if subtle.ConstantTimeCompare([]byte(got), []byte(want)) == 1 {
		return true
	}
	writeErr(w, http.StatusUnauthorized, "unauthorized", "missing or invalid fleet token")
	return false
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if !c.authed(w, r) {
		return
	}
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "bad register body: %v", err)
		return
	}
	if req.Slots <= 0 {
		req.Slots = 1
	}
	c.mu.Lock()
	c.seq++
	id := fmt.Sprintf("w%d", c.seq)
	name := req.Name
	if name == "" {
		name = id
	}
	c.workers[id] = &workerState{
		id: id, name: name, addr: r.RemoteAddr, slots: req.Slots,
		lastSeen: c.opts.Now(), inflight: make(map[string]*task),
	}
	c.order = append(c.order, id)
	c.mu.Unlock()
	c.opts.Logf("fleet: worker %s registered as %s (%s, %d slots)", name, id, r.RemoteAddr, req.Slots)
	writeJSON(w, RegisterResponse{ID: id, PollWaitMS: int(c.opts.PollWait / time.Millisecond)})
}

func (c *Coordinator) handlePoll(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if !c.authed(w, r) {
		return
	}
	var req PollRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "bad poll body: %v", err)
		return
	}
	deadline := time.Now().Add(c.opts.PollWait)
	for {
		c.mu.Lock()
		ws, ok := c.workers[req.WorkerID]
		if !ok {
			c.mu.Unlock()
			writeErr(w, http.StatusNotFound, "unknown_worker", "no worker %q (re-register)", req.WorkerID)
			return
		}
		now := c.opts.Now()
		ws.lastSeen = now
		t := c.grantLocked(ws, now)
		wake := c.wake
		c.mu.Unlock()
		if t != nil {
			writeJSON(w, PollResponse{Task: t})
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			writeJSON(w, PollResponse{})
			return
		}
		// Park at most half the worker expiry per wait: each loop
		// iteration refreshes lastSeen, so a worker parked in a long-poll
		// keeps heartbeating even when PollWait exceeds WorkerExpiry
		// (otherwise the sweep expires an idle-but-connected worker
		// mid-poll and the fleet looks empty).
		park := remain
		if beat := c.opts.WorkerExpiry / 2; beat > 0 && park > beat {
			park = beat
		}
		timer := time.NewTimer(park)
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if !c.authed(w, r) {
		return
	}
	var res ResultRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxEnvelope+(1<<20))).Decode(&res); err != nil {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "bad result body: %v", err)
		return
	}
	if res.WorkerID == "" || res.TaskID == "" {
		writeErr(w, http.StatusBadRequest, "invalid_argument", "result needs worker_id and task_id")
		return
	}

	// Phase 1: detach the task under the lock; decide whether a decode is
	// even worth paying for.
	c.mu.Lock()
	now := c.opts.Now()
	ws, ok := c.workers[res.WorkerID]
	if !ok {
		c.mu.Unlock()
		writeErr(w, http.StatusNotFound, "unknown_worker", "no worker %q (re-register)", res.WorkerID)
		return
	}
	ws.lastSeen = now
	ws.lastWork = now
	t, routable := c.tasks[res.TaskID]
	if routable {
		delete(c.tasks, res.TaskID)
		if t.worker != nil {
			delete(t.worker.inflight, res.TaskID)
		}
		if !t.superseded {
			t.sr.outstanding[t.shard]--
		}
	}
	var sr *stageRun
	var shard int
	wanted := false
	if routable {
		sr, shard = t.sr, t.shard
		wanted = !sr.closed && !sr.done[shard]
	}
	if routable && wanted && res.Error != "" {
		sr.lastErr = fmt.Errorf("fleet: worker %s: %s", res.WorkerID, res.Error)
		c.enqueueLocked(&task{sr: sr, shard: shard}, true)
		c.mu.Unlock()
		writeJSON(w, ResultResponse{})
		return
	}
	c.mu.Unlock()
	if !routable || !wanted {
		// Unknown task (stage already gathered) or shard already complete:
		// idempotent discard — the first result won.
		c.mu.Lock()
		c.metrics.DuplicatesDiscarded++
		c.mu.Unlock()
		writeJSON(w, ResultResponse{})
		return
	}

	// Phase 2: decode outside the lock, then commit if still first.
	out, err := workflow.DecodeShard(res.Output)
	c.mu.Lock()
	defer c.mu.Unlock()
	if sr.closed || sr.done[shard] {
		c.metrics.DuplicatesDiscarded++
		writeJSON(w, ResultResponse{})
		return
	}
	if err != nil {
		sr.lastErr = fmt.Errorf("fleet: worker %s shard %d: %v", res.WorkerID, shard, err)
		c.enqueueLocked(&task{sr: sr, shard: shard}, true)
		writeJSON(w, ResultResponse{})
		return
	}
	sr.done[shard] = true
	sr.outs[shard] = out
	sr.recs[shard] = res.Records
	sr.elaps[shard] = time.Duration(res.ElapsedMS * float64(time.Millisecond))
	sr.completions = append(sr.completions, res.ElapsedMS/1000)
	sr.remaining--
	ws.done++
	c.metrics.Completed++
	if sr.remaining == 0 {
		sr.closed = true
		close(sr.finished)
	}
	writeJSON(w, ResultResponse{Accepted: true})
}

func (c *Coordinator) handleBlob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	if !c.authed(w, r) {
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/api/v2/blobs/")
	if hash == "" || strings.Contains(hash, "/") {
		writeErr(w, http.StatusNotFound, "not_found", "no such resource")
		return
	}
	c.mu.Lock()
	b, ok := c.blobs[hash]
	c.mu.Unlock()
	if !ok {
		// Not a cached stage context: fall back to the durable store, which
		// streams from disk (pread off the chunk file — the bytes never
		// become coordinator heap).
		if c.opts.Blobs != nil {
			if blob, err := c.opts.Blobs.Get(hash); err == nil {
				defer blob.Close()
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Header().Set("Content-Length", fmt.Sprint(blob.Size()))
				_, _ = io.Copy(w, blob.Reader())
				return
			}
		}
		writeErr(w, http.StatusNotFound, "not_found", "no blob %q", hash)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", fmt.Sprint(len(b)))
	_, _ = w.Write(b)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeErr(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	writeJSON(w, c.Snapshot())
}

// Snapshot builds the roster response: one row per registered worker in
// registration order, plus queue depth and metrics.
func (c *Coordinator) Snapshot() Roster {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.opts.Now()
	roster := Roster{Workers: make([]WorkerStatus, 0, len(c.order)), Queued: len(c.queue), Metrics: c.metrics}
	for _, id := range c.order {
		ws, ok := c.workers[id]
		if !ok {
			continue
		}
		state := "idle"
		switch {
		case now.Sub(ws.lastSeen) > c.opts.WorkerExpiry:
			state = "gone"
		case ws.engaged:
			state = "active"
		}
		roster.Workers = append(roster.Workers, WorkerStatus{
			ID: ws.id, Name: ws.name, Addr: ws.addr, State: state,
			Slots: ws.slots, Inflight: len(ws.inflight), ShardsDone: ws.done,
			LastHeartbeatMS: now.Sub(ws.lastSeen).Milliseconds(),
		})
	}
	return roster
}
