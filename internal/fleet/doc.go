// Package fleet makes the paper's "in Clouds" literal: a coordinator/worker
// subsystem that dispatches a workflow stage's shards to remote scand
// processes (`scand -role worker -join <coordinator>`) instead of the
// engine's local goroutine pool.
//
// The coordinator implements workflow.ShardPool, so it plugs into the
// engine through RunOptions.ShardPool with the local pool remaining the
// default and the equivalence reference. Remote and local pools share one
// executor path: a worker rebuilds the stage's stream from the stage's
// materialized input and coordinator-pinned options
// (workflow.Engine.PrepareStageShards) and runs the same
// Split/Transform the barrier scheduler would — there is no separate
// remote Execute.
//
// The data plane is content-addressed: a stage's input dataset gob-encodes
// once (workflow.EncodeDataset, deterministic) and ships by SHA-256 hash;
// workers fetch GET /api/v2/blobs/{hash} on first sight and cache it, so
// repeated stages over the same dataset transfer nothing. Small contexts
// (synthetic specs) fall back to inline bytes in the dispatch itself.
//
// Dispatch is pull-based over HTTP (register, long-poll, result) with
// per-shard timeout, bounded retry, and straggler re-dispatch: the first
// result for a shard wins and duplicates are discarded idempotently.
// Hire/release decisions route through scheduler.FleetAdvisor — the
// Section III-A2 scaling economics over live queue depth and Data-Broker
// fitted stage costs. See docs/FLEET.md for the protocol.
package fleet
