package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"scan/internal/genomics"
	"scan/internal/imaging"
	"scan/internal/knowledge"
	"scan/internal/network"
	"scan/internal/proteome"
	"scan/internal/scheduler"
	"scan/internal/workflow"
)

// --- dataset builders (mirrors of the workflow package's test fixtures;
// each call with the same seed regenerates an identical dataset, so the
// local and distributed runs consume independent but equal inputs) -------

func fastqDataset(t testing.TB, refLen, reads int, seed int64) *workflow.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genomics.GenerateReference(rng, "chr1", refLen)
	mutated, _ := genomics.PlantSNVs(rng, ref, 10)
	rd, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: reads, Length: 100, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workflow.NewFASTQDataset(ref, rd)
}

func mgfDataset(t testing.TB, proteins, spectra int, seed int64) *workflow.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := proteome.GenerateDatabase(rng, proteins, 3)
	sp, _, err := proteome.SimulateSpectra(rng, db, proteome.SimConfig{
		Count: spectra, NoisePeaks: 3, DropoutRate: 0.1, Jitter: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return workflow.NewMGFDataset(db, sp)
}

func tiffDataset(t testing.TB, images, cells int, seed int64) *workflow.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frames := make([]imaging.Image, 0, images)
	for i := 0; i < images; i++ {
		im, _, err := imaging.Generate(rng, fmt.Sprintf("img%d", i), imaging.SimConfig{W: 96, H: 96, Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, im)
	}
	return workflow.NewTIFFDataset(frames)
}

func featureDataset(t testing.TB, genes, modules int, seed int64) *workflow.Dataset {
	t.Helper()
	ms, _, err := network.SimulateMeasurements(rand.New(rand.NewSource(seed)), genes, modules)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]workflow.Feature, len(ms))
	for i, m := range ms {
		features[i] = workflow.Feature{Name: m.Name, Count: 1, Value: m.Value}
	}
	return workflow.NewFeatureDataset(features)
}

func seededKB(t testing.TB) *knowledge.Base {
	t.Helper()
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	return kb
}

// testFleet is an in-process coordinator with real workers attached over
// loopback HTTP.
type testFleet struct {
	coord  *Coordinator
	server *httptest.Server
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

func startFleet(t testing.TB, copts Options, workers int) *testFleet {
	t.Helper()
	if copts.SweepEvery == 0 {
		copts.SweepEvery = 5 * time.Millisecond
	}
	if copts.PollWait == 0 {
		copts.PollWait = 200 * time.Millisecond
	}
	coord := NewCoordinator(copts)
	mux := http.NewServeMux()
	Mount(mux, coord)
	srv := httptest.NewServer(mux)
	ctx, cancel := context.WithCancel(context.Background())
	tf := &testFleet{coord: coord, server: srv, cancel: cancel}
	for i := 0; i < workers; i++ {
		wk := NewWorker(WorkerOptions{
			Coordinator: srv.URL,
			Token:       copts.Token,
			Name:        fmt.Sprintf("node%d", i+1),
			Slots:       1,
			Logf:        t.Logf,
		})
		tf.wg.Add(1)
		go func() {
			defer tf.wg.Done()
			_ = wk.Run(ctx)
		}()
	}
	t.Cleanup(tf.stop)
	waitFor(t, 5*time.Second, func() bool { return coord.ReadyWorkers() >= workers })
	return tf
}

func (tf *testFleet) stop() {
	tf.cancel()
	tf.wg.Wait()
	tf.server.Close()
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// encode flattens a dataset to its canonical wire bytes so nil/empty slice
// representation differences cannot mask (or fake) a divergence.
func encode(t testing.TB, ds *workflow.Dataset) []byte {
	t.Helper()
	b, err := workflow.EncodeDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDistributedMatchesLocal is the acceptance contract: for every
// analysis family, a run through the coordinator + two remote workers
// produces byte-identical output and the same per-stage scatter telemetry
// as the same engine configuration running on its local pool.
func TestDistributedMatchesLocal(t *testing.T) {
	cases := []struct {
		workflow string
		opts     workflow.RunOptions
		dataset  func(t testing.TB) *workflow.Dataset
	}{
		{"dna-variant-detection", workflow.RunOptions{}, func(t testing.TB) *workflow.Dataset {
			return fastqDataset(t, 8000, 2000, 7)
		}},
		{"proteome-maxquant", workflow.RunOptions{ShardRecords: 100}, func(t testing.TB) *workflow.Dataset {
			return mgfDataset(t, 20, 400, 17)
		}},
		{"cell-imaging", workflow.RunOptions{Regions: 4}, func(t testing.TB) *workflow.Dataset {
			return tiffDataset(t, 3, 5, 23)
		}},
		{"integrative-network", workflow.RunOptions{ShardRecords: 20}, func(t testing.TB) *workflow.Dataset {
			return featureDataset(t, 60, 4, 29)
		}},
	}
	tf := startFleet(t, Options{Scaling: scheduler.AlwaysScale}, 2)
	for _, tc := range cases {
		t.Run(tc.workflow, func(t *testing.T) {
			// Independent engines with independently seeded knowledge bases:
			// the Data Broker adapts to run logs, so sharing one KB across
			// the two runs would let the first run's telemetry reshape the
			// second run's shard plan.
			local := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
			remote := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})

			want, err := local.RunByName(context.Background(), tc.workflow, tc.dataset(t), tc.opts)
			if err != nil {
				t.Fatalf("local run: %v", err)
			}
			ropts := tc.opts
			ropts.ShardPool = tf.coord
			got, err := remote.RunByName(context.Background(), tc.workflow, tc.dataset(t), ropts)
			if err != nil {
				t.Fatalf("distributed run: %v", err)
			}

			if !bytes.Equal(encode(t, want.Output), encode(t, got.Output)) {
				t.Fatalf("distributed output diverges from local for %s", tc.workflow)
			}
			if len(want.Stages) != len(got.Stages) {
				t.Fatalf("stage count: local %d, distributed %d", len(want.Stages), len(got.Stages))
			}
			for i := range want.Stages {
				w, g := want.Stages[i], got.Stages[i]
				if w.Stage != g.Stage || w.Tool != g.Tool || w.Shards != g.Shards ||
					w.Records != g.Records || !reflect.DeepEqual(w.Plan, g.Plan) {
					t.Fatalf("stage %d diverges:\nlocal       %s/%s shards=%d records=%d plan=%+v\ndistributed %s/%s shards=%d records=%d plan=%+v",
						i, w.Stage, w.Tool, w.Shards, w.Records, w.Plan,
						g.Stage, g.Tool, g.Shards, g.Records, g.Plan)
				}
			}
		})
	}
	// The work spread across the fleet: with AlwaysScale and four multi-shard
	// stages, both nodes must have executed shards.
	roster := tf.coord.Snapshot()
	if len(roster.Workers) != 2 {
		t.Fatalf("roster = %d workers, want 2", len(roster.Workers))
	}
	for _, ws := range roster.Workers {
		if ws.ShardsDone == 0 {
			t.Fatalf("worker %s (%s) executed no shards; fleet did not scatter", ws.ID, ws.Name)
		}
	}
	if m := tf.coord.FleetMetrics(); m.RemoteStages == 0 || m.Completed == 0 {
		t.Fatalf("metrics = %+v, want remote stages and completions", m)
	}
}

// TestRunShardsNoWorkersFallsBackLocal: a pool with no registered workers
// reports ErrNoWorkers and the engine transparently runs the stage on its
// local pool — the run succeeds with identical output.
func TestRunShardsNoWorkersFallsBackLocal(t *testing.T) {
	coord := NewCoordinator(Options{})
	e := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	want, err := e.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	e2 := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	got, err := e2.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20, ShardPool: coord})
	if err != nil {
		t.Fatalf("run with empty fleet: %v", err)
	}
	if !bytes.Equal(encode(t, want.Output), encode(t, got.Output)) {
		t.Fatal("local fallback diverges from plain local run")
	}
	if m := coord.FleetMetrics(); m.Dispatched != 0 {
		t.Fatalf("empty fleet dispatched %d tasks", m.Dispatched)
	}
}

// fakeWorker drives the wire protocol by hand so tests can misbehave in
// ways the real Worker never would: take a task and die, or sit on it past
// the straggler threshold.
type fakeWorker struct {
	t    testing.TB
	base string
	id   string
}

func newFakeWorker(t testing.TB, base, name string) *fakeWorker {
	t.Helper()
	fw := &fakeWorker{t: t, base: base}
	var resp RegisterResponse
	fw.post("/api/v2/fleet/register", RegisterRequest{Name: name, Slots: 1}, &resp)
	if resp.ID == "" {
		t.Fatal("fake worker: no id assigned")
	}
	fw.id = resp.ID
	return fw
}

func (fw *fakeWorker) post(path string, in, out any) int {
	fw.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		fw.t.Fatal(err)
	}
	resp, err := http.Post(fw.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		fw.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			fw.t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// pollUntilTask polls until the coordinator grants a task.
func (fw *fakeWorker) pollUntilTask(timeout time.Duration) Task {
	fw.t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var resp PollResponse
		fw.post("/api/v2/fleet/poll", PollRequest{WorkerID: fw.id}, &resp)
		if resp.Task != nil {
			return *resp.Task
		}
	}
	fw.t.Fatal("fake worker: no task granted in time")
	return Task{}
}

// TestWorkerLossRedispatches: a worker that takes a shard and dies loses
// its dispatch to the heartbeat sweep; the shard re-queues and the
// surviving worker completes the stage with no lost or duplicated results.
func TestWorkerLossRedispatches(t *testing.T) {
	tf := startFleet(t, Options{
		Scaling:      scheduler.AlwaysScale,
		WorkerExpiry: 150 * time.Millisecond,
		// The sweep must attribute the loss to the dead worker, not a shard
		// timeout.
		ShardTimeout: time.Minute,
	}, 0)

	// The doomed worker registers first and parks a long-poll on the
	// queue head.
	dead := newFakeWorker(t, tf.server.URL, "doomed")

	// The healthy worker is alive from the start, so the fleet never
	// empties: the stranded shard must flow through the re-dispatch path,
	// not the all-workers-gone local fallback (which would also succeed
	// but is a different contract, pinned by
	// TestRunShardsNoWorkersFallsBackLocal).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wk := NewWorker(WorkerOptions{Coordinator: tf.server.URL, Name: "healthy", Slots: 1, Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = wk.Run(ctx) }()
	defer wg.Wait()
	defer cancel()
	waitFor(t, 5*time.Second, func() bool {
		for _, ws := range tf.coord.Snapshot().Workers {
			if ws.Name == "healthy" {
				return true
			}
		}
		return false
	})

	e := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	ds := featureDataset(t, 60, 4, 29)
	opts := workflow.RunOptions{ShardRecords: 20, ShardPool: tf.coord}
	type res struct {
		r   *workflow.Result
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := e.RunByName(context.Background(), "integrative-network", ds, opts)
		done <- res{r, err}
	}()

	// Take one shard and go silent: no result, no more polls. The shard
	// is stranded until the heartbeat sweep expires the worker.
	taken := dead.pollUntilTask(5 * time.Second)
	if taken.ID == "" {
		t.Fatal("no task taken")
	}

	got := <-done
	if got.err != nil {
		t.Fatalf("run with mid-shard worker loss: %v", got.err)
	}

	e2 := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	want, err := e2.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, want.Output), encode(t, got.r.Output)) {
		t.Fatal("output diverges after worker loss re-dispatch")
	}
	m := tf.coord.FleetMetrics()
	if m.Redispatched == 0 {
		t.Fatalf("metrics = %+v: the stranded shard never re-dispatched", m)
	}
	if m.Completed != 3 {
		t.Fatalf("completed = %d accepted shard results, want exactly 3 (no loss, no double-commit)", m.Completed)
	}
}

// TestStragglerRacedAndLateResultDiscarded: a live-but-slow worker holds a
// shard past the straggler threshold; the coordinator races a duplicate
// dispatch, the fast worker's result wins, and the straggler's late result
// is discarded idempotently.
func TestStragglerRacedAndLateResultDiscarded(t *testing.T) {
	tf := startFleet(t, Options{
		Scaling:         scheduler.AlwaysScale,
		StragglerAfter:  100 * time.Millisecond,
		StragglerFactor: 1,
		// Neither the shard timeout nor worker expiry may fire first: the
		// duplicate must come from the straggler race alone.
		ShardTimeout: time.Minute,
		WorkerExpiry: time.Minute,
	}, 0)

	slow := newFakeWorker(t, tf.server.URL, "slow")

	e := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	opts := workflow.RunOptions{ShardRecords: 20, ShardPool: tf.coord}
	type res struct {
		r   *workflow.Result
		err error
	}
	done := make(chan res, 1)
	go func() {
		r, err := e.RunByName(context.Background(), "integrative-network", featureDataset(t, 60, 4, 29), opts)
		done <- res{r, err}
	}()

	taken := slow.pollUntilTask(5 * time.Second)

	// Keep the heartbeat fresh but never finish: with one slot and one
	// inflight task the polls grant nothing, they just prove liveness.
	stop := make(chan struct{})
	var hb sync.WaitGroup
	hb.Add(1)
	go func() {
		defer hb.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(20 * time.Millisecond):
				var resp PollResponse
				slow.post("/api/v2/fleet/poll", PollRequest{WorkerID: slow.id}, &resp)
				if resp.Task != nil {
					fw := resp.Task
					_ = fw // one slot, one inflight: never granted
				}
			}
		}
	}()

	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	wk := NewWorker(WorkerOptions{Coordinator: tf.server.URL, Name: "fast", Slots: 1, Logf: t.Logf})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = wk.Run(wctx) }()
	defer wg.Wait()
	defer wcancel()

	got := <-done
	close(stop)
	hb.Wait()
	if got.err != nil {
		t.Fatalf("run with straggler: %v", got.err)
	}
	m := tf.coord.FleetMetrics()
	if m.Redispatched == 0 {
		t.Fatalf("metrics = %+v: straggler never raced", m)
	}

	// The straggler finally reports. The shard is long since complete, so
	// the coordinator discards the duplicate and says so.
	prep := workflow.NewEngine(workflow.EngineOptions{Workers: 1})
	sp, err := prep.PrepareStageShards(taken.Workflow, taken.Stage,
		mustDecode(t, taken), taken.Options.RunOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, records, err := sp.RunShard(context.Background(), taken.Shard)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := workflow.EncodeShard(out)
	if err != nil {
		t.Fatal(err)
	}
	var ack ResultResponse
	slow.post("/api/v2/fleet/result", ResultRequest{
		WorkerID: slow.id, TaskID: taken.ID, Output: enc, Records: records, ElapsedMS: 1,
	}, &ack)
	if ack.Accepted {
		t.Fatal("late straggler result was accepted after the duplicate already won")
	}
	if m := tf.coord.FleetMetrics(); m.DuplicatesDiscarded == 0 {
		t.Fatalf("metrics = %+v: duplicate not counted as discarded", m)
	}
}

func mustDecode(t testing.TB, task Task) *workflow.Dataset {
	t.Helper()
	if task.Context == nil {
		t.Fatal("task shipped by blob; test expected inline context")
	}
	ds, err := workflow.DecodeDataset(task.Context)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestScalingPoliciesGateEngagement runs the same distributed stage under
// each scaling policy and asserts the hire decisions on the live fleet:
// NeverScale keeps the second worker cold, PredictiveScale hires it only
// when Equation 1's queue-delay cost clears the hire cost, AlwaysScale
// engages everyone.
func TestScalingPoliciesGateEngagement(t *testing.T) {
	run := func(t *testing.T, copts Options, shards int) (*Coordinator, Roster) {
		t.Helper()
		tf := startFleet(t, copts, 2)
		// A knowledge-base-free engine estimates every shard at the 1s
		// fallback, making the hire economics deterministic: with q shards
		// queued the 1→2 hire saves DelayCostPerSec·q(q-1)/4 and costs
		// HirePrice·Margin·(startup+1s).
		e := workflow.NewEngine(workflow.EngineOptions{Workers: 4})
		ds := featureDataset(t, 20*shards, 4, 29)
		_, err := e.RunByName(context.Background(), "integrative-network", ds,
			workflow.RunOptions{ShardRecords: 20, ShardPool: tf.coord})
		if err != nil {
			t.Fatal(err)
		}
		return tf.coord, tf.coord.Snapshot()
	}
	shardsDone := func(r Roster) (int, int) {
		busy, total := 0, 0
		for _, ws := range r.Workers {
			total += ws.ShardsDone
			if ws.ShardsDone > 0 {
				busy++
			}
		}
		return busy, total
	}

	t.Run("never-scale", func(t *testing.T) {
		coord, roster := run(t, Options{Scaling: scheduler.NeverScale}, 8)
		busy, total := shardsDone(roster)
		if busy != 1 || total != 8 {
			t.Fatalf("never-scale: %d workers busy over %d shards, want exactly 1 over 8", busy, total)
		}
		if m := coord.FleetMetrics(); m.Hires != 1 {
			t.Fatalf("never-scale hired %d workers, want 1 (the baseline)", m.Hires)
		}
	})
	t.Run("predictive-below-threshold", func(t *testing.T) {
		// 8 shards × 1s est: delay saving 14, hire cost 3×1000×1.1 — the
		// queue never justifies the second worker.
		coord, roster := run(t, Options{Scaling: scheduler.PredictiveScale, HirePrice: 1000}, 8)
		busy, total := shardsDone(roster)
		if busy != 1 || total != 8 {
			t.Fatalf("predictive(expensive): %d workers busy over %d shards, want exactly 1 over 8", busy, total)
		}
		if m := coord.FleetMetrics(); m.Hires != 1 {
			t.Fatalf("predictive(expensive) hired %d, want 1", m.Hires)
		}
	})
	t.Run("predictive-above-threshold", func(t *testing.T) {
		// Same queue at default prices: saving 14 clears cost 3.3, so the
		// policy hires the second worker.
		coord, _ := run(t, Options{Scaling: scheduler.PredictiveScale}, 8)
		if m := coord.FleetMetrics(); m.Hires != 2 {
			t.Fatalf("predictive(default) hired %d, want 2", m.Hires)
		}
	})
	t.Run("always-scale", func(t *testing.T) {
		coord, _ := run(t, Options{Scaling: scheduler.AlwaysScale}, 8)
		if m := coord.FleetMetrics(); m.Hires != 2 {
			t.Fatalf("always-scale hired %d, want 2", m.Hires)
		}
	})
}

// TestBlobDataPlane: a context over the inline limit ships by hash; the
// worker fetches it once and reuses the cached dataset for later shards.
func TestBlobDataPlane(t *testing.T) {
	tf := startFleet(t, Options{
		Scaling:     scheduler.AlwaysScale,
		InlineLimit: 1, // force everything through the blob store
	}, 2)
	e := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	got, err := e.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20, ShardPool: tf.coord})
	if err != nil {
		t.Fatalf("blob-shipped run: %v", err)
	}
	e2 := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	want, err := e2.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encode(t, want.Output), encode(t, got.Output)) {
		t.Fatal("blob-shipped output diverges from local")
	}
}

// TestFleetTokenAuth: with a token configured, unauthenticated control and
// data-plane requests are rejected with the v2 error envelope, and a real
// worker carrying the token still completes work end to end.
func TestFleetTokenAuth(t *testing.T) {
	tf := startFleet(t, Options{Scaling: scheduler.AlwaysScale, Token: "s3cret"}, 1)
	resp, err := http.Post(tf.server.URL+"/api/v2/fleet/register", "application/json",
		bytes.NewReader([]byte(`{"name":"intruder","slots":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("tokenless register: HTTP %d, want 401", resp.StatusCode)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error.Code != "unauthorized" {
		t.Fatalf("error envelope = %+v, err %v", env, err)
	}

	e := workflow.NewEngine(workflow.EngineOptions{KB: seededKB(t), Workers: 4})
	if _, err := e.RunByName(context.Background(), "integrative-network",
		featureDataset(t, 60, 4, 29), workflow.RunOptions{ShardRecords: 20, ShardPool: tf.coord}); err != nil {
		t.Fatalf("authed worker run: %v", err)
	}
}
