package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"scan/internal/workflow"
)

// WorkerOptions configures one worker process's pull loop.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL, e.g. "http://host:7077".
	Coordinator string
	// Token authenticates against the coordinator's fleet endpoints.
	Token string
	// Name labels the worker on the roster (default: hostname).
	Name string
	// Slots bounds concurrently executing shards (default: GOMAXPROCS).
	Slots int
	// Engine executes the shards. The default engine has no knowledge
	// base — workers never consult the Data Broker; every scatter decision
	// arrives pinned in the task options — and shares the coordinator's
	// default catalogue and executor registry.
	Engine *workflow.Engine
	// HTTPClient overrides the transport (default: a client with no
	// overall timeout, since polls long-hold).
	HTTPClient *http.Client
	// Logf receives worker events (default: silent).
	Logf func(format string, args ...any)
}

// Worker is one fleet node: it registers with the coordinator, long-polls
// for shard tasks, executes them through the exact engine path local runs
// use (Engine.PrepareStageShards → StageStream.Transform), and posts the
// results back. Context datasets are cached by content hash, and prepared
// stage streams (aligner indexes, region partitions) are cached per
// (context, stage, options), so a stage's second shard pays no setup.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	engine *workflow.Engine
	id     string

	mu    sync.Mutex
	blobs map[string]*workflow.Dataset
	bAge  []string
	preps map[string]*workflow.StagePrep
	pAge  []string
}

// workerCacheMax bounds the context-dataset and prepared-stream caches.
const workerCacheMax = 8

// NewWorker builds a worker (Run starts it).
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Name == "" {
		if host, err := os.Hostname(); err == nil {
			opts.Name = host
		}
	}
	if opts.Slots <= 0 {
		opts.Slots = runtime.GOMAXPROCS(0)
	}
	if opts.Engine == nil {
		opts.Engine = workflow.NewEngine(workflow.EngineOptions{Workers: opts.Slots})
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = &http.Client{}
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	return &Worker{
		opts:   opts,
		client: opts.HTTPClient,
		engine: opts.Engine,
		blobs:  make(map[string]*workflow.Dataset),
		preps:  make(map[string]*workflow.StagePrep),
	}
}

// Run registers and pulls work until ctx is cancelled. Transient HTTP
// failures back off and retry; a coordinator that forgot the worker
// (restart) triggers re-registration. Run returns ctx.Err after in-flight
// shards drain.
func (wk *Worker) Run(ctx context.Context) error {
	backoff := 250 * time.Millisecond
	sem := make(chan struct{}, wk.opts.Slots)
	var wg sync.WaitGroup
	defer wg.Wait()
	for ctx.Err() == nil {
		if wk.id == "" {
			if err := wk.register(ctx); err != nil {
				wk.opts.Logf("fleet worker: register: %v (retrying in %s)", err, backoff)
				if !sleepCtx(ctx, backoff) {
					break
				}
				backoff = min(2*backoff, 5*time.Second)
				continue
			}
			backoff = 250 * time.Millisecond
		}
		// Hold a slot before polling so a grant can always start at once.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
		resp, err := wk.poll(ctx)
		if err != nil {
			<-sem
			if ctx.Err() != nil {
				break
			}
			if errors.Is(err, errUnknownWorker) {
				wk.opts.Logf("fleet worker: coordinator forgot %s; re-registering", wk.id)
				wk.id = ""
				continue
			}
			wk.opts.Logf("fleet worker: poll: %v (retrying in %s)", err, backoff)
			if !sleepCtx(ctx, backoff) {
				break
			}
			backoff = min(2*backoff, 5*time.Second)
			continue
		}
		backoff = 250 * time.Millisecond
		if resp.Task == nil {
			<-sem
			continue
		}
		t, id := *resp.Task, wk.id
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			wk.execute(ctx, id, t)
		}()
	}
	return ctx.Err()
}

var errUnknownWorker = errors.New("fleet: unknown worker")

func (wk *Worker) register(ctx context.Context) error {
	var resp RegisterResponse
	err := wk.post(ctx, "/api/v2/fleet/register",
		RegisterRequest{Name: wk.opts.Name, Slots: wk.opts.Slots}, &resp)
	if err != nil {
		return err
	}
	if resp.ID == "" {
		return errors.New("fleet: empty worker id from coordinator")
	}
	wk.id = resp.ID
	wk.opts.Logf("fleet worker: registered as %s at %s", wk.id, wk.opts.Coordinator)
	return nil
}

func (wk *Worker) poll(ctx context.Context) (PollResponse, error) {
	var resp PollResponse
	err := wk.post(ctx, "/api/v2/fleet/poll", PollRequest{WorkerID: wk.id}, &resp)
	return resp, err
}

// execute runs one task through the shared executor path and reports the
// result; executor errors travel back as task failures, never crash the
// worker.
func (wk *Worker) execute(ctx context.Context, id string, t Task) {
	out, records, err := wk.runTask(ctx, t)
	if ctx.Err() != nil {
		return // shutting down: the coordinator's timeout re-queues the shard
	}
	res := ResultRequest{WorkerID: id, TaskID: t.ID}
	if err != nil {
		res.Error = err.Error()
	} else {
		enc, encErr := workflow.EncodeShard(out.shard)
		if encErr != nil {
			res.Error = encErr.Error()
		} else {
			res.Output = enc
			res.Records = records
		}
	}
	res.ElapsedMS = float64(out.elapsed) / float64(time.Millisecond)
	var ack ResultResponse
	for attempt := 0; attempt < 3; attempt++ {
		if err := wk.post(ctx, "/api/v2/fleet/result", res, &ack); err == nil {
			if !ack.Accepted && res.Error == "" {
				wk.opts.Logf("fleet worker: task %s shard %d: duplicate discarded (another dispatch won)", t.ID, t.Shard)
			}
			return
		} else if ctx.Err() != nil || errors.Is(err, errUnknownWorker) {
			return
		} else if attempt < 2 {
			sleepCtx(ctx, 200*time.Millisecond)
		} else {
			wk.opts.Logf("fleet worker: task %s: result delivery failed: %v", t.ID, err)
		}
	}
}

// taskOutput carries a transform's payload plus its observed duration.
type taskOutput struct {
	shard   workflow.StreamShard
	elapsed time.Duration
}

func (wk *Worker) runTask(ctx context.Context, t Task) (taskOutput, int, error) {
	prep, err := wk.prepare(ctx, t)
	if err != nil {
		return taskOutput{}, 0, err
	}
	if t.Shard >= prep.NumShards() {
		return taskOutput{}, 0, fmt.Errorf("fleet: shard %d out of range: local split yields %d shards (coordinator/worker divergence)",
			t.Shard, prep.NumShards())
	}
	start := time.Now()
	out, records, err := prep.RunShard(ctx, t.Shard)
	if err != nil {
		return taskOutput{}, 0, err
	}
	return taskOutput{shard: out, elapsed: time.Since(start)}, records, nil
}

// prepare resolves the task's context dataset (inline, cache, or blob
// fetch) and its prepared stage stream.
func (wk *Worker) prepare(ctx context.Context, t Task) (*workflow.StagePrep, error) {
	key := t.ContextHash
	var ds *workflow.Dataset
	if len(t.Context) > 0 {
		sum := sha256.Sum256(t.Context)
		key = hex.EncodeToString(sum[:])
	}
	optsJSON, err := json.Marshal(t.Options)
	if err != nil {
		return nil, err
	}
	prepKey := fmt.Sprintf("%s|%s|%d|%s", key, t.Workflow, t.Stage, optsJSON)
	wk.mu.Lock()
	if p, ok := wk.preps[prepKey]; ok {
		wk.mu.Unlock()
		return p, nil
	}
	ds = wk.blobs[key]
	wk.mu.Unlock()
	if ds == nil {
		var raw []byte
		if len(t.Context) > 0 {
			raw = t.Context
		} else {
			raw, err = wk.fetchBlob(ctx, t.ContextHash)
			if err != nil {
				return nil, err
			}
		}
		ds, err = workflow.DecodeDataset(raw)
		if err != nil {
			return nil, err
		}
		wk.mu.Lock()
		if _, ok := wk.blobs[key]; !ok {
			wk.blobs[key] = ds
			wk.bAge = append(wk.bAge, key)
			if len(wk.bAge) > workerCacheMax {
				delete(wk.blobs, wk.bAge[0])
				wk.bAge = wk.bAge[1:]
			}
		} else {
			ds = wk.blobs[key]
		}
		wk.mu.Unlock()
	}
	prep, err := wk.engine.PrepareStageShards(t.Workflow, t.Stage, ds, t.Options.RunOptions())
	if err != nil {
		return nil, err
	}
	wk.mu.Lock()
	defer wk.mu.Unlock()
	if p, ok := wk.preps[prepKey]; ok {
		return p, nil // a concurrent shard won the prepare race
	}
	wk.preps[prepKey] = prep
	wk.pAge = append(wk.pAge, prepKey)
	if len(wk.pAge) > workerCacheMax {
		delete(wk.preps, wk.pAge[0])
		wk.pAge = wk.pAge[1:]
	}
	return prep, nil
}

func (wk *Worker) fetchBlob(ctx context.Context, hash string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		wk.opts.Coordinator+"/api/v2/blobs/"+hash, nil)
	if err != nil {
		return nil, err
	}
	if wk.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+wk.opts.Token)
	}
	resp, err := wk.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: blob %s: HTTP %d", hash, resp.StatusCode)
	}
	return io.ReadAll(resp.Body)
}

func (wk *Worker) post(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		wk.opts.Coordinator+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if wk.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+wk.opts.Token)
	}
	resp, err := wk.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		if bytes.Contains(b, []byte("unknown_worker")) {
			return errUnknownWorker
		}
		return fmt.Errorf("fleet: POST %s: HTTP 404: %s", path, b)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("fleet: POST %s: HTTP %d: %s", path, resp.StatusCode, b)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
