package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"scan/internal/align"
	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/shard"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// seedVariantCalling replicates the pre-engine inline pipeline exactly as
// platform.go shipped it before the workflow-engine refactor (shard reads
// by Data Broker advice → align → merge → region scatter → pileup+call →
// merge), run sequentially since the results are parallelism-independent.
// It is the golden reference the engine-driven RunVariantCalling must
// reproduce bit-for-bit.
func seedVariantCalling(p *Platform, job VariantCallingJob) (*VariantCallingResult, error) {
	if len(job.Reads) == 0 {
		return nil, ErrNoReads
	}
	res := &VariantCallingResult{}

	recordsPerShard := job.ShardRecords
	if recordsPerShard <= 0 {
		jobUnits := float64(len(job.Reads)) / float64(p.recordsPerUnit)
		adv, err := p.kb.ShardAdvice(jobUnits)
		if err != nil {
			return nil, fmt.Errorf("core: data broker: %w", err)
		}
		res.Advice = adv
		recordsPerShard = int(adv.ShardSize * float64(p.recordsPerUnit))
		if recordsPerShard < 1 {
			recordsPerShard = 1
		}
	}
	plan, err := shard.PlanByRecords(len(job.Reads), recordsPerShard)
	if err != nil {
		return nil, err
	}
	res.ShardPlan = plan

	aligner, err := align.New(job.Reference, job.Aligner)
	if err != nil {
		return nil, err
	}
	res.Header = aligner.Header()

	readShards, err := shard.ChunkReads(job.Reads, recordsPerShard)
	if err != nil {
		return nil, err
	}
	alnShards := make([][]genomics.Alignment, len(readShards))
	for i := range readShards {
		var mapped int
		alnShards[i], mapped = aligner.AlignAll(readShards[i])
		res.Mapped += mapped
	}
	res.Alignments = genomics.MergeSorted(alnShards...)

	nRegions := job.Regions
	if nRegions <= 0 {
		nRegions = p.workers
	}
	regions, err := shard.Regions(job.Reference.Len(), nRegions)
	if err != nil {
		return nil, err
	}
	parts, _ := shard.PartitionByOverlap(res.Alignments, regions)
	varShards := make([][]genomics.Variant, len(parts))
	for i := range parts {
		caller := variant.NewCaller(job.Reference, job.Caller)
		for _, a := range parts[i] {
			if err := caller.Add(a); err != nil {
				return nil, err
			}
		}
		calls := caller.Call()
		kept := calls[:0]
		for _, v := range calls {
			if regions[i].Contains(v.Pos) {
				kept = append(kept, v)
			}
		}
		varShards[i] = kept
	}
	res.Variants = genomics.MergeVariants(varShards...)
	return res, nil
}

// TestEngineMatchesSeedPipeline is the refactor's equivalence proof: the
// engine-driven RunVariantCalling must produce identical alignments,
// variants, mapped counts, shard plans and Data Broker advice to the seed
// pipeline, across explicit sharding, KB-advised sharding, and uneven
// region splits.
func TestEngineMatchesSeedPipeline(t *testing.T) {
	cases := []struct {
		name                   string
		refLen, reads, snvs    int
		seed                   int64
		shardRecords, regions  int
		recordsPerUnit, worker int
	}{
		{"explicit-shards", 8000, 2400, 12, 42, 137, 5, 0, 4},
		{"kb-advised", 8000, 2400, 12, 42, 0, 0, 100, 3},
		{"single-shard-single-region", 6000, 1500, 8, 21, 1500, 1, 0, 2},
		{"many-small-shards", 6000, 1500, 8, 21, 100, 7, 0, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := NewPlatform(Options{Workers: tc.worker, RecordsPerUnit: tc.recordsPerUnit})
			job, _ := synthJob(t, tc.refLen, tc.reads, tc.snvs, tc.seed)
			job.ShardRecords = tc.shardRecords
			job.Regions = tc.regions

			want, err := seedVariantCalling(p, job)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.RunVariantCalling(context.Background(), job)
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(got.Alignments, want.Alignments) {
				t.Fatalf("alignments differ: engine %d records, seed %d records",
					len(got.Alignments), len(want.Alignments))
			}
			if !reflect.DeepEqual(got.Variants, want.Variants) {
				t.Fatalf("variants differ:\nengine: %+v\nseed:   %+v", got.Variants, want.Variants)
			}
			if got.Mapped != want.Mapped {
				t.Fatalf("mapped: engine %d, seed %d", got.Mapped, want.Mapped)
			}
			if !reflect.DeepEqual(got.Header, want.Header) {
				t.Fatalf("header: engine %+v, seed %+v", got.Header, want.Header)
			}
			if got.ShardPlan != want.ShardPlan {
				t.Fatalf("plan: engine %+v, seed %+v", got.ShardPlan, want.ShardPlan)
			}
			if got.Advice != want.Advice {
				t.Fatalf("advice: engine %+v, seed %+v", got.Advice, want.Advice)
			}
		})
	}
}

// TestRunWorkflowSurface exercises the generic platform entry point used
// by scand's submit-workflow-by-name API: any catalogued genomic workflow
// runs through the same engine, and its shards feed the knowledge base.
func TestRunWorkflowSurface(t *testing.T) {
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	p := NewPlatform(Options{Workers: 2, KB: kb})
	if p.Catalogue().Len() < 11 {
		t.Fatalf("catalogue has %d workflows", p.Catalogue().Len())
	}
	job, _ := synthJob(t, 6000, 1200, 6, 13)
	before := kb.RunCount()
	res, err := p.RunWorkflow(context.Background(), "somatic-mutation-detection",
		workflow.NewFASTQDataset(job.Reference, job.Reads),
		workflow.RunOptions{Caller: job.Caller})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Type != workflow.VCF || len(res.Output.Variants) == 0 {
		t.Fatalf("output = %s with %d variants", res.Output.Type, len(res.Output.Variants))
	}
	if kb.RunCount() <= before {
		t.Fatal("workflow run did not log shards to the knowledge base")
	}
	// Unknown names surface the registry error.
	if _, err := p.RunWorkflow(context.Background(), "no-such-analysis",
		workflow.NewFASTQDataset(job.Reference, job.Reads), workflow.RunOptions{}); err == nil {
		t.Fatal("unknown workflow accepted")
	}
}
