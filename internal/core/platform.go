// Package core assembles the SCAN platform's public face: the Data Broker
// (knowledge-base-advised sharding), a pool of SCAN workers, and the
// workflow engine that executes every catalogued analysis with the in-repo
// substrates — k-mer aligner, pileup caller and format codecs for the
// genomic family, spectral peptide matching for the proteomic, tiled cell
// segmentation for the imaging, and partitioned network construction for
// the integrative family.
//
// Two execution surfaces exist: this package runs real analyses on real
// data with goroutine workers (the paper's prototype, scaled to a
// laptop), while package experiment runs the discrete-event simulation
// used for the paper's evaluation figures.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"time"

	"scan/internal/align"
	"scan/internal/blobstore"
	"scan/internal/cloud"
	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/registry"
	"scan/internal/shard"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// VariantDetectionWorkflow is the catalogued workflow RunVariantCalling
// executes.
const VariantDetectionWorkflow = "dna-variant-detection"

// Options configures a Platform.
type Options struct {
	// Workers is the parallel worker count (default: GOMAXPROCS).
	Workers int
	// KB is the application knowledge base; a fresh base seeded with the
	// paper's GATK profiles is created when nil.
	KB *knowledge.Base
	// RecordsPerUnit converts the knowledge base's abstract input-size
	// units (the paper's GB) into read records for the real toolkit
	// (default 1000 records per unit).
	RecordsPerUnit int
	// Catalogue overrides the workflow catalogue (default:
	// workflow.DefaultCatalogue()). Custom deployments register extra
	// workflows on top of the default set before handing it in.
	Catalogue *workflow.Registry
	// Executors overrides the stage-executor bindings (default:
	// workflow.DefaultExecutors()). Custom deployments bind extra tools —
	// tests use it to inject stages with controlled blocking behavior when
	// proving cancellation propagates into a running workflow.
	Executors *workflow.ExecutorRegistry
	// Datasets overrides the platform's dataset registry (default: a fresh
	// store with registry defaults). scand sizes it from flags. Mutually
	// exclusive with DataDir's registry wiring — when both are given, the
	// provided store wins and only the knowledge base becomes durable.
	Datasets *registry.Store
	// Registry configures the dataset store built when Datasets is nil;
	// DataDir's blob-store wiring is layered on top of it.
	Registry registry.Options
	// DataDir, when set, roots the platform's durable state: the blob store
	// and dataset manifest under <dir>/blobs + <dir>/manifest.json (uploads
	// survive restarts, oversize payloads spill to disk instead of being
	// rejected), and the knowledge base's WAL + graph snapshots under
	// <dir>/kb (RunCount and fitted stage costs survive restarts). Empty
	// keeps everything heap-resident and process-local. Use OpenPlatform to
	// surface setup errors.
	DataDir string
	// Logf receives persistence warnings from the durable subsystems
	// (default: silent).
	Logf func(format string, args ...any)
}

// Platform is the SCAN application platform: the workflow catalogue, the
// executor bindings, the engine that runs any catalogued analysis, and the
// dataset registry jobs stage uploads into.
type Platform struct {
	kb             *knowledge.Base
	catalogue      *workflow.Registry
	engine         *workflow.Engine
	datasets       *registry.Store
	workers        int
	recordsPerUnit int
}

// NewPlatform builds a platform, panicking on durable-state setup errors
// (only possible when Options.DataDir is set — use OpenPlatform there).
func NewPlatform(opts Options) *Platform {
	p, err := OpenPlatform(opts)
	if err != nil {
		panic(err)
	}
	return p
}

// OpenPlatform builds a platform, attaching the durable data plane when
// Options.DataDir is set: the dataset registry gains a disk-backed blob
// store (committed uploads and spilled payloads survive restarts; datasets
// over the memory budget spill instead of being rejected) and the knowledge
// base replays its snapshot + WAL before accepting new telemetry. The only
// error sources are that durable setup — a heap-only configuration cannot
// fail.
func OpenPlatform(opts Options) (*Platform, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	catalogue := opts.Catalogue
	if catalogue == nil {
		catalogue = workflow.DefaultCatalogue()
	}
	if opts.Executors == nil {
		opts.Executors = workflow.DefaultExecutors()
	}
	if opts.KB == nil {
		opts.KB = knowledge.New()
		opts.KB.SeedPaperProfiles()
		// Profiles for the proteomic/imaging/integrative tools, so the
		// Data Broker's advice is grounded for every catalogued family.
		opts.KB.SeedFamilyProfiles()
		opts.KB.SeedCloudOntology(cloud.DefaultTiers(50))
		opts.KB.SeedDomainLinks()
		// The full Figure 1 analysis catalogue, queryable over SPARQL.
		if err := catalogue.ExportTo(opts.KB); err != nil {
			panic(err) // static catalogue: failure is a programming error
		}
	}
	if opts.RecordsPerUnit <= 0 {
		opts.RecordsPerUnit = 1000
	}
	if opts.DataDir != "" {
		// Seeding precedes the attach: the snapshot re-imports over the
		// deterministic seed triples (a union), then the WAL replays the
		// accumulated run telemetry on top.
		if err := opts.KB.AttachStorage(knowledge.StorageOptions{
			Dir:  filepath.Join(opts.DataDir, "kb"),
			Logf: opts.Logf,
		}); err != nil {
			return nil, fmt.Errorf("core: knowledge storage: %w", err)
		}
		if opts.Datasets == nil {
			blobs, err := blobstore.Open(filepath.Join(opts.DataDir, "blobs"))
			if err != nil {
				return nil, fmt.Errorf("core: blob store: %w", err)
			}
			ro := opts.Registry
			ro.Blobs = blobs
			ro.Dir = opts.DataDir
			if ro.Logf == nil {
				ro.Logf = opts.Logf
			}
			opts.Datasets = registry.NewStore(ro)
		}
	}
	if opts.Datasets == nil {
		opts.Datasets = registry.NewStore(opts.Registry)
	}
	engine := workflow.NewEngine(workflow.EngineOptions{
		Catalogue:      catalogue,
		Executors:      opts.Executors,
		KB:             opts.KB,
		Workers:        opts.Workers,
		RecordsPerUnit: opts.RecordsPerUnit,
	})
	return &Platform{
		kb:             opts.KB,
		catalogue:      catalogue,
		engine:         engine,
		datasets:       opts.Datasets,
		workers:        opts.Workers,
		recordsPerUnit: opts.RecordsPerUnit,
	}, nil
}

// KB exposes the platform's knowledge base.
func (p *Platform) KB() *knowledge.Base { return p.kb }

// Flush folds the knowledge base's buffered run-log telemetry into the
// graph. Workflow runs log per-shard observations asynchronously (batched
// ingestion); call Flush at lifecycle boundaries — shutdown, before
// snapshotting — to guarantee nothing is still buffered. Reads through the
// knowledge base's query surface flush automatically.
func (p *Platform) Flush() { p.kb.Flush() }

// Close flushes buffered telemetry and detaches the knowledge base's
// durable storage (the WAL file handle). For a heap-only platform Close is
// just a Flush; either way the platform must not be used afterwards.
func (p *Platform) Close() {
	p.kb.Flush()
	p.kb.CloseStorage()
}

// Workers returns the configured worker count.
func (p *Platform) Workers() int { return p.workers }

// Catalogue exposes the platform's workflow catalogue.
func (p *Platform) Catalogue() *workflow.Registry { return p.catalogue }

// Datasets exposes the platform's dataset registry — the bounded store of
// named uploads jobs reference instead of shipping records per submission.
func (p *Platform) Datasets() *registry.Store { return p.datasets }

// Engine exposes the platform's workflow engine.
func (p *Platform) Engine() *workflow.Engine { return p.engine }

// RunWorkflow executes any catalogued workflow by name over the dataset —
// the generic entry point behind scand's job API. Cancelling ctx stops the
// run promptly: the engine checks it between stages and every stage's
// bounded worker pool selects on it while queueing shards, so scand's
// DELETE /api/v2/jobs/{id} observably halts an in-flight analysis by
// cancelling the per-job context it threads through here.
func (p *Platform) RunWorkflow(ctx context.Context, name string, in *workflow.Dataset, opts workflow.RunOptions) (*workflow.Result, error) {
	return p.engine.RunByName(ctx, name, in, opts)
}

// VariantCallingJob is one end-to-end analysis request: align reads to the
// reference and call variants.
type VariantCallingJob struct {
	Reference genomics.Sequence
	Reads     []genomics.Read
	// Aligner and Caller configurations; zero values use the package
	// defaults.
	Aligner align.Config
	Caller  variant.Config
	// ShardRecords overrides the knowledge base's shard-size advice
	// (records per alignment shard). Zero asks the Data Broker.
	ShardRecords int
	// Regions overrides the number of variant-calling scatter regions
	// (default: the worker count).
	Regions int
}

// StageTiming reports one pipeline stage's wall-clock duration.
type StageTiming struct {
	Stage   string
	Shards  int
	Elapsed time.Duration
}

// VariantCallingResult carries the pipeline outputs.
type VariantCallingResult struct {
	Header     genomics.Header
	Alignments []genomics.Alignment // coordinate-sorted
	Variants   []genomics.Variant   // sorted, deduplicated
	Mapped     int
	ShardPlan  shard.Plan
	Timings    []StageTiming
	// Advice is the Data Broker's recommendation that sized the shards
	// (zero value when ShardRecords overrode it).
	Advice knowledge.Advice
}

// WriteSAM writes the alignments in SAM format.
func (r *VariantCallingResult) WriteSAM(w io.Writer) error {
	h := r.Header
	h.SortOrder = "coordinate"
	return genomics.WriteSAM(w, h, r.Alignments)
}

// WriteVCF writes the variant calls in VCF format.
func (r *VariantCallingResult) WriteVCF(w io.Writer) error {
	return genomics.WriteVCF(w, "SCAN", r.Variants)
}

// ErrNoReads is returned for an empty read set.
var ErrNoReads = errors.New("core: job has no reads")

// RunVariantCalling executes the catalogued dna-variant-detection workflow
// through the workflow engine: shard reads by Data Broker advice →
// parallel align → merge → GATK refinement chain → scatter by region →
// parallel pileup+call → merge VCF. Per-shard stage timings are logged
// back into the knowledge base, growing it exactly the way the paper
// describes. The heavy lifting lives in package workflow; this is the
// typed variant-calling facade over Engine.Run.
func (p *Platform) RunVariantCalling(ctx context.Context, job VariantCallingJob) (*VariantCallingResult, error) {
	if len(job.Reads) == 0 {
		return nil, ErrNoReads
	}
	wres, err := p.engine.RunByName(ctx, VariantDetectionWorkflow,
		workflow.NewFASTQDataset(job.Reference, job.Reads),
		workflow.RunOptions{
			Aligner:      job.Aligner,
			Caller:       job.Caller,
			ShardRecords: job.ShardRecords,
			Regions:      job.Regions,
		})
	if err != nil {
		return nil, err
	}
	out := wres.Output
	res := &VariantCallingResult{
		Header:     out.Header,
		Alignments: out.Alignments,
		Variants:   out.Variants,
		Mapped:     out.Mapped,
	}
	// The record-scattered stage (alignment) carries the Data Broker's
	// shard plan and advice.
	if sr, ok := wres.RecordScatter(); ok {
		res.ShardPlan = sr.Plan
		res.Advice = sr.Advice
	}
	// Report the stages that fanned out; the engine also ran the
	// refinement pass-throughs, but a zero-shard stage has no scatter
	// to time.
	for _, sr := range wres.Stages {
		if sr.Shards > 0 {
			res.Timings = append(res.Timings, StageTiming{
				Stage: sr.Stage, Shards: sr.Shards, Elapsed: sr.Elapsed,
			})
		}
	}
	return res, nil
}
