// Package core assembles the SCAN platform's public face: the Data Broker
// (knowledge-base-advised sharding), a pool of SCAN workers, and an
// executable variant-calling pipeline built from the in-repo substrates
// (k-mer aligner, pileup caller, format codecs).
//
// Two execution surfaces exist: this package runs real analyses on real
// data with goroutine workers (the paper's prototype, scaled to a
// laptop), while package experiment runs the discrete-event simulation
// used for the paper's evaluation figures.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"scan/internal/align"
	"scan/internal/cloud"
	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/shard"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// Options configures a Platform.
type Options struct {
	// Workers is the parallel worker count (default: GOMAXPROCS).
	Workers int
	// KB is the application knowledge base; a fresh base seeded with the
	// paper's GATK profiles is created when nil.
	KB *knowledge.Base
	// RecordsPerUnit converts the knowledge base's abstract input-size
	// units (the paper's GB) into read records for the real toolkit
	// (default 1000 records per unit).
	RecordsPerUnit int
}

// Platform is the SCAN application platform.
type Platform struct {
	kb             *knowledge.Base
	workers        int
	recordsPerUnit int
}

// NewPlatform builds a platform.
func NewPlatform(opts Options) *Platform {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.KB == nil {
		opts.KB = knowledge.New()
		opts.KB.SeedPaperProfiles()
		opts.KB.SeedCloudOntology(cloud.DefaultTiers(50))
		opts.KB.SeedDomainLinks()
		// The full Figure 1 analysis catalogue, queryable over SPARQL.
		if err := workflow.DefaultCatalogue().ExportTo(opts.KB); err != nil {
			panic(err) // static catalogue: failure is a programming error
		}
	}
	if opts.RecordsPerUnit <= 0 {
		opts.RecordsPerUnit = 1000
	}
	return &Platform{
		kb:             opts.KB,
		workers:        opts.Workers,
		recordsPerUnit: opts.RecordsPerUnit,
	}
}

// KB exposes the platform's knowledge base.
func (p *Platform) KB() *knowledge.Base { return p.kb }

// Workers returns the configured worker count.
func (p *Platform) Workers() int { return p.workers }

// VariantCallingJob is one end-to-end analysis request: align reads to the
// reference and call variants.
type VariantCallingJob struct {
	Reference genomics.Sequence
	Reads     []genomics.Read
	// Aligner and Caller configurations; zero values use the package
	// defaults.
	Aligner align.Config
	Caller  variant.Config
	// ShardRecords overrides the knowledge base's shard-size advice
	// (records per alignment shard). Zero asks the Data Broker.
	ShardRecords int
	// Regions overrides the number of variant-calling scatter regions
	// (default: the worker count).
	Regions int
}

// StageTiming reports one pipeline stage's wall-clock duration.
type StageTiming struct {
	Stage   string
	Shards  int
	Elapsed time.Duration
}

// VariantCallingResult carries the pipeline outputs.
type VariantCallingResult struct {
	Header     genomics.Header
	Alignments []genomics.Alignment // coordinate-sorted
	Variants   []genomics.Variant   // sorted, deduplicated
	Mapped     int
	ShardPlan  shard.Plan
	Timings    []StageTiming
	// Advice is the Data Broker's recommendation that sized the shards
	// (zero value when ShardRecords overrode it).
	Advice knowledge.Advice
}

// WriteSAM writes the alignments in SAM format.
func (r *VariantCallingResult) WriteSAM(w io.Writer) error {
	h := r.Header
	h.SortOrder = "coordinate"
	return genomics.WriteSAM(w, h, r.Alignments)
}

// WriteVCF writes the variant calls in VCF format.
func (r *VariantCallingResult) WriteVCF(w io.Writer) error {
	return genomics.WriteVCF(w, "SCAN", r.Variants)
}

// ErrNoReads is returned for an empty read set.
var ErrNoReads = errors.New("core: job has no reads")

// RunVariantCalling executes the full scatter-gather pipeline:
//
//	shard reads → parallel align → merge → scatter by region →
//	parallel pileup+call → merge VCF
//
// Per-shard stage timings are logged back into the knowledge base, growing
// it exactly the way the paper describes.
func (p *Platform) RunVariantCalling(ctx context.Context, job VariantCallingJob) (*VariantCallingResult, error) {
	if len(job.Reads) == 0 {
		return nil, ErrNoReads
	}
	res := &VariantCallingResult{}

	recordsPerShard := job.ShardRecords
	if recordsPerShard <= 0 {
		jobUnits := float64(len(job.Reads)) / float64(p.recordsPerUnit)
		adv, err := p.kb.ShardAdvice(jobUnits)
		if err != nil {
			return nil, fmt.Errorf("core: data broker: %w", err)
		}
		res.Advice = adv
		recordsPerShard = int(adv.ShardSize * float64(p.recordsPerUnit))
		if recordsPerShard < 1 {
			recordsPerShard = 1
		}
	}
	plan, err := shard.PlanByRecords(len(job.Reads), recordsPerShard)
	if err != nil {
		return nil, err
	}
	res.ShardPlan = plan

	aligner, err := align.New(job.Reference, job.Aligner)
	if err != nil {
		return nil, err
	}
	res.Header = aligner.Header()

	// Stage 1: parallel alignment over read shards.
	readShards, err := shard.ChunkReads(job.Reads, recordsPerShard)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	alnShards := make([][]genomics.Alignment, len(readShards))
	mapped := make([]int, len(readShards))
	err = p.forEach(ctx, len(readShards), func(i int) error {
		alnShards[i], mapped[i] = aligner.AlignAll(readShards[i])
		p.logStage("BWA", 0, len(readShards[i]), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Alignments = genomics.MergeSorted(alnShards...)
	for _, m := range mapped {
		res.Mapped += m
	}
	res.Timings = append(res.Timings, StageTiming{
		Stage: "align", Shards: len(readShards), Elapsed: time.Since(start),
	})

	// Stage 2: scatter mapped alignments by genomic region, call variants
	// per region in parallel, gather into one call set.
	nRegions := job.Regions
	if nRegions <= 0 {
		nRegions = p.workers
	}
	regions, err := shard.Regions(job.Reference.Len(), nRegions)
	if err != nil {
		return nil, err
	}
	// Overlap-aware scatter: a read spanning a region boundary feeds the
	// pileups of both regions, so boundary positions see full coverage.
	parts, _ := shard.PartitionByOverlap(res.Alignments, regions)
	start = time.Now()
	varShards := make([][]genomics.Variant, len(parts))
	err = p.forEach(ctx, len(parts), func(i int) error {
		caller := variant.NewCaller(job.Reference, job.Caller)
		for _, a := range parts[i] {
			if err := caller.Add(a); err != nil {
				return err
			}
		}
		calls := caller.Call()
		// Keep only calls inside this region so region overlaps cannot
		// duplicate evidence across shards.
		kept := calls[:0]
		for _, v := range calls {
			if regions[i].Contains(v.Pos) {
				kept = append(kept, v)
			}
		}
		varShards[i] = kept
		p.logStage("GATK", 1, len(parts[i]), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Variants = genomics.MergeVariants(varShards...)
	res.Timings = append(res.Timings, StageTiming{
		Stage: "call", Shards: len(parts), Elapsed: time.Since(start),
	})
	return res, nil
}

// forEach runs fn(0..n-1) on the worker pool, stopping at the first error
// or context cancellation.
func (p *Platform) forEach(ctx context.Context, n int, fn func(int) error) error {
	if n == 0 {
		return nil
	}
	sem := make(chan struct{}, p.workers)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			break
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errCh <- fn(i)
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// logStage feeds an observed stage execution back into the knowledge base;
// logging failures are deliberately ignored (telemetry must not fail the
// analysis).
func (p *Platform) logStage(app string, stage, records int, elapsed time.Duration) {
	_ = p.kb.LogRun(knowledge.RunLog{
		App:       app,
		Stage:     stage,
		InputSize: float64(records) / float64(p.recordsPerUnit),
		Threads:   1,
		ETime:     elapsed.Seconds(),
	})
}
