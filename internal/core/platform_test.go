package core

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"

	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/variant"
)

func synthJob(t testing.TB, refLen, reads, snvs int, seed int64) (VariantCallingJob, []genomics.Mutation) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genomics.GenerateReference(rng, "chr1", refLen)
	mutated, planted := genomics.PlantSNVs(rng, ref, snvs)
	rd, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: reads, Length: 100, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	return VariantCallingJob{
		Reference: ref,
		Reads:     rd,
		Caller:    variant.Config{MinDepth: 8, MinAltFraction: 0.6},
	}, planted
}

func TestPlatformDefaults(t *testing.T) {
	p := NewPlatform(Options{})
	if p.Workers() < 1 {
		t.Fatal("no workers")
	}
	if p.KB() == nil {
		t.Fatal("no knowledge base")
	}
	// The default KB carries the paper's GATK profiles plus one per
	// non-genomic tool family.
	ps, err := p.KB().Profiles()
	if err != nil || len(ps) != 8 {
		t.Fatalf("profiles: %d, %v", len(ps), err)
	}
}

func TestEndToEndVariantCalling(t *testing.T) {
	p := NewPlatform(Options{Workers: 4})
	job, planted := synthJob(t, 8000, 2400, 12, 42)
	res, err := p.RunVariantCalling(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped < len(job.Reads)*9/10 {
		t.Fatalf("mapped %d/%d", res.Mapped, len(job.Reads))
	}
	calledAt := map[int]genomics.Variant{}
	for _, v := range res.Variants {
		calledAt[v.Pos-1] = v
	}
	recovered := 0
	for _, m := range planted {
		if v, ok := calledAt[m.Pos]; ok && v.Alt == string(m.Alt) {
			recovered++
		}
	}
	if recovered < len(planted)-1 {
		t.Fatalf("recovered %d/%d planted SNVs (called %d)", recovered, len(planted), len(res.Variants))
	}
	// The engine reports the catalogue's scattered stages: the BWA
	// alignment fan-out and the region-scattered genotyping.
	if len(res.Timings) != 2 || res.Timings[0].Stage != "Align" || res.Timings[1].Stage != "UnifiedGenotyper" {
		t.Fatalf("timings = %+v", res.Timings)
	}
	// Alignments must come back coordinate-sorted.
	for i := 1; i < len(res.Alignments); i++ {
		a, b := res.Alignments[i-1], res.Alignments[i]
		if !a.Unmapped() && !b.Unmapped() && a.Pos > b.Pos {
			t.Fatal("alignments not sorted")
		}
	}
	// Run logs were fed back to the knowledge base.
	if p.KB().RunCount() == 0 {
		t.Fatal("no run logs recorded")
	}
}

func TestShardingMatchesAdvice(t *testing.T) {
	p := NewPlatform(Options{Workers: 2, RecordsPerUnit: 100})
	job, _ := synthJob(t, 4000, 1000, 0, 7)
	res, err := p.RunVariantCalling(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// 1000 reads = 10 units; the paper KB advises GATK1's 10-unit chunks
	// (throughput 0.056 beats GATK4's 0.05 for jobs ≥ 10 units).
	if res.Advice.BasedOn != "GATK1" {
		t.Fatalf("advice = %+v", res.Advice)
	}
	if res.ShardPlan.RecordsPerShard != 1000 || res.ShardPlan.NumShards != 1 {
		t.Fatalf("plan = %+v", res.ShardPlan)
	}
}

func TestShardRecordsOverride(t *testing.T) {
	p := NewPlatform(Options{Workers: 4})
	job, _ := synthJob(t, 4000, 900, 0, 8)
	job.ShardRecords = 200
	res, err := p.RunVariantCalling(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShardPlan.NumShards != 5 {
		t.Fatalf("shards = %d, want 5", res.ShardPlan.NumShards)
	}
	if res.Advice.BasedOn != "" {
		t.Fatal("advice should be empty under override")
	}
}

func TestShardedEqualsUnsharded(t *testing.T) {
	// Determinism check: splitting the work must not change the results.
	jobA, _ := synthJob(t, 6000, 1500, 8, 21)
	jobB := jobA
	jobA.ShardRecords = len(jobA.Reads) // single shard
	jobA.Regions = 1
	jobB.ShardRecords = 100 // 15 shards
	jobB.Regions = 7

	p := NewPlatform(Options{Workers: 4})
	a, err := p.RunVariantCalling(context.Background(), jobA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.RunVariantCalling(context.Background(), jobB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Variants) != len(b.Variants) {
		t.Fatalf("variant counts differ: %d vs %d", len(a.Variants), len(b.Variants))
	}
	for i := range a.Variants {
		if a.Variants[i] != b.Variants[i] {
			t.Fatalf("variant %d differs:\n%+v\n%+v", i, a.Variants[i], b.Variants[i])
		}
	}
	if a.Mapped != b.Mapped {
		t.Fatalf("mapped differ: %d vs %d", a.Mapped, b.Mapped)
	}
}

func TestEmptyJobRejected(t *testing.T) {
	p := NewPlatform(Options{})
	if _, err := p.RunVariantCalling(context.Background(), VariantCallingJob{}); err != ErrNoReads {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	p := NewPlatform(Options{Workers: 1})
	job, _ := synthJob(t, 4000, 2000, 0, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunVariantCalling(ctx, job); err == nil {
		t.Fatal("cancelled context succeeded")
	}
}

func TestResultWriters(t *testing.T) {
	p := NewPlatform(Options{Workers: 2})
	job, _ := synthJob(t, 4000, 800, 5, 10)
	res, err := p.RunVariantCalling(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	var sam, vcf bytes.Buffer
	if err := res.WriteSAM(&sam); err != nil {
		t.Fatal(err)
	}
	if err := res.WriteVCF(&vcf); err != nil {
		t.Fatal(err)
	}
	if _, alns, err := genomics.ReadSAM(&sam); err != nil || len(alns) != len(res.Alignments) {
		t.Fatalf("SAM round trip: %d records, %v", len(alns), err)
	}
	if !strings.Contains(vcf.String(), "##source=SCAN") {
		t.Fatal("VCF missing source header")
	}
}

func TestKnowledgeFeedbackLoop(t *testing.T) {
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	p := NewPlatform(Options{Workers: 2, KB: kb})
	job, _ := synthJob(t, 4000, 600, 0, 11)
	before := kb.RunCount()
	if _, err := p.RunVariantCalling(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	if kb.RunCount() <= before {
		t.Fatal("pipeline did not log runs")
	}
	// Logged runs are queryable through SPARQL.
	res, err := kb.Query(`
PREFIX scan: <` + knowledge.NS + `>
SELECT ?run WHERE { ?run a scan:RunLog . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != kb.RunCount() {
		t.Fatalf("SPARQL sees %d runs, KB says %d", res.Len(), kb.RunCount())
	}
}

func BenchmarkVariantCallingPipeline(b *testing.B) {
	p := NewPlatform(Options{Workers: 4})
	job, _ := synthJob(b, 20000, 4000, 10, 3)
	job.ShardRecords = 500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.RunVariantCalling(context.Background(), job); err != nil {
			b.Fatal(err)
		}
	}
}
