package core

import (
	"context"
	"sync"
	"testing"

	"scan/internal/knowledge"
)

// TestConcurrentRunWorkflowAccounting hammers one knowledge base through
// the platform's hot path from many goroutines (run under -race in CI):
// the Data Broker's advice must stay stable while runs log telemetry, no
// run log may be lost, and after Flush the accounting must be exact —
// every concurrent run contributes precisely the same number of
// observations as an identical serial run.
func TestConcurrentRunWorkflowAccounting(t *testing.T) {
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	p := NewPlatform(Options{Workers: 2, KB: kb})
	job, _ := synthJob(t, 2000, 400, 4, 13)

	advBefore, err := kb.ShardAdvice(10)
	if err != nil {
		t.Fatal(err)
	}

	// Calibration: one serial run of the identical job fixes the per-run
	// observation count. Advice stability makes it deterministic — the
	// same profiles yield the same shard plan and scatter widths.
	if _, err := p.RunVariantCalling(context.Background(), job); err != nil {
		t.Fatal(err)
	}
	p.Flush()
	perRun := kb.RunCount()
	if perRun == 0 {
		t.Fatal("calibration run logged nothing")
	}

	const (
		workers = 6
		runs    = 2
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < runs; i++ {
				if _, err := p.RunVariantCalling(context.Background(), job); err != nil {
					t.Error(err)
					return
				}
				if adv, err := kb.ShardAdvice(10); err != nil || adv != advBefore {
					t.Errorf("advice drifted mid-run: %+v, %v", adv, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	p.Flush()

	want := perRun * (1 + workers*runs)
	if got := kb.RunCount(); got != want {
		t.Fatalf("RunCount = %d, want %d (%d per run × %d runs): run logs lost or duplicated",
			got, want, perRun, 1+workers*runs)
	}
	// The graph agrees with the counter: every observation is a distinct
	// RunLog individual.
	res, err := kb.Query(`
PREFIX scan: <` + knowledge.NS + `>
SELECT ?run WHERE { ?run a scan:RunLog . }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != want {
		t.Fatalf("SPARQL sees %d run individuals, want %d", res.Len(), want)
	}
	if adv, err := kb.ShardAdvice(10); err != nil || adv != advBefore {
		t.Fatalf("advice changed across the hammer: %+v, %v; want %+v", adv, err, advBefore)
	}
}
