package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"scan/internal/genomics"
	"scan/internal/workflow"
)

// blockingExecutor signals that its stage started, then parks until the run
// context is cancelled — the controlled stand-in for a long analysis.
type blockingExecutor struct {
	started chan struct{}
}

func (b *blockingExecutor) Execute(ctx context.Context, env *workflow.StageEnv, in *workflow.Dataset) (*workflow.Dataset, error) {
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestRunWorkflowCancellation proves the per-run context reaches a running
// stage: cancelling it unblocks the stage and RunWorkflow returns
// context.Canceled promptly. This is the plumbing scand's job-cancel API
// relies on.
func TestRunWorkflowCancellation(t *testing.T) {
	catalogue := workflow.DefaultCatalogue()
	if err := catalogue.Register(workflow.Workflow{
		Name:   "block-forever",
		Family: "genomic",
		Stages: []workflow.Stage{
			{Name: "block", Tool: "blocktool", Consumes: workflow.FASTQ, Produces: workflow.VCF},
		},
	}); err != nil {
		t.Fatal(err)
	}
	execs := workflow.DefaultExecutors()
	block := &blockingExecutor{started: make(chan struct{}, 1)}
	if err := execs.Register("blocktool", "", block); err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(Options{Workers: 2, Catalogue: catalogue, Executors: execs})

	ref := genomics.Sequence{Name: "chr1", Seq: []byte("ACGTACGTACGTACGTACGTACGTACGTACGT")}
	reads := []genomics.Read{{ID: "r1", Seq: []byte("ACGTACGTACGTACGT"), Qual: []byte("IIIIIIIIIIIIIIII")}}

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := p.RunWorkflow(ctx, "block-forever", workflow.NewFASTQDataset(ref, reads), workflow.RunOptions{})
		errCh <- err
	}()
	select {
	case <-block.started:
	case <-time.After(5 * time.Second):
		t.Fatal("stage never started")
	}
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunWorkflow did not return after cancellation")
	}
}
