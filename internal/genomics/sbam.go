package genomics

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// SBAM ("Simple Binary Alignment Map") is this toolkit's stand-in for BAM:
// a little-endian binary container with the same logical content as SAM but
// without BGZF compression or virtual file offsets. The paper's GATK
// pipeline consumes 2 GB BAM shards; SBAM preserves the properties that
// matter to SCAN — a binary record stream that must be split on record
// boundaries and carries a replicated header — while staying implementable
// from scratch.
//
// Layout:
//
//	magic   [4]byte  "SBM1"
//	sorted  uint8    (0 = unsorted, 1 = coordinate)
//	nRefs   uint32
//	  nameLen uint16, name []byte, refLen uint32   (per reference)
//	nRecs   uint32
//	  record blob, length-prefixed uint32          (per alignment)
//
// Record blob:
//
//	qnameLen uint16, qname []byte
//	flag     uint16
//	refID    int32   (-1 = unmapped/no reference)
//	pos      int32
//	mapq     uint8
//	nm       int16
//	seqLen   uint32, seq []byte, qual []byte (same length)

const sbamMagic = "SBM1"

// WriteSBAM encodes a header and records.
func WriteSBAM(w io.Writer, h Header, alns []Alignment) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sbamMagic); err != nil {
		return err
	}
	sorted := byte(0)
	if h.SortOrder == "coordinate" {
		sorted = 1
	}
	if err := bw.WriteByte(sorted); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(h.Refs))); err != nil {
		return err
	}
	refIDs := make(map[string]int32, len(h.Refs))
	for i, ref := range h.Refs {
		if len(ref.Name) > 0xFFFF {
			return fmt.Errorf("genomics: reference name too long (%d bytes)", len(ref.Name))
		}
		if err := binary.Write(bw, binary.LittleEndian, uint16(len(ref.Name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(ref.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(ref.Length)); err != nil {
			return err
		}
		refIDs[ref.Name] = int32(i)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(alns))); err != nil {
		return err
	}
	for _, a := range alns {
		if err := writeSBAMRecord(bw, a, refIDs); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeSBAMRecord(bw *bufio.Writer, a Alignment, refIDs map[string]int32) error {
	if len(a.Seq) != len(a.Qual) {
		return fmt.Errorf("genomics: record %q: seq/qual length mismatch", a.QName)
	}
	refID := int32(-1)
	if a.RName != "" {
		id, ok := refIDs[a.RName]
		if !ok {
			return fmt.Errorf("genomics: record %q references unknown sequence %q", a.QName, a.RName)
		}
		refID = id
	}
	blobLen := 2 + len(a.QName) + 2 + 4 + 4 + 1 + 2 + 4 + 2*len(a.Seq)
	if err := binary.Write(bw, binary.LittleEndian, uint32(blobLen)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(len(a.QName))); err != nil {
		return err
	}
	if _, err := bw.WriteString(a.QName); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint16(a.Flag)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, refID); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int32(a.Pos)); err != nil {
		return err
	}
	if err := bw.WriteByte(uint8(a.MapQ)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, int16(a.NM)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(a.Seq))); err != nil {
		return err
	}
	if _, err := bw.Write(a.Seq); err != nil {
		return err
	}
	_, err := bw.Write(a.Qual)
	return err
}

// ReadSBAM decodes a container written by WriteSBAM.
func ReadSBAM(r io.Reader) (Header, []Alignment, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return Header{}, nil, fmt.Errorf("genomics: reading SBAM magic: %w", err)
	}
	if string(magic) != sbamMagic {
		return Header{}, nil, fmt.Errorf("genomics: bad SBAM magic %q", magic)
	}
	sorted, err := br.ReadByte()
	if err != nil {
		return Header{}, nil, err
	}
	var nRefs uint32
	if err := binary.Read(br, binary.LittleEndian, &nRefs); err != nil {
		return Header{}, nil, err
	}
	if nRefs > 1<<20 {
		return Header{}, nil, fmt.Errorf("genomics: implausible reference count %d", nRefs)
	}
	h := Header{Version: "1.6", SortOrder: "unsorted"}
	if sorted == 1 {
		h.SortOrder = "coordinate"
	}
	for i := uint32(0); i < nRefs; i++ {
		var nameLen uint16
		if err := binary.Read(br, binary.LittleEndian, &nameLen); err != nil {
			return Header{}, nil, err
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return Header{}, nil, err
		}
		var refLen uint32
		if err := binary.Read(br, binary.LittleEndian, &refLen); err != nil {
			return Header{}, nil, err
		}
		h.Refs = append(h.Refs, RefInfo{Name: string(name), Length: int(refLen)})
	}
	var nRecs uint32
	if err := binary.Read(br, binary.LittleEndian, &nRecs); err != nil {
		return Header{}, nil, err
	}
	alns := make([]Alignment, 0, nRecs)
	for i := uint32(0); i < nRecs; i++ {
		a, err := readSBAMRecord(br, h.Refs)
		if err != nil {
			return Header{}, nil, fmt.Errorf("genomics: SBAM record %d: %w", i, err)
		}
		alns = append(alns, a)
	}
	return h, alns, nil
}

func readSBAMRecord(br *bufio.Reader, refs []RefInfo) (Alignment, error) {
	var blobLen uint32
	if err := binary.Read(br, binary.LittleEndian, &blobLen); err != nil {
		return Alignment{}, err
	}
	blob := make([]byte, blobLen)
	if _, err := io.ReadFull(br, blob); err != nil {
		return Alignment{}, err
	}
	// Decode from the in-memory blob; bounds failures mean corruption.
	at := 0
	need := func(n int) error {
		if at+n > len(blob) {
			return fmt.Errorf("truncated record blob")
		}
		return nil
	}
	if err := need(2); err != nil {
		return Alignment{}, err
	}
	qnameLen := int(binary.LittleEndian.Uint16(blob[at:]))
	at += 2
	if err := need(qnameLen + 2 + 4 + 4 + 1 + 2 + 4); err != nil {
		return Alignment{}, err
	}
	qname := string(blob[at : at+qnameLen])
	at += qnameLen
	flag := int(binary.LittleEndian.Uint16(blob[at:]))
	at += 2
	refID := int32(binary.LittleEndian.Uint32(blob[at:]))
	at += 4
	pos := int32(binary.LittleEndian.Uint32(blob[at:]))
	at += 4
	mapq := int(blob[at])
	at++
	nm := int(int16(binary.LittleEndian.Uint16(blob[at:])))
	at += 2
	seqLen := int(binary.LittleEndian.Uint32(blob[at:]))
	at += 4
	if err := need(2 * seqLen); err != nil {
		return Alignment{}, err
	}
	seq := append([]byte(nil), blob[at:at+seqLen]...)
	at += seqLen
	qual := append([]byte(nil), blob[at:at+seqLen]...)

	a := Alignment{
		QName: qname, Flag: flag, Pos: int(pos), MapQ: mapq, NM: nm,
		Seq: seq, Qual: qual,
	}
	if !a.Unmapped() {
		a.CIGAR = fmt.Sprintf("%dM", seqLen)
	}
	if refID >= 0 {
		if int(refID) >= len(refs) {
			return Alignment{}, fmt.Errorf("refID %d out of range", refID)
		}
		a.RName = refs[refID].Name
	}
	return a, nil
}
