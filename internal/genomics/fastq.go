package genomics

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Read is one sequencing read: identifier, bases and Phred+33 qualities.
type Read struct {
	ID   string
	Seq  []byte
	Qual []byte
}

// FASTQReader streams records from FASTQ input without loading the whole
// file, which is what lets the Data Broker shard multi-gigabyte inputs.
type FASTQReader struct {
	sc   *bufio.Scanner
	line int
}

// NewFASTQReader returns a streaming reader over r.
func NewFASTQReader(r io.Reader) *FASTQReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &FASTQReader{sc: sc}
}

// Next returns the next read, or io.EOF after the last record.
func (f *FASTQReader) Next() (Read, error) {
	id, err := f.nextLine()
	if err != nil {
		return Read{}, err
	}
	if !strings.HasPrefix(id, "@") {
		return Read{}, fmt.Errorf("genomics: line %d: FASTQ header must start with '@', got %q", f.line, id)
	}
	seq, err := f.nextLine()
	if err != nil {
		return Read{}, f.truncated(err)
	}
	plus, err := f.nextLine()
	if err != nil {
		return Read{}, f.truncated(err)
	}
	if !strings.HasPrefix(plus, "+") {
		return Read{}, fmt.Errorf("genomics: line %d: expected '+' separator, got %q", f.line, plus)
	}
	qual, err := f.nextLine()
	if err != nil {
		return Read{}, f.truncated(err)
	}
	if len(seq) != len(qual) {
		return Read{}, fmt.Errorf("genomics: line %d: sequence length %d != quality length %d",
			f.line, len(seq), len(qual))
	}
	return Read{
		ID:   strings.TrimPrefix(firstField(id), "@"),
		Seq:  []byte(seq),
		Qual: []byte(qual),
	}, nil
}

func (f *FASTQReader) truncated(err error) error {
	if err == io.EOF {
		return fmt.Errorf("genomics: line %d: truncated FASTQ record", f.line)
	}
	return err
}

// nextLine returns the next non-empty line.
func (f *FASTQReader) nextLine() (string, error) {
	for f.sc.Scan() {
		f.line++
		text := strings.TrimRight(f.sc.Text(), "\r")
		if text != "" {
			return text, nil
		}
	}
	if err := f.sc.Err(); err != nil {
		return "", err
	}
	return "", io.EOF
}

// ReadAllFASTQ reads every record from r.
func ReadAllFASTQ(r io.Reader) ([]Read, error) {
	fr := NewFASTQReader(r)
	var out []Read
	for {
		rd, err := fr.Next()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, rd)
	}
}

// FASTQWriter streams records to an output.
type FASTQWriter struct {
	bw *bufio.Writer
}

// NewFASTQWriter returns a writer over w.
func NewFASTQWriter(w io.Writer) *FASTQWriter {
	return &FASTQWriter{bw: bufio.NewWriter(w)}
}

// Write emits one record.
func (f *FASTQWriter) Write(r Read) error {
	if len(r.Seq) != len(r.Qual) {
		return fmt.Errorf("genomics: read %q: sequence/quality length mismatch", r.ID)
	}
	if _, err := fmt.Fprintf(f.bw, "@%s\n%s\n+\n%s\n", r.ID, r.Seq, r.Qual); err != nil {
		return err
	}
	return nil
}

// Flush flushes buffered output.
func (f *FASTQWriter) Flush() error { return f.bw.Flush() }

// WriteAllFASTQ writes every read to w.
func WriteAllFASTQ(w io.Writer, reads []Read) error {
	fw := NewFASTQWriter(w)
	for _, r := range reads {
		if err := fw.Write(r); err != nil {
			return err
		}
	}
	return fw.Flush()
}

// CountFASTQ counts records in r without retaining them (used by the shard
// planner to size chunks).
func CountFASTQ(r io.Reader) (int, error) {
	fr := NewFASTQReader(r)
	n := 0
	for {
		_, err := fr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
	}
}
