package genomics

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestFASTARoundTrip(t *testing.T) {
	seqs := []Sequence{
		{Name: "chr1", Seq: []byte("ACGTACGTACGTACGTACGT")},
		{Name: "chr2", Seq: []byte("TTTT")},
	}
	var buf bytes.Buffer
	if err := WriteFASTA(&buf, seqs, 8); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFASTA(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "chr1" || string(got[0].Seq) != "ACGTACGTACGTACGTACGT" ||
		got[1].Name != "chr2" || string(got[1].Seq) != "TTTT" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFASTAHeaderDescriptionTrimmed(t *testing.T) {
	src := ">chr1 some description here\nACGT\n"
	got, err := ReadFASTA(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Name != "chr1" {
		t.Fatalf("Name = %q, want chr1", got[0].Name)
	}
}

func TestFASTAErrors(t *testing.T) {
	cases := map[string]string{
		"no header":    "ACGT\n",
		"empty header": ">\nACGT\n",
		"empty input":  "",
	}
	for name, src := range cases {
		if _, err := ReadFASTA(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestValidateBases(t *testing.T) {
	if err := ValidateBases([]byte("ACGTNacgtn")); err != nil {
		t.Fatalf("valid bases rejected: %v", err)
	}
	if err := ValidateBases([]byte("ACGX")); err == nil {
		t.Fatal("invalid base accepted")
	}
}

func TestUpper(t *testing.T) {
	if got := Upper([]byte("acGt")); string(got) != "ACGT" {
		t.Fatalf("Upper = %q", got)
	}
	in := []byte("ACGT")
	if got := Upper(in); &got[0] != &in[0] {
		t.Fatal("Upper copied an already-upper sequence")
	}
}

func TestFASTQRoundTrip(t *testing.T) {
	reads := []Read{
		{ID: "r1", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		{ID: "r2", Seq: []byte("GGCC"), Qual: []byte("!!!!")},
	}
	var buf bytes.Buffer
	if err := WriteAllFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAllFASTQ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "r1" || string(got[1].Seq) != "GGCC" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestFASTQErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":      "r1\nACGT\n+\nIIII\n",
		"bad separator":   "@r1\nACGT\nIIII\n@r2\n",
		"length mismatch": "@r1\nACGT\n+\nII\n",
		"truncated":       "@r1\nACGT\n+\n",
	}
	for name, src := range cases {
		if _, err := ReadAllFASTQ(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestFASTQCount(t *testing.T) {
	var buf bytes.Buffer
	reads := make([]Read, 37)
	for i := range reads {
		reads[i] = Read{ID: "r", Seq: []byte("AC"), Qual: []byte("II")}
	}
	if err := WriteAllFASTQ(&buf, reads); err != nil {
		t.Fatal(err)
	}
	n, err := CountFASTQ(&buf)
	if err != nil || n != 37 {
		t.Fatalf("CountFASTQ = %d, %v", n, err)
	}
}

func TestFASTQWriterRejectsMismatch(t *testing.T) {
	fw := NewFASTQWriter(&bytes.Buffer{})
	if err := fw.Write(Read{ID: "x", Seq: []byte("ACGT"), Qual: []byte("I")}); err == nil {
		t.Fatal("expected error")
	}
}

func sampleHeader() Header {
	return NewHeader(RefInfo{Name: "chr1", Length: 1000}, RefInfo{Name: "chr2", Length: 500})
}

func sampleAlignments() []Alignment {
	return []Alignment{
		{QName: "r1", Flag: 0, RName: "chr1", Pos: 10, MapQ: 60, CIGAR: "4M",
			Seq: []byte("ACGT"), Qual: []byte("IIII"), NM: 0},
		{QName: "r2", Flag: FlagReverseStrand, RName: "chr2", Pos: 99, MapQ: 30, CIGAR: "4M",
			Seq: []byte("GGCC"), Qual: []byte("FFFF"), NM: 2},
		{QName: "r3", Flag: FlagUnmapped, Pos: 0, MapQ: 0,
			Seq: []byte("TTTT"), Qual: []byte("!!!!"), NM: -1},
	}
}

func TestSAMRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSAM(&buf, sampleHeader(), sampleAlignments()); err != nil {
		t.Fatal(err)
	}
	h, alns, err := ReadSAM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Refs) != 2 || h.Refs[0].Name != "chr1" || h.Refs[0].Length != 1000 {
		t.Fatalf("header mismatch: %+v", h)
	}
	if len(alns) != 3 {
		t.Fatalf("got %d records", len(alns))
	}
	if alns[0].QName != "r1" || alns[0].Pos != 10 || alns[0].NM != 0 {
		t.Fatalf("record 0 mismatch: %+v", alns[0])
	}
	if alns[1].Flag != FlagReverseStrand || alns[1].NM != 2 {
		t.Fatalf("record 1 mismatch: %+v", alns[1])
	}
	if !alns[2].Unmapped() || alns[2].RName != "" || alns[2].NM != -1 {
		t.Fatalf("record 2 mismatch: %+v", alns[2])
	}
}

func TestSAMParseErrors(t *testing.T) {
	cases := map[string]string{
		"short record":    "r1\t0\tchr1\n",
		"bad flag":        "r1\tx\tchr1\t1\t60\t4M\t*\t0\t0\tACGT\tIIII\n",
		"bad pos":         "r1\t0\tchr1\tx\t60\t4M\t*\t0\t0\tACGT\tIIII\n",
		"bad sq":          "@SQ\tSN:chr1\tLN:abc\n",
		"sq without name": "@SQ\tLN:100\n",
	}
	for name, src := range cases {
		if _, _, err := ReadSAM(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestSortAlignmentsOrder(t *testing.T) {
	alns := []Alignment{
		{QName: "d", Flag: FlagUnmapped},
		{QName: "c", RName: "chr2", Pos: 5},
		{QName: "b", RName: "chr1", Pos: 100},
		{QName: "a", RName: "chr1", Pos: 7},
	}
	SortAlignments(alns)
	order := []string{"a", "b", "c", "d"}
	for i, want := range order {
		if alns[i].QName != want {
			t.Fatalf("position %d = %q, want %q (%+v)", i, alns[i].QName, want, alns)
		}
	}
}

func TestMergeSorted(t *testing.T) {
	a := []Alignment{{QName: "x", RName: "chr1", Pos: 1}, {QName: "y", RName: "chr1", Pos: 50}}
	b := []Alignment{{QName: "z", RName: "chr1", Pos: 25}}
	merged := MergeSorted(a, b)
	if len(merged) != 3 || merged[1].QName != "z" {
		t.Fatalf("merge order wrong: %+v", merged)
	}
}

func TestAlignmentEnd(t *testing.T) {
	a := Alignment{RName: "chr1", Pos: 10, Seq: []byte("ACGTA")}
	if a.End() != 14 {
		t.Fatalf("End = %d, want 14", a.End())
	}
	u := Alignment{Flag: FlagUnmapped}
	if u.End() != 0 {
		t.Fatal("unmapped End must be 0")
	}
}

func TestSBAMRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSBAM(&buf, sampleHeader(), sampleAlignments()); err != nil {
		t.Fatal(err)
	}
	h, alns, err := ReadSBAM(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Refs) != 2 || h.Refs[1].Name != "chr2" || h.Refs[1].Length != 500 {
		t.Fatalf("header mismatch: %+v", h)
	}
	want := sampleAlignments()
	if len(alns) != len(want) {
		t.Fatalf("got %d records, want %d", len(alns), len(want))
	}
	for i := range want {
		g, w := alns[i], want[i]
		if g.QName != w.QName || g.Flag != w.Flag || g.RName != w.RName ||
			g.Pos != w.Pos || g.MapQ != w.MapQ || g.NM != w.NM ||
			string(g.Seq) != string(w.Seq) || string(g.Qual) != string(w.Qual) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

func TestSBAMErrors(t *testing.T) {
	// Bad magic.
	if _, _, err := ReadSBAM(strings.NewReader("XXXX")); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Truncated stream.
	var buf bytes.Buffer
	if err := WriteSBAM(&buf, sampleHeader(), sampleAlignments()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, _, err := ReadSBAM(bytes.NewReader(raw[:len(raw)-3])); err == nil {
		t.Fatal("truncated stream accepted")
	}
	// Unknown reference in record.
	var buf2 bytes.Buffer
	err := WriteSBAM(&buf2, NewHeader(RefInfo{Name: "chr1", Length: 10}),
		[]Alignment{{QName: "r", RName: "chrX", Seq: []byte("A"), Qual: []byte("I")}})
	if err == nil {
		t.Fatal("unknown reference accepted")
	}
}

// Property: SBAM round-trips arbitrary well-formed alignment sets.
func TestSBAMRoundTripProperty(t *testing.T) {
	f := func(recs []struct {
		Name uint16
		Flag uint8
		Pos  uint16
		Len  uint8
	}) bool {
		h := NewHeader(RefInfo{Name: "c", Length: 1 << 20})
		rng := rand.New(rand.NewSource(1))
		var alns []Alignment
		for i, r := range recs {
			n := int(r.Len%20) + 1
			seq := make([]byte, n)
			qual := make([]byte, n)
			for j := range seq {
				seq[j] = bases[rng.Intn(4)]
				qual[j] = '!' + byte(rng.Intn(40))
			}
			a := Alignment{
				QName: "q" + itoa(i) + "-" + itoa(int(r.Name)),
				Flag:  int(r.Flag),
				Pos:   int(r.Pos),
				MapQ:  int(r.Flag % 61),
				NM:    int(r.Len%5) - 1,
				Seq:   seq, Qual: qual,
			}
			if a.Flag&FlagUnmapped == 0 {
				a.RName = "c"
				a.CIGAR = itoa(n) + "M"
			}
			alns = append(alns, a)
		}
		var buf bytes.Buffer
		if err := WriteSBAM(&buf, h, alns); err != nil {
			return false
		}
		_, got, err := ReadSBAM(&buf)
		if err != nil || len(got) != len(alns) {
			return false
		}
		for i := range alns {
			if got[i].QName != alns[i].QName || got[i].Pos != alns[i].Pos ||
				string(got[i].Seq) != string(alns[i].Seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func TestVCFRoundTrip(t *testing.T) {
	vars := []Variant{
		{Chrom: "chr1", Pos: 100, Ref: "A", Alt: "T", Qual: 55.5, Info: "DP=30"},
		{Chrom: "chr1", Pos: 250, ID: "rs1", Ref: "G", Alt: "C", Qual: 12.0, Filter: "LowQual"},
	}
	var buf bytes.Buffer
	if err := WriteVCF(&buf, "scan-test", vars); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVCF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d variants", len(got))
	}
	if got[0].Pos != 100 || got[0].Alt != "T" || got[0].Qual != 55.5 || got[0].Info != "DP=30" {
		t.Fatalf("variant 0 mismatch: %+v", got[0])
	}
	if got[1].ID != "rs1" || got[1].Filter != "LowQual" {
		t.Fatalf("variant 1 mismatch: %+v", got[1])
	}
}

func TestVCFErrors(t *testing.T) {
	cases := map[string]string{
		"no fileformat": "chr1\t1\t.\tA\tT\t5.0\tPASS\t.\n",
		"short record":  "##fileformat=VCFv4.2\nchr1\t1\t.\tA\n",
		"bad pos":       "##fileformat=VCFv4.2\nchr1\tx\t.\tA\tT\t5.0\tPASS\t.\n",
		"bad qual":      "##fileformat=VCFv4.2\nchr1\t1\t.\tA\tT\tabc\tPASS\t.\n",
	}
	for name, src := range cases {
		if _, err := ReadVCF(strings.NewReader(src)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMergeVariantsDedupe(t *testing.T) {
	a := []Variant{{Chrom: "chr1", Pos: 10, Ref: "A", Alt: "T", Qual: 20}}
	b := []Variant{
		{Chrom: "chr1", Pos: 10, Ref: "A", Alt: "T", Qual: 35},
		{Chrom: "chr1", Pos: 5, Ref: "G", Alt: "C", Qual: 10},
	}
	merged := MergeVariants(a, b)
	if len(merged) != 2 {
		t.Fatalf("got %d variants, want 2", len(merged))
	}
	if merged[0].Pos != 5 {
		t.Fatal("merge not sorted")
	}
	if merged[1].Qual != 35 {
		t.Fatalf("dedupe kept lower quality: %+v", merged[1])
	}
}

func TestGenerateReferenceDeterministic(t *testing.T) {
	a := GenerateReference(rand.New(rand.NewSource(9)), "chr1", 500)
	b := GenerateReference(rand.New(rand.NewSource(9)), "chr1", 500)
	if string(a.Seq) != string(b.Seq) {
		t.Fatal("same seed produced different references")
	}
	if err := ValidateBases(a.Seq); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 500 {
		t.Fatalf("Len = %d", a.Len())
	}
}

func TestPlantSNVs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ref := GenerateReference(rng, "chr1", 1000)
	mut, muts := PlantSNVs(rng, ref, 25)
	if len(muts) != 25 {
		t.Fatalf("planted %d mutations", len(muts))
	}
	diff := 0
	for i := range ref.Seq {
		if ref.Seq[i] != mut.Seq[i] {
			diff++
		}
	}
	if diff != 25 {
		t.Fatalf("%d bases differ, want 25", diff)
	}
	for i, m := range muts {
		if ref.Seq[m.Pos] != m.Ref || mut.Seq[m.Pos] != m.Alt || m.Ref == m.Alt {
			t.Fatalf("mutation %d inconsistent: %+v", i, m)
		}
		if i > 0 && muts[i-1].Pos >= m.Pos {
			t.Fatal("mutations not sorted by position")
		}
	}
	// Original reference untouched.
	if &ref.Seq[0] == &mut.Seq[0] {
		t.Fatal("PlantSNVs aliased the reference")
	}
}

func TestPlantSNVsCountClamped(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ref := GenerateReference(rng, "c", 10)
	_, muts := PlantSNVs(rng, ref, 100)
	if len(muts) != 10 {
		t.Fatalf("planted %d, want clamp to 10", len(muts))
	}
}

func TestSimulateReads(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	genome := GenerateReference(rng, "chr1", 2000)
	reads, err := SimulateReads(rng, genome, ReadSimConfig{Count: 100, Length: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(reads) != 100 {
		t.Fatalf("got %d reads", len(reads))
	}
	for _, r := range reads {
		if len(r.Seq) != 50 || len(r.Qual) != 50 {
			t.Fatalf("bad read shape: %+v", r)
		}
		// With zero error rate every read must be an exact substring.
		if !bytes.Contains(genome.Seq, r.Seq) {
			t.Fatalf("read %s not a substring of the genome", r.ID)
		}
	}
}

func TestSimulateReadsWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	genome := GenerateReference(rng, "chr1", 5000)
	reads, err := SimulateReads(rng, genome, ReadSimConfig{Count: 200, Length: 80, ErrorRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, r := range reads {
		if bytes.Contains(genome.Seq, r.Seq) {
			exact++
		}
	}
	// At 5% per-base error over 80 bases, an error-free read has p ≈ 1.6%.
	if exact > 40 {
		t.Fatalf("%d/200 reads error-free; error injection looks broken", exact)
	}
}

func TestSimulateReadsInvalidConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	genome := GenerateReference(rng, "c", 100)
	if _, err := SimulateReads(rng, genome, ReadSimConfig{Count: 1, Length: 0}); err == nil {
		t.Fatal("zero length accepted")
	}
	if _, err := SimulateReads(rng, genome, ReadSimConfig{Count: 1, Length: 200}); err == nil {
		t.Fatal("length > genome accepted")
	}
}

func BenchmarkFASTQScan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	genome := GenerateReference(rng, "chr1", 10000)
	reads, _ := SimulateReads(rng, genome, ReadSimConfig{Count: 1000, Length: 100})
	var buf bytes.Buffer
	if err := WriteAllFASTQ(&buf, reads); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CountFASTQ(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSBAMEncode(b *testing.B) {
	h := sampleHeader()
	alns := make([]Alignment, 0, 1000)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		seq := make([]byte, 100)
		qual := make([]byte, 100)
		for j := range seq {
			seq[j] = bases[rng.Intn(4)]
			qual[j] = 'I'
		}
		alns = append(alns, Alignment{
			QName: "r" + itoa(i), RName: "chr1", Pos: i + 1, MapQ: 60,
			CIGAR: "100M", Seq: seq, Qual: qual, NM: 0,
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteSBAM(&buf, h, alns); err != nil {
			b.Fatal(err)
		}
	}
}
