package genomics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Variant is one VCF record (SNVs only in this toolkit).
type Variant struct {
	Chrom  string
	Pos    int // 1-based
	ID     string
	Ref    string
	Alt    string
	Qual   float64
	Filter string
	Info   string
}

// WriteVCF writes a minimal VCFv4.2 document.
func WriteVCF(w io.Writer, source string, vars []Variant) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "##fileformat=VCFv4.2\n##source=%s\n", source); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(bw, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO"); err != nil {
		return err
	}
	for _, v := range vars {
		id := v.ID
		if id == "" {
			id = "."
		}
		filter := v.Filter
		if filter == "" {
			filter = "PASS"
		}
		info := v.Info
		if info == "" {
			info = "."
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%s\t%s\t%.1f\t%s\t%s\n",
			v.Chrom, v.Pos, id, v.Ref, v.Alt, v.Qual, filter, info); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadVCF parses a VCF document produced by WriteVCF (meta lines are
// skipped; records need the 8 fixed columns).
func ReadVCF(r io.Reader) ([]Variant, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out []Variant
	line := 0
	sawFormat := false
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "##") {
			if strings.HasPrefix(text, "##fileformat=") {
				sawFormat = true
			}
			continue
		}
		if strings.HasPrefix(text, "#") {
			continue // column header
		}
		f := strings.Split(text, "\t")
		if len(f) < 8 {
			return nil, fmt.Errorf("genomics: line %d: VCF record has %d fields, need 8", line, len(f))
		}
		pos, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("genomics: line %d: bad POS %q", line, f[1])
		}
		qual := 0.0
		if f[5] != "." {
			qual, err = strconv.ParseFloat(f[5], 64)
			if err != nil {
				return nil, fmt.Errorf("genomics: line %d: bad QUAL %q", line, f[5])
			}
		}
		v := Variant{
			Chrom: f[0], Pos: pos, Ref: f[3], Alt: f[4],
			Qual: qual, Filter: f[6], Info: f[7],
		}
		if f[2] != "." {
			v.ID = f[2]
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawFormat {
		return nil, fmt.Errorf("genomics: missing ##fileformat meta line")
	}
	return out, nil
}

// SortVariants orders records by (chrom, pos, alt).
func SortVariants(vars []Variant) {
	sort.SliceStable(vars, func(i, j int) bool {
		a, b := vars[i], vars[j]
		if a.Chrom != b.Chrom {
			return a.Chrom < b.Chrom
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Alt < b.Alt
	})
}

// MergeVariants concatenates per-shard call sets, sorts them, and collapses
// duplicate (chrom, pos, ref, alt) records keeping the highest quality —
// the merge step of the paper's VariantsToVCF-style gather stage.
func MergeVariants(groups ...[]Variant) []Variant {
	var all []Variant
	for _, g := range groups {
		all = append(all, g...)
	}
	SortVariants(all)
	var out []Variant
	for _, v := range all {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Chrom == v.Chrom && last.Pos == v.Pos && last.Ref == v.Ref && last.Alt == v.Alt {
				if v.Qual > last.Qual {
					*last = v
				}
				continue
			}
		}
		out = append(out, v)
	}
	return out
}
