package genomics

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SAM flag bits used by the toolkit.
const (
	FlagUnmapped      = 0x4
	FlagReverseStrand = 0x10
)

// RefInfo names one reference sequence in a SAM/SBAM header.
type RefInfo struct {
	Name   string
	Length int
}

// Header is the subset of the SAM header the toolkit uses: the format
// version, sort order, and reference dictionary.
type Header struct {
	Version   string // @HD VN:
	SortOrder string // @HD SO: ("unsorted", "coordinate")
	Refs      []RefInfo
}

// Alignment is one SAM record (the 11 mandatory fields).
type Alignment struct {
	QName string
	Flag  int
	RName string // "*" when unmapped
	Pos   int    // 1-based leftmost position; 0 when unmapped
	MapQ  int
	CIGAR string // "*" when unmapped
	RNext string
	PNext int
	TLen  int
	Seq   []byte
	Qual  []byte
	// NM is the edit distance tag (NM:i:n); -1 when absent.
	NM int
}

// Unmapped reports whether the record has the unmapped flag set.
func (a Alignment) Unmapped() bool { return a.Flag&FlagUnmapped != 0 }

// End returns the 1-based inclusive end position covered on the reference,
// assuming a pure-match CIGAR (the toolkit's aligner emits only «nM»).
func (a Alignment) End() int {
	if a.Unmapped() {
		return 0
	}
	return a.Pos + len(a.Seq) - 1
}

// NewHeader returns an unsorted header over the given references.
func NewHeader(refs ...RefInfo) Header {
	return Header{Version: "1.6", SortOrder: "unsorted", Refs: refs}
}

// WriteSAM writes a header and records in SAM text format.
func WriteSAM(w io.Writer, h Header, alns []Alignment) error {
	bw := bufio.NewWriter(w)
	if err := writeSAMHeader(bw, h); err != nil {
		return err
	}
	for _, a := range alns {
		if err := writeSAMRecord(bw, a); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeSAMHeader(bw *bufio.Writer, h Header) error {
	version := h.Version
	if version == "" {
		version = "1.6"
	}
	so := h.SortOrder
	if so == "" {
		so = "unsorted"
	}
	if _, err := fmt.Fprintf(bw, "@HD\tVN:%s\tSO:%s\n", version, so); err != nil {
		return err
	}
	for _, r := range h.Refs {
		if _, err := fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length); err != nil {
			return err
		}
	}
	return nil
}

func writeSAMRecord(bw *bufio.Writer, a Alignment) error {
	seq := string(a.Seq)
	if seq == "" {
		seq = "*"
	}
	qual := string(a.Qual)
	if qual == "" {
		qual = "*"
	}
	rnext := a.RNext
	if rnext == "" {
		rnext = "*"
	}
	_, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%d\t%s\t%s\t%d\t%d\t%s\t%s",
		a.QName, a.Flag, orStar(a.RName), a.Pos, a.MapQ, orStar(a.CIGAR),
		rnext, a.PNext, a.TLen, seq, qual)
	if err != nil {
		return err
	}
	if a.NM >= 0 {
		if _, err := fmt.Fprintf(bw, "\tNM:i:%d", a.NM); err != nil {
			return err
		}
	}
	return bw.WriteByte('\n')
}

func orStar(s string) string {
	if s == "" {
		return "*"
	}
	return s
}

// ReadSAM parses SAM text, returning the header and all records.
func ReadSAM(r io.Reader) (Header, []Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var h Header
	var alns []Alignment
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "@") {
			if err := parseHeaderLine(&h, text); err != nil {
				return h, nil, fmt.Errorf("genomics: line %d: %w", line, err)
			}
			continue
		}
		a, err := parseSAMRecord(text)
		if err != nil {
			return h, nil, fmt.Errorf("genomics: line %d: %w", line, err)
		}
		alns = append(alns, a)
	}
	return h, alns, sc.Err()
}

func parseHeaderLine(h *Header, text string) error {
	fields := strings.Split(text, "\t")
	switch fields[0] {
	case "@HD":
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "VN:"):
				h.Version = f[3:]
			case strings.HasPrefix(f, "SO:"):
				h.SortOrder = f[3:]
			}
		}
	case "@SQ":
		var ref RefInfo
		for _, f := range fields[1:] {
			switch {
			case strings.HasPrefix(f, "SN:"):
				ref.Name = f[3:]
			case strings.HasPrefix(f, "LN:"):
				n, err := strconv.Atoi(f[3:])
				if err != nil {
					return fmt.Errorf("bad @SQ LN %q", f[3:])
				}
				ref.Length = n
			}
		}
		if ref.Name == "" {
			return fmt.Errorf("@SQ without SN")
		}
		h.Refs = append(h.Refs, ref)
	default:
		// @RG, @PG, @CO lines are tolerated and dropped.
	}
	return nil
}

func parseSAMRecord(text string) (Alignment, error) {
	f := strings.Split(text, "\t")
	if len(f) < 11 {
		return Alignment{}, fmt.Errorf("SAM record has %d fields, need 11", len(f))
	}
	flag, err := strconv.Atoi(f[1])
	if err != nil {
		return Alignment{}, fmt.Errorf("bad FLAG %q", f[1])
	}
	pos, err := strconv.Atoi(f[3])
	if err != nil {
		return Alignment{}, fmt.Errorf("bad POS %q", f[3])
	}
	mapq, err := strconv.Atoi(f[4])
	if err != nil {
		return Alignment{}, fmt.Errorf("bad MAPQ %q", f[4])
	}
	pnext, err := strconv.Atoi(f[7])
	if err != nil {
		return Alignment{}, fmt.Errorf("bad PNEXT %q", f[7])
	}
	tlen, err := strconv.Atoi(f[8])
	if err != nil {
		return Alignment{}, fmt.Errorf("bad TLEN %q", f[8])
	}
	a := Alignment{
		QName: f[0], Flag: flag, RName: starEmpty(f[2]), Pos: pos, MapQ: mapq,
		CIGAR: starEmpty(f[5]), RNext: starEmpty(f[6]), PNext: pnext, TLen: tlen,
		NM: -1,
	}
	if f[9] != "*" {
		a.Seq = []byte(f[9])
	}
	if f[10] != "*" {
		a.Qual = []byte(f[10])
	}
	for _, tag := range f[11:] {
		if strings.HasPrefix(tag, "NM:i:") {
			if n, err := strconv.Atoi(tag[5:]); err == nil {
				a.NM = n
			}
		}
	}
	return a, nil
}

func starEmpty(s string) string {
	if s == "*" {
		return ""
	}
	return s
}

// SortAlignments orders records by (reference, position, name) — SAM
// "coordinate" sort order. Unmapped records sort last.
func SortAlignments(alns []Alignment) {
	sort.SliceStable(alns, func(i, j int) bool {
		a, b := alns[i], alns[j]
		if a.Unmapped() != b.Unmapped() {
			return !a.Unmapped()
		}
		if a.RName != b.RName {
			return a.RName < b.RName
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.QName < b.QName
	})
}

// MergeSorted merges coordinate-sorted alignment slices into one sorted
// slice (the merge step after parallel per-shard alignment).
func MergeSorted(groups ...[]Alignment) []Alignment {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	out := make([]Alignment, 0, total)
	for _, g := range groups {
		out = append(out, g...)
	}
	SortAlignments(out)
	return out
}
