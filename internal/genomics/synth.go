package genomics

import (
	"fmt"
	"math/rand"
)

var bases = []byte("ACGT")

// GenerateReference produces a random reference sequence of length n with a
// seeded generator, so every experiment regenerates identical data.
func GenerateReference(rng *rand.Rand, name string, n int) Sequence {
	seq := make([]byte, n)
	for i := range seq {
		seq[i] = bases[rng.Intn(4)]
	}
	return Sequence{Name: name, Seq: seq}
}

// Mutation is a planted single-nucleotide variant.
type Mutation struct {
	Pos int // 0-based position in the reference
	Ref byte
	Alt byte
}

// PlantSNVs copies ref and substitutes count single-nucleotide variants at
// distinct random positions, returning the mutated sequence and the ground
// truth. The caller simulates reads from the mutated genome and checks the
// variant caller recovers the list.
func PlantSNVs(rng *rand.Rand, ref Sequence, count int) (Sequence, []Mutation) {
	if count > ref.Len() {
		count = ref.Len()
	}
	mut := Sequence{Name: ref.Name, Seq: append([]byte(nil), ref.Seq...)}
	positions := rng.Perm(ref.Len())[:count]
	muts := make([]Mutation, 0, count)
	for _, pos := range positions {
		old := mut.Seq[pos]
		alt := old
		for alt == old {
			alt = bases[rng.Intn(4)]
		}
		mut.Seq[pos] = alt
		muts = append(muts, Mutation{Pos: pos, Ref: old, Alt: alt})
	}
	// Sort by position for deterministic comparison.
	for i := 1; i < len(muts); i++ {
		for j := i; j > 0 && muts[j-1].Pos > muts[j].Pos; j-- {
			muts[j-1], muts[j] = muts[j], muts[j-1]
		}
	}
	return mut, muts
}

// ReadSimConfig controls read simulation.
type ReadSimConfig struct {
	Count     int     // number of reads
	Length    int     // bases per read
	ErrorRate float64 // per-base substitution error probability
	Prefix    string  // read ID prefix (default "read")
}

// SimulateReads draws Count reads of Length bases uniformly from the
// genome, applying per-base substitution errors at ErrorRate. Base quality
// encodes the true error rate in Phred+33 (capped at Q40), as a real
// instrument would.
func SimulateReads(rng *rand.Rand, genome Sequence, cfg ReadSimConfig) ([]Read, error) {
	if cfg.Length <= 0 || cfg.Length > genome.Len() {
		return nil, fmt.Errorf("genomics: read length %d invalid for genome of %d bases",
			cfg.Length, genome.Len())
	}
	prefix := cfg.Prefix
	if prefix == "" {
		prefix = "read"
	}
	qual := phredChar(cfg.ErrorRate)
	reads := make([]Read, cfg.Count)
	for i := range reads {
		start := rng.Intn(genome.Len() - cfg.Length + 1)
		seq := make([]byte, cfg.Length)
		copy(seq, genome.Seq[start:start+cfg.Length])
		for j := range seq {
			if cfg.ErrorRate > 0 && rng.Float64() < cfg.ErrorRate {
				b := seq[j]
				for b == seq[j] {
					b = bases[rng.Intn(4)]
				}
				seq[j] = b
			}
		}
		quals := make([]byte, cfg.Length)
		for j := range quals {
			quals[j] = qual
		}
		reads[i] = Read{
			ID:   fmt.Sprintf("%s-%06d:%d", prefix, i, start),
			Seq:  seq,
			Qual: quals,
		}
	}
	return reads, nil
}

// phredChar converts an error probability to a Phred+33 quality character,
// capped to Q40.
func phredChar(errRate float64) byte {
	if errRate <= 0 {
		return '!' + 40
	}
	q := 0
	p := errRate
	for p < 1 && q < 40 {
		p *= 10
		q += 10
	}
	// Refine by simple scaling: q is now a decade bound; interpolate down.
	// Accuracy is unimportant — quality strings only need to be plausible.
	if q > 40 {
		q = 40
	}
	return byte('!' + q)
}
