// Package genomics implements the genomic data formats and synthetic data
// generation that stand in for the paper's NGS inputs: FASTA references,
// FASTQ reads, SAM alignments, VCF variant calls, and SBAM — a simplified
// binary alignment container replacing BAM (length-prefixed binary records
// without BGZF compression; see DESIGN.md, substitutions).
//
// The synthetic generator produces seeded, reproducible references and
// reads with configurable sequencing error and planted mutations, so the
// full SCAN data path (shard → align → call variants → merge) can run
// without proprietary sequencing data.
package genomics

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strings"
)

// Sequence is a named nucleotide sequence (a FASTA record).
type Sequence struct {
	Name string
	Seq  []byte
}

// Len returns the sequence length in bases.
func (s Sequence) Len() int { return len(s.Seq) }

// ReadFASTA parses all records from r. Sequence lines may be wrapped at any
// width; blank lines are ignored.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	var out []Sequence
	var cur *Sequence
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, ">") {
			name := strings.TrimSpace(strings.TrimPrefix(text, ">"))
			if name == "" {
				return nil, fmt.Errorf("genomics: line %d: empty FASTA header", line)
			}
			out = append(out, Sequence{Name: firstField(name)})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			return nil, fmt.Errorf("genomics: line %d: sequence data before FASTA header", line)
		}
		cur.Seq = append(cur.Seq, []byte(text)...)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("genomics: empty FASTA input")
	}
	return out, nil
}

// WriteFASTA writes records to w, wrapping sequence lines at width columns
// (60 when width <= 0).
func WriteFASTA(w io.Writer, seqs []Sequence, width int) error {
	if width <= 0 {
		width = 60
	}
	bw := bufio.NewWriter(w)
	for _, s := range seqs {
		if _, err := fmt.Fprintf(bw, ">%s\n", s.Name); err != nil {
			return err
		}
		for i := 0; i < len(s.Seq); i += width {
			end := i + width
			if end > len(s.Seq) {
				end = len(s.Seq)
			}
			if _, err := bw.Write(s.Seq[i:end]); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// firstField returns the header text up to the first whitespace, matching
// how aligners treat FASTA description lines.
func firstField(s string) string {
	if i := strings.IndexAny(s, " \t"); i >= 0 {
		return s[:i]
	}
	return s
}

// ValidateBases reports the first non-ACGTN byte in seq, if any.
func ValidateBases(seq []byte) error {
	for i, b := range seq {
		switch b {
		case 'A', 'C', 'G', 'T', 'N', 'a', 'c', 'g', 't', 'n':
		default:
			return fmt.Errorf("genomics: invalid base %q at offset %d", b, i)
		}
	}
	return nil
}

// Upper returns seq with lowercase bases folded to uppercase, allocating
// only when needed.
func Upper(seq []byte) []byte {
	if !bytes.ContainsAny(seq, "acgtn") {
		return seq
	}
	return bytes.ToUpper(seq)
}
