package rpc

import (
	"net/http"
	"strings"

	"scan/internal/metrics"
)

// The serving observability surface: GET /metrics in the Prometheus text
// format. Push-style instruments (request counts, shard latencies,
// per-tenant admission outcomes) are updated on the hot path; everything
// whose truth already lives in a subsystem — queue depth, job lifecycle
// totals, the advice cache, registry occupancy, the fleet roster — is
// scraped pull-style so no second counter can drift. Metric names and
// label sets are a contract (docs/SERVING.md), pinned by
// TestMetricsContract the way routes_test.go pins the route table.

// serverMetrics is the daemon's metric set.
type serverMetrics struct {
	reg *metrics.Registry
	// httpRequests counts every served request by normalized route and
	// status code (IDs collapse to {id} so cardinality stays bounded).
	httpRequests *metrics.CounterVec
	// shardSeconds observes every completed shard's wall time by workflow
	// family — the per-family latency histograms the Data Broker's advice
	// ultimately shapes.
	shardSeconds *metrics.HistogramVec
	// tenantRequests counts requests admitted past authentication and
	// rate limiting, by tenant.
	tenantRequests *metrics.CounterVec
	// tenantRejected counts admission rejections by tenant and reason
	// (rate_limited, quota_exceeded).
	tenantRejected *metrics.CounterVec
}

// newServerMetrics builds the metric set. Pull callbacks close over the
// server and read subsystem state at scrape time; they take s.mu and the
// subsystems' own locks, so never call a scrape while holding s.mu.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg: reg,
		httpRequests: reg.Counter("scan_http_requests_total",
			"HTTP requests served, by normalized route and status code.",
			"route", "code"),
		shardSeconds: reg.Histogram("scan_shard_seconds",
			"Completed shard wall time in seconds, by workflow family.",
			nil, "family"),
		tenantRequests: reg.Counter("scan_tenant_requests_total",
			"Requests admitted past authentication and rate limiting, by tenant.",
			"tenant"),
		tenantRejected: reg.Counter("scan_tenant_rejected_total",
			"Admission rejections, by tenant and reason.",
			"tenant", "reason"),
	}

	reg.GaugeFunc("scan_queue_depth",
		"Jobs accepted but not yet claimed by an executor.", nil,
		func() []metrics.Sample { return metrics.Value0(float64(len(s.queue))) })
	reg.CounterFunc("scan_jobs_total",
		"Jobs reaching each terminal state since the daemon started.",
		[]string{"state"}, func() []metrics.Sample {
			s.mu.Lock()
			done, failed, canceled := s.statDone, s.statFailed, s.statCanceled
			s.mu.Unlock()
			return []metrics.Sample{
				{Values: []string{string(StateDone)}, Value: float64(done)},
				{Values: []string{string(StateFailed)}, Value: float64(failed)},
				{Values: []string{string(StateCanceled)}, Value: float64(canceled)},
			}
		})

	kb := s.platform.KB()
	reg.CounterFunc("scan_advice_cache_hits_total",
		"Data Broker shard-advice calls answered from the memoized cache.", nil,
		func() []metrics.Sample {
			hits, _ := kb.CacheStats()
			return metrics.Value0(float64(hits))
		})
	reg.CounterFunc("scan_advice_cache_misses_total",
		"Data Broker shard-advice calls that ranked profiles.", nil,
		func() []metrics.Sample {
			_, misses := kb.CacheStats()
			return metrics.Value0(float64(misses))
		})
	reg.CounterFunc("scan_kb_runs_total",
		"Run-log observations accepted by the knowledge base (folded plus buffered).", nil,
		func() []metrics.Sample {
			total, _ := kb.RunCounts()
			return metrics.Value0(float64(total))
		})

	store := s.platform.Datasets()
	reg.GaugeFunc("scan_registry_datasets",
		"Datasets resident in the registry.", nil,
		func() []metrics.Sample {
			n, _, _ := store.Stats()
			return metrics.Value0(float64(n))
		})
	reg.GaugeFunc("scan_registry_resident_bytes",
		"Decoded payload bytes accounted against the registry's resident budget.", nil,
		func() []metrics.Sample {
			_, b, _ := store.Stats()
			return metrics.Value0(float64(b))
		})
	reg.CounterFunc("scan_registry_evicted_total",
		"Datasets evicted from the registry to admit new uploads.", nil,
		func() []metrics.Sample {
			_, _, e := store.Stats()
			return metrics.Value0(float64(e))
		})

	reg.GaugeFunc("scan_fleet_workers",
		"Live registered fleet workers.", nil,
		func() []metrics.Sample { return metrics.Value0(float64(s.fleet.ReadyWorkers())) })
	reg.CounterFunc("scan_fleet_events_total",
		"Fleet coordinator lifecycle events, by kind.",
		[]string{"event"}, func() []metrics.Sample {
			fm := s.fleet.FleetMetrics()
			return []metrics.Sample{
				{Values: []string{"hired"}, Value: float64(fm.Hires)},
				{Values: []string{"released"}, Value: float64(fm.Releases)},
				{Values: []string{"dispatched"}, Value: float64(fm.Dispatched)},
				{Values: []string{"redispatched"}, Value: float64(fm.Redispatched)},
				{Values: []string{"completed"}, Value: float64(fm.Completed)},
			}
		})

	if s.tenants != nil {
		states := s.tenants.Tenants()
		live := s.datasetLive
		reg.GaugeFunc("scan_tenant_active_jobs",
			"Concurrent job slots currently held, by tenant.",
			[]string{"tenant"}, func() []metrics.Sample {
				out := make([]metrics.Sample, 0, len(states))
				for _, st := range states {
					out = append(out, metrics.Sample{
						Values: []string{st.Name()}, Value: float64(st.ActiveJobs())})
				}
				return out
			})
		reg.GaugeFunc("scan_tenant_dataset_bytes",
			"Registry bytes held by each tenant's live datasets.",
			[]string{"tenant"}, func() []metrics.Sample {
				out := make([]metrics.Sample, 0, len(states))
				for _, st := range states {
					_, b := st.Usage(live)
					out = append(out, metrics.Sample{
						Values: []string{st.Name()}, Value: float64(b)})
				}
				return out
			})
	}
	return m
}

// handleMetrics serves GET /metrics. The endpoint is read-only operational
// telemetry and stays unauthenticated like /healthz — scrapers run inside
// the deployment perimeter.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.reg.Render(w)
}

// routeLabel normalizes a request path to its route pattern so the request
// counter's cardinality is bounded by the route table, not by client
// behaviour: resource IDs collapse to {id}, unknown paths to "other".
func routeLabel(path string) string {
	switch path {
	case "/healthz", "/metrics",
		"/api/v1/status", "/api/v1/workflows", "/api/v1/jobs",
		"/api/v1/kb/query", "/api/v1/kb/profiles", "/api/v1/kb/export",
		"/api/v2/jobs", "/api/v2/datasets", "/api/v2/uploads",
		"/api/v2/workers",
		"/api/v2/fleet/register", "/api/v2/fleet/poll", "/api/v2/fleet/result":
		return path
	}
	for _, p := range []struct{ prefix, label string }{
		{"/api/v1/jobs/", "/api/v1/jobs/{id}"},
		{"/api/v2/jobs/", ""}, // split below: resource vs events
		{"/api/v2/datasets/", "/api/v2/datasets/{id}"},
		{"/api/v2/uploads/", ""}, // split below: resource vs commit
		{"/api/v2/blobs/", "/api/v2/blobs/{hash}"},
	} {
		rest, ok := strings.CutPrefix(path, p.prefix)
		if !ok {
			continue
		}
		if p.label != "" {
			return p.label
		}
		_, sub, _ := strings.Cut(rest, "/")
		switch {
		case p.prefix == "/api/v2/jobs/" && sub == "events":
			return "/api/v2/jobs/{id}/events"
		case p.prefix == "/api/v2/jobs/":
			return "/api/v2/jobs/{id}"
		case p.prefix == "/api/v2/uploads/" && sub == "commit":
			return "/api/v2/uploads/{id}/commit"
		default:
			return "/api/v2/uploads/{id}"
		}
	}
	return "other"
}
