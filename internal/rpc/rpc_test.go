package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/fleet"
	"scan/internal/knowledge"
)

func testServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	p := core.NewPlatform(core.Options{Workers: 2})
	// The short worker expiry bounds the fleet fallback for tests that
	// register a worker which never polls (the route contract does): a job
	// racing such a ghost worker reverts to the local pool in milliseconds,
	// not the production heartbeat horizon.
	s := NewServerOptions(p, ServerOptions{Executors: 2, Fleet: fleet.NewCoordinator(fleet.Options{
		WorkerExpiry: 100 * time.Millisecond,
		SweepEvery:   5 * time.Millisecond,
	})})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return NewClient(ts.URL), s
}

func TestSubmitAndWait(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	info, err := c.Submit(ctx, SubmitRequest{
		ReferenceLength: 4000, Reads: 800, SNVs: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StatePending {
		t.Fatalf("state = %q", info.State)
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	done, err := c.Wait(ctx, info.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("final state = %q (%s)", done.State, done.Error)
	}
	if done.Mapped == 0 || done.TotalReads != 800 {
		t.Fatalf("result = %+v", done)
	}
	if done.Recovered < done.Planted-1 {
		t.Fatalf("recovered %d/%d", done.Recovered, done.Planted)
	}
	if done.ElapsedSec <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := testServer(t)
	if _, err := c.Submit(context.Background(), SubmitRequest{ReferenceLength: 10, Reads: 0}); err == nil {
		t.Fatal("invalid submission accepted")
	}
}

func TestJobsListAndLookup(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	a, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != a.ID || jobs[1].ID != b.ID {
		t.Fatalf("jobs = %+v", jobs)
	}
	if _, err := c.Job(ctx, 999); err == nil {
		t.Fatal("lookup of unknown job succeeded")
	}
	if !strings.Contains(err999(c), "no job 999") {
		t.Fatal("error message should carry server detail")
	}
}

func err999(c *Client) string {
	_, err := c.Job(context.Background(), 999)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestWorkflowsEndpoint(t *testing.T) {
	c, _ := testServer(t)
	wfs, err := c.Workflows(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(wfs) < 11 {
		t.Fatalf("workflows = %d, want >= 11", len(wfs))
	}
	byName := map[string]WorkflowInfo{}
	for _, wf := range wfs {
		byName[wf.Name] = wf
	}
	dna := byName["dna-variant-detection"]
	if !dna.Runnable || len(dna.Stages) != 8 || dna.Consumes != "FASTQ" || dna.Produces != "VCF" {
		t.Fatalf("dna-variant-detection = %+v", dna)
	}
	// Every catalogued workflow is runnable — all four families have
	// engine substrates.
	for _, wf := range wfs {
		if !wf.Runnable {
			t.Errorf("%s not runnable: %s", wf.Name, wf.Reason)
		}
	}
	mq := byName["proteome-maxquant"]
	if mq.Consumes != "MGF" || mq.Produces != "ProteinTable" {
		t.Fatalf("proteome-maxquant = %+v", mq)
	}
}

func TestSubmitNamedWorkflows(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, tc := range []struct {
		workflow     string
		wantVariants bool
		wantFeatures bool
	}{
		{"somatic-mutation-detection", true, false},
		{"rna-expression", false, true},
	} {
		info, err := c.Submit(ctx, SubmitRequest{
			Workflow: tc.workflow, ReferenceLength: 6000, Reads: 1500, SNVs: 8, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		if info.Workflow != tc.workflow {
			t.Fatalf("submitted workflow = %q, want %q", info.Workflow, tc.workflow)
		}
		done, err := c.Wait(ctx, info.ID, 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if done.State != StateDone {
			t.Fatalf("%s: state = %q (%s)", tc.workflow, done.State, done.Error)
		}
		if done.Workflow != tc.workflow || done.Mapped == 0 || done.TotalReads != 1500 {
			t.Fatalf("%s: result = %+v", tc.workflow, done)
		}
		if tc.wantVariants && done.Variants == 0 {
			t.Fatalf("%s: no variants", tc.workflow)
		}
		// Recovery scoring applies to every variant-calling workflow,
		// not just the default pipeline.
		if tc.wantVariants && (done.Planted != 8 || done.Recovered < done.Planted-1) {
			t.Fatalf("%s: recovered %d/%d", tc.workflow, done.Recovered, done.Planted)
		}
		if tc.wantFeatures && done.Features == 0 {
			t.Fatalf("%s: no features", tc.workflow)
		}
	}
}

func TestSubmitWorkflowValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	base := SubmitRequest{ReferenceLength: 2000, Reads: 100, Seed: 1}
	for name, wantErr := range map[string]string{
		"no-such-analysis":  "not found",
		"proteome-maxquant": "consumes MGF",
		"variants-to-vcf":   "consumes VCF",
	} {
		req := base
		req.Workflow = name
		_, err := c.Submit(ctx, req)
		if err == nil || !strings.Contains(err.Error(), wantErr) {
			t.Errorf("workflow %q: err = %v, want %q", name, err, wantErr)
		}
	}
}

func TestSubmitAfterCloseRejected(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServer(p, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	// A submit racing shutdown must get an error, not crash the daemon
	// on the closed queue.
	_, err := NewClient(ts.URL).Submit(context.Background(),
		SubmitRequest{ReferenceLength: 2000, Reads: 100, Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "shutting down") {
		t.Fatalf("err = %v, want shutdown rejection", err)
	}
	s.Close() // idempotent
}

func TestCloseFailsQueuedJobs(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServer(p, 1)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()
	// Queue several jobs, then shut down immediately: every job must end
	// in a terminal state — done if it ran, failed if shutdown beat it —
	// never stranded pending.
	for i := 0; i < 5; i++ {
		if _, err := c.Submit(ctx, SubmitRequest{
			ReferenceLength: 4000, Reads: 800, Seed: int64(i),
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateDone && j.State != StateFailed {
			t.Fatalf("job %d stranded in state %q after Close", j.ID, j.State)
		}
	}
}

func TestKBQueryEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	res, err := c.Query(ctx, `
PREFIX scan: <`+knowledge.NS+`>
SELECT ?app ?t WHERE { ?app scan:eTime ?t . } ORDER BY ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 4 GATK + 4 family seeded profiles", len(res.Rows))
	}
	if res.Rows[0]["t"] != "80" { // GATK4 stays the fastest profile
		t.Fatalf("first row = %v", res.Rows[0])
	}
	// Malformed SPARQL is a client error, not a crash.
	if _, err := c.Query(ctx, "SELECT garbage"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestProfilesEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ps, err := c.Profiles(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// Name-sorted: the family seeds surround the paper's GATK profiles.
	if len(ps) != 8 || ps[0].Name != "CellProfiler1" || ps[2].Name != "GATK1" {
		t.Fatalf("profiles = %+v", ps)
	}
}

func TestStatusEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 {
		t.Fatalf("status = %+v", st)
	}
	info, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := c.Wait(wctx, info.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d", st.Completed)
	}
	if st.RunLogs == 0 {
		t.Fatal("daemon did not log runs to the KB")
	}
}

func TestExportEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	turtle, err := c.Export(ctx, "turtle")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turtle, "@prefix scan:") || !strings.Contains(turtle, "scan:GATK1") {
		t.Fatalf("turtle export:\n%.300s", turtle)
	}
	rdfxml, err := c.Export(ctx, "rdfxml")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rdfxml, `<owl:NamedIndividual rdf:about="&scan-ontology;GATK1">`) {
		t.Fatalf("rdfxml export:\n%.300s", rdfxml)
	}
	if _, err := c.Export(ctx, "bogus"); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestMethodValidation(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServer(p, 1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, tc := range []struct{ method, path string }{
		{"DELETE", "/api/v1/jobs"},
		{"POST", "/api/v1/status"},
		{"GET", "/api/v1/kb/query"},
		{"POST", "/api/v1/kb/profiles"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rw := httptest.NewRecorder()
		s.Handler().ServeHTTP(rw, req)
		if rw.Code != 405 {
			t.Errorf("%s %s: code %d, want 405", tc.method, tc.path, rw.Code)
		}
	}
}

func intPtr(v int) *int           { return &v }
func floatPtr(v float64) *float64 { return &v }

// TestSubmitRequestDefaults pins the tri-state semantics of the optional
// read-simulation fields: defaults apply only when a field is absent or
// negative; explicit values — including error_rate 0 — are honored.
func TestSubmitRequestDefaults(t *testing.T) {
	for _, tc := range []struct {
		name     string
		req      SubmitRequest
		wantLen  int
		wantRate float64
	}{
		{"absent", SubmitRequest{}, DefaultReadLength, DefaultErrorRate},
		{"explicit", SubmitRequest{ReadLength: intPtr(150), ErrorRate: floatPtr(0.01)}, 150, 0.01},
		{"explicit zero rate", SubmitRequest{ErrorRate: floatPtr(0)}, DefaultReadLength, 0},
		{"negative", SubmitRequest{ReadLength: intPtr(-1), ErrorRate: floatPtr(-0.5)}, DefaultReadLength, DefaultErrorRate},
	} {
		if got := tc.req.EffectiveReadLength(); got != tc.wantLen {
			t.Errorf("%s: EffectiveReadLength = %d, want %d", tc.name, got, tc.wantLen)
		}
		if got := tc.req.EffectiveErrorRate(); got != tc.wantRate {
			t.Errorf("%s: EffectiveErrorRate = %g, want %g", tc.name, got, tc.wantRate)
		}
	}
}

func TestSubmitExplicitReadParams(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Error-free reads at an explicit length: with no sequencing noise the
	// planted mutations must all be recovered.
	info, err := c.Submit(ctx, SubmitRequest{
		ReferenceLength: 4000, Reads: 1200, SNVs: 6, Seed: 11,
		ReadLength: intPtr(120), ErrorRate: floatPtr(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	done, err := c.Wait(ctx, info.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("state = %q (%s)", done.State, done.Error)
	}
	if done.Recovered != done.Planted {
		t.Fatalf("error-free run recovered %d/%d planted SNVs", done.Recovered, done.Planted)
	}
	// An explicit zero read length is rejected up front, not defaulted.
	if _, err := c.Submit(ctx, SubmitRequest{
		ReferenceLength: 4000, Reads: 100, Seed: 1, ReadLength: intPtr(0),
	}); err == nil || !strings.Contains(err.Error(), "read_length 0") {
		t.Fatalf("read_length 0: err = %v, want rejection", err)
	}
}

type failingEncoder struct{ after int }

func (f *failingEncoder) encode(w io.Writer) error {
	if _, err := io.WriteString(w, strings.Repeat("@prefix x: <urn:x> .\n", f.after)); err != nil {
		return err
	}
	return errors.New("disk full")
}

// TestWriteDocumentErrorIsClean: an export that fails mid-encode must
// produce a single JSON error response — never a 200, partial Turtle, and
// a trailing error blob.
func TestWriteDocumentErrorIsClean(t *testing.T) {
	rw := httptest.NewRecorder()
	writeDocument(rw, "text/turtle", (&failingEncoder{after: 100}).encode)
	if rw.Code != 500 {
		t.Fatalf("code = %d, want 500", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var e errorResponse
	if err := json.Unmarshal(rw.Body.Bytes(), &e); err != nil {
		t.Fatalf("body is not a clean JSON error: %v\n%s", err, rw.Body.String())
	}
	if !strings.Contains(e.Error, "disk full") {
		t.Fatalf("error = %q", e.Error)
	}
	if strings.Contains(rw.Body.String(), "@prefix") {
		t.Fatal("partial document leaked into the error response")
	}
}

// TestStatusCountsBufferedTelemetry: run_logs counts buffered observations
// immediately; a flush (here via the export read barrier) folds them and
// zeroes run_logs_pending without changing the total.
func TestStatusCountsBufferedTelemetry(t *testing.T) {
	c, s := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	info, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 200, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, info.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunLogs == 0 {
		t.Fatal("job telemetry not counted")
	}
	s.platform.Flush()
	st2, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st2.RunLogsPending != 0 {
		t.Fatalf("run_logs_pending = %d after Flush", st2.RunLogsPending)
	}
	if st2.RunLogs != st.RunLogs {
		t.Fatalf("flush changed the total: %d -> %d", st.RunLogs, st2.RunLogs)
	}
}
