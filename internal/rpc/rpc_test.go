package rpc

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/knowledge"
)

func testServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	p := core.NewPlatform(core.Options{Workers: 2})
	s := NewServer(p, 2)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return NewClient(ts.URL), s
}

func TestSubmitAndWait(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	info, err := c.Submit(ctx, SubmitRequest{
		ReferenceLength: 4000, Reads: 800, SNVs: 6, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StatePending {
		t.Fatalf("state = %q", info.State)
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	done, err := c.Wait(ctx, info.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if done.State != StateDone {
		t.Fatalf("final state = %q (%s)", done.State, done.Error)
	}
	if done.Mapped == 0 || done.TotalReads != 800 {
		t.Fatalf("result = %+v", done)
	}
	if done.Recovered < done.Planted-1 {
		t.Fatalf("recovered %d/%d", done.Recovered, done.Planted)
	}
	if done.ElapsedSec <= 0 {
		t.Fatal("no elapsed time")
	}
}

func TestSubmitValidation(t *testing.T) {
	c, _ := testServer(t)
	if _, err := c.Submit(context.Background(), SubmitRequest{ReferenceLength: 10, Reads: 0}); err == nil {
		t.Fatal("invalid submission accepted")
	}
}

func TestJobsListAndLookup(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	a, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 2 || jobs[0].ID != a.ID || jobs[1].ID != b.ID {
		t.Fatalf("jobs = %+v", jobs)
	}
	if _, err := c.Job(ctx, 999); err == nil {
		t.Fatal("lookup of unknown job succeeded")
	}
	if !strings.Contains(err999(c), "no job 999") {
		t.Fatal("error message should carry server detail")
	}
}

func err999(c *Client) string {
	_, err := c.Job(context.Background(), 999)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestKBQueryEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	res, err := c.Query(ctx, `
PREFIX scan: <`+knowledge.NS+`>
SELECT ?app ?t WHERE { ?app scan:eTime ?t . } ORDER BY ?t`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 seeded profiles", len(res.Rows))
	}
	if res.Rows[0]["t"] != "80" {
		t.Fatalf("first row = %v", res.Rows[0])
	}
	// Malformed SPARQL is a client error, not a crash.
	if _, err := c.Query(ctx, "SELECT garbage"); err == nil {
		t.Fatal("bad query accepted")
	}
}

func TestProfilesEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ps, err := c.Profiles(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 4 || ps[0].Name != "GATK1" {
		t.Fatalf("profiles = %+v", ps)
	}
}

func TestStatusEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	st, err := c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers < 1 {
		t.Fatalf("status = %+v", st)
	}
	info, err := c.Submit(ctx, SubmitRequest{ReferenceLength: 2000, Reads: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, err := c.Wait(wctx, info.ID, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	st, err = c.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != 1 {
		t.Fatalf("completed = %d", st.Completed)
	}
	if st.RunLogs == 0 {
		t.Fatal("daemon did not log runs to the KB")
	}
}

func TestExportEndpoint(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	turtle, err := c.Export(ctx, "turtle")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(turtle, "@prefix scan:") || !strings.Contains(turtle, "scan:GATK1") {
		t.Fatalf("turtle export:\n%.300s", turtle)
	}
	rdfxml, err := c.Export(ctx, "rdfxml")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rdfxml, `<owl:NamedIndividual rdf:about="&scan-ontology;GATK1">`) {
		t.Fatalf("rdfxml export:\n%.300s", rdfxml)
	}
	if _, err := c.Export(ctx, "bogus"); err == nil {
		t.Fatal("bogus format accepted")
	}
}

func TestMethodValidation(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServer(p, 1)
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	for _, tc := range []struct{ method, path string }{
		{"DELETE", "/api/v1/jobs"},
		{"POST", "/api/v1/status"},
		{"GET", "/api/v1/kb/query"},
		{"POST", "/api/v1/kb/profiles"},
	} {
		req := httptest.NewRequest(tc.method, tc.path, nil)
		rw := httptest.NewRecorder()
		s.Handler().ServeHTTP(rw, req)
		if rw.Code != 405 {
			t.Errorf("%s %s: code %d, want 405", tc.method, tc.path, rw.Code)
		}
	}
}
