package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"mime/multipart"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/genomics"
	"scan/internal/registry"
)

// fastqFixture renders a deterministic reference + read set as FASTA and
// FASTQ text, the client-side files a real upload would stream.
func fastqFixture(t *testing.T, seed int64, refLen, reads int) (fasta, fastq string, ref genomics.Sequence, rds []genomics.Read) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref = genomics.GenerateReference(rng, "chrT", refLen)
	rds, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{Count: reads, Length: 60, ErrorRate: 0})
	if err != nil {
		t.Fatal(err)
	}
	var fa, fq bytes.Buffer
	if err := genomics.WriteFASTA(&fa, []genomics.Sequence{ref}, 70); err != nil {
		t.Fatal(err)
	}
	if err := genomics.WriteAllFASTQ(&fq, rds); err != nil {
		t.Fatal(err)
	}
	return fa.String(), fq.String(), ref, rds
}

// TestDatasetUploadAndJobLifecycle is the tentpole e2e: a FASTQ dataset
// uploaded once via streaming multipart serves two submissions that
// reference it by id; both complete with the correct structured result
// while the registry holds exactly one copy of the records.
func TestDatasetUploadAndJobLifecycle(t *testing.T) {
	c, s := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fasta, fastq, _, rds := fastqFixture(t, 21, 3000, 400)

	ds, err := c.UploadDataset(ctx, "sample-a", "fastq",
		UploadPart{Field: "reference", R: strings.NewReader(fasta)},
		UploadPart{Field: "data", R: strings.NewReader(fastq)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if ds.ID == "" || ds.Name != "sample-a" || ds.Family != "fastq" ||
		ds.Records != len(rds) || !ds.Reference || len(ds.Hash) != 64 {
		t.Fatalf("dataset = %+v", ds)
	}

	// Two jobs over the same registered dataset — by id and by name.
	var finals [2]Job
	for i, key := range []string{ds.ID, ds.Name} {
		job, err := c.CreateJob(ctx, SubmitJobRequest{Dataset: key})
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if job.Source != SourceDataset || job.Dataset != ds.ID || job.Workflow != core.VariantDetectionWorkflow {
			t.Fatalf("job %d = %+v", i, job)
		}
		if finals[i], err = c.Watch(ctx, job.ID, nil); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	for i, final := range finals {
		if final.State != StateDone || final.Result == nil {
			t.Fatalf("job %d ended %s: %+v", i, final.State, final.Error)
		}
		r := final.Result
		if r.TotalReads != len(rds) || r.Mapped == 0 || len(r.Stages) != 8 {
			t.Fatalf("job %d result = %+v", i, r)
		}
	}
	// Same records, same workflow ⇒ identical analysis outcomes.
	if a, b := finals[0].Result, finals[1].Result; a.Mapped != b.Mapped || a.Variants != b.Variants {
		t.Fatalf("results diverge over one dataset: %+v vs %+v", a, b)
	}

	// "Exactly one copy": a submission's materialized workflow input
	// aliases the registry's stored records — same backing array, no
	// per-job duplication.
	_, stored, err := s.platform.Datasets().Resolve(ds.ID)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		spec, apiErr := s.normalizeSubmission(SubmitJobRequest{Dataset: ds.ID})
		if apiErr != nil {
			t.Fatal(apiErr)
		}
		in, _, err := materialize(spec)
		if err != nil {
			t.Fatal(err)
		}
		if &in.Reads[0] != &stored.Reads[0] || &in.Reference.Seq[0] != &stored.Ref.Seq[0] {
			t.Fatal("materialized dataset copied the registry's records")
		}
		s.unpinSpec(spec)
	}

	// The resource surface: list, get, delete.
	list, err := c.Datasets(ctx)
	if err != nil || len(list) != 1 || list[0].ID != ds.ID {
		t.Fatalf("Datasets() = %+v, %v", list, err)
	}
	got, err := c.Dataset(ctx, ds.Name)
	if err != nil || got.Hash != ds.Hash {
		t.Fatalf("Dataset() = %+v, %v", got, err)
	}
	if _, err := c.DeleteDataset(ctx, ds.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Dataset(ctx, ds.ID); err == nil {
		t.Fatal("deleted dataset still served")
	}
}

// TestDatasetFamilies drives the three non-genomic upload families through
// upload → submit → done, each defaulting to its family's workflow.
func TestDatasetFamilies(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// MGF: a tiny hand-built peptide database and matching spectra.
	var peptides, mgf strings.Builder
	for p := 0; p < 3; p++ {
		masses := make([]string, 6)
		for i := range masses {
			masses[i] = fmt.Sprintf("%.1f", 200.0+float64(p)*300+float64(i)*40)
		}
		fmt.Fprintf(&peptides, "P%d P%d.pep0 %s\n", p, p, strings.Join(masses, ","))
		fmt.Fprintf(&mgf, "BEGIN IONS\nTITLE=scan%d\n", p)
		for _, m := range masses {
			fmt.Fprintf(&mgf, "%s 10.0\n", m)
		}
		fmt.Fprintf(&mgf, "END IONS\n")
	}
	mgfDS, err := c.UploadDataset(ctx, "acquisition", "mgf",
		UploadPart{Field: "peptides", R: strings.NewReader(peptides.String())},
		UploadPart{Field: "spectra", R: strings.NewReader(mgf.String())},
	)
	if err != nil {
		t.Fatal(err)
	}
	if mgfDS.Records != 3 {
		t.Fatalf("mgf dataset = %+v", mgfDS)
	}

	// TIFF: two uniform PGM frames.
	var pgm strings.Builder
	for f := 0; f < 2; f++ {
		fmt.Fprintf(&pgm, "P2\n32 32\n255\n")
		for i := 0; i < 32*32; i++ {
			fmt.Fprintf(&pgm, "%d\n", 5)
		}
	}
	tiffDS, err := c.UploadDataset(ctx, "plate", "tiff",
		UploadPart{Field: "data", R: strings.NewReader(pgm.String())})
	if err != nil {
		t.Fatal(err)
	}

	// FeatureTable: two clearly separated modules.
	var tsv strings.Builder
	for g := 0; g < 40; g++ {
		fmt.Fprintf(&tsv, "g%d %f\n", g, float64(g%2)*10)
	}
	featDS, err := c.UploadDataset(ctx, "measurements", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader(tsv.String())})
	if err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		ds       DatasetInfo
		workflow string
		check    func(r *JobResult) error
	}{
		{mgfDS, "proteome-maxquant", func(r *JobResult) error {
			if r.TotalRecords != 3 || r.Proteins == 0 {
				return fmt.Errorf("proteome result = %+v", r)
			}
			return nil
		}},
		{tiffDS, "cell-imaging", func(r *JobResult) error {
			if r.TotalRecords != 2 {
				return fmt.Errorf("imaging result = %+v", r)
			}
			return nil
		}},
		{featDS, "integrative-network", func(r *JobResult) error {
			if r.Nodes != 40 || r.Modules != 2 {
				return fmt.Errorf("network result = %+v", r)
			}
			return nil
		}},
	} {
		job, err := c.CreateJob(ctx, SubmitJobRequest{Dataset: tc.ds.ID})
		if err != nil {
			t.Fatalf("%s: %v", tc.ds.Family, err)
		}
		if job.Workflow != tc.workflow {
			t.Fatalf("%s defaulted to %q, want %q", tc.ds.Family, job.Workflow, tc.workflow)
		}
		final, err := c.Watch(ctx, job.ID, nil)
		if err != nil {
			t.Fatalf("%s: %v", tc.ds.Family, err)
		}
		if final.State != StateDone {
			t.Fatalf("%s ended %s: %+v", tc.ds.Family, final.State, final.Error)
		}
		if err := tc.check(final.Result); err != nil {
			t.Error(err)
		}
	}
}

// TestNamedReferenceGenome registers a reference once and runs reads
// against it two ways: inline reads with no inline reference, and a
// reads-only FASTQ dataset.
func TestNamedReferenceGenome(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	fasta, fastq, _, rds := fastqFixture(t, 33, 2500, 300)

	refDS, err := c.UploadDataset(ctx, "grch-toy", "reference",
		UploadPart{Field: "data", R: strings.NewReader(fasta)})
	if err != nil {
		t.Fatal(err)
	}
	if refDS.Family != "reference" || refDS.Records != 1 {
		t.Fatalf("reference dataset = %+v", refDS)
	}

	// Inline reads naming the registered reference — no genome on the wire.
	inline := &InlineDataset{}
	for _, r := range rds[:50] {
		inline.Reads = append(inline.Reads, InlineRead{ID: r.ID, Sequence: string(r.Seq)})
	}
	job, err := c.CreateJob(ctx, SubmitJobRequest{Inline: inline, Reference: "grch-toy"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result.Mapped == 0 {
		t.Fatalf("inline+named-reference job = %+v (%+v)", final, final.Error)
	}

	// A reads-only FASTQ dataset is submittable only with a named reference.
	readsDS, err := c.UploadDataset(ctx, "reads-only", "fastq",
		UploadPart{Field: "data", R: strings.NewReader(fastq)})
	if err != nil {
		t.Fatal(err)
	}
	if readsDS.Reference {
		t.Fatalf("reads-only dataset claims a reference: %+v", readsDS)
	}
	_, err = c.CreateJob(ctx, SubmitJobRequest{Dataset: readsDS.ID})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument || !strings.Contains(ae.Message, "no reference") {
		t.Fatalf("referenceless submit err = %v", err)
	}
	job2, err := c.CreateJob(ctx, SubmitJobRequest{Dataset: readsDS.ID, Reference: refDS.ID})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c.Watch(ctx, job2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone || final2.Result.TotalReads != len(rds) {
		t.Fatalf("dataset+named-reference job = %+v (%+v)", final2, final2.Error)
	}
}

func TestDatasetSubmitValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fasta, _, _, _ := fastqFixture(t, 5, 2000, 10)
	refDS, err := c.UploadDataset(ctx, "ref", "reference",
		UploadPart{Field: "data", R: strings.NewReader(fasta)})
	if err != nil {
		t.Fatal(err)
	}
	var tsv strings.Builder
	for g := 0; g < 10; g++ {
		fmt.Fprintf(&tsv, "g%d 1.0\n", g)
	}
	featDS, err := c.UploadDataset(ctx, "feat", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader(tsv.String())})
	if err != nil {
		t.Fatal(err)
	}

	inline := &InlineDataset{
		Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
		Reads:     []InlineRead{{Sequence: "ACGTACGTACGTACGTACGT"}},
	}
	for name, tc := range map[string]struct {
		req  SubmitJobRequest
		code string
		want string
	}{
		"dataset plus synthetic": {SubmitJobRequest{Dataset: featDS.ID, Synthetic: smallSynthetic(1)},
			CodeInvalidArgument, "exactly one of"},
		"unknown dataset": {SubmitJobRequest{Dataset: "ds-404"},
			CodeNotFound, "not registered"},
		"unknown reference": {SubmitJobRequest{Inline: &InlineDataset{Reads: inline.Reads}, Reference: "nope"},
			CodeNotFound, "not registered"},
		"reference submitted as dataset": {SubmitJobRequest{Dataset: refDS.ID},
			CodeInvalidArgument, "reference genome"},
		"reference on a non-sequencing source": {SubmitJobRequest{Dataset: featDS.ID, Reference: refDS.ID},
			CodeInvalidArgument, "sequencing submissions"},
		"reference names a non-reference dataset": {SubmitJobRequest{Inline: &InlineDataset{Reads: inline.Reads}, Reference: featDS.ID},
			CodeInvalidArgument, "not a reference genome"},
		"inline and named reference both": {SubmitJobRequest{Inline: inline, Reference: refDS.ID},
			CodeInvalidArgument, "mutually exclusive"},
		"workflow family mismatch": {SubmitJobRequest{Dataset: featDS.ID, Workflow: core.VariantDetectionWorkflow},
			CodeInvalidArgument, "consumes"},
	} {
		_, err := c.CreateJob(ctx, tc.req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != tc.code || !strings.Contains(ae.Message, tc.want) {
			t.Errorf("%s: err = %v, want %s containing %q", name, err, tc.code, tc.want)
		}
	}
}

// TestSubmitEvictedDataset pins the eviction contract: a registry bounded
// to one dataset evicts the oldest unreferenced entry on the next upload,
// and a submission naming the evicted dataset gets a machine-readable 404.
func TestSubmitEvictedDataset(t *testing.T) {
	p := core.NewPlatform(core.Options{
		Workers:  2,
		Datasets: registry.NewStore(registry.Options{MaxDatasets: 1}),
	})
	c, _ := testServerOptions(t, p, ServerOptions{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	row := strings.NewReader("g0 1.0\n")
	first, err := c.UploadDataset(ctx, "first", "feature-table", UploadPart{Field: "data", R: row})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.UploadDataset(ctx, "second", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g0 2.0\n")}); err != nil {
		t.Fatal(err)
	}
	_, err = c.CreateJob(ctx, SubmitJobRequest{Dataset: first.ID})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("evicted-dataset submit err = %v, want coded not_found", err)
	}
	if !strings.Contains(err.Error(), "evicted") {
		t.Fatalf("error does not explain eviction: %v", err)
	}
}

// TestDatasetPinnedWhileJobRuns proves the registry's reference counting:
// a dataset backing a queued/running job can be neither deleted nor
// evicted until the job finishes.
func TestDatasetPinnedWhileJobRuns(t *testing.T) {
	p, block := blockingPlatform(t)
	c, _ := testServerOptions(t, p, ServerOptions{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	fasta, fastq, _, _ := fastqFixture(t, 7, 2000, 20)
	ds, err := c.UploadDataset(ctx, "busy", "fastq",
		UploadPart{Field: "reference", R: strings.NewReader(fasta)},
		UploadPart{Field: "data", R: strings.NewReader(fastq)},
	)
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.CreateJob(ctx, SubmitJobRequest{Dataset: ds.ID, Workflow: "block-forever"})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-block.started: // the job's stage is now in flight
	case <-ctx.Done():
		t.Fatal("job never started")
	}

	_, err = c.DeleteDataset(ctx, ds.ID)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("delete-while-running err = %v, want conflict", err)
	}
	if _, err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Watch(ctx, job.ID, nil); err != nil {
		t.Fatal(err)
	}
	// Terminal job ⇒ pin released ⇒ deletable.
	if _, err := c.DeleteDataset(ctx, ds.ID); err != nil {
		t.Fatalf("delete after terminal state: %v", err)
	}
}

func TestDatasetUploadValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.UploadDataset(ctx, "x", "bam",
		UploadPart{Field: "data", R: strings.NewReader("g0 1.0\n")}); err == nil {
		t.Error("unknown family accepted")
	}
	if _, err := c.UploadDataset(ctx, "", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g0 1.0\n")}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := c.UploadDataset(ctx, "mgf-partless", "mgf",
		UploadPart{Field: "spectra", R: strings.NewReader("BEGIN IONS\n100.0\nEND IONS\n")}); err == nil {
		t.Error("mgf without peptides accepted")
	}
	if _, err := c.UploadDataset(ctx, "bad-part", "feature-table",
		UploadPart{Field: "bogus", R: strings.NewReader("g0 1.0\n")}); err == nil {
		t.Error("unexpected part accepted")
	}
	if _, err := c.UploadDataset(ctx, "ok", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g0 1.0\n")}); err != nil {
		t.Fatal(err)
	}
	// Duplicate names conflict instead of overwriting.
	_, err := c.UploadDataset(ctx, "ok", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g1 2.0\n")})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Errorf("duplicate name err = %v, want conflict", err)
	}
}

// TestDatasetUploadTruncatedMultipart sends a multipart body cut off inside
// the data part: the decode must fail cleanly with the v2 envelope, not
// hang or store a partial dataset.
func TestDatasetUploadTruncatedMultipart(t *testing.T) {
	c, _ := testServer(t)

	var body bytes.Buffer
	mw := multipart.NewWriter(&body)
	if err := mw.WriteField("name", "cut"); err != nil {
		t.Fatal(err)
	}
	if err := mw.WriteField("family", "fastq"); err != nil {
		t.Fatal(err)
	}
	fw, err := mw.CreateFormFile("data", "data")
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(fw, "@r1\nACGTACGT\n+\nIIIIIIII\n@r2\nACGT\n")
	// No mw.Close(): the terminal boundary never arrives.
	truncated := body.Bytes()[:body.Len()-10]

	req, err := http.NewRequest(http.MethodPost, c.base+"/api/v2/datasets", bytes.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("truncated multipart status = %d, want 400", resp.StatusCode)
	}
	ctx := context.Background()
	if list, err := c.Datasets(ctx); err != nil || len(list) != 0 {
		t.Fatalf("partial dataset stored: %+v, %v", list, err)
	}
}

// TestDatasetUploadOverCap streams more feature rows than the per-family
// cap: the decoder must abort mid-stream with a 4xx after consuming only
// its bounded prefix — the daemon's memory exposure is the cap, not the
// body size.
func TestDatasetUploadOverCap(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	rows := &countingRowReader{limit: 100 * maxUploadRows}
	_, err := c.UploadDataset(ctx, "huge", "feature-table", UploadPart{Field: "data", R: rows})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument || !strings.Contains(ae.Message, "more than") {
		t.Fatalf("over-cap upload err = %v", err)
	}
	// Bounded consumption: the decoder stopped pulling at the row cap, so
	// the client's stream was abandoned far from its end. What the client
	// observes includes kernel socket buffering and the post-response
	// connection drain on top of the decoded records, so the assertion here
	// is coarse; the exact stop-at-the-cap behavior (record count, not
	// bytes buffered) is pinned by the registry's decoder tests.
	if emitted := rows.emitted.Load(); emitted > int64(rows.limit)/2 {
		t.Fatalf("server consumed %d of %d offered rows against a %d-row cap", emitted, rows.limit, maxUploadRows)
	}
}

// countingRowReader emits feature rows (up to limit) and records how many
// were actually pulled through the pipe. emitted is atomic because the
// client's streaming-upload goroutine may still be draining the reader
// when the test inspects the count.
type countingRowReader struct {
	limit   int
	emitted atomic.Int64
	buf     []byte
}

func (r *countingRowReader) Read(p []byte) (int, error) {
	for len(r.buf) < len(p) && r.emitted.Load() < int64(r.limit) {
		r.buf = append(r.buf, fmt.Sprintf("g%d 1.0\n", r.emitted.Load())...)
		r.emitted.Add(1)
	}
	if len(r.buf) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.buf)
	r.buf = r.buf[n:]
	return n, nil
}
