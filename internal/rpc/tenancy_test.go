package rpc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/tenant"
)

// End-to-end coverage for the multi-tenant serving surface: API-key
// authentication, token-bucket rate limiting, and the per-tenant quotas
// (concurrent jobs, datasets, resident bytes), all enforced at the v2
// admission layer while /api/v1 and the unauthenticated-default v2 stay
// exactly as they were.

const (
	aliceKey   = "alice-key-1234567890"
	malloryKey = "mallory-key-1234567890"
)

// tenantConfig is the test deployment: a compliant tenant with room to
// work and a hostile one with tight quotas to slam into.
func tenantConfig(t *testing.T) *tenant.Registry {
	t.Helper()
	reg, err := tenant.Parse([]byte(`{"tenants": [
		{"name": "alice", "key": "` + aliceKey + `", "priority": "high",
		 "rate_per_sec": 1000, "burst": 1000},
		{"name": "mallory", "key": "` + malloryKey + `", "priority": "low",
		 "rate_per_sec": 1000, "burst": 1000,
		 "max_jobs": 1, "max_datasets": 1, "max_bytes": 4096}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

// tenantTestServer starts a tenanted daemon over the given platform and
// returns one client per key plus an unauthenticated client.
func tenantTestServer(t *testing.T, p *core.Platform) (alice, mallory, anon *Client, s *Server) {
	t.Helper()
	s = NewServerOptions(p, ServerOptions{Executors: 2, Tenants: tenantConfig(t)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return NewClient(ts.URL, WithAPIKey(aliceKey)),
		NewClient(ts.URL, WithAPIKey(malloryKey)),
		NewClient(ts.URL), s
}

// wantCode asserts an error is a v2 *APIError with the given code.
func wantCode(t *testing.T, err error, code string) *APIError {
	t.Helper()
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != code {
		t.Fatalf("err = %v, want code %q", err, code)
	}
	return ae
}

// TestTenantAuthentication: every v2 request needs a configured key; v1,
// /healthz and /metrics stay open.
func TestTenantAuthentication(t *testing.T) {
	alice, _, anon, _ := tenantTestServer(t, core.NewPlatform(core.Options{Workers: 2}))
	ctx := context.Background()

	_, err := anon.ListJobs(ctx, ListJobsOptions{})
	wantCode(t, err, CodeUnauthenticated)
	bad := NewClient(alice.base, WithAPIKey("alice-key-123456789X")) // near miss
	_, err = bad.ListJobs(ctx, ListJobsOptions{})
	wantCode(t, err, CodeUnauthenticated)

	if _, err := alice.ListJobs(ctx, ListJobsOptions{}); err != nil {
		t.Fatalf("authenticated list: %v", err)
	}
	// The X-API-Key header works for clients that cannot set Authorization.
	req, _ := http.NewRequest(http.MethodGet, alice.base+"/api/v2/jobs", nil)
	req.Header.Set("X-API-Key", aliceKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key request: %v %v", err, resp)
	}
	resp.Body.Close()

	// v1 is compat-frozen: never authenticated, even on a tenanted daemon.
	if _, err := anon.Status(ctx); err != nil {
		t.Fatalf("v1 status without key: %v", err)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(alice.base + path)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %v %v", path, err, resp)
		}
		resp.Body.Close()
	}
}

// TestTenantRateLimit: a tenant over its token bucket gets a structured
// 429 rate_limited with a Retry-After hint; another tenant is unaffected.
func TestTenantRateLimit(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	reg, err := tenant.Parse([]byte(`{"tenants": [
		{"name": "throttled", "key": "throttled-key-0000", "rate_per_sec": 1, "burst": 2},
		{"name": "alice", "key": "` + aliceKey + `", "rate_per_sec": 1000, "burst": 1000}
	]}`))
	if err != nil {
		t.Fatal(err)
	}
	s := NewServerOptions(p, ServerOptions{Executors: 1, Tenants: reg})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	ctx := context.Background()
	throttled := NewClient(ts.URL, WithAPIKey("throttled-key-0000"))
	alice := NewClient(ts.URL, WithAPIKey(aliceKey))

	for i := 0; i < 2; i++ {
		if _, err := throttled.ListJobs(ctx, ListJobsOptions{}); err != nil {
			t.Fatalf("request %d within burst: %v", i, err)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/v2/jobs", nil)
	req.Header.Set("Authorization", "Bearer throttled-key-0000")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	var envelope v2ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Error.Code != CodeRateLimited {
		t.Fatalf("code = %q, want %q", envelope.Error.Code, CodeRateLimited)
	}
	// The other tenant's bucket is untouched.
	for i := 0; i < 10; i++ {
		if _, err := alice.ListJobs(ctx, ListJobsOptions{}); err != nil {
			t.Fatalf("alice request %d during mallory throttle: %v", i, err)
		}
	}
}

// familyRuns returns the four workload families' submissions, one per
// family, with fixed seeds so results are reproducible across servers.
func familyRuns() []SubmitJobRequest {
	return []SubmitJobRequest{
		{Synthetic: &SyntheticSpec{ReferenceLength: 2000, Reads: 120, SNVs: 4, Seed: 3}},
		{Workflow: "proteome-maxquant", Proteome: &ProteomeSpec{Proteins: 15, Spectra: 300, Seed: 5}, ShardRecords: 100},
		{Imaging: &ImagingSpec{Images: 2, Width: 96, Height: 96, CellsPerImage: 5, Seed: 7}},
		{Network: &NetworkSpec{Genes: 60, Modules: 4, Seed: 9}, ShardRecords: 20},
	}
}

// normalizeResult strips the wall-clock fields from a job result so two
// runs of the same deterministic workload compare byte-identical.
func normalizeResult(t *testing.T, r *JobResult) string {
	t.Helper()
	if r == nil {
		t.Fatal("job has no result")
	}
	cp := *r
	cp.ElapsedSec = 0
	cp.Stages = append([]StageBreakdown(nil), r.Stages...)
	for i := range cp.Stages {
		cp.Stages[i].ElapsedSec = 0
		cp.Stages[i].FirstShardStartSec = 0
		cp.Stages[i].Overlap = 0
	}
	raw, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// runFamilies submits every family workload through one client and returns
// the normalized results in submission order.
func runFamilies(ctx context.Context, t *testing.T, c *Client) []string {
	t.Helper()
	out := make([]string, 0, 4)
	for i, req := range familyRuns() {
		job, err := c.CreateJob(ctx, req)
		if err != nil {
			t.Fatalf("family %d submit: %v", i, err)
		}
		final, err := c.Watch(ctx, job.ID, nil)
		if err != nil {
			t.Fatalf("family %d watch: %v", i, err)
		}
		if final.State != StateDone {
			t.Fatalf("family %d state = %q (%+v)", i, final.State, final.Error)
		}
		out = append(out, normalizeResult(t, final.Result))
	}
	return out
}

// TestTwoTenantIsolation is the serving surface's core guarantee: a
// hostile tenant slamming every quota gets nothing but structured 429/403
// envelopes, while a compliant tenant running all four workload families
// concurrently gets results byte-identical to an uncontended daemon.
func TestTwoTenantIsolation(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// Baseline: the same four workloads on an untenanted daemon.
	baseClient, _ := testServerOptions(t, core.NewPlatform(core.Options{Workers: 2}),
		ServerOptions{Executors: 2})
	baseline := runFamilies(ctx, t, baseClient)

	// The tenanted daemon gets the blocking catalogue so the hostile
	// tenant can pin its one job slot with a deterministically-running job.
	bp, block := blockingPlatform(t)
	alice, mallory, _, _ := tenantTestServer(t, bp)

	// The hostile tenant hammers its quotas for the whole duration of the
	// compliant tenant's runs.
	hostileDone := make(chan struct{})
	var hostileErr error
	var hostileMu sync.Mutex
	fail := func(format string, args ...any) {
		hostileMu.Lock()
		if hostileErr == nil {
			hostileErr = fmt.Errorf(format, args...)
		}
		hostileMu.Unlock()
	}
	go func() {
		defer close(hostileDone)
		// Job quota: max_jobs 1. The blocking job holds the slot (and one
		// of the two executors) until canceled; every further submission
		// must bounce with quota_exceeded.
		held, err := mallory.CreateJob(ctx, SubmitJobRequest{
			Workflow: "block-forever", Synthetic: smallSynthetic(11)})
		if err != nil {
			fail("hostile first job: %v", err)
			return
		}
		select {
		case <-block.started: // the held job is now observably running
		case <-ctx.Done():
			fail("held job never started")
			return
		}
		for i := 0; i < 5; i++ {
			_, err := mallory.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(12)})
			var ae *APIError
			if !errors.As(err, &ae) || ae.Code != CodeQuotaExceeded {
				fail("over-quota submit %d: err = %v, want quota_exceeded", i, err)
				return
			}
		}
		// Dataset count quota: max_datasets 1.
		if _, err := mallory.UploadDataset(ctx, "m-feat", "feature-table",
			UploadPart{Field: "data", R: strings.NewReader("g1 2.5\ng2 1.5\n")}); err != nil {
			fail("hostile first dataset: %v", err)
			return
		}
		_, err = mallory.UploadDataset(ctx, "m-feat2", "feature-table",
			UploadPart{Field: "data", R: strings.NewReader("g3 2.5\n")})
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeQuotaExceeded {
			fail("over-count upload: err = %v, want quota_exceeded", err)
			return
		}
		// Canceling the held job frees the slot exactly once: after the
		// cancel lands, a fresh submission is admitted again.
		if _, err := mallory.Cancel(ctx, held.ID); err != nil {
			fail("cancel own job: %v", err)
			return
		}
		if final, err := mallory.Watch(ctx, held.ID, nil); err != nil || final.State != StateCanceled {
			fail("held job after cancel = %+v (%v), want canceled", final, err)
			return
		}
		fresh, err := mallory.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(13)})
		if err != nil {
			fail("post-cancel submit: %v", err)
			return
		}
		if final, err := mallory.Watch(ctx, fresh.ID, nil); err != nil || final.State != StateDone {
			fail("post-cancel job = %+v (%v), want done", final, err)
		}
	}()

	// The compliant tenant's four families run concurrently with the
	// hostile traffic and must come out byte-identical to the baseline.
	contended := runFamilies(ctx, t, alice)
	<-hostileDone
	hostileMu.Lock()
	err := hostileErr
	hostileMu.Unlock()
	if err != nil {
		t.Fatalf("hostile tenant: %v", err)
	}
	for i := range baseline {
		if contended[i] != baseline[i] {
			t.Errorf("family %d result diverged under hostile load:\n  baseline:  %s\n  contended: %s",
				i, baseline[i], contended[i])
		}
	}
}

// TestTenantByteQuota: the byte quota is settled post-commit — an upload
// whose decoded size busts it is deleted again and answers 429.
func TestTenantByteQuota(t *testing.T) {
	_, mallory, _, _ := tenantTestServer(t, core.NewPlatform(core.Options{Workers: 2}))
	ctx := context.Background()

	// A feature table of 400 rows (~7 KiB on the wire) busts mallory's
	// 4096-byte quota.
	var rows strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&rows, "gene%04d %f\n", i, float64(i)*1.5)
	}
	_, err := mallory.UploadDataset(ctx, "m-big", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader(rows.String())})
	wantCode(t, err, CodeQuotaExceeded)
	// The over-quota dataset did not survive, by listing or by name.
	list, err := mallory.Datasets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 0 {
		t.Fatalf("datasets after rejected upload = %+v, want none", list)
	}
	// And the tenant ledger holds no phantom bytes: a small upload fits.
	if _, err := mallory.UploadDataset(ctx, "m-small", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g1 2.5\n")}); err != nil {
		t.Fatalf("small upload after rejection: %v", err)
	}
}

// TestTenantOwnership: with tenancy on, destruction is ownership-gated —
// another tenant's datasets, jobs and upload sessions answer 403 — while
// reads stay shared.
func TestTenantOwnership(t *testing.T) {
	bp, block := blockingPlatform(t)
	alice, mallory, _, _ := tenantTestServer(t, bp)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	ds, err := alice.UploadDataset(ctx, "a-feat", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g1 2.5\ng2 1.5\n")})
	if err != nil {
		t.Fatal(err)
	}
	// Shared reads: mallory can inspect and even run alice's dataset.
	if _, err := mallory.Dataset(ctx, ds.ID); err != nil {
		t.Fatalf("cross-tenant read: %v", err)
	}
	// Gated destruction: delete answers 403 and the dataset survives.
	_, err = mallory.DeleteDataset(ctx, ds.ID)
	wantCode(t, err, CodeForbidden)
	_, err = mallory.DeleteDataset(ctx, "a-feat") // by name resolves to the same owner
	wantCode(t, err, CodeForbidden)
	if _, err := alice.Dataset(ctx, ds.ID); err != nil {
		t.Fatalf("dataset gone after forbidden delete: %v", err)
	}

	// Jobs: mallory cannot cancel alice's (deterministically running) job.
	job, err := alice.CreateJob(ctx, SubmitJobRequest{
		Workflow: "block-forever", Synthetic: smallSynthetic(13)})
	if err != nil {
		t.Fatal(err)
	}
	if job.Tenant != "alice" {
		t.Fatalf("job tenant = %q, want alice", job.Tenant)
	}
	<-block.started
	_, err = mallory.Cancel(ctx, job.ID)
	wantCode(t, err, CodeForbidden)
	if _, err := alice.Cancel(ctx, job.ID); err != nil {
		t.Fatalf("own cancel: %v", err)
	}

	// Upload sessions: only the opener may append, commit or abort.
	up, err := alice.CreateUpload(ctx, "a-resume", "feature-table")
	if err != nil {
		t.Fatal(err)
	}
	_, err = mallory.AppendUpload(ctx, up.ID, "data", 0, strings.NewReader("g9 1.0\n"))
	wantCode(t, err, CodeForbidden)
	err = mallory.AbortUpload(ctx, up.ID)
	wantCode(t, err, CodeForbidden)
	_, err = mallory.CommitUpload(ctx, up.ID)
	wantCode(t, err, CodeForbidden)
	if _, err := alice.AppendUpload(ctx, up.ID, "data", 0, strings.NewReader("g9 1.0\n")); err != nil {
		t.Fatalf("own append: %v", err)
	}
	if _, err := alice.CommitUpload(ctx, up.ID); err != nil {
		t.Fatalf("own commit: %v", err)
	}

	// Finally alice cleans up her own dataset; the registry and her quota
	// ledger both let go.
	if _, err := alice.DeleteDataset(ctx, ds.ID); err != nil {
		t.Fatalf("own delete: %v", err)
	}
}
