package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// These tests pin the /api/v1 wire format at the raw-JSON level: flat
// JobInfo objects, bare arrays for listings, the {"error":"<string>"}
// envelope, and the closed four-value state enum. The v2 redesign must not
// move any of it — old clients decode these exact shapes.

func rawRequest(t *testing.T, c *Client, method, path string, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewReader([]byte(body))
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, raw
}

func TestV1SubmitWireShape(t *testing.T) {
	c, _ := testServer(t)
	code, raw := rawRequest(t, c, http.MethodPost, "/api/v1/jobs",
		`{"reference_length":4000,"reads":600,"snvs":5,"seed":8}`)
	if code != http.StatusAccepted {
		t.Fatalf("code = %d, body = %s", code, raw)
	}
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatalf("submit response is not an object: %v\n%s", err, raw)
	}
	for _, key := range []string{"id", "state", "workflow", "submitted"} {
		if _, ok := obj[key]; !ok {
			t.Fatalf("submit response missing %q: %s", key, raw)
		}
	}
	if obj["state"] != "pending" {
		t.Fatalf("state = %v", obj["state"])
	}
	// v2 vocabulary must not leak into the v1 shape.
	for _, key := range []string{"result", "source", "error"} {
		if _, ok := obj[key]; ok {
			t.Fatalf("v1 submit response leaked %q: %s", key, raw)
		}
	}

	// Once done, the result is flat on the job object — not nested.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	id := int(obj["id"].(float64))
	if _, err := c.Wait(ctx, id, 20*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	code, raw = rawRequest(t, c, http.MethodGet, "/api/v1/jobs/0", "")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	var done map[string]any
	if err := json.Unmarshal(raw, &done); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"mapped", "total_reads", "variants", "elapsed_sec"} {
		if _, ok := done[key]; !ok {
			t.Fatalf("done job missing flat %q: %s", key, raw)
		}
	}
	if _, ok := done["result"]; ok {
		t.Fatalf("v1 job grew a nested result: %s", raw)
	}
	if done["state"] != "done" {
		t.Fatalf("state = %v", done["state"])
	}
}

func TestV1ListIsBareArray(t *testing.T) {
	c, _ := testServer(t)
	code, raw := rawRequest(t, c, http.MethodGet, "/api/v1/jobs", "")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	if trimmed := bytes.TrimSpace(raw); len(trimmed) == 0 || trimmed[0] != '[' {
		t.Fatalf("v1 list is not a bare array: %s", raw)
	}
}

func TestV1ErrorEnvelopeIsString(t *testing.T) {
	c, _ := testServer(t)
	code, raw := rawRequest(t, c, http.MethodGet, "/api/v1/jobs/999", "")
	if code != http.StatusNotFound {
		t.Fatalf("code = %d", code)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(raw, &env); err != nil || env.Error != "no job 999" {
		t.Fatalf("v1 error envelope = %s (err %v), want string error", raw, err)
	}
}

// TestV1QueryRowsNeverNull: a query matching nothing serializes rows (and
// vars) as empty arrays, not null.
func TestV1QueryRowsNeverNull(t *testing.T) {
	c, _ := testServer(t)
	code, raw := rawRequest(t, c, http.MethodPost, "/api/v1/kb/query",
		`{"query":"PREFIX scan: <http://www.semanticweb.org/scan/ontologies/scan-ontology#>\nSELECT ?a WHERE { ?a scan:noSuchPredicate ?b . }"}`)
	if code != http.StatusOK {
		t.Fatalf("code = %d, body = %s", code, raw)
	}
	if !strings.Contains(string(raw), `"rows":[]`) {
		t.Fatalf("zero-match query leaked null rows: %s", raw)
	}
	if strings.Contains(string(raw), `"vars":null`) {
		t.Fatalf("query leaked null vars: %s", raw)
	}
}

// TestV1StateEnumStaysClosed: jobs canceled through v2 appear as "failed"
// on the v1 surface — v1 clients must never see an unknown state value.
func TestV1StateEnumStaysClosed(t *testing.T) {
	p, _ := blockingPlatform(t)
	c, _ := testServerOptions(t, p, ServerOptions{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Two jobs on a single executor: the second stays queued; cancel it.
	if _, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(1)}); err != nil {
		t.Fatal(err)
	}
	queued, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(2)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	code, raw := rawRequest(t, c, http.MethodGet, "/api/v1/jobs/1", "")
	if code != http.StatusOK {
		t.Fatalf("code = %d", code)
	}
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil {
		t.Fatal(err)
	}
	if obj["state"] != "failed" {
		t.Fatalf("v1 state for canceled job = %v, want failed", obj["state"])
	}
}
