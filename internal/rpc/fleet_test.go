package rpc

import (
	"context"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/fleet"
)

// TestJobsScatterToFleetWorkers is the daemon-level slice of the fleet
// contract: a worker that joins through the server's own fleet endpoints
// is handed the shards of ordinary submitted jobs, and the roster reports
// the work. The zero-worker default (local pipelined execution) is pinned
// by TestV2StageEventsStreamed.
func TestJobsScatterToFleetWorkers(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 2})
	s := NewServerOptions(p, ServerOptions{Executors: 2})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	c := NewClient(ts.URL)

	wctx, wcancel := context.WithCancel(context.Background())
	wk := fleet.NewWorker(fleet.WorkerOptions{Coordinator: ts.URL, Name: "node1", Slots: 2})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); _ = wk.Run(wctx) }()
	t.Cleanup(func() { wcancel(); wg.Wait() })

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for s.fleet.ReadyWorkers() == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	job, err := c.CreateJob(ctx, SubmitJobRequest{
		Workflow:     "integrative-network",
		Network:      &NetworkSpec{Genes: 60, Modules: 4, Seed: 29},
		ShardRecords: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job state = %s (%v)", final.State, final.Error)
	}
	if final.Result == nil || final.Result.Nodes != 60 || final.Result.Modules != 4 {
		t.Fatalf("result = %+v", final.Result)
	}

	roster, err := c.Workers(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(roster.Workers) != 1 || roster.Workers[0].Name != "node1" {
		t.Fatalf("roster = %+v", roster)
	}
	if roster.Workers[0].ShardsDone == 0 {
		t.Fatal("worker executed no shards; the job ran locally despite a registered fleet")
	}
	if roster.Metrics.RemoteStages == 0 || roster.Metrics.Completed == 0 {
		t.Fatalf("fleet metrics = %+v", roster.Metrics)
	}
}
