package rpc

import (
	"net/http"
	"runtime/debug"
	"strconv"
	"time"
)

// statusWriter records the response status for the access log while keeping
// http.Flusher reachable — the SSE handler streams through this wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the wrapped writer so http.ResponseController can reach
// per-request deadline controls (the SSE handler's write timeout).
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// middleware wraps the API mux with panic recovery and access logging. A
// handler panic becomes a clean JSON 500 (in the envelope of whichever API
// version was addressed) when the response has not started, and is logged
// with its stack either way — one bad request must not kill the daemon.
func (s *Server) middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if p := recover(); p != nil {
				s.logf("rpc: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, p, debug.Stack())
				if sw.status == 0 {
					if isV2(r) {
						writeV2Error(sw, http.StatusInternalServerError, CodeInternal, "internal server error")
					} else {
						writeError(sw, http.StatusInternalServerError, "internal server error")
					}
				}
			}
			status := sw.status
			if status == 0 {
				// Handler wrote nothing (e.g. a disconnected stream):
				// net/http sends 200 on return.
				status = http.StatusOK
			}
			s.metrics.httpRequests.With(routeLabel(r.URL.Path), strconv.Itoa(status)).Inc()
			s.logf("rpc: %s %s -> %d (%s)", r.Method, r.URL.Path, status,
				time.Since(start).Round(time.Millisecond))
		}()
		next.ServeHTTP(sw, r)
	})
}
