package rpc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"scan/internal/core"
	"scan/internal/workflow"
)

// The /api/v1 handlers: the original flat RPC surface, wire-compatible with
// the prototype and pinned by v1compat_test.go. Jobs submitted here flow
// through the same store and engine as v2 submissions; only the rendering
// differs (flat JobInfo, string error envelope, closed state enum).

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError sends the v1 {"error":"<string>"} envelope.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// One consistent snapshot: separate RunCount/PendingLogs calls could
	// interleave with a fold and report pending > total.
	runLogs, runPending := s.platform.KB().RunCounts()
	s.mu.Lock()
	resp := StatusResponse{
		Workers:        s.platform.Workers(),
		RunLogs:        runLogs,
		RunLogsPending: runPending,
		// Cumulative counters survive eviction; canceled jobs count as
		// failed in v1's four-bucket view.
		Completed: s.statDone,
		Failed:    s.statFailed + s.statCanceled,
	}
	for _, rec := range s.jobs {
		switch rec.job.State {
		case StatePending:
			resp.Pending++
		case StateRunning:
			resp.Running++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.ReferenceLength < 200 || req.Reads < 1 {
			writeError(w, http.StatusBadRequest,
				"reference_length must be >= 200 and reads >= 1")
			return
		}
		if req.ReadLength != nil && *req.ReadLength == 0 {
			writeError(w, http.StatusBadRequest,
				"read_length 0 is invalid; omit the field for the default (%d)",
				DefaultReadLength)
			return
		}
		if req.Workflow == "" {
			req.Workflow = core.VariantDetectionWorkflow
		}
		// v1 predates the family specs: its submissions are always
		// synthetic sequencing reads.
		if err := s.submittable(req.Workflow, workflow.FASTQ); err != nil {
			writeError(w, http.StatusBadRequest, "workflow %q: %v", req.Workflow, err)
			return
		}
		job, apiErr := s.enqueue(jobSpec{
			workflow:     req.Workflow,
			shardRecords: req.ShardRecords,
			synthetic: &SyntheticSpec{
				ReferenceLength: req.ReferenceLength,
				Reads:           req.Reads,
				ReadLength:      req.ReadLength,
				SNVs:            req.SNVs,
				ErrorRate:       req.ErrorRate,
				Seed:            req.Seed,
			},
		})
		if apiErr != nil {
			writeError(w, http.StatusServiceUnavailable, "%s", apiErr.Message)
			return
		}
		writeJSON(w, http.StatusAccepted, v1View(job))
	case http.MethodGet:
		s.mu.Lock()
		out := make([]JobInfo, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, v1View(s.jobs[id].job))
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", idStr)
		return
	}
	s.mu.Lock()
	rec, ok := s.jobs[id]
	var info JobInfo
	if ok {
		info = v1View(rec.job)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := s.platform.KB().Query(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	// Zero-row results must serialize as [], not null — clients iterate
	// "rows" without a nil check.
	resp := QueryResponse{
		Vars: append([]string{}, res.Vars...),
		Rows: make([]map[string]string, 0, len(res.Rows)),
	}
	for _, row := range res.Rows {
		m := make(map[string]string, len(row))
		for v, term := range row {
			m[v] = term.String()
		}
		resp.Rows = append(resp.Rows, m)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ps, err := s.platform.KB().Profiles()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "profiles: %v", err)
		return
	}
	out := make([]ProfileInfo, len(ps))
	for i, p := range ps {
		out[i] = ProfileInfo{
			Name: p.Name, InputFileSize: p.InputFileSize, Steps: p.Steps,
			RAM: p.RAM, CPU: p.CPU, ETime: p.ETime,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleExport serves the knowledge base as Turtle (default) or RDF/XML
// (?format=rdfxml), the paper's listing format.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "turtle":
		writeDocument(w, "text/turtle", s.platform.KB().Export)
	case "rdfxml":
		writeDocument(w, "application/rdf+xml", s.platform.KB().ExportRDFXML)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
	}
}

// writeDocument encodes a document fully into memory before touching the
// ResponseWriter. Streaming straight into the writer looks cheaper but has
// a broken failure mode: once the 200 header and a partial body are out, a
// mid-stream encode error can only append a JSON error blob (and a
// superfluous-500 log) onto the partial document. Buffering guarantees the
// client gets either a complete document or a clean JSON error.
func writeDocument(w http.ResponseWriter, contentType string, encode func(io.Writer) error) {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "export: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cat := s.platform.Catalogue()
	out := make([]WorkflowInfo, 0, cat.Len())
	for _, name := range cat.Names() {
		wf, err := cat.Get(name)
		if err != nil {
			continue // registry is append-only; cannot happen
		}
		info := WorkflowInfo{
			Name:        wf.Name,
			Family:      wf.Family,
			Description: wf.Description,
			Consumes:    string(wf.Consumes()),
			Produces:    string(wf.Produces()),
			Runnable:    true,
			Stages:      make([]StageInfo, 0, len(wf.Stages)),
		}
		for _, st := range wf.Stages {
			info.Stages = append(info.Stages, StageInfo{
				Name: st.Name, Tool: st.Tool,
				Consumes: string(st.Consumes), Produces: string(st.Produces),
				Parallelizable: st.Parallelizable,
			})
		}
		if err := s.platform.Engine().CanRun(wf); err != nil {
			info.Runnable = false
			info.Reason = err.Error()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}
