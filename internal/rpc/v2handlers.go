package rpc

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"scan/internal/core"
	"scan/internal/genomics"
	"scan/internal/registry"
	"scan/internal/workflow"
)

// The /api/v2 handlers: resource-oriented jobs with machine-readable error
// codes, cancellation, filtered + paginated listing, and SSE event streams.

// writeV2Error sends the structured v2 error envelope.
func writeV2Error(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, v2ErrorResponse{Error: APIError{
		Code:    code,
		Message: fmt.Sprintf(format, args...),
	}})
}

// maxInlineBases bounds the inline payload (reference + reads) so one
// submission cannot hold the daemon's memory hostage.
const maxInlineBases = 16 << 20

// maxSubmitBody bounds the raw v2 submission body *before* JSON decoding —
// without it the inline-bases check runs only after an arbitrarily large
// body has been materialized. Sized for a maxInlineBases payload with
// per-read quality strings and JSON structure overhead.
const maxSubmitBody = 3*maxInlineBases + 1<<20

// handleV2Jobs routes the job collection: POST submits, GET lists.
func (s *Server) handleV2Jobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleV2Submit(w, r)
	case http.MethodGet:
		s.handleV2List(w, r)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleV2Submit(w http.ResponseWriter, r *http.Request) {
	var req SubmitJobRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSubmitBody)).Decode(&req); err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: %v", err)
		return
	}
	spec, apiErr := s.normalizeSubmission(req)
	if apiErr != nil {
		status := http.StatusBadRequest
		if apiErr.Code == CodeNotFound {
			// The named dataset/reference is gone (never uploaded, deleted,
			// or evicted) — a machine-readable 404, not a malformed request.
			status = http.StatusNotFound
		}
		writeJSON(w, status, v2ErrorResponse{Error: *apiErr})
		return
	}
	if !s.admitJobQuota(w, r, &spec) {
		return
	}
	job, apiErr := s.enqueue(spec)
	if apiErr != nil {
		writeJSON(w, http.StatusServiceUnavailable, v2ErrorResponse{Error: *apiErr})
		return
	}
	writeJSON(w, http.StatusAccepted, job)
}

// Synthetic-generation bounds: one submission must not be able to ask the
// daemon to materialize an effectively unbounded dataset.
const (
	maxSyntheticSpectra  = 50000
	maxSyntheticProteins = 2000
	maxSyntheticImages   = 64
	maxImageSide         = 1024
	maxSyntheticGenes    = 20000 // edge construction is O(genes²) time
	// maxSyntheticEdgePairs bounds genes²/modules — a proxy for ~2× the
	// edge count the generator's module structure implies. Edge *memory*
	// scales with genes²/modules (each planted module is near-complete),
	// so the genes cap alone would let network:{genes:20000,modules:1}
	// materialize ~2e8 edges and OOM the daemon.
	maxSyntheticEdgePairs = 1 << 20
)

// defaultWorkflowFor maps a submission's input data type to the workflow it
// runs when it names none — one canonical analysis per family.
func defaultWorkflowFor(t workflow.DataType) string {
	switch t {
	case workflow.MGF:
		return "proteome-maxquant"
	case workflow.TIFF:
		return "cell-imaging"
	case workflow.FeatureTable:
		return "integrative-network"
	default:
		return core.VariantDetectionWorkflow
	}
}

// normalizeSubmission validates a v2 submission into a jobSpec. Registry
// datasets the submission names are resolved and pinned here; every error
// path releases the pins (the job will never run), the success path keeps
// them until the job reaches a terminal state.
func (s *Server) normalizeSubmission(req SubmitJobRequest) (jobSpec, *APIError) {
	spec := jobSpec{shardRecords: req.ShardRecords}
	fail := func(apiErr *APIError) (jobSpec, *APIError) {
		s.unpinSpec(spec)
		return jobSpec{}, apiErr
	}
	invalid := func(format string, args ...any) (jobSpec, *APIError) {
		return fail(&APIError{Code: CodeInvalidArgument, Message: fmt.Sprintf(format, args...)})
	}
	notFound := func(idOrName string) (jobSpec, *APIError) {
		return fail(&APIError{Code: CodeNotFound, Message: fmt.Sprintf(
			"dataset %q is not registered (it may have been evicted); re-upload via POST /api/v2/datasets", idOrName)})
	}
	sources := 0
	for _, set := range []bool{
		req.Synthetic != nil, req.Inline != nil,
		req.Proteome != nil, req.Imaging != nil, req.Network != nil,
		req.Dataset != "",
	} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return invalid("exactly one of synthetic, inline, proteome, imaging, network or dataset must be set")
	}
	switch {
	case req.Synthetic != nil:
		syn := req.Synthetic
		if syn.ReferenceLength < 200 || syn.Reads < 1 {
			return invalid("synthetic: reference_length must be >= 200 and reads >= 1")
		}
		if syn.ReadLength != nil && *syn.ReadLength == 0 {
			return invalid("synthetic: read_length 0 is invalid; omit the field for the default (%d)",
				DefaultReadLength)
		}
		cp := *syn
		spec.synthetic = &cp
	case req.Inline != nil:
		in, err := normalizeInline(req.Inline, req.Reference != "")
		if err != nil {
			return invalid("inline: %v", err)
		}
		spec.inline = in
	case req.Proteome != nil:
		p := *req.Proteome
		if p.Proteins < 1 || p.Spectra < 1 {
			return invalid("proteome: proteins and spectra must be >= 1")
		}
		if p.Proteins > maxSyntheticProteins || p.Spectra > maxSyntheticSpectra {
			return invalid("proteome: at most %d proteins and %d spectra", maxSyntheticProteins, maxSyntheticSpectra)
		}
		spec.proteome = &p
	case req.Imaging != nil:
		im := *req.Imaging
		if im.Images < 1 || im.Images > maxSyntheticImages {
			return invalid("imaging: images must be in [1, %d]", maxSyntheticImages)
		}
		if im.Width == 0 {
			im.Width = 128
		}
		if im.Height == 0 {
			im.Height = 128
		}
		if im.Width < 32 || im.Width > maxImageSide || im.Height < 32 || im.Height > maxImageSide {
			return invalid("imaging: width and height must be in [32, %d]", maxImageSide)
		}
		if im.CellsPerImage == 0 {
			im.CellsPerImage = 6
		}
		// The generator requires mutually separated cells; bound the count
		// by a conservative packing density so placement always succeeds.
		if maxCells := (im.Width / 32) * (im.Height / 32); im.CellsPerImage < 1 || im.CellsPerImage > maxCells {
			return invalid("imaging: cells_per_image must be in [1, %d] for %dx%d frames",
				maxCells, im.Width, im.Height)
		}
		spec.imaging = &im
	case req.Network != nil:
		n := *req.Network
		if n.Genes < 1 || n.Genes > maxSyntheticGenes {
			return invalid("network: genes must be in [1, %d]", maxSyntheticGenes)
		}
		if n.Modules < 1 || n.Modules > n.Genes {
			return invalid("network: modules must be in [1, genes]")
		}
		if n.Genes*n.Genes/n.Modules > maxSyntheticEdgePairs {
			return invalid("network: genes²/modules must be <= %d (edge memory); spread %d genes over more modules",
				maxSyntheticEdgePairs, n.Genes)
		}
		spec.network = &n
	case req.Dataset != "":
		meta, payload, err := s.platform.Datasets().Pin(req.Dataset)
		if err != nil {
			return notFound(req.Dataset)
		}
		spec.pinned = append(spec.pinned, meta.ID)
		if meta.Family == registry.Reference {
			return invalid("dataset %q is a reference genome; name it via the reference field alongside reads", req.Dataset)
		}
		spec.dataset = &datasetInput{id: meta.ID, family: meta.Family, payload: payload}
	}
	// A named reference genome rides along sequencing submissions: it
	// replaces the inline reference or overrides/supplies a FASTQ dataset's
	// embedded one.
	if req.Reference != "" {
		if spec.inline == nil && (spec.dataset == nil || spec.dataset.family != registry.FASTQ) {
			return invalid("reference applies to sequencing submissions only (inline reads or a fastq dataset)")
		}
		meta, payload, err := s.platform.Datasets().Pin(req.Reference)
		if err != nil {
			return notFound(req.Reference)
		}
		spec.pinned = append(spec.pinned, meta.ID)
		if meta.Family != registry.Reference {
			return invalid("dataset %q is family %s, not a reference genome", req.Reference, meta.Family)
		}
		if spec.inline != nil {
			spec.inline.ref = payload.Ref
		} else {
			spec.dataset.payload.Ref = payload.Ref
		}
	}
	if spec.dataset != nil && spec.dataset.family == registry.FASTQ && spec.dataset.payload.Ref.Len() == 0 {
		return invalid("fastq dataset %q carries no reference; upload one with a reference part or name a registered reference genome", req.Dataset)
	}
	if req.Workflow == "" {
		req.Workflow = defaultWorkflowFor(spec.inputType())
	}
	spec.workflow = req.Workflow
	if err := s.submittable(req.Workflow, spec.inputType()); err != nil {
		return invalid("workflow %q: %v", req.Workflow, err)
	}
	return spec, nil
}

// normalizeInline validates an inline dataset and converts it to genomics
// form: bases upper-cased and checked, read IDs and qualities defaulted.
// With namedRef the submission names a registered reference genome: the
// inline reference must then be absent (the caller fills inlineInput.ref
// from the registry after validation).
func normalizeInline(in *InlineDataset, namedRef bool) (*inlineInput, error) {
	if namedRef && in.Reference.Sequence != "" {
		return nil, fmt.Errorf("an inline reference and a named reference are mutually exclusive")
	}
	refSeq := genomics.Upper([]byte(in.Reference.Sequence))
	if !namedRef {
		if len(refSeq) < 16 {
			return nil, fmt.Errorf("reference must be at least 16 bases (the aligner's seed length), got %d", len(refSeq))
		}
		if err := genomics.ValidateBases(refSeq); err != nil {
			return nil, fmt.Errorf("reference: %w", err)
		}
	}
	if len(in.Reads) == 0 {
		return nil, fmt.Errorf("at least one read is required")
	}
	name := in.Reference.Name
	if name == "" {
		name = "ref"
	}
	total := len(refSeq)
	reads := make([]genomics.Read, 0, len(in.Reads))
	for i, r := range in.Reads {
		seq := genomics.Upper([]byte(r.Sequence))
		if len(seq) == 0 {
			return nil, fmt.Errorf("read %d: empty sequence", i)
		}
		if err := genomics.ValidateBases(seq); err != nil {
			return nil, fmt.Errorf("read %d: %w", i, err)
		}
		if r.Quality != "" && len(r.Quality) != len(seq) {
			return nil, fmt.Errorf("read %d: quality length %d != sequence length %d",
				i, len(r.Quality), len(seq))
		}
		total += len(seq)
		if total > maxInlineBases {
			return nil, fmt.Errorf("payload exceeds %d bases", maxInlineBases)
		}
		id := r.ID
		if id == "" {
			id = fmt.Sprintf("read%d", i)
		}
		qual := []byte(r.Quality)
		if len(qual) == 0 {
			qual = make([]byte, len(seq))
			for j := range qual {
				qual[j] = 'I' // Phred+33 Q40: "no quality given" means high confidence
			}
		}
		reads = append(reads, genomics.Read{ID: id, Seq: seq, Qual: qual})
	}
	return &inlineInput{ref: genomics.Sequence{Name: name, Seq: refSeq}, reads: reads}, nil
}

// List pagination bounds.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// encodePageToken renders an opaque continuation token: the listing resumes
// after the given job ID. Position-based tokens stay valid across eviction.
func encodePageToken(afterID int) string {
	return base64.RawURLEncoding.EncodeToString([]byte("jobs/" + strconv.Itoa(afterID)))
}

func decodePageToken(tok string) (int, error) {
	raw, err := base64.RawURLEncoding.DecodeString(tok)
	if err != nil {
		return 0, fmt.Errorf("bad page_token")
	}
	idStr, ok := strings.CutPrefix(string(raw), "jobs/")
	if !ok {
		return 0, fmt.Errorf("bad page_token")
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return 0, fmt.Errorf("bad page_token")
	}
	return id, nil
}

var knownStates = map[JobState]bool{
	StatePending: true, StateRunning: true,
	StateDone: true, StateFailed: true, StateCanceled: true,
}

func (s *Server) handleV2List(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := defaultPageLimit
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "limit must be a positive integer")
			return
		}
		limit = min(n, maxPageLimit)
	}
	state := JobState(q.Get("state"))
	if state != "" && !knownStates[state] {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "unknown state %q", state)
		return
	}
	workflowFilter := q.Get("workflow")
	after := -1
	if tok := q.Get("page_token"); tok != "" {
		id, err := decodePageToken(tok)
		if err != nil {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
			return
		}
		after = id
	}

	page := JobPage{Jobs: []Job{}}
	s.mu.Lock()
	for _, id := range s.order {
		if id <= after {
			continue
		}
		job := s.jobs[id].job
		if state != "" && job.State != state {
			continue
		}
		if workflowFilter != "" && job.Workflow != workflowFilter {
			continue
		}
		if len(page.Jobs) == limit {
			// One more match exists beyond the page: hand out a token.
			page.NextPageToken = encodePageToken(page.Jobs[limit-1].ID)
			break
		}
		page.Jobs = append(page.Jobs, job.clone())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, page)
}

// handleV2Job routes one job resource: GET fetches, DELETE cancels, and the
// /events subresource streams.
func (s *Server) handleV2Job(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/v2/jobs/")
	idStr, sub, _ := strings.Cut(rest, "/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "bad job id %q", idStr)
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			s.handleV2Get(w, id)
		case http.MethodDelete:
			s.handleV2Cancel(w, r, id)
		default:
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE only")
		}
	case "events":
		if r.Method != http.MethodGet {
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET only")
			return
		}
		s.handleV2Events(w, r, id)
	default:
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no such resource")
	}
}

func (s *Server) handleV2Get(w http.ResponseWriter, id int) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	var job Job
	if ok {
		job = rec.job.clone()
	}
	s.mu.Unlock()
	if !ok {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleV2Cancel(w http.ResponseWriter, r *http.Request, id int) {
	job, status, apiErr := s.cancelJob(id, requestTenant(r))
	if apiErr != nil {
		writeJSON(w, status, v2ErrorResponse{Error: *apiErr})
		return
	}
	writeJSON(w, status, job)
}

// handleV2Events streams the job's event log as Server-Sent Events: the
// full history replays first (so a watcher attached late still sees every
// transition), then live events follow until the job reaches a terminal
// state. Clients stop polling; scand pushes.
func (s *Server) handleV2Events(w http.ResponseWriter, r *http.Request, id int) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeV2Error(w, http.StatusInternalServerError, CodeInternal, "response writer cannot stream")
		return
	}
	s.mu.Lock()
	rec, exists := s.jobs[id]
	s.mu.Unlock()
	if !exists {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no job %d", id)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Fan-out is pull-per-subscriber, so a stalled client never blocks job
	// transitions or other watchers — it only parks this goroutine. The
	// per-write deadline bounds that goroutine's lifetime: a client that
	// stops reading for watchWTO gets its stream torn down instead of
	// holding a connection (and its kernel buffers) forever. Recorders used
	// in tests have no deadline support; that is fine, not fatal.
	ctrl := http.NewResponseController(w)
	next := 0
	for {
		s.mu.Lock()
		pending := append([]JobEvent(nil), rec.events[next:]...)
		wake := rec.wake
		s.mu.Unlock()
		for _, ev := range pending {
			data, err := json.Marshal(ev)
			if err != nil {
				return // cannot happen for these types; drop the stream
			}
			if s.watchWTO > 0 {
				if err := ctrl.SetWriteDeadline(time.Now().Add(s.watchWTO)); err != nil &&
					!errors.Is(err, http.ErrNotSupported) {
					return
				}
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data); err != nil {
				return
			}
			flusher.Flush()
			if ev.Type == EventState && ev.State.Terminal() {
				return
			}
		}
		next += len(pending)
		select {
		case <-wake:
		case <-r.Context().Done():
			return
		}
	}
}
