package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"scan/internal/core"
	"scan/internal/fleet"
	"scan/internal/genomics"
	"scan/internal/imaging"
	"scan/internal/network"
	"scan/internal/proteome"
	"scan/internal/registry"
	"scan/internal/tenant"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// DefaultRetention is the default bound on retained terminal jobs.
const DefaultRetention = 512

// ServerOptions configures a Server.
type ServerOptions struct {
	// Executors is the number of concurrent job runners (default 2).
	Executors int
	// Retention bounds how many terminal (done/failed/canceled) jobs the
	// store keeps (default DefaultRetention). When exceeded, the oldest
	// terminal jobs are evicted; pending and running jobs are never
	// evicted. This is what keeps the job store bounded under sustained
	// traffic — the v1 prototype grew without limit.
	Retention int
	// Logf receives one line per request (and per recovered panic) from
	// the HTTP middleware; nil disables logging.
	Logf func(format string, args ...any)
	// Fleet is the distributed shard pool this server coordinates. Nil
	// builds a default coordinator: the fleet endpoints are always mounted,
	// and jobs scatter to remote workers whenever any are registered (with
	// the engine's local pool as the zero-worker default and the per-stage
	// fallback).
	Fleet *fleet.Coordinator
	// UploadDir is where resumable upload sessions spool their parts before
	// commit. Empty picks the registry's blob directory when the platform is
	// durable (so commit promotes spools by rename, never copy), or a private
	// temp directory otherwise.
	UploadDir string
	// Tenants, when non-nil, turns on multi-tenant admission for the v2
	// jobs/datasets/uploads surface: API-key authentication, token-bucket
	// rate limiting and per-tenant quotas (see internal/tenant and
	// docs/SERVING.md). Nil keeps v2 unauthenticated — the default every
	// pre-tenancy client relies on. /api/v1 is never authenticated.
	Tenants *tenant.Registry
	// WatchWriteTimeout bounds each SSE write to a Watch subscriber: a
	// client that stalls past it has its stream severed (job execution and
	// other subscribers are never blocked either way — the fan-out is
	// pull-per-subscriber). 0 means DefaultWatchWriteTimeout; negative
	// disables the deadline.
	WatchWriteTimeout time.Duration
}

// DefaultWatchWriteTimeout is the default per-write deadline on SSE event
// streams.
const DefaultWatchWriteTimeout = 30 * time.Second

// Server exposes a core.Platform over HTTP — /api/v1 (the original flat RPC
// surface, kept wire-compatible) and /api/v2 (resource-oriented jobs with
// cancellation, pagination and event streaming) — and runs submitted jobs on
// a bounded worker pool (the SCAN Workers of the prototype).
type Server struct {
	platform  *core.Platform
	now       func() time.Time
	retention int
	logf      func(format string, args ...any)
	fleet     *fleet.Coordinator
	uploads   *registry.UploadManager
	uploadTmp string           // private spool dir to remove on Close ("" if none)
	tenants   *tenant.Registry // nil: v2 admission disabled
	watchWTO  time.Duration    // per-write SSE deadline (0: disabled)
	metrics   *serverMetrics

	mu     sync.Mutex
	nextID int
	jobs   map[int]*jobRecord
	order  []int // submission order (ascending IDs), compacted on eviction
	closed bool
	// Cumulative lifecycle counters for /api/v1/status: eviction removes
	// records but must not rewrite history. Canceled jobs count as failed
	// there — v1's state enum predates cancellation.
	statDone, statFailed, statCanceled int
	// uploadOwners maps open resumable-upload session IDs to the tenant
	// that opened them (tenancy only; bounded by the manager's MaxSessions
	// — recordUploadOwner prunes entries for dead sessions).
	uploadOwners map[string]*tenant.State

	queue chan int
	wg    sync.WaitGroup
	stop  context.CancelFunc
}

// jobRecord is one job in the store: the v2 resource (the authoritative
// view; v1's JobInfo is derived from it), the normalized submission, the
// per-job cancel handle, and the event log watchers replay and follow.
type jobRecord struct {
	job             Job
	spec            jobSpec
	cancel          context.CancelFunc // non-nil while running
	cancelRequested bool
	events          []JobEvent
	wake            chan struct{} // closed and replaced on every event
}

// jobSpec is a normalized submission: exactly one dataset source is set
// (validated at the API boundary). The daemon-generated sources span the
// four data-process families — sequencing reads, MS/MS spectra, microscopy
// frames, gene measurements.
type jobSpec struct {
	workflow     string
	shardRecords int
	synthetic    *SyntheticSpec
	inline       *inlineInput
	proteome     *ProteomeSpec
	imaging      *ImagingSpec
	network      *NetworkSpec
	dataset      *datasetInput
	// pinned lists the registry datasets this job references (the dataset
	// and/or named reference). Pinned at submission; released exactly once,
	// when the job reaches a state from which it can never run again.
	pinned []string
	// tenant holds the submitting tenant's admitted job slot (nil without
	// tenancy). Released with the pins: exactly once, through unpinSpec on
	// submission failure or releaseSpecLocked when the job ends.
	tenant *tenant.State
}

func (s jobSpec) source() string {
	switch {
	case s.inline != nil:
		return SourceInline
	case s.dataset != nil:
		return SourceDataset
	}
	return SourceSynthetic
}

// inputType is the workflow data type the spec's dataset materializes as.
func (s jobSpec) inputType() workflow.DataType {
	switch {
	case s.proteome != nil:
		return workflow.MGF
	case s.imaging != nil:
		return workflow.TIFF
	case s.network != nil:
		return workflow.FeatureTable
	case s.dataset != nil:
		return s.dataset.family.DataType()
	default:
		return workflow.FASTQ
	}
}

// inlineInput is a prevalidated inline dataset, already in genomics form.
type inlineInput struct {
	ref   genomics.Sequence
	reads []genomics.Read
}

// datasetInput is a resolved registry reference: the payload slices alias
// the store's records (the registry holds the one copy, however many jobs
// name the dataset). payload.Ref is the effective reference — the
// dataset's embedded one, possibly overridden by a named reference.
type datasetInput struct {
	id      string
	family  registry.Family
	payload registry.Payload
}

// NewServer starts a server around the platform with the given number of
// concurrent job executors. Call Close to stop them.
func NewServer(p *core.Platform, executors int) *Server {
	return NewServerOptions(p, ServerOptions{Executors: executors})
}

// NewServerOptions starts a server with full configuration. Call Close to
// stop it.
func NewServerOptions(p *core.Platform, opts ServerOptions) *Server {
	if opts.Executors <= 0 {
		opts.Executors = 2
	}
	if opts.Retention <= 0 {
		opts.Retention = DefaultRetention
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if opts.Fleet == nil {
		opts.Fleet = fleet.NewCoordinator(fleet.Options{
			Logf: opts.Logf,
			// Share the durable blob store (nil for heap-only platforms) so
			// workers fetch spilled dataset parts over the same data plane.
			Blobs: p.Datasets().Blobs(),
		})
	}
	switch {
	case opts.WatchWriteTimeout == 0:
		opts.WatchWriteTimeout = DefaultWatchWriteTimeout
	case opts.WatchWriteTimeout < 0:
		opts.WatchWriteTimeout = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		platform:     p,
		now:          time.Now,
		retention:    opts.Retention,
		logf:         opts.Logf,
		fleet:        opts.Fleet,
		tenants:      opts.Tenants,
		watchWTO:     opts.WatchWriteTimeout,
		jobs:         make(map[int]*jobRecord),
		uploadOwners: make(map[string]*tenant.State),
		queue:        make(chan int, 1024),
		stop:         cancel,
	}
	// Resumable upload sessions spool next to the blob store when the
	// platform is durable (commit then promotes by rename); a heap-only
	// platform gets a private temp spool removed on Close. MaxSessions is
	// sized above the resumable default because the one-shot dataset POST
	// also rides a (transient) session per request.
	spool := opts.UploadDir
	if spool == "" && p.Datasets().Blobs() == nil {
		if tmp, err := os.MkdirTemp("", "scan-uploads-"); err == nil {
			spool, s.uploadTmp = tmp, tmp
		}
	}
	uploads, err := registry.NewUploadManager(registry.UploadConfig{
		Store:       p.Datasets(),
		Dir:         spool,
		LimitsFor:   uploadPartLimits,
		MaxSessions: 64,
		Logf:        opts.Logf,
	})
	if err != nil {
		// The spool directory is unusable; uploads (v2 sessions and the
		// one-shot POST alike) will report it per request.
		opts.Logf("rpc: upload spool unavailable: %v", err)
	}
	s.uploads = uploads
	// The metric set closes over the fully-assembled server (fleet,
	// uploads, tenants), so it is built last.
	s.metrics = newServerMetrics(s)
	for i := 0; i < opts.Executors; i++ {
		s.wg.Add(1)
		go s.executor(ctx)
	}
	return s
}

// Close stops the executors after their current job (whose contexts are
// cancelled, so in-flight runs stop promptly). Submissions racing with Close
// are rejected rather than panicking on the closed queue.
func (s *Server) Close() {
	s.stop()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Executors have stopped; fail anything still queued so clients
	// polling or watching see a terminal state instead of pending forever.
	s.mu.Lock()
	for _, rec := range s.jobs {
		if !rec.job.State.Terminal() {
			s.releaseSpecLocked(rec) // the payload can never be used
			now := s.now()
			rec.job.State = StateFailed
			rec.job.Finished = &now
			rec.job.Error = &JobError{Code: CodeShutdown, Message: "server shut down before the job ran"}
			s.statFailed++
			s.publishStateLocked(rec)
		}
	}
	s.mu.Unlock()
	// Abort open upload sessions (their spools are process-local state) and
	// drop a private spool directory if we created one.
	if s.uploads != nil {
		s.uploads.Close()
	}
	if s.uploadTmp != "" {
		os.RemoveAll(s.uploadTmp)
	}
	// Fold any run-log telemetry still buffered in the knowledge base, so
	// exports taken after shutdown carry every completed job's telemetry.
	s.platform.Flush()
}

// Handler returns the HTTP routing for both API versions, wrapped in the
// logging/recovery middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	// v1: the original flat RPC surface, pinned by compatibility tests.
	mux.HandleFunc("/api/v1/status", s.handleStatus)
	mux.HandleFunc("/api/v1/workflows", s.handleWorkflows)
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/api/v1/kb/query", s.handleQuery)
	mux.HandleFunc("/api/v1/kb/profiles", s.handleProfiles)
	mux.HandleFunc("/api/v1/kb/export", s.handleExport)
	// v2: resource-oriented jobs, the dataset registry and resumable
	// uploads, behind tenant admission (inert without a tenants registry).
	mux.HandleFunc("/api/v2/jobs", s.admit(s.handleV2Jobs))
	mux.HandleFunc("/api/v2/jobs/", s.admit(s.handleV2Job))
	mux.HandleFunc("/api/v2/datasets", s.admit(s.handleV2Datasets))
	mux.HandleFunc("/api/v2/datasets/", s.admit(s.handleV2Dataset))
	mux.HandleFunc("/api/v2/uploads", s.admit(s.handleV2Uploads))
	mux.HandleFunc("/api/v2/uploads/", s.admit(s.handleV2Upload))
	// Fleet: the worker roster, control plane and blob data plane
	// (internal/fleet owns the handlers so in-process tests mount the
	// identical surface).
	fleet.Mount(mux, s.fleet)
	return s.middleware(mux)
}

// ---------------------------------------------------------------------------
// Job store
// ---------------------------------------------------------------------------

// Submission errors surfaced to both API versions (the v1 handlers send
// Message verbatim in the legacy envelope).
var (
	errShuttingDown = &APIError{Code: CodeUnavailable, Message: "server is shutting down"}
	errQueueFull    = &APIError{Code: CodeUnavailable, Message: "job queue full"}
)

// unpinSpec releases the spec's registry pins and its tenant's job slot
// (submission failures; the success path releases through
// releaseSpecLocked when the job ends).
func (s *Server) unpinSpec(spec jobSpec) {
	for _, id := range spec.pinned {
		s.platform.Datasets().Unpin(id)
	}
	if spec.tenant != nil {
		spec.tenant.ReleaseJob()
	}
}

// releaseSpecLocked drops a record's payload references once the job can
// never (or will never again) run: the inline payload is freed for GC and
// the registry pins released, making the datasets evictable and deletable.
// Callers hold s.mu; the registry lock nests inside it.
func (s *Server) releaseSpecLocked(rec *jobRecord) {
	rec.spec.inline = nil
	rec.spec.dataset = nil
	s.unpinSpec(rec.spec)
	rec.spec.pinned = nil
	rec.spec.tenant = nil
}

// enqueue adds a validated submission to the store and queue. On failure
// the spec's registry pins are released — the job will never run.
func (s *Server) enqueue(spec jobSpec) (Job, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.unpinSpec(spec)
		return Job{}, errShuttingDown
	}
	id := s.nextID
	// The send happens under the lock so it cannot race Close's
	// close(s.queue); it must therefore never block, so a full queue is
	// backpressure reported to the client instead of a queued send.
	select {
	case s.queue <- id:
	default:
		s.unpinSpec(spec)
		return Job{}, errQueueFull
	}
	s.nextID++
	family := ""
	if wf, err := s.platform.Catalogue().Get(spec.workflow); err == nil {
		family = wf.Family
	}
	datasetID := ""
	if spec.dataset != nil {
		datasetID = spec.dataset.id
	}
	tenantName := ""
	if spec.tenant != nil {
		tenantName = spec.tenant.Name()
	}
	rec := &jobRecord{
		job: Job{
			ID:        id,
			State:     StatePending,
			Family:    family,
			Workflow:  spec.workflow,
			Source:    spec.source(),
			Dataset:   datasetID,
			Tenant:    tenantName,
			Submitted: s.now(),
		},
		spec: spec,
		wake: make(chan struct{}),
	}
	s.jobs[id] = rec
	s.order = append(s.order, id)
	s.publishStateLocked(rec)
	return rec.job.clone(), nil
}

// publishLocked appends an event to the record's log and wakes watchers.
// Callers hold s.mu.
func (s *Server) publishLocked(rec *jobRecord, ev JobEvent) {
	ev.Seq = len(rec.events)
	ev.Time = s.now()
	rec.events = append(rec.events, ev)
	close(rec.wake)
	rec.wake = make(chan struct{})
}

// publishStateLocked emits a state-transition event for the record's current
// state; terminal events carry the full job resource.
func (s *Server) publishStateLocked(rec *jobRecord) {
	ev := JobEvent{Type: EventState, State: rec.job.State}
	if rec.job.State.Terminal() {
		j := rec.job.clone()
		ev.Job = &j
	}
	s.publishLocked(rec, ev)
}

// publishStage streams one completed workflow stage to the job's watchers.
// Called from inside the engine run (via RunOptions.StageObserver).
func (s *Server) publishStage(id int, sr workflow.StageResult) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok || rec.job.State != StateRunning {
		return
	}
	sb := stageBreakdown(sr)
	s.publishLocked(rec, JobEvent{Type: EventStage, Stage: &sb})
}

// stageBreakdown converts an engine stage result to its wire shape,
// including the pipelined-execution timings when the stage streamed.
func stageBreakdown(sr workflow.StageResult) StageBreakdown {
	return StageBreakdown{
		Name:               sr.Stage,
		Tool:               sr.Tool,
		Shards:             sr.Shards,
		ElapsedSec:         sr.Elapsed.Seconds(),
		Records:            sr.Records,
		Streamed:           sr.Pipeline.Streamed,
		FirstShardStartSec: sr.Pipeline.FirstShardStart.Seconds(),
		Overlap:            sr.Pipeline.Overlap,
	}
}

// evictLocked enforces the retention bound: oldest terminal jobs beyond the
// limit are dropped from the store. Callers hold s.mu.
func (s *Server) evictLocked() {
	terminal := 0
	for _, id := range s.order {
		if s.jobs[id].job.State.Terminal() {
			terminal++
		}
	}
	if terminal <= s.retention {
		return
	}
	keep := s.order[:0]
	for _, id := range s.order {
		if terminal > s.retention && s.jobs[id].job.State.Terminal() {
			delete(s.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	s.order = keep
}

// cancelJob implements DELETE /api/v2/jobs/{id}. Pending jobs are canceled
// immediately; running jobs get their per-job context cancelled and reach
// the canceled state asynchronously (status 202); cancellation of an
// already-canceled job is idempotent; done/failed jobs conflict. With
// tenancy enabled, a tenant may only cancel its own jobs; jobs submitted
// without a tenant (v1, or pre-tenancy) stay cancellable by anyone.
func (s *Server) cancelJob(id int, requester *tenant.State) (Job, int, *APIError) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.jobs[id]
	if !ok {
		return Job{}, http.StatusNotFound,
			&APIError{Code: CodeNotFound, Message: fmt.Sprintf("no job %d", id)}
	}
	if requester != nil && rec.job.Tenant != "" && rec.job.Tenant != requester.Name() {
		return Job{}, http.StatusForbidden, &APIError{
			Code:    CodeForbidden,
			Message: fmt.Sprintf("job %d belongs to another tenant", id),
		}
	}
	switch rec.job.State {
	case StatePending:
		rec.cancelRequested = true
		s.releaseSpecLocked(rec) // the payload can never be used
		now := s.now()
		rec.job.State = StateCanceled
		rec.job.Finished = &now
		rec.job.Error = &JobError{Code: CodeCanceled, Message: "job canceled before it started"}
		s.statCanceled++
		s.publishStateLocked(rec)
		s.evictLocked()
		return rec.job.clone(), http.StatusOK, nil
	case StateRunning:
		if !rec.cancelRequested {
			rec.cancelRequested = true
			rec.cancel() // threads through runJob → Platform.RunWorkflow
		}
		return rec.job.clone(), http.StatusAccepted, nil
	case StateCanceled:
		return rec.job.clone(), http.StatusOK, nil
	default: // done or failed
		return Job{}, http.StatusConflict, &APIError{
			Code:    CodeConflict,
			Message: fmt.Sprintf("job %d already %s", id, rec.job.State),
		}
	}
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

func (s *Server) executor(ctx context.Context) {
	defer s.wg.Done()
	for id := range s.queue {
		if ctx.Err() != nil {
			return
		}
		s.runJob(ctx, id)
	}
}

func (s *Server) runJob(ctx context.Context, id int) {
	s.mu.Lock()
	rec, ok := s.jobs[id]
	if !ok || rec.job.State != StatePending {
		// Canceled (or failed by Close) while queued: nothing to run.
		s.mu.Unlock()
		return
	}
	jctx, cancel := context.WithCancel(ctx)
	rec.cancel = cancel
	started := s.now()
	rec.job.State = StateRunning
	rec.job.Started = &started
	spec := rec.spec
	s.publishStateLocked(rec)
	s.mu.Unlock()

	result, err := s.execute(jctx, id, spec)
	cancel()

	s.mu.Lock()
	defer s.mu.Unlock()
	finished := s.now()
	rec.cancel = nil
	s.releaseSpecLocked(rec) // release the payload; the record outlives the run
	rec.job.Finished = &finished
	switch {
	case err == nil:
		result.ElapsedSec = finished.Sub(started).Seconds()
		rec.job.State = StateDone
		rec.job.Result = &result
		s.statDone++
	case rec.cancelRequested:
		rec.job.State = StateCanceled
		rec.job.Error = &JobError{Code: CodeCanceled, Message: "job canceled while running"}
		s.statCanceled++
	default:
		rec.job.State = StateFailed
		rec.job.Error = &JobError{Code: CodeExecutionFailed, Message: err.Error()}
		s.statFailed++
	}
	s.publishStateLocked(rec)
	s.evictLocked()
}

// materialize turns a normalized spec into the workflow input dataset —
// seeded synthetic generation for the daemon-built families, or the
// prevalidated inline payload. Synthetic sequencing runs also return the
// planted-SNV ground truth for recovery scoring.
func materialize(spec jobSpec) (*workflow.Dataset, []genomics.Mutation, error) {
	switch {
	case spec.synthetic != nil:
		syn := spec.synthetic
		rng := rand.New(rand.NewSource(syn.Seed))
		ref := genomics.GenerateReference(rng, "chr1", syn.ReferenceLength)
		mutated, planted := genomics.PlantSNVs(rng, ref, syn.SNVs)
		reads, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
			Count: syn.Reads, Length: syn.EffectiveReadLength(), ErrorRate: syn.EffectiveErrorRate(),
		})
		if err != nil {
			return nil, nil, err
		}
		return workflow.NewFASTQDataset(ref, reads), planted, nil
	case spec.inline != nil:
		return workflow.NewFASTQDataset(spec.inline.ref, spec.inline.reads), nil, nil
	case spec.dataset != nil:
		// Registered datasets materialize by aliasing the registry's
		// records — the store holds the one copy, however many jobs
		// reference it.
		d := spec.dataset
		switch d.family {
		case registry.FASTQ:
			return workflow.NewFASTQDataset(d.payload.Ref, d.payload.Reads), nil, nil
		case registry.MGF:
			return workflow.NewMGFDataset(d.payload.PeptideDB, d.payload.Spectra), nil, nil
		case registry.TIFF:
			return workflow.NewTIFFDataset(d.payload.Images), nil, nil
		case registry.FeatureTable:
			return workflow.NewFeatureDataset(d.payload.Features), nil, nil
		}
		return nil, nil, fmt.Errorf("dataset %s has unrunnable family %q", d.id, d.family)
	case spec.proteome != nil:
		p := spec.proteome
		rng := rand.New(rand.NewSource(p.Seed))
		db := proteome.GenerateDatabase(rng, p.Proteins, 3)
		spectra, _, err := proteome.SimulateSpectra(rng, db, proteome.SimConfig{
			Count:      p.Spectra,
			NoisePeaks: p.EffectiveNoisePeaks(),
			// Realistic acquisition defaults; jitter stays inside the
			// search tolerance.
			DropoutRate: 0.1,
			Jitter:      0.1,
		})
		if err != nil {
			return nil, nil, err
		}
		return workflow.NewMGFDataset(db, spectra), nil, nil
	case spec.imaging != nil:
		im := spec.imaging
		rng := rand.New(rand.NewSource(im.Seed))
		frames := make([]imaging.Image, 0, im.Images)
		for i := 0; i < im.Images; i++ {
			frame, _, err := imaging.Generate(rng, fmt.Sprintf("img%d", i), imaging.SimConfig{
				W: im.Width, H: im.Height, Cells: im.CellsPerImage,
			})
			if err != nil {
				return nil, nil, err
			}
			frames = append(frames, frame)
		}
		return workflow.NewTIFFDataset(frames), nil, nil
	case spec.network != nil:
		n := spec.network
		ms, _, err := network.SimulateMeasurements(rand.New(rand.NewSource(n.Seed)), n.Genes, n.Modules)
		if err != nil {
			return nil, nil, err
		}
		features := make([]workflow.Feature, len(ms))
		for i, m := range ms {
			features[i] = workflow.Feature{Name: m.Name, Count: 1, Value: m.Value}
		}
		return workflow.NewFeatureDataset(features), nil, nil
	}
	return nil, nil, fmt.Errorf("job spec has no dataset source")
}

// execute materializes the job's dataset and runs the requested workflow
// through the platform's engine, streaming per-stage completions to
// watchers.
func (s *Server) execute(ctx context.Context, id int, spec jobSpec) (JobResult, error) {
	in, planted, err := materialize(spec)
	if err != nil {
		return JobResult{}, err
	}
	inputRecords := in.Records()
	family := ""
	if wf, err := s.platform.Catalogue().Get(spec.workflow); err == nil {
		family = wf.Family
	}
	opts := workflow.RunOptions{
		Caller:        variant.Config{MinDepth: 8, MinAltFraction: 0.6},
		ShardRecords:  spec.shardRecords,
		StageObserver: func(sr workflow.StageResult) { s.publishStage(id, sr) },
		ShardObserver: func(tool string, records int, elapsed time.Duration) {
			s.metrics.shardSeconds.With(family).Observe(elapsed.Seconds())
		},
	}
	// Scatter to the fleet only when remote workers are actually registered:
	// a workerless daemon keeps the engine's local pool and its pipelined
	// scheduler. (A fleet that empties mid-run still falls back per stage via
	// ErrNoWorkers.)
	if s.fleet.ReadyWorkers() > 0 {
		opts.ShardPool = s.fleet
	}
	wres, err := s.platform.RunWorkflow(ctx, spec.workflow, in, opts)
	if err != nil {
		return JobResult{}, err
	}
	out := wres.Output
	calls := out.Variants
	result := JobResult{
		Mapped:       out.Mapped,
		TotalRecords: inputRecords,
		Variants:     len(calls),
		Features:     len(out.Features),
		Proteins:     len(out.Proteins),
		Stages:       make([]StageBreakdown, 0, len(wres.Stages)),
	}
	if in.Type == workflow.FASTQ {
		result.TotalReads = inputRecords
	}
	if out.Net != nil {
		result.Nodes = len(out.Net.Nodes)
		result.Edges = len(out.Net.Edges)
		result.Modules = len(out.Net.Modules)
	}
	for _, sr := range wres.Stages {
		result.Stages = append(result.Stages, stageBreakdown(sr))
	}
	if sr, ok := wres.RecordScatter(); ok {
		result.Shards = sr.Plan.NumShards
	} else {
		// Stages that scatter by something other than records — image
		// tiles, graph partitions — still report their widest fan-out.
		for _, sr := range wres.Stages {
			result.Shards = max(result.Shards, sr.Shards)
		}
	}
	// Planted-SNV recovery scoring applies to every synthetic
	// variant-calling run. It is gated on the catalogue's output type, not
	// on the call set being non-empty: a run that recovers nothing must
	// report 0/N, not an empty 0/0. Inline datasets carry no planted
	// truth, so the score stays zero.
	if wf, err := s.platform.Catalogue().Get(spec.workflow); err == nil &&
		wf.Produces() == workflow.VCF && spec.synthetic != nil {
		result.Planted = len(planted)
		calledAt := map[int]genomics.Variant{}
		for _, v := range calls {
			calledAt[v.Pos-1] = v
		}
		for _, m := range planted {
			if v, ok := calledAt[m.Pos]; ok && v.Alt == string(m.Alt) {
				result.Recovered++
			}
		}
	}
	return result, nil
}

// submittable checks a workflow can run over a submission's dataset: it
// must be catalogued, consume the dataset's data type, and have an
// executor for every stage.
func (s *Server) submittable(name string, consumes workflow.DataType) error {
	wf, err := s.platform.Catalogue().Get(name)
	if err != nil {
		return err
	}
	if wf.Consumes() != consumes {
		return fmt.Errorf("consumes %s; this submission supplies %s", wf.Consumes(), consumes)
	}
	return s.platform.Engine().CanRun(wf)
}

// ---------------------------------------------------------------------------
// v1 view derivation
// ---------------------------------------------------------------------------

// v1View renders the v2 job resource in the flat v1 JobInfo shape. v1's
// state enum predates cancellation, so canceled jobs appear as failed —
// old clients never see a state value they do not know.
func v1View(j Job) JobInfo {
	info := JobInfo{
		ID:        j.ID,
		State:     j.State,
		Workflow:  j.Workflow,
		Submitted: j.Submitted,
	}
	if j.State == StateCanceled {
		info.State = StateFailed
	}
	if j.Error != nil {
		info.Error = j.Error.Message
	}
	if j.Started != nil && j.Finished != nil {
		info.ElapsedSec = j.Finished.Sub(*j.Started).Seconds()
	}
	if r := j.Result; r != nil {
		info.Mapped = r.Mapped
		info.TotalReads = r.TotalReads
		info.Variants = r.Variants
		info.Features = r.Features
		info.Recovered = r.Recovered
		info.Planted = r.Planted
		info.Shards = r.Shards
	}
	return info
}

// isV2 reports whether the request belongs to the v2 surface (which uses
// the structured error envelope).
func isV2(r *http.Request) bool {
	return strings.HasPrefix(r.URL.Path, "/api/v2/")
}
