package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"scan/internal/core"
	"scan/internal/genomics"
	"scan/internal/variant"
	"scan/internal/workflow"
)

// Server exposes a core.Platform over HTTP and runs submitted jobs on a
// bounded worker pool (the SCAN Workers of the prototype).
type Server struct {
	platform *core.Platform
	now      func() time.Time

	mu     sync.Mutex
	nextID int
	jobs   map[int]*jobRecord
	order  []int
	closed bool

	queue chan int
	wg    sync.WaitGroup
	stop  context.CancelFunc
}

type jobRecord struct {
	info JobInfo
	req  SubmitRequest
}

// NewServer starts a server around the platform with the given number of
// concurrent job executors. Call Close to stop them.
func NewServer(p *core.Platform, executors int) *Server {
	if executors <= 0 {
		executors = 2
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		platform: p,
		now:      time.Now,
		jobs:     make(map[int]*jobRecord),
		queue:    make(chan int, 1024),
		stop:     cancel,
	}
	for i := 0; i < executors; i++ {
		s.wg.Add(1)
		go s.executor(ctx)
	}
	return s
}

// Close stops the executors after their current job. Submissions racing
// with Close are rejected rather than panicking on the closed queue.
func (s *Server) Close() {
	s.stop()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Executors have stopped; fail anything still queued so clients
	// polling Wait see a terminal state instead of pending forever.
	s.mu.Lock()
	for _, rec := range s.jobs {
		if rec.info.State == StatePending || rec.info.State == StateRunning {
			rec.info.State = StateFailed
			rec.info.Error = "server shut down before the job ran"
		}
	}
	s.mu.Unlock()
	// Fold any run-log telemetry still buffered in the knowledge base, so
	// exports taken after shutdown carry every completed job's telemetry.
	s.platform.Flush()
}

// Handler returns the HTTP routing for the API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte("ok"))
	})
	mux.HandleFunc("/api/v1/status", s.handleStatus)
	mux.HandleFunc("/api/v1/workflows", s.handleWorkflows)
	mux.HandleFunc("/api/v1/jobs", s.handleJobs)
	mux.HandleFunc("/api/v1/jobs/", s.handleJob)
	mux.HandleFunc("/api/v1/kb/query", s.handleQuery)
	mux.HandleFunc("/api/v1/kb/profiles", s.handleProfiles)
	mux.HandleFunc("/api/v1/kb/export", s.handleExport)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// One consistent snapshot: separate RunCount/PendingLogs calls could
	// interleave with a fold and report pending > total.
	runLogs, runPending := s.platform.KB().RunCounts()
	s.mu.Lock()
	resp := StatusResponse{
		Workers:        s.platform.Workers(),
		RunLogs:        runLogs,
		RunLogsPending: runPending,
	}
	for _, rec := range s.jobs {
		switch rec.info.State {
		case StatePending:
			resp.Pending++
		case StateRunning:
			resp.Running++
		case StateDone:
			resp.Completed++
		case StateFailed:
			resp.Failed++
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req SubmitRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		if req.ReferenceLength < 200 || req.Reads < 1 {
			writeError(w, http.StatusBadRequest,
				"reference_length must be >= 200 and reads >= 1")
			return
		}
		if req.ReadLength != nil && *req.ReadLength == 0 {
			writeError(w, http.StatusBadRequest,
				"read_length 0 is invalid; omit the field for the default (%d)",
				DefaultReadLength)
			return
		}
		if req.Workflow == "" {
			req.Workflow = core.VariantDetectionWorkflow
		}
		if err := s.submittable(req.Workflow); err != nil {
			writeError(w, http.StatusBadRequest, "workflow %q: %v", req.Workflow, err)
			return
		}
		info, err := s.enqueue(req)
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeJSON(w, http.StatusAccepted, info)
	case http.MethodGet:
		s.mu.Lock()
		out := make([]JobInfo, 0, len(s.order))
		for _, id := range s.order {
			out = append(out, s.jobs[id].info)
		}
		s.mu.Unlock()
		writeJSON(w, http.StatusOK, out)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	idStr := strings.TrimPrefix(r.URL.Path, "/api/v1/jobs/")
	id, err := strconv.Atoi(idStr)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", idStr)
		return
	}
	s.mu.Lock()
	rec, ok := s.jobs[id]
	var info JobInfo
	if ok {
		info = rec.info
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %d", id)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	res, err := s.platform.KB().Query(req.Query)
	if err != nil {
		writeError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	resp := QueryResponse{Vars: res.Vars}
	for _, row := range res.Rows {
		m := make(map[string]string, len(row))
		for v, term := range row {
			m[v] = term.String()
		}
		resp.Rows = append(resp.Rows, m)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	ps, err := s.platform.KB().Profiles()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "profiles: %v", err)
		return
	}
	out := make([]ProfileInfo, len(ps))
	for i, p := range ps {
		out[i] = ProfileInfo{
			Name: p.Name, InputFileSize: p.InputFileSize, Steps: p.Steps,
			RAM: p.RAM, CPU: p.CPU, ETime: p.ETime,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

// handleExport serves the knowledge base as Turtle (default) or RDF/XML
// (?format=rdfxml), the paper's listing format.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	switch r.URL.Query().Get("format") {
	case "", "turtle":
		writeDocument(w, "text/turtle", s.platform.KB().Export)
	case "rdfxml":
		writeDocument(w, "application/rdf+xml", s.platform.KB().ExportRDFXML)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q", r.URL.Query().Get("format"))
	}
}

// writeDocument encodes a document fully into memory before touching the
// ResponseWriter. Streaming straight into the writer looks cheaper but has
// a broken failure mode: once the 200 header and a partial body are out, a
// mid-stream encode error can only append a JSON error blob (and a
// superfluous-500 log) onto the partial document. Buffering guarantees the
// client gets either a complete document or a clean JSON error.
func writeDocument(w http.ResponseWriter, contentType string, encode func(io.Writer) error) {
	var buf bytes.Buffer
	if err := encode(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "export: %v", err)
		return
	}
	w.Header().Set("Content-Type", contentType)
	w.Header().Set("Content-Length", strconv.Itoa(buf.Len()))
	_, _ = w.Write(buf.Bytes())
}

// submittable checks a workflow can run on the daemon's synthetic-FASTQ
// surface: it must be catalogued, consume FASTQ, and have an executor for
// every stage.
func (s *Server) submittable(name string) error {
	wf, err := s.platform.Catalogue().Get(name)
	if err != nil {
		return err
	}
	if wf.Consumes() != workflow.FASTQ {
		return fmt.Errorf("consumes %s; the job surface synthesises FASTQ reads only", wf.Consumes())
	}
	return s.platform.Engine().CanRun(wf)
}

func (s *Server) handleWorkflows(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	cat := s.platform.Catalogue()
	out := make([]WorkflowInfo, 0, cat.Len())
	for _, name := range cat.Names() {
		wf, err := cat.Get(name)
		if err != nil {
			continue // registry is append-only; cannot happen
		}
		info := WorkflowInfo{
			Name:        wf.Name,
			Family:      wf.Family,
			Description: wf.Description,
			Consumes:    string(wf.Consumes()),
			Produces:    string(wf.Produces()),
			Runnable:    true,
		}
		for _, st := range wf.Stages {
			info.Stages = append(info.Stages, StageInfo{
				Name: st.Name, Tool: st.Tool,
				Consumes: string(st.Consumes), Produces: string(st.Produces),
				Parallelizable: st.Parallelizable,
			})
		}
		if err := s.platform.Engine().CanRun(wf); err != nil {
			info.Runnable = false
			info.Reason = err.Error()
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) enqueue(req SubmitRequest) (JobInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return JobInfo{}, fmt.Errorf("server is shutting down")
	}
	id := s.nextID
	info := JobInfo{ID: id, State: StatePending, Workflow: req.Workflow, Submitted: s.now()}
	// The send happens under the lock so it cannot race Close's
	// close(s.queue); it must therefore never block, so a full queue is
	// backpressure reported to the client instead of a queued send.
	select {
	case s.queue <- id:
	default:
		return JobInfo{}, fmt.Errorf("job queue full")
	}
	s.nextID++
	s.jobs[id] = &jobRecord{info: info, req: req}
	s.order = append(s.order, id)
	return info, nil
}

func (s *Server) executor(ctx context.Context) {
	defer s.wg.Done()
	for id := range s.queue {
		if ctx.Err() != nil {
			return
		}
		s.runJob(ctx, id)
	}
}

func (s *Server) runJob(ctx context.Context, id int) {
	s.mu.Lock()
	rec := s.jobs[id]
	rec.info.State = StateRunning
	req := rec.req
	s.mu.Unlock()

	start := time.Now()
	info, err := s.execute(ctx, req)
	s.mu.Lock()
	defer s.mu.Unlock()
	info.ID = id
	info.Workflow = rec.info.Workflow
	info.Submitted = rec.info.Submitted
	info.ElapsedSec = time.Since(start).Seconds()
	if err != nil {
		info.State = StateFailed
		info.Error = err.Error()
	} else {
		info.State = StateDone
	}
	rec.info = info
}

// execute generates the synthetic dataset and runs the requested workflow
// through the platform's engine.
func (s *Server) execute(ctx context.Context, req SubmitRequest) (JobInfo, error) {
	// Tri-state defaulting (see SubmitRequest): absent/negative fields get
	// defaults, explicit values — including error_rate 0 — are honored.
	readLen := req.EffectiveReadLength()
	errRate := req.EffectiveErrorRate()
	rng := rand.New(rand.NewSource(req.Seed))
	ref := genomics.GenerateReference(rng, "chr1", req.ReferenceLength)
	mutated, planted := genomics.PlantSNVs(rng, ref, req.SNVs)
	reads, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: req.Reads, Length: readLen, ErrorRate: errRate,
	})
	if err != nil {
		return JobInfo{}, err
	}

	// handleJobs defaults req.Workflow before enqueue, so it is never
	// empty here. Every workflow — the default included — runs through
	// the same generic engine surface; RunVariantCalling is the library
	// facade over the identical execution (core's equivalence test
	// proves it).
	wres, err := s.platform.RunWorkflow(ctx, req.Workflow,
		workflow.NewFASTQDataset(ref, reads),
		workflow.RunOptions{
			Caller:       variant.Config{MinDepth: 8, MinAltFraction: 0.6},
			ShardRecords: req.ShardRecords,
		})
	if err != nil {
		return JobInfo{}, err
	}
	calls := wres.Output.Variants
	info := JobInfo{
		Mapped:     wres.Output.Mapped,
		TotalReads: len(reads),
		Variants:   len(calls),
		Features:   len(wres.Output.Features),
	}
	if sr, ok := wres.RecordScatter(); ok {
		info.Shards = sr.Plan.NumShards
	}
	// Planted-SNV recovery scoring applies to every variant-calling
	// workflow. It is gated on the catalogue's output type, not on the
	// call set being non-empty: a run that recovers nothing must report
	// 0/N, not an empty 0/0.
	if wf, err := s.platform.Catalogue().Get(req.Workflow); err == nil && wf.Produces() == workflow.VCF {
		info.Planted = len(planted)
		calledAt := map[int]genomics.Variant{}
		for _, v := range calls {
			calledAt[v.Pos-1] = v
		}
		for _, m := range planted {
			if v, ok := calledAt[m.Pos]; ok && v.Alt == string(m.Alt) {
				info.Recovered++
			}
		}
	}
	return info, nil
}
