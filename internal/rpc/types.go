// Package rpc implements the SCAN scheduler's HTTP interface — the
// descendant of the paper's CherryPy prototype ("The scheduler is
// implemented in Python, using the CherryPy web framework to process HTTP
// requests. Its interface is realized using HTTP RPCs."). scand serves it;
// scanctl and Client talk to it.
//
// Two API versions share one job store and engine:
//
//   - /api/v2 (v2types.go, v2handlers.go) is the resource-oriented surface:
//     jobs with a structured result and per-stage breakdown, machine-
//     readable error codes, DELETE-to-cancel that stops in-flight runs via
//     a per-job context, filtered + paginated listing over a bounded store
//     with terminal-job retention, SSE event streams (state transitions and
//     stage completions), and submissions carrying either a synthetic
//     dataset spec or inline FASTQ records.
//   - /api/v1 (this file, v1handlers.go) is the original flat RPC surface,
//     kept wire-compatible for old clients and pinned by v1compat_test.go.
//     New integrations should use v2.
package rpc

import "time"

// JobState is a submitted job's lifecycle phase.
type JobState string

// Job states. StateCanceled is v2-only vocabulary: the v1 surface predates
// cancellation and renders canceled jobs as failed, keeping its state enum
// closed for old clients.
const (
	StatePending  JobState = "pending"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// SubmitRequest asks the daemon to run one catalogued workflow over a
// synthetic dataset — the v1 submission shape. The daemon generates the
// data (seeded, reproducible) and drives it through the workflow engine's
// shard → stage chain → merge execution. The v2 equivalent is
// SubmitJobRequest, which additionally accepts inline FASTQ records.
type SubmitRequest struct {
	// Workflow names the catalogued workflow to execute (default:
	// dna-variant-detection). The workflow must consume FASTQ — the
	// daemon synthesises sequencing reads — and have executors for every
	// stage; see GET /api/v1/workflows for what qualifies.
	Workflow string `json:"workflow,omitempty"`
	// ReferenceLength is the synthetic genome size in bases.
	ReferenceLength int `json:"reference_length"`
	// Reads is the number of simulated reads.
	Reads int `json:"reads"`
	// ReadLength is the simulated read length. Pointer semantics: the
	// DefaultReadLength applies only when the field is absent (nil) or
	// negative; an explicit 0 is rejected at submission (a zero-length
	// read is meaningless), never silently replaced.
	ReadLength *int `json:"read_length,omitempty"`
	// SNVs is the number of planted mutations.
	SNVs int `json:"snvs"`
	// ErrorRate is the per-base sequencing error. Pointer semantics: the
	// DefaultErrorRate applies only when the field is absent (nil) or
	// negative; an explicit 0 means error-free reads and is honored —
	// earlier versions silently promoted it to the default.
	ErrorRate *float64 `json:"error_rate,omitempty"`
	// Seed makes the synthetic data reproducible.
	Seed int64 `json:"seed"`
	// ShardRecords overrides the Data Broker's shard sizing when > 0.
	ShardRecords int `json:"shard_records,omitempty"`
}

// Defaults for the optional read-simulation fields.
const (
	DefaultReadLength = 100
	DefaultErrorRate  = 0.002
)

// EffectiveReadLength resolves the tri-state ReadLength field: default when
// absent or negative, the explicit value otherwise.
func (r *SubmitRequest) EffectiveReadLength() int {
	if r.ReadLength == nil || *r.ReadLength < 0 {
		return DefaultReadLength
	}
	return *r.ReadLength
}

// EffectiveErrorRate resolves the tri-state ErrorRate field: default when
// absent or negative, the explicit value (including 0) otherwise.
func (r *SubmitRequest) EffectiveErrorRate() float64 {
	if r.ErrorRate == nil || *r.ErrorRate < 0 {
		return DefaultErrorRate
	}
	return *r.ErrorRate
}

// JobInfo summarises one job in the flat v1 wire shape (lifecycle and
// result fields conflated, omitempty throughout). It is derived from the
// v2 Job resource; see v1View.
type JobInfo struct {
	ID        int       `json:"id"`
	State     JobState  `json:"state"`
	Workflow  string    `json:"workflow,omitempty"`
	Submitted time.Time `json:"submitted"`
	Error     string    `json:"error,omitempty"`

	// Result summary (populated when State == done).
	Mapped     int     `json:"mapped,omitempty"`
	TotalReads int     `json:"total_reads,omitempty"`
	Variants   int     `json:"variants,omitempty"`
	Features   int     `json:"features,omitempty"`
	Recovered  int     `json:"recovered,omitempty"`
	Planted    int     `json:"planted,omitempty"`
	Shards     int     `json:"shards,omitempty"`
	ElapsedSec float64 `json:"elapsed_sec,omitempty"`
}

// StageInfo describes one catalogued workflow stage over the wire.
type StageInfo struct {
	Name           string `json:"name"`
	Tool           string `json:"tool"`
	Consumes       string `json:"consumes"`
	Produces       string `json:"produces"`
	Parallelizable bool   `json:"parallelizable,omitempty"`
}

// WorkflowInfo describes one catalogued workflow over the wire. Runnable
// reports whether the daemon's engine has an executor for every stage;
// Reason carries the blocking stage when it does not.
type WorkflowInfo struct {
	Name        string      `json:"name"`
	Family      string      `json:"family"`
	Description string      `json:"description,omitempty"`
	Consumes    string      `json:"consumes"`
	Produces    string      `json:"produces"`
	Stages      []StageInfo `json:"stages"`
	Runnable    bool        `json:"runnable"`
	Reason      string      `json:"reason,omitempty"`
}

// QueryRequest is a SPARQL query against the daemon's knowledge base.
type QueryRequest struct {
	Query string `json:"query"`
}

// QueryResponse carries query results as rows of var → rendered term.
type QueryResponse struct {
	Vars []string            `json:"vars"`
	Rows []map[string]string `json:"rows"`
}

// ProfileInfo mirrors knowledge.AppProfile over the wire.
type ProfileInfo struct {
	Name          string  `json:"name"`
	InputFileSize float64 `json:"input_file_size"`
	Steps         int     `json:"steps"`
	RAM           int     `json:"ram"`
	CPU           int     `json:"cpu"`
	ETime         float64 `json:"etime"`
}

// StatusResponse is the daemon health/statistics snapshot. RunLogs counts
// every accepted run observation; RunLogsPending is the subset still in the
// knowledge base's batched-ingestion buffer, not yet folded into the graph.
type StatusResponse struct {
	Workers        int `json:"workers"`
	Pending        int `json:"pending"`
	Running        int `json:"running"`
	Completed      int `json:"completed"`
	Failed         int `json:"failed"`
	RunLogs        int `json:"run_logs"`
	RunLogsPending int `json:"run_logs_pending,omitempty"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}
