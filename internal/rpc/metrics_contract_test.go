package rpc

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"scan/internal/core"
)

// The /metrics contract: after a scripted workload, the exposition carries
// exactly the promised families with exactly the promised label sets and —
// for everything not timing-derived — exact values. Metric names are wire
// contract the same way routes are: renaming one breaks dashboards.

// scrapeMetrics fetches /metrics and parses the exposition into
// "name{labels}" → value samples, verifying the content type on the way.
func scrapeMetrics(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	samples := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, raw, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metric line %q", line)
		}
		v, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			t.Fatalf("bad value in line %q: %v", line, err)
		}
		samples[key] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestMetricsContract(t *testing.T) {
	alice, mallory, _, _ := tenantTestServer(t, core.NewPlatform(core.Options{Workers: 2}))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Scripted workload. alice: one genomic job watched to completion plus
	// one dataset upload — 3 admitted requests. mallory: one dataset upload
	// admitted, a second one rejected by the count quota — 2 admitted
	// requests, 1 quota rejection.
	job, err := alice.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(21)})
	if err != nil {
		t.Fatal(err)
	}
	final, err := alice.Watch(ctx, job.ID, nil)
	if err != nil || final.State != StateDone {
		t.Fatalf("job = %+v (%v)", final, err)
	}
	aliceDS, err := alice.UploadDataset(ctx, "a-rows", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g1 2.5\ng2 1.5\n")})
	if err != nil {
		t.Fatal(err)
	}
	malloryDS, err := mallory.UploadDataset(ctx, "m-rows", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g3 0.5\n")})
	if err != nil {
		t.Fatal(err)
	}
	_, err = mallory.UploadDataset(ctx, "m-rows2", "feature-table",
		UploadPart{Field: "data", R: strings.NewReader("g4 0.5\n")})
	wantCode(t, err, CodeQuotaExceeded)

	// Exact post-workload expectations. The Watch handler's request counter
	// increments a hair after the client sees the terminal event, so poll
	// briefly instead of racing it.
	exact := map[string]float64{
		"scan_jobs_total{state=\"done\"}":     1,
		"scan_jobs_total{state=\"failed\"}":   0,
		"scan_jobs_total{state=\"canceled\"}": 0,
		"scan_queue_depth":                    0,
		"scan_fleet_workers":                  0,

		"scan_registry_datasets":       2,
		"scan_registry_resident_bytes": float64(aliceDS.Bytes + malloryDS.Bytes),
		"scan_registry_evicted_total":  0,

		"scan_tenant_requests_total{tenant=\"alice\"}":                             3,
		"scan_tenant_requests_total{tenant=\"mallory\"}":                           2,
		"scan_tenant_rejected_total{tenant=\"mallory\",reason=\"quota_exceeded\"}": 1,
		"scan_tenant_active_jobs{tenant=\"alice\"}":                                0,
		"scan_tenant_active_jobs{tenant=\"mallory\"}":                              0,
		"scan_tenant_dataset_bytes{tenant=\"alice\"}":                              float64(aliceDS.Bytes),
		"scan_tenant_dataset_bytes{tenant=\"mallory\"}":                            float64(malloryDS.Bytes),

		"scan_http_requests_total{route=\"/api/v2/jobs\",code=\"202\"}":             1,
		"scan_http_requests_total{route=\"/api/v2/jobs/{id}/events\",code=\"200\"}": 1,
		"scan_http_requests_total{route=\"/api/v2/datasets\",code=\"201\"}":         2,
		"scan_http_requests_total{route=\"/api/v2/datasets\",code=\"429\"}":         1,
	}
	var samples map[string]float64
	deadline := time.Now().Add(5 * time.Second)
	for {
		samples = scrapeMetrics(t, alice.base)
		mismatch := ""
		for key, want := range exact {
			if samples[key] != want {
				mismatch = fmt.Sprintf("%s = %v, want %v", key, samples[key], want)
				break
			}
		}
		if mismatch == "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("metrics never converged: %s", mismatch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Timing-derived families: present, and consistent with the workload
	// even where the value itself is wall-clock.
	if n := samples["scan_shard_seconds_count{family=\"genomic\"}"]; n < 1 {
		t.Fatalf("scan_shard_seconds_count{family=genomic} = %v, want >= 1", n)
	}
	if samples["scan_shard_seconds_sum{family=\"genomic\"}"] < 0 {
		t.Fatal("negative shard seconds sum")
	}
	if _, ok := samples["scan_shard_seconds_bucket{family=\"genomic\",le=\"+Inf\"}"]; !ok {
		t.Fatal("shard histogram is missing its +Inf bucket")
	}
	if samples["scan_advice_cache_hits_total"]+samples["scan_advice_cache_misses_total"] < 1 {
		t.Fatal("the genomic run consulted no shard advice")
	}
	if samples["scan_kb_runs_total"] < 1 {
		t.Fatal("the genomic run left no run logs")
	}

	// The scrape itself is counted after its response is written: the first
	// scrape never sees itself, later ones see their predecessors.
	before := samples["scan_http_requests_total{route=\"/metrics\",code=\"200\"}"]
	again := scrapeMetrics(t, alice.base)
	if got := again["scan_http_requests_total{route=\"/metrics\",code=\"200\"}"]; got < before+1 {
		t.Fatalf("metrics route counter = %v after another scrape, want >= %v", got, before+1)
	}
}

// TestRouteLabelNormalization pins the cardinality bound: request paths
// collapse to route patterns, IDs to {id}, strangers to "other".
func TestRouteLabelNormalization(t *testing.T) {
	for path, want := range map[string]string{
		"/healthz":                    "/healthz",
		"/metrics":                    "/metrics",
		"/api/v1/jobs":                "/api/v1/jobs",
		"/api/v1/jobs/7":              "/api/v1/jobs/{id}",
		"/api/v2/jobs":                "/api/v2/jobs",
		"/api/v2/jobs/12":             "/api/v2/jobs/{id}",
		"/api/v2/jobs/12/events":      "/api/v2/jobs/{id}/events",
		"/api/v2/datasets/ds-9":       "/api/v2/datasets/{id}",
		"/api/v2/uploads/up-3":        "/api/v2/uploads/{id}",
		"/api/v2/uploads/up-3/commit": "/api/v2/uploads/{id}/commit",
		"/api/v2/blobs/sha256:abcd":   "/api/v2/blobs/{hash}",
		"/api/v2/fleet/poll":          "/api/v2/fleet/poll",
		"/api/v3/jobs":                "other",
		"/favicon.ico":                "other",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}
