package rpc

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// Client error-path coverage: envelope decoding across both API
// generations, non-JSON bodies, prompt returns on context cancellation, and
// the timeout configuration (including the watch path's exemption).

func TestClientErrorDecoding(t *testing.T) {
	for name, tc := range map[string]struct {
		status int
		body   string
		want   string // substring of the returned error
	}{
		"v1 string envelope":  {400, `{"error":"bad thing happened"}`, "bad thing happened"},
		"v2 coded envelope":   {404, `{"error":{"code":"not_found","message":"no job 7"}}`, "not_found: no job 7"},
		"non-JSON body":       {500, `<html>Internal Server Error</html>`, "HTTP 500"},
		"empty body":          {502, ``, "HTTP 502"},
		"JSON without error":  {503, `{"status":"down"}`, "HTTP 503"},
		"empty error message": {500, `{"error":""}`, "HTTP 500"},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(tc.status)
			_, _ = w.Write([]byte(tc.body))
		}))
		c := NewClient(ts.URL)
		_, err := c.Status(context.Background())
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", name, err, tc.want)
		}
		ts.Close()
	}
}

// TestClientErrorCodeSurfaced: v2 envelopes decode into *APIError so
// callers can branch on the machine-readable code.
func TestClientErrorCodeSurfaced(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusConflict)
		_, _ = w.Write([]byte(`{"error":{"code":"conflict","message":"job 3 already done"}}`))
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL).Cancel(context.Background(), 3)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("err = %v, want wrapped APIError{conflict}", err)
	}
}

// TestClientExportDecodesEnvelope: Export surfaces the JSON error message
// like every other call, instead of dumping the raw body bytes.
func TestClientExportDecodesEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"unknown format \"bogus\""}`))
	}))
	defer ts.Close()
	_, err := NewClient(ts.URL).Export(context.Background(), "bogus")
	if err == nil || !strings.Contains(err.Error(), `unknown format "bogus"`) {
		t.Fatalf("err = %v, want decoded envelope message", err)
	}
	if strings.Contains(err.Error(), "{") {
		t.Fatalf("raw JSON leaked into the error: %v", err)
	}
}

// TestClientWaitReturnsOnContextCancel: Wait must abandon its poll loop as
// soon as the context ends, not after another poll interval.
func TestClientWaitReturnsOnContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"id":1,"state":"running"}`)) // never finishes
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(ts.URL).Wait(ctx, 1, time.Hour) // poll interval far beyond the test
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Wait took %v to notice cancellation", elapsed)
	}
}

// TestClientWatchReturnsOnContextCancel: a Watch parked on a silent stream
// unblocks when the context ends.
func TestClientWatchReturnsOnContextCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		// One non-terminal event, then silence until the client goes away.
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"state\":\"running\"}\n\n")
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	}))
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	saw := make(chan JobEvent, 1)
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := NewClient(ts.URL).Watch(ctx, 1, func(ev JobEvent) {
		select {
		case saw <- ev:
		default:
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Watch took %v to notice cancellation", elapsed)
	}
	select {
	case ev := <-saw:
		if ev.State != StateRunning {
			t.Fatalf("event = %+v", ev)
		}
	default:
		t.Fatal("Watch never delivered the pre-cancel event")
	}
}

// TestClientTimeoutConfigurable: WithTimeout bounds unary calls, and the
// watch path is exempt — a stream that outlives the unary timeout still
// delivers.
func TestClientTimeoutConfigurable(t *testing.T) {
	slowUnary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
		_, _ = w.Write([]byte(`{"workers":1}`))
	}))
	defer slowUnary.Close()
	c := NewClient(slowUnary.URL, WithTimeout(50*time.Millisecond))
	if _, err := c.Status(context.Background()); err == nil {
		t.Fatal("50ms-timeout client survived a 2s response")
	}

	slowStream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		w.WriteHeader(http.StatusOK)
		w.(http.Flusher).Flush()
		time.Sleep(500 * time.Millisecond) // well past the 50ms unary timeout
		fmt.Fprint(w, "event: state\ndata: {\"type\":\"state\",\"state\":\"done\",\"job\":{\"id\":1,\"state\":\"done\"}}\n\n")
		w.(http.Flusher).Flush()
	}))
	defer slowStream.Close()
	c = NewClient(slowStream.URL, WithTimeout(50*time.Millisecond))
	job, err := c.Watch(context.Background(), 1, nil)
	if err != nil {
		t.Fatalf("watch severed by the unary timeout: %v", err)
	}
	if job.State != StateDone {
		t.Fatalf("job = %+v", job)
	}
}

// TestClientWatchRejectsErrorStatus: a watch on a missing job surfaces the
// v2 envelope, not a stream parse failure.
func TestClientWatchRejectsErrorStatus(t *testing.T) {
	c, _ := testServer(t)
	_, err := c.Watch(context.Background(), 999, nil)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("err = %v, want APIError{not_found}", err)
	}
}
