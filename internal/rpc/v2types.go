package rpc

import (
	"fmt"
	"time"
)

// ---------------------------------------------------------------------------
// /api/v2 wire types: the resource-oriented job surface. A Job is a
// first-class resource with a lifecycle (pending → running → done | failed |
// canceled), machine-readable errors, and a structured result carrying the
// per-stage breakdown the workflow engine computes. /api/v1's flat JobInfo
// remains served unchanged for old clients; both views render from the same
// job store.
// ---------------------------------------------------------------------------

// Machine-readable error codes. Request-level codes ride in the v2 error
// envelope ({"error":{"code":...,"message":...}}); job-level codes ride in
// Job.Error.
const (
	// Request-level codes.
	CodeInvalidArgument  = "invalid_argument"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeConflict         = "conflict"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"

	// Admission codes (only issued with tenancy enabled; docs/SERVING.md).
	CodeUnauthenticated = "unauthenticated"
	CodeForbidden       = "forbidden"
	CodeRateLimited     = "rate_limited"
	CodeQuotaExceeded   = "quota_exceeded"

	// Job-level codes.
	CodeCanceled        = "canceled"
	CodeShutdown        = "shutdown"
	CodeExecutionFailed = "execution_failed"
)

// APIError is the v2 machine-readable error: a stable code plus a
// human-readable message. Client methods wrap it, so callers can
// errors.As(err, *&APIError) and switch on Code.
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *APIError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// v2ErrorResponse is the v2 JSON error envelope. (v1 keeps its original
// {"error":"<string>"} envelope; the two are distinguishable by the type of
// the "error" member.)
type v2ErrorResponse struct {
	Error APIError `json:"error"`
}

// SyntheticSpec describes a daemon-generated dataset: a seeded reference
// with planted SNVs and simulated reads. It is the v2 form of the v1
// SubmitRequest's dataset fields, with identical tri-state semantics for the
// optional read-simulation fields.
type SyntheticSpec struct {
	// ReferenceLength is the synthetic genome size in bases (>= 200).
	ReferenceLength int `json:"reference_length"`
	// Reads is the number of simulated reads (>= 1).
	Reads int `json:"reads"`
	// ReadLength is the simulated read length. DefaultReadLength applies
	// only when the field is absent or negative; an explicit 0 is rejected.
	ReadLength *int `json:"read_length,omitempty"`
	// SNVs is the number of planted mutations.
	SNVs int `json:"snvs,omitempty"`
	// ErrorRate is the per-base sequencing error. DefaultErrorRate applies
	// only when the field is absent or negative; an explicit 0 means
	// error-free reads and is honored.
	ErrorRate *float64 `json:"error_rate,omitempty"`
	// Seed makes the synthetic data reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// EffectiveReadLength resolves the tri-state ReadLength field.
func (s *SyntheticSpec) EffectiveReadLength() int {
	if s.ReadLength == nil || *s.ReadLength < 0 {
		return DefaultReadLength
	}
	return *s.ReadLength
}

// EffectiveErrorRate resolves the tri-state ErrorRate field.
func (s *SyntheticSpec) EffectiveErrorRate() float64 {
	if s.ErrorRate == nil || *s.ErrorRate < 0 {
		return DefaultErrorRate
	}
	return *s.ErrorRate
}

// ProteomeSpec describes a daemon-generated proteomic dataset: a synthetic
// peptide database plus simulated MS/MS spectra — the MGF input of the
// proteomic workflows (proteome-maxquant, proteome-gpm).
type ProteomeSpec struct {
	// Proteins is the synthetic protein count in the peptide database
	// (>= 1).
	Proteins int `json:"proteins"`
	// Spectra is the number of simulated MS/MS spectra (>= 1).
	Spectra int `json:"spectra"`
	// NoisePeaks is the number of spurious peaks per spectrum. Same
	// tri-state semantics as SyntheticSpec's read fields: the default (3)
	// applies only when the field is absent or negative; an explicit 0
	// means clean spectra and is honored.
	NoisePeaks *int `json:"noise_peaks,omitempty"`
	// Seed makes the synthetic data reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// DefaultNoisePeaks is the spurious-peak count simulated when a proteome
// spec leaves noise_peaks unset.
const DefaultNoisePeaks = 3

// EffectiveNoisePeaks resolves the tri-state NoisePeaks field.
func (s *ProteomeSpec) EffectiveNoisePeaks() int {
	if s.NoisePeaks == nil || *s.NoisePeaks < 0 {
		return DefaultNoisePeaks
	}
	return *s.NoisePeaks
}

// ImagingSpec describes a daemon-generated microscopy dataset: frames of
// planted fluorescent cells — the TIFF input of cell-imaging.
type ImagingSpec struct {
	// Images is the number of frames (>= 1).
	Images int `json:"images"`
	// Width and Height are the frame dimensions in pixels (default 128,
	// minimum 32).
	Width  int `json:"width,omitempty"`
	Height int `json:"height,omitempty"`
	// CellsPerImage is the number of planted cells per frame (default 6).
	CellsPerImage int `json:"cells_per_image,omitempty"`
	// Seed makes the synthetic data reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// NetworkSpec describes a daemon-generated integrative dataset: gene-level
// measurements drawn from planted modules — the FeatureTable input of
// integrative-network.
type NetworkSpec struct {
	// Genes is the number of measurements (>= 1).
	Genes int `json:"genes"`
	// Modules is the number of planted modules (>= 1, <= genes).
	Modules int `json:"modules"`
	// Seed makes the synthetic data reproducible.
	Seed int64 `json:"seed,omitempty"`
}

// InlineDataset carries real sequencing input in the submission body — the
// first non-synthetic workload: a reference sequence plus FASTQ records.
type InlineDataset struct {
	Reference InlineSequence `json:"reference"`
	Reads     []InlineRead   `json:"reads"`
}

// InlineSequence is a FASTA record inline in a request.
type InlineSequence struct {
	// Name is the sequence name (default "ref").
	Name string `json:"name,omitempty"`
	// Sequence is the nucleotide string (A/C/G/T/N, case-insensitive),
	// at least 16 bases (the aligner's seed length).
	Sequence string `json:"sequence"`
}

// InlineRead is one FASTQ record inline in a request.
type InlineRead struct {
	// ID names the read (default "read<N>").
	ID string `json:"id,omitempty"`
	// Sequence is the read's bases (A/C/G/T/N, case-insensitive).
	Sequence string `json:"sequence"`
	// Quality is the Phred+33 quality string; when present it must match
	// the sequence length, when absent a uniform high quality is assumed.
	Quality string `json:"quality,omitempty"`
}

// SubmitJobRequest creates a job. Exactly one dataset source must be set —
// Synthetic or Inline (FASTQ), Proteome (MGF), Imaging (TIFF), Network
// (FeatureTable), or Dataset (a registered upload of any family) — and the
// workflow must consume that source's data type.
type SubmitJobRequest struct {
	// Workflow names the catalogued workflow to execute. It defaults by
	// dataset source (dna-variant-detection, proteome-maxquant,
	// cell-imaging, integrative-network) and must have an executor for
	// every stage; see GET /api/v1/workflows.
	Workflow string `json:"workflow,omitempty"`
	// Synthetic asks the daemon to generate a sequencing dataset (FASTQ).
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
	// Inline carries a sequencing dataset in the request body (FASTQ).
	Inline *InlineDataset `json:"inline,omitempty"`
	// Proteome asks the daemon to generate MS/MS spectra (MGF).
	Proteome *ProteomeSpec `json:"proteome,omitempty"`
	// Imaging asks the daemon to generate microscopy frames (TIFF).
	Imaging *ImagingSpec `json:"imaging,omitempty"`
	// Network asks the daemon to generate gene measurements (FeatureTable).
	Network *NetworkSpec `json:"network,omitempty"`
	// Dataset references a registered dataset (POST /api/v2/datasets) by id
	// or name. The job runs over the registry's copy of the records — no
	// payload rides in the submission.
	Dataset string `json:"dataset,omitempty"`
	// Reference names a registered reference genome (a dataset of family
	// "reference") by id or name. Valid for sequencing submissions only:
	// with Inline it replaces the inline reference sequence, with a FASTQ
	// Dataset it overrides (or supplies) the dataset's reference — so one
	// registered genome serves any number of read sets.
	Reference string `json:"reference,omitempty"`
	// ShardRecords overrides the Data Broker's shard sizing when > 0.
	ShardRecords int `json:"shard_records,omitempty"`
}

// Job source values.
const (
	SourceSynthetic = "synthetic"
	SourceInline    = "inline"
	SourceDataset   = "dataset"
)

// DatasetInfo is the v2 dataset resource: a named, uploaded dataset jobs
// reference by id instead of shipping records per submission.
type DatasetInfo struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	// Family is the upload family: fastq, mgf, tiff, feature-table or
	// reference.
	Family string `json:"family"`
	// Hash is the hex SHA-256 of the uploaded payload bytes.
	Hash string `json:"hash"`
	// Records counts the payload's records (reads, spectra, frames, rows;
	// 1 for a reference).
	Records int `json:"records"`
	// Bytes is the upload size accounted against the registry's byte bound.
	Bytes int64 `json:"bytes"`
	// Reference reports whether a FASTQ dataset carries an embedded
	// reference sequence (and is therefore submittable without naming one).
	Reference bool      `json:"reference,omitempty"`
	Created   time.Time `json:"created"`
}

// DatasetList is GET /api/v2/datasets: every registered dataset, oldest
// first. The registry is bounded (oldest unreferenced datasets are evicted
// to admit new uploads), so the listing needs no pagination.
type DatasetList struct {
	Datasets []DatasetInfo `json:"datasets"`
}

// UploadCreateRequest is POST /api/v2/uploads: open a resumable upload
// session for a named dataset.
type UploadCreateRequest struct {
	Name   string `json:"name"`
	Family string `json:"family"`
}

// UploadPartInfo is one part's progress inside an upload session.
type UploadPartInfo struct {
	Field string `json:"field"`
	// Size is how many bytes the server has durably spooled — the offset the
	// next append must start at.
	Size int64 `json:"size"`
	// SHA256 is the running hex digest of the spooled bytes. A resuming
	// client hashes its local prefix of the same length and compares before
	// sending anything, so no verified byte is ever re-sent.
	SHA256 string `json:"sha256"`
}

// UploadInfo is the v2 upload-session resource.
type UploadInfo struct {
	ID      string           `json:"id"`
	Name    string           `json:"name"`
	Family  string           `json:"family"`
	Created time.Time        `json:"created"`
	Parts   []UploadPartInfo `json:"parts"`
}

// UploadList is GET /api/v2/uploads: every open session, oldest first.
// Sessions are process-local and bounded; committed or aborted sessions
// disappear from the listing.
type UploadList struct {
	Uploads []UploadInfo `json:"uploads"`
}

// Job is the v2 job resource.
type Job struct {
	ID    int      `json:"id"`
	State JobState `json:"state"`
	// Workflow and Family mirror the catalogue entry being executed;
	// Family ("genomic", "proteomic", "imaging", "integrative") lets
	// clients render family-shaped results without re-deriving the
	// classification from tool names.
	Family   string `json:"family,omitempty"`
	Workflow string `json:"workflow"`
	Source   string `json:"source"`
	// Dataset is the registered dataset id the job runs over, for
	// source "dataset" jobs.
	Dataset string `json:"dataset,omitempty"`
	// Tenant names the submitting tenant when the daemon runs with
	// tenancy enabled; empty otherwise (and for v1 submissions).
	Tenant    string     `json:"tenant,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	// Error is set for failed and canceled jobs.
	Error *JobError `json:"error,omitempty"`
	// Result is set for done jobs.
	Result *JobResult `json:"result,omitempty"`
}

// JobError explains a terminal failure with a machine-readable code
// (canceled, shutdown, execution_failed).
type JobError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// JobResult is a completed job's structured outcome. The counts populate
// by family: Mapped/Variants for sequencing runs, Features for imaging
// (one row per segmented cell) and expression, Proteins for proteomics,
// Nodes/Edges/Modules for network integration. TotalRecords counts the
// input payload's records whatever its type (reads, spectra, frames,
// measurements); TotalReads keeps the original name for FASTQ runs.
type JobResult struct {
	Mapped       int     `json:"mapped"`
	TotalReads   int     `json:"total_reads"`
	TotalRecords int     `json:"total_records,omitempty"`
	Variants     int     `json:"variants"`
	Features     int     `json:"features"`
	Proteins     int     `json:"proteins,omitempty"`
	Nodes        int     `json:"nodes,omitempty"`
	Edges        int     `json:"edges,omitempty"`
	Modules      int     `json:"modules,omitempty"`
	Recovered    int     `json:"recovered"`
	Planted      int     `json:"planted"`
	Shards       int     `json:"shards"`
	ElapsedSec   float64 `json:"elapsed_sec"`
	// Stages is the per-stage breakdown, in execution order — never null.
	Stages []StageBreakdown `json:"stages"`
}

// StageBreakdown reports one executed workflow stage.
type StageBreakdown struct {
	Name       string  `json:"name"`
	Tool       string  `json:"tool"`
	Shards     int     `json:"shards"`
	ElapsedSec float64 `json:"elapsed_sec"`
	// Records counts the records the stage's shards processed (absent for
	// stages that do not scatter by record).
	Records int `json:"records,omitempty"`
	// Streamed marks stages executed inside a pipelined segment — their
	// shards overlapped with neighbouring stages instead of running behind
	// a per-stage barrier. The two timing fields below are only meaningful
	// when it is set.
	Streamed bool `json:"streamed,omitempty"`
	// FirstShardStartSec is when the stage's first shard began, as an
	// offset from its segment's start: a value below the upstream stage's
	// elapsed_sec means this stage started before its predecessor finished.
	FirstShardStartSec float64 `json:"first_shard_start_sec,omitempty"`
	// Overlap is the fraction of the stage's span spent running while its
	// upstream stage was still in flight, in [0, 1].
	Overlap float64 `json:"overlap,omitempty"`
}

// JobPage is one page of GET /api/v2/jobs. Jobs is never null; a non-empty
// NextPageToken means more jobs match the filters.
type JobPage struct {
	Jobs          []Job  `json:"jobs"`
	NextPageToken string `json:"next_page_token,omitempty"`
}

// ListJobsOptions filters and paginates GET /api/v2/jobs.
type ListJobsOptions struct {
	// State keeps only jobs in the given state when non-empty.
	State JobState
	// Workflow keeps only jobs of the given workflow when non-empty.
	Workflow string
	// Limit bounds the page size (default 100, max 1000).
	Limit int
	// PageToken resumes a previous listing from its NextPageToken.
	PageToken string
}

// Event types on the job event stream.
const (
	EventState = "state"
	EventStage = "stage"
)

// JobEvent is one entry on a job's event stream
// (GET /api/v2/jobs/{id}/events, served as SSE): a lifecycle state
// transition or a completed workflow stage. Seq numbers events from 0 per
// job; terminal state events carry the full Job resource so watchers need no
// follow-up fetch.
type JobEvent struct {
	Seq   int             `json:"seq"`
	Type  string          `json:"type"`
	Time  time.Time       `json:"time"`
	State JobState        `json:"state,omitempty"`
	Stage *StageBreakdown `json:"stage,omitempty"`
	Job   *Job            `json:"job,omitempty"`
}

// Terminal reports whether the state is final (done, failed or canceled).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// clone deep-copies the job so snapshots handed to clients cannot alias the
// store's mutable record.
func (j Job) clone() Job {
	out := j
	if j.Started != nil {
		t := *j.Started
		out.Started = &t
	}
	if j.Finished != nil {
		t := *j.Finished
		out.Finished = &t
	}
	if j.Error != nil {
		e := *j.Error
		out.Error = &e
	}
	if j.Result != nil {
		r := *j.Result
		r.Stages = append([]StageBreakdown(nil), j.Result.Stages...)
		if r.Stages == nil {
			r.Stages = []StageBreakdown{}
		}
		out.Result = &r
	}
	return out
}
