package rpc

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"scan/internal/registry"
)

// The /api/v2/datasets handlers: streaming dataset uploads into the
// platform's registry, listing, inspection and deletion. Uploads are
// decoded record-by-record straight off the request body (multipart parts
// are read with MultipartReader, never buffered through ParseMultipartForm),
// so the daemon's memory cost is the decoded records, bounded by the
// per-family caps — not the wire size of the body.

// Per-family decode limits. The synthetic-spec caps bound what the daemon
// will generate; these bound what it will accept, sized a notch above them
// so real uploads of the same magnitude fit.
const (
	maxUploadBytes     = 128 << 20 // any one upload part
	maxUploadReads     = 500000
	maxUploadSpectra   = maxSyntheticSpectra
	maxUploadPeptides  = 3 * maxSyntheticProteins // peptides, not proteins
	maxUploadFrames    = maxSyntheticImages
	maxUploadRows      = maxSyntheticGenes
	maxUploadFieldSize = 256 // name/family form fields
)

func uploadLimits(maxRecords int) registry.Limits {
	return registry.Limits{MaxRecords: maxRecords, MaxBytes: maxUploadBytes}
}

// handleV2Datasets routes the dataset collection: POST uploads, GET lists.
func (s *Server) handleV2Datasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleV2DatasetUpload(w, r)
	case http.MethodGet:
		list := DatasetList{Datasets: []DatasetInfo{}}
		for _, d := range s.platform.Datasets().List() {
			list.Datasets = append(list.Datasets, datasetInfo(d))
		}
		writeJSON(w, http.StatusOK, list)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST only")
	}
}

// handleV2Dataset routes one dataset resource: GET fetches, DELETE removes.
func (s *Server) handleV2Dataset(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v2/datasets/")
	if id == "" || strings.Contains(id, "/") {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no such resource")
		return
	}
	switch r.Method {
	case http.MethodGet:
		meta, _, err := s.platform.Datasets().Resolve(id)
		if err != nil {
			writeV2Error(w, http.StatusNotFound, CodeNotFound, "no dataset %q", id)
			return
		}
		writeJSON(w, http.StatusOK, datasetInfo(meta))
	case http.MethodDelete:
		meta, err := s.platform.Datasets().Delete(id)
		switch {
		case errors.Is(err, registry.ErrNotFound):
			writeV2Error(w, http.StatusNotFound, CodeNotFound, "no dataset %q", id)
		case errors.Is(err, registry.ErrPinned):
			writeV2Error(w, http.StatusConflict, CodeConflict,
				"dataset %q is referenced by unfinished jobs; cancel or wait them out", id)
		case err != nil:
			writeV2Error(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		default:
			writeJSON(w, http.StatusOK, datasetInfo(meta))
		}
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE only")
	}
}

func datasetInfo(d registry.Dataset) DatasetInfo {
	return DatasetInfo{
		ID:        d.ID,
		Name:      d.Name,
		Family:    string(d.Family),
		Hash:      d.Hash,
		Records:   d.Records,
		Bytes:     d.Bytes,
		Reference: d.Family == registry.FASTQ && d.HasReference,
		Created:   d.Created,
	}
}

// handleV2DatasetUpload stores one uploaded dataset. Two body shapes:
//
//   - multipart/form-data: "name" and "family" fields first, then the data
//     part(s) — "data" for fastq/tiff/feature-table/reference (fastq may
//     add a "reference" FASTA part), "peptides" + "spectra" for mgf.
//   - any other content type: the raw data stream, with name and family as
//     query parameters (mgf excluded — it needs two parts).
//
// Either way the body is decoded streaming, record by record, under the
// per-family caps.
func (s *Server) handleV2DatasetUpload(w http.ResponseWriter, r *http.Request) {
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var (
		up  upload
		err error
	)
	if mediaType == "multipart/form-data" {
		up, err = decodeMultipartUpload(r)
	} else {
		up, err = decodeRawUpload(r)
	}
	if err != nil {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	meta, err := s.platform.Datasets().Put(up.name, up.family, up.payload, up.stats)
	switch {
	case errors.Is(err, registry.ErrDuplicateName):
		writeV2Error(w, http.StatusConflict, CodeConflict, "%v", err)
	case errors.Is(err, registry.ErrStoreFull):
		writeV2Error(w, http.StatusInsufficientStorage, CodeUnavailable, "%v", err)
	case err != nil:
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
	default:
		writeJSON(w, http.StatusCreated, datasetInfo(meta))
	}
}

// upload is one decoded dataset upload, ready for the store.
type upload struct {
	name    string
	family  registry.Family
	payload registry.Payload
	stats   registry.Stats
}

// decodePart streams one data part into the upload's payload. For the
// multi-part families the per-part stats are combined by the caller.
func decodePart(up *upload, field string, body io.Reader) (registry.Stats, error) {
	switch {
	case up.family == registry.FASTQ && field == "data":
		reads, st, err := registry.DecodeFASTQ(body, uploadLimits(maxUploadReads))
		up.payload.Reads = reads
		return st, err
	case up.family == registry.FASTQ && field == "reference",
		up.family == registry.Reference && field == "data":
		ref, st, err := registry.DecodeFASTA(body, uploadLimits(1))
		up.payload.Ref = ref
		return st, err
	case up.family == registry.MGF && field == "peptides":
		db, st, err := registry.DecodePeptides(body, uploadLimits(maxUploadPeptides))
		up.payload.PeptideDB = db
		return st, err
	case up.family == registry.MGF && field == "spectra":
		spectra, st, err := registry.DecodeMGFSpectra(body, uploadLimits(maxUploadSpectra))
		up.payload.Spectra = spectra
		return st, err
	case up.family == registry.TIFF && field == "data":
		frames, st, err := registry.DecodeFrames(body, uploadLimits(maxUploadFrames))
		up.payload.Images = frames
		return st, err
	case up.family == registry.FeatureTable && field == "data":
		rows, st, err := registry.DecodeFeatures(body, uploadLimits(maxUploadRows))
		up.payload.Features = rows
		return st, err
	}
	return registry.Stats{}, fmt.Errorf("unexpected part %q for family %q", field, up.family)
}

// finishUpload checks every required part arrived and settles the
// dataset-level stats.
func finishUpload(up *upload, parts map[string]registry.Stats) error {
	switch up.family {
	case registry.FASTQ:
		data, ok := parts["data"]
		if !ok {
			return errors.New(`fastq upload needs a "data" part (FASTQ records)`)
		}
		if ref, ok := parts["reference"]; ok {
			up.stats = registry.CombineStats(data.Records, ref, data)
		} else {
			up.stats = data
		}
	case registry.MGF:
		pep, okP := parts["peptides"]
		spec, okS := parts["spectra"]
		if !okP || !okS {
			return errors.New(`mgf upload needs "peptides" and "spectra" parts`)
		}
		up.stats = registry.CombineStats(spec.Records, pep, spec)
	default:
		data, ok := parts["data"]
		if !ok {
			return fmt.Errorf(`%s upload needs a "data" part`, up.family)
		}
		up.stats = data
	}
	return nil
}

// decodeMultipartUpload streams a multipart/form-data body: metadata fields
// first (name, family), then the data part(s), each decoded record by
// record as it arrives. ParseMultipartForm would buffer file parts to
// memory or disk; MultipartReader hands them over as streams.
func decodeMultipartUpload(r *http.Request) (upload, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return upload{}, fmt.Errorf("bad multipart body: %v", err)
	}
	var up upload
	parts := map[string]registry.Stats{}
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return upload{}, fmt.Errorf("bad multipart body: %v", err)
		}
		field := part.FormName()
		switch field {
		case "name", "family":
			raw, err := io.ReadAll(io.LimitReader(part, maxUploadFieldSize+1))
			if err != nil {
				return upload{}, fmt.Errorf("bad %s field: %v", field, err)
			}
			if len(raw) > maxUploadFieldSize {
				return upload{}, fmt.Errorf("%s field longer than %d bytes", field, maxUploadFieldSize)
			}
			if field == "name" {
				up.name = string(raw)
			} else if up.family, err = registry.ParseFamily(string(raw)); err != nil {
				return upload{}, err
			}
		default:
			// A data part: metadata must already be known, because the
			// decoder and its caps are family-specific and the body is
			// consumed in order.
			if up.name == "" || up.family == "" {
				return upload{}, errors.New(`"name" and "family" fields must precede the data parts`)
			}
			if _, dup := parts[field]; dup {
				return upload{}, fmt.Errorf("duplicate part %q", field)
			}
			st, err := decodePart(&up, field, part)
			if err != nil {
				return upload{}, fmt.Errorf("part %q: %v", field, err)
			}
			parts[field] = st
		}
		part.Close()
	}
	if up.name == "" || up.family == "" {
		return upload{}, errors.New(`upload needs "name" and "family" fields`)
	}
	if err := finishUpload(&up, parts); err != nil {
		return upload{}, err
	}
	return up, nil
}

// decodeRawUpload streams a non-multipart body as the single data part,
// with name and family taken from the query string.
func decodeRawUpload(r *http.Request) (upload, error) {
	q := r.URL.Query()
	up := upload{name: q.Get("name")}
	if up.name == "" {
		return upload{}, errors.New("upload needs a name (?name=... or a multipart name field)")
	}
	var err error
	if up.family, err = registry.ParseFamily(q.Get("family")); err != nil {
		return upload{}, err
	}
	if up.family == registry.MGF {
		return upload{}, errors.New("mgf uploads need multipart/form-data with peptides and spectra parts")
	}
	st, err := decodePart(&up, "data", r.Body)
	if err != nil {
		return upload{}, err
	}
	return up, finishUpload(&up, map[string]registry.Stats{"data": st})
}
