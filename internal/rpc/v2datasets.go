package rpc

import (
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strings"

	"scan/internal/registry"
)

// The /api/v2/datasets handlers: streaming dataset uploads into the
// platform's registry, listing, inspection and deletion. Uploads are
// decoded record-by-record straight off the request body (multipart parts
// are read with MultipartReader, never buffered through ParseMultipartForm),
// so the daemon's memory cost is the decoded records, bounded by the
// per-family caps — not the wire size of the body.

// Per-family decode limits. The synthetic-spec caps bound what the daemon
// will generate; these bound what it will accept, sized a notch above them
// so real uploads of the same magnitude fit.
const (
	maxUploadBytes     = 128 << 20 // any one upload part
	maxUploadReads     = 500000
	maxUploadSpectra   = maxSyntheticSpectra
	maxUploadPeptides  = 3 * maxSyntheticProteins // peptides, not proteins
	maxUploadFrames    = maxSyntheticImages
	maxUploadRows      = maxSyntheticGenes
	maxUploadFieldSize = 256 // name/family form fields
)

func uploadLimits(maxRecords int) registry.Limits {
	return registry.Limits{MaxRecords: maxRecords, MaxBytes: maxUploadBytes}
}

// handleV2Datasets routes the dataset collection: POST uploads, GET lists.
func (s *Server) handleV2Datasets(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleV2DatasetUpload(w, r)
	case http.MethodGet:
		list := DatasetList{Datasets: []DatasetInfo{}}
		for _, d := range s.platform.Datasets().List() {
			list.Datasets = append(list.Datasets, datasetInfo(d))
		}
		writeJSON(w, http.StatusOK, list)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST only")
	}
}

// handleV2Dataset routes one dataset resource: GET fetches, DELETE removes.
func (s *Server) handleV2Dataset(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/api/v2/datasets/")
	if id == "" || strings.Contains(id, "/") {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no such resource")
		return
	}
	switch r.Method {
	case http.MethodGet:
		meta, _, err := s.platform.Datasets().Resolve(id)
		if err != nil {
			writeV2Error(w, http.StatusNotFound, CodeNotFound, "no dataset %q", id)
			return
		}
		writeJSON(w, http.StatusOK, datasetInfo(meta))
	case http.MethodDelete:
		// Resolve first for the canonical ID — ownership records are keyed
		// by ID, but clients may delete by name.
		if meta, _, err := s.platform.Datasets().Resolve(id); err == nil {
			if !s.authorizeDatasetDelete(w, r, meta.ID) {
				return
			}
		}
		meta, err := s.platform.Datasets().Delete(id)
		switch {
		case errors.Is(err, registry.ErrNotFound):
			writeV2Error(w, http.StatusNotFound, CodeNotFound, "no dataset %q", id)
		case errors.Is(err, registry.ErrPinned):
			writeV2Error(w, http.StatusConflict, CodeConflict,
				"dataset %q is referenced by unfinished jobs; cancel or wait them out", id)
		case err != nil:
			writeV2Error(w, http.StatusInternalServerError, CodeInternal, "%v", err)
		default:
			if st := requestTenant(r); st != nil {
				st.ForgetDataset(meta.ID)
			}
			writeJSON(w, http.StatusOK, datasetInfo(meta))
		}
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or DELETE only")
	}
}

func datasetInfo(d registry.Dataset) DatasetInfo {
	return DatasetInfo{
		ID:        d.ID,
		Name:      d.Name,
		Family:    string(d.Family),
		Hash:      d.Hash,
		Records:   d.Records,
		Bytes:     d.Bytes,
		Reference: d.Family == registry.FASTQ && d.HasReference,
		Created:   d.Created,
	}
}

// handleV2DatasetUpload stores one uploaded dataset. Two body shapes:
//
//   - multipart/form-data: "name" and "family" fields first, then the data
//     part(s) — "data" for fastq/tiff/feature-table/reference (fastq may
//     add a "reference" FASTA part), "peptides" + "spectra" for mgf.
//   - any other content type: the raw data stream, with name and family as
//     query parameters (mgf excluded — it needs two parts).
//
// Either way the body is decoded streaming, record by record, under the
// per-family caps. Internally the request rides a transient upload session
// (the same machinery as /api/v2/uploads): each part is decoded *while*
// spooling, so decode errors surface mid-body exactly as they always did,
// and the commit is the identical atomic promotion the resumable API gets —
// including durable blob ingestion when the platform runs with a data
// directory.
func (s *Server) handleV2DatasetUpload(w http.ResponseWriter, r *http.Request) {
	if !s.uploadsReady(w) {
		return
	}
	// The dataset-count quota is checkable before any bytes decode; the
	// byte quota only after commit reveals the decoded size (settle below).
	tn := requestTenant(r)
	if !s.admitDatasetCount(w, tn) {
		return
	}
	mediaType, _, _ := mime.ParseMediaType(r.Header.Get("Content-Type"))
	var (
		u   *registry.UploadSession
		err error
	)
	if mediaType == "multipart/form-data" {
		u, err = s.decodeMultipartUpload(r)
	} else {
		u, err = s.decodeRawUpload(r)
	}
	if err != nil {
		if u != nil {
			u.Abort()
		}
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	meta, err := u.Commit()
	if err != nil {
		// One-shot callers cannot resume; drop the session and its spools.
		u.Abort()
	}
	switch {
	case errors.Is(err, registry.ErrDuplicateName):
		writeV2Error(w, http.StatusConflict, CodeConflict, "%v", err)
	case errors.Is(err, registry.ErrStoreFull):
		writeV2Error(w, http.StatusInsufficientStorage, CodeUnavailable, "%v", err)
	case err != nil:
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
	default:
		if !s.settleDatasetQuota(w, tn, meta.ID, meta.Bytes) {
			return
		}
		writeJSON(w, http.StatusCreated, datasetInfo(meta))
	}
}

// decodeMultipartUpload streams a multipart/form-data body into a staged
// upload session: metadata fields first (name, family), then the data
// part(s), each decoded record by record as it arrives (ParseMultipartForm
// would buffer file parts to memory or disk; MultipartReader hands them
// over as streams). On error the partially-fed session (possibly nil) is
// returned for the caller to abort.
func (s *Server) decodeMultipartUpload(r *http.Request) (*registry.UploadSession, error) {
	mr, err := r.MultipartReader()
	if err != nil {
		return nil, fmt.Errorf("bad multipart body: %v", err)
	}
	var (
		u      *registry.UploadSession
		name   string
		family registry.Family
		seen   = map[string]bool{}
	)
	for {
		part, err := mr.NextPart()
		if err == io.EOF {
			break
		}
		if err != nil {
			return u, fmt.Errorf("bad multipart body: %v", err)
		}
		field := part.FormName()
		switch field {
		case "name", "family":
			raw, err := io.ReadAll(io.LimitReader(part, maxUploadFieldSize+1))
			if err != nil {
				return u, fmt.Errorf("bad %s field: %v", field, err)
			}
			if len(raw) > maxUploadFieldSize {
				return u, fmt.Errorf("%s field longer than %d bytes", field, maxUploadFieldSize)
			}
			if field == "name" {
				name = string(raw)
			} else if family, err = registry.ParseFamily(string(raw)); err != nil {
				return u, err
			}
		default:
			// A data part: metadata must already be known, because the
			// decoder and its caps are family-specific and the body is
			// consumed in order.
			if name == "" || family == "" {
				return u, errors.New(`"name" and "family" fields must precede the data parts`)
			}
			if u == nil {
				// Stage, not Create: this path historically validated names
				// only at store time, so a malformed body fails before a
				// malformed name.
				if u, err = s.uploads.Stage(name, family); err != nil {
					return nil, err
				}
			}
			if seen[field] {
				return u, fmt.Errorf("duplicate part %q", field)
			}
			seen[field] = true
			if _, err := u.AppendDecoded(field, part); err != nil {
				return u, fmt.Errorf("part %q: %v", field, err)
			}
		}
		part.Close()
	}
	if name == "" || family == "" {
		return u, errors.New(`upload needs "name" and "family" fields`)
	}
	if u == nil {
		// Metadata but no data parts: commit on the empty session reports
		// the family's missing-part error.
		if u, err = s.uploads.Stage(name, family); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// decodeRawUpload streams a non-multipart body as the single data part,
// with name and family taken from the query string.
func (s *Server) decodeRawUpload(r *http.Request) (*registry.UploadSession, error) {
	q := r.URL.Query()
	name := q.Get("name")
	if name == "" {
		return nil, errors.New("upload needs a name (?name=... or a multipart name field)")
	}
	family, err := registry.ParseFamily(q.Get("family"))
	if err != nil {
		return nil, err
	}
	if family == registry.MGF {
		return nil, errors.New("mgf uploads need multipart/form-data with peptides and spectra parts")
	}
	u, err := s.uploads.Stage(name, family)
	if err != nil {
		return nil, err
	}
	if _, err := u.AppendDecoded("data", r.Body); err != nil {
		return u, err
	}
	return u, nil
}
