package rpc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"scan/internal/knowledge"
)

// End-to-end HTTP coverage for the three non-genomic families: each
// workflow submits through POST /api/v2/jobs with its family's synthetic
// spec, streams its stages over SSE, reports a family-shaped structured
// result, and leaves run-log telemetry in the knowledge base — verified
// over the HTTP query surface, which flushes the ingest buffer exactly
// like knowledge.Base.Flush.

// kbRunLogs counts RunLog individuals for one tool over the HTTP SPARQL
// endpoint.
func kbRunLogs(ctx context.Context, t *testing.T, c *Client, tool string) int {
	t.Helper()
	res, err := c.Query(ctx, fmt.Sprintf(`
PREFIX scan: <%s>
SELECT ?run WHERE {
  ?run a scan:RunLog ;
       scan:application scan:%s .
}`, knowledge.NS, tool))
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

// watchToDone submits nothing itself: it follows an existing job's SSE
// stream, returning the terminal job and the observed stage events.
func watchToDone(ctx context.Context, t *testing.T, c *Client, id int) (Job, []JobEvent) {
	t.Helper()
	var stages []JobEvent
	final, err := c.Watch(ctx, id, func(ev JobEvent) {
		if ev.Type == EventStage {
			stages = append(stages, ev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return final, stages
}

func TestV2ProteomeJobsEndToEnd(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, tc := range []struct {
		workflow, stage, tool string
		quantified            bool
	}{
		{"proteome-maxquant", "Quantify", "MaxQuant", true},
		{"proteome-gpm", "Search", "GPM", false},
	} {
		logsBefore := kbRunLogs(ctx, t, c, tc.tool)
		job, err := c.CreateJob(ctx, SubmitJobRequest{
			Workflow:     tc.workflow,
			Proteome:     &ProteomeSpec{Proteins: 15, Spectra: 300, Seed: 5},
			ShardRecords: 100,
		})
		if err != nil {
			t.Fatalf("%s: %v", tc.workflow, err)
		}
		if job.Workflow != tc.workflow || job.Source != SourceSynthetic || job.Family != "proteomic" {
			t.Fatalf("%s: job = %+v", tc.workflow, job)
		}
		final, stages := watchToDone(ctx, t, c, job.ID)
		if final.State != StateDone {
			t.Fatalf("%s: state = %q (%+v)", tc.workflow, final.State, final.Error)
		}
		r := final.Result
		// Family-shaped result: protein evidence, spectrum input count, the
		// spectrum-shard scatter (300 spectra at 100/shard).
		if r.Proteins != 15 || r.TotalRecords != 300 || r.Shards != 3 {
			t.Fatalf("%s: result = %+v", tc.workflow, r)
		}
		if r.TotalReads != 0 || r.Variants != 0 || r.Planted != 0 {
			t.Fatalf("%s: sequencing fields leaked into a proteomic result: %+v", tc.workflow, r)
		}
		if len(r.Stages) != 1 || r.Stages[0].Name != tc.stage || r.Stages[0].Tool != tc.tool || r.Stages[0].Shards != 3 {
			t.Fatalf("%s: stage breakdown = %+v", tc.workflow, r.Stages)
		}
		// The SSE stream carried the same stage completion.
		if len(stages) != 1 || stages[0].Stage.Name != tc.stage {
			t.Fatalf("%s: stage events = %+v", tc.workflow, stages)
		}
		// Per-shard telemetry reached the KB: one run log per spectrum shard.
		if got := kbRunLogs(ctx, t, c, tc.tool); got != logsBefore+3 {
			t.Fatalf("%s: %s run logs = %d, want %d", tc.workflow, tc.tool, got, logsBefore+3)
		}
	}
}

func TestV2ImagingJobEndToEnd(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := c.CreateJob(ctx, SubmitJobRequest{
		Imaging: &ImagingSpec{Images: 2, Width: 96, Height: 96, CellsPerImage: 5, Seed: 7},
	})
	if err != nil {
		t.Fatal(err)
	}
	// The imaging source defaults to the cell-imaging workflow.
	if job.Workflow != "cell-imaging" || job.Family != "imaging" {
		t.Fatalf("job = %+v", job)
	}
	final, stages := watchToDone(ctx, t, c, job.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q (%+v)", final.State, final.Error)
	}
	r := final.Result
	// Segmentation recovers exactly the planted cells: one feature each.
	if r.Features != 10 || r.TotalRecords != 2 {
		t.Fatalf("result = %+v", r)
	}
	if len(r.Stages) != 1 || r.Stages[0].Tool != "CellProfiler" || r.Stages[0].Shards < 2 {
		t.Fatalf("stage breakdown = %+v", r.Stages)
	}
	if len(stages) != 1 || stages[0].Stage.Name != "Profile" {
		t.Fatalf("stage events = %+v", stages)
	}
	if got := kbRunLogs(ctx, t, c, "CellProfiler"); got != r.Stages[0].Shards {
		t.Fatalf("CellProfiler run logs = %d, want %d tiles", got, r.Stages[0].Shards)
	}
}

func TestV2NetworkJobEndToEnd(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := c.CreateJob(ctx, SubmitJobRequest{
		Network:      &NetworkSpec{Genes: 60, Modules: 4, Seed: 9},
		ShardRecords: 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Workflow != "integrative-network" || job.Family != "integrative" {
		t.Fatalf("job = %+v", job)
	}
	final, stages := watchToDone(ctx, t, c, job.ID)
	if final.State != StateDone {
		t.Fatalf("state = %q (%+v)", final.State, final.Error)
	}
	r := final.Result
	// Network-shaped result: the planted module structure is recovered and
	// the node partitions (60 genes at 20/partition) are reported.
	if r.Nodes != 60 || r.Modules != 4 || r.Edges == 0 || r.Shards != 3 {
		t.Fatalf("result = %+v", r)
	}
	if len(stages) != 1 || stages[0].Stage.Name != "Integrate" || stages[0].Stage.Shards != 3 {
		t.Fatalf("stage events = %+v", stages)
	}
	if got := kbRunLogs(ctx, t, c, "Cytoscape"); got != 3 {
		t.Fatalf("Cytoscape run logs = %d, want 3 partitions", got)
	}
}

// TestV2FamilySpecValidation: family specs get the same machine-readable
// rejection surface as the sequencing specs, including data-type mismatch
// between spec and workflow.
func TestV2FamilySpecValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	for name, tc := range map[string]struct {
		req  SubmitJobRequest
		want string
	}{
		"proteome zero spectra": {SubmitJobRequest{Proteome: &ProteomeSpec{Proteins: 5}},
			"spectra must be >= 1"},
		"proteome over cap": {SubmitJobRequest{Proteome: &ProteomeSpec{Proteins: 5, Spectra: 1 << 20}},
			"at most"},
		"imaging no frames": {SubmitJobRequest{Imaging: &ImagingSpec{}},
			"images must be in"},
		"imaging tiny frame": {SubmitJobRequest{Imaging: &ImagingSpec{Images: 1, Width: 8, Height: 8}},
			"width and height"},
		"imaging overcrowded": {SubmitJobRequest{Imaging: &ImagingSpec{Images: 1, CellsPerImage: 999}},
			"cells_per_image"},
		"network no genes": {SubmitJobRequest{Network: &NetworkSpec{Modules: 2}},
			"genes must be in"},
		"network modules exceed genes": {SubmitJobRequest{Network: &NetworkSpec{Genes: 3, Modules: 9}},
			"modules must be in"},
		"network too dense": {SubmitJobRequest{Network: &NetworkSpec{Genes: 20000, Modules: 1}},
			"edge memory"},
		"two sources": {SubmitJobRequest{Proteome: &ProteomeSpec{Proteins: 5, Spectra: 10},
			Network: &NetworkSpec{Genes: 10, Modules: 2}},
			"exactly one of"},
		"spec/workflow type mismatch": {SubmitJobRequest{Workflow: "cell-imaging",
			Proteome: &ProteomeSpec{Proteins: 5, Spectra: 10}},
			"consumes TIFF"},
		"fastq workflow on network spec": {SubmitJobRequest{Workflow: "dna-variant-detection",
			Network: &NetworkSpec{Genes: 10, Modules: 2}},
			"consumes FASTQ"},
	} {
		_, err := c.CreateJob(ctx, tc.req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument || !strings.Contains(ae.Message, tc.want) {
			t.Errorf("%s: err = %v, want invalid_argument containing %q", name, err, tc.want)
		}
	}
	// v1 stays a sequencing-only surface: its submissions cannot reach the
	// family workflows even now that they are runnable.
	_, err := c.Submit(ctx, SubmitRequest{
		Workflow: "proteome-maxquant", ReferenceLength: 2000, Reads: 100,
	})
	if err == nil || !strings.Contains(err.Error(), "consumes MGF") {
		t.Errorf("v1 proteomic submit: err = %v, want consumes MGF rejection", err)
	}
}
