package rpc

// Client half of the resumable upload API. UploadDatasetResumable is the
// high-level entry: it finds or opens a session, verifies what the server
// already has (by hashing the local prefix — never by re-sending it),
// appends the remainder in chunks, retries through disconnects, and
// commits. The low-level session calls (CreateUpload, AppendUpload,
// CommitUpload, ...) are exported for callers that manage their own pacing.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// DefaultUploadChunk is the default resumable-upload append size. Each
// chunk is one PUT: a disconnect costs at most the bytes of the chunk in
// flight, everything before it is already verified server-side.
const DefaultUploadChunk = 4 << 20

// WithUploadChunkSize sets the resumable-upload chunk size (default
// DefaultUploadChunk). Tests shrink it to exercise multi-chunk flows.
func WithUploadChunkSize(n int64) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.uploadChunk = n
		}
	}
}

// SeekablePart is one data part of a resumable upload. Resume needs random
// access: the client re-reads the local prefix to verify the server's
// running hash and seeks past what the server already holds.
type SeekablePart struct {
	Field string
	R     io.ReadSeeker
}

// CreateUpload opens a resumable upload session for a named dataset.
func (c *Client) CreateUpload(ctx context.Context, name, family string) (UploadInfo, error) {
	var info UploadInfo
	err := c.do(ctx, http.MethodPost, "/api/v2/uploads", UploadCreateRequest{Name: name, Family: family}, &info)
	return info, err
}

// Uploads lists the daemon's open upload sessions, oldest first.
func (c *Client) Uploads(ctx context.Context) ([]UploadInfo, error) {
	var list UploadList
	err := c.do(ctx, http.MethodGet, "/api/v2/uploads", nil, &list)
	return list.Uploads, err
}

// Upload fetches one session's state: per-part spooled size and running
// hash — the resume points.
func (c *Client) Upload(ctx context.Context, id string) (UploadInfo, error) {
	var info UploadInfo
	err := c.do(ctx, http.MethodGet, "/api/v2/uploads/"+url.PathEscape(id), nil, &info)
	return info, err
}

// AbortUpload discards a session and its server-side spools.
func (c *Client) AbortUpload(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/api/v2/uploads/"+url.PathEscape(id), nil, nil)
}

// AppendUpload streams one chunk onto a part at the given offset, which
// must equal the part's current spooled size. Returns the part's new state.
func (c *Client) AppendUpload(ctx context.Context, id, field string, offset int64, r io.Reader) (UploadPartInfo, error) {
	path := fmt.Sprintf("/api/v2/uploads/%s?part=%s&offset=%d", url.PathEscape(id), url.QueryEscape(field), offset)
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base+path, r)
	if err != nil {
		return UploadPartInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return UploadPartInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return UploadPartInfo{}, decodeError(http.MethodPut, path, resp.StatusCode, resp.Body)
	}
	var info UploadPartInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// CommitUpload promotes a complete session into the dataset registry.
func (c *Client) CommitUpload(ctx context.Context, id string) (DatasetInfo, error) {
	var info DatasetInfo
	err := c.do(ctx, http.MethodPost, "/api/v2/uploads/"+url.PathEscape(id)+"/commit", nil, &info)
	return info, err
}

// uploadMaxRetries bounds resume attempts that make no progress; a retry
// after any forward progress resets the budget.
const uploadMaxRetries = 4

// UploadDatasetResumable uploads a dataset through the resumable session
// API, surviving disconnects without re-sending verified bytes. If the
// daemon already holds an open session for the same name and family (a
// previous invocation died), the upload resumes it: each part's local
// prefix is re-read and hashed against the server's running digest, and
// only the bytes past the verified offset travel. A prefix mismatch (the
// local file changed) discards the stale session and starts clean.
func (c *Client) UploadDatasetResumable(ctx context.Context, name, family string, parts ...SeekablePart) (DatasetInfo, error) {
	sess, err := c.findOrCreateUpload(ctx, name, family)
	if err != nil {
		return DatasetInfo{}, err
	}
	retries := 0
	for {
		progressed, err := c.pushParts(ctx, sess, parts)
		if err == nil {
			break
		}
		if err == errUploadDiverged {
			// The server's spool is a prefix of something else (the local
			// file changed since the interrupted run). Resume is impossible;
			// replace the session and send from the start.
			_ = c.AbortUpload(ctx, sess.ID)
			if sess, err = c.CreateUpload(ctx, name, family); err != nil {
				return DatasetInfo{}, err
			}
			continue
		}
		if ctx.Err() != nil {
			return DatasetInfo{}, err
		}
		if progressed {
			retries = 0
		} else if retries++; retries > uploadMaxRetries {
			return DatasetInfo{}, err
		}
		// Refresh the resume points and go again.
		refreshed, gerr := c.Upload(ctx, sess.ID)
		if gerr != nil {
			return DatasetInfo{}, fmt.Errorf("resuming upload %s: %w", sess.ID, err)
		}
		sess = refreshed
	}
	return c.CommitUpload(ctx, sess.ID)
}

// errUploadDiverged reports a server spool that is not a prefix of the
// local part.
var errUploadDiverged = fmt.Errorf("rpc: upload session diverged from local data")

// findOrCreateUpload resumes an open session with the same name and family
// if the daemon has one, else opens a fresh session.
func (c *Client) findOrCreateUpload(ctx context.Context, name, family string) (UploadInfo, error) {
	open, err := c.Uploads(ctx)
	if err != nil {
		return UploadInfo{}, err
	}
	for _, u := range open {
		if u.Name == name && u.Family == family {
			return u, nil
		}
	}
	return c.CreateUpload(ctx, name, family)
}

// pushParts appends every part's unsent remainder. It reports whether any
// bytes were accepted this pass, so the caller can distinguish a connection
// that is making progress from one that is stuck.
func (c *Client) pushParts(ctx context.Context, sess UploadInfo, parts []SeekablePart) (progressed bool, err error) {
	remote := make(map[string]UploadPartInfo, len(sess.Parts))
	for _, p := range sess.Parts {
		remote[p.Field] = p
	}
	for _, part := range parts {
		total, err := part.R.Seek(0, io.SeekEnd)
		if err != nil {
			return progressed, err
		}
		offset := int64(0)
		if have, ok := remote[part.Field]; ok && have.Size > 0 {
			// Verify the server's spool is our prefix — by reading locally
			// and comparing digests, never by sending bytes.
			if have.Size > total {
				return progressed, errUploadDiverged
			}
			if _, err := part.R.Seek(0, io.SeekStart); err != nil {
				return progressed, err
			}
			h := sha256.New()
			if _, err := io.CopyN(h, part.R, have.Size); err != nil {
				return progressed, err
			}
			if hex.EncodeToString(h.Sum(nil)) != have.SHA256 {
				return progressed, errUploadDiverged
			}
			offset = have.Size
		}
		if _, err := part.R.Seek(offset, io.SeekStart); err != nil {
			return progressed, err
		}
		for offset < total {
			n := min(c.chunkSize(), total-offset)
			info, err := c.AppendUpload(ctx, sess.ID, part.Field, offset, io.LimitReader(part.R, n))
			if err != nil {
				return progressed, err
			}
			if info.Size > offset {
				progressed = true
			}
			offset = info.Size
			if _, err := part.R.Seek(offset, io.SeekStart); err != nil {
				return progressed, err
			}
		}
	}
	return progressed, nil
}

func (c *Client) chunkSize() int64 {
	if c.uploadChunk > 0 {
		return c.uploadChunk
	}
	return DefaultUploadChunk
}
