package rpc

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/registry"
)

// featureRows builds a feature-table body of n rows (~16 bytes each).
func featureRows(n int) []byte {
	var b bytes.Buffer
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "gene%06d %d.5\n", i, i%97)
	}
	return b.Bytes()
}

// sentChunk records one append PUT as the transport saw it: the offset the
// client claimed, how many body bytes actually left the client, and whether
// this attempt was deliberately killed mid-body.
type sentChunk struct {
	offset int64
	read   int64
	killed bool
}

// chopTransport simulates disconnects: the first `kills` upload-append
// bodies are severed after killAfter bytes. Every append is recorded so the
// test can prove which byte ranges ever traveled.
type chopTransport struct {
	base      http.RoundTripper
	mu        sync.Mutex
	kills     int
	killAfter int64
	sent      []*sentChunk
}

func (t *chopTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Method != http.MethodPut || !strings.Contains(req.URL.Path, "/api/v2/uploads/") {
		return t.base.RoundTrip(req)
	}
	offset, _ := strconv.ParseInt(req.URL.Query().Get("offset"), 10, 64)
	t.mu.Lock()
	rec := &sentChunk{offset: offset, killed: t.kills > 0}
	if rec.killed {
		t.kills--
	}
	t.sent = append(t.sent, rec)
	t.mu.Unlock()
	req.Body = &chopBody{r: req.Body, t: t, rec: rec}
	return t.base.RoundTrip(req)
}

type chopBody struct {
	r   io.ReadCloser
	t   *chopTransport
	rec *sentChunk
}

func (b *chopBody) Read(p []byte) (int, error) {
	b.t.mu.Lock()
	read := b.rec.read
	b.t.mu.Unlock()
	if b.rec.killed {
		if read >= b.t.killAfter {
			return 0, errors.New("simulated disconnect")
		}
		if rem := b.t.killAfter - read; int64(len(p)) > rem {
			p = p[:rem]
		}
	}
	n, err := b.r.Read(p)
	b.t.mu.Lock()
	b.rec.read += int64(n)
	b.t.mu.Unlock()
	return n, err
}

func (b *chopBody) Close() error { return b.r.Close() }

// TestResumableUploadNeverResendsVerifiedBytes interrupts a resumable
// upload mid-chunk and proves the retry resumes from the server's verified
// offset: every byte below it travels exactly once, and the committed
// dataset hashes identically to the local data.
func TestResumableUploadNeverResendsVerifiedBytes(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 2})
	s := NewServerOptions(p, ServerOptions{Executors: 1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })

	// 64 KiB chunks; the first append is severed after 40 KiB.
	chop := &chopTransport{base: http.DefaultTransport, kills: 1, killAfter: 40 << 10}
	c := NewClient(ts.URL,
		WithHTTPClient(&http.Client{Transport: chop}),
		WithUploadChunkSize(64<<10))
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	body := featureRows(20000) // ~312 KiB, several chunks
	meta, err := c.UploadDatasetResumable(ctx, "big-rows", "feature-table",
		SeekablePart{Field: "data", R: bytes.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(body)
	if meta.Hash != hex.EncodeToString(sum[:]) {
		t.Fatalf("committed hash %s != local hash", meta.Hash)
	}
	if meta.Records != 20000 {
		t.Fatalf("records = %d, want 20000", meta.Records)
	}

	chop.mu.Lock()
	sent := chop.sent
	chop.mu.Unlock()
	if len(sent) < 2 || !sent[0].killed {
		t.Fatalf("expected the first of several appends to be killed; sent = %d", len(sent))
	}
	// The resume point is where the server said it was — necessarily within
	// what the first, severed append delivered.
	resumeAt := sent[1].offset
	if resumeAt > sent[0].read {
		t.Fatalf("resumed at %d, beyond the %d bytes that left the client", resumeAt, sent[0].read)
	}
	// No byte below the verified offset ever travels again, and the
	// successful appends tile [resumeAt, len(body)) exactly once.
	ok := sent[1:]
	sort.Slice(ok, func(i, j int) bool { return ok[i].offset < ok[j].offset })
	at := resumeAt
	for _, ch := range ok {
		if ch.offset < resumeAt {
			t.Fatalf("append at offset %d re-sent bytes below the verified offset %d", ch.offset, resumeAt)
		}
		if ch.offset != at {
			t.Fatalf("append at offset %d, want %d (overlap or gap)", ch.offset, at)
		}
		at = ch.offset + ch.read
	}
	if at != int64(len(body)) {
		t.Fatalf("appends covered up to %d, want %d", at, len(body))
	}
	// The session is gone after commit.
	if open, err := c.Uploads(ctx); err != nil || len(open) != 0 {
		t.Fatalf("open sessions after commit = %v (%v)", open, err)
	}
}

// TestDurableServerRestartRecovery is the tentpole e2e: with -data-dir
// semantics (core.Options.DataDir), uploaded datasets and accumulated
// knowledge-base telemetry survive a full server restart; a dataset larger
// than the resident budget spills to disk, stays resolvable by content
// hash, and still runs.
func TestDurableServerRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	open := func() (*Client, *Server, *httptest.Server, *core.Platform) {
		p, err := core.OpenPlatform(core.Options{
			Workers: 2,
			DataDir: dir,
			// A resident budget far below the dataset: every resolve
			// rematerializes from disk and every commit spills.
			Registry: registry.Options{MaxBytes: 1 << 10},
			Logf:     t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := NewServerOptions(p, ServerOptions{Executors: 1})
		ts := httptest.NewServer(s.Handler())
		return NewClient(ts.URL), s, ts, p
	}
	c, s, ts, p := open()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	body := featureRows(4000) // ~62 KiB >> the 1 KiB resident budget
	ds, err := c.UploadDataset(ctx, "expr", "feature-table",
		UploadPart{Field: "data", R: bytes.NewReader(body)})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Bytes <= 1<<10 {
		t.Fatalf("test needs an over-budget dataset, got %d bytes", ds.Bytes)
	}
	// Over budget and unpinned ⇒ spilled: the payload lives on disk, not
	// in the heap.
	if resident, spilled, _ := p.Datasets().Resident(); resident != 0 || spilled == 0 {
		t.Fatalf("resident=%d spilled=%d, want 0 resident", resident, spilled)
	}

	// Run a job over the spilled dataset: it rematerializes for the run
	// (pinned), then spills again when the pin drops.
	job, err := c.CreateJob(ctx, SubmitJobRequest{Dataset: "expr"})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("job over spilled dataset: %+v", final.Error)
	}
	if resident, _, remats := p.Datasets().Resident(); resident != 0 || remats == 0 {
		t.Fatalf("post-run resident=%d remats=%d, want 0 resident after unpin", resident, remats)
	}

	// Capture the telemetry the run folded, then "kill" the daemon.
	p.Flush()
	runsBefore := p.KB().RunCount()
	if runsBefore == 0 {
		t.Fatal("run logged no telemetry")
	}
	ts.Close()
	s.Close()
	p.Close()

	// Restart over the same data directory.
	c2, s2, ts2, p2 := open()
	t.Cleanup(func() { ts2.Close(); s2.Close(); p2.Close() })
	if got := p2.KB().RunCount(); got != runsBefore {
		t.Fatalf("RunCount after restart = %d, want %d", got, runsBefore)
	}
	// The dataset survived and resolves by id, name and content hash.
	for _, key := range []string{ds.ID, "expr", "sha256:" + ds.Hash} {
		got, err := c2.Dataset(ctx, key)
		if err != nil {
			t.Fatalf("Dataset(%q) after restart: %v", key, err)
		}
		if got.ID != ds.ID || got.Records != 4000 || got.Hash != ds.Hash {
			t.Fatalf("Dataset(%q) = %+v, want %+v", key, got, ds)
		}
	}
	// And it still runs — rematerialized from blobs written by the previous
	// process.
	job2, err := c2.CreateJob(ctx, SubmitJobRequest{Dataset: "sha256:" + ds.Hash})
	if err != nil {
		t.Fatal(err)
	}
	final2, err := c2.Watch(ctx, job2.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final2.State != StateDone {
		t.Fatalf("post-restart job: %+v", final2.Error)
	}
	if p2.KB().RunCount() <= runsBefore {
		t.Fatal("post-restart run folded no telemetry")
	}
}
