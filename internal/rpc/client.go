package rpc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client talks to a scand instance.
type Client struct {
	base string
	http *http.Client
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:7390").
func NewClient(base string) *Client {
	return &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: 5 * time.Minute},
	}
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		var e errorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("rpc: %s %s: %s", method, path, e.Error)
		}
		return fmt.Errorf("rpc: %s %s: HTTP %d", method, path, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit enqueues a job and returns its initial record.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &info)
	return info, err
}

// Job fetches one job's record.
func (c *Client) Job(ctx context.Context, id int) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/jobs/%d", id), nil, &info)
	return info, err
}

// Jobs lists all jobs in submission order.
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out)
	return out, err
}

// Wait polls until the job leaves the pending/running states or the
// context expires.
func (c *Client) Wait(ctx context.Context, id int, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State == StateDone || info.State == StateFailed {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Workflows lists the daemon's catalogued workflows and whether each is
// runnable on its engine.
func (c *Client) Workflows(ctx context.Context) ([]WorkflowInfo, error) {
	var out []WorkflowInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/workflows", nil, &out)
	return out, err
}

// Query runs a SPARQL query on the daemon's knowledge base.
func (c *Client) Query(ctx context.Context, query string) (QueryResponse, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/kb/query", QueryRequest{Query: query}, &out)
	return out, err
}

// Profiles lists the knowledge base's application profiles.
func (c *Client) Profiles(ctx context.Context) ([]ProfileInfo, error) {
	var out []ProfileInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/kb/profiles", nil, &out)
	return out, err
}

// Export fetches the daemon's knowledge base as text in the given format
// ("turtle" or "rdfxml").
func (c *Client) Export(ctx context.Context, format string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/api/v1/kb/export?format="+format, nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode >= 400 {
		return "", fmt.Errorf("rpc: export: HTTP %d: %s", resp.StatusCode, raw)
	}
	return string(raw), nil
}

// Status fetches daemon statistics.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/status", nil, &out)
	return out, err
}
