package rpc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"scan/internal/fleet"
)

// DefaultTimeout bounds one unary HTTP call (see WithTimeout). The
// streaming Watch path is exempt: its lifetime is governed by the caller's
// context, and an overall client timeout would sever long event streams.
const DefaultTimeout = 5 * time.Minute

// Client talks to a scand instance, preferring the v2 API for job
// operations; the v1 knowledge-base and catalogue endpoints are shared by
// both surfaces.
type Client struct {
	base   string
	http   *http.Client // unary calls, bounded by Timeout
	stream *http.Client // Watch: same transport, no overall timeout
	// uploadChunk is the resumable-upload append size (0 means
	// DefaultUploadChunk; see WithUploadChunkSize).
	uploadChunk int64
	// apiKey is sent as a Bearer token on every request when set (see
	// WithAPIKey).
	apiKey string
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the overall HTTP timeout for unary calls (default
// DefaultTimeout; 0 disables). Watch is never subject to it.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.http.Timeout = d }
}

// WithHTTPClient replaces the underlying HTTP client (custom transports,
// proxies, test doubles). Its Timeout applies to unary calls only; Watch
// uses a copy with the timeout stripped.
func WithHTTPClient(h *http.Client) ClientOption {
	return func(c *Client) { c.http = h }
}

// WithAPIKey authenticates every request with the given tenant API key
// ("Authorization: Bearer <key>"), for daemons running with -tenants.
func WithAPIKey(key string) ClientOption {
	return func(c *Client) { c.apiKey = key }
}

// authorize attaches the client's API key, when one is configured.
func (c *Client) authorize(req *http.Request) {
	if c.apiKey != "" {
		req.Header.Set("Authorization", "Bearer "+c.apiKey)
	}
}

// NewClient returns a client for the given base URL (e.g.
// "http://localhost:7390").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base: strings.TrimRight(base, "/"),
		http: &http.Client{Timeout: DefaultTimeout},
	}
	for _, o := range opts {
		o(c)
	}
	sc := *c.http
	sc.Timeout = 0
	c.stream = &sc
	return c
}

// decodeError turns an HTTP error response into a Go error. Both envelope
// generations are understood — v1's {"error":"<string>"} and v2's
// {"error":{"code","message"}} (surfaced as a wrapped *APIError so callers
// can switch on the code) — and non-JSON bodies degrade to the status code.
func decodeError(method, path string, status int, body io.Reader) error {
	raw, _ := io.ReadAll(io.LimitReader(body, 1<<20))
	var probe struct {
		Error json.RawMessage `json:"error"`
	}
	if json.Unmarshal(raw, &probe) == nil && len(probe.Error) > 0 {
		var msg string
		if json.Unmarshal(probe.Error, &msg) == nil && msg != "" {
			return fmt.Errorf("rpc: %s %s: %s", method, path, msg)
		}
		var ae APIError
		if json.Unmarshal(probe.Error, &ae) == nil && ae.Message != "" {
			return fmt.Errorf("rpc: %s %s: %w", method, path, &ae)
		}
	}
	return fmt.Errorf("rpc: %s %s: HTTP %d", method, path, status)
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body *bytes.Reader
	if in != nil {
		raw, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(raw)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(method, path, resp.StatusCode, resp.Body)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// ---------------------------------------------------------------------------
// v2 job API
// ---------------------------------------------------------------------------

// CreateJob submits a v2 job (synthetic spec or inline FASTQ) and returns
// its initial resource.
func (c *Client) CreateJob(ctx context.Context, req SubmitJobRequest) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodPost, "/api/v2/jobs", req, &job)
	return job, err
}

// GetJob fetches one job resource.
func (c *Client) GetJob(ctx context.Context, id int) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v2/jobs/%d", id), nil, &job)
	return job, err
}

// Cancel asks the daemon to cancel a job. A pending job is canceled
// immediately; a running job has its context cancelled and reaches the
// canceled state asynchronously (watch or poll for the terminal state). The
// returned Job is the resource at the moment of the request.
func (c *Client) Cancel(ctx context.Context, id int) (Job, error) {
	var job Job
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/api/v2/jobs/%d", id), nil, &job)
	return job, err
}

// ListJobs fetches one page of jobs in submission order. Iterate by feeding
// JobPage.NextPageToken back in via ListJobsOptions.PageToken until it
// comes back empty.
func (c *Client) ListJobs(ctx context.Context, opts ListJobsOptions) (JobPage, error) {
	q := url.Values{}
	if opts.State != "" {
		q.Set("state", string(opts.State))
	}
	if opts.Workflow != "" {
		q.Set("workflow", opts.Workflow)
	}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.PageToken != "" {
		q.Set("page_token", opts.PageToken)
	}
	path := "/api/v2/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page JobPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Watch subscribes to a job's SSE event stream and calls fn (when non-nil)
// for every event — the full history replays first, so no transition is
// missed however late the watch starts. It returns the final job resource
// once the job reaches a terminal state, or ctx's error if the context ends
// first. Unlike polling Wait, Watch holds one connection and receives
// per-stage progress as it happens.
func (c *Client) Watch(ctx context.Context, id int, fn func(JobEvent)) (Job, error) {
	path := fmt.Sprintf("/api/v2/jobs/%d/events", id)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return Job{}, err
	}
	req.Header.Set("Accept", "text/event-stream")
	c.authorize(req)
	resp, err := c.stream.Do(req)
	if err != nil {
		return Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Job{}, decodeError(http.MethodGet, path, resp.StatusCode, resp.Body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var data bytes.Buffer
	for sc.Scan() {
		line := sc.Text()
		if after, ok := strings.CutPrefix(line, "data:"); ok {
			data.WriteString(strings.TrimPrefix(after, " "))
			continue
		}
		if line != "" || data.Len() == 0 {
			continue // event/id/comment lines; the JSON payload carries everything
		}
		var ev JobEvent
		if err := json.Unmarshal(data.Bytes(), &ev); err != nil {
			return Job{}, fmt.Errorf("rpc: watch job %d: bad event: %w", id, err)
		}
		data.Reset()
		if fn != nil {
			fn(ev)
		}
		if ev.Type == EventState && ev.State.Terminal() {
			if ev.Job != nil {
				return *ev.Job, nil
			}
			return c.GetJob(ctx, id)
		}
	}
	if ctx.Err() != nil {
		return Job{}, ctx.Err()
	}
	if err := sc.Err(); err != nil {
		return Job{}, err
	}
	return Job{}, fmt.Errorf("rpc: watch job %d: stream ended before a terminal state", id)
}

// ---------------------------------------------------------------------------
// v2 dataset API
// ---------------------------------------------------------------------------

// UploadPart is one data part of a dataset upload. Fields: "data" for the
// fastq, tiff, feature-table and reference families ("reference" optionally
// alongside a fastq "data" part), "peptides" + "spectra" for mgf.
type UploadPart struct {
	Field string
	R     io.Reader
}

// UploadDataset streams a dataset into the daemon's registry as
// multipart/form-data and returns the stored resource. The parts stream
// straight from their readers through the request body — nothing is
// buffered client-side — matching the daemon's record-by-record decode.
func (c *Client) UploadDataset(ctx context.Context, name, family string, parts ...UploadPart) (DatasetInfo, error) {
	pr, pw := io.Pipe()
	mw := multipart.NewWriter(pw)
	go func() {
		err := func() error {
			// Metadata fields first: the daemon needs name and family before
			// it can pick the part decoder.
			if err := mw.WriteField("name", name); err != nil {
				return err
			}
			if err := mw.WriteField("family", family); err != nil {
				return err
			}
			for _, p := range parts {
				w, err := mw.CreateFormFile(p.Field, p.Field)
				if err != nil {
					return err
				}
				if _, err := io.Copy(w, p.R); err != nil {
					return err
				}
			}
			return mw.Close()
		}()
		pw.CloseWithError(err)
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/api/v2/datasets", pr)
	if err != nil {
		return DatasetInfo{}, err
	}
	req.Header.Set("Content-Type", mw.FormDataContentType())
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return DatasetInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return DatasetInfo{}, decodeError(http.MethodPost, "/api/v2/datasets", resp.StatusCode, resp.Body)
	}
	var info DatasetInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// Datasets lists every registered dataset, oldest first.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var list DatasetList
	err := c.do(ctx, http.MethodGet, "/api/v2/datasets", nil, &list)
	return list.Datasets, err
}

// Dataset fetches one dataset's metadata by id or name.
func (c *Client) Dataset(ctx context.Context, idOrName string) (DatasetInfo, error) {
	var info DatasetInfo
	err := c.do(ctx, http.MethodGet, "/api/v2/datasets/"+url.PathEscape(idOrName), nil, &info)
	return info, err
}

// DeleteDataset removes a dataset by id or name, returning its final
// metadata. Datasets referenced by unfinished jobs conflict.
func (c *Client) DeleteDataset(ctx context.Context, idOrName string) (DatasetInfo, error) {
	var info DatasetInfo
	err := c.do(ctx, http.MethodDelete, "/api/v2/datasets/"+url.PathEscape(idOrName), nil, &info)
	return info, err
}

// Workers fetches the fleet roster: every registered worker node with its
// engagement state and shard counts, plus queue depth and fleet metrics.
func (c *Client) Workers(ctx context.Context) (fleet.Roster, error) {
	var roster fleet.Roster
	err := c.do(ctx, http.MethodGet, "/api/v2/workers", nil, &roster)
	return roster, err
}

// ---------------------------------------------------------------------------
// v1 API (kept for old deployments; job methods return the flat JobInfo)
// ---------------------------------------------------------------------------

// Submit enqueues a job via the v1 API and returns its initial record.
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodPost, "/api/v1/jobs", req, &info)
	return info, err
}

// Job fetches one job's v1 record.
func (c *Client) Job(ctx context.Context, id int) (JobInfo, error) {
	var info JobInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/api/v1/jobs/%d", id), nil, &info)
	return info, err
}

// Jobs lists all jobs in submission order via the v1 API (unpaginated; use
// ListJobs for bounded pages).
func (c *Client) Jobs(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/jobs", nil, &out)
	return out, err
}

// Wait polls until the job leaves the pending/running states or the
// context expires. Prefer Watch, which streams instead of polling.
func (c *Client) Wait(ctx context.Context, id int, poll time.Duration) (JobInfo, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return info, err
		}
		if info.State.Terminal() {
			return info, nil
		}
		select {
		case <-ctx.Done():
			return info, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// Workflows lists the daemon's catalogued workflows and whether each is
// runnable on its engine.
func (c *Client) Workflows(ctx context.Context) ([]WorkflowInfo, error) {
	var out []WorkflowInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/workflows", nil, &out)
	return out, err
}

// Query runs a SPARQL query on the daemon's knowledge base.
func (c *Client) Query(ctx context.Context, query string) (QueryResponse, error) {
	var out QueryResponse
	err := c.do(ctx, http.MethodPost, "/api/v1/kb/query", QueryRequest{Query: query}, &out)
	return out, err
}

// Profiles lists the knowledge base's application profiles.
func (c *Client) Profiles(ctx context.Context) ([]ProfileInfo, error) {
	var out []ProfileInfo
	err := c.do(ctx, http.MethodGet, "/api/v1/kb/profiles", nil, &out)
	return out, err
}

// Export fetches the daemon's knowledge base as text in the given format
// ("turtle" or "rdfxml").
func (c *Client) Export(ctx context.Context, format string) (string, error) {
	path := "/api/v1/kb/export?format=" + url.QueryEscape(format)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return "", err
	}
	c.authorize(req)
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return "", decodeError(http.MethodGet, "/api/v1/kb/export", resp.StatusCode, resp.Body)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), nil
}

// Status fetches daemon statistics.
func (c *Client) Status(ctx context.Context) (StatusResponse, error) {
	var out StatusResponse
	err := c.do(ctx, http.MethodGet, "/api/v1/status", nil, &out)
	return out, err
}
