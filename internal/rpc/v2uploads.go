package rpc

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"scan/internal/registry"
)

// The /api/v2/uploads handlers: resumable dataset uploads. A session is
// opened with the dataset's name and family, parts are appended in offset-
// verified chunks (PUT), and a commit promotes the session into the dataset
// registry atomically. Interrupted appends keep every byte that arrived;
// the session resource reports each part's size and running SHA-256 so a
// resuming client verifies its prefix and continues without re-sending.
//
// Sessions are process-local: a daemon restart discards them (committed
// datasets are what the durable registry preserves).

// maxUploadCreateBody bounds the session-create JSON body.
const maxUploadCreateBody = 4 << 10

// uploadPartLimits returns the decode caps for one session part — the same
// per-family caps the one-shot dataset POST enforces.
func uploadPartLimits(family registry.Family, field string) registry.Limits {
	switch {
	case family == registry.FASTQ && field == "data":
		return uploadLimits(maxUploadReads)
	case family == registry.FASTQ && field == "reference",
		family == registry.Reference && field == "data":
		return uploadLimits(1)
	case family == registry.MGF && field == "peptides":
		return uploadLimits(maxUploadPeptides)
	case family == registry.MGF && field == "spectra":
		return uploadLimits(maxUploadSpectra)
	case family == registry.TIFF && field == "data":
		return uploadLimits(maxUploadFrames)
	default:
		return uploadLimits(maxUploadRows)
	}
}

func uploadInfo(st registry.UploadStatus) UploadInfo {
	info := UploadInfo{
		ID:      st.ID,
		Name:    st.Name,
		Family:  string(st.Family),
		Created: st.Created,
		Parts:   []UploadPartInfo{},
	}
	for _, p := range st.Parts {
		info.Parts = append(info.Parts, UploadPartInfo{Field: p.Field, Size: p.Size, SHA256: p.SHA256})
	}
	return info
}

// uploadsReady reports whether the session manager came up (its spool
// directory could fail to create); when it didn't, requests get a 503
// instead of a panic.
func (s *Server) uploadsReady(w http.ResponseWriter) bool {
	if s.uploads == nil {
		writeV2Error(w, http.StatusServiceUnavailable, CodeUnavailable, "upload spool unavailable")
		return false
	}
	return true
}

// handleV2Uploads routes the session collection: POST opens, GET lists.
func (s *Server) handleV2Uploads(w http.ResponseWriter, r *http.Request) {
	if !s.uploadsReady(w) {
		return
	}
	switch r.Method {
	case http.MethodPost:
		var req UploadCreateRequest
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxUploadCreateBody)).Decode(&req); err != nil {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "bad request body: %v", err)
			return
		}
		family, err := registry.ParseFamily(req.Family)
		if err != nil {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
			return
		}
		// The session will become a dataset; check the count quota at open
		// so a tenant at its limit learns immediately, not at commit.
		if !s.admitDatasetCount(w, requestTenant(r)) {
			return
		}
		u, err := s.uploads.Create(req.Name, family)
		switch {
		case errors.Is(err, registry.ErrDuplicateName):
			writeV2Error(w, http.StatusConflict, CodeConflict, "%v", err)
		case errors.Is(err, registry.ErrTooManyUploads):
			writeV2Error(w, http.StatusTooManyRequests, CodeUnavailable, "%v", err)
		case err != nil:
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		default:
			s.recordUploadOwner(u.Status().ID, requestTenant(r))
			writeJSON(w, http.StatusCreated, uploadInfo(u.Status()))
		}
	case http.MethodGet:
		list := UploadList{Uploads: []UploadInfo{}}
		for _, st := range s.uploads.List() {
			list.Uploads = append(list.Uploads, uploadInfo(st))
		}
		writeJSON(w, http.StatusOK, list)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET or POST only")
	}
}

// handleV2Upload routes one session: GET inspects, PUT appends a chunk,
// DELETE aborts, POST /commit promotes.
func (s *Server) handleV2Upload(w http.ResponseWriter, r *http.Request) {
	if !s.uploadsReady(w) {
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/v2/uploads/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "commit") {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "no such resource")
		return
	}
	u, err := s.uploads.Get(id)
	if err != nil {
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	}
	if sub == "commit" {
		if r.Method != http.MethodPost {
			writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "POST only")
			return
		}
		if !s.authorizeUpload(w, r, u.Status().ID) {
			return
		}
		s.commitUpload(w, r, u)
		return
	}
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, uploadInfo(u.Status()))
	case http.MethodPut:
		if !s.authorizeUpload(w, r, u.Status().ID) {
			return
		}
		s.appendUpload(w, r, u)
	case http.MethodDelete:
		if !s.authorizeUpload(w, r, u.Status().ID) {
			return
		}
		u.Abort()
		s.forgetUploadOwner(u.Status().ID)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeV2Error(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed, "GET, PUT, DELETE or POST commit only")
	}
}

// appendUpload spools one chunk: PUT /api/v2/uploads/{id}?part=F&offset=N.
// The offset must equal the part's spooled size; a mismatch is a 409 whose
// message carries the real offset, and the session GET reports it too. The
// response is the part's new status — size and running hash — whether or not
// the body arrived whole, so a client whose send died mid-chunk learns its
// resume point from the same response path.
func (s *Server) appendUpload(w http.ResponseWriter, r *http.Request, u *registry.UploadSession) {
	q := r.URL.Query()
	field := q.Get("part")
	if field == "" {
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "append needs a ?part= field name")
		return
	}
	offset := int64(0)
	if raw := q.Get("offset"); raw != "" {
		v, err := strconv.ParseInt(raw, 10, 64)
		if err != nil || v < 0 {
			writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "bad offset %q", raw)
			return
		}
		offset = v
	}
	_, err := u.Append(field, offset, r.Body)
	var offErr *registry.OffsetError
	switch {
	case errors.As(err, &offErr):
		writeV2Error(w, http.StatusConflict, CodeConflict, "%v", err)
		return
	case errors.Is(err, registry.ErrNoUpload):
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "%v", err)
		return
	case errors.Is(err, registry.ErrTooLarge):
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	case err != nil:
		// A mid-body read error: the spooled prefix is kept. Report the
		// failure; the part status rides along in the session resource.
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
		return
	}
	for _, p := range u.Status().Parts {
		if p.Field == field {
			writeJSON(w, http.StatusOK, UploadPartInfo{Field: p.Field, Size: p.Size, SHA256: p.SHA256})
			return
		}
	}
	writeV2Error(w, http.StatusInternalServerError, CodeInternal, "part %q vanished", field)
}

// commitUpload promotes the session into the registry. Validation failures
// (missing parts, undecodable payloads, name conflicts) leave the session
// open for inspection or abort; success and post-validation failures end it.
func (s *Server) commitUpload(w http.ResponseWriter, r *http.Request, u *registry.UploadSession) {
	id := u.Status().ID
	meta, err := u.Commit()
	switch {
	case errors.Is(err, registry.ErrNoUpload):
		writeV2Error(w, http.StatusNotFound, CodeNotFound, "%v", err)
	case errors.Is(err, registry.ErrDuplicateName):
		writeV2Error(w, http.StatusConflict, CodeConflict, "%v", err)
	case errors.Is(err, registry.ErrStoreFull):
		writeV2Error(w, http.StatusInsufficientStorage, CodeUnavailable, "%v", err)
	case err != nil:
		writeV2Error(w, http.StatusBadRequest, CodeInvalidArgument, "%v", err)
	default:
		s.forgetUploadOwner(id)
		if !s.settleDatasetQuota(w, requestTenant(r), meta.ID, meta.Bytes) {
			return
		}
		writeJSON(w, http.StatusCreated, datasetInfo(meta))
	}
}
