package rpc

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"scan/internal/core"
	"scan/internal/genomics"
	"scan/internal/workflow"
)

func testServerOptions(t *testing.T, p *core.Platform, opts ServerOptions) (*Client, *Server) {
	t.Helper()
	s := NewServerOptions(p, opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return NewClient(ts.URL), s
}

func smallSynthetic(seed int64) *SyntheticSpec {
	return &SyntheticSpec{ReferenceLength: 2000, Reads: 120, SNVs: 4, Seed: seed}
}

func TestV2SubmitWatchAndResult(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	job, err := c.CreateJob(ctx, SubmitJobRequest{
		Synthetic: &SyntheticSpec{ReferenceLength: 4000, Reads: 800, SNVs: 6, Seed: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StatePending || job.Workflow != core.VariantDetectionWorkflow || job.Source != SourceSynthetic {
		t.Fatalf("initial job = %+v", job)
	}

	var events []JobEvent
	final, err := c.Watch(ctx, job.ID, func(ev JobEvent) { events = append(events, ev) })
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("final state = %q (%+v)", final.State, final.Error)
	}
	r := final.Result
	if r == nil {
		t.Fatal("done job has no result")
	}
	if r.Mapped == 0 || r.TotalReads != 800 || r.Recovered < r.Planted-1 || r.ElapsedSec <= 0 {
		t.Fatalf("result = %+v", r)
	}
	// The structured result carries the full per-stage breakdown the
	// engine computed — all 8 catalogue stages, in order.
	if len(r.Stages) != 8 || r.Stages[0].Name != "Align" || r.Stages[0].Tool != "BWA" {
		t.Fatalf("stages = %+v", r.Stages)
	}
	// The align stage ran inside a pipelined segment and reports its
	// pipeline timings and record count on the wire.
	if !r.Stages[0].Streamed || r.Stages[0].Records != 800 {
		t.Fatalf("align breakdown = %+v, want streamed with 800 records", r.Stages[0])
	}
	if ov := r.Stages[0].Overlap; ov < 0 || ov > 1 {
		t.Fatalf("align overlap = %v", ov)
	}
	if final.Started == nil || final.Finished == nil || final.Finished.Before(*final.Started) {
		t.Fatalf("timestamps = %v %v", final.Started, final.Finished)
	}

	// The event stream replays the full lifecycle: pending, running, one
	// event per stage, then the terminal state carrying the job resource.
	if len(events) != 2+8+1 {
		t.Fatalf("events = %d, want 11: %+v", len(events), events)
	}
	if events[0].State != StatePending || events[1].State != StateRunning {
		t.Fatalf("lifecycle head = %+v", events[:2])
	}
	for i, ev := range events[2:10] {
		if ev.Type != EventStage || ev.Stage == nil {
			t.Fatalf("event %d = %+v, want stage event", i+2, ev)
		}
		if ev.Stage.Name != r.Stages[i].Name {
			t.Fatalf("stage event %d = %q, want %q", i+2, ev.Stage.Name, r.Stages[i].Name)
		}
	}
	last := events[10]
	if last.Type != EventState || last.State != StateDone || last.Job == nil || last.Job.Result == nil {
		t.Fatalf("terminal event = %+v", last)
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
}

func TestV2InlineSubmission(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Build a real dataset client-side — the daemon aligns what it is
	// given instead of synthesising its own.
	rng := rand.New(rand.NewSource(17))
	ref := genomics.GenerateReference(rng, "chr7", 3000)
	reads, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{
		Count: 400, Length: 80, ErrorRate: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	inline := &InlineDataset{Reference: InlineSequence{Name: "chr7", Sequence: string(ref.Seq)}}
	for i, r := range reads {
		ir := InlineRead{Sequence: string(r.Seq)}
		if i%2 == 0 {
			ir.ID = r.ID
			ir.Quality = string(r.Qual)
		}
		inline.Reads = append(inline.Reads, ir)
	}
	job, err := c.CreateJob(ctx, SubmitJobRequest{Inline: inline})
	if err != nil {
		t.Fatal(err)
	}
	if job.Source != SourceInline {
		t.Fatalf("source = %q", job.Source)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone {
		t.Fatalf("state = %q (%+v)", final.State, final.Error)
	}
	if final.Result.TotalReads != 400 || final.Result.Mapped < 380 {
		t.Fatalf("result = %+v", final.Result)
	}
	// No planted truth accompanies inline data: recovery must report 0/0,
	// not score against a synthetic genome that never existed.
	if final.Result.Planted != 0 || final.Result.Recovered != 0 {
		t.Fatalf("inline job scored planted SNVs: %+v", final.Result)
	}
}

// blockingExec parks stage executions until their run context is cancelled,
// reporting each start — the controlled stand-in for a long analysis.
type blockingExec struct {
	started chan struct{}
}

func (b *blockingExec) Execute(ctx context.Context, env *workflow.StageEnv, in *workflow.Dataset) (*workflow.Dataset, error) {
	b.started <- struct{}{}
	<-ctx.Done()
	return nil, ctx.Err()
}

// blockingPlatform is a platform whose catalogue has a "block-forever"
// FASTQ workflow driven by blockingExec.
func blockingPlatform(t *testing.T) (*core.Platform, *blockingExec) {
	t.Helper()
	catalogue := workflow.DefaultCatalogue()
	if err := catalogue.Register(workflow.Workflow{
		Name:   "block-forever",
		Family: "genomic",
		Stages: []workflow.Stage{
			{Name: "block", Tool: "blocktool", Consumes: workflow.FASTQ, Produces: workflow.VCF},
		},
	}); err != nil {
		t.Fatal(err)
	}
	execs := workflow.DefaultExecutors()
	block := &blockingExec{started: make(chan struct{}, 8)}
	if err := execs.Register("blocktool", "", block); err != nil {
		t.Fatal(err)
	}
	return core.NewPlatform(core.Options{Workers: 2, Catalogue: catalogue, Executors: execs}), block
}

// TestV2CancelObservablyStopsRun is the ctx-propagation acceptance test:
// DELETE on a *running* job cancels the per-job context threaded through
// Server.runJob → Platform.RunWorkflow, unblocking the in-flight stage and
// driving the job to the canceled state. A queued job canceled before it
// starts never runs at all.
func TestV2CancelObservablyStopsRun(t *testing.T) {
	p, block := blockingPlatform(t)
	c, _ := testServerOptions(t, p, ServerOptions{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	running, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(1)})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(2)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-block.started: // the first job's stage is now in flight
	case <-ctx.Done():
		t.Fatal("stage never started")
	}

	// Filters see the live states: one running, one pending.
	page, err := c.ListJobs(ctx, ListJobsOptions{State: StateRunning})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != running.ID {
		t.Fatalf("running filter = %+v", page.Jobs)
	}

	// Cancel the queued job: immediate, terminal, and it must never run.
	got, err := c.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled || got.Error == nil || got.Error.Code != CodeCanceled {
		t.Fatalf("queued cancel = %+v", got)
	}

	// Cancel the running job: the request is accepted while cancellation
	// propagates, then the watcher sees the canceled terminal state.
	got, err = c.Cancel(ctx, running.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateRunning {
		t.Fatalf("running cancel snapshot = %+v", got)
	}
	final, err := c.Watch(ctx, running.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCanceled || final.Error.Code != CodeCanceled {
		t.Fatalf("final = %+v", final)
	}
	// Idempotent: canceling a canceled job succeeds without a new state.
	if got, err = c.Cancel(ctx, running.ID); err != nil || got.State != StateCanceled {
		t.Fatalf("re-cancel = %+v, %v", got, err)
	}
	// The queued job was skipped, not executed: exactly one stage start.
	select {
	case <-block.started:
		t.Fatal("canceled queued job still ran")
	default:
	}
	// v1 renders both as failed — its state enum predates cancellation.
	info, err := c.Job(ctx, queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateFailed || !strings.Contains(info.Error, "canceled") {
		t.Fatalf("v1 view of canceled job = %+v", info)
	}
}

func TestV2CancelErrors(t *testing.T) {
	c, _ := testServer(t)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// Unknown job: machine-readable not_found.
	_, err := c.Cancel(ctx, 999)
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("cancel 999: err = %v, want APIError{not_found}", err)
	}
	// Finished job: conflict.
	job, err := c.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(5)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err = c.Watch(ctx, job.ID, nil); err != nil {
		t.Fatal(err)
	}
	_, err = c.Cancel(ctx, job.ID)
	if !errors.As(err, &ae) || ae.Code != CodeConflict {
		t.Fatalf("cancel done job: err = %v, want APIError{conflict}", err)
	}
}

// TestV2PaginationPastRetention drives the store past its retention bound:
// old terminal jobs are evicted (the v1 prototype's memory leak), listing
// pages stay consistent, and the lifetime counters in status survive.
func TestV2PaginationPastRetention(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 2})
	c, s := testServerOptions(t, p, ServerOptions{Executors: 2, Retention: 3})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	const total = 8
	ids := make([]int, 0, total)
	for i := 0; i < total; i++ {
		job, err := c.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(int64(i))})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, job.ID)
	}
	for {
		st, err := c.Status(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed+st.Failed == total {
			if st.Completed != total {
				t.Fatalf("status = %+v, want %d completed", st, total)
			}
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("jobs never finished: %+v", st)
		case <-time.After(20 * time.Millisecond):
		}
	}

	// The store is bounded: only the newest `retention` terminal jobs
	// remain, however many were submitted.
	s.mu.Lock()
	stored := len(s.jobs)
	s.mu.Unlock()
	if stored != 3 {
		t.Fatalf("job store holds %d records, want retention bound 3", stored)
	}

	// Page through everything that remains, 2 at a time.
	var listed []int
	tok := ""
	pages := 0
	for {
		page, err := c.ListJobs(ctx, ListJobsOptions{Limit: 2, PageToken: tok})
		if err != nil {
			t.Fatal(err)
		}
		for _, j := range page.Jobs {
			listed = append(listed, j.ID)
			if j.State != StateDone {
				t.Fatalf("listed job %d in state %q", j.ID, j.State)
			}
		}
		pages++
		if page.NextPageToken == "" {
			break
		}
		tok = page.NextPageToken
	}
	if len(listed) != 3 || pages < 2 {
		t.Fatalf("paged listing = %v over %d pages", listed, pages)
	}
	// Ascending submission order, and precisely the newest survivors.
	for i, id := range listed {
		if id != ids[total-3+i] {
			t.Fatalf("listed = %v, want %v", listed, ids[total-3:])
		}
	}
	// Evicted jobs are gone from both API views.
	_, err := c.GetJob(ctx, ids[0])
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeNotFound {
		t.Fatalf("evicted job fetch: err = %v, want not_found", err)
	}
}

func TestV2SubmitValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	inlineOK := func() *InlineDataset {
		return &InlineDataset{
			Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
			Reads:     []InlineRead{{Sequence: "ACGTACGTACGTACGTACGT"}},
		}
	}
	for name, tc := range map[string]struct {
		req  SubmitJobRequest
		want string
	}{
		"neither dataset": {SubmitJobRequest{}, "exactly one of synthetic, inline, proteome, imaging, network or dataset"},
		"both datasets": {SubmitJobRequest{Synthetic: smallSynthetic(1), Inline: inlineOK()},
			"exactly one of synthetic, inline, proteome, imaging, network or dataset"},
		"unknown workflow": {SubmitJobRequest{Workflow: "no-such", Synthetic: smallSynthetic(1)},
			"not found"},
		"non-FASTQ workflow": {SubmitJobRequest{Workflow: "variants-to-vcf", Synthetic: smallSynthetic(1)},
			"consumes VCF"},
		"tiny reference": {SubmitJobRequest{Synthetic: &SyntheticSpec{ReferenceLength: 10, Reads: 5}},
			"reference_length"},
		"zero read length": {SubmitJobRequest{Synthetic: &SyntheticSpec{
			ReferenceLength: 2000, Reads: 5, ReadLength: intPtr(0)}}, "read_length 0"},
		"short inline reference": {SubmitJobRequest{Inline: &InlineDataset{
			Reference: InlineSequence{Sequence: "ACGT"},
			Reads:     []InlineRead{{Sequence: "ACGT"}},
		}}, "at least 16 bases"},
		"no inline reads": {SubmitJobRequest{Inline: &InlineDataset{
			Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
		}}, "at least one read"},
		"bad inline bases": {SubmitJobRequest{Inline: &InlineDataset{
			Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
			Reads:     []InlineRead{{Sequence: "ACGTXZ"}},
		}}, "read 0"},
		"quality length mismatch": {SubmitJobRequest{Inline: &InlineDataset{
			Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
			Reads:     []InlineRead{{Sequence: "ACGTACGT", Quality: "II"}},
		}}, "quality length"},
	} {
		_, err := c.CreateJob(ctx, tc.req)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument || !strings.Contains(ae.Message, tc.want) {
			t.Errorf("%s: err = %v, want invalid_argument containing %q", name, err, tc.want)
		}
	}
}

func TestV2ListValidation(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	for name, opts := range map[string]ListJobsOptions{
		"bad state":  {State: "sleeping"},
		"bad token":  {PageToken: "!!!not-a-token!!!"},
		"bad token2": {PageToken: "YWJj"}, // valid base64, wrong payload
	} {
		_, err := c.ListJobs(ctx, opts)
		var ae *APIError
		if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument {
			t.Errorf("%s: err = %v, want invalid_argument", name, err)
		}
	}
	if _, err := c.ListJobs(ctx, ListJobsOptions{Limit: 7}); err != nil {
		t.Errorf("positive limit rejected: %v", err)
	}
}

// TestV2NoNullSlices: empty collections must serialize as [], not null —
// clients iterate them without nil checks.
func TestV2NoNullSlices(t *testing.T) {
	c, _ := testServer(t)
	base := strings.TrimSuffix(c.base, "/")
	resp, err := http.Get(base + "/api/v2/jobs")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), `"jobs":[]`) {
		t.Fatalf("empty list body = %s", raw)
	}
}

// TestMiddlewareRecoversPanics: a handler panic becomes a clean JSON 500 in
// the addressed API version's envelope, and the daemon keeps serving.
func TestMiddlewareRecoversPanics(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServerOptions(p, ServerOptions{Executors: 1})
	defer s.Close()
	mux := http.NewServeMux()
	mux.HandleFunc("/api/v2/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	mux.HandleFunc("/api/v1/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.middleware(mux)

	for path, wantBody := range map[string]string{
		"/api/v2/boom": `"code":"internal"`,
		"/api/v1/boom": `"error":"internal server error"`,
	} {
		rw := httptest.NewRecorder()
		h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, path, nil))
		if rw.Code != http.StatusInternalServerError {
			t.Fatalf("%s: code = %d", path, rw.Code)
		}
		if !strings.Contains(rw.Body.String(), wantBody) {
			t.Fatalf("%s: body = %s", path, rw.Body.String())
		}
	}
}

// TestInlinePayloadBounded: the inline surface rejects payloads past the
// documented cap instead of holding them in the job store.
func TestInlinePayloadBounded(t *testing.T) {
	c, _ := testServer(t)
	// One read sequence just past the cap (the reference counts too).
	huge := strings.Repeat("A", maxInlineBases)
	_, err := c.CreateJob(context.Background(), SubmitJobRequest{Inline: &InlineDataset{
		Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 8)},
		Reads:     []InlineRead{{Sequence: huge}},
	}})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != CodeInvalidArgument || !strings.Contains(ae.Message, "exceeds") {
		t.Fatalf("oversized inline submit: err = %v", err)
	}
}

func ExampleClient_Watch() {
	// Stream a job's lifecycle instead of polling:
	//
	//	final, err := client.Watch(ctx, job.ID, func(ev rpc.JobEvent) {
	//		if ev.Type == rpc.EventStage {
	//			fmt.Printf("stage %s done in %.2fs\n", ev.Stage.Name, ev.Stage.ElapsedSec)
	//		}
	//	})
	fmt.Println("see examples/apiv2 for the runnable walkthrough")
	// Output: see examples/apiv2 for the runnable walkthrough
}

// TestSubmitBodyBoundedBeforeDecode: the raw request body is capped before
// JSON decoding — an attacker cannot balloon daemon memory with a payload
// the inline-bases check would only see after full materialization.
func TestSubmitBodyBoundedBeforeDecode(t *testing.T) {
	c, _ := testServer(t)
	huge := `{"inline":{"reference":{"sequence":"` + strings.Repeat("A", maxSubmitBody) + `"}}}`
	code, raw := rawRequest(t, c, http.MethodPost, "/api/v2/jobs", huge)
	if code != http.StatusBadRequest {
		t.Fatalf("code = %d, body = %.200s", code, raw)
	}
	if !strings.Contains(string(raw), "invalid_argument") {
		t.Fatalf("body = %.200s", raw)
	}
}

// TestCanceledPendingJobReleasesPayload: a job canceled before it starts
// drops its inline dataset immediately — terminal records must not pin
// megabytes of reads until retention eviction.
func TestCanceledPendingJobReleasesPayload(t *testing.T) {
	p, _ := blockingPlatform(t)
	c, s := testServerOptions(t, p, ServerOptions{Executors: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// Hold the single executor, then queue an inline job and cancel it.
	if _, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(1)}); err != nil {
		t.Fatal(err)
	}
	queued, err := c.CreateJob(ctx, SubmitJobRequest{
		Workflow: "block-forever",
		Inline: &InlineDataset{
			Reference: InlineSequence{Sequence: strings.Repeat("ACGT", 100)},
			Reads:     []InlineRead{{Sequence: "ACGTACGTACGTACGTACGT"}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Cancel(ctx, queued.ID); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	inline := s.jobs[queued.ID].spec.inline
	s.mu.Unlock()
	if inline != nil {
		t.Fatal("canceled pending job still pins its inline payload")
	}
}
