package rpc

import (
	"context"
	"math"
	"net/http"
	"strconv"
	"strings"

	"scan/internal/tenant"
)

// Multi-tenant admission for the v2 surface. With ServerOptions.Tenants
// set, every /api/v2 jobs/datasets/uploads request must present a
// configured API key ("Authorization: Bearer <key>" or "X-API-Key") and
// passes the tenant's token bucket before its handler runs; per-tenant
// quotas (concurrent jobs, datasets, resident bytes) are enforced at the
// resource handlers. Without a tenants registry the whole layer is inert
// and v2 stays unauthenticated — the default every pre-tenancy test,
// example and deployment relies on. /api/v1 is compat-frozen and never
// authenticated; /healthz, /metrics and the worker roster stay open; the
// fleet control plane keeps its own bearer token (fleet.Options.Token).
//
// The tenancy model, quota semantics and error codes are documented in
// docs/SERVING.md.

// tenantKey is the request-context key carrying the authenticated tenant.
type tenantKey struct{}

// requestTenant returns the authenticated tenant state, or nil when
// tenancy is disabled (v1 paths, or no tenants registry).
func requestTenant(r *http.Request) *tenant.State {
	st, _ := r.Context().Value(tenantKey{}).(*tenant.State)
	return st
}

// apiKey extracts the presented API key: the Bearer token, or the
// X-API-Key header for clients that cannot set Authorization.
func apiKey(r *http.Request) string {
	if auth := r.Header.Get("Authorization"); auth != "" {
		if key, ok := strings.CutPrefix(auth, "Bearer "); ok {
			return key
		}
		return ""
	}
	return r.Header.Get("X-API-Key")
}

// Admission rejection reasons (the tenantRejected metric's reason label).
const (
	reasonRateLimited   = "rate_limited"
	reasonQuotaExceeded = "quota_exceeded"
)

// admit wraps a v2 handler with authentication and rate limiting. The
// tenant rides the request context to the handler, where resource quotas
// apply.
func (s *Server) admit(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.tenants == nil {
			next(w, r)
			return
		}
		st := s.tenants.Authenticate(apiKey(r))
		if st == nil {
			writeV2Error(w, http.StatusUnauthorized, CodeUnauthenticated,
				"a configured API key is required (Authorization: Bearer <key>)")
			return
		}
		if ok, retry := st.Allow(s.now()); !ok {
			// Retry-After is whole seconds, rounded up so a compliant
			// client never retries into an still-empty bucket.
			w.Header().Set("Retry-After",
				strconv.Itoa(int(math.Ceil(retry.Seconds()))))
			s.metrics.tenantRejected.With(st.Name(), reasonRateLimited).Inc()
			writeV2Error(w, http.StatusTooManyRequests, CodeRateLimited,
				"tenant %q is over its request rate; retry in %v", st.Name(), retry)
			return
		}
		s.metrics.tenantRequests.With(st.Name()).Inc()
		next(w, r.WithContext(context.WithValue(r.Context(), tenantKey{}, st)))
	}
}

// datasetLive reports whether a dataset ID still resolves in the registry —
// the liveness callback that keeps tenant quota ledgers honest after
// evictions and deletes the tenants never saw.
func (s *Server) datasetLive(id string) bool {
	_, _, err := s.platform.Datasets().Resolve(id)
	return err == nil
}

// admitJobQuota claims a job slot for the request's tenant (no-op without
// tenancy). On rejection it writes the 429 and reports false; on success
// the returned state is recorded on the spec so releaseSpecLocked returns
// the slot exactly once.
func (s *Server) admitJobQuota(w http.ResponseWriter, r *http.Request, spec *jobSpec) bool {
	st := requestTenant(r)
	if st == nil {
		return true
	}
	ok, active, limit := st.AdmitJob()
	if !ok {
		s.unpinSpec(*spec)
		s.metrics.tenantRejected.With(st.Name(), reasonQuotaExceeded).Inc()
		writeV2Error(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q holds %d of %d concurrent jobs; wait for one to finish or cancel it",
			st.Name(), active, limit)
		return false
	}
	spec.tenant = st
	return true
}

// admitDatasetCount pre-checks the tenant's dataset-count quota before an
// upload decodes (the byte quota is only knowable post-commit; see
// settleDatasetQuota). Writes the 429 and reports false on rejection.
func (s *Server) admitDatasetCount(w http.ResponseWriter, st *tenant.State) bool {
	if st == nil {
		return true
	}
	ok, count, limit := st.CheckDataset(s.datasetLive)
	if !ok {
		s.metrics.tenantRejected.With(st.Name(), reasonQuotaExceeded).Inc()
		writeV2Error(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"tenant %q holds %d of %d datasets; delete one first", st.Name(), count, limit)
		return false
	}
	return true
}

// settleDatasetQuota charges a just-committed dataset against its owner's
// byte quota. A dataset that busts the quota is deleted again — it was
// committed this request, so nothing can have pinned it — and the request
// answers 429. Reports whether the dataset survived.
func (s *Server) settleDatasetQuota(w http.ResponseWriter, st *tenant.State, id string, bytes int64) bool {
	if st == nil {
		return true
	}
	ok, used, limit := st.RecordDataset(id, bytes, s.datasetLive)
	if !ok {
		_, _ = s.platform.Datasets().Delete(id)
		s.metrics.tenantRejected.With(st.Name(), reasonQuotaExceeded).Inc()
		writeV2Error(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			"dataset of %d bytes would put tenant %q over its %d-byte quota (%d in use); delete datasets first",
			bytes, st.Name(), limit, used)
		return false
	}
	return true
}

// authorizeDatasetDelete enforces delete ownership: with tenancy enabled a
// dataset recorded by one tenant can only be deleted by that tenant.
// Unowned datasets (admin-seeded, or owned records already pruned) stay
// deletable by anyone authenticated — reads are shared by design, so
// ownership gates destruction only. Writes the 403 and reports false when
// the requester is someone else.
func (s *Server) authorizeDatasetDelete(w http.ResponseWriter, r *http.Request, id string) bool {
	st := requestTenant(r)
	if st == nil || st.Owns(id) {
		return true
	}
	for _, other := range s.tenants.Tenants() {
		if other != st && other.Owns(id) {
			s.metrics.tenantRejected.With(st.Name(), "forbidden").Inc()
			writeV2Error(w, http.StatusForbidden, CodeForbidden,
				"dataset %q belongs to another tenant", id)
			return false
		}
	}
	return true
}

// uploadOwner returns the tenant that opened a resumable upload session
// ("" when tenancy is off or the session predates it).
func (s *Server) uploadOwner(id string) *tenant.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploadOwners[id]
}

// recordUploadOwner ties a session to the tenant that opened it, pruning
// entries for sessions the manager no longer tracks (committed, aborted,
// or expired server-side) so the map stays bounded by MaxSessions.
func (s *Server) recordUploadOwner(id string, st *tenant.State) {
	if st == nil {
		return
	}
	live := map[string]bool{}
	for _, u := range s.uploads.List() {
		live[u.ID] = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for old := range s.uploadOwners {
		if !live[old] {
			delete(s.uploadOwners, old)
		}
	}
	s.uploadOwners[id] = st
}

// forgetUploadOwner drops a session's ownership entry (commit or abort).
func (s *Server) forgetUploadOwner(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.uploadOwners, id)
}

// authorizeUpload enforces session ownership on the mutating session verbs
// (append, commit, abort): with tenancy on, only the opener may touch a
// session. Writes the 403 and reports false otherwise.
func (s *Server) authorizeUpload(w http.ResponseWriter, r *http.Request, id string) bool {
	st := requestTenant(r)
	if st == nil {
		return true
	}
	owner := s.uploadOwner(id)
	if owner == nil || owner == st {
		return true
	}
	s.metrics.tenantRejected.With(st.Name(), "forbidden").Inc()
	writeV2Error(w, http.StatusForbidden, CodeForbidden,
		"upload session %q belongs to another tenant", id)
	return false
}
