package rpc

import (
	"bufio"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"scan/internal/core"
)

// Slow-consumer behaviour of the Watch stream: a client that stops reading
// must cost the daemon one parked goroutine at most — never a blocked job
// transition, never a starved co-subscriber — and the per-write deadline
// must eventually tear the parked stream down.

// deadlineRecorder is a ResponseWriter that supports SetWriteDeadline and
// simulates a consumer whose connection stalls: the first failAfter writes
// succeed, everything later fails the way a tripped write deadline does.
type deadlineRecorder struct {
	mu        sync.Mutex
	header    http.Header
	deadlines []time.Time
	writes    int
	failAfter int
}

func (d *deadlineRecorder) Header() http.Header {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.header == nil {
		d.header = http.Header{}
	}
	return d.header
}

func (d *deadlineRecorder) WriteHeader(int) {}
func (d *deadlineRecorder) Flush()          {}

func (d *deadlineRecorder) Write(p []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.writes++
	if d.writes > d.failAfter {
		return 0, os.ErrDeadlineExceeded
	}
	return len(p), nil
}

func (d *deadlineRecorder) SetWriteDeadline(t time.Time) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.deadlines = append(d.deadlines, t)
	return nil
}

func (d *deadlineRecorder) snapshot() (deadlines []time.Time, writes int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]time.Time(nil), d.deadlines...), d.writes
}

// TestWatchWriteDeadlineTearsDownStalledStream drives handleV2Events against
// a writer whose connection "stalls" after the first event: the handler must
// arm a deadline before every write and return as soon as a write fails,
// instead of parking forever on a dead consumer.
func TestWatchWriteDeadlineTearsDownStalledStream(t *testing.T) {
	const wto = 250 * time.Millisecond
	p, block := blockingPlatform(t)
	c, s := testServerOptions(t, p, ServerOptions{Executors: 1, WatchWriteTimeout: wto})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(31)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-block.started: // pending and running events both exist now
	case <-ctx.Done():
		t.Fatal("stage never started")
	}

	rec := &deadlineRecorder{failAfter: 1}
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		s.handleV2Events(rec, httptest.NewRequest(http.MethodGet, "/api/v2/jobs/0/events", nil), job.ID)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler kept serving a stalled stream")
	}

	deadlines, writes := rec.snapshot()
	if writes != 2 {
		t.Fatalf("writes = %d, want 2 (one delivered event, one failed)", writes)
	}
	if len(deadlines) != writes {
		t.Fatalf("deadlines armed = %d, want one per write (%d)", len(deadlines), writes)
	}
	for i, dl := range deadlines {
		if lag := dl.Sub(start); lag <= 0 || lag > wto+10*time.Second {
			t.Fatalf("deadline %d = %v from start, want ≈ the %v write timeout ahead", i, lag, wto)
		}
	}

	// The torn-down subscriber left the job untouched: it is still running
	// and still cancellable.
	if _, err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatalf("cancel after stalled watch: %v", err)
	}
	final, err := c.Watch(ctx, job.ID, nil)
	if err != nil || final.State != StateCanceled {
		t.Fatalf("final = %+v (%v)", final, err)
	}
}

// TestWatchStalledClientDoesNotBlock attaches a raw TCP subscriber that
// reads its response headers and then stops reading forever, while a live
// watcher follows the same job. The job must keep transitioning and the
// live watcher must see the terminal event — pull-per-subscriber fan-out
// means the stalled socket parks only its own handler goroutine.
func TestWatchStalledClientDoesNotBlock(t *testing.T) {
	p, block := blockingPlatform(t)
	c, _ := testServerOptions(t, p, ServerOptions{Executors: 1, WatchWriteTimeout: 200 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	job, err := c.CreateJob(ctx, SubmitJobRequest{Workflow: "block-forever", Synthetic: smallSynthetic(32)})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-block.started:
	case <-ctx.Done():
		t.Fatal("stage never started")
	}

	// The stalled subscriber: handshake far enough to know the stream is
	// attached (status line + headers), then never read another byte.
	conn, err := net.Dial("tcp", strings.TrimPrefix(c.base, "http://"))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /api/v2/jobs/" + strconv.Itoa(job.ID) + "/events HTTP/1.1\r\nHost: scand\r\nAccept: text/event-stream\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(conn)
	status, err := br.ReadString('\n')
	if err != nil || !strings.Contains(status, "200") {
		t.Fatalf("stalled subscriber handshake: %q (%v)", status, err)
	}
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if line == "\r\n" {
			break // headers done; from here on the client is wedged
		}
	}

	// A healthy watcher on the same job, attached after the wedged one.
	type watchResult struct {
		job Job
		err error
	}
	live := make(chan watchResult, 1)
	go func() {
		j, werr := c.Watch(ctx, job.ID, nil)
		live <- watchResult{j, werr}
	}()

	// Give both subscribers a beat to be parked on the event log, then
	// drive the transition the wedged client will never consume.
	time.Sleep(50 * time.Millisecond)
	if _, err := c.Cancel(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-live:
		if got.err != nil || got.job.State != StateCanceled {
			t.Fatalf("live watcher saw %+v (%v)", got.job, got.err)
		}
	case <-ctx.Done():
		t.Fatal("live watcher starved by a stalled co-subscriber")
	}

	// The daemon as a whole stayed responsive: a fresh job on the same
	// executor completes while the wedged socket is still open.
	next, err := c.CreateJob(ctx, SubmitJobRequest{Synthetic: smallSynthetic(33)})
	if err != nil {
		t.Fatal(err)
	}
	final, err := c.Watch(ctx, next.ID, nil)
	if err != nil || final.State != StateDone {
		t.Fatalf("follow-up job = %+v (%v)", final, err)
	}
}

// TestWatchWriteTimeoutOptionNormalization pins the option's semantics:
// zero means the default, negative disables.
func TestWatchWriteTimeoutOptionNormalization(t *testing.T) {
	p := core.NewPlatform(core.Options{Workers: 1})
	s := NewServerOptions(p, ServerOptions{})
	if s.watchWTO != DefaultWatchWriteTimeout {
		t.Fatalf("default watch write timeout = %v, want %v", s.watchWTO, DefaultWatchWriteTimeout)
	}
	s.Close()
	s = NewServerOptions(p, ServerOptions{WatchWriteTimeout: -1})
	if s.watchWTO != 0 {
		t.Fatalf("negative watch write timeout = %v, want disabled (0)", s.watchWTO)
	}
	s.Close()
}
