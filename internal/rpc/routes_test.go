package rpc

import (
	"encoding/json"
	"testing"
)

// TestRouteContract locks down the wire API's route table: every v1 and v2
// endpoint, the methods it accepts, the status codes it answers, and which
// error envelope it speaks. A future PR that renames a path, drops a
// method, or swaps an envelope breaks this table loudly instead of breaking
// deployed clients silently.
func TestRouteContract(t *testing.T) {
	c, _ := testServer(t)
	const (
		envNone = iota // no JSON error envelope expected
		envV1          // {"error":"<string>"}
		envV2          // {"error":{"code":...,"message":...}}
	)
	cases := []struct {
		method   string
		path     string
		body     string
		want     int
		envelope int
	}{
		// health
		{"GET", "/healthz", "", 200, envNone},

		// v1 status / catalogue
		{"GET", "/api/v1/status", "", 200, envNone},
		{"POST", "/api/v1/status", "", 405, envV1},
		{"GET", "/api/v1/workflows", "", 200, envNone},
		{"POST", "/api/v1/workflows", "", 405, envV1},

		// v1 jobs
		{"GET", "/api/v1/jobs", "", 200, envNone},
		{"POST", "/api/v1/jobs", `{"reference_length":2000,"reads":60,"seed":1}`, 202, envNone},
		{"POST", "/api/v1/jobs", `{"reference_length":1}`, 400, envV1},
		{"POST", "/api/v1/jobs", `not json`, 400, envV1},
		{"DELETE", "/api/v1/jobs", "", 405, envV1},
		{"PUT", "/api/v1/jobs", "", 405, envV1},
		{"GET", "/api/v1/jobs/999", "", 404, envV1},
		{"GET", "/api/v1/jobs/abc", "", 400, envV1},
		{"POST", "/api/v1/jobs/999", "", 405, envV1},
		{"DELETE", "/api/v1/jobs/999", "", 405, envV1}, // v1 has no cancel; that is v2's DELETE

		// v1 knowledge base
		{"POST", "/api/v1/kb/query", `{"query":"bad sparql"}`, 400, envV1},
		{"GET", "/api/v1/kb/query", "", 405, envV1},
		{"GET", "/api/v1/kb/profiles", "", 200, envNone},
		{"POST", "/api/v1/kb/profiles", "", 405, envV1},
		{"GET", "/api/v1/kb/export", "", 200, envNone},
		{"GET", "/api/v1/kb/export?format=bogus", "", 400, envV1},
		{"POST", "/api/v1/kb/export", "", 405, envV1},

		// v2 jobs collection
		{"GET", "/api/v2/jobs", "", 200, envNone},
		{"POST", "/api/v2/jobs", `{"synthetic":{"reference_length":2000,"reads":60,"seed":2}}`, 202, envNone},
		{"POST", "/api/v2/jobs", `{}`, 400, envV2},
		{"POST", "/api/v2/jobs", `not json`, 400, envV2},
		{"GET", "/api/v2/jobs?limit=zero", "", 400, envV2},
		{"GET", "/api/v2/jobs?state=bogus", "", 400, envV2},
		{"GET", "/api/v2/jobs?page_token=garbage", "", 400, envV2},
		{"DELETE", "/api/v2/jobs", "", 405, envV2},
		{"PUT", "/api/v2/jobs", "", 405, envV2},

		// v2 job resource
		{"GET", "/api/v2/jobs/999", "", 404, envV2},
		{"DELETE", "/api/v2/jobs/999", "", 404, envV2},
		{"GET", "/api/v2/jobs/abc", "", 400, envV2},
		{"POST", "/api/v2/jobs/999", "", 405, envV2},
		{"PUT", "/api/v2/jobs/999", "", 405, envV2},

		// v2 event stream
		{"GET", "/api/v2/jobs/999/events", "", 404, envV2},
		{"POST", "/api/v2/jobs/999/events", "", 405, envV2},
		{"GET", "/api/v2/jobs/999/bogus", "", 404, envV2},

		// v2 dataset registry
		{"GET", "/api/v2/datasets", "", 200, envNone},
		{"POST", "/api/v2/datasets?name=rows&family=feature-table", "g0 1.5\n", 201, envNone},
		{"POST", "/api/v2/datasets?family=feature-table", "g0 1.5\n", 400, envV2}, // no name
		{"POST", "/api/v2/datasets?name=x&family=bogus", "g0 1.5\n", 400, envV2},
		{"POST", "/api/v2/datasets?name=x&family=mgf", "spectra", 400, envV2},               // mgf needs multipart
		{"POST", "/api/v2/datasets?name=rows&family=feature-table", "g0 1.5\n", 409, envV2}, // duplicate name
		{"PUT", "/api/v2/datasets", "", 405, envV2},
		{"DELETE", "/api/v2/datasets", "", 405, envV2},
		{"GET", "/api/v2/datasets/rows", "", 200, envNone},
		{"POST", "/api/v2/datasets/rows", "", 405, envV2},
		{"DELETE", "/api/v2/datasets/rows", "", 200, envNone},
		{"GET", "/api/v2/datasets/ds-404", "", 404, envV2},
		{"DELETE", "/api/v2/datasets/ds-404", "", 404, envV2},
		{"GET", "/api/v2/datasets/ds-1/bogus", "", 404, envV2},

		// v2 fleet: the worker roster, control plane and blob data plane
		{"GET", "/api/v2/workers", "", 200, envNone},
		{"POST", "/api/v2/workers", "", 405, envV2},
		{"DELETE", "/api/v2/workers", "", 405, envV2},
		{"POST", "/api/v2/fleet/register", `{"name":"n","slots":1}`, 200, envNone},
		{"POST", "/api/v2/fleet/register", `not json`, 400, envV2},
		{"GET", "/api/v2/fleet/register", "", 405, envV2},
		{"POST", "/api/v2/fleet/poll", `{"worker_id":"w999"}`, 404, envV2},
		{"POST", "/api/v2/fleet/poll", `not json`, 400, envV2},
		{"GET", "/api/v2/fleet/poll", "", 405, envV2},
		{"POST", "/api/v2/fleet/result", `{"worker_id":"w999","task_id":"t1","error":"x"}`, 404, envV2},
		{"POST", "/api/v2/fleet/result", `{}`, 400, envV2},
		{"GET", "/api/v2/fleet/result", "", 405, envV2},
		{"GET", "/api/v2/blobs/nope", "", 404, envV2},
		{"POST", "/api/v2/blobs/nope", "", 405, envV2},

		// unrouted
		{"GET", "/api/v2/other", "", 404, envNone},
		{"GET", "/api/v3/jobs", "", 404, envNone},
		{"GET", "/api/v1/other", "", 404, envNone},

		// v2 content addressing (appended rows; everything above is frozen).
		// "rows2" carries the same body the earlier "rows" dataset did, so
		// its content hash is the known constant below.
		{"POST", "/api/v2/datasets?name=rows2&family=feature-table", "g0 1.5\n", 201, envNone},
		{"GET", "/api/v2/datasets/sha256:9354a738afff7d7be09d67d1a6a6a03aa3d2621cb56ab4a12b8d4aea16584274", "", 200, envNone},
		{"GET", "/api/v2/datasets/sha256:0000000000000000000000000000000000000000000000000000000000000000", "", 404, envV2},

		// v2 resumable uploads
		{"GET", "/api/v2/uploads", "", 200, envNone},
		{"POST", "/api/v2/uploads", `{"name":"sess","family":"feature-table"}`, 201, envNone},
		{"POST", "/api/v2/uploads", `{"name":"rows2","family":"feature-table"}`, 409, envV2}, // name taken
		{"POST", "/api/v2/uploads", `{"name":"x","family":"bogus"}`, 400, envV2},
		{"POST", "/api/v2/uploads", `not json`, 400, envV2},
		{"PUT", "/api/v2/uploads", "", 405, envV2},
		{"DELETE", "/api/v2/uploads", "", 405, envV2},
		{"GET", "/api/v2/uploads/up-404", "", 404, envV2},
		{"PUT", "/api/v2/uploads/up-404?part=data&offset=0", "x", 404, envV2},
		{"POST", "/api/v2/uploads/up-404/commit", "", 404, envV2},
		{"DELETE", "/api/v2/uploads/up-404", "", 404, envV2},
		{"GET", "/api/v2/uploads/up-404/bogus", "", 404, envV2},

		// operational telemetry (appended rows). /metrics is plain-text
		// Prometheus exposition, never a JSON envelope.
		{"GET", "/metrics", "", 200, envNone},
		{"POST", "/metrics", "", 405, envNone},
		{"PUT", "/metrics", "", 405, envNone},
	}
	for _, tc := range cases {
		code, raw := rawRequest(t, c, tc.method, tc.path, tc.body)
		if code != tc.want {
			t.Errorf("%s %s: code = %d, want %d (body %s)", tc.method, tc.path, code, tc.want, raw)
			continue
		}
		switch tc.envelope {
		case envV1:
			var env struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(raw, &env); err != nil || env.Error == "" {
				t.Errorf("%s %s: want v1 string envelope, got %s", tc.method, tc.path, raw)
			}
		case envV2:
			var env v2ErrorResponse
			if err := json.Unmarshal(raw, &env); err != nil || env.Error.Code == "" || env.Error.Message == "" {
				t.Errorf("%s %s: want v2 coded envelope, got %s", tc.method, tc.path, raw)
			}
			if code == 405 && env.Error.Code != CodeMethodNotAllowed {
				t.Errorf("%s %s: 405 code = %q", tc.method, tc.path, env.Error.Code)
			}
		}
	}
}
