package shard

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"

	"scan/internal/genomics"
)

func simReads(t testing.TB, n int, seed int64) []genomics.Read {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	genome := genomics.GenerateReference(rng, "chr1", 5000)
	reads, err := genomics.SimulateReads(rng, genome, genomics.ReadSimConfig{Count: n, Length: 60})
	if err != nil {
		t.Fatal(err)
	}
	return reads
}

func TestPlanByRecords(t *testing.T) {
	p, err := PlanByRecords(100, 30)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumShards != 4 {
		t.Fatalf("NumShards = %d, want 4", p.NumShards)
	}
	s, e := p.Bounds(3)
	if s != 90 || e != 100 {
		t.Fatalf("Bounds(3) = %d,%d", s, e)
	}
	if _, err := PlanByRecords(10, 0); err != ErrBadShardSize {
		t.Fatal("zero shard size accepted")
	}
	// Empty input still yields one (empty) shard.
	p, err = PlanByRecords(0, 10)
	if err != nil || p.NumShards != 1 {
		t.Fatalf("empty plan = %+v, %v", p, err)
	}
}

func TestPlanByShards(t *testing.T) {
	p, err := PlanByShards(100, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.RecordsPerShard != 34 || p.NumShards != 3 {
		t.Fatalf("plan = %+v", p)
	}
	if _, err := PlanByShards(100, 0); err != ErrBadShardSize {
		t.Fatal("zero shards accepted")
	}
}

func TestSplitFASTQAndMergeRoundTrip(t *testing.T) {
	reads := simReads(t, 107, 1)
	var src bytes.Buffer
	if err := genomics.WriteAllFASTQ(&src, reads); err != nil {
		t.Fatal(err)
	}
	var shards []*bytes.Buffer
	n, total, err := SplitFASTQ(&src, 25, func(i int) (io.Writer, error) {
		b := &bytes.Buffer{}
		shards = append(shards, b)
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 || total != 107 {
		t.Fatalf("shards=%d total=%d, want 5/107", n, total)
	}
	// Shard sizes: 25,25,25,25,7.
	counts := make([]int, n)
	for i, b := range shards {
		c, err := genomics.CountFASTQ(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		counts[i] = c
	}
	want := []int{25, 25, 25, 25, 7}
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("shard %d has %d records, want %d", i, counts[i], want[i])
		}
	}
	// Merge restores the original records in order.
	var merged bytes.Buffer
	readers := make([]io.Reader, len(shards))
	for i, b := range shards {
		readers[i] = bytes.NewReader(b.Bytes())
	}
	mc, err := MergeFASTQ(&merged, readers...)
	if err != nil || mc != 107 {
		t.Fatalf("merge count = %d, %v", mc, err)
	}
	got, err := genomics.ReadAllFASTQ(&merged)
	if err != nil {
		t.Fatal(err)
	}
	for i := range reads {
		if got[i].ID != reads[i].ID || !bytes.Equal(got[i].Seq, reads[i].Seq) {
			t.Fatalf("record %d mismatch after split+merge", i)
		}
	}
}

// Property: split+merge is the identity for any record count and shard size.
func TestSplitMergeIdentityProperty(t *testing.T) {
	allReads := simReads(t, 150, 2)
	f := func(nRaw, perRaw uint8) bool {
		n := int(nRaw) % 150
		per := 1 + int(perRaw)%40
		reads := allReads[:n]
		var src bytes.Buffer
		if err := genomics.WriteAllFASTQ(&src, reads); err != nil {
			return false
		}
		var shards []*bytes.Buffer
		_, total, err := SplitFASTQ(&src, per, func(int) (io.Writer, error) {
			b := &bytes.Buffer{}
			shards = append(shards, b)
			return b, nil
		})
		if err != nil || total != n {
			return false
		}
		var merged bytes.Buffer
		rs := make([]io.Reader, len(shards))
		for i, b := range shards {
			rs[i] = bytes.NewReader(b.Bytes())
		}
		mc, err := MergeFASTQ(&merged, rs...)
		if err != nil || mc != n {
			return false
		}
		got, err := genomics.ReadAllFASTQ(&merged)
		if err != nil || len(got) != n {
			return false
		}
		for i := range got {
			if got[i].ID != reads[i].ID {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestChunkReads(t *testing.T) {
	reads := simReads(t, 10, 3)
	chunks, err := ChunkReads(reads, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 3 || len(chunks[0]) != 4 || len(chunks[2]) != 2 {
		t.Fatalf("chunk shapes: %d chunks", len(chunks))
	}
	if _, err := ChunkReads(reads, 0); err != ErrBadShardSize {
		t.Fatal("zero chunk size accepted")
	}
	empty, err := ChunkReads(nil, 5)
	if err != nil || len(empty) != 1 {
		t.Fatalf("empty input: %v %v", empty, err)
	}
}

func TestRegions(t *testing.T) {
	regs, err := Regions(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 3 {
		t.Fatalf("got %d regions", len(regs))
	}
	// Sizes 4,3,3 covering 1..10 with no gaps or overlaps.
	if regs[0] != (Region{1, 4}) || regs[1] != (Region{5, 7}) || regs[2] != (Region{8, 10}) {
		t.Fatalf("regions = %v", regs)
	}
	// More regions than bases clamps.
	regs, err = Regions(3, 10)
	if err != nil || len(regs) != 3 {
		t.Fatalf("clamp failed: %v %v", regs, err)
	}
	if _, err := Regions(0, 3); err == nil {
		t.Fatal("zero-length reference accepted")
	}
	if _, err := Regions(10, 0); err == nil {
		t.Fatal("zero regions accepted")
	}
}

// Property: Regions always tiles [1, refLen] exactly.
func TestRegionsTileProperty(t *testing.T) {
	f := func(lenRaw uint16, nRaw uint8) bool {
		refLen := 1 + int(lenRaw)%5000
		n := 1 + int(nRaw)%64
		regs, err := Regions(refLen, n)
		if err != nil {
			return false
		}
		next := 1
		for _, r := range regs {
			if r.Start != next || r.End < r.Start {
				return false
			}
			next = r.End + 1
		}
		return next == refLen+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPartitionByRegion(t *testing.T) {
	alns := []genomics.Alignment{
		{QName: "a", RName: "chr1", Pos: 1},
		{QName: "b", RName: "chr1", Pos: 5},
		{QName: "c", RName: "chr1", Pos: 10},
		{QName: "d", Flag: genomics.FlagUnmapped},
	}
	regs, err := Regions(10, 2) // 1-5, 6-10
	if err != nil {
		t.Fatal(err)
	}
	parts, unmapped := PartitionByRegion(alns, regs)
	if len(parts[0]) != 2 || len(parts[1]) != 1 || len(unmapped) != 1 {
		t.Fatalf("partition = %v / %v", parts, unmapped)
	}
	// Out-of-range record is preserved in unmapped, not dropped.
	parts, unmapped = PartitionByRegion([]genomics.Alignment{{QName: "x", RName: "chr1", Pos: 99}}, regs)
	if len(unmapped) != 1 {
		t.Fatal("out-of-range record dropped")
	}
	for _, p := range parts {
		if len(p) != 0 {
			t.Fatal("out-of-range record mis-assigned")
		}
	}
}

func sampleSBAM(t testing.TB, n int) (genomics.Header, []genomics.Alignment, []byte) {
	t.Helper()
	h := genomics.NewHeader(genomics.RefInfo{Name: "chr1", Length: 100000})
	rng := rand.New(rand.NewSource(7))
	alns := make([]genomics.Alignment, n)
	for i := range alns {
		seq := []byte("ACGTACGTAC")
		alns[i] = genomics.Alignment{
			QName: "r" + string(rune('a'+i%26)) + string(rune('0'+i%10)),
			RName: "chr1", Pos: rng.Intn(90000) + 1, MapQ: 60, CIGAR: "10M",
			Seq: seq, Qual: []byte("IIIIIIIIII"), NM: 0,
		}
	}
	var buf bytes.Buffer
	if err := genomics.WriteSBAM(&buf, h, alns); err != nil {
		t.Fatal(err)
	}
	return h, alns, buf.Bytes()
}

func TestSplitSBAMReplicatesHeader(t *testing.T) {
	_, _, data := sampleSBAM(t, 55)
	var shards []*bytes.Buffer
	n, total, err := SplitSBAM(bytes.NewReader(data), 20, func(int) (io.Writer, error) {
		b := &bytes.Buffer{}
		shards = append(shards, b)
		return b, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || total != 55 {
		t.Fatalf("n=%d total=%d", n, total)
	}
	for i, b := range shards {
		h, alns, err := genomics.ReadSBAM(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		if len(h.Refs) != 1 || h.Refs[0].Name != "chr1" {
			t.Fatalf("shard %d lost header: %+v", i, h)
		}
		want := 20
		if i == 2 {
			want = 15
		}
		if len(alns) != want {
			t.Fatalf("shard %d has %d records, want %d", i, len(alns), want)
		}
	}
}

func TestMergeSBAMSortsAndValidates(t *testing.T) {
	_, _, data := sampleSBAM(t, 40)
	var shards []*bytes.Buffer
	if _, _, err := SplitSBAM(bytes.NewReader(data), 13, func(int) (io.Writer, error) {
		b := &bytes.Buffer{}
		shards = append(shards, b)
		return b, nil
	}); err != nil {
		t.Fatal(err)
	}
	var merged bytes.Buffer
	rs := make([]io.Reader, len(shards))
	for i, b := range shards {
		rs[i] = bytes.NewReader(b.Bytes())
	}
	n, err := MergeSBAM(&merged, rs...)
	if err != nil || n != 40 {
		t.Fatalf("merge: n=%d err=%v", n, err)
	}
	h, alns, err := genomics.ReadSBAM(&merged)
	if err != nil {
		t.Fatal(err)
	}
	if h.SortOrder != "coordinate" {
		t.Fatalf("SortOrder = %q", h.SortOrder)
	}
	for i := 1; i < len(alns); i++ {
		if alns[i-1].Pos > alns[i].Pos {
			t.Fatal("merged output not coordinate sorted")
		}
	}
	// Mismatched reference dictionaries must be rejected.
	other := genomics.NewHeader(genomics.RefInfo{Name: "chrX", Length: 5})
	var bad bytes.Buffer
	if err := genomics.WriteSBAM(&bad, other, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSBAM(&bytes.Buffer{},
		bytes.NewReader(shards[0].Bytes()), bytes.NewReader(bad.Bytes())); err == nil {
		t.Fatal("mismatched dictionaries accepted")
	}
}

func TestMergeSAM(t *testing.T) {
	h := genomics.NewHeader(genomics.RefInfo{Name: "chr1", Length: 1000})
	a := []genomics.Alignment{{QName: "a", RName: "chr1", Pos: 500, CIGAR: "4M",
		Seq: []byte("ACGT"), Qual: []byte("IIII"), NM: -1}}
	b := []genomics.Alignment{{QName: "b", RName: "chr1", Pos: 100, CIGAR: "4M",
		Seq: []byte("GGTT"), Qual: []byte("IIII"), NM: -1}}
	var sa, sb, out bytes.Buffer
	if err := genomics.WriteSAM(&sa, h, a); err != nil {
		t.Fatal(err)
	}
	if err := genomics.WriteSAM(&sb, h, b); err != nil {
		t.Fatal(err)
	}
	n, err := MergeSAM(&out, &sa, &sb)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	_, alns, err := genomics.ReadSAM(&out)
	if err != nil {
		t.Fatal(err)
	}
	if alns[0].QName != "b" || alns[1].QName != "a" {
		t.Fatalf("merge order: %+v", alns)
	}
}

func TestMergeVCF(t *testing.T) {
	v1 := []genomics.Variant{{Chrom: "chr1", Pos: 50, Ref: "A", Alt: "T", Qual: 30}}
	v2 := []genomics.Variant{
		{Chrom: "chr1", Pos: 10, Ref: "C", Alt: "G", Qual: 99},
		{Chrom: "chr1", Pos: 50, Ref: "A", Alt: "T", Qual: 45},
	}
	var b1, b2, out bytes.Buffer
	if err := genomics.WriteVCF(&b1, "s1", v1); err != nil {
		t.Fatal(err)
	}
	if err := genomics.WriteVCF(&b2, "s2", v2); err != nil {
		t.Fatal(err)
	}
	n, err := MergeVCF(&out, "merged", &b1, &b2)
	if err != nil || n != 2 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	got, err := genomics.ReadVCF(&out)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Pos != 10 || got[1].Pos != 50 || got[1].Qual != 45 {
		t.Fatalf("merged = %+v", got)
	}
}

func BenchmarkSplitFASTQ(b *testing.B) {
	reads := simReads(b, 2000, 9)
	var src bytes.Buffer
	if err := genomics.WriteAllFASTQ(&src, reads); err != nil {
		b.Fatal(err)
	}
	data := src.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := SplitFASTQ(bytes.NewReader(data), 250, func(int) (io.Writer, error) {
			return io.Discard, nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
