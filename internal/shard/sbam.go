package shard

import (
	"fmt"
	"io"

	"scan/internal/genomics"
)

// SplitSBAM fragments an SBAM stream into shards of at most recordsPerShard
// alignments. The header (reference dictionary) is replicated into every
// shard so each subtask is self-contained, mirroring how BAM scatter tools
// behave. Returns the shard count and total records.
func SplitSBAM(r io.Reader, recordsPerShard int, newShard func(int) (io.Writer, error)) (shards, total int, err error) {
	if recordsPerShard <= 0 {
		return 0, 0, ErrBadShardSize
	}
	h, alns, err := genomics.ReadSBAM(r)
	if err != nil {
		return 0, 0, err
	}
	chunks, err := ChunkAlignments(alns, recordsPerShard)
	if err != nil {
		return 0, 0, err
	}
	for i, chunk := range chunks {
		w, err := newShard(i)
		if err != nil {
			return shards, total, err
		}
		if err := genomics.WriteSBAM(w, h, chunk); err != nil {
			return shards, total, err
		}
		shards++
		total += len(chunk)
	}
	return shards, total, nil
}

// MergeSBAM gathers SBAM shards into one coordinate-sorted container. All
// shards must agree on the reference dictionary.
func MergeSBAM(w io.Writer, inputs ...io.Reader) (int, error) {
	var header genomics.Header
	var groups [][]genomics.Alignment
	for i, in := range inputs {
		h, alns, err := genomics.ReadSBAM(in)
		if err != nil {
			return 0, fmt.Errorf("shard: reading SBAM shard %d: %w", i, err)
		}
		if i == 0 {
			header = h
		} else if !sameRefs(header.Refs, h.Refs) {
			return 0, fmt.Errorf("shard: SBAM shard %d has a different reference dictionary", i)
		}
		groups = append(groups, alns)
	}
	merged := genomics.MergeSorted(groups...)
	header.SortOrder = "coordinate"
	if err := genomics.WriteSBAM(w, header, merged); err != nil {
		return 0, err
	}
	return len(merged), nil
}

// MergeSAM gathers SAM text shards into one coordinate-sorted document.
func MergeSAM(w io.Writer, inputs ...io.Reader) (int, error) {
	var header genomics.Header
	var groups [][]genomics.Alignment
	for i, in := range inputs {
		h, alns, err := genomics.ReadSAM(in)
		if err != nil {
			return 0, fmt.Errorf("shard: reading SAM shard %d: %w", i, err)
		}
		if i == 0 {
			header = h
		} else if !sameRefs(header.Refs, h.Refs) {
			return 0, fmt.Errorf("shard: SAM shard %d has a different reference dictionary", i)
		}
		groups = append(groups, alns)
	}
	merged := genomics.MergeSorted(groups...)
	header.SortOrder = "coordinate"
	if err := genomics.WriteSAM(w, header, merged); err != nil {
		return 0, err
	}
	return len(merged), nil
}

// MergeVCF gathers per-shard VCF call sets into one sorted, deduplicated
// document — the paper's VariantsToVCF-style merge task.
func MergeVCF(w io.Writer, source string, inputs ...io.Reader) (int, error) {
	var groups [][]genomics.Variant
	for i, in := range inputs {
		vars, err := genomics.ReadVCF(in)
		if err != nil {
			return 0, fmt.Errorf("shard: reading VCF shard %d: %w", i, err)
		}
		groups = append(groups, vars)
	}
	merged := genomics.MergeVariants(groups...)
	if err := genomics.WriteVCF(w, source, merged); err != nil {
		return 0, err
	}
	return len(merged), nil
}

func sameRefs(a, b []genomics.RefInfo) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
