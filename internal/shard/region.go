package shard

import (
	"fmt"

	"scan/internal/genomics"
)

// Region is a 1-based inclusive interval on a reference sequence, the unit
// of GATK-style scatter-gather over coordinate-sorted alignments.
type Region struct {
	Start, End int
}

// Len returns the number of positions covered.
func (r Region) Len() int { return r.End - r.Start + 1 }

// String renders the region as "start-end".
func (r Region) String() string { return fmt.Sprintf("%d-%d", r.Start, r.End) }

// Contains reports whether the 1-based position lies inside the region.
func (r Region) Contains(pos int) bool { return pos >= r.Start && pos <= r.End }

// Regions divides a reference of refLen bases into n contiguous regions
// whose sizes differ by at most one base.
func Regions(refLen, n int) ([]Region, error) {
	if n <= 0 {
		return nil, ErrBadShardSize
	}
	if refLen <= 0 {
		return nil, fmt.Errorf("shard: non-positive reference length %d", refLen)
	}
	if n > refLen {
		n = refLen
	}
	out := make([]Region, 0, n)
	base := refLen / n
	rem := refLen % n
	start := 1
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		out = append(out, Region{Start: start, End: start + size - 1})
		start += size
	}
	return out, nil
}

// PartitionByRegion assigns each mapped alignment to the region containing
// its start position (so every record lands in exactly one shard) and
// returns per-region slices plus the unmapped remainder.
func PartitionByRegion(alns []genomics.Alignment, regions []Region) (parts [][]genomics.Alignment, unmapped []genomics.Alignment) {
	parts = make([][]genomics.Alignment, len(regions))
	for _, a := range alns {
		if a.Unmapped() {
			unmapped = append(unmapped, a)
			continue
		}
		idx := findRegion(regions, a.Pos)
		if idx < 0 {
			// Outside every region (shouldn't happen with full coverage);
			// treat as unmapped so no data is silently dropped.
			unmapped = append(unmapped, a)
			continue
		}
		parts[idx] = append(parts[idx], a)
	}
	return parts, unmapped
}

// PartitionByOverlap assigns each mapped alignment to every region it
// overlaps (not just the one containing its start), so a pileup built per
// region sees full coverage at region boundaries. A caller that emits
// variants only inside its own region still produces each call exactly
// once, with no evidence lost to the boundary — the correct GATK-style
// scatter. Unmapped records are returned separately.
func PartitionByOverlap(alns []genomics.Alignment, regions []Region) (parts [][]genomics.Alignment, unmapped []genomics.Alignment) {
	parts = make([][]genomics.Alignment, len(regions))
	for _, a := range alns {
		if a.Unmapped() {
			unmapped = append(unmapped, a)
			continue
		}
		first := findRegion(regions, a.Pos)
		if first < 0 {
			unmapped = append(unmapped, a)
			continue
		}
		end := a.End()
		for i := first; i < len(regions) && regions[i].Start <= end; i++ {
			parts[i] = append(parts[i], a)
		}
	}
	return parts, unmapped
}

// findRegion locates the region containing pos by binary search; regions
// must be sorted and non-overlapping (as produced by Regions).
func findRegion(regions []Region, pos int) int {
	lo, hi := 0, len(regions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		r := regions[mid]
		switch {
		case pos < r.Start:
			hi = mid - 1
		case pos > r.End:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}
