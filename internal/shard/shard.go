// Package shard implements SCAN's Data Sharders: record-boundary-aware
// splitting and merging for each genomic data format, so a large input can
// be fanned out to parallel analysis subtasks and the per-shard outputs
// gathered back (the paper's example: divide a 100 GB FASTQ file into 25
// 4 GB files and create 25 subtasks; merge small files for gather stages
// such as VariantsToVCF).
//
// The shard size itself is chosen by the knowledge base (package
// knowledge); this package is the mechanical layer.
package shard

import (
	"errors"
	"fmt"
	"io"

	"scan/internal/genomics"
)

// ErrBadShardSize is returned for non-positive shard sizing parameters.
var ErrBadShardSize = errors.New("shard: shard size must be positive")

// Plan describes how one input will be fragmented.
type Plan struct {
	TotalRecords    int
	RecordsPerShard int
	NumShards       int
}

// PlanByRecords sizes shards at recordsPerShard records each.
func PlanByRecords(totalRecords, recordsPerShard int) (Plan, error) {
	if recordsPerShard <= 0 {
		return Plan{}, ErrBadShardSize
	}
	if totalRecords < 0 {
		return Plan{}, fmt.Errorf("shard: negative record count %d", totalRecords)
	}
	n := (totalRecords + recordsPerShard - 1) / recordsPerShard
	if n == 0 {
		n = 1
	}
	return Plan{TotalRecords: totalRecords, RecordsPerShard: recordsPerShard, NumShards: n}, nil
}

// PlanByShards divides totalRecords into numShards near-equal shards.
func PlanByShards(totalRecords, numShards int) (Plan, error) {
	if numShards <= 0 {
		return Plan{}, ErrBadShardSize
	}
	per := (totalRecords + numShards - 1) / numShards
	if per == 0 {
		per = 1
	}
	return Plan{TotalRecords: totalRecords, RecordsPerShard: per, NumShards: numShards}, nil
}

// Bounds returns the [start, end) record range of shard i under the plan.
func (p Plan) Bounds(i int) (start, end int) {
	start = i * p.RecordsPerShard
	end = start + p.RecordsPerShard
	if end > p.TotalRecords {
		end = p.TotalRecords
	}
	if start > p.TotalRecords {
		start = p.TotalRecords
	}
	return start, end
}

// SplitFASTQ streams records from r into consecutive shards of
// recordsPerShard records each. newShard is called with the shard index and
// must return the destination writer. It returns the shard count and total
// records.
func SplitFASTQ(r io.Reader, recordsPerShard int, newShard func(int) (io.Writer, error)) (shards, total int, err error) {
	if recordsPerShard <= 0 {
		return 0, 0, ErrBadShardSize
	}
	fr := genomics.NewFASTQReader(r)
	var fw *genomics.FASTQWriter
	inShard := 0
	for {
		rd, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return shards, total, err
		}
		if fw == nil || inShard == recordsPerShard {
			if fw != nil {
				if err := fw.Flush(); err != nil {
					return shards, total, err
				}
			}
			w, err := newShard(shards)
			if err != nil {
				return shards, total, err
			}
			fw = genomics.NewFASTQWriter(w)
			shards++
			inShard = 0
		}
		if err := fw.Write(rd); err != nil {
			return shards, total, err
		}
		inShard++
		total++
	}
	if fw != nil {
		if err := fw.Flush(); err != nil {
			return shards, total, err
		}
	}
	return shards, total, nil
}

// MergeFASTQ concatenates FASTQ streams into w, returning the total record
// count. Records are re-encoded, so malformed shards are caught here.
func MergeFASTQ(w io.Writer, inputs ...io.Reader) (int, error) {
	fw := genomics.NewFASTQWriter(w)
	total := 0
	for i, in := range inputs {
		fr := genomics.NewFASTQReader(in)
		for {
			rd, err := fr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return total, fmt.Errorf("shard: merging input %d: %w", i, err)
			}
			if err := fw.Write(rd); err != nil {
				return total, err
			}
			total++
		}
	}
	return total, fw.Flush()
}

// Chunk splits an in-memory record set into shards of at most maxPerShard
// records, preserving order; the last shard may be smaller. An empty input
// yields one empty shard, so scatter loops always have at least one unit.
// Shards alias the input slice — no records are copied.
func Chunk[T any](records []T, maxPerShard int) ([][]T, error) {
	if maxPerShard <= 0 {
		return nil, ErrBadShardSize
	}
	var out [][]T
	for start := 0; start < len(records); start += maxPerShard {
		end := start + maxPerShard
		if end > len(records) {
			end = len(records)
		}
		out = append(out, records[start:end])
	}
	if out == nil {
		out = [][]T{{}}
	}
	return out, nil
}

// ChunkReads splits an in-memory read set into shards of at most
// maxPerShard records, preserving order. The last shard may be smaller.
func ChunkReads(reads []genomics.Read, maxPerShard int) ([][]genomics.Read, error) {
	return Chunk(reads, maxPerShard)
}

// ChunkAlignments splits alignments into shards of at most maxPerShard
// records, preserving order.
func ChunkAlignments(alns []genomics.Alignment, maxPerShard int) ([][]genomics.Alignment, error) {
	return Chunk(alns, maxPerShard)
}
