package shard

import (
	"testing"
	"testing/quick"

	"scan/internal/genomics"
)

func TestPartitionByOverlapBoundarySpanning(t *testing.T) {
	regs, err := Regions(100, 2) // 1-50, 51-100
	if err != nil {
		t.Fatal(err)
	}
	alns := []genomics.Alignment{
		// Entirely in region 0.
		{QName: "a", RName: "chr1", Pos: 10, Seq: []byte("ACGTACGTAC")},
		// Spans the 50/51 boundary: must appear in both regions.
		{QName: "b", RName: "chr1", Pos: 46, Seq: []byte("ACGTACGTAC")},
		// Entirely in region 1.
		{QName: "c", RName: "chr1", Pos: 80, Seq: []byte("ACGTACGTAC")},
		{QName: "d", Flag: genomics.FlagUnmapped},
	}
	parts, unmapped := PartitionByOverlap(alns, regs)
	if len(unmapped) != 1 || unmapped[0].QName != "d" {
		t.Fatalf("unmapped = %+v", unmapped)
	}
	names := func(part []genomics.Alignment) []string {
		var out []string
		for _, a := range part {
			out = append(out, a.QName)
		}
		return out
	}
	if got := names(parts[0]); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("region 0 = %v", got)
	}
	if got := names(parts[1]); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("region 1 = %v", got)
	}
}

// Property: under overlap partitioning, every (read, position) pair of
// coverage appears in exactly the region owning that position — i.e. the
// per-region pileup depth at any position equals the global depth.
func TestPartitionByOverlapCoverageProperty(t *testing.T) {
	f := func(posRaw []uint16, nRaw uint8) bool {
		const refLen = 500
		const readLen = 20
		n := 1 + int(nRaw)%8
		regs, err := Regions(refLen, n)
		if err != nil {
			return false
		}
		var alns []genomics.Alignment
		for _, p := range posRaw {
			pos := 1 + int(p)%(refLen-readLen)
			alns = append(alns, genomics.Alignment{
				QName: "r", RName: "chr1", Pos: pos,
				Seq: make([]byte, readLen),
			})
		}
		globalDepth := make([]int, refLen+1)
		for _, a := range alns {
			for p := a.Pos; p <= a.End(); p++ {
				globalDepth[p]++
			}
		}
		parts, unmapped := PartitionByOverlap(alns, regs)
		if len(unmapped) != 0 {
			return false
		}
		for i, reg := range regs {
			depth := make(map[int]int)
			for _, a := range parts[i] {
				for p := a.Pos; p <= a.End(); p++ {
					if reg.Contains(p) {
						depth[p]++
					}
				}
			}
			for p := reg.Start; p <= reg.End; p++ {
				if depth[p] != globalDepth[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
