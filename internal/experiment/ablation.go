package experiment

import (
	"fmt"
	"io"

	"scan/internal/stats"
)

// This file implements the ablation studies over the reproduction's own
// design choices (DESIGN.md §5): the Data Broker's shard size, the
// predictive scaler's hire margin, and the warm-pool idle windows. Each
// sweep varies exactly one knob around the calibrated default and reports
// profit per run, making the sensitivity of the headline results visible.

// AblationPoint is one knob setting's outcome.
type AblationPoint struct {
	Knob   string
	Value  float64
	Profit stats.Summary
	Ratio  stats.Summary
}

// AblateShardSize sweeps the knowledge-base chunk size around the paper's
// 2-unit advice.
func AblateShardSize(base Config, repeats int) []AblationPoint {
	return ablate(base, repeats, "shard-size",
		[]float64{0.5, 1, 2, 3, 5, 10},
		func(c *Config, v float64) { c.ShardSize = v })
}

// AblatePredictiveMargin sweeps the delay-cost over-counting compensation
// of the predictive scaler.
func AblatePredictiveMargin(base Config, repeats int) []AblationPoint {
	return ablate(base, repeats, "predictive-margin",
		[]float64{1, 2, 3, 5, 8},
		func(c *Config, v float64) { c.PredictiveMargin = v })
}

// AblateIdleWindow sweeps the private warm-pool retention window.
func AblateIdleWindow(base Config, repeats int) []AblationPoint {
	return ablate(base, repeats, "idle-private",
		[]float64{0.25, 0.5, 1, 1.5, 3, 6},
		func(c *Config, v float64) { c.IdleReleasePrivate = v })
}

func ablate(base Config, repeats int, knob string, values []float64, apply func(*Config, float64)) []AblationPoint {
	if repeats <= 0 {
		repeats = 3
	}
	out := make([]AblationPoint, 0, len(values))
	for _, v := range values {
		cfg := base
		apply(&cfg, v)
		rs := Repeat(cfg, repeats)
		out = append(out, AblationPoint{
			Knob:   knob,
			Value:  v,
			Profit: Summarize(rs, ProfitPerJob),
			Ratio:  Summarize(rs, RewardToCost),
		})
	}
	return out
}

// WriteAblation renders ablation sweeps as an aligned table.
func WriteAblation(w io.Writer, points []AblationPoint) {
	fmt.Fprintln(w, "Ablation: design-choice sensitivity (profit per run, reward-to-cost)")
	fmt.Fprintf(w, "%-20s %8s %12s %10s %8s\n", "knob", "value", "profit/run", "stddev", "ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%-20s %8.2f %12.1f %10.1f %8.2f\n",
			p.Knob, p.Value, p.Profit.Mean, p.Profit.Std, p.Ratio.Mean)
	}
}
