package experiment

import (
	"math"
	"strings"
	"testing"

	"scan/internal/reward"
	"scan/internal/scheduler"
)

// quickCfg shrinks the arrival window so tests stay fast while keeping the
// workload statistically meaningful.
func quickCfg() Config {
	cfg := DefaultConfig()
	cfg.SimTime = 400
	return cfg
}

// TestDefaultConfigMatchesTableIII is experiment T3: the fixed simulation
// attributes must be the paper's.
func TestDefaultConfigMatchesTableIII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.SimTime != 10000 {
		t.Errorf("SimTime = %v, want 10000", cfg.SimTime)
	}
	if cfg.PrivatePrice != 5 {
		t.Errorf("PrivatePrice = %v, want 5", cfg.PrivatePrice)
	}
	if cfg.Params.RMax != 400 || cfg.Params.RPenalty != 15 || cfg.Params.RScale != 15000 {
		t.Errorf("reward params = %+v, want Rmax 400 / Rpenalty 15 / Rscale 15000", cfg.Params)
	}
	if cfg.JobsPerArrivalMean != 3 || cfg.JobsPerArrivalVar != 2 {
		t.Errorf("jobs per arrival = %v/%v, want 3/2", cfg.JobsPerArrivalMean, cfg.JobsPerArrivalVar)
	}
	if cfg.JobSizeMean != 5 || cfg.JobSizeVar != 1 {
		t.Errorf("job size = %v/%v, want 5/1", cfg.JobSizeMean, cfg.JobSizeVar)
	}
	if cfg.Startup != 0.5 {
		t.Errorf("Startup = %v, want 0.5 TU (30 s)", cfg.Startup)
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	cfg := quickCfg()
	a := Run(cfg)
	b := Run(cfg)
	if a.Metrics.TotalReward != b.Metrics.TotalReward ||
		a.Metrics.TotalCost != b.Metrics.TotalCost ||
		a.Metrics.JobsCompleted != b.Metrics.JobsCompleted {
		t.Fatalf("same seed, different outcomes:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	cfg.Seed = 2
	c := Run(cfg)
	if c.Metrics.TotalReward == a.Metrics.TotalReward {
		t.Fatal("different seeds produced identical rewards (suspicious)")
	}
}

func TestRunCompletesAllJobs(t *testing.T) {
	r := Run(quickCfg())
	if r.Metrics.JobsArrived == 0 {
		t.Fatal("no jobs arrived")
	}
	if r.Metrics.JobsCompleted != r.Metrics.JobsArrived {
		t.Fatalf("completed %d of %d jobs", r.Metrics.JobsCompleted, r.Metrics.JobsArrived)
	}
	if r.DrainTime < r.Config.SimTime {
		t.Fatalf("drain time %v before arrival window closed", r.DrainTime)
	}
}

func TestArrivalRateTracksInterval(t *testing.T) {
	slow := quickCfg()
	slow.MeanInterArrival = 3.0
	fast := quickCfg()
	fast.MeanInterArrival = 2.0
	rs := Run(slow)
	rf := Run(fast)
	if rf.Metrics.JobsArrived <= rs.Metrics.JobsArrived {
		t.Fatalf("faster arrivals produced fewer jobs: %d vs %d",
			rf.Metrics.JobsArrived, rs.Metrics.JobsArrived)
	}
	// Sanity: expected jobs ≈ SimTime/interval × batch mean (±40%).
	expect := 400.0 / 2.0 * 3.0
	got := float64(rf.Metrics.JobsArrived)
	if got < expect*0.6 || got > expect*1.4 {
		t.Fatalf("arrivals %v far from expectation %v", got, expect)
	}
}

func TestPrivateUtilizationTracksLoad(t *testing.T) {
	light := quickCfg()
	light.MeanInterArrival = 3.0
	heavy := quickCfg()
	heavy.MeanInterArrival = 2.0
	rl := Run(light)
	rh := Run(heavy)
	if rl.PrivateUtil.N == 0 || rh.PrivateUtil.N == 0 {
		t.Fatal("no utilisation samples recorded")
	}
	if rh.PrivateUtil.Mean <= rl.PrivateUtil.Mean {
		t.Fatalf("heavier load should raise utilisation: %.2f vs %.2f",
			rh.PrivateUtil.Mean, rl.PrivateUtil.Mean)
	}
	if rh.PrivateUtil.Max > 1.0+1e-9 {
		t.Fatalf("utilisation above 1: %v", rh.PrivateUtil.Max)
	}
}

func TestRepeatVariesSeeds(t *testing.T) {
	rs := Repeat(quickCfg(), 3)
	if len(rs) != 3 {
		t.Fatalf("got %d results", len(rs))
	}
	if rs[0].Metrics.TotalReward == rs[1].Metrics.TotalReward &&
		rs[1].Metrics.TotalReward == rs[2].Metrics.TotalReward {
		t.Fatal("repeats did not vary")
	}
	s := Summarize(rs, ProfitPerJob)
	if s.N != 3 || s.Std == 0 {
		t.Fatalf("summary = %+v", s)
	}
}

// TestPredictiveInterpolatesBaselines is experiment C1: the predictive
// scaler must behave like never-scale under a light workload, dominate the
// baselines' worst case under a heavy one, and the two baselines must cross
// inside the swept range (never-scale best at light load, worst at heavy).
func TestPredictiveInterpolatesBaselines(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation study")
	}
	// Never-scale's queue divergence at heavy load builds up over time, so
	// this test needs a longer arrival window than the other small runs.
	cfg := quickCfg()
	cfg.SimTime = 2000
	const repeats = 3
	profit := func(interval float64, sc scheduler.ScalingPolicy) float64 {
		c := cfg
		c.MeanInterArrival = interval
		c.Scaling = sc
		return Summarize(Repeat(c, repeats), ProfitPerJob).Mean
	}
	neverLight := profit(3.0, scheduler.NeverScale)
	neverHeavy := profit(2.0, scheduler.NeverScale)
	alwaysLight := profit(3.0, scheduler.AlwaysScale)
	alwaysHeavy := profit(2.0, scheduler.AlwaysScale)
	predLight := profit(3.0, scheduler.PredictiveScale)
	predHeavy := profit(2.0, scheduler.PredictiveScale)

	// Never-scale degrades sharply with load.
	if neverLight <= neverHeavy {
		t.Errorf("never-scale did not degrade: light %v, heavy %v", neverLight, neverHeavy)
	}
	// The baselines cross: never wins at light load, always at heavy load.
	if neverLight <= alwaysLight {
		t.Errorf("light load: never (%v) should beat always (%v)", neverLight, alwaysLight)
	}
	if alwaysHeavy <= neverHeavy {
		t.Errorf("heavy load: always (%v) should beat never (%v)", alwaysHeavy, neverHeavy)
	}
	// Predictive tracks the better baseline at both ends.
	if predLight < neverLight-300 {
		t.Errorf("light load: predictive (%v) far below never-scale (%v)", predLight, neverLight)
	}
	if predHeavy < alwaysHeavy {
		t.Errorf("heavy load: predictive (%v) below always-scale (%v)", predHeavy, alwaysHeavy)
	}
}

func TestFigure4SmallRun(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 150
	pts := Figure4(cfg, 2)
	if len(pts) != 11*3 {
		t.Fatalf("got %d points, want 33", len(pts))
	}
	var sb strings.Builder
	WriteFigure4(&sb, pts)
	out := sb.String()
	for _, want := range []string{"predictive", "always-scale", "never-scale", "2.0", "3.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure 4 table missing %q:\n%s", want, out)
		}
	}
}

func TestFigure5Plans(t *testing.T) {
	plans := Figure5Plans(DefaultConfig().Pipeline)
	if len(plans) != 17 {
		t.Fatalf("got %d plans", len(plans))
	}
	if plans[0].CoreStages() != 7 {
		t.Fatalf("first plan core-stages = %d, want 7 (all serial)", plans[0].CoreStages())
	}
	for i, p := range plans {
		if err := p.Validate(7); err != nil {
			t.Fatalf("plan %d invalid: %v", i, err)
		}
		if i > 0 && p.CoreStages() <= plans[i-1].CoreStages() {
			t.Fatalf("core-stages not strictly increasing at %d: %d then %d",
				i, plans[i-1].CoreStages(), p.CoreStages())
		}
	}
}

// TestFigure5Shape is experiments F5 + C3: the reward-to-cost curve must be
// high near the paper's 3.11 at an interior number of core-stages and fall
// off for very wide plans.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation study")
	}
	cfg := quickCfg()
	cfg.SimTime = 600
	pts := Figure5(cfg, 2)
	best := BestRatio(pts)
	if best.Ratio.Mean < 2.3 || best.Ratio.Mean > 4.0 {
		t.Errorf("peak ratio %v too far from the paper's 3.11", best.Ratio.Mean)
	}
	if best.CoreStages < 7 || best.CoreStages > 24 {
		t.Errorf("peak at %d core-stages, expected within the paper's 6–24 range", best.CoreStages)
	}
	widest := pts[len(pts)-1]
	if widest.Ratio.Mean >= best.Ratio.Mean {
		t.Errorf("ratio did not fall off for the widest plan: %v >= %v",
			widest.Ratio.Mean, best.Ratio.Mean)
	}
	var sb strings.Builder
	WriteFigure5(&sb, pts)
	if !strings.Contains(sb.String(), "paper: 3.11") {
		t.Fatal("figure 5 table missing paper reference")
	}
}

// TestHeterogeneousHelps is experiment C3's mechanism check: with dynamic
// heterogeneous workers enabled, reconfigurations actually happen under a
// mixed-width plan.
func TestHeterogeneousHelps(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 200
	cfg.Heterogeneous = true
	r := Run(cfg)
	if r.Metrics.Reconfigs == 0 {
		t.Fatal("no reconfigurations despite heterogeneous mode")
	}
}

func TestCompareAllocationSmallRun(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 150
	pts := CompareAllocation(cfg, 1)
	if len(pts) != 11*4 {
		t.Fatalf("got %d points, want 44", len(pts))
	}
	var sb strings.Builder
	WriteAllocation(&sb, pts)
	for _, want := range []string{"best-constant", "greedy", "long-term", "long-term-adaptive"} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("allocation table missing %q", want)
		}
	}
}

// TestAdaptiveBeatsConstantSomewhere is experiment C2: at least one point
// of the sweep has an adaptive allocation policy outperforming the
// best-constant baseline ("the SCAN outperforms the best-constant baseline
// algorithm in many circumstances").
func TestAdaptiveBeatsConstantSomewhere(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation study")
	}
	cfg := quickCfg()
	cfg.SimTime = 600
	const repeats = 2
	wins := 0
	total := 0
	for _, interval := range []float64{2.0, 2.4, 2.8} {
		c := cfg
		c.MeanInterArrival = interval
		c.Allocation = scheduler.BestConstant
		base := Summarize(Repeat(c, repeats), ProfitPerJob).Mean
		for _, al := range []scheduler.AllocationPolicy{
			scheduler.Greedy, scheduler.LongTerm, scheduler.LongTermAdaptive,
		} {
			c.Allocation = al
			got := Summarize(Repeat(c, repeats), ProfitPerJob).Mean
			total++
			if got > base {
				wins++
			}
		}
	}
	if wins == 0 {
		t.Fatalf("no adaptive policy beat best-constant at any of %d points", total)
	}
}

func TestSweepSmallGrid(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 100
	pts := Sweep(cfg, SweepOptions{
		Repeats:   1,
		Intervals: []float64{2.0, 3.0},
		Costs:     []float64{50},
	})
	// 4 allocation × 3 scaling × 2 schemes × 1 cost × 2 intervals.
	if len(pts) != 48 {
		t.Fatalf("got %d points, want 48", len(pts))
	}
	var sb strings.Builder
	WriteSweep(&sb, pts)
	if !strings.Contains(sb.String(), "throughput-based") {
		t.Fatal("sweep table missing throughput scheme")
	}
}

func TestThroughputSchemeRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 200
	cfg.Scheme = reward.ThroughputBased
	r := Run(cfg)
	if r.Metrics.JobsCompleted == 0 {
		t.Fatal("no jobs under throughput scheme")
	}
	if r.Metrics.TotalReward <= 0 {
		t.Fatal("throughput reward must be positive")
	}
}

func TestPublicCostMonotonic(t *testing.T) {
	// Raising the public price must not increase profit under always-scale.
	cfg := quickCfg()
	cfg.SimTime = 300
	cfg.Scaling = scheduler.AlwaysScale
	cfg.MeanInterArrival = 2.0
	var prev float64 = math.Inf(1)
	for _, price := range []float64{20, 50, 110} {
		c := cfg
		c.PublicPrice = price
		p := Run(c).Metrics.ProfitPerJob()
		if p > prev+1e-9 {
			t.Fatalf("profit rose with public price: %v at %v", p, price)
		}
		prev = p
	}
}

func TestArrivalIntervalsGrid(t *testing.T) {
	ivs := ArrivalIntervals()
	if len(ivs) != 11 || ivs[0] != 2.0 || math.Abs(ivs[10]-3.0) > 1e-9 {
		t.Fatalf("intervals = %v", ivs)
	}
}

func BenchmarkRunSession(b *testing.B) {
	cfg := quickCfg()
	cfg.SimTime = 200
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		Run(cfg)
	}
}
