// Package experiment drives the paper's simulation study: it generates the
// Table III workload, runs the scheduler on the two-tier cloud across the
// Table I parameter grid, and regenerates Figure 4, Figure 5 and the full
// sweep with repeated runs and standard deviations.
package experiment

import (
	"math"

	"scan/internal/cloud"
	"scan/internal/gatk"
	"scan/internal/reward"
	"scan/internal/scheduler"
	"scan/internal/sim"
	"scan/internal/stats"
)

// Config is one simulation session's full parameter set. Defaults mirror
// Table III; Table I's variable parameters are the fields callers sweep.
type Config struct {
	Seed int64

	// SimTime is the arrival window in TU (Table III: 10 000). After it
	// closes, the run drains in-flight jobs so rewards and costs are fully
	// accounted for under every policy.
	SimTime float64

	// MeanInterArrival is the mean gap between arrival events in TU
	// (Table I: 2.0 … 3.0). Gaps are exponential, making arrivals Poisson.
	MeanInterArrival float64
	// JobsPerArrivalMean/Var shape the batch size per arrival event
	// (Table III: mean 3, variance 2; truncated at 1).
	JobsPerArrivalMean float64
	JobsPerArrivalVar  float64
	// JobSizeMean/Var shape the per-job input size (Table III: mean 5,
	// variance 1; truncated at 0.5).
	JobSizeMean float64
	JobSizeVar  float64

	// PrivateCores is the private-tier capacity. The paper's institution
	// owns 624 cores; the experiment default is the 128-core partition
	// calibration (see EXPERIMENTS.md) so that private-tier saturation
	// crosses over inside the swept arrival range, reproducing the
	// paper's "busy at 2.0 TU / quiet at 3.0 TU" description.
	PrivateCores int
	// PrivatePrice is the private-tier core price (Table III: 5 CU/TU).
	PrivatePrice float64
	// PublicPrice is the public-tier core price (Table I: 20/50/80/110).
	PublicPrice float64
	// Startup is the worker boot/reconfigure penalty in TU (30 s = 0.5).
	Startup float64

	Scheme     reward.Scheme
	Params     reward.Params
	Scaling    scheduler.ScalingPolicy
	Allocation scheduler.AllocationPolicy

	Pipeline      gatk.Pipeline
	ShardSize     float64
	Heterogeneous bool
	FixedPlan     *gatk.Plan

	// Scheduler tuning knobs, exposed for the ablation studies; zero
	// values use the scheduler defaults.
	IdleReleasePrivate float64
	IdleReleasePublic  float64
	PredictiveMargin   float64
}

// PaperPrivateCores is the paper's stated private-tier size.
const PaperPrivateCores = 624

// CalibratedPrivateCores is the partition used by the experiments (see the
// PrivateCores field).
const CalibratedPrivateCores = 128

// DefaultConfig returns the Table III baseline: time-based reward, public
// price 50, predictive scaling, best-constant allocation, mid-range
// arrival interval.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		SimTime:            10000,
		MeanInterArrival:   2.5,
		JobsPerArrivalMean: 3,
		JobsPerArrivalVar:  2,
		JobSizeMean:        5,
		JobSizeVar:         1,
		PrivateCores:       CalibratedPrivateCores,
		PrivatePrice:       5,
		PublicPrice:        50,
		Startup:            0.5,
		Scheme:             reward.TimeBased,
		Params:             reward.DefaultParams(),
		Scaling:            scheduler.PredictiveScale,
		Allocation:         scheduler.BestConstant,
		Pipeline:           gatk.NewPipeline(),
		ShardSize:          2,
	}
}

// RunResult is the outcome of one simulation session.
type RunResult struct {
	Config  Config
	Metrics scheduler.Metrics
	// DrainTime is when the last job completed (≥ SimTime).
	DrainTime float64
	// PrivateUtil summarises the private tier's utilisation, sampled once
	// per TU over the arrival window ("the scaling and resource allocation
	// algorithms would experience a wide range of cluster utilisation").
	PrivateUtil stats.Summary
}

// Run executes one session: Poisson batch arrivals over [0, SimTime], then
// a drain phase until every admitted job completes.
func Run(cfg Config) RunResult {
	eng := sim.NewEngine()
	tiers := []cloud.Tier{
		{Name: "private", PricePerCoreTU: cfg.PrivatePrice, Cores: cfg.PrivateCores},
		{Name: "public", PricePerCoreTU: cfg.PublicPrice, Cores: cloud.Unbounded},
	}
	cl := cloud.New(eng, cfg.Startup, tiers...)
	sched, err := scheduler.New(eng, cl, scheduler.Config{
		Pipeline:             cfg.Pipeline,
		RewardScheme:         cfg.Scheme,
		RewardParams:         cfg.Params,
		Scaling:              cfg.Scaling,
		Allocation:           cfg.Allocation,
		ShardSize:            cfg.ShardSize,
		FixedPlan:            cfg.FixedPlan,
		HeterogeneousWorkers: cfg.Heterogeneous,
		IdleReleasePrivate:   cfg.IdleReleasePrivate,
		IdleReleasePublic:    cfg.IdleReleasePublic,
		PredictiveMargin:     cfg.PredictiveMargin,
	})
	if err != nil {
		panic(err) // config errors are programming errors in experiments
	}

	streams := sim.NewStreams(cfg.Seed)
	gapRNG := streams.Stream("arrivals")
	batchRNG := streams.Stream("batches")
	sizeRNG := streams.Stream("sizes")
	gapDist := stats.Exponential{MeanVal: cfg.MeanInterArrival}
	batchDist := stats.TruncNormal{
		Mu: cfg.JobsPerArrivalMean, Sigma: math.Sqrt(cfg.JobsPerArrivalVar),
		Lo: 1, Hi: cfg.JobsPerArrivalMean * 6,
	}
	sizeDist := stats.TruncNormal{
		Mu: cfg.JobSizeMean, Sigma: math.Sqrt(cfg.JobSizeVar),
		Lo: 0.5, Hi: cfg.JobSizeMean * 5,
	}

	var scheduleArrival func()
	scheduleArrival = func() {
		gap := gapDist.Sample(gapRNG)
		at := eng.Now() + gap
		if at > cfg.SimTime {
			return // arrival window closed
		}
		eng.Schedule(at, func() {
			n := int(math.Round(batchDist.Sample(batchRNG)))
			if n < 1 {
				n = 1
			}
			for i := 0; i < n; i++ {
				sched.Submit(sizeDist.Sample(sizeRNG))
			}
			scheduleArrival()
		})
	}
	scheduleArrival()

	// Sample private-tier utilisation once per TU across the arrival
	// window.
	var util stats.Running
	var sampleUtil func()
	sampleUtil = func() {
		util.Add(cl.Utilization(0))
		if eng.Now()+1 <= cfg.SimTime {
			eng.After(1, sampleUtil)
		}
	}
	eng.After(1, sampleUtil)

	// Run to exhaustion: arrivals stop at SimTime, in-flight work drains,
	// idle-release timers fire.
	eng.Run()
	sched.Drain()

	return RunResult{
		Config:      cfg,
		Metrics:     sched.Metrics(),
		DrainTime:   eng.Now(),
		PrivateUtil: util.Summary(),
	}
}

// Repeat runs cfg n times with seeds cfg.Seed, cfg.Seed+1, … and returns
// all results ("All measurements were repeated 10 times").
func Repeat(cfg Config, n int) []RunResult {
	out := make([]RunResult, n)
	for i := 0; i < n; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		out[i] = Run(c)
	}
	return out
}

// Summarize reduces repeated runs to mean ± std of a metric selector.
func Summarize(results []RunResult, metric func(RunResult) float64) stats.Summary {
	xs := make([]float64, len(results))
	for i, r := range results {
		xs[i] = metric(r)
	}
	return stats.Summarize(xs)
}

// ProfitPerJob selects Figure 4's y-axis metric.
func ProfitPerJob(r RunResult) float64 { return r.Metrics.ProfitPerJob() }

// RewardToCost selects Figure 5's y-axis metric.
func RewardToCost(r RunResult) float64 { return r.Metrics.RewardToCost() }

// MeanLatency selects the mean end-to-end job latency.
func MeanLatency(r RunResult) float64 { return r.Metrics.Latency.Mean() }
