package experiment

import (
	"strings"
	"testing"
)

func TestAblationSweepsRun(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 120
	for name, fn := range map[string]func(Config, int) []AblationPoint{
		"shard":  AblateShardSize,
		"margin": AblatePredictiveMargin,
		"idle":   AblateIdleWindow,
	} {
		pts := fn(cfg, 1)
		if len(pts) < 4 {
			t.Fatalf("%s: only %d points", name, len(pts))
		}
		for _, p := range pts {
			if p.Profit.N != 1 {
				t.Fatalf("%s: missing repeats at %v", name, p.Value)
			}
		}
	}
}

func TestAblationKnobsActuallyChangeOutcomes(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 200
	pts := AblateShardSize(cfg, 1)
	first := pts[0].Profit.Mean
	varied := false
	for _, p := range pts[1:] {
		if p.Profit.Mean != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("shard size had no effect on profit — knob not wired through")
	}
}

func TestWriteAblation(t *testing.T) {
	cfg := quickCfg()
	cfg.SimTime = 100
	var sb strings.Builder
	WriteAblation(&sb, AblatePredictiveMargin(cfg, 1))
	if !strings.Contains(sb.String(), "predictive-margin") {
		t.Fatalf("table missing knob name:\n%s", sb.String())
	}
}

func TestSchedulerKnobPassthrough(t *testing.T) {
	// The idle-window knob must reach the scheduler: a 0.25 TU window
	// forces constant re-boots, a 20 TU window keeps pools warm. Either
	// way the cost structure must change while completing the same work.
	// (Empirically the warm pool is cheaper here: boot penalties dominate
	// idle burn at private prices — exactly what AblateIdleWindow shows.)
	short := quickCfg()
	short.SimTime = 200
	short.IdleReleasePrivate = 0.25
	long := short
	long.IdleReleasePrivate = 20
	a := Run(short)
	b := Run(long)
	if a.Metrics.JobsCompleted != b.Metrics.JobsCompleted {
		t.Fatalf("job counts differ: %d vs %d", a.Metrics.JobsCompleted, b.Metrics.JobsCompleted)
	}
	if a.Metrics.TotalCost == b.Metrics.TotalCost {
		t.Fatal("idle window knob had no effect — not wired through")
	}
	if a.Metrics.PrivateHires <= b.Metrics.PrivateHires {
		t.Fatalf("short idle window should force more hires: %d vs %d",
			a.Metrics.PrivateHires, b.Metrics.PrivateHires)
	}
}
