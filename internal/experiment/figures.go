package experiment

import (
	"fmt"
	"io"
	"sort"

	"scan/internal/gatk"
	"scan/internal/reward"
	"scan/internal/scheduler"
	"scan/internal/stats"
)

// ArrivalIntervals is the Table I sweep: 2.0, 2.1, …, 3.0 TU.
func ArrivalIntervals() []float64 {
	var out []float64
	for i := 0; i <= 10; i++ {
		out = append(out, 2.0+float64(i)*0.1)
	}
	return out
}

// Figure4Point is one (interval, scaling policy) cell of Figure 4.
type Figure4Point struct {
	Interval float64
	Scaling  scheduler.ScalingPolicy
	Profit   stats.Summary // mean profit per pipeline run ± σ
}

// Figure4 reproduces the paper's Figure 4: mean profit per pipeline run
// vs. mean arrival interval for the three horizontal scaling functions,
// under the time-based reward, public-tier cost 50, and the best-constant
// allocation plan.
func Figure4(base Config, repeats int) []Figure4Point {
	base.Scheme = reward.TimeBased
	base.PublicPrice = 50
	base.Allocation = scheduler.BestConstant
	var out []Figure4Point
	for _, interval := range ArrivalIntervals() {
		for _, sc := range []scheduler.ScalingPolicy{
			scheduler.PredictiveScale, scheduler.AlwaysScale, scheduler.NeverScale,
		} {
			cfg := base
			cfg.MeanInterArrival = interval
			cfg.Scaling = sc
			out = append(out, Figure4Point{
				Interval: interval,
				Scaling:  sc,
				Profit:   Summarize(Repeat(cfg, repeats), ProfitPerJob),
			})
		}
	}
	return out
}

// Figure5Point is one plan of the Figure 5 series.
type Figure5Point struct {
	Plan       gatk.Plan
	CoreStages int
	Ratio      stats.Summary // reward-to-cost ratio ± σ
}

// Figure5Plans generates the plan family swept by Figure 5: starting from
// the all-serial plan, stages are upgraded to the next instance size in
// descending order of parallel fraction, yielding a monotone series of
// total core-stages per pipeline run.
func Figure5Plans(p gatk.Pipeline) []gatk.Plan {
	n := len(p.Stages)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return p.Stages[order[a]].C > p.Stages[order[b]].C
	})
	plans := []gatk.Plan{gatk.UniformPlan(n, 1)}
	cur := gatk.UniformPlan(n, 1)
	// Upgrade each stage one size step at a time, most-parallel first,
	// until the four most parallel stages reach 16 threads.
	for step := 0; step < 4; step++ {
		for _, idx := range order[:4] {
			next := append([]int(nil), cur.Threads...)
			next[idx] = gatk.InstanceSizes[step+1]
			cur = gatk.Plan{Threads: next}
			plans = append(plans, cur)
		}
	}
	return plans
}

// Figure5 reproduces the paper's Figure 5: reward-to-cost ratio vs. total
// core-stages per pipeline run, with dynamic horizontal scaling and
// heterogeneous workers (idle workers are reconfigured between widths,
// paying the 30 s startup penalty).
func Figure5(base Config, repeats int) []Figure5Point {
	base.Heterogeneous = true
	base.Scaling = scheduler.PredictiveScale
	var out []Figure5Point
	for _, plan := range Figure5Plans(base.Pipeline) {
		plan := plan
		cfg := base
		cfg.FixedPlan = &plan
		out = append(out, Figure5Point{
			Plan:       plan,
			CoreStages: plan.CoreStages(),
			Ratio:      Summarize(Repeat(cfg, repeats), RewardToCost),
		})
	}
	return out
}

// BestRatio returns the Figure 5 point with the highest mean ratio (the
// paper reports 3.11 for the best configuration).
func BestRatio(points []Figure5Point) Figure5Point {
	best := points[0]
	for _, p := range points[1:] {
		if p.Ratio.Mean > best.Ratio.Mean {
			best = p
		}
	}
	return best
}

// AllocationPoint is one (interval, allocation policy) cell of the
// allocation-policy comparison (the paper's Section IV-B claim that the
// adaptive policies often beat the best-constant baseline).
type AllocationPoint struct {
	Interval   float64
	Allocation scheduler.AllocationPolicy
	Profit     stats.Summary
}

// CompareAllocation sweeps the four allocation policies across the arrival
// intervals under predictive scaling.
func CompareAllocation(base Config, repeats int) []AllocationPoint {
	base.Scaling = scheduler.PredictiveScale
	var out []AllocationPoint
	for _, interval := range ArrivalIntervals() {
		for _, al := range []scheduler.AllocationPolicy{
			scheduler.BestConstant, scheduler.Greedy,
			scheduler.LongTerm, scheduler.LongTermAdaptive,
		} {
			cfg := base
			cfg.MeanInterArrival = interval
			cfg.Allocation = al
			out = append(out, AllocationPoint{
				Interval:   interval,
				Allocation: al,
				Profit:     Summarize(Repeat(cfg, repeats), ProfitPerJob),
			})
		}
	}
	return out
}

// SweepPoint is one cell of the full Table I cross-product.
type SweepPoint struct {
	Allocation scheduler.AllocationPolicy
	Scaling    scheduler.ScalingPolicy
	Interval   float64
	Scheme     string
	PublicCost float64
	Profit     stats.Summary
	Ratio      stats.Summary
}

// SweepOptions trims the full grid for time-bounded runs.
type SweepOptions struct {
	Repeats   int
	Intervals []float64 // default: ArrivalIntervals()
	Costs     []float64 // default: 20, 50, 80, 110
}

// Sweep explores the Table I parameter grid ("We explored all permutations
// of resource allocation algorithm, horizontal scaling algorithm, reward
// scheme and workload").
func Sweep(base Config, opt SweepOptions) []SweepPoint {
	if opt.Repeats <= 0 {
		opt.Repeats = 3
	}
	if opt.Intervals == nil {
		opt.Intervals = ArrivalIntervals()
	}
	if opt.Costs == nil {
		opt.Costs = []float64{20, 50, 80, 110}
	}
	var out []SweepPoint
	for _, al := range []scheduler.AllocationPolicy{
		scheduler.BestConstant, scheduler.Greedy,
		scheduler.LongTerm, scheduler.LongTermAdaptive,
	} {
		for _, sc := range []scheduler.ScalingPolicy{
			scheduler.AlwaysScale, scheduler.NeverScale, scheduler.PredictiveScale,
		} {
			for _, scheme := range []reward.Scheme{reward.TimeBased, reward.ThroughputBased} {
				for _, cost := range opt.Costs {
					for _, interval := range opt.Intervals {
						cfg := base
						cfg.Allocation = al
						cfg.Scaling = sc
						cfg.Scheme = scheme
						cfg.PublicPrice = cost
						cfg.MeanInterArrival = interval
						rs := Repeat(cfg, opt.Repeats)
						out = append(out, SweepPoint{
							Allocation: al,
							Scaling:    sc,
							Interval:   interval,
							Scheme:     cfg.Scheme.String(),
							PublicCost: cost,
							Profit:     Summarize(rs, ProfitPerJob),
							Ratio:      Summarize(rs, RewardToCost),
						})
					}
				}
			}
		}
	}
	return out
}

// WriteFigure4 renders the Figure 4 series as an aligned table.
func WriteFigure4(w io.Writer, points []Figure4Point) {
	fmt.Fprintln(w, "Figure 4: profit vs. mean arrival interval (time-based reward, public cost 50, best-constant plan)")
	fmt.Fprintf(w, "%-10s %-14s %12s %10s\n", "interval", "scaling", "profit/run", "stddev")
	for _, p := range points {
		fmt.Fprintf(w, "%-10.1f %-14s %12.1f %10.1f\n",
			p.Interval, p.Scaling, p.Profit.Mean, p.Profit.Std)
	}
}

// WriteFigure5 renders the Figure 5 series as an aligned table.
func WriteFigure5(w io.Writer, points []Figure5Point) {
	fmt.Fprintln(w, "Figure 5: reward-to-cost ratio vs. total core-stages per pipeline run (dynamic scaling, heterogeneous workers)")
	fmt.Fprintf(w, "%-12s %-24s %8s %8s\n", "core-stages", "plan", "ratio", "stddev")
	for _, p := range points {
		fmt.Fprintf(w, "%-12d %-24v %8.2f %8.2f\n",
			p.CoreStages, p.Plan.Threads, p.Ratio.Mean, p.Ratio.Std)
	}
	best := BestRatio(points)
	fmt.Fprintf(w, "best ratio: %.2f at %d core-stages (paper: 3.11)\n",
		best.Ratio.Mean, best.CoreStages)
}

// WriteAllocation renders the allocation comparison as an aligned table.
func WriteAllocation(w io.Writer, points []AllocationPoint) {
	fmt.Fprintln(w, "Allocation policies: profit vs. mean arrival interval (predictive scaling)")
	fmt.Fprintf(w, "%-10s %-20s %12s %10s\n", "interval", "allocation", "profit/run", "stddev")
	for _, p := range points {
		fmt.Fprintf(w, "%-10.1f %-20s %12.1f %10.1f\n",
			p.Interval, p.Allocation, p.Profit.Mean, p.Profit.Std)
	}
}

// WriteSweep renders the sweep as an aligned table.
func WriteSweep(w io.Writer, points []SweepPoint) {
	fmt.Fprintln(w, "Table I sweep: allocation × scaling × reward × public cost × interval")
	fmt.Fprintf(w, "%-20s %-14s %-18s %6s %9s %12s %8s\n",
		"allocation", "scaling", "reward", "cost", "interval", "profit/run", "ratio")
	for _, p := range points {
		fmt.Fprintf(w, "%-20s %-14s %-18s %6.0f %9.1f %12.1f %8.2f\n",
			p.Allocation, p.Scaling, p.Scheme, p.PublicCost, p.Interval,
			p.Profit.Mean, p.Ratio.Mean)
	}
}
