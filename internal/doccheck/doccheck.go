// Package doccheck implements the repository's documentation gate, run by
// CI's docs job (cmd/doccheck): every relative markdown link must resolve
// to a real file or directory, and every internal/ package must carry a
// package comment. Both failure modes are silent rot — a renamed file
// breaks README links without breaking any test, and a new package without
// a doc comment erodes the godoc surface PR by PR — so the gate makes them
// loud instead.
package doccheck

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Problem is one finding: the file it was found in and what is wrong.
type Problem struct {
	File    string
	Message string
}

func (p Problem) String() string { return p.File + ": " + p.Message }

// mdLink matches inline markdown links [text](target). Images and
// reference-style links are out of scope — the repo uses neither.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// CheckMarkdownLinks verifies every relative link in the given markdown
// files points at an existing file or directory under root. External
// schemes (http, https, mailto) and pure in-page anchors are skipped;
// anchors on relative targets are stripped before the existence check.
func CheckMarkdownLinks(root string, files []string) ([]Problem, error) {
	var problems []Problem
	for _, file := range files {
		raw, err := os.ReadFile(filepath.Join(root, file))
		if err != nil {
			return nil, err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(raw), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			// Relative to the linking file's directory, like a renderer
			// resolves it.
			resolved := filepath.Join(root, filepath.Dir(file), target)
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems, Problem{
					File:    file,
					Message: fmt.Sprintf("broken link %q (no such file %s)", m[1], filepath.Join(filepath.Dir(file), target)),
				})
			}
		}
	}
	return problems, nil
}

// MarkdownFiles lists the repository's checked markdown set: every *.md at
// the root plus everything under docs/, relative to root.
func MarkdownFiles(root string) ([]string, error) {
	var files []string
	rootEntries, err := os.ReadDir(root)
	if err != nil {
		return nil, err
	}
	for _, e := range rootEntries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".md") {
			files = append(files, e.Name())
		}
	}
	docs := filepath.Join(root, "docs")
	if _, err := os.Stat(docs); err == nil {
		err := filepath.WalkDir(docs, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(d.Name(), ".md") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				files = append(files, rel)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(files)
	return files, nil
}

// CheckPackageComments verifies every Go package under dir (recursively,
// skipping testdata) has a package comment on at least one file — the
// ST1000 guarantee, enforced without needing staticcheck installed.
func CheckPackageComments(dir string) ([]Problem, error) {
	var problems []Problem
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if d.Name() == "testdata" {
			// Fixture trees may hold intentionally broken or undocumented
			// Go files the toolchain itself ignores; don't descend.
			return filepath.SkipDir
		}
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		for name, pkg := range pkgs {
			documented := false
			for _, f := range pkg.Files {
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				problems = append(problems, Problem{
					File:    path,
					Message: fmt.Sprintf("package %s has no package comment", name),
				})
			}
		}
		return nil
	})
	sort.Slice(problems, func(i, j int) bool { return problems[i].File < problems[j].File })
	return problems, err
}

// Run executes the whole gate over a repository root and returns every
// finding.
func Run(root string) ([]Problem, error) {
	files, err := MarkdownFiles(root)
	if err != nil {
		return nil, err
	}
	problems, err := CheckMarkdownLinks(root, files)
	if err != nil {
		return nil, err
	}
	for _, dir := range []string{"internal", "cmd", "examples"} {
		full := filepath.Join(root, dir)
		if _, err := os.Stat(full); err != nil {
			continue
		}
		pkgProblems, err := CheckPackageComments(full)
		if err != nil {
			return nil, err
		}
		problems = append(problems, pkgProblems...)
	}
	return problems, nil
}
