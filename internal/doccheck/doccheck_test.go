package doccheck

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckMarkdownLinks(t *testing.T) {
	root := t.TempDir()
	write(t, root, "README.md",
		"[ok](docs/API.md) [ok-dir](docs) [anchor](docs/API.md#routes)\n"+
			"[http](https://example.com/x.md) [page](#local) [broken](nope.md)\n")
	write(t, root, "docs/API.md", "[up](../README.md) [gone](missing/ref.md)\n")

	files, err := MarkdownFiles(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0] != "README.md" || files[1] != filepath.Join("docs", "API.md") {
		t.Fatalf("files = %v", files)
	}
	problems, err := CheckMarkdownLinks(root, files)
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 2 {
		t.Fatalf("problems = %v", problems)
	}
	if problems[0].File != "README.md" || !strings.Contains(problems[0].Message, "nope.md") {
		t.Fatalf("problem 0 = %v", problems[0])
	}
	// Links resolve relative to the linking file, so docs/API.md's broken
	// link reports under docs/.
	if problems[1].File != filepath.Join("docs", "API.md") || !strings.Contains(problems[1].Message, "missing/ref.md") {
		t.Fatalf("problem 1 = %v", problems[1])
	}
}

func TestCheckPackageComments(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/good/good.go", "// Package good is documented.\npackage good\n")
	// Documented on a doc.go, undocumented main file: still fine.
	write(t, root, "internal/split/doc.go", "// Package split is documented here.\npackage split\n")
	write(t, root, "internal/split/split.go", "package split\n")
	write(t, root, "internal/bad/bad.go", "package bad\n")
	// Test files don't count as documentation carriers.
	write(t, root, "internal/bad/bad_test.go", "// Package bad is only documented in tests.\npackage bad\n")
	// testdata trees are skipped wholesale — fixtures may be undocumented
	// or not even valid Go.
	write(t, root, "internal/good/testdata/fixture.go", "package fixture\n")
	write(t, root, "internal/good/testdata/nested/broken.go", "this is not go\n")

	problems, err := CheckPackageComments(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 1 || !strings.Contains(problems[0].Message, "package bad") {
		t.Fatalf("problems = %v", problems)
	}
}

// TestRunOnThisRepository is the gate itself as a test: the real tree must
// stay clean, so a broken README link or an undocumented package fails
// `go test` as well as CI's docs job.
func TestRunOnThisRepository(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Skipf("repository root not found: %v", err)
	}
	problems, err := Run(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}
