package align

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"scan/internal/genomics"
)

func mkAligner(t *testing.T, refLen int, seed int64) (*Aligner, genomics.Sequence, *rand.Rand) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genomics.GenerateReference(rng, "chr1", refLen)
	a, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	return a, ref, rng
}

func TestAlignExactReads(t *testing.T) {
	a, ref, rng := mkAligner(t, 5000, 1)
	reads, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{Count: 200, Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	alns, mapped := a.AlignAll(reads)
	if mapped != 200 {
		t.Fatalf("mapped %d/200 exact reads", mapped)
	}
	for _, aln := range alns {
		if aln.Unmapped() {
			continue
		}
		start := aln.Pos - 1
		if !bytes.Equal(ref.Seq[start:start+len(aln.Seq)], aln.Seq) {
			t.Fatalf("read %s placed at %d but sequence differs", aln.QName, aln.Pos)
		}
		if aln.NM != 0 {
			t.Fatalf("exact read has NM=%d", aln.NM)
		}
		if aln.CIGAR != "100M" {
			t.Fatalf("CIGAR = %q", aln.CIGAR)
		}
	}
}

func TestAlignReadsWithErrors(t *testing.T) {
	a, ref, rng := mkAligner(t, 20000, 2)
	reads, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{
		Count: 300, Length: 100, ErrorRate: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, mapped := a.AlignAll(reads)
	// At 1% error over 100 bases, nearly every read has ≤ 6 mismatches and
	// still seeds (expected mismatches per read = 1).
	if mapped < 280 {
		t.Fatalf("mapped only %d/300 noisy reads", mapped)
	}
}

func TestAlignReverseComplement(t *testing.T) {
	a, ref, _ := mkAligner(t, 5000, 3)
	start := 1234
	fwd := append([]byte(nil), ref.Seq[start:start+80]...)
	rc := ReverseComplement(fwd)
	qual := bytes.Repeat([]byte("I"), 80)
	aln := a.AlignRead(genomics.Read{ID: "rc-read", Seq: rc, Qual: qual})
	if aln.Unmapped() {
		t.Fatal("reverse-complement read unmapped")
	}
	if aln.Flag&genomics.FlagReverseStrand == 0 {
		t.Fatal("reverse strand flag not set")
	}
	if aln.Pos != start+1 {
		t.Fatalf("Pos = %d, want %d", aln.Pos, start+1)
	}
	// Stored sequence is the reference-forward orientation.
	if !bytes.Equal(aln.Seq, fwd) {
		t.Fatal("stored sequence not re-oriented to forward strand")
	}
}

func TestAlignUnmappableRead(t *testing.T) {
	a, _, rng := mkAligner(t, 5000, 4)
	// A random read is overwhelmingly unlikely to seed anywhere.
	junk, err := genomics.SimulateReads(rng,
		genomics.GenerateReference(rng, "other", 1000),
		genomics.ReadSimConfig{Count: 5, Length: 100})
	if err != nil {
		t.Fatal(err)
	}
	unmapped := 0
	for _, r := range junk {
		if a.AlignRead(r).Unmapped() {
			unmapped++
		}
	}
	if unmapped < 4 {
		t.Fatalf("only %d/5 foreign reads unmapped", unmapped)
	}
}

func TestAlignRepeatAmbiguityLowersMapQ(t *testing.T) {
	// Build a reference with an exact tandem repeat: reads inside the
	// repeat must get MapQ 0.
	rng := rand.New(rand.NewSource(5))
	unit := genomics.GenerateReference(rng, "u", 300)
	seq := append(append([]byte{}, unit.Seq...), unit.Seq...)
	tail := genomics.GenerateReference(rng, "t", 400)
	seq = append(seq, tail.Seq...)
	ref := genomics.Sequence{Name: "chrR", Seq: seq}
	a, err := New(ref, Config{})
	if err != nil {
		t.Fatal(err)
	}
	read := genomics.Read{
		ID:   "rep",
		Seq:  append([]byte(nil), unit.Seq[50:150]...),
		Qual: bytes.Repeat([]byte("I"), 100),
	}
	aln := a.AlignRead(read)
	if aln.Unmapped() {
		t.Fatal("repeat read unmapped")
	}
	if aln.MapQ != 0 {
		t.Fatalf("repeat read MapQ = %d, want 0", aln.MapQ)
	}
	// A unique read keeps high MapQ.
	uniq := genomics.Read{
		ID:   "uniq",
		Seq:  append([]byte(nil), tail.Seq[100:200]...),
		Qual: bytes.Repeat([]byte("I"), 100),
	}
	if got := a.AlignRead(uniq); got.MapQ != 60 {
		t.Fatalf("unique read MapQ = %d, want 60", got.MapQ)
	}
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(genomics.Sequence{Name: "s", Seq: []byte("ACG")}, Config{K: 16}); err != ErrShortReference {
		t.Fatalf("short reference: err = %v", err)
	}
	if _, err := New(genomics.Sequence{Name: "s", Seq: bytes.Repeat([]byte("Z"), 100)}, Config{}); err == nil {
		t.Fatal("invalid bases accepted")
	}
}

func TestReverseComplement(t *testing.T) {
	if got := ReverseComplement([]byte("ACGTN")); string(got) != "NACGT" {
		t.Fatalf("ReverseComplement = %q", got)
	}
	// Involution on ACGT-only strings.
	in := []byte("GATTACA")
	if got := ReverseComplement(ReverseComplement(in)); !bytes.Equal(got, in) {
		t.Fatalf("double complement = %q", got)
	}
}

func TestShortReadUnmapped(t *testing.T) {
	a, _, _ := mkAligner(t, 1000, 6)
	aln := a.AlignRead(genomics.Read{ID: "tiny", Seq: []byte("ACGT"), Qual: []byte("IIII")})
	if !aln.Unmapped() {
		t.Fatal("read shorter than K must be unmapped")
	}
}

// Property: every exact substring of length ≥ K+stride aligns back to its
// source position (or an identical copy elsewhere).
func TestAlignExactSubstringProperty(t *testing.T) {
	a, ref, _ := mkAligner(t, 3000, 7)
	f := func(startRaw, lenRaw uint16) bool {
		length := 40 + int(lenRaw%80)
		if length > ref.Len() {
			return true
		}
		start := int(startRaw) % (ref.Len() - length + 1)
		read := genomics.Read{
			ID:   "p",
			Seq:  append([]byte(nil), ref.Seq[start:start+length]...),
			Qual: bytes.Repeat([]byte("I"), length),
		}
		aln := a.AlignRead(read)
		if aln.Unmapped() || aln.NM != 0 {
			return false
		}
		// The placement must be sequence-identical to the read.
		p := aln.Pos - 1
		return bytes.Equal(ref.Seq[p:p+length], read.Seq)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAlignRead(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := genomics.GenerateReference(rng, "chr1", 100000)
	a, err := New(ref, Config{})
	if err != nil {
		b.Fatal(err)
	}
	reads, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{
		Count: 256, Length: 100, ErrorRate: 0.01,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.AlignRead(reads[i%len(reads)])
	}
}
