// Package align implements the read aligner that stands in for BWA in the
// SCAN platform: a k-mer seed-and-extend mapper against a single reference
// sequence. It indexes every k-mer of the reference, seeds candidate
// placements from several read offsets, verifies candidates by Hamming
// distance (the synthetic read simulator produces substitution errors
// only), and emits SAM records with mapping qualities derived from the gap
// between the best and second-best placements.
package align

import (
	"errors"
	"fmt"

	"scan/internal/genomics"
)

// Config controls alignment.
type Config struct {
	// K is the seed length (default 16).
	K int
	// SeedStride is the distance between seed offsets within the read
	// (default K, i.e. non-overlapping seeds).
	SeedStride int
	// MaxMismatches is the largest Hamming distance accepted before a read
	// is reported unmapped (default 6).
	MaxMismatches int
}

func (c *Config) fill() {
	if c.K <= 0 {
		c.K = 16
	}
	if c.SeedStride <= 0 {
		c.SeedStride = c.K
	}
	if c.MaxMismatches <= 0 {
		c.MaxMismatches = 6
	}
}

// Aligner maps reads against one indexed reference.
type Aligner struct {
	cfg   Config
	ref   genomics.Sequence
	seeds map[string][]int32
}

// ErrShortReference is returned when the reference is shorter than the seed
// length.
var ErrShortReference = errors.New("align: reference shorter than seed length")

// New indexes ref for alignment.
func New(ref genomics.Sequence, cfg Config) (*Aligner, error) {
	cfg.fill()
	if ref.Len() < cfg.K {
		return nil, ErrShortReference
	}
	if err := genomics.ValidateBases(ref.Seq); err != nil {
		return nil, fmt.Errorf("align: bad reference: %w", err)
	}
	a := &Aligner{cfg: cfg, ref: ref, seeds: make(map[string][]int32)}
	seq := genomics.Upper(ref.Seq)
	for i := 0; i+cfg.K <= len(seq); i++ {
		kmer := string(seq[i : i+cfg.K])
		a.seeds[kmer] = append(a.seeds[kmer], int32(i))
	}
	return a, nil
}

// Reference returns the indexed reference.
func (a *Aligner) Reference() genomics.Sequence { return a.ref }

// Header returns the SAM header for this aligner's reference.
func (a *Aligner) Header() genomics.Header {
	return genomics.NewHeader(genomics.RefInfo{Name: a.ref.Name, Length: a.ref.Len()})
}

// AlignRead maps one read, returning a SAM record (possibly unmapped).
func (a *Aligner) AlignRead(r genomics.Read) genomics.Alignment {
	fwd, fwdMM, fwdSecond := a.bestPlacement(r.Seq)
	rcSeq := ReverseComplement(r.Seq)
	rev, revMM, revSecond := a.bestPlacement(rcSeq)

	best, bestMM, second := fwd, fwdMM, fwdSecond
	reverse := false
	if revMM < bestMM {
		best, bestMM, second = rev, revMM, revSecond
		reverse = true
	} else if revMM == bestMM && rev >= 0 && fwd >= 0 && rev != fwd {
		// Equally good placement on the other strand: ambiguous.
		second = bestMM
	}

	if best < 0 || bestMM > a.cfg.MaxMismatches {
		return genomics.Alignment{
			QName: r.ID, Flag: genomics.FlagUnmapped,
			Seq: r.Seq, Qual: r.Qual, NM: -1,
		}
	}
	aln := genomics.Alignment{
		QName: r.ID,
		RName: a.ref.Name,
		Pos:   best + 1, // SAM is 1-based
		MapQ:  mapQ(bestMM, second, a.cfg.MaxMismatches),
		CIGAR: fmt.Sprintf("%dM", len(r.Seq)),
		NM:    bestMM,
	}
	if reverse {
		aln.Flag |= genomics.FlagReverseStrand
		aln.Seq = rcSeq
		aln.Qual = reverseBytes(r.Qual)
	} else {
		aln.Seq = r.Seq
		aln.Qual = r.Qual
	}
	return aln
}

// bestPlacement returns the 0-based best candidate position, its mismatch
// count, and the mismatch count of the second-best distinct candidate
// (maxInt when none). pos is -1 when no candidate was found.
func (a *Aligner) bestPlacement(seq []byte) (pos, mismatches, second int) {
	const none = 1 << 30
	pos, mismatches, second = -1, none, none
	if len(seq) < a.cfg.K {
		return
	}
	tried := make(map[int32]struct{})
	consider := func(cand int32) {
		if cand < 0 || int(cand)+len(seq) > a.ref.Len() {
			return
		}
		if _, dup := tried[cand]; dup {
			return
		}
		tried[cand] = struct{}{}
		// Counting beyond the current second-best cannot change the result,
		// so use it as the early-exit limit.
		limit := second
		if limit > len(seq) {
			limit = len(seq)
		}
		mm := hamming(a.ref.Seq[cand:int(cand)+len(seq)], seq, limit)
		switch {
		case mm < mismatches:
			second = mismatches
			mismatches = mm
			pos = int(cand)
		case mm < second:
			second = mm
		}
	}
	for off := 0; off+a.cfg.K <= len(seq); off += a.cfg.SeedStride {
		kmer := string(seq[off : off+a.cfg.K])
		for _, p := range a.seeds[kmer] {
			consider(p - int32(off))
		}
	}
	// Also seed from the read tail so trailing-unique reads map.
	if tail := len(seq) - a.cfg.K; tail > 0 && tail%a.cfg.SeedStride != 0 {
		kmer := string(seq[tail:])
		for _, p := range a.seeds[kmer] {
			consider(p - int32(tail))
		}
	}
	return
}

// hamming counts mismatches between equal-length slices, giving up once the
// count exceeds limit (a standard early-exit optimisation).
func hamming(a, b []byte, limit int) int {
	mm := 0
	for i := range a {
		if a[i] != b[i] {
			mm++
			if mm > limit {
				return mm
			}
		}
	}
	return mm
}

// mapQ converts the best/second-best mismatch gap to a Phred-scaled mapping
// quality in [0, 60], echoing how real mappers derive MAPQ.
func mapQ(best, second, maxMM int) int {
	if best > maxMM {
		return 0
	}
	if second >= 1<<29 {
		return 60 // unique placement
	}
	gap := second - best
	if gap <= 0 {
		return 0 // ambiguous
	}
	q := gap * 20
	if q > 60 {
		q = 60
	}
	return q
}

// AlignAll maps every read and returns coordinate-sorted records along with
// the number that mapped.
func (a *Aligner) AlignAll(reads []genomics.Read) (alns []genomics.Alignment, mapped int) {
	alns = make([]genomics.Alignment, 0, len(reads))
	for _, r := range reads {
		aln := a.AlignRead(r)
		if !aln.Unmapped() {
			mapped++
		}
		alns = append(alns, aln)
	}
	genomics.SortAlignments(alns)
	return alns, mapped
}

// ReverseComplement returns the reverse complement of seq (N maps to N).
func ReverseComplement(seq []byte) []byte {
	out := make([]byte, len(seq))
	for i, b := range seq {
		out[len(seq)-1-i] = complement(b)
	}
	return out
}

func complement(b byte) byte {
	switch b {
	case 'A', 'a':
		return 'T'
	case 'C', 'c':
		return 'G'
	case 'G', 'g':
		return 'C'
	case 'T', 't':
		return 'A'
	default:
		return 'N'
	}
}

func reverseBytes(b []byte) []byte {
	out := make([]byte, len(b))
	for i := range b {
		out[len(b)-1-i] = b[i]
	}
	return out
}
