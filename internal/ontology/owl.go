package ontology

// This file provides thin OWL-flavoured helpers over the raw triple API:
// declaring classes and named individuals the way the paper's knowledge base
// does (owl:NamedIndividual instances of scan-ontology classes with data
// properties such as inputFileSize, CPU, RAM, eTime).

// DeclareClass asserts class rdf:type owl:Class.
func (g *Graph) DeclareClass(class Term) {
	g.Add(Triple{class, NewIRI(RDFType), NewIRI(OWLClass)})
}

// DeclareSubClass asserts sub rdfs:subClassOf super (declaring both classes).
func (g *Graph) DeclareSubClass(sub, super Term) {
	g.DeclareClass(sub)
	g.DeclareClass(super)
	g.Add(Triple{sub, NewIRI(RDFSSubClassOf), super})
}

// DeclareObjectProperty asserts p rdf:type owl:ObjectProperty.
func (g *Graph) DeclareObjectProperty(p Term) {
	g.Add(Triple{p, NewIRI(RDFType), NewIRI(OWLObjectProperty)})
}

// DeclareDataProperty asserts p rdf:type owl:DatatypeProperty.
func (g *Graph) DeclareDataProperty(p Term) {
	g.Add(Triple{p, NewIRI(RDFType), NewIRI(OWLDataProperty)})
}

// AddIndividual declares iri as an owl:NamedIndividual of the given class
// and attaches the property/value pairs. It mirrors the paper's RDF/OWL
// snippets, e.g. the GATK1 individual with inputFileSize 10, steps 1,
// RAM 4, eTime 180, CPU 8.
func (g *Graph) AddIndividual(iri, class Term, props map[Term]Term) {
	g.Add(Triple{iri, NewIRI(RDFType), NewIRI(OWLNamedIndividual)})
	g.Add(Triple{iri, NewIRI(RDFType), class})
	for p, o := range props {
		g.Add(Triple{iri, p, o})
	}
}

// Individuals returns all owl:NamedIndividual subjects that are also typed
// with the given class.
func (g *Graph) Individuals(class Term) []Term {
	named := NewIRI(OWLNamedIndividual)
	var out []Term
	for _, s := range g.SubjectsOfType(class) {
		if g.Has(Triple{s, NewIRI(RDFType), named}) {
			out = append(out, s)
		}
	}
	return out
}

// IsA reports whether s has rdf:type class, following rdfs:subClassOf
// upward (a small transitive closure; cycles are tolerated).
func (g *Graph) IsA(s, class Term) bool {
	typeIRI := NewIRI(RDFType)
	subIRI := NewIRI(RDFSSubClassOf)
	seen := map[Term]bool{}
	var stack []Term
	for _, t := range g.Objects(s, typeIRI) {
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[c] {
			continue
		}
		seen[c] = true
		if c == class {
			return true
		}
		stack = append(stack, g.Objects(c, subIRI)...)
	}
	return false
}
