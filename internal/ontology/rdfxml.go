package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// EncodeRDFXML writes the graph in the RDF/XML style of the paper's
// knowledge-base listings:
//
//	<owl:NamedIndividual rdf:about="&scan-ontology;GATK1">
//	    <rdf:type rdf:resource="&scan-ontology;Application"/>
//	    <scan-ontology:inputFileSize>10</scan-ontology:inputFileSize>
//	    ...
//	</owl:NamedIndividual>
//
// Subjects typed owl:NamedIndividual render as individual elements with
// their data and object properties nested; remaining triples render as
// rdf:Description elements. Entity references (&prefix;local) are emitted
// for every registered namespace, matching the paper's notation.
func (g *Graph) EncodeRDFXML(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, `<?xml version="1.0"?>`); err != nil {
		return err
	}
	// DOCTYPE entities for registered prefixes, as Protégé emits.
	if len(g.order) > 0 {
		fmt.Fprintln(bw, `<!DOCTYPE rdf:RDF [`)
		for _, p := range g.order {
			fmt.Fprintf(bw, "    <!ENTITY %s \"%s\" >\n", xmlPrefixName(p), g.prefixes[p])
		}
		fmt.Fprintln(bw, `]>`)
	}
	fmt.Fprint(bw, `<rdf:RDF xmlns:rdf="http://www.w3.org/1999/02/22-rdf-syntax-ns#"`)
	for _, p := range g.order {
		fmt.Fprintf(bw, "\n         xmlns:%s=\"%s\"", xmlPrefixName(p), g.prefixes[p])
	}
	fmt.Fprintln(bw, ">")

	named := NewIRI(OWLNamedIndividual)
	typeIRI := NewIRI(RDFType)
	individuals := g.Subjects(typeIRI, named)
	isIndividual := make(map[Term]bool, len(individuals))
	for _, s := range individuals {
		isIndividual[s] = true
	}

	for _, s := range individuals {
		fmt.Fprintf(bw, "\n    <!-- %s -->\n", s.Value)
		fmt.Fprintf(bw, "    <owl:NamedIndividual rdf:about=\"%s\">\n", g.entityRef(s))
		for _, t := range g.sortedProps(s) {
			if t.P == typeIRI && t.O == named {
				continue // implied by the element name
			}
			g.writeXMLProp(bw, t)
		}
		fmt.Fprintln(bw, "    </owl:NamedIndividual>")
	}

	// Everything that is not an individual's triple: plain descriptions.
	var rest []Triple
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if !isIndividual[t.S] {
			rest = append(rest, t)
		}
		return true
	})
	sort.Slice(rest, func(i, j int) bool {
		if c := rest[i].S.Compare(rest[j].S); c != 0 {
			return c < 0
		}
		if c := rest[i].P.Compare(rest[j].P); c != 0 {
			return c < 0
		}
		return rest[i].O.Compare(rest[j].O) < 0
	})
	for i := 0; i < len(rest); {
		s := rest[i].S
		fmt.Fprintf(bw, "\n    <rdf:Description rdf:about=\"%s\">\n", g.entityRef(s))
		for ; i < len(rest) && rest[i].S == s; i++ {
			g.writeXMLProp(bw, rest[i])
		}
		fmt.Fprintln(bw, "    </rdf:Description>")
	}

	fmt.Fprintln(bw, "</rdf:RDF>")
	return bw.Flush()
}

// sortedProps returns s's triples ordered by predicate then object.
func (g *Graph) sortedProps(s Term) []Triple {
	var out []Triple
	g.ForEachMatch(&s, nil, nil, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].P.Compare(out[j].P); c != 0 {
			return c < 0
		}
		return out[i].O.Compare(out[j].O) < 0
	})
	return out
}

// writeXMLProp renders one property: object properties as rdf:resource
// references, literals as element text.
func (g *Graph) writeXMLProp(bw *bufio.Writer, t Triple) {
	name := g.xmlPropName(t.P)
	if t.O.Kind == IRI || t.O.Kind == Blank {
		fmt.Fprintf(bw, "        <%s rdf:resource=\"%s\"/>\n", name, g.entityRef(t.O))
		return
	}
	fmt.Fprintf(bw, "        <%s>%s</%s>\n", name, xmlEscape(t.O.Value), name)
}

// entityRef renders an IRI using the &prefix;local entity notation when a
// registered namespace matches (the paper's "&scan-ontology;GATK1" form).
func (g *Graph) entityRef(t Term) string {
	if t.Kind != IRI {
		return xmlEscape(t.Value)
	}
	for _, p := range g.order {
		ns := g.prefixes[p]
		if strings.HasPrefix(t.Value, ns) && len(t.Value) > len(ns) {
			return "&" + xmlPrefixName(p) + ";" + xmlEscape(t.Value[len(ns):])
		}
	}
	return xmlEscape(t.Value)
}

// xmlPropName renders a predicate as prefix:local, falling back to rdf
// vocabulary names.
func (g *Graph) xmlPropName(p Term) string {
	if p.Value == RDFType {
		return "rdf:type"
	}
	for _, pre := range g.order {
		ns := g.prefixes[pre]
		if strings.HasPrefix(p.Value, ns) && len(p.Value) > len(ns) {
			return xmlPrefixName(pre) + ":" + p.Value[len(ns):]
		}
	}
	return p.Value // raw IRI; rare, but better than dropping the triple
}

// xmlPrefixName maps a registered prefix to its XML namespace prefix. The
// paper uses "scan-ontology" as the XML prefix for the scan namespace.
func xmlPrefixName(p string) string {
	if p == "scan" {
		return "scan-ontology"
	}
	return p
}

func xmlEscape(s string) string {
	r := strings.NewReplacer(
		"&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;",
	)
	return r.Replace(s)
}
