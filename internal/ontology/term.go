// Package ontology implements the RDF-style triple store underneath SCAN's
// application knowledge base. The paper stores application profiles as OWL
// named individuals and queries them with SPARQL; this package provides the
// graph model (terms, triples, indexed graphs, namespace prefixes) and a
// Turtle-subset codec for persisting knowledge bases.
package ontology

import (
	"fmt"
	"strconv"
	"strings"
)

// TermKind discriminates the three RDF term categories.
type TermKind uint8

// Term kinds.
const (
	IRI TermKind = iota
	Literal
	Blank
)

// Datatype IRIs for typed literals (XML Schema, as in RDF 1.1).
const (
	XSDString  = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDouble  = "http://www.w3.org/2001/XMLSchema#double"
	XSDBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
)

// Well-known RDF/RDFS/OWL vocabulary IRIs used by the knowledge base.
const (
	RDFType            = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel          = "http://www.w3.org/2000/01/rdf-schema#label"
	RDFSComment        = "http://www.w3.org/2000/01/rdf-schema#comment"
	RDFSSubClassOf     = "http://www.w3.org/2000/01/rdf-schema#subClassOf"
	OWLClass           = "http://www.w3.org/2002/07/owl#Class"
	OWLNamedIndividual = "http://www.w3.org/2002/07/owl#NamedIndividual"
	OWLObjectProperty  = "http://www.w3.org/2002/07/owl#ObjectProperty"
	OWLDataProperty    = "http://www.w3.org/2002/07/owl#DatatypeProperty"
)

// Term is an RDF term: an IRI, a typed literal, or a blank node. Terms are
// comparable values, so they can key Go maps directly.
type Term struct {
	Kind     TermKind
	Value    string // IRI string, blank node label, or literal lexical form
	Datatype string // literal datatype IRI; empty for IRIs and blanks
}

// NewIRI returns an IRI term.
func NewIRI(iri string) Term { return Term{Kind: IRI, Value: iri} }

// NewBlank returns a blank node with the given label.
func NewBlank(label string) Term { return Term{Kind: Blank, Value: label} }

// NewString returns an xsd:string literal.
func NewString(s string) Term { return Term{Kind: Literal, Value: s, Datatype: XSDString} }

// NewInt returns an xsd:integer literal.
func NewInt(i int64) Term {
	return Term{Kind: Literal, Value: strconv.FormatInt(i, 10), Datatype: XSDInteger}
}

// NewFloat returns an xsd:double literal.
func NewFloat(f float64) Term {
	return Term{Kind: Literal, Value: strconv.FormatFloat(f, 'g', -1, 64), Datatype: XSDDouble}
}

// NewBool returns an xsd:boolean literal.
func NewBool(b bool) Term {
	return Term{Kind: Literal, Value: strconv.FormatBool(b), Datatype: XSDBoolean}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == IRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == Literal }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == Blank }

// IsNumeric reports whether the term is an integer or double literal.
func (t Term) IsNumeric() bool {
	return t.Kind == Literal && (t.Datatype == XSDInteger || t.Datatype == XSDDouble)
}

// AsInt returns the literal as an int64. ok is false for non-integer terms.
func (t Term) AsInt() (v int64, ok bool) {
	if t.Kind != Literal || t.Datatype != XSDInteger {
		return 0, false
	}
	v, err := strconv.ParseInt(t.Value, 10, 64)
	return v, err == nil
}

// AsFloat returns the literal as a float64. Integer literals convert
// losslessly; ok is false for non-numeric terms.
func (t Term) AsFloat() (v float64, ok bool) {
	if !t.IsNumeric() {
		return 0, false
	}
	v, err := strconv.ParseFloat(t.Value, 64)
	return v, err == nil
}

// AsBool returns the literal as a bool. ok is false for non-boolean terms.
func (t Term) AsBool() (v bool, ok bool) {
	if t.Kind != Literal || t.Datatype != XSDBoolean {
		return false, false
	}
	v, err := strconv.ParseBool(t.Value)
	return v, err == nil
}

// String renders the term in N-Triples-like syntax.
func (t Term) String() string {
	switch t.Kind {
	case IRI:
		return "<" + t.Value + ">"
	case Blank:
		return "_:" + t.Value
	default:
		switch t.Datatype {
		case XSDInteger, XSDDouble, XSDBoolean:
			return t.Value
		default:
			return strconv.Quote(t.Value)
		}
	}
}

// Compare orders terms: IRIs < literals < blanks; within literals, numeric
// literals order by value, others lexically. It is the ordering used by
// SPARQL ORDER BY.
func (t Term) Compare(o Term) int {
	if t.Kind != o.Kind {
		return int(t.Kind) - int(o.Kind)
	}
	if t.Kind == Literal && t.IsNumeric() && o.IsNumeric() {
		a, _ := t.AsFloat()
		b, _ := o.AsFloat()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(t.Value, o.Value)
}

// Triple is a single (subject, predicate, object) statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple in N-Triples-like syntax.
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}
