package ontology

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Graph is an in-memory indexed triple store with set semantics: adding a
// duplicate triple is a no-op. It maintains SPO, POS and OSP indexes so any
// single- or double-wildcard match runs without a full scan.
//
// Graph is not safe for concurrent mutation; the knowledge base wraps it
// with its own lock.
type Graph struct {
	spo      map[Term]map[Term]map[Term]struct{}
	pos      map[Term]map[Term]map[Term]struct{}
	osp      map[Term]map[Term]map[Term]struct{}
	size     int
	epoch    atomic.Uint64
	prefixes map[string]string // prefix -> namespace IRI
	order    []string          // prefix insertion order for stable encoding
}

// NewGraph returns an empty graph.
func NewGraph() *Graph {
	return &Graph{
		spo:      make(map[Term]map[Term]map[Term]struct{}),
		pos:      make(map[Term]map[Term]map[Term]struct{}),
		osp:      make(map[Term]map[Term]map[Term]struct{}),
		prefixes: make(map[string]string),
	}
}

// Len returns the number of distinct triples.
func (g *Graph) Len() int { return g.size }

// Epoch returns the graph's write epoch: a counter advanced by every
// mutation that actually changes the triple set (duplicate adds and
// removals of absent triples do not count). Caches layered above the graph
// compare epochs to decide whether materialized views are still current.
// Unlike the rest of Graph, Epoch is safe to call concurrently with a
// mutation holding the owner's lock.
func (g *Graph) Epoch() uint64 { return g.epoch.Load() }

// Add inserts the triple, reporting whether it was new.
func (g *Graph) Add(t Triple) bool {
	if !index3(g.spo, t.S, t.P, t.O) {
		return false
	}
	index3(g.pos, t.P, t.O, t.S)
	index3(g.osp, t.O, t.S, t.P)
	g.size++
	g.epoch.Add(1)
	return true
}

// AddAll inserts every triple in ts, returning the number newly added.
func (g *Graph) AddAll(ts []Triple) int {
	n := 0
	for _, t := range ts {
		if g.Add(t) {
			n++
		}
	}
	return n
}

// Remove deletes the triple, reporting whether it was present.
func (g *Graph) Remove(t Triple) bool {
	if !unindex3(g.spo, t.S, t.P, t.O) {
		return false
	}
	unindex3(g.pos, t.P, t.O, t.S)
	unindex3(g.osp, t.O, t.S, t.P)
	g.size--
	g.epoch.Add(1)
	return true
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	m1, ok := g.spo[t.S]
	if !ok {
		return false
	}
	m2, ok := m1[t.P]
	if !ok {
		return false
	}
	_, ok = m2[t.O]
	return ok
}

// Match returns all triples matching the pattern; a nil pointer is a
// wildcard. The result order is unspecified.
func (g *Graph) Match(s, p, o *Term) []Triple {
	var out []Triple
	g.ForEachMatch(s, p, o, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// ForEachMatch streams every triple matching the pattern to fn; fn returns
// false to stop early. It selects the most specific index available.
func (g *Graph) ForEachMatch(s, p, o *Term, fn func(Triple) bool) {
	switch {
	case s != nil:
		m1 := g.spo[*s]
		for pp, m2 := range m1 {
			if p != nil && pp != *p {
				continue
			}
			for oo := range m2 {
				if o != nil && oo != *o {
					continue
				}
				if !fn(Triple{*s, pp, oo}) {
					return
				}
			}
		}
	case p != nil:
		m1 := g.pos[*p]
		for oo, m2 := range m1 {
			if o != nil && oo != *o {
				continue
			}
			for ss := range m2 {
				if !fn(Triple{ss, *p, oo}) {
					return
				}
			}
		}
	case o != nil:
		m1 := g.osp[*o]
		for ss, m2 := range m1 {
			for pp := range m2 {
				if !fn(Triple{ss, pp, *o}) {
					return
				}
			}
		}
	default:
		for ss, m1 := range g.spo {
			for pp, m2 := range m1 {
				for oo := range m2 {
					if !fn(Triple{ss, pp, oo}) {
						return
					}
				}
			}
		}
	}
}

// Objects returns the objects of all (s, p, *) triples.
func (g *Graph) Objects(s, p Term) []Term {
	var out []Term
	for o := range g.spo[s][p] {
		out = append(out, o)
	}
	sortTerms(out)
	return out
}

// Object returns the single object of (s, p, *), with ok=false when the
// subject has zero or multiple values for the property.
func (g *Graph) Object(s, p Term) (Term, bool) {
	objs := g.spo[s][p]
	if len(objs) != 1 {
		return Term{}, false
	}
	for o := range objs {
		return o, true
	}
	return Term{}, false
}

// Subjects returns the subjects of all (*, p, o) triples.
func (g *Graph) Subjects(p, o Term) []Term {
	var out []Term
	for s := range g.pos[p][o] {
		out = append(out, s)
	}
	sortTerms(out)
	return out
}

// SubjectsOfType returns all subjects with rdf:type class.
func (g *Graph) SubjectsOfType(class Term) []Term {
	return g.Subjects(NewIRI(RDFType), class)
}

// Triples returns every triple in deterministic (sorted) order. Intended
// for serialisation and tests, not hot paths.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.size)
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].S.Compare(out[j].S); c != 0 {
			return c < 0
		}
		if c := out[i].P.Compare(out[j].P); c != 0 {
			return c < 0
		}
		return out[i].O.Compare(out[j].O) < 0
	})
	return out
}

// SetPrefix registers a namespace prefix for QName expansion and encoding.
func (g *Graph) SetPrefix(prefix, ns string) {
	if _, exists := g.prefixes[prefix]; !exists {
		g.order = append(g.order, prefix)
	}
	g.prefixes[prefix] = ns
}

// Prefix resolves a registered prefix to its namespace IRI.
func (g *Graph) Prefix(prefix string) (string, bool) {
	ns, ok := g.prefixes[prefix]
	return ns, ok
}

// Prefixes returns registered prefixes in insertion order.
func (g *Graph) Prefixes() []string {
	return append([]string(nil), g.order...)
}

// Expand turns a QName like "scan:GATK1" into an IRI term using the
// registered prefixes. Strings without a registered prefix are returned as
// IRIs verbatim.
func (g *Graph) Expand(qname string) Term {
	if i := strings.Index(qname, ":"); i >= 0 {
		if ns, ok := g.prefixes[qname[:i]]; ok {
			return NewIRI(ns + qname[i+1:])
		}
	}
	return NewIRI(qname)
}

// Compact renders an IRI as a QName when a registered namespace matches,
// otherwise as <iri>.
func (g *Graph) Compact(t Term) string {
	if t.Kind != IRI {
		return t.String()
	}
	best, bestNS := "", ""
	for _, p := range g.order {
		ns := g.prefixes[p]
		if strings.HasPrefix(t.Value, ns) && len(ns) > len(bestNS) {
			local := t.Value[len(ns):]
			if validLocal(local) {
				best, bestNS = p, ns
			}
		}
	}
	if bestNS != "" {
		return best + ":" + t.Value[len(bestNS):]
	}
	return t.String()
}

// validLocal reports whether s can appear as the local part of a QName in
// our Turtle subset.
func validLocal(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !(r == '_' || r == '-' || r == '.' ||
			('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z') || ('0' <= r && r <= '9')) {
			return false
		}
	}
	return true
}

func index3(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m2, ok := m[a]
	if !ok {
		m2 = make(map[Term]map[Term]struct{})
		m[a] = m2
	}
	m3, ok := m2[b]
	if !ok {
		m3 = make(map[Term]struct{})
		m2[b] = m3
	}
	if _, exists := m3[c]; exists {
		return false
	}
	m3[c] = struct{}{}
	return true
}

func unindex3(m map[Term]map[Term]map[Term]struct{}, a, b, c Term) bool {
	m2, ok := m[a]
	if !ok {
		return false
	}
	m3, ok := m2[b]
	if !ok {
		return false
	}
	if _, exists := m3[c]; !exists {
		return false
	}
	delete(m3, c)
	if len(m3) == 0 {
		delete(m2, b)
		if len(m2) == 0 {
			delete(m, a)
		}
	}
	return true
}

func sortTerms(ts []Term) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
}

// DescribeIndividual returns a human-readable dump of every property of s,
// used by scanctl's inspect command and in debugging.
func (g *Graph) DescribeIndividual(s Term) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", g.Compact(s))
	type pair struct{ p, o Term }
	var props []pair
	g.ForEachMatch(&s, nil, nil, func(t Triple) bool {
		props = append(props, pair{t.P, t.O})
		return true
	})
	sort.Slice(props, func(i, j int) bool {
		if c := props[i].p.Compare(props[j].p); c != 0 {
			return c < 0
		}
		return props[i].o.Compare(props[j].o) < 0
	})
	for _, pr := range props {
		fmt.Fprintf(&b, "  %s %s\n", g.Compact(pr.p), g.Compact(pr.o))
	}
	return b.String()
}
