package ontology

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodeRDFXMLPaperStyle(t *testing.T) {
	g := NewGraph()
	g.SetPrefix("scan", scanNS)
	g.SetPrefix("owl", "http://www.w3.org/2002/07/owl#")
	g.AddIndividual(NewIRI(scanNS+"GATK1"), NewIRI(scanNS+"Application"), map[Term]Term{
		NewIRI(scanNS + "inputFileSize"): NewInt(10),
		NewIRI(scanNS + "steps"):         NewInt(1),
		NewIRI(scanNS + "RAM"):           NewInt(4),
		NewIRI(scanNS + "eTime"):         NewInt(180),
		NewIRI(scanNS + "CPU"):           NewInt(8),
	})
	var buf bytes.Buffer
	if err := g.EncodeRDFXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The exact constructs of the paper's Section III-A listing.
	for _, want := range []string{
		`<owl:NamedIndividual rdf:about="&scan-ontology;GATK1">`,
		`<rdf:type rdf:resource="&scan-ontology;Application"/>`,
		`<scan-ontology:inputFileSize>10</scan-ontology:inputFileSize>`,
		`<scan-ontology:eTime>180</scan-ontology:eTime>`,
		`<scan-ontology:CPU>8</scan-ontology:CPU>`,
		`<!ENTITY scan-ontology "` + scanNS + `" >`,
		`</owl:NamedIndividual>`,
		`</rdf:RDF>`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RDF/XML missing %q:\n%s", want, out)
		}
	}
	// The redundant owl:NamedIndividual type triple must not be repeated
	// inside the element.
	if strings.Contains(out, `rdf:resource="&owl;NamedIndividual"`) {
		t.Error("NamedIndividual type repeated inside element")
	}
}

func TestEncodeRDFXMLDescriptions(t *testing.T) {
	g := NewGraph()
	g.SetPrefix("s", "urn:s#")
	g.Add(Triple{NewIRI("urn:s#a"), NewIRI("urn:s#knows"), NewIRI("urn:s#b")})
	g.Add(Triple{NewIRI("urn:s#a"), NewIRI("urn:s#label"), NewString(`x <&> "y"`)})
	var buf bytes.Buffer
	if err := g.EncodeRDFXML(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `<rdf:Description rdf:about="&s;a">`) {
		t.Errorf("missing description element:\n%s", out)
	}
	if !strings.Contains(out, `<s:knows rdf:resource="&s;b"/>`) {
		t.Errorf("missing object property:\n%s", out)
	}
	// Literal content must be XML-escaped.
	if !strings.Contains(out, `x &lt;&amp;&gt; &quot;y&quot;`) {
		t.Errorf("literal not escaped:\n%s", out)
	}
}
