package ontology

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func buildSampleGraph() *Graph {
	g := NewGraph()
	g.SetPrefix("scan", scanNS)
	g.SetPrefix("owl", "http://www.w3.org/2002/07/owl#")
	g.AddIndividual(NewIRI(scanNS+"GATK1"), NewIRI(scanNS+"Application"), map[Term]Term{
		NewIRI(scanNS + "inputFileSize"): NewInt(10),
		NewIRI(scanNS + "steps"):         NewInt(1),
		NewIRI(scanNS + "RAM"):           NewInt(4),
		NewIRI(scanNS + "eTime"):         NewInt(180),
		NewIRI(scanNS + "CPU"):           NewInt(8),
		NewIRI(scanNS + "performance"):   NewString("good"),
		NewIRI(scanNS + "speedup"):       NewFloat(3.11),
		NewIRI(scanNS + "multithreaded"): NewBool(true),
	})
	return g
}

func TestTurtleRoundTrip(t *testing.T) {
	g := buildSampleGraph()
	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	if err := g2.Decode(&buf); err != nil {
		t.Fatalf("decode: %v\n---\n%s", err, buf.String())
	}
	if !g.Equal(g2) {
		t.Fatalf("round trip lost triples:\noriginal:\n%v\ndecoded:\n%v", g.Triples(), g2.Triples())
	}
	if _, ok := g2.Prefix("scan"); !ok {
		t.Fatal("prefix not preserved")
	}
}

func TestTurtleDeterministicEncoding(t *testing.T) {
	g := buildSampleGraph()
	var a, b bytes.Buffer
	if err := g.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := g.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("encoding not deterministic")
	}
}

func TestTurtleDecodeHandwritten(t *testing.T) {
	src := `
@prefix scan: <` + scanNS + `> .
# The paper's GATK2 individual.
scan:GATK2 a scan:Application ;
    scan:CPU 8 ;
    scan:steps 1 ;
    scan:RAM 4 ;
    scan:eTime 200 ;
    scan:ratio 3.11 ;
    scan:active true ;
    scan:inputFileSize 5 .
scan:GATK2 scan:label "variant caller" .
`
	g := NewGraph()
	if err := g.Decode(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	s := NewIRI(scanNS + "GATK2")
	if !g.Has(Triple{s, NewIRI(RDFType), NewIRI(scanNS + "Application")}) {
		t.Fatal("'a' keyword not expanded to rdf:type")
	}
	if v, ok := g.Object(s, NewIRI(scanNS+"eTime")); !ok {
		t.Fatal("eTime missing")
	} else if i, _ := v.AsInt(); i != 200 {
		t.Fatalf("eTime = %v", v)
	}
	if v, _ := g.Object(s, NewIRI(scanNS+"ratio")); v.Datatype != XSDDouble {
		t.Fatalf("ratio datatype = %q", v.Datatype)
	}
	if v, _ := g.Object(s, NewIRI(scanNS+"active")); v.Datatype != XSDBoolean {
		t.Fatalf("active datatype = %q", v.Datatype)
	}
	if v, _ := g.Object(s, NewIRI(scanNS+"label")); v.Value != "variant caller" {
		t.Fatalf("label = %v", v)
	}
	if g.Len() != 9 {
		t.Fatalf("Len = %d, want 9", g.Len())
	}
}

func TestTurtleDecodeObjectLists(t *testing.T) {
	src := `@prefix s: <urn:s#> .
s:app s:supports s:a, s:b, s:c .`
	g := NewGraph()
	if err := g.Decode(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	if got := len(g.Objects(NewIRI("urn:s#app"), NewIRI("urn:s#supports"))); got != 3 {
		t.Fatalf("object list produced %d triples, want 3", got)
	}
}

func TestTurtleDecodeEscapes(t *testing.T) {
	src := `@prefix s: <urn:s#> .
s:x s:note "line1\nline2 \"quoted\" tab\there" .`
	g := NewGraph()
	if err := g.Decode(strings.NewReader(src)); err != nil {
		t.Fatal(err)
	}
	v, ok := g.Object(NewIRI("urn:s#x"), NewIRI("urn:s#note"))
	if !ok {
		t.Fatal("missing literal")
	}
	want := "line1\nline2 \"quoted\" tab\there"
	if v.Value != want {
		t.Fatalf("literal = %q, want %q", v.Value, want)
	}
}

func TestTurtleDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"unknown prefix", `x:y x:p 1 .`},
		{"unterminated IRI", `<urn:x s p o .`},
		{"unterminated string", `@prefix s: <urn:s#> .` + "\n" + `s:a s:b "oops .`},
		{"literal subject", `@prefix s: <urn:s#> .` + "\n" + `"lit" s:p 1 .`},
		{"missing dot in prefix", `@prefix s: <urn:s#>`},
		{"bad directive", `@base <urn:x> .`},
		{"bad escape", `@prefix s: <urn:s#> .` + "\n" + `s:a s:b "x\q" .`},
	}
	for _, c := range cases {
		g := NewGraph()
		if err := g.Decode(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// Property: any graph built from a restricted random alphabet round-trips
// through Encode/Decode unchanged.
func TestTurtleRoundTripProperty(t *testing.T) {
	f := func(items []struct {
		S, P uint8
		Kind uint8
		IntV int32
		StrV string
	}) bool {
		g := NewGraph()
		g.SetPrefix("s", "urn:test#")
		for _, it := range items {
			s := NewIRI("urn:test#s" + string(rune('a'+it.S%6)))
			p := NewIRI("urn:test#p" + string(rune('a'+it.P%4)))
			var o Term
			switch it.Kind % 4 {
			case 0:
				o = NewInt(int64(it.IntV))
			case 1:
				o = NewFloat(float64(it.IntV) / 8)
			case 2:
				o = NewBool(it.IntV%2 == 0)
			default:
				// Restrict strings to printable ASCII our escaper handles.
				clean := strings.Map(func(r rune) rune {
					if r >= ' ' && r < 127 {
						return r
					}
					return '_'
				}, it.StrV)
				o = NewString(clean)
			}
			g.Add(Triple{s, p, o})
		}
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			return false
		}
		g2 := NewGraph()
		if err := g2.Decode(&buf); err != nil {
			return false
		}
		return g.Equal(g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDescribeIndividual(t *testing.T) {
	g := buildSampleGraph()
	desc := g.DescribeIndividual(NewIRI(scanNS + "GATK1"))
	if !strings.Contains(desc, "scan:GATK1") || !strings.Contains(desc, "scan:eTime 180") {
		t.Fatalf("DescribeIndividual output unexpected:\n%s", desc)
	}
}
