package ontology

import (
	"math/rand"
	"testing"
	"testing/quick"
)

const scanNS = "http://www.semanticweb.org/wxing/ontologies/scan-ontology#"

func tr(s, p, o string) Triple {
	return Triple{NewIRI(scanNS + s), NewIRI(scanNS + p), NewIRI(scanNS + o)}
}

func TestGraphAddHasRemove(t *testing.T) {
	g := NewGraph()
	tt := tr("GATK1", "performance", "good")
	if !g.Add(tt) {
		t.Fatal("first Add returned false")
	}
	if g.Add(tt) {
		t.Fatal("duplicate Add returned true")
	}
	if g.Len() != 1 || !g.Has(tt) {
		t.Fatal("triple missing after Add")
	}
	if !g.Remove(tt) {
		t.Fatal("Remove returned false")
	}
	if g.Remove(tt) {
		t.Fatal("second Remove returned true")
	}
	if g.Len() != 0 || g.Has(tt) {
		t.Fatal("triple present after Remove")
	}
}

func TestGraphMatchPatterns(t *testing.T) {
	g := NewGraph()
	g.Add(tr("GATK1", "requires", "CPU"))
	g.Add(tr("GATK1", "requires", "RAM"))
	g.Add(tr("GATK2", "requires", "CPU"))
	g.Add(tr("BWA", "produces", "SAM"))

	s := NewIRI(scanNS + "GATK1")
	p := NewIRI(scanNS + "requires")
	o := NewIRI(scanNS + "CPU")

	if got := len(g.Match(&s, nil, nil)); got != 2 {
		t.Fatalf("S** match = %d, want 2", got)
	}
	if got := len(g.Match(nil, &p, nil)); got != 3 {
		t.Fatalf("*P* match = %d, want 3", got)
	}
	if got := len(g.Match(nil, nil, &o)); got != 2 {
		t.Fatalf("**O match = %d, want 2", got)
	}
	if got := len(g.Match(&s, &p, nil)); got != 2 {
		t.Fatalf("SP* match = %d, want 2", got)
	}
	if got := len(g.Match(nil, &p, &o)); got != 2 {
		t.Fatalf("*PO match = %d, want 2", got)
	}
	if got := len(g.Match(&s, &p, &o)); got != 1 {
		t.Fatalf("SPO match = %d, want 1", got)
	}
	if got := len(g.Match(nil, nil, nil)); got != 4 {
		t.Fatalf("*** match = %d, want 4", got)
	}
}

func TestGraphForEachEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Add(tr("s", "p", string(rune('a'+i))))
	}
	count := 0
	g.ForEachMatch(nil, nil, nil, func(Triple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("early stop failed: visited %d", count)
	}
}

func TestObjectsSubjectsSorted(t *testing.T) {
	g := NewGraph()
	g.Add(tr("app", "supports", "c"))
	g.Add(tr("app", "supports", "a"))
	g.Add(tr("app", "supports", "b"))
	got := g.Objects(NewIRI(scanNS+"app"), NewIRI(scanNS+"supports"))
	if len(got) != 3 {
		t.Fatalf("got %d objects", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].Compare(got[i]) >= 0 {
			t.Fatal("objects not sorted")
		}
	}
}

func TestObjectSingle(t *testing.T) {
	g := NewGraph()
	s := NewIRI(scanNS + "GATK1")
	p := NewIRI(scanNS + "eTime")
	if _, ok := g.Object(s, p); ok {
		t.Fatal("Object on empty graph returned ok")
	}
	g.Add(Triple{s, p, NewInt(180)})
	v, ok := g.Object(s, p)
	if !ok {
		t.Fatal("Object not found")
	}
	if i, _ := v.AsInt(); i != 180 {
		t.Fatalf("Object = %v", v)
	}
	g.Add(Triple{s, p, NewInt(200)})
	if _, ok := g.Object(s, p); ok {
		t.Fatal("Object with two values returned ok")
	}
}

func TestTermLiterals(t *testing.T) {
	if v, ok := NewInt(42).AsInt(); !ok || v != 42 {
		t.Fatal("AsInt round-trip failed")
	}
	if v, ok := NewFloat(2.5).AsFloat(); !ok || v != 2.5 {
		t.Fatal("AsFloat round-trip failed")
	}
	if v, ok := NewInt(7).AsFloat(); !ok || v != 7 {
		t.Fatal("integer AsFloat failed")
	}
	if v, ok := NewBool(true).AsBool(); !ok || !v {
		t.Fatal("AsBool round-trip failed")
	}
	if _, ok := NewString("x").AsInt(); ok {
		t.Fatal("string AsInt should fail")
	}
	if _, ok := NewIRI("x").AsFloat(); ok {
		t.Fatal("IRI AsFloat should fail")
	}
}

func TestTermCompareNumeric(t *testing.T) {
	if NewInt(2).Compare(NewFloat(10)) >= 0 {
		t.Fatal("2 should sort before 10.0 numerically")
	}
	if NewString("2").Compare(NewString("10")) <= 0 {
		t.Fatal("strings sort lexically")
	}
	if NewIRI("a").Compare(NewString("a")) >= 0 {
		t.Fatal("IRIs sort before literals")
	}
}

func TestTermString(t *testing.T) {
	cases := map[string]Term{
		"<http://x/y>": NewIRI("http://x/y"),
		`"hi"`:         NewString("hi"),
		"42":           NewInt(42),
		"true":         NewBool(true),
		"_:b0":         NewBlank("b0"),
	}
	for want, term := range cases {
		if got := term.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestPrefixExpandCompact(t *testing.T) {
	g := NewGraph()
	g.SetPrefix("scan", scanNS)
	term := g.Expand("scan:GATK1")
	if term.Value != scanNS+"GATK1" {
		t.Fatalf("Expand = %v", term)
	}
	if got := g.Compact(term); got != "scan:GATK1" {
		t.Fatalf("Compact = %q", got)
	}
	// Unknown prefix passes through as IRI.
	raw := g.Expand("urn:x")
	if raw.Value != "urn:x" {
		t.Fatalf("unknown prefix Expand = %v", raw)
	}
	// IRI outside every namespace stays in <> form.
	if got := g.Compact(NewIRI("http://other/ns#z")); got != "<http://other/ns#z>" {
		t.Fatalf("Compact = %q", got)
	}
	// Local names with illegal characters must not compact.
	if got := g.Compact(NewIRI(scanNS + "a b")); got != "<"+scanNS+"a b>" {
		t.Fatalf("Compact = %q", got)
	}
	if names := g.sortedPrefixNames(); len(names) != 1 || names[0] != "scan" {
		t.Fatalf("prefixes = %v", names)
	}
}

func TestIndividualsAndIsA(t *testing.T) {
	g := NewGraph()
	app := NewIRI(scanNS + "Application")
	genomeApp := NewIRI(scanNS + "GenomeAnalysis")
	g.DeclareSubClass(genomeApp, app)
	g.AddIndividual(NewIRI(scanNS+"GATK1"), genomeApp, map[Term]Term{
		NewIRI(scanNS + "eTime"): NewInt(180),
	})
	g.AddIndividual(NewIRI(scanNS+"BWA1"), app, nil)

	if got := g.Individuals(genomeApp); len(got) != 1 {
		t.Fatalf("Individuals(GenomeAnalysis) = %d, want 1", len(got))
	}
	if got := g.Individuals(app); len(got) != 1 {
		t.Fatalf("Individuals(Application) = %d, want 1 (direct only)", len(got))
	}
	if !g.IsA(NewIRI(scanNS+"GATK1"), app) {
		t.Fatal("IsA should follow subClassOf")
	}
	if g.IsA(NewIRI(scanNS+"BWA1"), genomeApp) {
		t.Fatal("IsA must not invent subclass relations")
	}
}

func TestIsACycleTolerant(t *testing.T) {
	g := NewGraph()
	a, b := NewIRI(scanNS+"A"), NewIRI(scanNS+"B")
	g.DeclareSubClass(a, b)
	g.DeclareSubClass(b, a)
	g.AddIndividual(NewIRI(scanNS+"x"), a, nil)
	if !g.IsA(NewIRI(scanNS+"x"), b) {
		t.Fatal("cycle traversal failed")
	}
	if g.IsA(NewIRI(scanNS+"x"), NewIRI(scanNS+"C")) {
		t.Fatal("false positive in cyclic hierarchy")
	}
}

func TestCloneAndEqual(t *testing.T) {
	g := NewGraph()
	g.SetPrefix("scan", scanNS)
	g.Add(tr("a", "b", "c"))
	g.Add(Triple{NewIRI(scanNS + "a"), NewIRI(scanNS + "v"), NewInt(5)})
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Add(tr("x", "y", "z"))
	if g.Equal(c) {
		t.Fatal("graphs with different sizes equal")
	}
	g.Add(tr("x", "y", "w"))
	if g.Equal(c) {
		t.Fatal("graphs with same size but different triples equal")
	}
}

// Property: after any interleaving of adds and removes, Has/Len agree with a
// reference map implementation.
func TestGraphMatchesReferenceProperty(t *testing.T) {
	f := func(ops []struct {
		S, P, O uint8
		Del     bool
	}) bool {
		g := NewGraph()
		ref := map[Triple]bool{}
		for _, op := range ops {
			tt := Triple{
				NewIRI(string(rune('a' + op.S%5))),
				NewIRI(string(rune('p' + op.P%3))),
				NewInt(int64(op.O % 7)),
			}
			if op.Del {
				delete(ref, tt)
				g.Remove(tt)
			} else {
				ref[tt] = true
				g.Add(tt)
			}
		}
		if g.Len() != len(ref) {
			return false
		}
		for tt := range ref {
			if !g.Has(tt) {
				return false
			}
		}
		// All three indexes agree with a full scan.
		return len(g.Match(nil, nil, nil)) == len(ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGraphMatchPO(b *testing.B) {
	g := NewGraph()
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		g.Add(Triple{
			NewIRI(scanNS + "s" + string(rune('a'+r.Intn(26)))),
			NewIRI(scanNS + "p" + string(rune('a'+r.Intn(5)))),
			NewInt(int64(r.Intn(50))),
		})
	}
	p := NewIRI(scanNS + "pa")
	o := NewInt(25)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.ForEachMatch(nil, &p, &o, func(Triple) bool { return true })
	}
}

func TestGraphEpoch(t *testing.T) {
	g := NewGraph()
	if g.Epoch() != 0 {
		t.Fatalf("fresh graph epoch = %d", g.Epoch())
	}
	g.Add(tr("GATK1", "requires", "CPU"))
	e1 := g.Epoch()
	if e1 == 0 {
		t.Fatal("Add did not advance the epoch")
	}
	// Duplicate adds are no-ops and must not invalidate caches.
	g.Add(tr("GATK1", "requires", "CPU"))
	if g.Epoch() != e1 {
		t.Fatalf("duplicate Add advanced the epoch: %d -> %d", e1, g.Epoch())
	}
	// Removing an absent triple is a no-op too.
	g.Remove(tr("GATK1", "requires", "RAM"))
	if g.Epoch() != e1 {
		t.Fatal("no-op Remove advanced the epoch")
	}
	g.Remove(tr("GATK1", "requires", "CPU"))
	if g.Epoch() <= e1 {
		t.Fatal("effective Remove did not advance the epoch")
	}
}
