package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Encode writes the graph in a Turtle subset: @prefix directives followed by
// triples grouped by subject with ';' predicate separators. Output is
// deterministic (sorted) so knowledge bases diff cleanly.
func (g *Graph) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, p := range g.order {
		if _, err := fmt.Fprintf(bw, "@prefix %s: <%s> .\n", p, g.prefixes[p]); err != nil {
			return err
		}
	}
	if len(g.order) > 0 && g.size > 0 {
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	triples := g.Triples()
	for i := 0; i < len(triples); {
		s := triples[i].S
		j := i
		for j < len(triples) && triples[j].S == s {
			j++
		}
		group := triples[i:j]
		if _, err := fmt.Fprintf(bw, "%s ", g.Compact(s)); err != nil {
			return err
		}
		for k, t := range group {
			sep := " ;\n    "
			if k == len(group)-1 {
				sep = " .\n"
			}
			if _, err := fmt.Fprintf(bw, "%s %s%s", g.Compact(t.P), g.encodeObject(t.O), sep); err != nil {
				return err
			}
		}
		i = j
	}
	return bw.Flush()
}

func (g *Graph) encodeObject(t Term) string {
	if t.Kind == IRI {
		return g.Compact(t)
	}
	return t.String()
}

// Decode parses the Turtle subset produced by Encode (plus ',' object lists
// and full-line '#' comments) into the graph, registering any @prefix
// directives it encounters.
func (g *Graph) Decode(r io.Reader) error {
	toks, err := tokenizeTurtle(r)
	if err != nil {
		return err
	}
	p := &turtleParser{graph: g, toks: toks}
	return p.parse()
}

// turtleToken is one lexical token of the Turtle subset.
type turtleToken struct {
	kind turtleTokenKind
	text string
	line int
}

type turtleTokenKind uint8

const (
	tokAtPrefix turtleTokenKind = iota
	tokIRIRef                   // <...>
	tokQName                    // prefix:local or keyword 'a'
	tokLiteral                  // quoted string
	tokNumber
	tokBoolean
	tokDot
	tokSemicolon
	tokComma
	tokEOF
)

func tokenizeTurtle(r io.Reader) ([]turtleToken, error) {
	br := bufio.NewReader(r)
	var toks []turtleToken
	line := 1
	for {
		ch, _, err := br.ReadRune()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch {
		case ch == '\n':
			line++
		case ch == ' ' || ch == '\t' || ch == '\r':
		case ch == '#':
			for {
				c, _, err := br.ReadRune()
				if err == io.EOF || c == '\n' {
					line++
					break
				}
				if err != nil {
					return nil, err
				}
			}
		case ch == '.':
			toks = append(toks, turtleToken{tokDot, ".", line})
		case ch == ';':
			toks = append(toks, turtleToken{tokSemicolon, ";", line})
		case ch == ',':
			toks = append(toks, turtleToken{tokComma, ",", line})
		case ch == '<':
			var sb strings.Builder
			for {
				c, _, err := br.ReadRune()
				if err != nil {
					return nil, fmt.Errorf("ontology: line %d: unterminated IRI", line)
				}
				if c == '>' {
					break
				}
				sb.WriteRune(c)
			}
			toks = append(toks, turtleToken{tokIRIRef, sb.String(), line})
		case ch == '"':
			var sb strings.Builder
			for {
				c, _, err := br.ReadRune()
				if err != nil {
					return nil, fmt.Errorf("ontology: line %d: unterminated string", line)
				}
				if c == '\\' {
					nc, _, err := br.ReadRune()
					if err != nil {
						return nil, fmt.Errorf("ontology: line %d: dangling escape", line)
					}
					switch nc {
					case 'n':
						sb.WriteRune('\n')
					case 't':
						sb.WriteRune('\t')
					case '"', '\\':
						sb.WriteRune(nc)
					default:
						return nil, fmt.Errorf("ontology: line %d: bad escape \\%c", line, nc)
					}
					continue
				}
				if c == '"' {
					break
				}
				sb.WriteRune(c)
			}
			toks = append(toks, turtleToken{tokLiteral, sb.String(), line})
		case ch == '@':
			word := readWord(br, ch)
			if word != "@prefix" {
				return nil, fmt.Errorf("ontology: line %d: unsupported directive %q", line, word)
			}
			toks = append(toks, turtleToken{tokAtPrefix, word, line})
		case ch == '-' || ch == '+' || (ch >= '0' && ch <= '9'):
			word := readWord(br, ch)
			toks = append(toks, turtleToken{tokNumber, word, line})
		default:
			word := readWord(br, ch)
			switch word {
			case "true", "false":
				toks = append(toks, turtleToken{tokBoolean, word, line})
			default:
				toks = append(toks, turtleToken{tokQName, word, line})
			}
		}
	}
	toks = append(toks, turtleToken{tokEOF, "", line})
	return toks, nil
}

// readWord consumes a run of non-delimiter runes starting with first.
// A trailing '.' (statement terminator) is pushed back so "5 ." and "5."
// both parse; interior dots (decimals, IRIs) are kept.
func readWord(br *bufio.Reader, first rune) string {
	var sb strings.Builder
	sb.WriteRune(first)
	for {
		c, _, err := br.ReadRune()
		if err != nil {
			break
		}
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' || c == ',' || c == '"' || c == '<' {
			_ = br.UnreadRune()
			break
		}
		sb.WriteRune(c)
	}
	w := sb.String()
	// A single '.' at the very end of a word is always the statement
	// terminator in this subset (interior dots, as in "3.14" or dotted
	// qname locals, are preserved). The marker is split into a real dot
	// token by the parser, since bufio cannot push back two runes.
	if body := strings.TrimSuffix(w, "."); body != w && body != "" {
		return body + "\x00."
	}
	return w
}

type turtleParser struct {
	graph *Graph
	toks  []turtleToken
	pos   int
}

func (p *turtleParser) peek() turtleToken { return p.toks[p.pos] }

func (p *turtleParser) next() turtleToken {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *turtleParser) errf(t turtleToken, format string, args ...any) error {
	return fmt.Errorf("ontology: line %d: %s", t.line, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() error {
	p.splitMarkedDots()
	for {
		t := p.peek()
		switch t.kind {
		case tokEOF:
			return nil
		case tokAtPrefix:
			if err := p.parsePrefix(); err != nil {
				return err
			}
		default:
			if err := p.parseStatement(); err != nil {
				return err
			}
		}
	}
}

// splitMarkedDots post-processes tokens whose text carries the "\x00."
// terminator marker emitted by readWord.
func (p *turtleParser) splitMarkedDots() {
	var out []turtleToken
	for _, t := range p.toks {
		if i := strings.Index(t.text, "\x00"); i >= 0 {
			body := t.text[:i]
			if body != "" {
				nt := t
				nt.text = body
				out = append(out, nt)
			}
			out = append(out, turtleToken{tokDot, ".", t.line})
			continue
		}
		out = append(out, t)
	}
	p.toks = out
}

func (p *turtleParser) parsePrefix() error {
	p.next() // @prefix
	name := p.next()
	if name.kind != tokQName || !strings.HasSuffix(name.text, ":") {
		return p.errf(name, "expected prefix name, got %q", name.text)
	}
	iri := p.next()
	if iri.kind != tokIRIRef {
		return p.errf(iri, "expected namespace IRI, got %q", iri.text)
	}
	dot := p.next()
	if dot.kind != tokDot {
		return p.errf(dot, "expected '.' after @prefix")
	}
	p.graph.SetPrefix(strings.TrimSuffix(name.text, ":"), iri.text)
	return nil
}

func (p *turtleParser) parseStatement() error {
	subj, err := p.parseTerm(false)
	if err != nil {
		return err
	}
	for {
		pred, err := p.parseTerm(false)
		if err != nil {
			return err
		}
		for {
			obj, err := p.parseTerm(true)
			if err != nil {
				return err
			}
			p.graph.Add(Triple{subj, pred, obj})
			if p.peek().kind == tokComma {
				p.next()
				continue
			}
			break
		}
		sep := p.next()
		switch sep.kind {
		case tokDot:
			return nil
		case tokSemicolon:
			// Turtle allows a trailing ';' before '.'.
			if p.peek().kind == tokDot {
				p.next()
				return nil
			}
			continue
		default:
			return p.errf(sep, "expected ';' or '.', got %q", sep.text)
		}
	}
}

func (p *turtleParser) parseTerm(objectPos bool) (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIRIRef:
		return NewIRI(t.text), nil
	case tokQName:
		if t.text == "a" {
			return NewIRI(RDFType), nil
		}
		if strings.HasPrefix(t.text, "_:") {
			return NewBlank(strings.TrimPrefix(t.text, "_:")), nil
		}
		i := strings.Index(t.text, ":")
		if i < 0 {
			return Term{}, p.errf(t, "expected IRI or QName, got %q", t.text)
		}
		if _, ok := p.graph.Prefix(t.text[:i]); !ok {
			return Term{}, p.errf(t, "unknown prefix %q", t.text[:i])
		}
		return p.graph.Expand(t.text), nil
	case tokLiteral:
		if !objectPos {
			return Term{}, p.errf(t, "literal not allowed in subject/predicate position")
		}
		return NewString(t.text), nil
	case tokNumber:
		if !objectPos {
			return Term{}, p.errf(t, "number not allowed in subject/predicate position")
		}
		if iv, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return NewInt(iv), nil
		}
		fv, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return Term{}, p.errf(t, "bad numeric literal %q", t.text)
		}
		return NewFloat(fv), nil
	case tokBoolean:
		if !objectPos {
			return Term{}, p.errf(t, "boolean not allowed in subject/predicate position")
		}
		return NewBool(t.text == "true"), nil
	default:
		return Term{}, p.errf(t, "unexpected token %q", t.text)
	}
}

// Clone returns a deep copy of the graph (triples and prefixes).
func (g *Graph) Clone() *Graph {
	ng := NewGraph()
	for _, p := range g.order {
		ng.SetPrefix(p, g.prefixes[p])
	}
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		ng.Add(t)
		return true
	})
	return ng
}

// Equal reports whether two graphs contain exactly the same triples
// (prefixes are ignored: they are presentation, not content).
func (g *Graph) Equal(o *Graph) bool {
	if g.size != o.size {
		return false
	}
	equal := true
	g.ForEachMatch(nil, nil, nil, func(t Triple) bool {
		if !o.Has(t) {
			equal = false
			return false
		}
		return true
	})
	return equal
}

// sortedKeys is a test/debug helper returning prefix names sorted.
func (g *Graph) sortedPrefixNames() []string {
	out := append([]string(nil), g.order...)
	sort.Strings(out)
	return out
}
