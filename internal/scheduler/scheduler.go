package scheduler

import (
	"fmt"
	"math"

	"scan/internal/cloud"
	"scan/internal/gatk"
	"scan/internal/reward"
	"scan/internal/sim"
	"scan/internal/stats"
)

// Config assembles a scheduler.
type Config struct {
	Pipeline     gatk.Pipeline
	RewardScheme reward.Scheme
	RewardParams reward.Params
	Scaling      ScalingPolicy
	Allocation   AllocationPolicy

	// ShardSize is the knowledge-base-advised chunk size: a job of size d
	// is split into ceil(d/ShardSize) parallel shards per stage (the
	// paper's "the inputs will be 2GB for each task").
	ShardSize float64
	// FixedPlan, when non-nil, overrides the allocation policy with a
	// static execution plan (used by the Figure 5 sweep).
	FixedPlan *gatk.Plan
	// HeterogeneousWorkers allows idle workers to be reconfigured to a
	// different core width (paying the startup penalty) instead of hiring
	// anew — Figure 5's dynamic heterogeneous configuration.
	HeterogeneousWorkers bool
	// IdleReleasePrivate is how long a private-tier worker may sit idle
	// before release (default 1.5 TU — private cores are cheap, so keeping
	// a warm pool beats paying the boot penalty again).
	IdleReleasePrivate float64
	// IdleReleasePublic is the idle window for public-tier workers while
	// the private tier is saturated (default 1 TU — warm public workers
	// absorb the sustained overflow without a fresh boot penalty). When
	// the private tier has spare capacity a parked public worker is
	// released almost immediately instead: future work can run on owned
	// cores at a tenth of the price.
	IdleReleasePublic float64
	// EQTAlpha is the smoothing factor of the queue-time estimators
	// (default 0.2).
	EQTAlpha float64
	// PredictiveMargin scales the hire cost in the predictive decision:
	// the public hire happens only when the queue-wide delay cost exceeds
	// margin × hire cost. Equation 1 charges the delay to every queued
	// job, but one hire only relieves the queue head, so a margin > 1
	// compensates for that over-counting (default 3).
	PredictiveMargin float64
}

func (c *Config) fill() {
	if c.ShardSize <= 0 {
		c.ShardSize = 2
	}
	if c.IdleReleasePrivate <= 0 {
		c.IdleReleasePrivate = 1.5
	}
	if c.IdleReleasePublic <= 0 {
		c.IdleReleasePublic = 1
	}
	if c.EQTAlpha <= 0 {
		c.EQTAlpha = 0.2
	}
	if c.PredictiveMargin <= 0 {
		c.PredictiveMargin = 3
	}
}

// Job is one pipeline request travelling through the scheduler.
type Job struct {
	ID      int
	Size    float64
	Arrival float64

	Shards    int
	ShardSize float64
	Plan      gatk.Plan

	Done      bool
	Completed float64
	Reward    float64

	stage         int
	pendingShards int
}

// Latency returns the job's end-to-end latency; valid once Done.
func (j *Job) Latency() float64 { return j.Completed - j.Arrival }

// task is one (job, stage, shard) unit of work.
type task struct {
	job      *Job
	stage    int
	threads  int
	enqueued float64
}

// workerState wraps a hired VM with scheduling state.
type workerState struct {
	vm        *cloud.VM
	busyUntil float64
	idleEvent *sim.Event
}

// Metrics aggregates a run's outcomes.
type Metrics struct {
	JobsArrived   int
	JobsCompleted int
	TotalReward   float64
	TotalCost     float64
	Latency       stats.Running
	QueueWait     stats.Running
	PublicHires   int
	PrivateHires  int
	Reconfigs     int
	CoreStages    stats.Running // plan core-stages per completed job
}

// ProfitPerJob returns (ΣR − cost)/jobs — Figure 4's y-axis.
func (m Metrics) ProfitPerJob() float64 {
	if m.JobsCompleted == 0 {
		return 0
	}
	return (m.TotalReward - m.TotalCost) / float64(m.JobsCompleted)
}

// RewardToCost returns ΣR/cost — Figure 5's y-axis.
func (m Metrics) RewardToCost() float64 {
	if m.TotalCost == 0 {
		return 0
	}
	return m.TotalReward / m.TotalCost
}

// Scheduler wires queues, pools, the cloud and the policies together.
type Scheduler struct {
	eng   *sim.Engine
	cloud *cloud.Cloud
	cfg   Config

	nextJobID int
	queues    [][]*task              // per stage FIFO (slice with head at 0)
	idle      map[int][]*workerState // by core width
	busy      map[*workerState]struct{}
	eqt       []ewma

	constantPlan gatk.Plan
	metrics      Metrics
}

// New builds a scheduler on the engine and cloud.
func New(eng *sim.Engine, cl *cloud.Cloud, cfg Config) (*Scheduler, error) {
	cfg.fill()
	n := len(cfg.Pipeline.Stages)
	if n == 0 {
		return nil, gatk.ErrNoStages
	}
	if cfg.FixedPlan != nil {
		if err := cfg.FixedPlan.Validate(n); err != nil {
			return nil, err
		}
	}
	s := &Scheduler{
		eng:    eng,
		cloud:  cl,
		cfg:    cfg,
		queues: make([][]*task, n),
		idle:   make(map[int][]*workerState),
		busy:   make(map[*workerState]struct{}),
		eqt:    make([]ewma, n),
	}
	for i := range s.eqt {
		s.eqt[i] = newEWMA(cfg.EQTAlpha)
	}
	// The best-constant baseline is optimised offline against private-tier
	// pricing and the mean shard size.
	plan, err := cfg.Pipeline.OptimalConstantPlan(cfg.ShardSize, gatk.PlanObjective{
		LatencyCostPerTU: s.latencyCostPerTU(meanJobSize),
		PricePerCoreTU:   cl.Price(0),
		Shards:           1,
		OverheadTU:       s.perTaskOverhead(),
	})
	if err != nil {
		return nil, err
	}
	s.constantPlan = plan
	return s, nil
}

// meanJobSize is the Table III mean job size used by offline plan searches.
const meanJobSize = 5

// latencyCostPerTU converts the reward scheme into an equivalent linear
// latency price for plan optimisation. The time-based scheme is exactly
// linear (d·Rpenalty); for the throughput scheme we linearise around the
// typical total time.
func (s *Scheduler) latencyCostPerTU(d float64) float64 {
	switch s.cfg.RewardScheme {
	case reward.ThroughputBased:
		// d(R/t − R/(t+1)) ≈ d·Rscale/t² around a nominal t.
		const t = float64(nominalLatency)
		return d * s.cfg.RewardParams.RScale / (t * t)
	default:
		return d * s.cfg.RewardParams.RPenalty
	}
}

// nominalLatency is the linearisation point for the throughput scheme.
const nominalLatency = 10

// Metrics returns a snapshot of the run metrics with the cost filled in
// from the cloud ledger.
func (s *Scheduler) Metrics() Metrics {
	m := s.metrics
	m.TotalCost = s.cloud.Cost()
	return m
}

// QueueLen returns the number of waiting tasks at stage i.
func (s *Scheduler) QueueLen(i int) int { return len(s.queues[i]) }

// Submit admits one job of the given input size at the current time.
func (s *Scheduler) Submit(size float64) *Job {
	j := &Job{
		ID:      s.nextJobID,
		Size:    size,
		Arrival: s.eng.Now(),
	}
	s.nextJobID++
	s.metrics.JobsArrived++
	j.Shards = int(math.Ceil(size / s.cfg.ShardSize))
	if j.Shards < 1 {
		j.Shards = 1
	}
	j.ShardSize = size / float64(j.Shards)
	j.Plan = s.planFor(j)
	s.enqueueStage(j)
	s.dispatch()
	return j
}

// planFor chooses the job's execution plan at admission.
func (s *Scheduler) planFor(j *Job) gatk.Plan {
	if s.cfg.FixedPlan != nil {
		return *s.cfg.FixedPlan
	}
	switch s.cfg.Allocation {
	case LongTerm, LongTermAdaptive:
		return s.optimisePlan(j, s.blendedPrice())
	case Greedy:
		// Planned stage by stage; seed with the constant plan.
		return s.constantPlan
	default:
		return s.constantPlan
	}
}

// replanStage updates the job's plan on entering a stage, for the policies
// that adapt mid-flight.
func (s *Scheduler) replanStage(j *Job) {
	if s.cfg.FixedPlan != nil {
		return
	}
	switch s.cfg.Allocation {
	case Greedy:
		// Use the price of the tier that would actually supply a core now.
		tier := s.cloud.CheapestTierWithCapacity(1)
		price := s.cloud.Price(0)
		if tier >= 0 {
			price = s.cloud.Price(tier)
		}
		j.Plan = s.optimisePlan(j, price)
	case LongTermAdaptive:
		j.Plan = s.optimisePlan(j, s.blendedPrice())
	}
}

// blendedPrice mixes private and public prices by private utilisation —
// the expected marginal core price over the job's lifetime.
func (s *Scheduler) blendedPrice() float64 {
	u := s.cloud.Utilization(0)
	return (1-u)*s.cloud.Price(0) + u*s.cloud.Price(1)
}

func (s *Scheduler) optimisePlan(j *Job, price float64) gatk.Plan {
	plan, err := s.cfg.Pipeline.OptimalConstantPlan(j.ShardSize, gatk.PlanObjective{
		LatencyCostPerTU: s.latencyCostPerTU(j.Size),
		PricePerCoreTU:   price,
		Shards:           j.Shards,
		OverheadTU:       s.perTaskOverhead(),
	})
	if err != nil {
		return s.constantPlan
	}
	return plan
}

// perTaskOverhead estimates the billed-but-idle worker time attributable to
// one stage-task: the boot penalty on a fresh hire plus half the private
// idle window (on average a reused worker sits idle half the window).
func (s *Scheduler) perTaskOverhead() float64 {
	return s.cloud.StartupDelay() + s.cfg.IdleReleasePrivate/2
}

// enqueueStage adds one task per shard of the job's current stage.
func (s *Scheduler) enqueueStage(j *Job) {
	j.pendingShards = j.Shards
	threads := j.Plan.Threads[j.stage]
	for i := 0; i < j.Shards; i++ {
		s.queues[j.stage] = append(s.queues[j.stage], &task{
			job:      j,
			stage:    j.stage,
			threads:  threads,
			enqueued: s.eng.Now(),
		})
	}
}

// dispatch assigns queued tasks to workers while policies permit. Later
// stages drain first so in-flight jobs finish ahead of new admissions.
func (s *Scheduler) dispatch() {
	for st := len(s.queues) - 1; st >= 0; st-- {
		for len(s.queues[st]) > 0 {
			tk := s.queues[st][0]
			ws := s.acquireWorker(tk)
			if ws == nil {
				break // FIFO head blocked; try other stages
			}
			s.queues[st] = s.queues[st][1:]
			s.assign(tk, ws)
		}
	}
}

// acquireWorker finds or creates a worker able to run tk, or returns nil
// when the scaling policy says to wait. The search order keeps the cluster
// efficient: an exactly-fitting warm worker, then a fresh private hire
// (cheap cores, right width), then — capacity exhausted — salvage options:
// reconfiguring an idle worker (heterogeneous mode) or squeezing the task
// onto a wider idle worker, and only then public money.
func (s *Scheduler) acquireWorker(tk *task) *workerState {
	// 1. An idle worker of the exact width.
	if ws := s.takeIdle(tk.threads); ws != nil {
		return ws
	}
	// 2. A fresh private-tier hire.
	if vm, err := s.cloud.Hire(0, tk.threads); err == nil {
		s.metrics.PrivateHires++
		return &workerState{vm: vm}
	}
	// 3. Reconfigure an idle worker of another width (dynamic
	// heterogeneous configuration), paying the startup penalty again.
	if s.cfg.HeterogeneousWorkers {
		for _, w := range gatk.InstanceSizes {
			if w == tk.threads || len(s.idle[w]) == 0 {
				continue
			}
			pool := s.idle[w]
			ws := pool[len(pool)-1]
			if err := s.cloud.Reconfigure(ws.vm, tk.threads); err != nil {
				continue // e.g. growing past tier capacity
			}
			s.idle[w] = pool[:len(pool)-1]
			if ws.idleEvent != nil {
				ws.idleEvent.Cancel()
				ws.idleEvent = nil
			}
			s.metrics.Reconfigs++
			return ws
		}
	}
	// 4. Public money, policy permitting. (A wider idle worker is
	// deliberately NOT used as a fallback: letting narrow tasks squat on
	// wide workers wastes cores exactly when the private tier is full,
	// collapsing throughput under load — workers stay statically matched
	// to their width, as in the paper's per-phase pools.)
	switch s.cfg.Scaling {
	case AlwaysScale:
		if vm, err := s.cloud.Hire(1, tk.threads); err == nil {
			s.metrics.PublicHires++
			return &workerState{vm: vm}
		}
	case PredictiveScale:
		if s.shouldHirePublic(tk) {
			if vm, err := s.cloud.Hire(1, tk.threads); err == nil {
				s.metrics.PublicHires++
				return &workerState{vm: vm}
			}
		}
	}
	return nil
}

// takeIdle pops an idle worker of exactly width w, cancelling its pending
// release. Private (tier 0) workers are preferred so that warm public
// machines do not intercept work the owned tier could do at a tenth of the
// price.
func (s *Scheduler) takeIdle(w int) *workerState {
	pool := s.idle[w]
	if len(pool) == 0 {
		return nil
	}
	pick := -1
	for i := len(pool) - 1; i >= 0; i-- {
		if pool[i].vm.Tier == 0 {
			pick = i
			break
		}
	}
	if pick < 0 {
		pick = len(pool) - 1
	}
	ws := pool[pick]
	s.idle[w] = append(pool[:pick], pool[pick+1:]...)
	if ws.idleEvent != nil {
		ws.idleEvent.Cancel()
		ws.idleEvent = nil
	}
	return ws
}

// shouldHirePublic implements the paper's core scheduling question: "should
// a worker be hired from the elastic cloud to run it immediately, or should
// it be delayed until an existing worker becomes available?" It compares
// the delay cost of waiting (Equation 1, over the jobs queued at this
// stage) against the cost of the public hire.
func (s *Scheduler) shouldHirePublic(tk *task) bool {
	delay := s.estimateWait(tk.threads)
	if math.IsInf(delay, 1) {
		return true // nothing will ever free: waiting starves the queue
	}
	if delay <= s.cloud.StartupDelay() {
		// A fresh worker would not boot before an existing one frees.
		return false
	}
	queue := s.queueEstimates(tk.stage)
	dc := s.cfg.RewardParams.DelayCost(s.cfg.RewardScheme, queue, delay)
	eet := s.cfg.Pipeline.StageTime(tk.stage, tk.threads, tk.job.ShardSize)
	hireCost := s.cloud.Price(1) * float64(tk.threads) * (s.cloud.StartupDelay() + eet)
	return dc > s.cfg.PredictiveMargin*hireCost
}

// estimateWait predicts how long the queue head waits for a worker if no
// hire happens: the earliest completion among busy workers of the needed
// width (any width under heterogeneous reconfiguration).
func (s *Scheduler) estimateWait(threads int) float64 {
	now := s.eng.Now()
	min := math.Inf(1)
	for ws := range s.busy {
		if !s.cfg.HeterogeneousWorkers && ws.vm.Cores != threads {
			continue
		}
		if t := ws.busyUntil - now; t < min {
			min = t
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// queueEstimates builds Equation 1's job set for one stage queue: each
// distinct queued job with its ETT (Equation 2). The scan is capped at the
// first maxDelayCostJobs distinct jobs so a deeply backlogged queue does
// not make every hire decision quadratic; beyond that depth the decision
// is already saturated in favour of hiring.
func (s *Scheduler) queueEstimates(stage int) []reward.JobEstimate {
	const maxDelayCostJobs = 64
	seen := map[int]bool{}
	var out []reward.JobEstimate
	for _, tk := range s.queues[stage] {
		if seen[tk.job.ID] {
			continue
		}
		seen[tk.job.ID] = true
		out = append(out, reward.JobEstimate{
			Size: tk.job.Size,
			ETT:  s.estimateTotalTime(tk.job),
		})
		if len(out) >= maxDelayCostJobs {
			break
		}
	}
	return out
}

// estimateTotalTime implements Equation 2: elapsed time plus estimated
// queueing and execution time for the current and future stages.
func (s *Scheduler) estimateTotalTime(j *Job) float64 {
	elapsed := s.eng.Now() - j.Arrival
	remaining := 0.0
	for i := j.stage; i < len(s.cfg.Pipeline.Stages); i++ {
		remaining += s.eqt[i].Value() +
			s.cfg.Pipeline.StageTime(i, j.Plan.Threads[i], j.ShardSize)
	}
	return elapsed + remaining
}

// assign starts tk on ws and schedules its completion.
func (s *Scheduler) assign(tk *task, ws *workerState) {
	now := s.eng.Now()
	start := now
	if ws.vm.ReadyAt > start {
		start = ws.vm.ReadyAt
	}
	wait := start - tk.enqueued
	s.eqt[tk.stage].Add(wait)
	s.metrics.QueueWait.Add(wait)
	dur := s.cfg.Pipeline.StageTime(tk.stage, tk.threads, tk.job.ShardSize)
	ws.busyUntil = start + dur
	s.busy[ws] = struct{}{}
	s.eng.Schedule(ws.busyUntil, func() { s.onTaskDone(tk, ws) })
}

// onTaskDone returns the worker to its pool and advances the job.
func (s *Scheduler) onTaskDone(tk *task, ws *workerState) {
	delete(s.busy, ws)
	s.parkWorker(ws)

	j := tk.job
	j.pendingShards--
	if j.pendingShards == 0 {
		if j.stage == len(s.cfg.Pipeline.Stages)-1 {
			s.completeJob(j)
		} else {
			j.stage++
			s.replanStage(j)
			s.enqueueStage(j)
		}
	}
	s.dispatch()
}

// parkWorker idles the worker and schedules its release. Tier 0 is the
// private (owned) tier by construction; its warm pool lingers. A public
// worker stays warm only while the private tier is saturated — once owned
// cores could host its width again, burning public money on idling is
// pointless.
func (s *Scheduler) parkWorker(ws *workerState) {
	width := ws.vm.Cores
	s.idle[width] = append(s.idle[width], ws)
	var window float64
	switch {
	case ws.vm.Tier == 0:
		window = s.cfg.IdleReleasePrivate
	case s.cloud.FreeCores(0) >= width:
		window = publicDrainWindow
	default:
		window = s.cfg.IdleReleasePublic
	}
	ws.idleEvent = s.eng.After(window, func() {
		s.releaseIdle(ws)
	})
}

// publicDrainWindow is the near-immediate release delay for public workers
// that are no longer needed (kept nonzero so a task completing at the same
// instant can still reuse the worker).
const publicDrainWindow = 0.05

// releaseIdle releases a worker that stayed idle for the full window.
func (s *Scheduler) releaseIdle(ws *workerState) {
	pool := s.idle[ws.vm.Cores]
	for i, w := range pool {
		if w == ws {
			s.idle[ws.vm.Cores] = append(pool[:i], pool[i+1:]...)
			break
		}
	}
	ws.idleEvent = nil
	if err := s.cloud.Release(ws.vm); err != nil {
		// Double release indicates a scheduler bug; surface loudly in
		// simulation rather than corrupting the ledger.
		panic(fmt.Sprintf("scheduler: release: %v", err))
	}
	// The release may have freed the last private cores a queued task of a
	// different width was waiting for.
	s.dispatch()
}

// completeJob books the reward and metrics.
func (s *Scheduler) completeJob(j *Job) {
	j.Done = true
	j.Completed = s.eng.Now()
	j.Reward = s.cfg.RewardParams.Reward(s.cfg.RewardScheme, j.Size, j.Latency())
	s.metrics.JobsCompleted++
	s.metrics.TotalReward += j.Reward
	s.metrics.Latency.Add(j.Latency())
	s.metrics.CoreStages.Add(float64(j.Plan.CoreStages()))
}

// Drain releases every idle worker immediately (used at end of run so the
// final ledger reflects only work actually performed plus idle windows).
func (s *Scheduler) Drain() {
	for width, pool := range s.idle {
		for _, ws := range pool {
			if ws.idleEvent != nil {
				ws.idleEvent.Cancel()
				ws.idleEvent = nil
			}
			if err := s.cloud.Release(ws.vm); err != nil {
				panic(fmt.Sprintf("scheduler: drain: %v", err))
			}
		}
		s.idle[width] = nil
	}
}

// ConstantPlan exposes the offline-optimised baseline plan (for tests and
// the experiment harness).
func (s *Scheduler) ConstantPlan() gatk.Plan { return s.constantPlan }
