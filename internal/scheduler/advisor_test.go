package scheduler

import (
	"testing"
	"time"
)

// The acceptance contract for the fleet's hire economics: PredictiveScale
// engages a second worker only when the queue's Equation 1 delay cost
// exceeds the margin-scaled hire cost; NeverScale never leaves the
// baseline tier.

func TestFleetAdvisorPredictiveThreshold(t *testing.T) {
	adv := FleetAdvisor{Policy: PredictiveScale} // defaults: baseline 1, margin 3, startup 0.1
	// est 1s/task: the 1→2 hire saves q(q-1)/4 delay cost and costs
	// 3 × 1.1 = 3.3. Four queued tasks save 3 — below the bar; five save
	// 5 — above it.
	if got := adv.DesiredWorkers(4, 1, 2, 1.0); got != 1 {
		t.Fatalf("q=4: desired = %d, want 1 (delay cost 3 under hire cost 3.3)", got)
	}
	if got := adv.DesiredWorkers(5, 1, 2, 1.0); got != 2 {
		t.Fatalf("q=5: desired = %d, want 2 (delay cost 5 over hire cost 3.3)", got)
	}
	// Cheap tasks: even a deep queue cannot justify a hire once the
	// expected wait dips under the startup delay.
	if got := adv.DesiredWorkers(50, 1, 2, 0.001); got != 1 {
		t.Fatalf("cheap tasks: desired = %d, want 1", got)
	}
	// More capacity: the marginal saving shrinks as k grows, so desired
	// stops where saving ≤ margin × hire cost, not at the capacity cap.
	got := adv.DesiredWorkers(12, 1, 8, 1.0)
	if got <= 1 || got >= 8 {
		t.Fatalf("q=12 over 8 workers: desired = %d, want interior value", got)
	}
}

func TestFleetAdvisorNeverAndAlways(t *testing.T) {
	never := FleetAdvisor{Policy: NeverScale}
	for _, q := range []int{0, 1, 100} {
		want := 1
		if q == 0 {
			want = 0 // nothing queued and nothing engaged
		}
		if got := never.DesiredWorkers(q, 0, 4, 5.0); got != want {
			t.Fatalf("never-scale q=%d: desired = %d, want %d", q, got, want)
		}
	}
	always := FleetAdvisor{Policy: AlwaysScale}
	if got := always.DesiredWorkers(3, 1, 8, 0.01); got != 4 {
		t.Fatalf("always-scale: desired = %d, want 4 (one per queued task)", got)
	}
	if got := always.DesiredWorkers(100, 1, 8, 0.01); got != 8 {
		t.Fatalf("always-scale capped: desired = %d, want 8", got)
	}
}

func TestFleetAdvisorIdleQueueKeepsEngagement(t *testing.T) {
	adv := FleetAdvisor{Policy: PredictiveScale}
	if got := adv.DesiredWorkers(0, 3, 4, 1.0); got != 3 {
		t.Fatalf("empty queue: desired = %d, want 3 (release is idle-driven)", got)
	}
}

func TestFleetAdvisorIdleRelease(t *testing.T) {
	adv := FleetAdvisor{}
	greedy := adv.IdleRelease(Greedy, 0)
	fixed := adv.IdleRelease(BestConstant, 0)
	long := adv.IdleRelease(LongTerm, 0)
	if !(greedy < fixed && fixed < long) {
		t.Fatalf("hold ordering: greedy %v < best-constant %v < long-term %v expected", greedy, fixed, long)
	}
	// Adaptive tracks the observed burst gap, clamped to the long-term cap.
	if got := adv.IdleRelease(LongTermAdaptive, 1.5); got != 3*time.Second {
		t.Fatalf("adaptive hold = %v, want 3s (2× observed gap)", got)
	}
	if got := adv.IdleRelease(LongTermAdaptive, 1e6); got != adv.IdleRelease(LongTerm, 0) {
		t.Fatalf("adaptive hold uncapped: %v", got)
	}
}
