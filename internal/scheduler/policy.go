// Package scheduler implements the SCAN Scheduler: per-stage work queues,
// worker pools serviced by an elastic two-tier cloud, the reward-driven
// horizontal-scaling decision of Section III-A2 (Equations 1 and 2), and
// the resource-allocation policies of Table I (greedy, long-term,
// long-term adaptive, best constant).
package scheduler

import "fmt"

// ScalingPolicy decides whether to hire a new worker when a task reaches
// the front of a queue and no suitable worker is idle (Table I,
// "Horizontal scaling algorithm").
type ScalingPolicy uint8

// Scaling policies.
const (
	// AlwaysScale hires immediately — private tier first, public overflow.
	AlwaysScale ScalingPolicy = iota
	// NeverScale hires only from the private tier and otherwise queues.
	NeverScale
	// PredictiveScale hires from the private tier freely; when it is full,
	// it hires from the public tier only if the delay cost of queueing
	// (Equation 1) exceeds the cost of the hire.
	PredictiveScale
)

// String names the policy as in Figure 4's legend.
func (p ScalingPolicy) String() string {
	switch p {
	case AlwaysScale:
		return "always-scale"
	case NeverScale:
		return "never-scale"
	case PredictiveScale:
		return "predictive"
	default:
		return fmt.Sprintf("scaling(%d)", uint8(p))
	}
}

// AllocationPolicy chooses each job's execution plan — the per-stage
// multithreading degree (Table I, "Resource allocation algorithm").
type AllocationPolicy uint8

// Allocation policies.
const (
	// BestConstant uses one offline-optimised plan for every job,
	// assuming private-tier pricing (the paper's baseline).
	BestConstant AllocationPolicy = iota
	// Greedy re-plans each stage as it starts, using the price of the
	// tier that would actually supply cores right now.
	Greedy
	// LongTerm plans the whole pipeline at admission using a price
	// blended by current private-tier utilisation.
	LongTerm
	// LongTermAdaptive re-plans at every stage boundary with the live
	// blended price and the observed queue-delay estimates.
	LongTermAdaptive
)

// String names the policy as in Table I.
func (p AllocationPolicy) String() string {
	switch p {
	case BestConstant:
		return "best-constant"
	case Greedy:
		return "greedy"
	case LongTerm:
		return "long-term"
	case LongTermAdaptive:
		return "long-term-adaptive"
	default:
		return fmt.Sprintf("allocation(%d)", uint8(p))
	}
}

// ewma is an exponentially weighted moving average used for the EQT_i
// (estimated queueing time) estimators of Equation 2.
type ewma struct {
	v     float64
	alpha float64
	n     int
}

func newEWMA(alpha float64) ewma { return ewma{alpha: alpha} }

func (e *ewma) Add(x float64) {
	if e.n == 0 {
		e.v = x
	} else {
		e.v = e.alpha*x + (1-e.alpha)*e.v
	}
	e.n++
}

func (e *ewma) Value() float64 { return e.v }
func (e *ewma) Samples() int   { return e.n }
