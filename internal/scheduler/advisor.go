package scheduler

// FleetAdvisor adapts the Section III-A2 scaling economics from the
// simulator's event clock to a live worker fleet's wall clock — the policy
// brain internal/fleet's coordinator consults before engaging registered
// workers. The structure mirrors Scheduler.shouldHirePublic: a baseline of
// workers plays the private tier (engaged unconditionally while work
// exists), and each engagement beyond it is a "public hire" that must pay
// for itself — the Equation 1 delay cost the hire removes from the queue
// has to exceed the hire's cost by the predictive margin. Inputs are live
// observations instead of simulated ones: the coordinator's queue depth
// and the Data Broker's fitted per-task cost (knowledge.ChainCosts /
// StageEnv.EstimateShardCost).

import "time"

// FleetAdvisor holds the tunables of the wall-clock scaling decision.
// The zero value is usable: defaults applied per call.
type FleetAdvisor struct {
	// Policy selects the Table I horizontal-scaling algorithm.
	Policy ScalingPolicy
	// Baseline is the private-tier size: workers engaged whenever work
	// exists, with no hire decision (default 1).
	Baseline int
	// HirePrice is the public-tier price of one worker-second (default 1,
	// matching the simulator's unit price).
	HirePrice float64
	// DelayCostPerSec converts one queued task-second into reward-scheme
	// delay cost (default 1).
	DelayCostPerSec float64
	// Margin is the hire-cost multiplier the delay cost must exceed,
	// mirroring Config.PredictiveMargin (default 3).
	Margin float64
	// StartupDelaySec estimates the engage-to-first-result overhead of a
	// fresh worker (default 0.1).
	StartupDelaySec float64
}

func (a FleetAdvisor) withDefaults() FleetAdvisor {
	if a.Baseline <= 0 {
		a.Baseline = 1
	}
	if a.HirePrice <= 0 {
		a.HirePrice = 1
	}
	if a.DelayCostPerSec <= 0 {
		a.DelayCostPerSec = 1
	}
	if a.Margin <= 0 {
		a.Margin = 3
	}
	if a.StartupDelaySec <= 0 {
		a.StartupDelaySec = 0.1
	}
	return a
}

// DesiredWorkers answers "how many of the available workers should be
// engaged right now": queued is the number of tasks waiting for a worker,
// engaged how many workers are currently engaged, available how many live
// workers are registered, and estTaskSec the fitted serial cost of one
// queued task. The result is always within [0, available]; release of
// workers above it is idle-driven (IdleRelease), never preemptive.
func (a FleetAdvisor) DesiredWorkers(queued, engaged, available int, estTaskSec float64) int {
	a = a.withDefaults()
	if available <= 0 {
		return 0
	}
	if engaged > available {
		engaged = available
	}
	if queued <= 0 {
		// Nothing waiting: keep what is engaged, hire nothing.
		return engaged
	}
	base := min(a.Baseline, available)
	switch a.Policy {
	case NeverScale:
		// Private tier only: queue rather than hire.
		return base
	case AlwaysScale:
		// Every waiting task justifies a hire — private first, public
		// overflow, capacity permitting.
		return min(available, max(base, engaged+queued))
	}
	// PredictiveScale: grow k one worker at a time while the marginal
	// Equation 1 delay-cost reduction exceeds Margin × hire cost. With k
	// workers task j of the queue waits ≈ (j-1)/k · estTaskSec, so the
	// aggregate delay cost is DelayCostPerSec · estTaskSec · q(q-1)/(2k)
	// and the k→k+1 hire removes the 1/k − 1/(k+1) share of it. The hire
	// costs its startup plus one task's execution at the public price —
	// the same shape as shouldHirePublic's hireCost.
	if estTaskSec <= 0 {
		return max(base, engaged)
	}
	k := max(base, engaged)
	q := float64(queued)
	aggregate := a.DelayCostPerSec * estTaskSec * q * (q - 1) / 2
	hireCost := a.HirePrice * (a.StartupDelaySec + estTaskSec)
	for k < available {
		if q*estTaskSec/float64(k) <= a.StartupDelaySec {
			break // an existing worker frees before a fresh one would boot
		}
		saved := aggregate * (1/float64(k) - 1/float64(k+1))
		if saved <= a.Margin*hireCost {
			break
		}
		k++
	}
	return k
}

// IdleRelease maps a Table I resource-allocation policy onto the live
// fleet's one allocatable resource — how long an engaged worker is held
// once idle before its engagement is released. Greedy re-plans at every
// stage, so it holds capacity only as long as rehiring would cost;
// LongTerm commits for a long horizon; LongTermAdaptive tracks the
// observed gap between work bursts (gapSec, an EWMA the coordinator
// maintains; ≤0 when unobserved); BestConstant holds a fixed default.
func (a FleetAdvisor) IdleRelease(policy AllocationPolicy, gapSec float64) time.Duration {
	a = a.withDefaults()
	const def = 2 * time.Second
	switch policy {
	case Greedy:
		return time.Duration(a.StartupDelaySec * float64(time.Second))
	case LongTerm:
		return 10 * def
	case LongTermAdaptive:
		if gapSec <= 0 {
			return def
		}
		hold := time.Duration(2 * gapSec * float64(time.Second))
		return min(max(hold, time.Duration(a.StartupDelaySec*float64(time.Second))), 10*def)
	default: // BestConstant
		return def
	}
}
