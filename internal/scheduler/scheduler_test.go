package scheduler

import (
	"math"
	"testing"
	"testing/quick"

	"scan/internal/cloud"
	"scan/internal/gatk"
	"scan/internal/reward"
	"scan/internal/sim"
)

// rig builds an engine + cloud + scheduler with the given knobs.
func rig(t *testing.T, privateCores int, publicPrice float64, cfg Config) (*sim.Engine, *cloud.Cloud, *Scheduler) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cloud.New(eng, 0.5,
		cloud.Tier{Name: "private", PricePerCoreTU: 5, Cores: privateCores},
		cloud.Tier{Name: "public", PricePerCoreTU: publicPrice, Cores: cloud.Unbounded},
	)
	if cfg.Pipeline.Stages == nil {
		cfg.Pipeline = gatk.NewPipeline()
	}
	if cfg.RewardParams == (reward.Params{}) {
		cfg.RewardParams = reward.DefaultParams()
	}
	s, err := New(eng, cl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, cl, s
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	cl := cloud.New(eng, 0.5, cloud.DefaultTiers(50)...)
	if _, err := New(eng, cl, Config{}); err == nil {
		t.Fatal("empty pipeline accepted")
	}
	bad := gatk.UniformPlan(3, 8)
	if _, err := New(eng, cl, Config{Pipeline: gatk.NewPipeline(), FixedPlan: &bad}); err == nil {
		t.Fatal("mismatched fixed plan accepted")
	}
}

func TestSingleJobCompletes(t *testing.T) {
	eng, cl, s := rig(t, 624, 50, Config{})
	j := s.Submit(5)
	if j.Shards != 3 {
		t.Fatalf("Shards = %d, want ceil(5/2)=3", j.Shards)
	}
	if math.Abs(j.ShardSize-5.0/3) > 1e-12 {
		t.Fatalf("ShardSize = %v", j.ShardSize)
	}
	eng.Run()
	if !j.Done {
		t.Fatal("job did not complete")
	}
	// Latency: boot (0.5) + per-stage times (plus stage-boundary boots).
	min := s.cfg.Pipeline.TotalTime(j.Plan, j.ShardSize)
	if j.Latency() < min {
		t.Fatalf("latency %v below physical floor %v", j.Latency(), min)
	}
	wantReward := reward.DefaultParams().Reward(reward.TimeBased, 5, j.Latency())
	if math.Abs(j.Reward-wantReward) > 1e-9 {
		t.Fatalf("reward = %v, want %v", j.Reward, wantReward)
	}
	m := s.Metrics()
	if m.JobsCompleted != 1 || m.JobsArrived != 1 {
		t.Fatalf("metrics: %+v", m)
	}
	if m.TotalCost <= 0 {
		t.Fatal("no cost accrued")
	}
	s.Drain()
	if cl.ActiveVMs() != 0 {
		t.Fatalf("%d VMs still hired after drain", cl.ActiveVMs())
	}
}

func TestStageBarrier(t *testing.T) {
	// With one shard per stage and a fixed single-thread plan, stages must
	// execute strictly sequentially: total ≥ Σ stage times.
	plan := gatk.UniformPlan(gatk.NumStages, 1)
	eng, _, s := rig(t, 624, 50, Config{FixedPlan: &plan, ShardSize: 10})
	j := s.Submit(4) // one shard
	eng.Run()
	if !j.Done {
		t.Fatal("job did not complete")
	}
	want := s.cfg.Pipeline.TotalTime(plan, 4)
	if j.Latency() < want-1e-9 {
		t.Fatalf("latency %v < serial floor %v: stages overlapped", j.Latency(), want)
	}
}

func TestNeverScaleStaysPrivate(t *testing.T) {
	eng, cl, s := rig(t, 16, 50, Config{Scaling: NeverScale})
	for i := 0; i < 8; i++ {
		s.Submit(5)
	}
	eng.Run()
	m := s.Metrics()
	if m.PublicHires != 0 {
		t.Fatalf("never-scale hired %d public workers", m.PublicHires)
	}
	if m.JobsCompleted != 8 {
		t.Fatalf("completed %d/8 (starvation?)", m.JobsCompleted)
	}
	if cl.CoresInUse(1) != 0 {
		t.Fatal("public cores in use under never-scale")
	}
}

func TestAlwaysScaleSpillsToPublic(t *testing.T) {
	eng, _, s := rig(t, 4, 50, Config{Scaling: AlwaysScale})
	for i := 0; i < 8; i++ {
		s.Submit(5)
	}
	eng.Run()
	m := s.Metrics()
	if m.PublicHires == 0 {
		t.Fatal("always-scale never went public despite a 4-core private tier")
	}
	if m.JobsCompleted != 8 {
		t.Fatalf("completed %d/8", m.JobsCompleted)
	}
}

func TestPredictiveQuietStaysPrivate(t *testing.T) {
	// A single job on an empty system must not trigger public hires.
	eng, _, s := rig(t, 64, 50, Config{Scaling: PredictiveScale})
	s.Submit(5)
	eng.Run()
	if m := s.Metrics(); m.PublicHires != 0 {
		t.Fatalf("predictive hired %d public workers on an idle system", m.PublicHires)
	}
}

func TestPredictiveHiresUnderBacklog(t *testing.T) {
	// A tiny private tier and a flood of simultaneous jobs must push the
	// delay cost over the hire cost.
	eng, _, s := rig(t, 2, 50, Config{Scaling: PredictiveScale})
	for i := 0; i < 30; i++ {
		s.Submit(5)
	}
	eng.Run()
	m := s.Metrics()
	if m.PublicHires == 0 {
		t.Fatal("predictive never hired public under heavy backlog")
	}
	if m.JobsCompleted != 30 {
		t.Fatalf("completed %d/30", m.JobsCompleted)
	}
}

func TestWorkerReuseAcrossJobs(t *testing.T) {
	// Two identical jobs offset by one TU: the second must ride the warm
	// pool of the first instead of doubling the hires.
	solo, _, s1 := rig(t, 624, 50, Config{})
	s1.Submit(5)
	solo.Run()
	soloHires := s1.Metrics().PrivateHires

	eng, _, s2 := rig(t, 624, 50, Config{})
	s2.Submit(5)
	eng.Schedule(1, func() { s2.Submit(5) })
	eng.Run()
	pairHires := s2.Metrics().PrivateHires
	if pairHires >= 2*soloHires {
		t.Fatalf("no reuse: one job hires %d, two staggered jobs hired %d", soloHires, pairHires)
	}
}

func TestIdleWorkersReleasedAfterWindow(t *testing.T) {
	eng, cl, s := rig(t, 624, 50, Config{})
	s.Submit(5)
	eng.Run() // completes job, then idle-release events fire
	if cl.ActiveVMs() != 0 {
		t.Fatalf("%d workers still hired after idle windows expired", cl.ActiveVMs())
	}
	_ = s
}

func TestHeterogeneousReconfigures(t *testing.T) {
	// Plan alternates widths; with a private tier big enough for only one
	// worker at a time, the scheduler must resize rather than queue
	// forever.
	plan := gatk.Plan{Threads: []int{4, 1, 8, 1, 4, 1, 1}}
	eng, _, s := rig(t, 8, 5000, Config{
		FixedPlan:            &plan,
		ShardSize:            10,
		Scaling:              NeverScale,
		HeterogeneousWorkers: true,
	})
	j := s.Submit(4)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not complete")
	}
	if s.Metrics().Reconfigs == 0 {
		t.Fatal("no reconfigurations under heterogeneous mode with a tight tier")
	}
}

func TestStaticPoolsDoNotReconfigure(t *testing.T) {
	plan := gatk.Plan{Threads: []int{4, 1, 8, 1, 4, 1, 1}}
	eng, _, s := rig(t, 32, 50, Config{
		FixedPlan: &plan,
		ShardSize: 10,
	})
	j := s.Submit(4)
	eng.Run()
	if !j.Done {
		t.Fatal("job did not complete")
	}
	if s.Metrics().Reconfigs != 0 {
		t.Fatal("reconfigured without heterogeneous mode")
	}
}

func TestAllocationPoliciesProduceValidPlans(t *testing.T) {
	for _, al := range []AllocationPolicy{BestConstant, Greedy, LongTerm, LongTermAdaptive} {
		eng, _, s := rig(t, 624, 50, Config{Allocation: al})
		j := s.Submit(5)
		if err := j.Plan.Validate(gatk.NumStages); err != nil {
			t.Fatalf("%v: invalid plan: %v", al, err)
		}
		eng.Run()
		if !j.Done {
			t.Fatalf("%v: job did not complete", al)
		}
	}
}

func TestGreedyNarrowsWhenOnlyPublicLeft(t *testing.T) {
	// When the private tier is exhausted, greedy re-plans against the
	// public price, which must never widen the plan.
	eng, cl, s := rig(t, 624, 110, Config{Allocation: Greedy})
	cheap := s.Submit(5)
	// Exhaust the private tier so the next stage re-plan sees public price.
	hog, err := cl.Hire(0, 624-cl.CoresInUse(0))
	if err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if err := cl.Release(hog); err != nil {
		t.Fatal(err)
	}
	if !cheap.Done {
		t.Fatal("job starved")
	}
	if cheap.Plan.CoreStages() > s.ConstantPlan().CoreStages() {
		t.Fatalf("greedy widened the plan under public pricing: %v > %v",
			cheap.Plan.Threads, s.ConstantPlan().Threads)
	}
}

func TestMetricsMath(t *testing.T) {
	m := Metrics{JobsCompleted: 4, TotalReward: 1000, TotalCost: 250}
	if got := m.ProfitPerJob(); got != 187.5 {
		t.Fatalf("ProfitPerJob = %v", got)
	}
	if got := m.RewardToCost(); got != 4 {
		t.Fatalf("RewardToCost = %v", got)
	}
	empty := Metrics{}
	if empty.ProfitPerJob() != 0 || empty.RewardToCost() != 0 {
		t.Fatal("zero-guard broken")
	}
}

func TestEWMA(t *testing.T) {
	e := newEWMA(0.5)
	if e.Samples() != 0 || e.Value() != 0 {
		t.Fatal("zero state wrong")
	}
	e.Add(10)
	if e.Value() != 10 {
		t.Fatalf("first sample: %v", e.Value())
	}
	e.Add(20)
	if e.Value() != 15 {
		t.Fatalf("EWMA = %v, want 15", e.Value())
	}
}

// Property: every admitted job completes once arrivals stop, no cores leak,
// and total reward equals the sum over completed jobs — for any workload
// mix and policy combination.
func TestConservationProperty(t *testing.T) {
	f := func(sizes []uint8, scRaw, alRaw uint8) bool {
		if len(sizes) > 24 {
			sizes = sizes[:24]
		}
		sc := ScalingPolicy(scRaw % 3)
		al := AllocationPolicy(alRaw % 4)
		eng := sim.NewEngine()
		cl := cloud.New(eng, 0.5,
			cloud.Tier{Name: "private", PricePerCoreTU: 5, Cores: 48},
			cloud.Tier{Name: "public", PricePerCoreTU: 50, Cores: cloud.Unbounded},
		)
		s, err := New(eng, cl, Config{
			Pipeline:     gatk.NewPipeline(),
			RewardParams: reward.DefaultParams(),
			Scaling:      sc,
			Allocation:   al,
		})
		if err != nil {
			return false
		}
		var jobs []*Job
		for i, raw := range sizes {
			size := 0.5 + float64(raw%40)/4
			at := float64(i) * 0.3
			eng.Schedule(at, func() { jobs = append(jobs, s.Submit(size)) })
		}
		eng.Run()
		s.Drain()
		m := s.Metrics()
		if m.JobsCompleted != len(sizes) || m.JobsArrived != len(sizes) {
			return false
		}
		var sum float64
		for _, j := range jobs {
			if !j.Done {
				return false
			}
			sum += j.Reward
		}
		if math.Abs(sum-m.TotalReward) > 1e-6 {
			return false
		}
		return cl.ActiveVMs() == 0 && cl.CoresInUse(0) == 0 && cl.CoresInUse(1) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		cl := cloud.New(eng, 0.5, cloud.DefaultTiers(50)...)
		s, err := New(eng, cl, Config{
			Pipeline:     gatk.NewPipeline(),
			RewardParams: reward.DefaultParams(),
			Scaling:      PredictiveScale,
		})
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < 100; k++ {
			at := float64(k) * 0.5
			eng.Schedule(at, func() { s.Submit(5) })
		}
		eng.Run()
		s.Drain()
	}
}
