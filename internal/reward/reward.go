// Package reward implements the paper's reward and cost functions: the
// time-oriented scheme R(d,t) = d·(Rmax − t·Rpenalty), the throughput-
// oriented scheme R(d,t) = d·Rscale/t, and the delay-cost of Equation 1
// that drives the predictive scaling decisions.
package reward

import (
	"fmt"
)

// Scheme selects the reward formula.
type Scheme uint8

// Reward schemes (Table I: "Task completion reward function").
const (
	TimeBased Scheme = iota
	ThroughputBased
)

// String names the scheme as in the paper's figures.
func (s Scheme) String() string {
	switch s {
	case TimeBased:
		return "time-based"
	case ThroughputBased:
		return "throughput-based"
	default:
		return fmt.Sprintf("scheme(%d)", uint8(s))
	}
}

// Params holds the reward constants of Table III.
type Params struct {
	RMax     float64 // CUs per unit data (time-based ceiling)
	RPenalty float64 // CUs per unit data per TU of latency
	RScale   float64 // CUs·TU per unit data (throughput scheme)
}

// DefaultParams returns the Table III values: Rmax 400, Rpenalty 15,
// Rscale 15000.
func DefaultParams() Params {
	return Params{RMax: 400, RPenalty: 15, RScale: 15000}
}

// Reward returns the payment for completing a pipeline over input size d
// with end-to-end latency t (Section II-D). The time-based scheme may go
// negative: users penalise late results beyond the reward ceiling.
func (p Params) Reward(s Scheme, d, t float64) float64 {
	switch s {
	case ThroughputBased:
		if t <= 0 {
			t = 1e-9
		}
		return d * p.RScale / t
	default:
		return d * (p.RMax - t*p.RPenalty)
	}
}

// MarginalDelayCost returns R(d, t) − R(d, t+delay): the reward lost by
// delaying one job whose estimated total time is t by delay TUs — one term
// of Equation 1's sum.
func (p Params) MarginalDelayCost(s Scheme, d, t, delay float64) float64 {
	return p.Reward(s, d, t) - p.Reward(s, d, t+delay)
}

// JobEstimate is one queued job's contribution to a delay-cost query: its
// input size and its estimated total time ETT(j) (Equation 2).
type JobEstimate struct {
	Size float64
	ETT  float64
}

// DelayCost implements Equation 1: the total reward lost by delaying every
// job in the queue by delay TUs.
func (p Params) DelayCost(s Scheme, queue []JobEstimate, delay float64) float64 {
	var sum float64
	for _, j := range queue {
		sum += p.MarginalDelayCost(s, j.Size, j.ETT, delay)
	}
	return sum
}
