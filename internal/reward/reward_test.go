package reward

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeBasedReward(t *testing.T) {
	p := DefaultParams()
	// R(d, t) = d(Rmax − t·Rpenalty): 5 × (400 − 10×15) = 1250.
	if got := p.Reward(TimeBased, 5, 10); got != 1250 {
		t.Fatalf("Reward = %v, want 1250", got)
	}
	// Past the break-even latency the reward goes negative.
	if got := p.Reward(TimeBased, 5, 30); got >= 0 {
		t.Fatalf("late reward = %v, want negative", got)
	}
}

func TestThroughputReward(t *testing.T) {
	p := DefaultParams()
	// R = d·Rscale/t: 5 × 15000 / 10 = 7500.
	if got := p.Reward(ThroughputBased, 5, 10); got != 7500 {
		t.Fatalf("Reward = %v, want 7500", got)
	}
	// Zero latency must not divide by zero.
	if got := p.Reward(ThroughputBased, 5, 0); math.IsInf(got, 0) || math.IsNaN(got) {
		// A large finite value is acceptable; Inf/NaN is not.
		t.Fatalf("Reward at t=0 = %v", got)
	}
}

// Property: both schemes are monotone nonincreasing in latency and
// nondecreasing in data size (for positive sizes).
func TestRewardMonotonicityProperty(t *testing.T) {
	p := DefaultParams()
	f := func(dRaw, t1Raw, dtRaw uint16) bool {
		d := 0.1 + float64(dRaw)/100
		t1 := 0.1 + float64(t1Raw)/100
		dt := float64(dtRaw) / 100
		for _, s := range []Scheme{TimeBased, ThroughputBased} {
			if p.Reward(s, d, t1+dt) > p.Reward(s, d, t1)+1e-9 {
				return false
			}
			if p.Reward(s, d+1, t1) < p.Reward(s, d, t1)-1e-9 && p.Reward(s, d, t1) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMarginalDelayCost(t *testing.T) {
	p := DefaultParams()
	// Time-based: delaying d=5 by 2 TU costs d·Rpenalty·delay = 150,
	// independent of the current ETT.
	if got := p.MarginalDelayCost(TimeBased, 5, 10, 2); math.Abs(got-150) > 1e-9 {
		t.Fatalf("time-based delay cost = %v, want 150", got)
	}
	if got := p.MarginalDelayCost(TimeBased, 5, 50, 2); math.Abs(got-150) > 1e-9 {
		t.Fatalf("delay cost depends on ETT under time scheme: %v", got)
	}
	// Throughput: delay hurts more when the job is almost done (small ETT).
	early := p.MarginalDelayCost(ThroughputBased, 5, 2, 1)
	late := p.MarginalDelayCost(ThroughputBased, 5, 20, 1)
	if early <= late {
		t.Fatalf("throughput delay cost: early=%v late=%v, want early > late", early, late)
	}
}

func TestDelayCostSumsQueue(t *testing.T) {
	p := DefaultParams()
	q := []JobEstimate{{Size: 5, ETT: 10}, {Size: 3, ETT: 4}}
	got := p.DelayCost(TimeBased, q, 2)
	want := 5.0*15*2 + 3.0*15*2
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DelayCost = %v, want %v", got, want)
	}
	if p.DelayCost(TimeBased, nil, 2) != 0 {
		t.Fatal("empty queue must cost nothing")
	}
}

func TestSchemeString(t *testing.T) {
	if TimeBased.String() != "time-based" || ThroughputBased.String() != "throughput-based" {
		t.Fatal("scheme names wrong")
	}
	if Scheme(9).String() == "" {
		t.Fatal("unknown scheme must still render")
	}
}
