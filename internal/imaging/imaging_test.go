package imaging

import (
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, cellsA, err := Generate(rand.New(rand.NewSource(5)), "img", SimConfig{Cells: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, cellsB, err := Generate(rand.New(rand.NewSource(5)), "img", SimConfig{Cells: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(cellsA) != 6 || len(cellsB) != 6 {
		t.Fatalf("cells = %d, %d", len(cellsA), len(cellsB))
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestSegmentRecoversPlantedCells(t *testing.T) {
	im, cells, err := Generate(rand.New(rand.NewSource(9)), "img", SimConfig{W: 160, H: 120, Cells: 8})
	if err != nil {
		t.Fatal(err)
	}
	regions := Segment(&im, SegConfig{})
	if len(regions) != len(cells) {
		t.Fatalf("segmented %d regions, planted %d cells", len(regions), len(cells))
	}
	for _, r := range regions {
		if r.Area < 9 { // a radius-3 disk covers ≥ 29 px; noise never segments
			t.Fatalf("implausible region %+v", r)
		}
		if r.Mean < 0.7 {
			t.Fatalf("region mean %v below cell intensity floor", r.Mean)
		}
	}
}

// TestTiledSegmentationMatchesWholeFrame is the overlap-correctness check:
// every tiling with the default halo yields exactly the whole-frame region
// set — boundary-straddling cells are counted once, by centroid ownership.
func TestTiledSegmentationMatchesWholeFrame(t *testing.T) {
	im, _, err := Generate(rand.New(rand.NewSource(21)), "img", SimConfig{W: 200, H: 140, Cells: 12})
	if err != nil {
		t.Fatal(err)
	}
	want := Segment(&im, SegConfig{})
	for _, tiles := range []int{2, 4, 9, 16} {
		grid := TileGrid(im.W, im.H, tiles, DefaultHalo)
		var got []Region
		for _, tile := range grid {
			got = append(got, SegmentTile(&im, tile, SegConfig{})...)
		}
		SortRegions(got)
		if len(got) != len(want) {
			t.Fatalf("%d tiles: %d regions, whole frame found %d", tiles, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%d tiles: region %d = %+v, whole frame %+v", tiles, i, got[i], want[i])
			}
		}
	}
}

func TestTileGridPartitionsFrame(t *testing.T) {
	for _, tc := range []struct{ w, h, tiles int }{
		{128, 128, 1}, {128, 128, 4}, {100, 60, 7}, {16, 16, 64},
	} {
		tiles := TileGrid(tc.w, tc.h, tc.tiles, DefaultHalo)
		if len(tiles) == 0 {
			t.Fatalf("%+v: no tiles", tc)
		}
		covered := make([]int, tc.w*tc.h)
		for _, tile := range tiles {
			c := tile.Core
			if c.X0 < tile.Halo.X0 || c.X1 > tile.Halo.X1 || c.Y0 < tile.Halo.Y0 || c.Y1 > tile.Halo.Y1 {
				t.Fatalf("%+v: core escapes halo: %+v", tc, tile)
			}
			for y := c.Y0; y < c.Y1; y++ {
				for x := c.X0; x < c.X1; x++ {
					covered[y*tc.w+x]++
				}
			}
		}
		for i, n := range covered {
			if n != 1 {
				t.Fatalf("%+v: pixel %d covered %d times; cores must partition the frame", tc, i, n)
			}
		}
	}
}

func TestGenerateRejectsOvercrowdedFrame(t *testing.T) {
	// 32×32 cannot hold 50 separated cells.
	if _, _, err := Generate(rand.New(rand.NewSource(1)), "x", SimConfig{W: 32, H: 32, Cells: 50}); err == nil {
		t.Fatal("overcrowded frame accepted")
	}
}
