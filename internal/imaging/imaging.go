package imaging

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Default simulated-cell geometry, shared between the generator and the
// tile halo sizing.
const (
	// DefaultMinRadius and DefaultMaxRadius bound simulated cell radii in
	// pixels.
	DefaultMinRadius = 3
	DefaultMaxRadius = 6
	// DefaultHalo is the tile halo width that guarantees a cell whose
	// centroid lies in a tile's core is entirely inside the tile's
	// segmented window: one full cell diameter plus margin.
	DefaultHalo = 2*DefaultMaxRadius + 2
)

// Image is one grayscale microscopy frame: row-major intensities in [0,1].
type Image struct {
	ID   string
	W, H int
	Pix  []float64
}

// At returns the intensity at (x, y).
func (im *Image) At(x, y int) float64 { return im.Pix[y*im.W+x] }

// Cell is one planted ground-truth cell.
type Cell struct {
	X, Y      int // center
	R         int // radius
	Intensity float64
}

// SimConfig controls image generation.
type SimConfig struct {
	// W, H are the frame dimensions in pixels (default 128×128).
	W, H int
	// Cells is the number of planted cells.
	Cells int
	// Noise is the background intensity ceiling (default 0.3, below the
	// default segmentation threshold so background never segments).
	Noise float64
}

// Generate builds one synthetic frame: uniform background noise with Cells
// bright disks planted at mutually separated positions, so thresholding
// recovers exactly the planted count. Cell centers keep at least one
// diameter of clearance from each other and from the frame border;
// generation fails if the frame is too small to place them all.
func Generate(rng *rand.Rand, id string, cfg SimConfig) (Image, []Cell, error) {
	if cfg.W <= 0 {
		cfg.W = 128
	}
	if cfg.H <= 0 {
		cfg.H = 128
	}
	if cfg.Noise <= 0 {
		cfg.Noise = 0.3
	}
	if cfg.Cells < 0 {
		return Image{}, nil, fmt.Errorf("imaging: negative cell count %d", cfg.Cells)
	}
	im := Image{ID: id, W: cfg.W, H: cfg.H, Pix: make([]float64, cfg.W*cfg.H)}
	for i := range im.Pix {
		im.Pix[i] = rng.Float64() * cfg.Noise
	}
	margin := DefaultMaxRadius + 2
	if cfg.Cells > 0 && (cfg.W <= 2*margin || cfg.H <= 2*margin) {
		return Image{}, nil, fmt.Errorf("imaging: %dx%d frame too small for cells (need > %d per side)",
			cfg.W, cfg.H, 2*margin)
	}
	minSep := 2*DefaultMaxRadius + 3 // disjoint components under 4-connectivity
	cells := make([]Cell, 0, cfg.Cells)
	const maxTries = 10000
	for len(cells) < cfg.Cells {
		placed := false
		for try := 0; try < maxTries; try++ {
			x := margin + rng.Intn(cfg.W-2*margin)
			y := margin + rng.Intn(cfg.H-2*margin)
			ok := true
			for _, c := range cells {
				dx, dy := float64(x-c.X), float64(y-c.Y)
				if math.Hypot(dx, dy) < float64(minSep) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			r := DefaultMinRadius + rng.Intn(DefaultMaxRadius-DefaultMinRadius+1)
			cell := Cell{X: x, Y: y, R: r, Intensity: 0.7 + 0.25*rng.Float64()}
			for py := y - r; py <= y+r; py++ {
				for px := x - r; px <= x+r; px++ {
					dx, dy := float64(px-x), float64(py-y)
					if dx*dx+dy*dy <= float64(r*r) {
						im.Pix[py*im.W+px] = cell.Intensity
					}
				}
			}
			cells = append(cells, cell)
			placed = true
			break
		}
		if !placed {
			return Image{}, nil, fmt.Errorf("imaging: cannot place %d separated cells in %dx%d",
				cfg.Cells, cfg.W, cfg.H)
		}
	}
	return im, cells, nil
}

// Rect is a half-open pixel rectangle [X0,X1)×[Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// Contains reports whether the point lies inside the rectangle.
func (r Rect) Contains(x, y float64) bool {
	return x >= float64(r.X0) && x < float64(r.X1) && y >= float64(r.Y0) && y < float64(r.Y1)
}

// Tile is one scatter unit: the Core rectangles of a grid partition the
// image exactly; Halo is the core widened by the halo margin (clipped to
// the frame), the window the tile actually segments.
type Tile struct {
	Core Rect
	Halo Rect
}

// TileGrid covers a w×h frame with approximately `tiles` tiles arranged in
// a near-square grid, each with the given halo margin. At least one tile is
// always returned, and core rectangles partition the frame exactly.
func TileGrid(w, h, tiles, halo int) []Tile {
	if tiles < 1 {
		tiles = 1
	}
	gx := int(math.Ceil(math.Sqrt(float64(tiles))))
	gy := (tiles + gx - 1) / gx
	if gx > w {
		gx = w
	}
	if gy > h {
		gy = h
	}
	out := make([]Tile, 0, gx*gy)
	for ty := 0; ty < gy; ty++ {
		y0, y1 := ty*h/gy, (ty+1)*h/gy
		for tx := 0; tx < gx; tx++ {
			x0, x1 := tx*w/gx, (tx+1)*w/gx
			core := Rect{X0: x0, Y0: y0, X1: x1, Y1: y1}
			out = append(out, Tile{Core: core, Halo: Rect{
				X0: max(0, x0-halo), Y0: max(0, y0-halo),
				X1: min(w, x1+halo), Y1: min(h, y1+halo),
			}})
		}
	}
	return out
}

// Region is one segmented connected component — a detected cell.
type Region struct {
	// Area is the component's pixel count.
	Area int
	// CX, CY is the intensity-unweighted centroid.
	CX, CY float64
	// Mean is the mean intensity over the component.
	Mean float64
	// Bounding box (inclusive).
	MinX, MinY, MaxX, MaxY int
}

// SegConfig controls segmentation.
type SegConfig struct {
	// Threshold separates cells from background (default 0.5: above the
	// default noise ceiling, below the cell intensity floor).
	Threshold float64
	// MinArea drops components smaller than this many pixels (default 4).
	MinArea int
}

func (c SegConfig) withDefaults() SegConfig {
	if c.Threshold <= 0 {
		c.Threshold = 0.5
	}
	if c.MinArea <= 0 {
		c.MinArea = 4
	}
	return c
}

// SegmentTile thresholds the tile's halo window and extracts 4-connected
// components, keeping only regions whose centroid falls in the tile core —
// so a cell spanning a core boundary is reported exactly once, by the tile
// owning its centroid. Coordinates are in frame space.
func SegmentTile(im *Image, t Tile, cfg SegConfig) []Region {
	cfg = cfg.withDefaults()
	w := t.Halo.X1 - t.Halo.X0
	h := t.Halo.Y1 - t.Halo.Y0
	if w <= 0 || h <= 0 {
		return nil
	}
	visited := make([]bool, w*h)
	var regions []Region
	var stack []int
	for start := 0; start < w*h; start++ {
		sx, sy := t.Halo.X0+start%w, t.Halo.Y0+start/w
		if visited[start] || im.At(sx, sy) < cfg.Threshold {
			continue
		}
		// Flood-fill one component.
		reg := Region{MinX: sx, MinY: sy, MaxX: sx, MaxY: sy}
		sumX, sumY, sumI := 0.0, 0.0, 0.0
		visited[start] = true
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			idx := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			x, y := t.Halo.X0+idx%w, t.Halo.Y0+idx/w
			reg.Area++
			sumX += float64(x)
			sumY += float64(y)
			sumI += im.At(x, y)
			reg.MinX, reg.MaxX = min(reg.MinX, x), max(reg.MaxX, x)
			reg.MinY, reg.MaxY = min(reg.MinY, y), max(reg.MaxY, y)
			for _, d := range [4][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				nx, ny := x+d[0], y+d[1]
				if nx < t.Halo.X0 || nx >= t.Halo.X1 || ny < t.Halo.Y0 || ny >= t.Halo.Y1 {
					continue
				}
				nidx := (ny-t.Halo.Y0)*w + (nx - t.Halo.X0)
				if !visited[nidx] && im.At(nx, ny) >= cfg.Threshold {
					visited[nidx] = true
					stack = append(stack, nidx)
				}
			}
		}
		if reg.Area < cfg.MinArea {
			continue
		}
		reg.CX = sumX / float64(reg.Area)
		reg.CY = sumY / float64(reg.Area)
		reg.Mean = sumI / float64(reg.Area)
		if t.Core.Contains(reg.CX, reg.CY) {
			regions = append(regions, reg)
		}
	}
	sortRegions(regions)
	return regions
}

// Segment runs single-tile segmentation over the whole frame.
func Segment(im *Image, cfg SegConfig) []Region {
	full := Rect{X1: im.W, Y1: im.H}
	return SegmentTile(im, Tile{Core: full, Halo: full}, cfg)
}

// sortRegions orders regions by centroid (row-major), the deterministic
// gather order regardless of tiling.
func sortRegions(rs []Region) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].CY != rs[j].CY {
			return rs[i].CY < rs[j].CY
		}
		return rs[i].CX < rs[j].CX
	})
}

// SortRegions exposes the canonical region order for gathers that merge
// per-tile outputs.
func SortRegions(rs []Region) { sortRegions(rs) }
