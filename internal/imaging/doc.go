// Package imaging implements SCAN's microscopy substrate: a deterministic
// cell-segmentation and feature-extraction toolkit standing in for
// CellProfiler in the paper's Figure 1 microscopy path.
//
// Images are synthetic fluorescence fields — bright cell disks over a dim
// noise background — segmented by intensity thresholding and connected
// components, with per-cell features (area, centroid, mean intensity)
// extracted from each region.
//
// Scatter/gather shape: the image tile is the scatter unit. A tile's core
// rectangle partitions the frame exactly, and a halo border widens the
// segmented window so a cell lying across a core boundary is still seen
// whole; each cell is counted once, by the tile that owns its centroid —
// the 2-D analogue of the overlap-aware genomic region scatter in package
// shard. Per-tile region sets gather into one per-frame feature list.
//
// Determinism guarantee: generation is seeded (Generate regenerates
// identical frames from equal seeds), segmentation is a pure function of
// the pixels, and gathered regions are sorted into canonical order
// (SortRegions), so tiled and whole-frame segmentation of the same image
// produce identical region sets regardless of the tile grid — proven by
// the package's tiled-equals-whole tests and relied on by the workflow
// engine's Profile stage.
package imaging
