// Package tenant implements scand's multi-tenant admission state: API-key
// identities with per-tenant quotas (concurrent jobs, datasets, resident
// bytes) and token-bucket rate limits shaped by priority class.
//
// The package is deliberately free of HTTP: it answers the three admission
// questions — who is this key (Registry.Authenticate, constant-time like
// the fleet token), may they send another request now (State.Allow), and
// may they hold another job/dataset (State.AdmitJob, State.CheckDataset,
// State.RecordDataset) — and internal/rpc turns the answers into 401/429/403
// envelopes. All per-tenant state is allocated once at config load and
// bounded by the tenants file: a client connecting, streaming, or vanishing
// mid-upload never allocates or leaks limiter state.
package tenant

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// Priority classes order tenants under contention and pick the rate-limit
// defaults below. An empty class means PriorityNormal.
const (
	PriorityHigh   = "high"
	PriorityNormal = "normal"
	PriorityLow    = "low"
)

// Default per-class token-bucket shapes: sustained requests/second and
// burst. Explicit RatePerSec/Burst in the config override them.
var classDefaults = map[string]struct {
	rate  float64
	burst float64
}{
	PriorityHigh:   {rate: 50, burst: 100},
	PriorityNormal: {rate: 20, burst: 40},
	PriorityLow:    {rate: 5, burst: 10},
}

// Default quotas applied where the config leaves a field zero. Negative
// config values mean unlimited.
const (
	DefaultMaxJobs     = 8
	DefaultMaxDatasets = 32
	DefaultMaxBytes    = 256 << 20
)

// Tenant is one configured identity, as written in the tenants file.
type Tenant struct {
	// Name labels the tenant in metrics and logs; it never leaves the
	// server, so it need not be secret.
	Name string `json:"name"`
	// Key is the API key presented as "Authorization: Bearer <Key>" (or
	// "X-API-Key: <Key>"). Compared in constant time.
	Key string `json:"key"`
	// Priority is the tenant's class: high, normal (default) or low.
	Priority string `json:"priority,omitempty"`
	// MaxJobs bounds concurrently held jobs (pending + running). 0 means
	// DefaultMaxJobs; negative means unlimited.
	MaxJobs int `json:"max_jobs,omitempty"`
	// MaxDatasets bounds live registered datasets owned by the tenant.
	// 0 means DefaultMaxDatasets; negative means unlimited.
	MaxDatasets int `json:"max_datasets,omitempty"`
	// MaxBytes bounds the summed registry bytes of the tenant's live
	// datasets. 0 means DefaultMaxBytes; negative means unlimited.
	MaxBytes int64 `json:"max_bytes,omitempty"`
	// RatePerSec and Burst override the priority class's token-bucket
	// shape when positive.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      int     `json:"burst,omitempty"`
}

// config is the tenants file shape: {"tenants":[...]}.
type config struct {
	Tenants []Tenant `json:"tenants"`
}

// Registry holds every configured tenant. Immutable after Parse; all
// mutability lives inside the per-tenant States.
type Registry struct {
	states []*State
}

// State is one tenant's runtime admission state. All methods are safe for
// concurrent use.
type State struct {
	tenant Tenant
	// Resolved limits (defaults applied; negative = unlimited).
	maxJobs, maxDatasets int
	maxBytes             int64
	rate, burst          float64

	mu         sync.Mutex
	tokens     float64
	last       time.Time
	activeJobs int
	// datasets maps owned dataset IDs to their registry byte size. Entries
	// for deleted or evicted datasets are pruned lazily at check time via
	// the caller's liveness callback — the registry evicts without telling
	// us, so eviction must never leak quota.
	datasets map[string]int64
}

// Parse loads a tenants config from JSON bytes and validates it: every
// tenant needs a non-empty name and key, names and keys must be unique,
// and the priority class must be known.
func Parse(raw []byte) (*Registry, error) {
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return nil, fmt.Errorf("tenant: bad config: %w", err)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("tenant: config has no tenants")
	}
	names := map[string]bool{}
	keys := map[string]bool{}
	r := &Registry{}
	for i, t := range cfg.Tenants {
		if t.Name == "" || t.Key == "" {
			return nil, fmt.Errorf("tenant: entry %d needs both name and key", i)
		}
		if names[t.Name] {
			return nil, fmt.Errorf("tenant: duplicate name %q", t.Name)
		}
		if keys[t.Key] {
			return nil, fmt.Errorf("tenant: duplicate key (tenant %q)", t.Name)
		}
		names[t.Name], keys[t.Key] = true, true
		if t.Priority == "" {
			t.Priority = PriorityNormal
		}
		shape, ok := classDefaults[t.Priority]
		if !ok {
			return nil, fmt.Errorf("tenant: %q has unknown priority %q (want high, normal or low)", t.Name, t.Priority)
		}
		st := &State{
			tenant:      t,
			maxJobs:     resolveInt(t.MaxJobs, DefaultMaxJobs),
			maxDatasets: resolveInt(t.MaxDatasets, DefaultMaxDatasets),
			maxBytes:    resolveInt64(t.MaxBytes, DefaultMaxBytes),
			rate:        shape.rate,
			burst:       shape.burst,
			datasets:    make(map[string]int64),
		}
		if t.RatePerSec > 0 {
			st.rate = t.RatePerSec
		}
		if t.Burst > 0 {
			st.burst = float64(t.Burst)
		}
		st.tokens = st.burst // start full: a fresh tenant gets its burst
		r.states = append(r.states, st)
	}
	return r, nil
}

// Load reads a tenants config file (see Parse for the shape).
func Load(path string) (*Registry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenant: %w", err)
	}
	return Parse(raw)
}

// resolveInt applies the zero-means-default, negative-means-unlimited
// convention (unlimited is represented as -1 internally).
func resolveInt(v, def int) int {
	switch {
	case v == 0:
		return def
	case v < 0:
		return -1
	default:
		return v
	}
}

func resolveInt64(v, def int64) int64 {
	switch {
	case v == 0:
		return def
	case v < 0:
		return -1
	default:
		return v
	}
}

// Authenticate resolves an API key to its tenant state, or nil when no
// tenant matches. Every configured key is compared in constant time on
// every call — the same defense the fleet token uses — so response timing
// reveals neither a near-miss nor which tenant matched.
func (r *Registry) Authenticate(key string) *State {
	if key == "" {
		return nil
	}
	var found *State
	kb := []byte(key)
	for _, st := range r.states {
		if subtle.ConstantTimeCompare(kb, []byte(st.tenant.Key)) == 1 {
			found = st
		}
	}
	return found
}

// Tenants lists the configured tenants' states, in config order (for
// metrics enumeration; names are stable label values).
func (r *Registry) Tenants() []*State {
	return append([]*State(nil), r.states...)
}

// Name is the tenant's configured name.
func (s *State) Name() string { return s.tenant.Name }

// Priority is the tenant's resolved priority class.
func (s *State) Priority() string { return s.tenant.Priority }

// ---------------------------------------------------------------------------
// Token-bucket rate limiting
// ---------------------------------------------------------------------------

// Allow consumes one request token if available. When the bucket is empty
// it reports false plus how long until a token accrues — the Retry-After
// the 429 carries. now is injected for testability.
func (s *State) Allow(now time.Time) (ok bool, retryAfter time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last.IsZero() {
		s.last = now
	}
	if dt := now.Sub(s.last).Seconds(); dt > 0 {
		s.tokens = min(s.burst, s.tokens+dt*s.rate)
		s.last = now
	}
	if s.tokens >= 1 {
		s.tokens--
		return true, 0
	}
	need := (1 - s.tokens) / s.rate
	return false, time.Duration(need * float64(time.Second))
}

// ---------------------------------------------------------------------------
// Job-slot quota
// ---------------------------------------------------------------------------

// AdmitJob claims one concurrent-job slot, reporting false when the tenant
// is at its MaxJobs quota. Every successful claim must be paired with
// exactly one ReleaseJob when the job can never run again.
func (s *State) AdmitJob() (ok bool, active, limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxJobs >= 0 && s.activeJobs >= s.maxJobs {
		return false, s.activeJobs, s.maxJobs
	}
	s.activeJobs++
	return true, s.activeJobs, s.maxJobs
}

// ReleaseJob returns one concurrent-job slot. Callers guarantee pairing
// (rpc releases through its exactly-once releaseSpecLocked path); a
// spurious release panics rather than silently widening the quota.
func (s *State) ReleaseJob() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.activeJobs <= 0 {
		panic("tenant: ReleaseJob without a matching AdmitJob")
	}
	s.activeJobs--
}

// ActiveJobs reports the currently held job slots.
func (s *State) ActiveJobs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.activeJobs
}

// ---------------------------------------------------------------------------
// Dataset quotas
// ---------------------------------------------------------------------------

// CheckDataset reports whether the tenant may register one more dataset.
// live filters the ownership ledger first: datasets deleted or evicted
// since they were recorded stop counting (nil means everything is live).
// The byte quota cannot be checked here — an upload's registry size is
// only known after decode — so RecordDataset re-checks bytes post-commit.
func (s *State) CheckDataset(live func(id string) bool) (ok bool, count, limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(live)
	if s.maxDatasets >= 0 && len(s.datasets) >= s.maxDatasets {
		return false, len(s.datasets), s.maxDatasets
	}
	return true, len(s.datasets), s.maxDatasets
}

// RecordDataset records ownership of a just-committed dataset and checks
// the byte quota. When the new total would exceed MaxBytes the dataset is
// NOT recorded and ok is false — the caller deletes the fresh (unpinned)
// dataset from the registry and answers 429 quota_exceeded.
func (s *State) RecordDataset(id string, bytes int64, live func(id string) bool) (ok bool, used, limit int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(live)
	used = s.bytesLocked()
	if s.maxBytes >= 0 && used+bytes > s.maxBytes {
		return false, used, s.maxBytes
	}
	s.datasets[id] = bytes
	return true, used + bytes, s.maxBytes
}

// Owns reports whether the tenant recorded dataset id (ownership gates
// DELETE — reads stay shared across tenants; see docs/SERVING.md).
func (s *State) Owns(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.datasets[id]
	return ok
}

// ForgetDataset drops ownership after a delete. Idempotent.
func (s *State) ForgetDataset(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.datasets, id)
}

// Usage reports the tenant's live dataset count and summed bytes.
func (s *State) Usage(live func(id string) bool) (datasets int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pruneLocked(live)
	return len(s.datasets), s.bytesLocked()
}

// pruneLocked drops ledger entries the registry no longer holds.
func (s *State) pruneLocked(live func(id string) bool) {
	if live == nil {
		return
	}
	for id := range s.datasets {
		if !live(id) {
			delete(s.datasets, id)
		}
	}
}

func (s *State) bytesLocked() int64 {
	var total int64
	for _, b := range s.datasets {
		total += b
	}
	return total
}
