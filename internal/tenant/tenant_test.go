package tenant

import (
	"strings"
	"sync"
	"testing"
	"time"
)

const twoTenants = `{"tenants":[
  {"name":"alice","key":"key-alice","priority":"high","max_jobs":2,"max_datasets":2,"max_bytes":100},
  {"name":"mallory","key":"key-mallory","priority":"low"}
]}`

func mustParse(t *testing.T, raw string) *Registry {
	t.Helper()
	r, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name, raw, wantErr string
	}{
		{"empty", `{"tenants":[]}`, "no tenants"},
		{"not json", `nope`, "bad config"},
		{"missing key", `{"tenants":[{"name":"a"}]}`, "needs both name and key"},
		{"missing name", `{"tenants":[{"key":"k"}]}`, "needs both name and key"},
		{"dup name", `{"tenants":[{"name":"a","key":"k1"},{"name":"a","key":"k2"}]}`, "duplicate name"},
		{"dup key", `{"tenants":[{"name":"a","key":"k"},{"name":"b","key":"k"}]}`, "duplicate key"},
		{"bad priority", `{"tenants":[{"name":"a","key":"k","priority":"urgent"}]}`, "unknown priority"},
	}
	for _, tc := range cases {
		if _, err := Parse([]byte(tc.raw)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestAuthenticate(t *testing.T) {
	r := mustParse(t, twoTenants)
	if st := r.Authenticate("key-alice"); st == nil || st.Name() != "alice" {
		t.Fatalf("key-alice resolved to %v", st)
	}
	if st := r.Authenticate("key-mallory"); st == nil || st.Name() != "mallory" {
		t.Fatalf("key-mallory resolved to %v", st)
	}
	for _, bad := range []string{"", "key-alic", "key-alicee", "KEY-ALICE"} {
		if st := r.Authenticate(bad); st != nil {
			t.Fatalf("key %q resolved to %s, want nil", bad, st.Name())
		}
	}
}

func TestPriorityDefaults(t *testing.T) {
	r := mustParse(t, `{"tenants":[
	  {"name":"h","key":"kh","priority":"high"},
	  {"name":"n","key":"kn"},
	  {"name":"l","key":"kl","priority":"low"},
	  {"name":"c","key":"kc","priority":"low","rate_per_sec":99,"burst":3}
	]}`)
	shapes := map[string][2]float64{}
	for _, st := range r.Tenants() {
		shapes[st.Name()] = [2]float64{st.rate, st.burst}
	}
	want := map[string][2]float64{
		"h": {50, 100}, "n": {20, 40}, "l": {5, 10}, "c": {99, 3},
	}
	for name, w := range want {
		if shapes[name] != w {
			t.Errorf("%s: shape = %v, want %v", name, shapes[name], w)
		}
	}
	if r.Authenticate("kn").Priority() != PriorityNormal {
		t.Error("empty priority did not default to normal")
	}
}

func TestTokenBucket(t *testing.T) {
	r := mustParse(t, `{"tenants":[{"name":"a","key":"k","rate_per_sec":10,"burst":2}]}`)
	st := r.Authenticate("k")
	now := time.Unix(1000, 0)

	// Burst drains in two requests; the third is limited.
	for i := 0; i < 2; i++ {
		if ok, _ := st.Allow(now); !ok {
			t.Fatalf("request %d inside burst rejected", i)
		}
	}
	ok, retry := st.Allow(now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if retry <= 0 || retry > 100*time.Millisecond {
		t.Fatalf("retryAfter = %v, want (0, 100ms] at 10 rps", retry)
	}
	// After the advertised wait a token has accrued.
	if ok, _ := st.Allow(now.Add(retry)); !ok {
		t.Fatal("request after Retry-After still rejected")
	}
	// Refill never exceeds the burst.
	if ok, _ := st.Allow(now.Add(time.Hour)); !ok {
		t.Fatal("long-idle tenant rejected")
	}
	st.mu.Lock()
	tokens := st.tokens
	st.mu.Unlock()
	if tokens > 2 {
		t.Fatalf("bucket overfilled: %v tokens > burst 2", tokens)
	}
}

func TestJobQuota(t *testing.T) {
	r := mustParse(t, twoTenants)
	st := r.Authenticate("key-alice") // max_jobs 2
	for i := 0; i < 2; i++ {
		if ok, _, _ := st.AdmitJob(); !ok {
			t.Fatalf("admit %d rejected under quota", i)
		}
	}
	if ok, active, limit := st.AdmitJob(); ok || active != 2 || limit != 2 {
		t.Fatalf("admit over quota: ok=%v active=%d limit=%d", ok, active, limit)
	}
	st.ReleaseJob()
	if ok, _, _ := st.AdmitJob(); !ok {
		t.Fatal("admit after release rejected")
	}
	defer func() {
		if recover() == nil {
			t.Error("unpaired ReleaseJob did not panic")
		}
	}()
	st.ReleaseJob()
	st.ReleaseJob()
	st.ReleaseJob() // one more than admitted
}

func TestDatasetQuotas(t *testing.T) {
	r := mustParse(t, twoTenants)
	st := r.Authenticate("key-alice") // max_datasets 2, max_bytes 100

	if ok, _, _ := st.CheckDataset(nil); !ok {
		t.Fatal("first dataset rejected")
	}
	if ok, _, _ := st.RecordDataset("ds-1", 60, nil); !ok {
		t.Fatal("ds-1 over byte quota at 60/100")
	}
	// Byte quota: 60 + 60 > 100 → rejected and NOT recorded.
	if ok, used, limit := st.RecordDataset("ds-2", 60, nil); ok || used != 60 || limit != 100 {
		t.Fatalf("ds-2: ok=%v used=%d limit=%d, want rejection at 60/100", ok, used, limit)
	}
	if st.Owns("ds-2") {
		t.Fatal("rejected dataset was recorded")
	}
	if ok, _, _ := st.RecordDataset("ds-2", 40, nil); !ok {
		t.Fatal("ds-2 at exactly the byte quota rejected")
	}
	// Count quota: two datasets held, third checks out full.
	if ok, count, limit := st.CheckDataset(nil); ok || count != 2 || limit != 2 {
		t.Fatalf("count check: ok=%v count=%d limit=%d", ok, count, limit)
	}
	// Eviction pruning: the registry dropped ds-1; quota must follow.
	alive := func(id string) bool { return id != "ds-1" }
	if ok, count, _ := st.CheckDataset(alive); !ok || count != 1 {
		t.Fatalf("post-eviction check: ok=%v count=%d, want ok at 1", ok, count)
	}
	if st.Owns("ds-1") {
		t.Fatal("evicted dataset still owned after prune")
	}
	// Delete path: forget is idempotent.
	st.ForgetDataset("ds-2")
	st.ForgetDataset("ds-2")
	if n, b := st.Usage(nil); n != 0 || b != 0 {
		t.Fatalf("usage after forget = %d datasets / %d bytes", n, b)
	}
}

// TestConcurrentAdmission is the -race stress test: many goroutines hammer
// one tenant's bucket, job slots and dataset ledger concurrently —
// submit/release, record/forget, allow — and every counter must be exact
// after the drain, with no slot or ledger entry leaked.
func TestConcurrentAdmission(t *testing.T) {
	r := mustParse(t, `{"tenants":[
	  {"name":"a","key":"k","max_jobs":-1,"max_datasets":-1,"max_bytes":-1,"rate_per_sec":1000,"burst":50}
	]}`)
	st := r.Authenticate("k")

	const workers = 16
	const iters = 300
	var admitted, allowed int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	base := time.Unix(2000, 0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localAdmitted, localAllowed := int64(0), int64(0)
			for i := 0; i < iters; i++ {
				// Rate limiter: interleave clock advances across goroutines.
				if ok, _ := st.Allow(base.Add(time.Duration(w*iters+i) * time.Millisecond)); ok {
					localAllowed++
				}
				// Job slots: admit and release in matched pairs.
				if ok, _, _ := st.AdmitJob(); ok {
					localAdmitted++
					if i%2 == 0 {
						st.ReleaseJob()
					} else {
						defer st.ReleaseJob()
					}
				}
				// Dataset ledger: record, check, forget.
				id := string(rune('a'+w)) + "-ds"
				st.RecordDataset(id, 10, nil)
				st.CheckDataset(func(string) bool { return true })
				st.ForgetDataset(id)
			}
			mu.Lock()
			admitted += localAdmitted
			allowed += localAllowed
			mu.Unlock()
		}(w)
	}
	wg.Wait()

	if admitted != workers*iters {
		t.Errorf("admitted = %d, want %d (unlimited quota)", admitted, workers*iters)
	}
	if got := st.ActiveJobs(); got != 0 {
		t.Errorf("job slots leaked after drain: %d active", got)
	}
	if n, b := st.Usage(nil); n != 0 || b != 0 {
		t.Errorf("dataset ledger leaked: %d datasets / %d bytes", n, b)
	}
	// Rate accounting stays sane: the bucket admitted at least its burst
	// and at most burst + refill over the simulated window.
	if allowed < 50 {
		t.Errorf("allowed = %d, want >= burst 50", allowed)
	}
	maxRefill := int64(50 + (workers*iters/1000+1)*1000)
	if allowed > maxRefill {
		t.Errorf("allowed = %d, want <= %d (burst + refill bound)", allowed, maxRefill)
	}
}
