package workflow

import (
	"context"
	"errors"
	"fmt"

	"scan/internal/imaging"
	"scan/internal/network"
	"scan/internal/proteome"
	"scan/internal/shard"
)

// This file binds the non-genomic data-process families of the paper's
// Figure 1 to the engine. Each executor owns the scatter/gather shape its
// tool family needs — spectrum shards for database search, image tiles for
// segmentation, node-range partitions for network construction — and logs
// per-shard telemetry under its tool name, so the Data Broker accumulates
// performance profiles for every family, not just the GATK chain.

// spectralSearchExecutor implements the proteomic stages (MaxQuant
// Quantify, GPM Search): scatter spectra into Data-Broker-sized shards,
// search each shard against the dataset's peptide database on the pool,
// and gather the per-shard matches into one sorted ProteinTable. In
// quantify mode the table carries summed match scores (label-free
// quantification); in search mode it carries identification counts only.
// The proteome family is the second streaming adopter: Execute runs the
// same stream behind a stage-local barrier.
type spectralSearchExecutor struct{ quantify bool }

func (e spectralSearchExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor.
func (e spectralSearchExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if len(in.PeptideDB.Peptides) == 0 {
		return nil, false, errors.New("spectral search needs a peptide database")
	}
	return &spectralStream{env: env, in: in, quantify: e.quantify}, true, nil
}

type spectralStream struct {
	env      *StageEnv
	in       *Dataset
	quantify bool
}

func (s *spectralStream) Split() ([]StreamShard, error) {
	per, err := s.env.RecordShardSize(len(s.in.Spectra))
	if err != nil {
		return nil, err
	}
	chunks, err := shard.Chunk(s.in.Spectra, per)
	if err != nil {
		return nil, err
	}
	shards := make([]StreamShard, len(chunks))
	for i, c := range chunks {
		shards[i] = StreamShard{Records: len(c), Data: c}
	}
	return shards, nil
}

func (s *spectralStream) Transform(ctx context.Context, _ int, in StreamShard) (StreamShard, error) {
	spectra := in.Data.([]proteome.Spectrum)
	ms := make([]proteome.Match, 0, len(spectra))
	for i, sp := range spectra {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		ms = append(ms, proteome.Search(s.in.PeptideDB, sp, proteome.Config{}))
	}
	return StreamShard{Records: len(ms), Data: ms}, nil
}

func (s *spectralStream) Gather(shards []StreamShard) (*Dataset, error) {
	var matches []proteome.Match
	for _, sh := range shards {
		matches = append(matches, sh.Data.([]proteome.Match)...)
	}
	quants := proteome.Quantify(s.in.PeptideDB, matches)
	if !s.quantify {
		for i := range quants {
			quants[i].Abundance = 0
		}
	}
	out := *s.in
	out.Type = ProteinTable
	out.Spectra = nil // the caller's own input; release once consumed
	out.Proteins = quants
	return &out, nil
}

// TileShard is the imaging Profile stage's per-shard input payload: which
// frame to segment and the tile window inside it. Exported (with exported
// fields) because it crosses the fleet wire (wire.go) — the pixels
// themselves travel in the stage's context dataset, not per shard.
type TileShard struct {
	Img  int
	Tile imaging.Tile
}

// cellProfileExecutor implements the imaging Profile stage: scatter every
// frame into overlapping tiles (core partition + halo, so a cell on a tile
// boundary is counted once by the tile owning its centroid), segment tiles
// on the pool, and gather per-cell features into one FeatureTable row per
// detected cell. A re-scatter stage: streaming-capable behind a barrier,
// declined inside pipelines.
type cellProfileExecutor struct{}

func (e cellProfileExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor (barrier-only; see callExecutor).
func (cellProfileExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if env.pipelined {
		return nil, false, nil
	}
	return &cellStream{env: env, in: in}, true, nil
}

type cellStream struct {
	env   *StageEnv
	in    *Dataset
	units []TileShard
}

func (s *cellStream) Split() ([]StreamShard, error) {
	tilesPerImage := s.env.RegionCount()
	for i := range s.in.Images {
		im := &s.in.Images[i]
		for _, t := range imaging.TileGrid(im.W, im.H, tilesPerImage, imaging.DefaultHalo) {
			s.units = append(s.units, TileShard{Img: i, Tile: t})
		}
	}
	shards := make([]StreamShard, len(s.units))
	for i, u := range s.units {
		// The tile's work scales with its segmented window, so telemetry
		// records halo pixels as the shard's input size.
		halo := u.Tile.Halo
		shards[i] = StreamShard{Records: (halo.X1 - halo.X0) * (halo.Y1 - halo.Y0), Data: u}
	}
	return shards, nil
}

func (s *cellStream) Transform(ctx context.Context, _ int, in StreamShard) (StreamShard, error) {
	if err := ctx.Err(); err != nil {
		return StreamShard{}, err
	}
	u := in.Data.(TileShard)
	regions := imaging.SegmentTile(&s.in.Images[u.Img], u.Tile, imaging.SegConfig{})
	return StreamShard{Records: in.Records, Data: regions}, nil
}

func (s *cellStream) Gather(shards []StreamShard) (*Dataset, error) {
	var features []Feature
	for i := range s.in.Images {
		var regions []imaging.Region
		for j, u := range s.units {
			if u.Img == i {
				regions = append(regions, shards[j].Data.([]imaging.Region)...)
			}
		}
		imaging.SortRegions(regions) // canonical order regardless of tiling
		for n, r := range regions {
			features = append(features, Feature{
				Name:  fmt.Sprintf("%s:cell%03d", s.in.Images[i].ID, n),
				Count: r.Area,
				Value: r.Mean,
			})
		}
	}
	out := *s.in
	out.Type = FeatureTable
	out.Images = nil // the caller's own input; release once consumed
	out.Features = features
	return &out, nil
}

// NodeRange is the Integrate stage's per-shard input payload: a half-open
// range [Lo, Hi) of node indices whose pairwise edges the shard builds.
// Exported because it crosses the fleet wire (wire.go) — workers rebuild
// the node list from the stage's context dataset.
type NodeRange struct {
	Lo, Hi int
}

// integrateExecutor implements the integrative Integrate stage: treat each
// feature as a network node, scatter the O(n²) pairwise edge construction
// over Data-Broker-sized node-range partitions on the pool, then gather the
// edge slabs and detect modules in one pass — the Cytoscape-style network
// build. A re-scatter stage: streaming-capable behind a barrier, declined
// inside pipelines.
type integrateExecutor struct{}

func (e integrateExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor (barrier-only; see callExecutor).
func (integrateExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if env.pipelined {
		return nil, false, nil
	}
	return &integrateStream{env: env, in: in}, true, nil
}

type integrateStream struct {
	env   *StageEnv
	in    *Dataset
	nodes []network.Node
}

func (s *integrateStream) Split() ([]StreamShard, error) {
	s.nodes = make([]network.Node, len(s.in.Features))
	for i, f := range s.in.Features {
		s.nodes[i] = network.Node{Name: f.Name, Value: f.Value}
	}
	per, err := s.env.RecordShardSize(len(s.nodes))
	if err != nil {
		return nil, err
	}
	ranges := []NodeRange{{0, 0}} // empty input still runs one (empty) unit
	if len(s.nodes) > 0 {
		ranges = ranges[:0]
		for lo := 0; lo < len(s.nodes); lo += per {
			ranges = append(ranges, NodeRange{Lo: lo, Hi: min(lo+per, len(s.nodes))})
		}
	}
	shards := make([]StreamShard, len(ranges))
	for i, r := range ranges {
		shards[i] = StreamShard{Records: r.Hi - r.Lo, Data: r}
	}
	return shards, nil
}

func (s *integrateStream) Transform(ctx context.Context, _ int, in StreamShard) (StreamShard, error) {
	r := in.Data.(NodeRange)
	// Build the range in consecutive sub-blocks with a context poll
	// between each, so cancelling interrupts the O(n²) edge scan
	// mid-range. Concatenating consecutive sub-ranges yields exactly
	// the edge order of one full-range call.
	var slab []network.Edge
	for lo := r.Lo; lo < r.Hi; lo += ctxCheckInterval {
		if err := ctx.Err(); err != nil {
			return StreamShard{}, err
		}
		hi := min(lo+ctxCheckInterval, r.Hi)
		slab = append(slab, network.EdgesInRange(s.nodes, lo, hi, network.Config{})...)
	}
	return StreamShard{Records: in.Records, Data: slab}, nil
}

func (s *integrateStream) Gather(shards []StreamShard) (*Dataset, error) {
	var edges []network.Edge
	for _, sh := range shards {
		edges = append(edges, sh.Data.([]network.Edge)...)
	}
	network.SortEdges(edges)
	out := *s.in
	out.Type = Network
	out.Net = &network.Network{
		Nodes:   s.nodes,
		Edges:   edges,
		Modules: network.Modules(len(s.nodes), edges),
	}
	return &out, nil
}
