package workflow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"scan/internal/imaging"
	"scan/internal/network"
	"scan/internal/proteome"
	"scan/internal/shard"
)

// This file binds the non-genomic data-process families of the paper's
// Figure 1 to the engine. Each executor owns the scatter/gather shape its
// tool family needs — spectrum shards for database search, image tiles for
// segmentation, node-range partitions for network construction — and logs
// per-shard telemetry under its tool name, so the Data Broker accumulates
// performance profiles for every family, not just the GATK chain.

// spectralSearchExecutor implements the proteomic stages (MaxQuant
// Quantify, GPM Search): scatter spectra into Data-Broker-sized shards,
// search each shard against the dataset's peptide database on the pool,
// and gather the per-shard matches into one sorted ProteinTable. In
// quantify mode the table carries summed match scores (label-free
// quantification); in search mode it carries identification counts only.
// The proteome family is the second streaming adopter: Execute runs the
// same stream behind a stage-local barrier.
type spectralSearchExecutor struct{ quantify bool }

func (e spectralSearchExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor.
func (e spectralSearchExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if len(in.PeptideDB.Peptides) == 0 {
		return nil, false, errors.New("spectral search needs a peptide database")
	}
	return &spectralStream{env: env, in: in, quantify: e.quantify}, true, nil
}

type spectralStream struct {
	env      *StageEnv
	in       *Dataset
	quantify bool
}

func (s *spectralStream) Split() ([]StreamShard, error) {
	per, err := s.env.RecordShardSize(len(s.in.Spectra))
	if err != nil {
		return nil, err
	}
	chunks, err := shard.Chunk(s.in.Spectra, per)
	if err != nil {
		return nil, err
	}
	shards := make([]StreamShard, len(chunks))
	for i, c := range chunks {
		shards[i] = StreamShard{Records: len(c), Data: c}
	}
	return shards, nil
}

func (s *spectralStream) Transform(ctx context.Context, _ int, in StreamShard) (StreamShard, error) {
	spectra := in.Data.([]proteome.Spectrum)
	ms := make([]proteome.Match, 0, len(spectra))
	for i, sp := range spectra {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		ms = append(ms, proteome.Search(s.in.PeptideDB, sp, proteome.Config{}))
	}
	return StreamShard{Records: len(ms), Data: ms}, nil
}

func (s *spectralStream) Gather(shards []StreamShard) (*Dataset, error) {
	var matches []proteome.Match
	for _, sh := range shards {
		matches = append(matches, sh.Data.([]proteome.Match)...)
	}
	quants := proteome.Quantify(s.in.PeptideDB, matches)
	if !s.quantify {
		for i := range quants {
			quants[i].Abundance = 0
		}
	}
	out := *s.in
	out.Type = ProteinTable
	out.Spectra = nil // the caller's own input; release once consumed
	out.Proteins = quants
	return &out, nil
}

// cellProfileExecutor implements the imaging Profile stage: scatter every
// frame into overlapping tiles (core partition + halo, so a cell on a tile
// boundary is counted once by the tile owning its centroid), segment tiles
// on the pool, and gather per-cell features into one FeatureTable row per
// detected cell.
type cellProfileExecutor struct{}

func (cellProfileExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	type unit struct {
		img  int
		tile imaging.Tile
	}
	tilesPerImage := env.RegionCount()
	var units []unit
	for i := range in.Images {
		im := &in.Images[i]
		for j, t := range imaging.TileGrid(im.W, im.H, tilesPerImage, imaging.DefaultHalo) {
			if j%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			units = append(units, unit{img: i, tile: t})
		}
	}
	regionShards := make([][]imaging.Region, len(units))
	err := env.Pool(ctx, len(units), func(i int) error {
		start := time.Now()
		u := units[i]
		regionShards[i] = imaging.SegmentTile(&in.Images[u.img], u.tile, imaging.SegConfig{})
		// The tile's work scales with its segmented window, so telemetry
		// records halo pixels as the shard's input size.
		halo := u.tile.Halo
		env.LogShard((halo.X1-halo.X0)*(halo.Y1-halo.Y0), time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var features []Feature
	for i := range in.Images {
		var regions []imaging.Region
		for j, u := range units {
			if j%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if u.img == i {
				regions = append(regions, regionShards[j]...)
			}
		}
		imaging.SortRegions(regions) // canonical order regardless of tiling
		for n, r := range regions {
			if n%ctxCheckInterval == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			features = append(features, Feature{
				Name:  fmt.Sprintf("%s:cell%03d", in.Images[i].ID, n),
				Count: r.Area,
				Value: r.Mean,
			})
		}
	}
	out := *in
	out.Type = FeatureTable
	out.Images = nil // the caller's own input; release once consumed
	out.Features = features
	return &out, nil
}

// integrateExecutor implements the integrative Integrate stage: treat each
// feature as a network node, scatter the O(n²) pairwise edge construction
// over Data-Broker-sized node-range partitions on the pool, then gather the
// edge slabs and detect modules in one pass — the Cytoscape-style network
// build.
type integrateExecutor struct{}

func (integrateExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	nodes := make([]network.Node, len(in.Features))
	for i, f := range in.Features {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		nodes[i] = network.Node{Name: f.Name, Value: f.Value}
	}
	per, err := env.RecordShardSize(len(nodes))
	if err != nil {
		return nil, err
	}
	type nodeRange struct{ lo, hi int }
	ranges := []nodeRange{{0, 0}} // empty input still runs one (empty) unit
	if len(nodes) > 0 {
		ranges = ranges[:0]
		for lo := 0; lo < len(nodes); lo += per {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			ranges = append(ranges, nodeRange{lo, min(lo+per, len(nodes))})
		}
	}
	edgeSlabs := make([][]network.Edge, len(ranges))
	err = env.Pool(ctx, len(ranges), func(i int) error {
		start := time.Now()
		r := ranges[i]
		// Build the range in consecutive sub-blocks with a context poll
		// between each, so cancelling interrupts the O(n²) edge scan
		// mid-range. Concatenating consecutive sub-ranges yields exactly
		// the edge order of one full-range call.
		var slab []network.Edge
		for lo := r.lo; lo < r.hi; lo += ctxCheckInterval {
			if err := ctx.Err(); err != nil {
				return err
			}
			hi := min(lo+ctxCheckInterval, r.hi)
			slab = append(slab, network.EdgesInRange(nodes, lo, hi, network.Config{})...)
		}
		edgeSlabs[i] = slab
		env.LogShard(r.hi-r.lo, time.Since(start))
		return nil
	})
	if err != nil {
		return nil, err
	}
	var edges []network.Edge
	for i, slab := range edgeSlabs {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		edges = append(edges, slab...)
	}
	network.SortEdges(edges)
	out := *in
	out.Type = Network
	out.Net = &network.Network{
		Nodes:   nodes,
		Edges:   edges,
		Modules: network.Modules(len(nodes), edges),
	}
	return &out, nil
}
