package workflow

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// TestPipelinedMatchesBarrier is the scheduler-equivalence gate: for every
// data-process family, default (pipelined) execution must produce exactly
// the output and per-stage accounting of barrier execution. Each run gets
// its own engine and an identically seeded dataset so neither mode can
// influence the other through KB telemetry or in-place mutation.
func TestPipelinedMatchesBarrier(t *testing.T) {
	cases := []struct {
		workflow string
		dataset  func(t testing.TB) *Dataset
	}{
		{"dna-variant-detection", func(t testing.TB) *Dataset { return synthDataset(t, 8000, 2000, 21) }},
		{"proteome-maxquant", func(t testing.TB) *Dataset { return mgfDataset(t, 30, 400, 22) }},
		{"cell-imaging", func(t testing.TB) *Dataset { ds, _ := tiffDataset(t, 3, 12, 23); return ds }},
		{"integrative-network", func(t testing.TB) *Dataset { return featureDataset(t, 60, 4, 24) }},
	}
	for _, tc := range cases {
		t.Run(tc.workflow, func(t *testing.T) {
			ctx := context.Background()
			barrier, err := testEngine(t, 4).RunByName(ctx, tc.workflow, tc.dataset(t), RunOptions{Barrier: true})
			if err != nil {
				t.Fatal(err)
			}
			pipelined, err := testEngine(t, 4).RunByName(ctx, tc.workflow, tc.dataset(t), RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(barrier.Output, pipelined.Output) {
				t.Fatalf("outputs differ:\nbarrier:   %+v\npipelined: %+v", barrier.Output, pipelined.Output)
			}
			if len(barrier.Stages) != len(pipelined.Stages) {
				t.Fatalf("stage counts differ: barrier %d, pipelined %d",
					len(barrier.Stages), len(pipelined.Stages))
			}
			for i := range barrier.Stages {
				b, p := barrier.Stages[i], pipelined.Stages[i]
				if b.Stage != p.Stage || b.Tool != p.Tool {
					t.Fatalf("stage %d identity differs: barrier %s/%s, pipelined %s/%s",
						i, b.Tool, b.Stage, p.Tool, p.Stage)
				}
				if b.Records != p.Records {
					t.Errorf("stage %s records: barrier %d, pipelined %d", b.Stage, b.Records, p.Records)
				}
				if b.Shards != p.Shards {
					t.Errorf("stage %s shards: barrier %d, pipelined %d", b.Stage, b.Shards, p.Shards)
				}
				if b.Plan != p.Plan {
					t.Errorf("stage %s plan: barrier %+v, pipelined %+v", b.Stage, b.Plan, p.Plan)
				}
			}
		})
	}
}

// TestPipelineTimingsRecorded checks the observability additions: stages
// executed inside a pipelined segment carry Streamed pipeline timings and
// record counts, while barriered stages of the same run do not.
func TestPipelineTimingsRecorded(t *testing.T) {
	e := testEngine(t, 4)
	res, err := e.RunByName(context.Background(), "dna-variant-detection",
		synthDataset(t, 8000, 2000, 25), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Stages 0..5 (Align + the GATK pass-throughs) form the pipelined
	// segment; UnifiedGenotyper's region scatter needs every alignment, so
	// it barriers.
	for i := 0; i <= 5; i++ {
		if !res.Stages[i].Pipeline.Streamed {
			t.Errorf("stage %d (%s) not marked streamed", i, res.Stages[i].Stage)
		}
	}
	if res.Stages[6].Pipeline.Streamed {
		t.Errorf("stage 6 (%s) marked streamed", res.Stages[6].Stage)
	}
	align := res.Stages[0]
	if align.Records != 2000 {
		t.Errorf("align records = %d, want 2000", align.Records)
	}
	if align.Shards == 0 || align.Elapsed <= 0 {
		t.Errorf("align scatter not recorded: %+v", align)
	}
	if ov := align.Pipeline.Overlap; ov < 0 || ov > 1 {
		t.Errorf("overlap %v outside [0,1]", ov)
	}
}

// chainTool is a synthetic streaming stage for scheduler tests: nShards
// unit shards flow through, each Transform sleeping per delay(shard) and
// counting its completion.
type chainTool struct {
	nShards int
	delay   func(shard int) time.Duration
	done    *atomic.Int32
	gather  *atomic.Int32
}

func (c *chainTool) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := c.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

func (c *chainTool) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	return &chainStream{tool: c}, true, nil
}

type chainStream struct{ tool *chainTool }

func (s *chainStream) Split() ([]StreamShard, error) {
	shards := make([]StreamShard, s.tool.nShards)
	for i := range shards {
		shards[i] = StreamShard{Records: 1, Data: i}
	}
	return shards, nil
}

func (s *chainStream) Transform(ctx context.Context, i int, in StreamShard) (StreamShard, error) {
	if err := ctx.Err(); err != nil {
		return StreamShard{}, err
	}
	if d := s.tool.delay(i); d > 0 {
		time.Sleep(d)
	}
	s.tool.done.Add(1)
	return in, nil
}

func (s *chainStream) Gather(shards []StreamShard) (*Dataset, error) {
	s.tool.gather.Add(1)
	return &Dataset{Type: FASTQ}, nil
}

// TestStageObserverOrderPipelined pins the observer contract under the
// pipelined scheduler: the head stage's last shard is made much slower than
// everything downstream, so later stages finish most of their shards first
// — yet each observer must fire exactly once per stage, in catalogue order,
// only after that stage's final shard (and, for the tail, its gather) has
// completed.
func TestStageObserverOrderPipelined(t *testing.T) {
	const nShards = 6
	slowLast := func(i int) time.Duration {
		if i == nShards-1 {
			return 30 * time.Millisecond
		}
		return 0
	}
	tools := []*chainTool{
		{nShards: nShards, delay: slowLast, done: &atomic.Int32{}, gather: &atomic.Int32{}},
		{nShards: nShards, delay: func(int) time.Duration { return 0 }, done: &atomic.Int32{}, gather: &atomic.Int32{}},
		{nShards: nShards, delay: func(int) time.Duration { return 0 }, done: &atomic.Int32{}, gather: &atomic.Int32{}},
	}
	stageNames := []string{"Head", "Mid", "Tail"}
	execs := NewExecutorRegistry()
	w := Workflow{Name: "stream-chain", Family: "genomic"}
	for i, name := range stageNames {
		w.Stages = append(w.Stages, Stage{
			Name: name, Tool: "Chain" + name, Consumes: FASTQ, Produces: FASTQ, Parallelizable: true,
		})
		if err := execs.Register("Chain"+name, "", tools[i]); err != nil {
			t.Fatal(err)
		}
	}
	e := NewEngine(EngineOptions{Executors: execs, Workers: 2})
	var observed []StageResult
	res, err := e.Run(context.Background(), w, &Dataset{Type: FASTQ}, RunOptions{
		StageObserver: func(sr StageResult) {
			observed = append(observed, sr)
			// The observed stage's shards must all be done by now.
			idx := -1
			for i, n := range stageNames {
				if sr.Stage == n {
					idx = i
				}
			}
			if idx < 0 {
				t.Errorf("observed unknown stage %q", sr.Stage)
				return
			}
			if n := tools[idx].done.Load(); n != nShards {
				t.Errorf("stage %s observed with %d/%d shards done", sr.Stage, n, nShards)
			}
			if idx == len(stageNames)-1 && tools[idx].gather.Load() != 1 {
				t.Errorf("tail observed before gather")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(observed) != len(stageNames) {
		t.Fatalf("observed %d stages, want %d", len(observed), len(stageNames))
	}
	for i, sr := range observed {
		if sr.Stage != stageNames[i] {
			t.Fatalf("observation order %v, want %v", observed, stageNames)
		}
		if !sr.Pipeline.Streamed {
			t.Errorf("stage %s not streamed", sr.Stage)
		}
		if observed[i] != res.Stages[i] {
			t.Errorf("observed stage %d differs from result stage", i)
		}
	}
	// The slow head straggler guarantees downstream stages started while
	// the head was still running; the recorded overlap must reflect it.
	if ov := res.Stages[1].Pipeline.Overlap; ov <= 0 {
		t.Errorf("mid-stage overlap = %v, want > 0 (head straggler still in flight)", ov)
	}
}

// TestUpwardRanks pins the HEFT rank recurrence on a linear chain.
func TestUpwardRanks(t *testing.T) {
	got := upwardRanks([]float64{3, 1, 2})
	want := []float64{6, 3, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("upwardRanks = %v, want %v", got, want)
	}
	if len(upwardRanks(nil)) != 0 {
		t.Fatal("empty chain should yield no ranks")
	}
}

// countdownCtx cancels itself after a fixed number of Err polls — a
// deterministic stand-in for "the user cancelled mid-shard" that needs no
// timing assumptions.
type countdownCtx struct {
	context.Context
	remaining atomic.Int64
}

func newCountdownCtx(polls int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(polls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return c.Context.Err()
}

// TestCancellationInterruptsShardMidFlight proves the per-record context
// polls inside the family executors' inner loops: with input far larger
// than one poll interval, a context that cancels after a few polls must
// abort the shard in flight rather than run it to completion.
func TestCancellationInterruptsShardMidFlight(t *testing.T) {
	t.Run("genomics-align", func(t *testing.T) {
		ds := synthDataset(t, 8000, 2000, 26)
		e := testEngine(t, 1)
		env := &StageEnv{engine: e, opts: RunOptions{}, result: &StageResult{}}
		st, _, err := alignExecutor{}.Stream(env, ds)
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.Transform(newCountdownCtx(2), 0, StreamShard{Records: len(ds.Reads), Data: ds.Reads})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("proteome-search", func(t *testing.T) {
		ds := mgfDataset(t, 30, 2000, 27)
		e := testEngine(t, 1)
		env := &StageEnv{engine: e, opts: RunOptions{}, result: &StageResult{}}
		st, _, err := spectralSearchExecutor{}.Stream(env, ds)
		if err != nil {
			t.Fatal(err)
		}
		_, err = st.Transform(newCountdownCtx(2), 0, StreamShard{Records: len(ds.Spectra), Data: ds.Spectra})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
	t.Run("network-integrate", func(t *testing.T) {
		ds := featureDataset(t, 300, 4, 28)
		e := testEngine(t, 1)
		env := &StageEnv{engine: e, opts: RunOptions{ShardRecords: 1000}, result: &StageResult{}}
		_, err := integrateExecutor{}.Execute(newCountdownCtx(2), env, ds)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	})
}

// TestBarrierOptionDisablesStreaming confirms the escape hatch: with
// RunOptions.Barrier no stage reports pipeline timings.
func TestBarrierOptionDisablesStreaming(t *testing.T) {
	e := testEngine(t, 4)
	res, err := e.RunByName(context.Background(), "dna-variant-detection",
		synthDataset(t, 8000, 1000, 29), RunOptions{Barrier: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, sr := range res.Stages {
		if sr.Pipeline.Streamed {
			t.Fatalf("stage %s streamed despite Barrier option", sr.Stage)
		}
	}
}
