// Package workflow is SCAN's analysis-workflow subsystem: the catalogue of
// typed multi-stage pipelines and the engine that executes them.
//
// The catalogue (workflow.go) declares pipelines over genomic, proteomic,
// imaging and integrative data — the four data-process families of the
// paper's Figure 1 — validated for data-type compatibility and exportable
// into the knowledge base as instances of the GenomeAnalysis ontology
// class ("in our ontology we have defined over 10 different genome
// analysis workflows").
//
// The execution path layers on top of it:
//
//	catalogue (Workflow, Registry)     what stages exist, in what order,
//	                                   over which data types
//	executor registry (executor.go,    binds stage names/tools — BWA, GATK,
//	executor_families.go)              MuTect, MaxQuant, GPM, CellProfiler,
//	                                   Cytoscape — to the real
//	                                   implementations in internal/align,
//	                                   internal/variant, internal/proteome,
//	                                   internal/imaging, internal/network;
//	                                   every stage owns its tool-specific
//	                                   scatter shape (record shards,
//	                                   genomic regions, spectrum shards,
//	                                   image tiles, node partitions)
//	engine (engine.go)                 drives a typed Dataset through the
//	                                   stage chain with per-stage
//	                                   scatter/gather: shard sizes asked
//	                                   of the knowledge base, shards run
//	                                   on a bounded context-aware worker
//	                                   pool, per-shard timings logged back
//	                                   into the knowledge base
//	pipelined executor (streaming.go,  overlaps adjacent record-scattered
//	pipeline.go)                       stages by streaming shards between
//	                                   them instead of barriering at each
//	                                   stage boundary, with dispatch order
//	                                   chosen by a knowledge-base cost
//	                                   oracle
//	platform / rpc (internal/core,     core.Platform wraps the engine for
//	internal/rpc)                      variant calling; scand exposes
//	                                   "submit workflow by name" over HTTP
//
// Adding a workload is a catalogue entry plus (at most) an executor
// registration — not a hand-rolled pipeline.
//
// # Pipelined shard streaming
//
// By default Engine.Run pipelines maximal runs of streaming-capable stages
// (RunOptions.Barrier restores strict per-stage barriers). A stage opts in
// by implementing StreamingExecutor: it exposes its scatter/transform/gather
// shape as a StageStream, and the engine overlaps adjacent stages — a
// downstream stage's shard i starts the moment the upstream stage finishes
// its shard i, on a bounded worker pool shared across every in-flight stage
// of the segment. Pass-through stages (PassthroughExecutor) let shards flow
// straight through. When more shards are ready than workers, dispatch order
// follows HEFT-style upward ranks computed from the knowledge base's fitted
// per-stage cost models (internal/knowledge.ChainCosts): shards with the
// most expensive remaining downstream work run first.
//
// The streaming contract:
//
//   - Split runs only on the segment's first stage; Gather only on its
//     last. Intermediate stages see shards exclusively through Transform,
//     indexed 1:1 with the head's scatter.
//   - Stream receives the SEGMENT input dataset, so a downstream stage must
//     draw configuration from the accumulating context fields (Reference,
//     PeptideDB, ...), never from payload fields it would have received
//     behind a barrier.
//   - Transform must be safe for concurrent calls with distinct shard
//     indices, must poll ctx inside long per-record loops, and must not
//     call StageEnv.LogShard — the engine times and logs every pipelined
//     shard itself.
//   - Gather must be deterministic in shard index order.
//
// # Determinism guarantee
//
// Pipelined and barrier execution produce identical results: streaming
// executors implement Execute via runStreamBarrier, so both schedulers run
// the exact same Split/Transform/Gather code and differ only in when each
// shard runs (and, with RunOptions.RefineScatter, how wide the scatter
// is). Because every Gather is
// deterministic in shard index order and every Transform is a pure function
// of its input shard, Result.Output and per-stage record counts are
// identical under either scheduler, and StageObserver still fires exactly
// once per completed stage in catalogue order — the engine buffers
// out-of-order pipelined completions until every earlier stage has
// finished.
package workflow
