package workflow

import (
	"context"
	"errors"
	"fmt"
	"time"

	"scan/internal/align"
	"scan/internal/genomics"
	"scan/internal/shard"
	"scan/internal/variant"
)

// StageExecutor is one stage implementation: it transforms the stage's
// whole input dataset into its output dataset, using the StageEnv for
// scatter sizing, the bounded worker pool and per-shard telemetry. An
// executor owns its own scatter/gather shape (record shards for aligners,
// genomic regions for callers) because the correct split is tool-specific;
// the engine owns everything around it. Executors must be stateless —
// one instance serves concurrent runs.
type StageExecutor interface {
	Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error)
}

// ExecutorRegistry binds catalogue stage names and tools to executors.
// Lookup resolves most-specific first: an exact (tool, stage) binding,
// then the tool's wildcard binding, then a stage-name-only binding.
type ExecutorRegistry struct {
	byKey map[execKey]StageExecutor
}

type execKey struct{ tool, stage string }

// NewExecutorRegistry returns an empty registry.
func NewExecutorRegistry() *ExecutorRegistry {
	return &ExecutorRegistry{byKey: make(map[execKey]StageExecutor)}
}

// Register binds an executor to a (tool, stage) pair; either (but not
// both) may be empty to act as a wildcard.
func (r *ExecutorRegistry) Register(tool, stage string, ex StageExecutor) error {
	if ex == nil {
		return errors.New("workflow: nil executor")
	}
	if tool == "" && stage == "" {
		return errors.New("workflow: executor needs a tool or stage name")
	}
	k := execKey{tool, stage}
	if _, dup := r.byKey[k]; dup {
		return fmt.Errorf("%w: executor for %s/%s", ErrDuplicate, tool, stage)
	}
	r.byKey[k] = ex
	return nil
}

// Lookup resolves the executor for a stage.
func (r *ExecutorRegistry) Lookup(tool, stage string) (StageExecutor, bool) {
	for _, k := range []execKey{{tool, stage}, {tool, ""}, {"", stage}} {
		if ex, ok := r.byKey[k]; ok {
			return ex, true
		}
	}
	return nil, false
}

// DefaultExecutors binds the in-repo toolkits to every default-catalogue
// stage, so all four data-process families execute end to end: the k-mer
// aligner stands in for BWA, the pileup caller for the GATK/MuTect calling
// stages, coverage quantification for the expression stage, spectral
// peptide matching (internal/proteome) for MaxQuant and GPM, tile-scattered
// cell segmentation (internal/imaging) for CellProfiler, and partitioned
// network construction (internal/network) for Cytoscape. ErrNoExecutor now
// only reports genuinely unknown tools — every catalogued workflow passes
// Engine.CanRun under this registry.
func DefaultExecutors() *ExecutorRegistry {
	r := NewExecutorRegistry()
	must := func(tool, stage string, ex StageExecutor) {
		// Static bindings: a registration failure is programmer error.
		if err := r.Register(tool, stage, ex); err != nil {
			panic(err)
		}
	}
	must("BWA", "", alignExecutor{})
	must("GATK", "UnifiedGenotyper", callExecutor{})
	must("MuTect", "SomaticCall", callExecutor{})
	must("GATK", "FusionScan", callExecutor{})
	must("GATK", "VariantFiltration", filterExecutor{})
	must("GATK", "Quantify", quantifyExecutor{})
	must("GATK", "MergeVCF", mergeVCFExecutor{})
	// The GATK refinement stages between alignment and genotyping
	// (duplicate marking, indel realignment, base recalibration) have
	// nothing to correct on this repo's substrate — the aligner emits
	// pure-match CIGARs over uniquely-named simulated reads — so they
	// pass the dataset through unchanged, holding the pipeline shape of
	// the paper's 7-stage GATK chain.
	for _, stage := range []string{
		"MarkDuplicates", "RealignerTargetCreator", "IndelRealigner",
		"BaseRecalibrator", "PrintReads",
	} {
		must("GATK", stage, identityExecutor{})
	}
	// The non-genomic families (executor_families.go): spectrum shards,
	// image tiles and node-range partitions, each logging telemetry under
	// its own tool name.
	must("MaxQuant", "Quantify", spectralSearchExecutor{quantify: true})
	must("GPM", "Search", spectralSearchExecutor{})
	must("CellProfiler", "Profile", cellProfileExecutor{})
	must("Cytoscape", "Integrate", integrateExecutor{})
	return r
}

// ctxCheckInterval is how many records an executor's inner loop processes
// between context polls — frequent enough that cancelling a run stops a
// long shard mid-flight, cheap enough to vanish in the per-record work.
const ctxCheckInterval = 64

// alignExecutor implements the BWA stages: scatter reads into
// Data-Broker-sized shards, align each shard on the pool, gather the
// per-shard outputs into one coordinate-sorted alignment set. It is the
// genomics chain's streaming adopter: Execute runs the same stream behind
// a stage-local barrier, so the two schedulers share one implementation.
type alignExecutor struct{}

func (e alignExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor.
func (alignExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	aligner, err := align.New(in.Reference, env.Options().Aligner)
	if err != nil {
		return nil, false, err
	}
	return &alignStream{env: env, in: in, aligner: aligner}, true, nil
}

// AlignedShard is the alignment stage's per-shard output payload. Exported
// (with exported fields) because it crosses the fleet wire: a remote worker
// gob-encodes it back to the coordinator (wire.go).
type AlignedShard struct {
	Alns   []genomics.Alignment
	Mapped int
}

type alignStream struct {
	env     *StageEnv
	in      *Dataset
	aligner *align.Aligner
}

func (s *alignStream) Split() ([]StreamShard, error) {
	per, err := s.env.RecordShardSize(len(s.in.Reads))
	if err != nil {
		return nil, err
	}
	readShards, err := shard.ChunkReads(s.in.Reads, per)
	if err != nil {
		return nil, err
	}
	shards := make([]StreamShard, len(readShards))
	for i, rs := range readShards {
		shards[i] = StreamShard{Records: len(rs), Data: rs}
	}
	return shards, nil
}

func (s *alignStream) Transform(ctx context.Context, _ int, in StreamShard) (StreamShard, error) {
	reads := in.Data.([]genomics.Read)
	alns := make([]genomics.Alignment, 0, len(reads))
	mapped := 0
	for i, r := range reads {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		aln := s.aligner.AlignRead(r)
		if !aln.Unmapped() {
			mapped++
		}
		alns = append(alns, aln)
	}
	genomics.SortAlignments(alns)
	return StreamShard{Records: len(alns), Data: AlignedShard{Alns: alns, Mapped: mapped}}, nil
}

func (s *alignStream) Gather(shards []StreamShard) (*Dataset, error) {
	groups := make([][]genomics.Alignment, len(shards))
	mapped := 0
	for i, sh := range shards {
		as := sh.Data.(AlignedShard)
		groups[i] = as.Alns
		mapped += as.Mapped
	}
	out := *s.in
	out.Type = BAM
	out.Reads = nil
	out.Header = s.aligner.Header()
	out.Alignments = genomics.MergeSorted(groups...)
	out.Mapped += mapped
	return &out, nil
}

// callExecutor implements the pileup-calling stages (UnifiedGenotyper,
// SomaticCall, FusionScan): scatter coordinate-sorted alignments over
// genomic regions with boundary overlap, call variants per region on the
// pool, keep each call only in the region that contains it, and gather
// into one sorted, deduplicated call set — the GATK-style scatter the
// paper parallelizes. A re-scatter stage: its stream needs the whole
// materialized alignment set, so it declines pipelined participation and
// streams only behind a stage-local barrier (where the fleet's remote
// shard pool can pick its transforms up).
type callExecutor struct{}

func (e callExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor. The region scatter re-partitions
// the stage's whole input, so it cannot ride a pipelined segment (ok=false
// when the env is pipelined — the engine barriers at this stage, exactly
// the pre-streaming behavior).
func (callExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if env.pipelined {
		return nil, false, nil
	}
	return &callStream{env: env, in: in}, true, nil
}

type callStream struct {
	env     *StageEnv
	in      *Dataset
	regions []shard.Region
}

func (s *callStream) Split() ([]StreamShard, error) {
	regions, err := shard.Regions(s.in.Reference.Len(), s.env.RegionCount())
	if err != nil {
		return nil, err
	}
	s.regions = regions
	// Overlap-aware scatter: a read spanning a region boundary feeds the
	// pileups of both regions, so boundary positions see full coverage.
	parts, _ := shard.PartitionByOverlap(s.in.Alignments, regions)
	shards := make([]StreamShard, len(parts))
	for i, p := range parts {
		shards[i] = StreamShard{Records: len(p), Data: p}
	}
	return shards, nil
}

func (s *callStream) Transform(ctx context.Context, i int, in StreamShard) (StreamShard, error) {
	alns := in.Data.([]genomics.Alignment)
	caller := variant.NewCaller(s.in.Reference, s.env.Options().Caller)
	for j, a := range alns {
		if j%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		if err := caller.Add(a); err != nil {
			return StreamShard{}, err
		}
	}
	calls := caller.Call()
	// Keep only calls inside this region so region overlaps cannot
	// duplicate evidence across shards.
	kept := calls[:0]
	for j, v := range calls {
		if j%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		if s.regions[i].Contains(v.Pos) {
			kept = append(kept, v)
		}
	}
	return StreamShard{Records: len(kept), Data: kept}, nil
}

func (s *callStream) Gather(shards []StreamShard) (*Dataset, error) {
	varShards := make([][]genomics.Variant, len(shards))
	for i, sh := range shards {
		varShards[i] = sh.Data.([]genomics.Variant)
	}
	out := *s.in
	out.Type = VCF
	out.Variants = genomics.MergeVariants(varShards...)
	return &out, nil
}

// filterExecutor implements VariantFiltration: drop calls below the run's
// MinQual floor. The default floor of 0 keeps every call (the caller's own
// depth and allele-fraction thresholds already applied), making the stage
// a type-checked pass-through exactly like the seed pipeline.
type filterExecutor struct{}

func (filterExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	minQual := env.Options().MinQual
	if minQual <= 0 {
		return in, nil
	}
	out := *in
	out.Variants = make([]genomics.Variant, 0, len(in.Variants))
	for i, v := range in.Variants {
		if i%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if v.Qual >= minQual {
			out.Variants = append(out.Variants, v)
		}
	}
	return &out, nil
}

// quantifyExecutor implements the expression Quantify stage: scatter the
// reference into regions, count the mapped alignments starting in each and
// their mean coverage on the pool, and gather a per-region FeatureTable —
// the RNA-seq expression workload. Like the callers it is a re-scatter
// stage: streaming-capable behind a barrier, declined inside pipelines.
type quantifyExecutor struct{}

func (e quantifyExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	st, _, err := e.Stream(env, in)
	if err != nil {
		return nil, err
	}
	return runStreamBarrier(ctx, env, st)
}

// Stream implements StreamingExecutor (barrier-only; see callExecutor).
func (quantifyExecutor) Stream(env *StageEnv, in *Dataset) (StageStream, bool, error) {
	if env.pipelined {
		return nil, false, nil
	}
	return &quantifyStream{env: env, in: in}, true, nil
}

type quantifyStream struct {
	env     *StageEnv
	in      *Dataset
	regions []shard.Region
}

func (s *quantifyStream) Split() ([]StreamShard, error) {
	regions, err := shard.Regions(s.in.Reference.Len(), s.env.RegionCount())
	if err != nil {
		return nil, err
	}
	s.regions = regions
	// Start-position scatter: each alignment counts toward exactly one
	// region, so feature counts sum to the mapped total.
	parts, _ := shard.PartitionByRegion(s.in.Alignments, regions)
	shards := make([]StreamShard, len(parts))
	for i, p := range parts {
		shards[i] = StreamShard{Records: len(p), Data: p}
	}
	return shards, nil
}

func (s *quantifyStream) Transform(ctx context.Context, i int, in StreamShard) (StreamShard, error) {
	alns := in.Data.([]genomics.Alignment)
	bases := 0
	for j, a := range alns {
		if j%ctxCheckInterval == 0 {
			if err := ctx.Err(); err != nil {
				return StreamShard{}, err
			}
		}
		bases += len(a.Seq)
	}
	r := s.regions[i]
	f := Feature{
		Name:  fmt.Sprintf("%s:%d-%d", s.in.Reference.Name, r.Start, r.End),
		Start: r.Start,
		End:   r.End,
		Count: len(alns),
		Value: float64(bases) / float64(r.Len()),
	}
	return StreamShard{Records: 1, Data: f}, nil
}

func (s *quantifyStream) Gather(shards []StreamShard) (*Dataset, error) {
	features := make([]Feature, len(shards))
	for i, sh := range shards {
		features[i] = sh.Data.(Feature)
	}
	out := *s.in
	out.Type = FeatureTable
	out.Features = features
	return &out, nil
}

// mergeVCFExecutor implements the gather stage the paper calls
// VariantsToVCF: merge a call set into sorted, deduplicated form.
type mergeVCFExecutor struct{}

func (mergeVCFExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	start := time.Now()
	out := *in
	out.Variants = genomics.MergeVariants(in.Variants)
	env.LogShard(len(in.Variants), time.Since(start))
	return &out, nil
}

// identityExecutor passes the dataset through unchanged. It implements
// PassthroughExecutor, so inside a pipelined segment shard streams flow
// straight through its stages without materializing a dataset.
type identityExecutor struct{}

func (identityExecutor) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	return in, nil
}

func (identityExecutor) StreamPassthrough() {}
