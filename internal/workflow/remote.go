package workflow

// The worker half of the fleet's "one executor path" invariant: a remote
// worker executes exactly the StageStream transforms the local pool would,
// by rebuilding the stage's stream from its materialized input and the
// coordinator-pinned options (StageEnv.RemoteOptions) and re-running Split
// locally. Split is deterministic given (input dataset, pinned options) —
// the shard plan is pinned, region widths are pinned, and no Data Broker
// is consulted — so the worker's shards are byte-identical to the
// coordinator's and a dispatch needs to name only a shard index.

import (
	"context"
	"fmt"
)

// ErrNotStreaming reports a remote dispatch against a stage whose executor
// has no stream — such stages (filters, merges, passthroughs) always run
// on the coordinator.
var ErrNotStreaming = fmt.Errorf("workflow: stage is not streaming-capable")

// StagePrep is a prepared stage stream on a worker: the stream plus its
// local re-Split, reusable across every shard of the same (workflow,
// stage, input, options) dispatch — workers cache it so per-stage setup
// (aligner index build, region partitioning) is paid once, not per shard.
// RunShard is safe for concurrent use with distinct shard indices.
type StagePrep struct {
	env    *StageEnv
	stream StageStream
	shards []StreamShard
}

// PrepareStageShards resolves the named workflow's stage, rebuilds its
// stream over the materialized input with the given (coordinator-pinned)
// options, and re-Splits it. Scheduling-only options are ignored: the prep
// never pipelines, observes, or re-dispatches remotely.
func (e *Engine) PrepareStageShards(workflow string, stageIdx int, in *Dataset, opts RunOptions) (*StagePrep, error) {
	w, err := e.catalogue.Get(workflow)
	if err != nil {
		return nil, err
	}
	if stageIdx < 0 || stageIdx >= len(w.Stages) {
		return nil, fmt.Errorf("workflow %s: stage index %d out of range [0,%d)",
			workflow, stageIdx, len(w.Stages))
	}
	st := w.Stages[stageIdx]
	exec, ok := e.execs.Lookup(st.Tool, st.Name)
	if !ok {
		return nil, fmt.Errorf("workflow %s: %w for stage %q (tool %s)",
			workflow, ErrNoExecutor, st.Name, st.Tool)
	}
	sx, ok := exec.(StreamingExecutor)
	if !ok {
		return nil, fmt.Errorf("%w: workflow %s stage %q (tool %s)",
			ErrNotStreaming, workflow, st.Name, st.Tool)
	}
	if in == nil {
		return nil, ErrNilDataset
	}
	if in.Type != st.Consumes {
		return nil, fmt.Errorf("%w: workflow %s stage %q consumes %s, dataset is %s",
			ErrTypeMismatch, workflow, st.Name, st.Consumes, in.Type)
	}
	opts.ShardPool = nil
	opts.StageObserver = nil
	opts.ShardObserver = nil
	sr := StageResult{Stage: st.Name, Tool: st.Tool}
	env := &StageEnv{engine: e, stage: st, index: stageIdx, opts: opts, result: &sr}
	stream, ok, err := sx.Stream(env, in)
	if err != nil {
		return nil, fmt.Errorf("workflow %s: stage %q: %w", workflow, st.Name, err)
	}
	if !ok {
		return nil, fmt.Errorf("%w: workflow %s stage %q declined to stream",
			ErrNotStreaming, workflow, st.Name)
	}
	shards, err := stream.Split()
	if err != nil {
		return nil, fmt.Errorf("workflow %s: stage %q split: %w", workflow, st.Name, err)
	}
	return &StagePrep{env: env, stream: stream, shards: shards}, nil
}

// NumShards returns the local re-Split's width — a dispatch whose shard
// index falls outside it signals coordinator/worker divergence.
func (p *StagePrep) NumShards() int { return len(p.shards) }

// RunShard transforms shard i, returning its output and the input record
// count (the coordinator's telemetry unit for the shard).
func (p *StagePrep) RunShard(ctx context.Context, i int) (StreamShard, int, error) {
	if i < 0 || i >= len(p.shards) {
		return StreamShard{}, 0, fmt.Errorf("workflow: shard index %d out of range [0,%d)",
			i, len(p.shards))
	}
	out, err := p.stream.Transform(ctx, i, p.shards[i])
	if err != nil {
		return StreamShard{}, 0, err
	}
	return out, p.shards[i].Records, nil
}
