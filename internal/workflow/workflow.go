// This file holds the catalogue: typed workflow definitions, the registry,
// and their knowledge-base export. See doc.go for the package overview and
// the streaming/determinism contract of the pipelined engine.
package workflow

import (
	"errors"
	"fmt"
	"sort"

	"scan/internal/knowledge"
)

// DataType is a biological data format flowing between stages.
type DataType string

// The data types of the paper's Figure 1 data-flow diagram.
const (
	FASTQ        DataType = "FASTQ"        // raw NGS reads (Illumina HiSeq)
	BAM          DataType = "BAM"          // aligned reads (SBAM in this repo)
	VCF          DataType = "VCF"          // variant calls
	MGF          DataType = "MGF"          // mass-spectrometry peak lists
	ProteinTable DataType = "ProteinTable" // quantified proteins
	TIFF         DataType = "TIFF"         // microscopy images
	FeatureTable DataType = "FeatureTable" // per-cell image features
	Network      DataType = "Network"      // integrative interaction network
)

// Stage is one tool invocation in a workflow.
type Stage struct {
	Name     string
	Tool     string // the executing application (BWA, GATK, MaxQuant, ...)
	Consumes DataType
	Produces DataType
	// Parallelizable marks stages the Data Broker may shard
	// (coarse-grained data parallelism).
	Parallelizable bool
}

// Workflow is a typed chain of stages.
type Workflow struct {
	Name        string
	Description string
	Family      string // "genomic", "proteomic", "imaging", "integrative"
	Stages      []Stage
}

// Errors returned by validation and registry operations.
var (
	ErrEmptyWorkflow = errors.New("workflow: no stages")
	ErrNotFound      = errors.New("workflow: not found")
	ErrDuplicate     = errors.New("workflow: already registered")
)

// Validate checks the stage chain is non-empty, named, and type-compatible
// (stage i's product feeds stage i+1).
func (w Workflow) Validate() error {
	if w.Name == "" {
		return errors.New("workflow: missing name")
	}
	if len(w.Stages) == 0 {
		return ErrEmptyWorkflow
	}
	for i, s := range w.Stages {
		if s.Name == "" || s.Tool == "" {
			return fmt.Errorf("workflow %s: stage %d missing name or tool", w.Name, i)
		}
		if s.Consumes == "" || s.Produces == "" {
			return fmt.Errorf("workflow %s: stage %q missing data types", w.Name, s.Name)
		}
		if i > 0 && w.Stages[i-1].Produces != s.Consumes {
			return fmt.Errorf("workflow %s: stage %q consumes %s but %q produces %s",
				w.Name, s.Name, s.Consumes, w.Stages[i-1].Name, w.Stages[i-1].Produces)
		}
	}
	return nil
}

// Consumes returns the workflow's input data type.
func (w Workflow) Consumes() DataType { return w.Stages[0].Consumes }

// Produces returns the workflow's final output data type.
func (w Workflow) Produces() DataType { return w.Stages[len(w.Stages)-1].Produces }

// Registry holds named workflows.
type Registry struct {
	byName map[string]Workflow
	order  []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Workflow)}
}

// Register validates and adds a workflow.
func (r *Registry) Register(w Workflow) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if _, dup := r.byName[w.Name]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, w.Name)
	}
	r.byName[w.Name] = w
	r.order = append(r.order, w.Name)
	return nil
}

// Get returns a workflow by name.
func (r *Registry) Get(name string) (Workflow, error) {
	w, ok := r.byName[name]
	if !ok {
		return Workflow{}, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return w, nil
}

// Names returns registered workflow names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// Len returns the number of registered workflows.
func (r *Registry) Len() int { return len(r.byName) }

// ForInput returns the workflows consuming the given data type, sorted by
// name — the Data Broker's "which analyses can run on this file" question.
func (r *Registry) ForInput(dt DataType) []Workflow {
	var out []Workflow
	for _, name := range r.order {
		if w := r.byName[name]; w.Consumes() == dt {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ExportTo records every workflow in the knowledge base as a
// GenomeAnalysis individual with stage and data-type triples, queryable by
// the Data Broker's SPARQL layer.
func (r *Registry) ExportTo(kb *knowledge.Base) error {
	for _, name := range r.order {
		w := r.byName[name]
		if err := kb.AddWorkflowIndividual(name, w.Family, len(w.Stages),
			string(w.Consumes()), string(w.Produces())); err != nil {
			return err
		}
	}
	return nil
}

// gatk7 builds the paper's 7-stage GATK variant pipeline as workflow
// stages (identical software requirements, distinct resource needs).
func gatk7() []Stage {
	names := []string{
		"MarkDuplicates", "RealignerTargetCreator", "IndelRealigner",
		"BaseRecalibrator", "PrintReads", "UnifiedGenotyper", "VariantFiltration",
	}
	stages := make([]Stage, 0, len(names)+1)
	for i, n := range names {
		produces := BAM
		if i >= len(names)-2 {
			produces = VCF // the calling and filtration stages emit VCF
		}
		consumes := BAM
		if i == len(names)-1 {
			consumes = VCF
		}
		stages = append(stages, Stage{
			Name: n, Tool: "GATK", Consumes: consumes, Produces: produces,
			Parallelizable: i != len(names)-1,
		})
	}
	return stages
}

// DefaultCatalogue returns the paper's workflow catalogue: the analyses of
// Figure 1 plus the workflow instances Section III-A names, 11 in total.
func DefaultCatalogue() *Registry {
	r := NewRegistry()
	add := func(w Workflow) {
		// The catalogue is static; a registration failure is programmer error.
		if err := r.Register(w); err != nil {
			panic(err)
		}
	}
	align := Stage{Name: "Align", Tool: "BWA", Consumes: FASTQ, Produces: BAM, Parallelizable: true}

	add(Workflow{
		Name: "dna-variant-detection", Family: "genomic",
		Description: "Gene alignment and variation detection (Figure 1, NGS path)",
		Stages:      append([]Stage{align}, gatk7()...),
	})
	add(Workflow{
		Name: "exome-variant-detection", Family: "genomic",
		Description: "Exome-targeted variant detection",
		Stages:      append([]Stage{align}, gatk7()...),
	})
	add(Workflow{
		Name: "wgs-variant-detection", Family: "genomic",
		Description: "Whole-genome sequencing variant detection (100GB+ inputs)",
		Stages:      append([]Stage{align}, gatk7()...),
	})
	add(Workflow{
		Name: "somatic-mutation-detection", Family: "genomic",
		Description: "Tumour/normal somatic calling (MuTect-style)",
		Stages: []Stage{align,
			{Name: "SomaticCall", Tool: "MuTect", Consumes: BAM, Produces: VCF, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "mirna-fusion-detection", Family: "genomic",
		Description: "miRNA fusion detection workflow (named in Section III-A)",
		Stages: []Stage{align,
			{Name: "FusionScan", Tool: "GATK", Consumes: BAM, Produces: VCF, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "rna-expression", Family: "genomic",
		Description: "RNA-seq expression profiling",
		Stages: []Stage{align,
			{Name: "Quantify", Tool: "GATK", Consumes: BAM, Produces: FeatureTable, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "variants-to-vcf", Family: "genomic",
		Description: "Gather stage merging per-shard call sets (paper's VariantsToVCF)",
		Stages: []Stage{
			{Name: "MergeVCF", Tool: "GATK", Consumes: VCF, Produces: VCF},
		},
	})
	add(Workflow{
		Name: "proteome-maxquant", Family: "proteomic",
		Description: "Peptide identification and protein quantification (Figure 1, MS path)",
		Stages: []Stage{
			{Name: "Quantify", Tool: "MaxQuant", Consumes: MGF, Produces: ProteinTable, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "proteome-gpm", Family: "proteomic",
		Description: "Global Proteome Machine search",
		Stages: []Stage{
			{Name: "Search", Tool: "GPM", Consumes: MGF, Produces: ProteinTable, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "cell-imaging", Family: "imaging",
		Description: "Cell image phenotype quantification (Figure 1, microscopy path)",
		Stages: []Stage{
			{Name: "Profile", Tool: "CellProfiler", Consumes: TIFF, Produces: FeatureTable, Parallelizable: true},
		},
	})
	add(Workflow{
		Name: "integrative-network", Family: "integrative",
		Description: "Omics integration into interaction networks (Figure 1, Cytoscape)",
		Stages: []Stage{
			// Parallelizable: edge construction scatters over node-range
			// partitions of the O(n²) pair space.
			{Name: "Integrate", Tool: "Cytoscape", Consumes: FeatureTable, Produces: Network, Parallelizable: true},
		},
	})
	return r
}
