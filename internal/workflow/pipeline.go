package workflow

import (
	"container/heap"
	"context"
	"fmt"
	"sync"
	"time"

	"scan/internal/knowledge"
)

// This file is the pipelined half of the engine: instead of a full barrier
// after every stage, consecutive streaming-capable stages form a *segment*
// whose shards flow stage to stage the moment they are ready. One bounded
// worker pool is shared across every in-flight stage of the segment; idle
// workers steal whichever ready shard has the highest priority, where
// priority is a HEFT-style upward rank computed from the Data Broker's
// fitted per-(tool, stage) cost models — the knowledge base graduating
// from shard sizer to pipeline scheduler.

// pipeStage is one workflow stage inside a pipelined segment.
type pipeStage struct {
	index  int // position in the workflow's stage chain
	stage  Stage
	sr     StageResult
	env    *StageEnv   // nil for pass-through stages
	stream StageStream // nil for pass-through stages
	// gate indexes the segment's streaming stage whose completion
	// finalizes this stage (itself for streaming stages, the nearest
	// upstream streaming stage for pass-throughs).
	gate int
}

// pipeSegment is a maximal run of consecutive stages executed as one
// shard-streaming pipeline: streaming stages interleaved with
// pass-throughs, always beginning at a streaming stage.
type pipeSegment struct {
	start, end int // stage index range [start, end) in the workflow
	stages     []*pipeStage
	streams    []*pipeStage // the streaming subset, chain order
}

// pipelineSegment grows the longest pipelined segment starting at stage
// `start`, or returns nil when the stage cannot stream this input. Stream
// setup failures decline silently — the barrier path re-runs the setup
// through Execute and surfaces the identical error there, so detection
// never changes which stage an error is attributed to.
func (e *Engine) pipelineSegment(w Workflow, start int, headExec StageExecutor, in *Dataset, opts RunOptions) *pipeSegment {
	se, ok := headExec.(StreamingExecutor)
	if !ok {
		return nil
	}
	seg := &pipeSegment{start: start}
	addStreaming := func(idx int, sx StreamingExecutor) bool {
		st := w.Stages[idx]
		ps := &pipeStage{index: idx, stage: st, sr: StageResult{Stage: st.Name, Tool: st.Tool}}
		ps.env = &StageEnv{engine: e, stage: st, index: idx, opts: opts, result: &ps.sr, pipelined: true}
		stream, ok, err := sx.Stream(ps.env, in)
		if err != nil || !ok {
			return false
		}
		ps.stream = stream
		ps.gate = len(seg.streams)
		seg.stages = append(seg.stages, ps)
		seg.streams = append(seg.streams, ps)
		return true
	}
	if !addStreaming(start, se) {
		return nil
	}
	end := start + 1
	for end < len(w.Stages) {
		st := w.Stages[end]
		ex, found := e.execs.Lookup(st.Tool, st.Name)
		if !found {
			break
		}
		if _, pass := ex.(PassthroughExecutor); pass && st.Consumes == st.Produces {
			seg.stages = append(seg.stages, &pipeStage{
				index: end, stage: st,
				sr:   StageResult{Stage: st.Name, Tool: st.Tool},
				gate: len(seg.streams) - 1,
			})
			end++
			continue
		}
		if sx, isStream := ex.(StreamingExecutor); isStream && addStreaming(end, sx) {
			end++
			continue
		}
		break
	}
	seg.end = end
	return seg
}

// upwardRanks computes HEFT-style upward ranks over a linear chain:
// rank[k] = cost[k] + rank[k+1]. A shard's priority is the estimated work
// remaining on its path to the segment tail, so the shards that unlock the
// most downstream work dispatch first, and idle workers drain whatever
// ready shard ranks highest.
func upwardRanks(costs []float64) []float64 {
	ranks := make([]float64, len(costs))
	acc := 0.0
	for k := len(costs) - 1; k >= 0; k-- {
		acc += costs[k]
		ranks[k] = acc
	}
	return ranks
}

// segmentCosts asks the Data Broker for each streaming stage's predicted
// per-shard cost at the segment's planned shard size. With no KB (or no
// fits yet) every stage costs 1, degrading the rank to plain chain depth.
func (e *Engine) segmentCosts(streams []*pipeStage, perShardRecords int) []float64 {
	if e.kb == nil {
		costs := make([]float64, len(streams))
		for i := range costs {
			costs[i] = 1
		}
		return costs
	}
	chain := make([]knowledge.StageRef, len(streams))
	for i, ps := range streams {
		chain[i] = knowledge.StageRef{App: ps.stage.Tool, Stage: ps.index}
	}
	return e.kb.ChainCosts(chain, float64(perShardRecords)/float64(e.recordsPerUnit))
}

// segTask is one ready (stage, shard) unit awaiting a worker.
type segTask struct {
	stream int // index into pipeSegment.streams
	shard  int
	rank   float64
}

// taskHeap orders ready tasks by upward rank (descending), then shard
// index, then stage — a deterministic dispatch order for equal ranks.
type taskHeap []segTask

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].rank != h[j].rank {
		return h[i].rank > h[j].rank
	}
	if h[i].shard != h[j].shard {
		return h[i].shard < h[j].shard
	}
	return h[i].stream < h[j].stream
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(segTask)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// pipeRun is the mutable state of one pipelined segment execution.
type pipeRun struct {
	seg    *pipeSegment
	shards []StreamShard // the head stage's scatter
	ranks  []float64

	mu         sync.Mutex
	ready      taskHeap
	outs       [][]StreamShard // outs[k][i]: streaming stage k's output for shard i
	remaining  []int           // per streaming stage, shards not yet completed
	firstStart []time.Time     // per streaming stage, earliest Transform start
	lastEnd    []time.Time     // per streaming stage, latest Transform end
	failErr    error
	failStage  int
	gatherDone bool

	segStart  time.Time
	sem       chan struct{}
	wake      chan struct{}
	wg        sync.WaitGroup
	finalized int // segment stages finalized & observed so far
}

// runPipelined executes one segment: scatter at the head, stream shards
// through the chain under the shared rank-ordered pool, gather at the
// tail. Cancellation stops dispatch promptly (the pool-slot acquisition
// selects on ctx.Done, mirroring StageEnv.Pool) and drains in-flight
// shards — whose Transforms poll ctx themselves — before returning.
func (e *Engine) runPipelined(ctx context.Context, w Workflow, seg *pipeSegment, opts RunOptions, res *Result) (*Dataset, error) {
	head := seg.streams[0]
	stageErr := func(ps *pipeStage, err error) error {
		return fmt.Errorf("workflow %s: stage %q: %w", w.Name, ps.stage.Name, err)
	}
	shards, err := head.stream.Split()
	if err != nil {
		return nil, stageErr(head, err)
	}
	n := len(shards)
	nS := len(seg.streams)
	per := head.sr.Plan.RecordsPerShard
	if per <= 0 && n > 0 {
		total := 0
		for _, s := range shards {
			total += s.Records
		}
		per = (total + n - 1) / n
	}
	pr := &pipeRun{
		seg: seg, shards: shards,
		ranks:      upwardRanks(e.segmentCosts(seg.streams, per)),
		outs:       make([][]StreamShard, nS),
		remaining:  make([]int, nS),
		firstStart: make([]time.Time, nS),
		lastEnd:    make([]time.Time, nS),
		segStart:   time.Now(),
		sem:        make(chan struct{}, e.workers),
		wake:       make(chan struct{}, 1),
	}
	for k := 0; k < nS; k++ {
		pr.outs[k] = make([]StreamShard, n)
		pr.remaining[k] = n
	}
	for i := 0; i < n; i++ {
		heap.Push(&pr.ready, segTask{stream: 0, shard: i, rank: pr.ranks[0]})
	}

	total := n * nS
	dispatched := 0
dispatch:
	for dispatched < total {
		if ctx.Err() != nil {
			break
		}
		pr.mu.Lock()
		if pr.failErr != nil {
			pr.mu.Unlock()
			break
		}
		var t segTask
		popped := false
		if pr.ready.Len() > 0 {
			t = heap.Pop(&pr.ready).(segTask)
			popped = true
		}
		pr.mu.Unlock()
		if !popped {
			// Nothing ready: wait for an in-flight shard to finish (which
			// may unlock its downstream shard) or for cancellation.
			select {
			case <-pr.wake:
			case <-ctx.Done():
				break dispatch
			}
			pr.finalizeReady(res, opts)
			continue
		}
		select {
		case pr.sem <- struct{}{}:
		case <-ctx.Done():
			break dispatch
		}
		dispatched++
		pr.wg.Add(1)
		go pr.runTask(ctx, t)
		pr.finalizeReady(res, opts)
	}
	pr.wg.Wait()
	// Observe stages that fully completed, even when a later shard failed —
	// the same prefix the barrier path would have reported.
	pr.finalizeReady(res, opts)
	pr.mu.Lock()
	failErr, failStage := pr.failErr, pr.failStage
	pr.mu.Unlock()
	if failErr != nil {
		return nil, stageErr(seg.streams[failStage], failErr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	tail := seg.streams[nS-1]
	out, err := tail.stream.Gather(pr.outs[nS-1])
	if err != nil {
		return nil, stageErr(tail, err)
	}
	if out == nil {
		return nil, fmt.Errorf("workflow %s: stage %q: %w from executor",
			w.Name, tail.stage.Name, ErrNilDataset)
	}
	if want := seg.stages[len(seg.stages)-1].stage.Produces; out.Type != want {
		return nil, fmt.Errorf("%w: workflow %s stage %q produced %s, catalogue declares %s",
			ErrTypeMismatch, w.Name, tail.stage.Name, out.Type, want)
	}
	pr.mu.Lock()
	pr.lastEnd[nS-1] = time.Now() // fold the gather into the tail stage's span
	pr.gatherDone = true
	pr.mu.Unlock()
	pr.finalizeReady(res, opts)
	return out, nil
}

// runTask executes one (stage, shard) transform on a pool worker.
func (pr *pipeRun) runTask(ctx context.Context, t segTask) {
	defer pr.wg.Done()
	defer func() { <-pr.sem }()
	defer pr.notify()
	ps := pr.seg.streams[t.stream]
	var in StreamShard
	if t.stream == 0 {
		in = pr.shards[t.shard]
	} else {
		pr.mu.Lock()
		in = pr.outs[t.stream-1][t.shard]
		pr.mu.Unlock()
	}
	start := time.Now()
	out, err := ps.stream.Transform(ctx, t.shard, in)
	end := time.Now()
	if err == nil {
		// The engine owns shard telemetry in pipelined mode (streams must
		// not LogShard themselves), so each shard is logged exactly once
		// under the same (tool, stage) key as in barrier mode.
		ps.env.LogShard(in.Records, end.Sub(start))
	}
	pr.mu.Lock()
	defer pr.mu.Unlock()
	k := t.stream
	if pr.firstStart[k].IsZero() || start.Before(pr.firstStart[k]) {
		pr.firstStart[k] = start
	}
	if end.After(pr.lastEnd[k]) {
		pr.lastEnd[k] = end
	}
	if err != nil {
		if pr.failErr == nil {
			pr.failErr = err
			pr.failStage = k
		}
		return
	}
	pr.outs[k][t.shard] = out
	pr.remaining[k]--
	if k+1 < len(pr.seg.streams) {
		heap.Push(&pr.ready, segTask{stream: k + 1, shard: t.shard, rank: pr.ranks[k+1]})
	}
}

// notify wakes the dispatcher; a full buffer means a wake is already
// pending, so dropping the signal is safe.
func (pr *pipeRun) notify() {
	select {
	case pr.wake <- struct{}{}:
	default:
	}
}

// finalizeReady finalizes and observes, in catalogue order, every segment
// stage whose gate streaming stage has completed all its shards (and, for
// the tail group, whose gather has run). Only the dispatcher goroutine
// calls it, so observers run on the engine's goroutine, once per stage, in
// catalogue order — the same contract as barrier mode.
func (pr *pipeRun) finalizeReady(res *Result, opts RunOptions) {
	for {
		pr.mu.Lock()
		if pr.finalized >= len(pr.seg.stages) {
			pr.mu.Unlock()
			return
		}
		ps := pr.seg.stages[pr.finalized]
		g := ps.gate
		if pr.remaining[g] != 0 || (g == len(pr.seg.streams)-1 && !pr.gatherDone) {
			pr.mu.Unlock()
			return
		}
		pr.finalizeLocked(ps, g)
		sr := ps.sr
		pr.finalized++
		pr.mu.Unlock()
		res.Stages = append(res.Stages, sr)
		if opts.StageObserver != nil {
			opts.StageObserver(sr)
		}
	}
}

// finalizeLocked stamps a stage result's scatter and pipeline timings;
// pr.mu is held.
func (pr *pipeRun) finalizeLocked(ps *pipeStage, g int) {
	ps.sr.Pipeline.Streamed = true
	if ps.stream == nil {
		return // pass-through: zero scatter, zero span
	}
	ps.sr.Shards = len(pr.shards)
	ps.sr.Records = int(ps.env.records.Load())
	first, last := pr.firstStart[g], pr.lastEnd[g]
	if first.IsZero() {
		return
	}
	ps.sr.Elapsed = last.Sub(first)
	ps.sr.Pipeline.FirstShardStart = first.Sub(pr.segStart)
	if g > 0 {
		if span, prevLast := ps.sr.Elapsed, pr.lastEnd[g-1]; span > 0 && prevLast.After(first) {
			f := float64(prevLast.Sub(first)) / float64(span)
			if f > 1 {
				f = 1
			}
			ps.sr.Pipeline.Overlap = f
		}
	}
}
