package workflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"testing"

	"scan/internal/genomics"
	"scan/internal/knowledge"
	"scan/internal/variant"
)

// varConfigForTests mirrors the calling thresholds the platform tests use.
func varConfigForTests() variant.Config {
	return variant.Config{MinDepth: 8, MinAltFraction: 0.6}
}

// executorFunc adapts a function to StageExecutor for tests.
type executorFunc func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error)

func (f executorFunc) Execute(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
	return f(ctx, env, in)
}

func synthDataset(t testing.TB, refLen, reads int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := genomics.GenerateReference(rng, "chr1", refLen)
	mutated, _ := genomics.PlantSNVs(rng, ref, 10)
	rd, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: reads, Length: 100, ErrorRate: 0.002,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewFASTQDataset(ref, rd)
}

func seededKB(t testing.TB) *knowledge.Base {
	t.Helper()
	kb := knowledge.New()
	kb.SeedPaperProfiles()
	return kb
}

func testEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	return NewEngine(EngineOptions{KB: seededKB(t), Workers: workers})
}

func TestEngineRunsVariantDetection(t *testing.T) {
	e := testEngine(t, 4)
	ds := synthDataset(t, 8000, 2000, 1)
	res, err := e.RunByName(context.Background(), "dna-variant-detection", ds, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workflow != "dna-variant-detection" {
		t.Fatalf("workflow = %q", res.Workflow)
	}
	// All 8 catalogue stages executed, in order.
	if len(res.Stages) != 8 {
		t.Fatalf("stages executed = %d, want 8", len(res.Stages))
	}
	if res.Stages[0].Stage != "Align" || res.Stages[6].Stage != "UnifiedGenotyper" {
		t.Fatalf("stage order = %+v", res.Stages)
	}
	out := res.Output
	if out.Type != VCF {
		t.Fatalf("output type = %s", out.Type)
	}
	// The output dataset accumulates: alignments survive the calling stage.
	if len(out.Alignments) != 2000 || out.Mapped == 0 {
		t.Fatalf("alignments = %d, mapped = %d", len(out.Alignments), out.Mapped)
	}
	if len(out.Variants) == 0 {
		t.Fatal("no variants called")
	}
	// The align stage recorded its Data Broker plan and advice.
	if res.Stages[0].Plan.NumShards == 0 || res.Stages[0].Advice.BasedOn == "" {
		t.Fatalf("align stage result = %+v", res.Stages[0])
	}
}

func TestInputTypeMismatchRejected(t *testing.T) {
	e := testEngine(t, 2)
	ds := synthDataset(t, 4000, 100, 2)
	ds.Type = BAM // lie about the payload
	_, err := e.RunByName(context.Background(), "dna-variant-detection", ds, RunOptions{})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
	if _, err := e.RunByName(context.Background(), "dna-variant-detection", nil, RunOptions{}); !errors.Is(err, ErrNilDataset) {
		t.Fatalf("nil dataset err = %v", err)
	}
}

func TestExecutorOutputTypeChecked(t *testing.T) {
	// An executor whose output contradicts the catalogue declaration is a
	// registration bug the engine must catch, not propagate.
	cat := NewRegistry()
	if err := cat.Register(Workflow{
		Name: "lying", Family: "genomic",
		Stages: []Stage{{Name: "Lie", Tool: "TestTool", Consumes: FASTQ, Produces: BAM}},
	}); err != nil {
		t.Fatal(err)
	}
	execs := NewExecutorRegistry()
	if err := execs.Register("TestTool", "", executorFunc(
		func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
			out := *in
			out.Type = VCF // catalogue says BAM
			return &out, nil
		})); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Catalogue: cat, Executors: execs})
	_, err := e.RunByName(context.Background(), "lying", synthDataset(t, 4000, 10, 3), RunOptions{})
	if !errors.Is(err, ErrTypeMismatch) {
		t.Fatalf("err = %v, want ErrTypeMismatch", err)
	}
}

// TestEveryCataloguedWorkflowRunnable: with the family substrates bound,
// the default registry has an executor for every stage of every catalogued
// workflow — the catalogue is 100% executable, not a menu of aspirations.
func TestEveryCataloguedWorkflowRunnable(t *testing.T) {
	e := testEngine(t, 2)
	for _, name := range e.Catalogue().Names() {
		w, err := e.Catalogue().Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.CanRun(w); err != nil {
			t.Errorf("CanRun(%s) = %v", name, err)
		}
	}
}

// TestNoExecutorForUnknownTool: ErrNoExecutor survives for genuinely
// unknown tools — a workflow registered around an unbound tool still fails
// loudly at CanRun and Run.
func TestNoExecutorForUnknownTool(t *testing.T) {
	cat := NewRegistry()
	w := Workflow{
		Name: "hypothetical", Family: "genomic",
		Stages: []Stage{{Name: "Fold", Tool: "AlphaFold", Consumes: FASTQ, Produces: VCF}},
	}
	if err := cat.Register(w); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Catalogue: cat, KB: seededKB(t)})
	if err := e.CanRun(w); !errors.Is(err, ErrNoExecutor) {
		t.Fatalf("CanRun = %v, want ErrNoExecutor", err)
	}
	_, err := e.RunByName(context.Background(), "hypothetical", &Dataset{Type: FASTQ}, RunOptions{})
	if !errors.Is(err, ErrNoExecutor) {
		t.Fatalf("err = %v, want ErrNoExecutor", err)
	}
}

func TestCancellationStopsQueueing(t *testing.T) {
	// A shard cancelling the run must stop the pool from queueing the
	// remaining shards: the semaphore acquisition selects on ctx.Done.
	cat := NewRegistry()
	if err := cat.Register(Workflow{
		Name: "wide", Family: "genomic",
		Stages: []Stage{{Name: "Fan", Tool: "TestTool", Consumes: FASTQ, Produces: FASTQ, Parallelizable: true}},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var executed atomic.Int32
	execs := NewExecutorRegistry()
	if err := execs.Register("TestTool", "", executorFunc(
		func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
			err := env.Pool(ctx, 100, func(i int) error {
				executed.Add(1)
				cancel()
				return nil
			})
			if err != nil {
				return nil, err
			}
			return in, nil
		})); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Catalogue: cat, Executors: execs, Workers: 1})
	_, err := e.RunByName(ctx, "wide", &Dataset{Type: FASTQ}, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= 100 {
		t.Fatalf("pool ran all %d shards despite cancellation", n)
	}
}

func TestCancellationStopsStageChain(t *testing.T) {
	// A context cancelled during stage 1 must prevent stage 2 from running.
	cat := NewRegistry()
	if err := cat.Register(Workflow{
		Name: "two-step", Family: "genomic",
		Stages: []Stage{
			{Name: "First", Tool: "CancelTool", Consumes: FASTQ, Produces: FASTQ},
			{Name: "Second", Tool: "MustNotRun", Consumes: FASTQ, Produces: FASTQ},
		},
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	secondRan := false
	execs := NewExecutorRegistry()
	if err := execs.Register("CancelTool", "", executorFunc(
		func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
			cancel()
			return in, nil
		})); err != nil {
		t.Fatal(err)
	}
	if err := execs.Register("MustNotRun", "", executorFunc(
		func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
			secondRan = true
			return in, nil
		})); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(EngineOptions{Catalogue: cat, Executors: execs, Workers: 1})
	if _, err := e.RunByName(ctx, "two-step", &Dataset{Type: FASTQ}, RunOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if secondRan {
		t.Fatal("stage after cancellation still executed")
	}
}

func TestPerStageRunLogGrowth(t *testing.T) {
	kb := seededKB(t)
	e := NewEngine(EngineOptions{KB: kb, Workers: 2})
	before := kb.RunCount()
	ds := synthDataset(t, 6000, 1200, 4)
	if _, err := e.RunByName(context.Background(), "dna-variant-detection", ds,
		RunOptions{ShardRecords: 300, Regions: 3}); err != nil {
		t.Fatal(err)
	}
	if kb.RunCount() <= before {
		t.Fatal("engine did not grow the knowledge base")
	}
	// Logs are keyed by tool and stage position: the BWA fan-out at stage
	// 0 (4 shards of 300 reads) and the genotyper at stage 6 (3 regions).
	for _, tc := range []struct {
		app   string
		stage int
		want  int
	}{{"BWA", 0, 4}, {"GATK", 6, 3}} {
		res, err := kb.Query(fmt.Sprintf(`
PREFIX scan: <%s>
SELECT ?run WHERE {
  ?run a scan:RunLog ;
       scan:application scan:%s ;
       scan:stage %d .
}`, knowledge.NS, tc.app, tc.stage))
		if err != nil {
			t.Fatal(err)
		}
		if res.Len() != tc.want {
			t.Fatalf("%s stage %d: %d run logs, want %d", tc.app, tc.stage, res.Len(), tc.want)
		}
	}
}

func TestPerShardTimingsAreOwnDurations(t *testing.T) {
	// Regression for the seed bug where every shard logged the cumulative
	// stage elapsed time: on a single worker the per-shard durations are
	// disjoint slices of the stage wall clock, so their sum cannot exceed
	// the stage elapsed time. Under the old bug the sum over n shards
	// approached n/2 × elapsed.
	kb := seededKB(t)
	e := NewEngine(EngineOptions{KB: kb, Workers: 1})
	ds := synthDataset(t, 8000, 2400, 5)
	res, err := e.RunByName(context.Background(), "dna-variant-detection", ds,
		RunOptions{ShardRecords: 300, Regions: 1})
	if err != nil {
		t.Fatal(err)
	}
	align := res.Stages[0]
	if align.Shards != 8 {
		t.Fatalf("align shards = %d, want 8", align.Shards)
	}
	q, err := kb.Query(`
PREFIX scan: <` + knowledge.NS + `>
SELECT ?time WHERE {
  ?run a scan:RunLog ;
       scan:application scan:BWA ;
       scan:eTime ?time .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 8 {
		t.Fatalf("BWA run logs = %d, want 8", q.Len())
	}
	sum := 0.0
	for _, row := range q.Rows {
		v, _ := row["time"].AsFloat()
		sum += v
	}
	if limit := 2 * align.Elapsed.Seconds(); sum > limit {
		t.Fatalf("per-shard timings sum to %.4fs, stage took %.4fs — shards are logging cumulative time",
			sum, align.Elapsed.Seconds())
	}
}

func TestSomaticWorkflowEndToEnd(t *testing.T) {
	e := testEngine(t, 4)
	ds := synthDataset(t, 8000, 2400, 6)
	res, err := e.RunByName(context.Background(), "somatic-mutation-detection", ds,
		RunOptions{Caller: varConfigForTests()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Type != VCF || len(res.Output.Variants) == 0 {
		t.Fatalf("output = %s with %d variants", res.Output.Type, len(res.Output.Variants))
	}
	if len(res.Stages) != 2 || res.Stages[1].Tool != "MuTect" {
		t.Fatalf("stages = %+v", res.Stages)
	}
}

func TestRNAExpressionFeatures(t *testing.T) {
	e := testEngine(t, 4)
	ds := synthDataset(t, 8000, 2000, 7)
	res, err := e.RunByName(context.Background(), "rna-expression", ds, RunOptions{Regions: 5})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output
	if out.Type != FeatureTable || len(out.Features) != 5 {
		t.Fatalf("output = %s with %d features, want 5", out.Type, len(out.Features))
	}
	// Start-position scatter: feature counts partition the mapped reads.
	total := 0
	for _, f := range out.Features {
		total += f.Count
		if f.Name == "" || f.End < f.Start {
			t.Fatalf("malformed feature %+v", f)
		}
	}
	if total != out.Mapped {
		t.Fatalf("feature counts sum to %d, mapped = %d", total, out.Mapped)
	}
}

func TestMergeVCFWorkflowDeduplicates(t *testing.T) {
	e := testEngine(t, 2)
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("ACGTACGTACGT")}
	v := genomics.Variant{Chrom: "chr1", Pos: 3, Ref: "G", Alt: "T", Qual: 50}
	in := NewVCFDataset(ref, []genomics.Variant{v, v, {Chrom: "chr1", Pos: 1, Ref: "A", Alt: "C", Qual: 40}})
	res, err := e.RunByName(context.Background(), "variants-to-vcf", in, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output.Variants
	if len(out) != 2 || out[0].Pos != 1 || out[1].Pos != 3 {
		t.Fatalf("merged variants = %+v", out)
	}
}

func TestExecutorRegistryPrecedence(t *testing.T) {
	r := NewExecutorRegistry()
	exact := executorFunc(func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) { return in, nil })
	wild := executorFunc(func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) { return nil, nil })
	if err := r.Register("GATK", "UnifiedGenotyper", exact); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("GATK", "", wild); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("GATK", "UnifiedGenotyper", exact); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := r.Register("", "", exact); err == nil {
		t.Fatal("fully-wildcard registration accepted")
	}
	got, ok := r.Lookup("GATK", "UnifiedGenotyper")
	if !ok {
		t.Fatal("lookup failed")
	}
	// Exact binding wins over the tool wildcard: it passes the dataset
	// through instead of returning nil.
	if out, _ := got.Execute(context.Background(), nil, &Dataset{}); out == nil {
		t.Fatal("exact binding did not take precedence")
	}
	if _, ok := r.Lookup("GATK", "SomeOtherStage"); !ok {
		t.Fatal("tool wildcard did not match")
	}
	if _, ok := r.Lookup("NoSuchTool", "NoSuchStage"); ok {
		t.Fatal("unbound lookup succeeded")
	}
}

func TestVariantFiltrationMinQual(t *testing.T) {
	e := testEngine(t, 2)
	ds := synthDataset(t, 6000, 1800, 8)
	all, err := e.RunByName(context.Background(), "dna-variant-detection", ds, RunOptions{Caller: varConfigForTests()})
	if err != nil {
		t.Fatal(err)
	}
	strict, err := e.RunByName(context.Background(), "dna-variant-detection", ds,
		RunOptions{Caller: varConfigForTests(), MinQual: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.Output.Variants) == 0 {
		t.Fatal("no variants to filter")
	}
	if len(strict.Output.Variants) != 0 {
		t.Fatalf("MinQual=1e9 kept %d variants", len(strict.Output.Variants))
	}
}

func TestDatasetRecordsAndString(t *testing.T) {
	ds := synthDataset(t, 4000, 250, 9)
	if ds.Records() != 250 {
		t.Fatalf("records = %d", ds.Records())
	}
	if !strings.Contains(ds.String(), "FASTQ[250") {
		t.Fatalf("string = %q", ds.String())
	}
	if (&Dataset{Type: Network}).Records() != 0 {
		t.Fatal("unknown payload should count 0 records")
	}
}

// TestStageObserverStreamsResults: the observer fires once per stage, in
// catalogue order, with the same StageResult the engine records — the hook
// scand's event stream is built on.
func TestStageObserverStreamsResults(t *testing.T) {
	e := testEngine(t, 2)
	ds := synthDataset(t, 4000, 800, 2)
	var observed []StageResult
	res, err := e.RunByName(context.Background(), "dna-variant-detection", ds, RunOptions{
		StageObserver: func(sr StageResult) { observed = append(observed, sr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(observed) != len(res.Stages) {
		t.Fatalf("observer saw %d stages, engine recorded %d", len(observed), len(res.Stages))
	}
	for i, sr := range res.Stages {
		if observed[i] != sr {
			t.Fatalf("stage %d: observed %+v != recorded %+v", i, observed[i], sr)
		}
	}
}

// TestStageObserverStopsWithRun: a failing stage ends the observer stream —
// stages after the failure are never reported.
func TestStageObserverStopsWithRun(t *testing.T) {
	cat := NewRegistry()
	boom := errors.New("stage exploded")
	if err := cat.Register(Workflow{
		Name: "two-stage", Family: "genomic",
		Stages: []Stage{
			{Name: "ok", Tool: "okTool", Consumes: FASTQ, Produces: BAM},
			{Name: "fail", Tool: "failTool", Consumes: BAM, Produces: VCF},
		},
	}); err != nil {
		t.Fatal(err)
	}
	execs := NewExecutorRegistry()
	_ = execs.Register("okTool", "", executorFunc(func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
		return &Dataset{Type: BAM, Reference: in.Reference}, nil
	}))
	_ = execs.Register("failTool", "", executorFunc(func(ctx context.Context, env *StageEnv, in *Dataset) (*Dataset, error) {
		return nil, boom
	}))
	e := NewEngine(EngineOptions{Catalogue: cat, Executors: execs, Workers: 1})
	var observed []string
	_, err := e.RunByName(context.Background(), "two-stage", synthDataset(t, 2000, 50, 3), RunOptions{
		StageObserver: func(sr StageResult) { observed = append(observed, sr.Stage) },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the stage failure", err)
	}
	if len(observed) != 1 || observed[0] != "ok" {
		t.Fatalf("observed stages = %v, want [ok]", observed)
	}
}
