package workflow

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"scan/internal/align"
	"scan/internal/knowledge"
	"scan/internal/shard"
	"scan/internal/variant"
)

// Engine executes catalogued workflows: it walks a workflow's stage chain,
// binds each stage to a registered StageExecutor, and provides every stage
// with the platform substrate — the Data Broker's shard-size advice, a
// bounded context-aware worker pool, and per-shard run logging back into
// the knowledge base. The engine holds no per-run state and is safe for
// concurrent Run calls.
type Engine struct {
	catalogue      *Registry
	execs          *ExecutorRegistry
	kb             *knowledge.Base
	workers        int
	recordsPerUnit int
}

// EngineOptions configures an Engine.
type EngineOptions struct {
	// Catalogue is the workflow registry RunByName resolves against
	// (default: DefaultCatalogue()).
	Catalogue *Registry
	// Executors binds stage names/tools to implementations
	// (default: DefaultExecutors()).
	Executors *ExecutorRegistry
	// KB is consulted for shard sizing and receives per-shard run logs.
	// With a nil KB, stages that need shard advice fail and no telemetry
	// is recorded.
	KB *knowledge.Base
	// Workers bounds the per-stage worker pool (default: GOMAXPROCS).
	Workers int
	// RecordsPerUnit converts payload records into the knowledge base's
	// abstract input-size units (default 1000).
	RecordsPerUnit int
}

// NewEngine builds an engine.
func NewEngine(opts EngineOptions) *Engine {
	if opts.Catalogue == nil {
		opts.Catalogue = DefaultCatalogue()
	}
	if opts.Executors == nil {
		opts.Executors = DefaultExecutors()
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.RecordsPerUnit <= 0 {
		opts.RecordsPerUnit = 1000
	}
	return &Engine{
		catalogue:      opts.Catalogue,
		execs:          opts.Executors,
		kb:             opts.KB,
		workers:        opts.Workers,
		recordsPerUnit: opts.RecordsPerUnit,
	}
}

// Catalogue returns the registry RunByName resolves workflow names in.
func (e *Engine) Catalogue() *Registry { return e.catalogue }

// Workers returns the bounded pool width.
func (e *Engine) Workers() int { return e.workers }

// RunOptions tunes one workflow execution.
type RunOptions struct {
	// Aligner configures alignment stages (zero value: package defaults).
	Aligner align.Config
	// Caller configures variant-calling stages (zero value: defaults).
	Caller variant.Config
	// ShardRecords overrides the Data Broker's record-shard sizing when
	// positive.
	ShardRecords int
	// Regions is the region-scatter width for coordinate-scattered stages
	// (default: the engine's worker count).
	Regions int
	// MinQual is the VariantFiltration quality floor (default 0: keep
	// every call, matching the caller's own thresholds).
	MinQual float64
	// StageObserver, when non-nil, is invoked synchronously after each
	// stage completes, with that stage's StageResult (name, tool, scatter
	// width, elapsed time, shard plan). It is the engine's progress
	// surface: scand streams these callbacks to API clients as per-stage
	// events. The callback runs on the engine's goroutine, once per stage
	// in catalogue order — pipelined execution preserves the ordering by
	// buffering out-of-order stage completions — so it must not block on
	// the run it is observing.
	StageObserver func(StageResult)
	// ShardObserver, when non-nil, is invoked for every completed shard
	// with the stage's tool name, the records the shard processed and its
	// wall time — the same observation LogShard feeds the knowledge base.
	// It runs on the shard's worker goroutine (local pool or fleet result
	// path), possibly concurrently across shards, so it must be cheap and
	// thread-safe: scand points it at per-family latency histograms.
	ShardObserver func(tool string, records int, elapsed time.Duration)
	// Barrier disables pipelined shard streaming for this run: every stage
	// executes through StageExecutor.Execute with a full barrier between
	// stages (the pre-pipelining engine). This is the reference scheduler
	// the pipelined-vs-barrier equivalence tests and benchmarks compare
	// against.
	Barrier bool
	// RefineScatter lets a pipelined segment cap the Data Broker's advised
	// shard size so the scatter is at least as wide as the worker pool — a
	// stream narrower than the pool would leave workers idle at the
	// segment head with no downstream shards to steal. Off by default so
	// shard plans stay byte-identical to barrier execution; turn it on
	// when pool occupancy matters more than plan parity.
	RefineScatter bool
	// ShardPool, when non-nil, executes streaming stages' shard transforms
	// remotely (the distributed worker fleet, internal/fleet) instead of on
	// the engine's local goroutine pool. Remote execution uses the barrier
	// scheduler — each stage's input materializes before its shards
	// dispatch, so a worker can rebuild the stage's stream from that input
	// alone. The local pool stays the default and the equivalence
	// reference; a pool reporting ErrNoWorkers falls back to it per stage.
	ShardPool ShardPool
}

// PipelineTiming reports how a stage executed inside a pipelined segment;
// zero when the stage ran under the barrier scheduler.
type PipelineTiming struct {
	// Streamed marks stages that ran as part of a pipelined segment.
	Streamed bool
	// FirstShardStart is when the stage's first shard began executing,
	// as an offset from its segment's start — a downstream stage whose
	// offset is below the upstream stage's elapsed time started before
	// its predecessor finished, which is the pipelining win.
	FirstShardStart time.Duration
	// Overlap is the fraction of the stage's active span shared with the
	// previous streaming stage's, in [0, 1]; 0 for segment heads.
	Overlap float64
}

// StageResult reports one executed stage.
type StageResult struct {
	// Stage and Tool identify the catalogue stage that ran.
	Stage string
	Tool  string
	// Shards is the scatter width (0 for unscattered stages).
	Shards int
	// Elapsed is the stage wall-clock time.
	Elapsed time.Duration
	// Plan is the record-shard plan (zero unless the stage scattered by
	// records).
	Plan shard.Plan
	// Advice is the Data Broker recommendation that sized the shards
	// (zero when ShardRecords overrode it or the stage scattered by
	// region).
	Advice knowledge.Advice
	// Records counts the input records the stage processed across its
	// shards (0 for pass-through stages) — the pipelined-vs-barrier
	// equivalence invariant alongside Output.
	Records int
	// Pipeline carries pipelined-execution timings; zero when the stage
	// ran behind a barrier.
	Pipeline PipelineTiming
}

// Result is one workflow execution's outcome.
type Result struct {
	// Workflow is the executed workflow's name.
	Workflow string
	// Output is the final stage's dataset.
	Output *Dataset
	// Stages reports every executed stage in order.
	Stages []StageResult
}

// RecordScatter returns the first stage that scattered by records — the
// fan-out the Data Broker planned — so callers report one canonical shard
// plan regardless of how many stages scattered.
func (r *Result) RecordScatter() (StageResult, bool) {
	for _, sr := range r.Stages {
		if sr.Plan.NumShards > 0 {
			return sr, true
		}
	}
	return StageResult{}, false
}

// Errors returned by the engine.
var (
	ErrTypeMismatch = errors.New("workflow: data type mismatch")
	ErrNoExecutor   = errors.New("workflow: no executor registered")
	ErrNilDataset   = errors.New("workflow: nil dataset")
)

// CanRun reports whether every stage of the workflow has a registered
// executor; the error names the first stage that does not.
func (e *Engine) CanRun(w Workflow) error {
	for _, st := range w.Stages {
		if _, ok := e.execs.Lookup(st.Tool, st.Name); !ok {
			return fmt.Errorf("%w for stage %q (tool %s)", ErrNoExecutor, st.Name, st.Tool)
		}
	}
	return nil
}

// RunByName resolves name in the engine's catalogue and executes it.
func (e *Engine) RunByName(ctx context.Context, name string, in *Dataset, opts RunOptions) (*Result, error) {
	w, err := e.catalogue.Get(name)
	if err != nil {
		return nil, err
	}
	return e.Run(ctx, w, in, opts)
}

// Run drives the dataset through the workflow's stage chain. Each stage's
// input type is checked against the catalogue declaration before its
// executor runs, and the executor's output type afterwards, so a
// mis-registered executor cannot silently corrupt the chain.
//
// Runs of consecutive streaming-capable stages (StreamingExecutor heads,
// PassthroughExecutor riders) execute as pipelined segments — shards flow
// stage to stage without a barrier, scheduled by the Data Broker's cost
// ranks (pipeline.go) — unless opts.Barrier forces whole-stage execution.
// Both schedulers produce identical outputs; see doc.go for the guarantee.
func (e *Engine) Run(ctx context.Context, w Workflow, in *Dataset, opts RunOptions) (*Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	if in == nil {
		return nil, ErrNilDataset
	}
	if in.Type != w.Consumes() {
		return nil, fmt.Errorf("%w: workflow %s consumes %s, dataset is %s",
			ErrTypeMismatch, w.Name, w.Consumes(), in.Type)
	}
	res := &Result{Workflow: w.Name}
	ds := in
	for i := 0; i < len(w.Stages); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st := w.Stages[i]
		exec, ok := e.execs.Lookup(st.Tool, st.Name)
		if !ok {
			return nil, fmt.Errorf("workflow %s: %w for stage %q (tool %s)",
				w.Name, ErrNoExecutor, st.Name, st.Tool)
		}
		if ds.Type != st.Consumes {
			return nil, fmt.Errorf("%w: workflow %s stage %q consumes %s, dataset is %s",
				ErrTypeMismatch, w.Name, st.Name, st.Consumes, ds.Type)
		}
		// A remote ShardPool implies the barrier scheduler: each stage's
		// input must materialize before its shards can ship to workers.
		// Equivalence to pipelined execution holds transitively through
		// the pipelined-vs-barrier contract.
		if !opts.Barrier && opts.ShardPool == nil {
			if seg := e.pipelineSegment(w, i, exec, ds, opts); seg != nil {
				out, err := e.runPipelined(ctx, w, seg, opts, res)
				if err != nil {
					return nil, err
				}
				ds = out
				i = seg.end
				continue
			}
		}
		sr := StageResult{Stage: st.Name, Tool: st.Tool}
		env := &StageEnv{engine: e, stage: st, index: i, opts: opts, result: &sr,
			workflow: w.Name, input: ds}
		start := time.Now()
		out, err := exec.Execute(ctx, env, ds)
		if err != nil {
			return nil, fmt.Errorf("workflow %s: stage %q: %w", w.Name, st.Name, err)
		}
		if out == nil {
			return nil, fmt.Errorf("workflow %s: stage %q: %w from executor",
				w.Name, st.Name, ErrNilDataset)
		}
		if out.Type != st.Produces {
			return nil, fmt.Errorf("%w: workflow %s stage %q produced %s, catalogue declares %s",
				ErrTypeMismatch, w.Name, st.Name, out.Type, st.Produces)
		}
		sr.Elapsed = time.Since(start)
		sr.Records = int(env.records.Load())
		res.Stages = append(res.Stages, sr)
		if opts.StageObserver != nil {
			opts.StageObserver(sr)
		}
		ds = out
		i++
	}
	res.Output = ds
	return res, nil
}

// StageEnv is the engine-provided execution environment handed to a
// StageExecutor for one stage of one run: scatter sizing, the bounded
// worker pool, and knowledge-base telemetry.
type StageEnv struct {
	engine *Engine
	stage  Stage
	index  int
	opts   RunOptions
	result *StageResult
	// pipelined marks envs built for a pipelined segment; RecordShardSize
	// refines the scatter width for pool occupancy when set.
	pipelined bool
	// workflow and input identify the stage for remote dispatch: the
	// workflow name and the stage's materialized input dataset. Set only
	// on the barrier path of Engine.Run (pipelined stages never
	// materialize their inputs, so they cannot dispatch remotely).
	workflow string
	input    *Dataset
	// records accumulates the stage's processed input records across
	// concurrent shards (LogShard adds to it); the engine copies it onto
	// the stage result once the stage completes.
	records atomic.Int64
}

// Options returns the run's tuning options.
func (env *StageEnv) Options() RunOptions { return env.opts }

// Stage returns the catalogue stage being executed.
func (env *StageEnv) Stage() Stage { return env.stage }

// Workers returns the bounded pool width.
func (env *StageEnv) Workers() int { return env.engine.workers }

// RecordShardSize decides how many records each shard of this stage should
// carry: the run's ShardRecords override when set, otherwise the Data
// Broker's knowledge-base advice for an input of total records. In a
// pipelined segment with RunOptions.RefineScatter the advice is
// additionally capped so the scatter is at least as wide as the worker
// pool. The resulting shard plan (and advice, when consulted) is recorded
// on the stage result.
func (env *StageEnv) RecordShardSize(total int) (int, error) {
	per := env.opts.ShardRecords
	if per <= 0 {
		if env.engine.kb == nil {
			return 0, knowledge.ErrNoKnowledge
		}
		units := float64(total) / float64(env.engine.recordsPerUnit)
		adv, err := env.engine.kb.ShardAdvice(units)
		if err != nil {
			return 0, fmt.Errorf("data broker: %w", err)
		}
		env.result.Advice = adv
		per = int(adv.ShardSize * float64(env.engine.recordsPerUnit))
		if per < 1 {
			per = 1
		}
		if env.pipelined && env.opts.RefineScatter && total > 0 {
			if maxPer := (total + env.engine.workers - 1) / env.engine.workers; per > maxPer {
				per = maxPer
			}
		}
	}
	plan, err := shard.PlanByRecords(total, per)
	if err != nil {
		return 0, err
	}
	env.result.Plan = plan
	return per, nil
}

// RegionCount returns the scatter width for coordinate-scattered stages:
// the run's Regions option, defaulting to the worker count.
func (env *StageEnv) RegionCount() int {
	if env.opts.Regions > 0 {
		return env.opts.Regions
	}
	return env.engine.workers
}

// Pool runs fn(0..n-1) on the engine's bounded worker pool and records n
// as the stage's scatter width. A cancelled context stops new shards from
// being queued promptly (acquiring a pool slot selects on ctx.Done), the
// first shard error or the cancellation is returned, and Pool always waits
// for in-flight shards before returning.
func (env *StageEnv) Pool(ctx context.Context, n int, fn func(int) error) error {
	env.result.Shards = n
	if n == 0 {
		return ctx.Err()
	}
	sem := make(chan struct{}, env.engine.workers)
	errCh := make(chan error, n)
	var wg sync.WaitGroup
queue:
	for i := 0; i < n; i++ {
		// Checked before the select: with a free pool slot AND a
		// cancelled context both select cases are ready and Go picks
		// randomly, so the explicit check is what makes the stop
		// deterministic rather than probabilistic.
		if ctx.Err() != nil {
			break
		}
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			break queue // stop queueing; drain in-flight shards below
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errCh <- fn(i)
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// LogShard feeds one shard's observed execution back into the knowledge
// base, keyed by the stage's tool and position in the workflow — the
// feedback loop that grows per-stage performance profiles. Observations go
// through the knowledge base's batched ingestion buffer (LogRunAsync), so
// concurrent shards do not serialize on the graph's write lock; they are
// folded in batches and are guaranteed visible after knowledge.Base.Flush
// or any flushing read (Query, FitStageModel, Export). Telemetry must
// never fail an analysis, so errors (and a nil knowledge base) are
// ignored.
func (env *StageEnv) LogShard(records int, elapsed time.Duration) {
	env.records.Add(int64(records))
	if env.opts.ShardObserver != nil {
		env.opts.ShardObserver(env.stage.Tool, records, elapsed)
	}
	if env.engine.kb == nil {
		return
	}
	_ = env.engine.kb.LogRunAsync(knowledge.RunLog{
		App:       env.stage.Tool,
		Stage:     env.index,
		InputSize: float64(records) / float64(env.engine.recordsPerUnit),
		Threads:   1,
		ETime:     elapsed.Seconds(),
	})
}

// Workflow returns the running workflow's name ("" outside Engine.Run's
// barrier path — a ShardPool must not dispatch such envs).
func (env *StageEnv) Workflow() string { return env.workflow }

// StageIndex returns the stage's position in the workflow chain.
func (env *StageEnv) StageIndex() int { return env.index }

// Input returns the stage's materialized input dataset (nil outside the
// barrier path).
func (env *StageEnv) Input() *Dataset { return env.input }

// remoteable reports whether this env's stage may dispatch to a remote
// shard pool: the stage must come from Engine.Run's barrier path (so its
// input is materialized and addressable) and not be part of a pipelined
// segment.
func (env *StageEnv) remoteable() bool {
	return !env.pipelined && env.workflow != "" && env.input != nil
}

// RemoteOptions pins the run options a remote worker needs to rebuild this
// stage's stream deterministically without a knowledge base: the shard
// plan the coordinator's Split already decided (so the worker's Split
// produces byte-identical shards without consulting the Data Broker) and
// the region-scatter width resolved against the coordinator's pool.
// Scheduling-only fields (ShardPool, StageObserver, Barrier) are dropped.
func (env *StageEnv) RemoteOptions() RunOptions {
	opts := RunOptions{
		Aligner:      env.opts.Aligner,
		Caller:       env.opts.Caller,
		ShardRecords: env.opts.ShardRecords,
		Regions:      env.RegionCount(),
		MinQual:      env.opts.MinQual,
	}
	if env.result.Plan.NumShards > 0 {
		opts.ShardRecords = env.result.Plan.RecordsPerShard
	}
	return opts
}

// EstimateShardCost predicts one shard's serial execution time in seconds
// from the Data Broker's fitted model for this (tool, stage) pair — the
// fleet coordinator's input to its hire economics. Returns fallback when
// the KB is nil or cannot regress the stage yet.
func (env *StageEnv) EstimateShardCost(records int, fallback float64) float64 {
	if env.engine.kb == nil {
		return fallback
	}
	units := float64(records) / float64(env.engine.recordsPerUnit)
	est, err := env.engine.kb.EstimateStageCost(env.stage.Tool, env.index, units)
	if err != nil || est.Seconds <= 0 {
		return fallback
	}
	return est.Seconds
}
