package workflow

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"scan/internal/imaging"
	"scan/internal/knowledge"
	"scan/internal/network"
	"scan/internal/proteome"
)

func mgfDataset(t testing.TB, proteins, spectra int, seed int64) *Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := proteome.GenerateDatabase(rng, proteins, 3)
	sp, _, err := proteome.SimulateSpectra(rng, db, proteome.SimConfig{
		Count: spectra, NoisePeaks: 3, DropoutRate: 0.1, Jitter: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return NewMGFDataset(db, sp)
}

func tiffDataset(t testing.TB, images, cells int, seed int64) (*Dataset, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	frames := make([]imaging.Image, 0, images)
	planted := 0
	for i := 0; i < images; i++ {
		im, cs, err := imaging.Generate(rng, fmt.Sprintf("img%d", i), imaging.SimConfig{W: 96, H: 96, Cells: cells})
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, im)
		planted += len(cs)
	}
	return NewTIFFDataset(frames), planted
}

func featureDataset(t testing.TB, genes, modules int, seed int64) *Dataset {
	t.Helper()
	ms, _, err := network.SimulateMeasurements(rand.New(rand.NewSource(seed)), genes, modules)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]Feature, len(ms))
	for i, m := range ms {
		features[i] = Feature{Name: m.Name, Count: 1, Value: m.Value}
	}
	return NewFeatureDataset(features)
}

// runLogCount queries the KB for RunLog individuals of one tool at one
// stage position — the per-family telemetry the executors must leave
// behind.
func runLogCount(t testing.TB, kb *knowledge.Base, app string, stage int) int {
	t.Helper()
	res, err := kb.Query(fmt.Sprintf(`
PREFIX scan: <%s>
SELECT ?run WHERE {
  ?run a scan:RunLog ;
       scan:application scan:%s ;
       scan:stage %d .
}`, knowledge.NS, app, stage))
	if err != nil {
		t.Fatal(err)
	}
	return res.Len()
}

func TestProteomeWorkflowsEndToEnd(t *testing.T) {
	for _, tc := range []struct {
		workflow, stage, tool string
		quantified            bool
	}{
		{"proteome-maxquant", "Quantify", "MaxQuant", true},
		{"proteome-gpm", "Search", "GPM", false},
	} {
		kb := seededKB(t)
		e := NewEngine(EngineOptions{KB: kb, Workers: 4})
		ds := mgfDataset(t, 20, 400, 17)
		res, err := e.RunByName(context.Background(), tc.workflow, ds, RunOptions{ShardRecords: 100})
		if err != nil {
			t.Fatalf("%s: %v", tc.workflow, err)
		}
		out := res.Output
		if out.Type != ProteinTable {
			t.Fatalf("%s: output type = %s", tc.workflow, out.Type)
		}
		// 400 spectra over 20 proteins: every protein collects evidence.
		if len(out.Proteins) != 20 {
			t.Fatalf("%s: %d proteins quantified, want 20", tc.workflow, len(out.Proteins))
		}
		totalSpectra := 0
		for _, p := range out.Proteins {
			totalSpectra += p.Spectra
			if p.Peptides < 1 {
				t.Fatalf("%s: protein %s with no peptide evidence", tc.workflow, p.Protein)
			}
			if tc.quantified && p.Abundance <= 0 {
				t.Fatalf("%s: protein %s not quantified", tc.workflow, p.Protein)
			}
			if !tc.quantified && p.Abundance != 0 {
				t.Fatalf("%s: search-only run carries abundance %v", tc.workflow, p.Abundance)
			}
		}
		if totalSpectra < 380 { // ≥95% of spectra assign to their source peptide
			t.Fatalf("%s: only %d/400 spectra matched", tc.workflow, totalSpectra)
		}
		// The raw spectra are released once consumed, like FASTQ reads.
		if out.Spectra != nil {
			t.Fatalf("%s: consumed spectra not released", tc.workflow)
		}
		// Spectrum-shard scatter: 400 spectra at 100/shard = 4 shards, each
		// logging telemetry under the family's tool name.
		if len(res.Stages) != 1 || res.Stages[0].Stage != tc.stage || res.Stages[0].Shards != 4 {
			t.Fatalf("%s: stages = %+v", tc.workflow, res.Stages)
		}
		if got := runLogCount(t, kb, tc.tool, 0); got != 4 {
			t.Fatalf("%s: %d %s run logs, want 4", tc.workflow, got, tc.tool)
		}
	}
}

func TestImagingWorkflowEndToEnd(t *testing.T) {
	kb := seededKB(t)
	e := NewEngine(EngineOptions{KB: kb, Workers: 4})
	ds, planted := tiffDataset(t, 3, 5, 23)
	res, err := e.RunByName(context.Background(), "cell-imaging", ds, RunOptions{Regions: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output
	if out.Type != FeatureTable {
		t.Fatalf("output type = %s", out.Type)
	}
	// Tile-overlap segmentation recovers exactly the planted cells: no
	// double counting across tile boundaries, no misses.
	if len(out.Features) != planted {
		t.Fatalf("features = %d, want %d planted cells", len(out.Features), planted)
	}
	for _, f := range out.Features {
		if f.Count < 9 || f.Value < 0.7 {
			t.Fatalf("implausible cell feature %+v", f)
		}
	}
	if out.Images != nil {
		t.Fatal("consumed images not released")
	}
	// 3 images × 4 tiles each = 12 scatter units.
	if len(res.Stages) != 1 || res.Stages[0].Shards != 12 {
		t.Fatalf("stages = %+v", res.Stages)
	}
	if got := runLogCount(t, kb, "CellProfiler", 0); got != 12 {
		t.Fatalf("%d CellProfiler run logs, want 12", got)
	}
}

func TestNetworkWorkflowEndToEnd(t *testing.T) {
	kb := seededKB(t)
	e := NewEngine(EngineOptions{KB: kb, Workers: 4})
	ds := featureDataset(t, 60, 4, 29)
	res, err := e.RunByName(context.Background(), "integrative-network", ds, RunOptions{ShardRecords: 20})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output
	if out.Type != Network || out.Net == nil {
		t.Fatalf("output = %s, net = %v", out.Type, out.Net)
	}
	if len(out.Net.Nodes) != 60 || len(out.Net.Edges) == 0 {
		t.Fatalf("network = %d nodes, %d edges", len(out.Net.Nodes), len(out.Net.Edges))
	}
	// Partitioned edge construction recovers the planted module structure.
	if len(out.Net.Modules) != 4 {
		t.Fatalf("modules = %d, want 4 planted", len(out.Net.Modules))
	}
	covered := 0
	for _, m := range out.Net.Modules {
		covered += len(m)
	}
	if covered != 60 {
		t.Fatalf("modules cover %d nodes, want 60", covered)
	}
	// 60 nodes at 20/partition = 3 graph partitions.
	if len(res.Stages) != 1 || res.Stages[0].Shards != 3 {
		t.Fatalf("stages = %+v", res.Stages)
	}
	if got := runLogCount(t, kb, "Cytoscape", 0); got != 3 {
		t.Fatalf("%d Cytoscape run logs, want 3", got)
	}
}

// TestExpressionFeedsIntegration chains two families: the rna-expression
// FeatureTable output is a valid integrative-network input, so multi-omics
// pipelines compose through the catalogue's shared data types.
func TestExpressionFeedsIntegration(t *testing.T) {
	e := testEngine(t, 4)
	ds := synthDataset(t, 8000, 2000, 31)
	expr, err := e.RunByName(context.Background(), "rna-expression", ds, RunOptions{Regions: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunByName(context.Background(), "integrative-network",
		NewFeatureDataset(expr.Output.Features), RunOptions{ShardRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Type != Network || len(res.Output.Net.Nodes) != 6 {
		t.Fatalf("chained output = %+v", res.Output)
	}
}

// TestProteomeAdviceFromBroker: with no ShardRecords override, the
// proteomic scatter consults the Data Broker exactly like the genomic
// aligner — the shard plan and advice land on the stage result.
func TestProteomeAdviceFromBroker(t *testing.T) {
	e := testEngine(t, 2)
	ds := mgfDataset(t, 10, 200, 41)
	res, err := e.RunByName(context.Background(), "proteome-maxquant", ds, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sr, ok := res.RecordScatter()
	if !ok {
		t.Fatal("no record scatter recorded")
	}
	if sr.Advice.BasedOn == "" || sr.Plan.NumShards < 1 {
		t.Fatalf("scatter = %+v", sr)
	}
}
