package workflow

import (
	"context"
	"errors"
	"time"
)

// ErrNoWorkers is returned by a ShardPool that currently has no remote
// capacity. The engine treats it as "run this stage on the local pool
// instead" rather than failing the stage, so a coordinator with an empty
// roster degrades to exactly the single-process behavior.
var ErrNoWorkers = errors.New("workflow: shard pool has no workers")

// ShardPool executes one streaming stage's shard transforms on behalf of
// the engine — the seam a distributed worker fleet (internal/fleet) plugs
// into via RunOptions.ShardPool. The engine Splits the stage locally and
// hands the pool the resulting shards; implementations must return outs
// indexed 1:1 with shards, call env.LogShard exactly once per completed
// shard with the remotely observed execution time (so fleet runs feed the
// same Data Broker telemetry as local ones), and honor ctx cancellation.
// Returning an error wrapping ErrNoWorkers makes the engine fall back to
// the local pool for this stage; any other error fails the stage.
//
// Remote and local shard pools share one executor path: a pool executes
// the same StageStream transforms runStreamBarrier would (a worker
// rebuilds the stream via Engine.RunStageShard from the stage's input and
// pinned options) — there is no separate remote Execute.
type ShardPool interface {
	RunShards(ctx context.Context, env *StageEnv, shards []StreamShard) ([]StreamShard, error)
}

// StreamShard is one unit of data flowing through a pipelined segment: a
// stage-specific payload plus the record count the engine uses for shard
// telemetry and cost estimation.
type StreamShard struct {
	// Records counts the payload's records (reads, spectra, alignments ...).
	Records int
	// Data is the stage-specific payload. A stage's Transform receives the
	// upstream stage's output Data, so adjacent streaming stages agree on
	// the concrete type between them.
	Data any
}

// StreamingExecutor is the optional StageExecutor extension that lets a
// stage participate in pipelined shard streaming: instead of materializing
// its whole output behind a barrier, the stage exposes per-shard transforms
// the engine can overlap with its neighbours'. Executors that do not
// implement it keep working unchanged — the engine simply barriers at them.
type StreamingExecutor interface {
	StageExecutor
	// Stream prepares one run's stream over a pipelined segment. in is the
	// SEGMENT's input dataset — for the segment's first stage that is the
	// stage's own input, but a downstream stage sees the dataset as it was
	// before the segment started (its own input never materializes), so a
	// stream must draw configuration from the context fields that
	// accumulate on the dataset (Reference, PeptideDB, ...), never from the
	// flowing payload fields. ok=false (or an error) declines streaming for
	// this input; the engine falls back to Execute, where any setup error
	// surfaces identically.
	Stream(env *StageEnv, in *Dataset) (st StageStream, ok bool, err error)
}

// StageStream is one stage's view of a pipelined segment: a scatter, a
// per-shard transform, and a gather. The engine calls Split only on the
// segment's first stage and Gather only on its last; intermediate stages
// see shards exclusively through Transform, indexed 1:1 with the head's
// scatter.
type StageStream interface {
	// Split scatters the stage's input into shards. Implementations size
	// record scatters through env.RecordShardSize, so the Data Broker's
	// plan and advice land on the stage result exactly as in barrier mode.
	Split() ([]StreamShard, error)
	// Transform processes shard i. Concurrent calls with distinct i must
	// be safe; the engine times each call and logs it as the stage's shard
	// telemetry, so implementations must not call env.LogShard themselves.
	// Long per-record loops must poll ctx periodically so a cancellation
	// stops mid-shard, not only between shards.
	Transform(ctx context.Context, i int, in StreamShard) (StreamShard, error)
	// Gather assembles the stage's output shards (indexed by shard, all
	// present) into its output dataset. The merge must be deterministic in
	// the shard index order so pipelined and barrier execution produce
	// identical outputs.
	Gather(shards []StreamShard) (*Dataset, error)
}

// PassthroughExecutor marks executors that return their input dataset
// unchanged (the GATK refinement stages). Inside a pipelined segment the
// engine lets shard streams flow straight through such stages — their
// stage results still appear, in order, with zero scatter.
type PassthroughExecutor interface {
	StageExecutor
	// StreamPassthrough is a marker method; implementations do nothing.
	StreamPassthrough()
}

// runStreamBarrier executes a stage stream under the stage-local pool:
// split, transform every shard, gather. Streaming executors implement
// Execute with it so the barrier path and the pipelined path share one
// per-shard implementation and cannot diverge. When the run carries a
// remote ShardPool the transforms dispatch through it instead — same
// Split, same Gather, same telemetry — with a per-stage fallback to the
// local pool when the fleet has no capacity.
func runStreamBarrier(ctx context.Context, env *StageEnv, st StageStream) (*Dataset, error) {
	shards, err := st.Split()
	if err != nil {
		return nil, err
	}
	if pool := env.opts.ShardPool; pool != nil && env.remoteable() {
		outs, rerr := pool.RunShards(ctx, env, shards)
		if rerr == nil {
			env.result.Shards = len(shards)
			return st.Gather(outs)
		}
		if !errors.Is(rerr, ErrNoWorkers) {
			return nil, rerr
		}
		// No remote capacity right now: run this stage on the local pool.
	}
	outs := make([]StreamShard, len(shards))
	err = env.Pool(ctx, len(shards), func(i int) error {
		start := time.Now()
		out, err := st.Transform(ctx, i, shards[i])
		if err != nil {
			return err
		}
		env.LogShard(shards[i].Records, time.Since(start))
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return st.Gather(outs)
}
