package workflow

import (
	"strings"
	"testing"

	"scan/internal/knowledge"
)

func TestDefaultCatalogue(t *testing.T) {
	r := DefaultCatalogue()
	// The paper: "we have defined over 10 different genome analysis
	// workflows".
	if r.Len() < 11 {
		t.Fatalf("catalogue has %d workflows, want >= 11", r.Len())
	}
	for _, name := range r.Names() {
		w, err := r.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// All four Figure 1 families present.
	families := map[string]bool{}
	for _, name := range r.Names() {
		w, _ := r.Get(name)
		families[w.Family] = true
	}
	for _, f := range []string{"genomic", "proteomic", "imaging", "integrative"} {
		if !families[f] {
			t.Errorf("family %q missing from the catalogue", f)
		}
	}
}

func TestVariantDetectionShape(t *testing.T) {
	r := DefaultCatalogue()
	w, err := r.Get("dna-variant-detection")
	if err != nil {
		t.Fatal(err)
	}
	// BWA alignment + the paper's 7-stage GATK pipeline.
	if len(w.Stages) != 8 {
		t.Fatalf("stages = %d, want 8", len(w.Stages))
	}
	if w.Consumes() != FASTQ || w.Produces() != VCF {
		t.Fatalf("types = %s -> %s", w.Consumes(), w.Produces())
	}
	if w.Stages[0].Tool != "BWA" || w.Stages[1].Tool != "GATK" {
		t.Fatalf("tools = %s, %s", w.Stages[0].Tool, w.Stages[1].Tool)
	}
	// The final filtration stage is the nearly-serial one (c=0.02) and is
	// not shardable.
	last := w.Stages[len(w.Stages)-1]
	if last.Parallelizable {
		t.Fatal("VariantFiltration should not be marked parallelizable")
	}
}

func TestValidateCatchesTypeMismatch(t *testing.T) {
	w := Workflow{
		Name: "broken",
		Stages: []Stage{
			{Name: "a", Tool: "x", Consumes: FASTQ, Produces: BAM},
			{Name: "b", Tool: "y", Consumes: VCF, Produces: VCF},
		},
	}
	if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "consumes") {
		t.Fatalf("err = %v", err)
	}
	if err := (Workflow{Name: "empty"}).Validate(); err != ErrEmptyWorkflow {
		t.Fatalf("err = %v", err)
	}
	if err := (Workflow{Stages: []Stage{{Name: "a", Tool: "t", Consumes: FASTQ, Produces: BAM}}}).Validate(); err == nil {
		t.Fatal("unnamed workflow accepted")
	}
}

func TestRegistryOperations(t *testing.T) {
	r := NewRegistry()
	w := Workflow{
		Name:   "test",
		Family: "genomic",
		Stages: []Stage{{Name: "a", Tool: "t", Consumes: FASTQ, Produces: BAM}},
	}
	if err := r.Register(w); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(w); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if _, err := r.Get("nope"); err == nil {
		t.Fatal("unknown lookup succeeded")
	}
}

func TestForInput(t *testing.T) {
	r := DefaultCatalogue()
	fastqWorkflows := r.ForInput(FASTQ)
	if len(fastqWorkflows) < 5 {
		t.Fatalf("only %d FASTQ workflows", len(fastqWorkflows))
	}
	mgf := r.ForInput(MGF)
	if len(mgf) != 2 {
		t.Fatalf("MGF workflows = %d, want 2 (MaxQuant + GPM)", len(mgf))
	}
	if len(r.ForInput("bogus")) != 0 {
		t.Fatal("bogus data type matched workflows")
	}
}

func TestExportToKnowledgeBase(t *testing.T) {
	kb := knowledge.New()
	r := DefaultCatalogue()
	if err := r.ExportTo(kb); err != nil {
		t.Fatal(err)
	}
	names, err := kb.Workflows()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != r.Len() {
		t.Fatalf("KB has %d workflows, registry has %d", len(names), r.Len())
	}
	// The linker query works against exported workflows too.
	wfs, err := kb.PipelineForData("MGF")
	if err != nil {
		t.Fatal(err)
	}
	if len(wfs) != 2 {
		t.Fatalf("MGF consumers in KB = %v", wfs)
	}
	// GenomeAnalysis individuals are subclass-visible as Applications.
	res, err := kb.Query(`
PREFIX scan: <` + knowledge.NS + `>
SELECT ?wf ?steps WHERE {
  ?wf a scan:GenomeAnalysis ;
      scan:steps ?steps .
  FILTER (?steps >= 8)
}`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 { // the three 8-stage variant pipelines
		t.Fatalf("8-stage workflows = %d, want 3", res.Len())
	}
}
