package workflow

// The fleet wire codec: gob encodings for the two payload kinds that cross
// the coordinator/worker boundary (internal/fleet). Context datasets ship
// whole — content-addressed by SHA-256 of these bytes, so workers cache
// them — and shard outputs ship per task. gob is deterministic for the
// platform's payload types (exported fields, no maps), which is what makes
// "equal datasets encode to equal bytes" hold for the content-hash data
// plane, and what the distributed-vs-local equivalence tests compare.
//
// Every stage payload that can appear in a StreamShard's Data must be
// registered here; forgetting one fails the first remote dispatch loudly
// with a gob "type not registered" error, never silently.

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"scan/internal/genomics"
	"scan/internal/imaging"
	"scan/internal/network"
	"scan/internal/proteome"
)

func init() {
	// Shard inputs: record chunks and re-scatter descriptors.
	gob.Register([]genomics.Read(nil))
	gob.Register([]genomics.Alignment(nil))
	gob.Register([]proteome.Spectrum(nil))
	gob.Register(TileShard{})
	gob.Register(NodeRange{})
	// Shard outputs, one per streaming family.
	gob.Register(AlignedShard{})
	gob.Register([]genomics.Variant(nil))
	gob.Register(Feature{})
	gob.Register([]proteome.Match(nil))
	gob.Register([]imaging.Region(nil))
	gob.Register([]network.Edge(nil))
}

// EncodeDataset serializes a dataset for the fleet data plane. Equal
// datasets produce equal bytes, so SHA-256 of the encoding is a stable
// content address.
func EncodeDataset(d *Dataset) ([]byte, error) {
	if d == nil {
		return nil, ErrNilDataset
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d); err != nil {
		return nil, fmt.Errorf("workflow: encode dataset: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeDataset reverses EncodeDataset.
func DecodeDataset(b []byte) (*Dataset, error) {
	d := new(Dataset)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(d); err != nil {
		return nil, fmt.Errorf("workflow: decode dataset: %w", err)
	}
	return d, nil
}

// EncodeShard serializes one stream shard (a worker's task output, or an
// inline task input).
func EncodeShard(s StreamShard) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&s); err != nil {
		return nil, fmt.Errorf("workflow: encode shard: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeShard reverses EncodeShard.
func DecodeShard(b []byte) (StreamShard, error) {
	var s StreamShard
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&s); err != nil {
		return StreamShard{}, fmt.Errorf("workflow: decode shard: %w", err)
	}
	return s, nil
}
