package workflow

import (
	"fmt"

	"scan/internal/genomics"
	"scan/internal/imaging"
	"scan/internal/network"
	"scan/internal/proteome"
)

// Dataset is the typed payload the engine drives through a workflow's stage
// chain — one struct spanning all four data-process families, so any
// catalogued workflow runs through the same engine. Type names the format
// of the *current* payload (matching the stage's Consumes/Produces
// declaration); downstream fields accumulate: a stage that turns alignments
// into variant calls keeps the alignments it consumed, so the workflow's
// final output still carries the derived artifacts a caller may want (the
// SAM records behind a VCF, say). The exception is the raw input payload —
// Reads, Spectra, Images — which the consuming stage releases: it is the
// caller's own input and dominates the payload's memory.
type Dataset struct {
	// Type is the data type of the current payload.
	Type DataType
	// Reference is the genome the payload is expressed against; executors
	// for alignment and calling stages require it.
	Reference genomics.Sequence
	// Header is the SAM header (populated once reads are aligned).
	Header genomics.Header
	// PeptideDB is the reference peptide index MGF spectra are searched
	// against; proteomic stages require it.
	PeptideDB proteome.Database

	// Reads is the FASTQ payload.
	Reads []genomics.Read
	// Alignments is the BAM payload (coordinate-sorted).
	Alignments []genomics.Alignment
	// Mapped counts the alignments that mapped.
	Mapped int
	// Variants is the VCF payload (sorted, deduplicated).
	Variants []genomics.Variant
	// Features is the FeatureTable payload.
	Features []Feature
	// Spectra is the MGF payload.
	Spectra []proteome.Spectrum
	// Proteins is the ProteinTable payload (sorted by protein name).
	Proteins []proteome.ProteinQuant
	// Images is the TIFF payload.
	Images []imaging.Image
	// Net is the Network payload.
	Net *network.Network
}

// Feature is one row of a FeatureTable payload: a quantified signal over a
// reference interval (per-region expression, image phenotypes, ...).
type Feature struct {
	// Name identifies the feature, e.g. "chr1:1-2500".
	Name string
	// Start and End bound the interval (1-based inclusive) when the
	// feature is positional; zero otherwise.
	Start, End int
	// Count is the number of records supporting the feature.
	Count int
	// Value is the quantified signal (mean coverage for expression).
	Value float64
}

// Records returns the number of records in the current payload — the unit
// the Data Broker's shard-size advice applies to.
func (d *Dataset) Records() int {
	switch d.Type {
	case FASTQ:
		return len(d.Reads)
	case BAM:
		return len(d.Alignments)
	case VCF:
		return len(d.Variants)
	case FeatureTable:
		return len(d.Features)
	case MGF:
		return len(d.Spectra)
	case ProteinTable:
		return len(d.Proteins)
	case TIFF:
		return len(d.Images)
	case Network:
		if d.Net == nil {
			return 0
		}
		return len(d.Net.Nodes)
	default:
		return 0
	}
}

// NewFASTQDataset wraps simulated or parsed reads as a workflow input.
func NewFASTQDataset(ref genomics.Sequence, reads []genomics.Read) *Dataset {
	return &Dataset{Type: FASTQ, Reference: ref, Reads: reads}
}

// NewVCFDataset wraps variant calls as a workflow input (gather workflows
// such as variants-to-vcf).
func NewVCFDataset(ref genomics.Sequence, variants []genomics.Variant) *Dataset {
	return &Dataset{Type: VCF, Reference: ref, Variants: variants}
}

// NewMGFDataset wraps MS/MS spectra and their reference peptide database as
// a proteomic workflow input.
func NewMGFDataset(db proteome.Database, spectra []proteome.Spectrum) *Dataset {
	return &Dataset{Type: MGF, PeptideDB: db, Spectra: spectra}
}

// NewTIFFDataset wraps microscopy frames as an imaging workflow input.
func NewTIFFDataset(images []imaging.Image) *Dataset {
	return &Dataset{Type: TIFF, Images: images}
}

// NewFeatureDataset wraps a feature table as an integrative workflow input
// (gene-level measurements feeding network construction).
func NewFeatureDataset(features []Feature) *Dataset {
	return &Dataset{Type: FeatureTable, Features: features}
}

// String renders a short payload summary for logs.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s[%d records]", d.Type, d.Records())
}
