package workflow

import (
	"fmt"

	"scan/internal/genomics"
)

// Dataset is the typed payload the engine drives through a workflow's stage
// chain. Type names the format of the *current* payload (matching the
// stage's Consumes/Produces declaration); downstream fields accumulate: a
// stage that turns alignments into variant calls keeps the alignments it
// consumed, so the workflow's final output still carries the derived
// artifacts a caller may want (the SAM records behind a VCF, say). The one
// exception is raw Reads, which alignment stages release once consumed —
// they are the caller's own input and dominate the payload's memory.
type Dataset struct {
	// Type is the data type of the current payload.
	Type DataType
	// Reference is the genome the payload is expressed against; executors
	// for alignment and calling stages require it.
	Reference genomics.Sequence
	// Header is the SAM header (populated once reads are aligned).
	Header genomics.Header

	// Reads is the FASTQ payload.
	Reads []genomics.Read
	// Alignments is the BAM payload (coordinate-sorted).
	Alignments []genomics.Alignment
	// Mapped counts the alignments that mapped.
	Mapped int
	// Variants is the VCF payload (sorted, deduplicated).
	Variants []genomics.Variant
	// Features is the FeatureTable payload.
	Features []Feature
}

// Feature is one row of a FeatureTable payload: a quantified signal over a
// reference interval (per-region expression, image phenotypes, ...).
type Feature struct {
	// Name identifies the feature, e.g. "chr1:1-2500".
	Name string
	// Start and End bound the interval (1-based inclusive) when the
	// feature is positional; zero otherwise.
	Start, End int
	// Count is the number of records supporting the feature.
	Count int
	// Value is the quantified signal (mean coverage for expression).
	Value float64
}

// Records returns the number of records in the current payload — the unit
// the Data Broker's shard-size advice applies to.
func (d *Dataset) Records() int {
	switch d.Type {
	case FASTQ:
		return len(d.Reads)
	case BAM:
		return len(d.Alignments)
	case VCF:
		return len(d.Variants)
	case FeatureTable:
		return len(d.Features)
	default:
		return 0
	}
}

// NewFASTQDataset wraps simulated or parsed reads as a workflow input.
func NewFASTQDataset(ref genomics.Sequence, reads []genomics.Read) *Dataset {
	return &Dataset{Type: FASTQ, Reference: ref, Reads: reads}
}

// NewVCFDataset wraps variant calls as a workflow input (gather workflows
// such as variants-to-vcf).
func NewVCFDataset(ref genomics.Sequence, variants []genomics.Variant) *Dataset {
	return &Dataset{Type: VCF, Reference: ref, Variants: variants}
}

// String renders a short payload summary for logs.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s[%d records]", d.Type, d.Records())
}
