package sim

import (
	"hash/fnv"
	"math/rand"
)

// Streams derives independent, named random streams from a master seed.
// Each simulation subsystem (arrivals, job sizes, service noise, ...) pulls
// its own stream so that changing how one subsystem consumes randomness
// does not perturb the others — a standard variance-reduction practice for
// comparing scheduling policies on common random numbers.
type Streams struct {
	seed int64
}

// NewStreams returns a stream factory rooted at seed.
func NewStreams(seed int64) *Streams {
	return &Streams{seed: seed}
}

// Seed returns the master seed.
func (s *Streams) Seed() int64 { return s.seed }

// Stream returns a deterministic *rand.Rand for the given label. Calling
// Stream twice with the same label yields two generators with identical
// sequences.
func (s *Streams) Stream(label string) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(label))
	sub := int64(h.Sum64() ^ (uint64(s.seed) * 0x9e3779b97f4a7c15))
	return rand.New(rand.NewSource(sub))
}
