package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.Run()
	if !sort.Float64sAreSorted(got) {
		t.Fatalf("events out of order: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("expected 5 events, got %d", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want 5", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(1.0, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-break order broken at %d: %v", i, got)
		}
	}
}

func TestEngineAfterUsesCurrentTime(t *testing.T) {
	e := NewEngine()
	var fired float64
	e.Schedule(2, func() {
		e.After(3, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 5 {
		t.Fatalf("After fired at %v, want 5", fired)
	}
}

func TestEngineSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(5, func() {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.Schedule(1, func() {})
}

func TestEngineNegativeDelayPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	e.After(-1, func() {})
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.Schedule(1, func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
	if e.Fired() != 0 {
		t.Fatalf("fired = %d, want 0", e.Fired())
	}
}

func TestEngineCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var got []string
	e.Schedule(1, func() { got = append(got, "a") })
	b := e.Schedule(2, func() { got = append(got, "b") })
	e.Schedule(3, func() { got = append(got, "c") })
	b.Cancel()
	e.Run()
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("got %v, want [a c]", got)
	}
}

func TestEngineRunUntilLeavesLaterEvents(t *testing.T) {
	e := NewEngine()
	var got []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		e.Schedule(at, func() { got = append(got, at) })
	}
	e.RunUntil(5)
	if len(got) != 3 {
		t.Fatalf("ran %d events, want 3", len(got))
	}
	if e.Now() != 5 {
		t.Fatalf("clock = %v, want deadline 5", e.Now())
	}
	e.Run()
	if len(got) != 4 {
		t.Fatalf("remaining event did not run: %v", got)
	}
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(1, func() { count++; e.Halt() })
	e.Schedule(2, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("halt did not stop the run: count=%d", count)
	}
	e.Run() // resumes
	if count != 2 {
		t.Fatalf("resume failed: count=%d", count)
	}
}

func TestEngineReentrantScheduling(t *testing.T) {
	// An event scheduling another event at the same timestamp must still
	// run within the same Run call, after the current event.
	e := NewEngine()
	var got []string
	e.Schedule(1, func() {
		got = append(got, "first")
		e.Schedule(1, func() { got = append(got, "second") })
	})
	e.Run()
	if len(got) != 2 || got[1] != "second" {
		t.Fatalf("got %v", got)
	}
}

// Property: for any set of (time, id) pairs, execution order is sorted by
// time with ties broken by insertion order.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		e := NewEngine()
		type rec struct {
			at  float64
			seq int
		}
		var got []rec
		for i, r := range raw {
			at := float64(r % 97)
			i := i
			e.Schedule(at, func() { got = append(got, rec{at, i}) })
		}
		e.Run()
		if len(got) != len(raw) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].at < got[i-1].at {
				return false
			}
			if got[i].at == got[i-1].at && got[i].seq < got[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamsDeterministic(t *testing.T) {
	a := NewStreams(42).Stream("arrivals")
	b := NewStreams(42).Stream("arrivals")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed+label produced different sequences")
		}
	}
}

func TestStreamsIndependentLabels(t *testing.T) {
	s := NewStreams(42)
	a := s.Stream("arrivals")
	b := s.Stream("sizes")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams for different labels look correlated (%d/64 equal)", same)
	}
}

func TestStreamsSeedSensitivity(t *testing.T) {
	a := NewStreams(1).Stream("x")
	b := NewStreams(2).Stream("x")
	if a.Int63() == b.Int63() && a.Int63() == b.Int63() {
		t.Fatal("different seeds produced identical streams")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for _, at := range times {
			e.Schedule(at, func() {})
		}
		e.Run()
	}
}
