// Package sim implements the discrete-event simulation engine underneath
// SCAN's evaluation. Time is measured in abstract time units (TU); the
// paper's mapping is 1 TU = 60 s of wall-clock time, so the 30 s worker
// startup penalty is 0.5 TU.
//
// The engine is deliberately single-threaded: events execute in strictly
// nondecreasing time order with FIFO tie-breaking, which keeps every
// simulation run bit-for-bit reproducible under a fixed RNG seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Event is a handle to a scheduled callback. Cancelling an Event is O(1);
// the engine drops cancelled events lazily when they reach the head of the
// queue.
type Event struct {
	at        float64
	seq       uint64
	fn        func()
	cancelled bool
	index     int // heap index, -1 once popped
}

// Time returns the simulation time at which the event fires.
func (e *Event) Time() float64 { return e.at }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel prevents the event's callback from running. Cancelling an already
// executed or already cancelled event is a no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Engine is a discrete-event scheduler. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now    float64
	seq    uint64
	queue  eventQueue
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() float64 { return e.now }

// Fired returns the number of events executed so far (cancelled events are
// not counted).
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of scheduled (possibly cancelled) events.
func (e *Engine) Pending() int { return e.queue.Len() }

// Schedule registers fn to run at absolute time at. Scheduling in the past
// panics: it is always a bug in the model, and silently reordering time
// would invalidate the run.
func (e *Engine) Schedule(at float64, fn func()) *Event {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After registers fn to run d time units from now.
func (e *Engine) After(d float64, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the next pending event, advancing the clock to its
// timestamp. It returns false when no events remain.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil executes events until the queue is exhausted, the engine is
// halted, or the next event would fire after deadline. The clock is left at
// min(deadline, time of last executed event); events beyond the deadline
// remain queued.
func (e *Engine) RunUntil(deadline float64) {
	e.halted = false
	for !e.halted {
		ev := e.peek()
		if ev == nil || ev.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Run executes events until the queue is exhausted or the engine is halted.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// peek returns the next non-cancelled event without executing it, dropping
// cancelled entries along the way.
func (e *Engine) peek() *Event {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

// eventQueue is a min-heap ordered by (time, sequence number) so that events
// scheduled for the same instant run in scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
