package benchguard

import (
	"os"
	"path/filepath"
	"testing"
)

func report(entries ...Entry) Report { return Report{Trajectory: entries} }

func baselineFixture() Report {
	return report(
		Entry{Name: "advice/cached/10000runs", NsPerOp: 25},
		Entry{Name: "advice/uncached/10000runs", NsPerOp: 60000},
		Entry{Name: "ingest/batched", NsPerOp: 110},
		Entry{Name: "ingest/lock-per-log", NsPerOp: 26000},
		Entry{Name: "mixed/advice+ingest", NsPerOp: 280}, // not guarded
	)
}

func TestCompareWithinAllowancePasses(t *testing.T) {
	current := report(
		Entry{Name: "advice/cached/10000runs", NsPerOp: 30}, // +20%
		Entry{Name: "advice/uncached/10000runs", NsPerOp: 55000},
		Entry{Name: "ingest/batched", NsPerOp: 100},
		Entry{Name: "ingest/lock-per-log", NsPerOp: 30000}, // +15%
		Entry{Name: "mixed/advice+ingest", NsPerOp: 9999},  // unguarded: may drift
	)
	cs, err := Compare(baselineFixture(), current, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 4 {
		t.Fatalf("compared %d entries, want the 4 guarded ones", len(cs))
	}
	if regs := Regressions(cs); len(regs) != 0 {
		t.Fatalf("within-allowance run flagged: %+v", regs)
	}
}

// TestCompareTripsOnSlowedBenchmark is the acceptance demonstration: an
// artificially slowed broker benchmark (cached advice 3× the baseline)
// trips the guard.
func TestCompareTripsOnSlowedBenchmark(t *testing.T) {
	current := report(
		Entry{Name: "advice/cached/10000runs", NsPerOp: 75}, // 3× slower
		Entry{Name: "advice/uncached/10000runs", NsPerOp: 60000},
		Entry{Name: "ingest/batched", NsPerOp: 150}, // +36%, also over
		Entry{Name: "ingest/lock-per-log", NsPerOp: 26000},
		Entry{Name: "mixed/advice+ingest", NsPerOp: 280},
	)
	cs, err := Compare(baselineFixture(), current, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(cs)
	if len(regs) != 2 {
		t.Fatalf("regressions = %+v, want the slowed advice and ingest entries", regs)
	}
	if regs[0].Name != "advice/cached/10000runs" || regs[0].Ratio < 2.9 {
		t.Fatalf("regs[0] = %+v", regs[0])
	}
	if regs[1].Name != "ingest/batched" {
		t.Fatalf("regs[1] = %+v", regs[1])
	}
}

func TestCompareBoundaryIsExclusive(t *testing.T) {
	// Exactly +30% is allowed; anything past it fails.
	base := report(Entry{Name: "ingest/batched", NsPerOp: 100})
	atLimit, err := Compare(base, report(Entry{Name: "ingest/batched", NsPerOp: 130}), 0.30)
	if err != nil || len(Regressions(atLimit)) != 0 {
		t.Fatalf("at-limit run flagged: %+v, %v", atLimit, err)
	}
	over, err := Compare(base, report(Entry{Name: "ingest/batched", NsPerOp: 130.5}), 0.30)
	if err != nil || len(Regressions(over)) != 1 {
		t.Fatalf("over-limit run passed: %+v, %v", over, err)
	}
}

func TestCompareMissingGuardedEntryFails(t *testing.T) {
	current := report(Entry{Name: "advice/cached/10000runs", NsPerOp: 20})
	if _, err := Compare(baselineFixture(), current, 0.30); err == nil {
		t.Fatal("missing guarded entries accepted — a dropped benchmark must not pass")
	}
}

func TestCompareRejectsBadInputs(t *testing.T) {
	if _, err := Compare(baselineFixture(), baselineFixture(), 0); err == nil {
		t.Fatal("zero allowance accepted")
	}
	bad := report(Entry{Name: "ingest/batched", NsPerOp: 0})
	if _, err := Compare(bad, bad, 0.30); err == nil {
		t.Fatal("zero baseline ns/op accepted")
	}
	unguarded := report(Entry{Name: "mixed/advice+ingest", NsPerOp: 100})
	if _, err := Compare(unguarded, unguarded, 0.30); err == nil {
		t.Fatal("baseline without guarded entries accepted")
	}
}

func TestLoadRealArtifactShape(t *testing.T) {
	// The on-disk artifact carries extra fields (kb_runs, ops, note); Load
	// must accept the real shape the benchmarks write.
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_broker.json")
	doc := `{
  "benchmark": "data-broker-fast-path",
  "note": "x",
  "trajectory": [
    {"name": "advice/cached/10000runs", "kb_runs": 10000, "ops": 20000, "ns_per_op": 24.1},
    {"name": "ingest/batched", "ops": 20000, "ns_per_op": 110.9, "lost_observations": 0}
  ],
  "advice_speedup_10k_runs": 2808.3
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trajectory) != 2 || r.Trajectory[0].NsPerOp != 24.1 {
		t.Fatalf("loaded = %+v", r)
	}
	if _, err := Load(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"trajectory":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); err == nil {
		t.Fatal("empty trajectory accepted")
	}
}

func TestCompareCustomPrefixes(t *testing.T) {
	baseline := Report{Trajectory: []Entry{
		{Name: "engine/barrier/3stage", NsPerOp: 300},
		{Name: "engine/pipelined/3stage", NsPerOp: 100},
		{Name: "advice/cached", NsPerOp: 10},
	}}
	current := Report{Trajectory: []Entry{
		{Name: "engine/barrier/3stage", NsPerOp: 310},
		{Name: "engine/pipelined/3stage", NsPerOp: 150},
		{Name: "advice/cached", NsPerOp: 10},
	}}
	cs, err := Compare(baseline, current, 0.30, "engine/")
	if err != nil {
		t.Fatal(err)
	}
	// Only the engine/ entries are guarded under the explicit prefix.
	if len(cs) != 2 {
		t.Fatalf("comparisons = %+v", cs)
	}
	regs := Regressions(cs)
	if len(regs) != 1 || regs[0].Name != "engine/pipelined/3stage" {
		t.Fatalf("regressions = %+v", regs)
	}
	// A baseline with none of the requested prefixes is an error, not a pass.
	if _, err := Compare(Report{Trajectory: []Entry{{Name: "advice/x", NsPerOp: 1}}},
		current, 0.30, "engine/"); err == nil {
		t.Fatal("prefix mismatch must not pass silently")
	}
}
