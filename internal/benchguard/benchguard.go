// Package benchguard compares a fresh Data Broker benchmark trajectory
// (BENCH_broker.json, rewritten by `go test -bench Broker`) against the
// committed baseline and reports regressions — the logic behind CI's
// bench-regression gate, which keeps the knowledge base's two fast paths
// (advice serving, run-log ingestion) from quietly losing their speedups.
package benchguard

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Entry is one trajectory measurement; extra fields in the JSON artifact
// are ignored.
type Entry struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

// Report is the BENCH_broker.json shape the guard consumes.
type Report struct {
	Trajectory []Entry `json:"trajectory"`
}

// Load reads a trajectory report from disk.
func Load(path string) (Report, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(raw, &r); err != nil {
		return Report{}, fmt.Errorf("benchguard: parsing %s: %w", path, err)
	}
	if len(r.Trajectory) == 0 {
		return Report{}, fmt.Errorf("benchguard: %s has no trajectory entries", path)
	}
	return r, nil
}

// GuardedPrefixes name the trajectory families the gate watches by
// default: advice serving and run-log ingestion ns/op. The mixed-workload
// entry is informational only — it composes the other two. Compare accepts
// explicit prefixes for other artifacts (the engine trajectory guards
// "engine/").
var GuardedPrefixes = []string{"advice/", "ingest/"}

func guarded(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// Comparison is one guarded entry measured against its baseline.
type Comparison struct {
	Name       string
	BaselineNs float64
	CurrentNs  float64
	// Ratio is current/baseline; > 1 means slower.
	Ratio float64
	// Regressed marks entries past the allowance.
	Regressed bool
}

// Compare evaluates every guarded baseline entry against the current
// trajectory. maxRegression is the slowdown allowance (0.30 = fail past
// +30% ns/op). Guarded entries are those whose names start with one of the
// given prefixes (GuardedPrefixes when none are passed). A guarded baseline
// entry missing from the current run is an error — a silently dropped
// benchmark must not read as a pass.
func Compare(baseline, current Report, maxRegression float64, prefixes ...string) ([]Comparison, error) {
	if maxRegression <= 0 {
		return nil, fmt.Errorf("benchguard: max regression must be positive, got %v", maxRegression)
	}
	if len(prefixes) == 0 {
		prefixes = GuardedPrefixes
	}
	byName := make(map[string]Entry, len(current.Trajectory))
	for _, e := range current.Trajectory {
		byName[e.Name] = e
	}
	var out []Comparison
	for _, base := range baseline.Trajectory {
		if !guarded(base.Name, prefixes) {
			continue
		}
		if base.NsPerOp <= 0 {
			return nil, fmt.Errorf("benchguard: baseline entry %q has ns_per_op %v", base.Name, base.NsPerOp)
		}
		cur, ok := byName[base.Name]
		if !ok {
			return nil, fmt.Errorf("benchguard: guarded entry %q missing from the current trajectory", base.Name)
		}
		ratio := cur.NsPerOp / base.NsPerOp
		out = append(out, Comparison{
			Name:       base.Name,
			BaselineNs: base.NsPerOp,
			CurrentNs:  cur.NsPerOp,
			Ratio:      ratio,
			Regressed:  ratio > 1+maxRegression,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchguard: baseline has no guarded (%s) entries", strings.Join(prefixes, ", "))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Regressions filters a comparison set down to the failures.
func Regressions(cs []Comparison) []Comparison {
	var out []Comparison
	for _, c := range cs {
		if c.Regressed {
			out = append(out, c)
		}
	}
	return out
}
