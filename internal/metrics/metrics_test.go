package metrics

import (
	"strings"
	"sync"
	"testing"
)

func render(r *Registry) string {
	var b strings.Builder
	r.Render(&b)
	return b.String()
}

func TestCounterRendering(t *testing.T) {
	r := NewRegistry()
	reqs := r.Counter("scan_http_requests_total", "HTTP requests served.", "route", "code")
	reqs.With("/api/v2/jobs", "200").Add(3)
	reqs.With("/api/v2/jobs", "429").Inc()
	reqs.With("/healthz", "200").Inc()

	out := render(r)
	for _, want := range []string{
		"# HELP scan_http_requests_total HTTP requests served.",
		"# TYPE scan_http_requests_total counter",
		`scan_http_requests_total{route="/api/v2/jobs",code="200"} 3`,
		`scan_http_requests_total{route="/api/v2/jobs",code="429"} 1`,
		`scan_http_requests_total{route="/healthz",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestCounterSameChild(t *testing.T) {
	r := NewRegistry()
	v := r.Counter("c_total", "h", "k")
	a := v.With("x")
	b := v.With("x")
	if a != b {
		t.Fatal("With with identical labels returned distinct children")
	}
	a.Add(-5) // negative deltas dropped
	if a.Value() != 0 {
		t.Fatalf("negative Add changed counter: %d", a.Value())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := 7.0
	r.GaugeFunc("scan_queue_depth", "Jobs waiting.", nil, func() []Sample { return Value0(depth) })
	out := render(r)
	if !strings.Contains(out, "# TYPE scan_queue_depth gauge") ||
		!strings.Contains(out, "scan_queue_depth 7\n") {
		t.Fatalf("gauge render wrong:\n%s", out)
	}
	depth = 9
	if !strings.Contains(render(r), "scan_queue_depth 9\n") {
		t.Fatal("gauge did not re-evaluate at scrape time")
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("scan_shard_seconds", "Shard wall time.", []float64{0.1, 1, 10}, "family")
	child := h.With("genome")
	child.Observe(0.05)
	child.Observe(0.5)
	child.Observe(0.5)
	child.Observe(100) // beyond the last bound: only +Inf

	out := render(r)
	for _, want := range []string{
		"# TYPE scan_shard_seconds histogram",
		`scan_shard_seconds_bucket{family="genome",le="0.1"} 1`,
		`scan_shard_seconds_bucket{family="genome",le="1"} 3`,
		`scan_shard_seconds_bucket{family="genome",le="10"} 3`,
		`scan_shard_seconds_bucket{family="genome",le="+Inf"} 4`,
		`scan_shard_seconds_sum{family="genome"} 101.05`,
		`scan_shard_seconds_count{family="genome"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
}

func TestDuplicateNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x_total", "h")
	r.Counter("x_total", "h")
}

// TestConcurrentUse hammers every instrument from many goroutines while a
// scraper renders — run under -race this is the package's thread-safety
// proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits_total", "h", "tenant")
	h := r.Histogram("lat_seconds", "h", nil, "family")
	r.GaugeFunc("g", "h", nil, func() []Sample { return Value0(1) })

	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			tenant := string(rune('a' + id%3))
			for i := 0; i < iters; i++ {
				c.With(tenant).Inc()
				h.With("genome").Observe(float64(i) / 1000)
				if i%100 == 0 {
					_ = render(r)
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(0)
	for _, tenant := range []string{"a", "b", "c"} {
		total += c.With(tenant).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if got := h.With("genome").Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}
