// Package metrics is a dependency-free Prometheus-text-format metrics
// registry: counters, pull-style gauges, and fixed-bucket histograms, with
// optional label dimensions, rendered by Render in the exposition format
// scrapers consume (https://prometheus.io/docs/instrumenting/exposition_formats/).
//
// The package exists because the container builds without network access,
// so the canonical client_golang cannot be vendored; the subset here is
// exactly what scand's GET /metrics needs. Two styles coexist:
//
//   - Push-style instruments (Counter, Histogram) are updated on the hot
//     path with atomics — no locks on Inc/Observe — and belong where the
//     event happens (a request served, a shard finished).
//   - Pull-style gauges (GaugeFunc, CounterFunc) evaluate a callback at
//     scrape time and belong where the truth already lives (queue depth,
//     registry occupancy, fleet roster) — no second counter to drift.
//
// Metric and label names are not validated; callers own their conformance.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds a set of metric families and renders them in registration
// order (stable scrapes diff cleanly). All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex
	families []family
	names    map[string]bool
}

// family is one named metric with all its labeled children.
type family interface {
	write(w io.Writer)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) add(name string, f family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", name))
	}
	r.names[name] = true
	r.families = append(r.families, f)
}

// Render writes every registered family in the Prometheus text format.
func (r *Registry) Render(w io.Writer) {
	r.mu.Lock()
	fams := append([]family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.write(w)
	}
}

// ---------------------------------------------------------------------------
// Labels
// ---------------------------------------------------------------------------

// labelSep joins label values into child keys; \xff cannot appear in valid
// UTF-8 label values produced by this codebase.
const labelSep = "\xff"

// renderLabels formats {k="v",...} for a sample line ("" when unlabeled).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, values[i])
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a float the way Prometheus expects (integers without
// a mantissa, +Inf spelled out).
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case v == math.Trunc(v) && math.Abs(v) < 1e15:
		return fmt.Sprintf("%d", int64(v))
	default:
		return fmt.Sprintf("%g", v)
	}
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

// Counter is a monotonically increasing value. The zero Counter is unusable;
// obtain one from CounterVec.With.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0; negative deltas corrupt the monotonic
// contract and are dropped).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// CounterVec is a counter family with zero or more label dimensions.
type CounterVec struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]*child[*Counter]
}

type child[T any] struct {
	values []string
	metric T
}

// Counter registers a counter family. With no label names it is a single
// counter addressed as v.With().
func (r *Registry) Counter(name, help string, labelNames ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labelNames,
		children: make(map[string]*child[*Counter])}
	r.add(name, v)
	return v
}

// With returns the child counter for the given label values, creating it on
// first use. The arity must match the registered label names.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		c = &child[*Counter]{values: append([]string(nil), values...), metric: &Counter{}}
		v.children[key] = c
	}
	return c.metric
}

func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	lines := make([]string, 0, len(keys))
	for _, k := range keys {
		c := v.children[k]
		lines = append(lines, fmt.Sprintf("%s%s %s", v.name,
			renderLabels(v.labels, c.values), formatValue(float64(c.metric.Value()))))
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", v.name, v.help, v.name)
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
}

// ---------------------------------------------------------------------------
// Pull-style families (gauges and derived counters)
// ---------------------------------------------------------------------------

// Sample is one labeled value produced by a pull callback at scrape time.
type Sample struct {
	// Values are the label values, matching the family's label names.
	Values []string
	Value  float64
}

type funcFamily struct {
	name, help, typ string
	labels          []string
	fn              func() []Sample
}

func (f *funcFamily) write(w io.Writer) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
	samples := f.fn()
	sort.Slice(samples, func(i, j int) bool {
		return strings.Join(samples[i].Values, labelSep) < strings.Join(samples[j].Values, labelSep)
	})
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labels, s.Values), formatValue(s.Value))
	}
}

// GaugeFunc registers a gauge family whose samples are produced by fn at
// scrape time — the callback must be safe for concurrent use and cheap
// enough to run per scrape.
func (r *Registry) GaugeFunc(name, help string, labelNames []string, fn func() []Sample) {
	r.add(name, &funcFamily{name: name, help: help, typ: "gauge", labels: labelNames, fn: fn})
}

// CounterFunc registers a counter family rendered from fn at scrape time —
// for monotonic counts whose source of truth already lives elsewhere
// (knowledge-base cache hits, fleet dispatch totals). fn must never report
// a value that goes backwards.
func (r *Registry) CounterFunc(name, help string, labelNames []string, fn func() []Sample) {
	r.add(name, &funcFamily{name: name, help: help, typ: "counter", labels: labelNames, fn: fn})
}

// Value0 wraps a single unlabeled value as a Sample slice — the common case
// for GaugeFunc/CounterFunc callbacks.
func Value0(v float64) []Sample { return []Sample{{Value: v}} }

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []atomic.Int64
	sum    atomicFloat
	count  atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.add(v)
}

// Count reports the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// atomicFloat is a CAS-looped float64 accumulator.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// HistogramVec is a histogram family with label dimensions.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64
	mu         sync.Mutex
	children   map[string]*child[*Histogram]
}

// DefaultLatencyBuckets spans 1ms..60s — sized for serving latencies where
// shard transforms sit in the milliseconds and whole jobs in the seconds.
var DefaultLatencyBuckets = []float64{
	0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram registers a histogram family with the given ascending upper
// bounds (nil uses DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: %s buckets not ascending", name))
		}
	}
	v := &HistogramVec{name: name, help: help, labels: labelNames,
		bounds: bounds, children: make(map[string]*child[*Histogram])}
	r.add(name, v)
	return v
}

// With returns the child histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label values, got %d", v.name, len(v.labels), len(values)))
	}
	key := strings.Join(values, labelSep)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.children[key]
	if !ok {
		h := &Histogram{bounds: v.bounds, counts: make([]atomic.Int64, len(v.bounds))}
		c = &child[*Histogram]{values: append([]string(nil), values...), metric: h}
		v.children[key] = c
	}
	return c.metric
}

func (v *HistogramVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child[*Histogram], 0, len(keys))
	for _, k := range keys {
		children = append(children, v.children[k])
	}
	v.mu.Unlock()
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", v.name, v.help, v.name)
	leName := append(append([]string(nil), v.labels...), "le")
	for _, c := range children {
		h := c.metric
		cum := int64(0)
		for i, b := range v.bounds {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "%s_bucket%s %d\n", v.name,
				renderLabels(leName, append(append([]string(nil), c.values...), formatValue(b))), cum)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", v.name,
			renderLabels(leName, append(append([]string(nil), c.values...), "+Inf")), h.count.Load())
		fmt.Fprintf(w, "%s_sum%s %s\n", v.name, renderLabels(v.labels, c.values), formatValue(h.sum.load()))
		fmt.Fprintf(w, "%s_count%s %d\n", v.name, renderLabels(v.labels, c.values), h.count.Load())
	}
}
