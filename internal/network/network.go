package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Measurement is one gene-level observation, the integrative input row.
type Measurement struct {
	Name  string
	Value float64
}

// moduleSpacing separates planted module centers; moduleSpread bounds the
// within-module jitter. Spread is well under the default edge epsilon and
// spacing well over it, so planted modules are exactly the connected
// components the builder recovers.
const (
	moduleSpacing = 10.0
	moduleSpread  = 1.0
)

// SimulateMeasurements draws `genes` measurements from `modules` planted
// modules: genes are assigned round-robin, and each value sits within
// ±moduleSpread/2 of its module center. Seeded generation regenerates
// identical tables. Returns the measurements and each gene's true module.
func SimulateMeasurements(rng *rand.Rand, genes, modules int) ([]Measurement, []int, error) {
	if genes < 1 {
		return nil, nil, fmt.Errorf("network: gene count %d invalid", genes)
	}
	if modules < 1 || modules > genes {
		return nil, nil, fmt.Errorf("network: module count %d invalid for %d genes", modules, genes)
	}
	ms := make([]Measurement, genes)
	truth := make([]int, genes)
	for i := range ms {
		m := i % modules
		center := moduleSpacing * float64(m+1)
		ms[i] = Measurement{
			Name:  fmt.Sprintf("gene%04d", i),
			Value: center + (rng.Float64()-0.5)*moduleSpread,
		}
		truth[i] = m
	}
	return ms, truth, nil
}

// Node is one network node.
type Node struct {
	Name  string
	Value float64
}

// Edge is one undirected similarity edge; A < B index into the node list.
type Edge struct {
	A, B   int
	Weight float64
}

// Network is the integrative output: the interaction graph plus its
// detected modules (connected components, each a sorted node-index list,
// ordered by first member).
type Network struct {
	Nodes   []Node
	Edges   []Edge
	Modules [][]int
}

// Config tunes network construction.
type Config struct {
	// Epsilon is the measurement-distance ceiling for an edge (default 2).
	Epsilon float64
}

func (c Config) withDefaults() Config {
	if c.Epsilon <= 0 {
		c.Epsilon = 2
	}
	return c
}

// EdgesInRange computes the similarity edges whose lower endpoint lies in
// [lo, hi): node a connects to every later node b with |value(a)-value(b)|
// <= Epsilon, weighted by closeness. Ranges partition the pair space, so
// per-range edge sets concatenate without duplicates — the scatter unit of
// the Integrate stage.
func EdgesInRange(nodes []Node, lo, hi int, cfg Config) []Edge {
	cfg = cfg.withDefaults()
	var out []Edge
	for a := lo; a < hi && a < len(nodes); a++ {
		for b := a + 1; b < len(nodes); b++ {
			d := math.Abs(nodes[a].Value - nodes[b].Value)
			if d <= cfg.Epsilon {
				out = append(out, Edge{A: a, B: b, Weight: 1 - d/cfg.Epsilon})
			}
		}
	}
	return out
}

// Modules returns the connected components the edges imply over n nodes:
// each component's node indexes sorted ascending, components ordered by
// their smallest member. Isolated nodes form singleton modules.
func Modules(n int, edges []Edge) [][]int {
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range edges {
		ra, rb := find(e.A), find(e.B)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	byRoot := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		byRoot[r] = append(byRoot[r], i)
	}
	out := make([][]int, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Ints(members)
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// SortEdges puts a gathered edge set into canonical (A, B) order.
func SortEdges(edges []Edge) {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].A != edges[j].A {
			return edges[i].A < edges[j].A
		}
		return edges[i].B < edges[j].B
	})
}

// Build constructs the full network in one pass — the unscattered
// reference implementation tiled executions must reproduce.
func Build(nodes []Node, cfg Config) *Network {
	edges := EdgesInRange(nodes, 0, len(nodes), cfg)
	return &Network{Nodes: nodes, Edges: edges, Modules: Modules(len(nodes), edges)}
}
