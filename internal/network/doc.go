// Package network implements SCAN's integrative substrate: interaction-
// network construction and module detection standing in for Cytoscape in
// the paper's Figure 1 integration path.
//
// The input is a table of gene-level measurements (the FeatureTable the
// other families produce); the output is an interaction network — nodes,
// similarity edges, and the connected-component modules the edges imply.
//
// Scatter/gather shape: the graph partition is the scatter unit. Node
// index ranges split the O(n²) pairwise edge construction into independent
// slabs (each range compares its nodes against every later node, so every
// pair is examined exactly once across slabs), and the per-slab edge sets
// gather — sorted into canonical order — into one network for a single
// union-find module-detection pass.
//
// Determinism guarantee: generation is seeded (SimulateMeasurements
// regenerates identical tables from equal seeds), edge construction is a
// pure function of the node values, SortEdges canonicalizes the gathered
// edge order, and module detection sorts members and modules — so the
// partitioned build equals the full build for any partition size (proven
// by the package's partitioned-equals-full tests) and repeated runs are
// byte-identical.
package network
