package network

import (
	"math/rand"
	"testing"
)

func TestSimulateMeasurementsDeterministic(t *testing.T) {
	a, truthA, err := SimulateMeasurements(rand.New(rand.NewSource(4)), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, truthB, err := SimulateMeasurements(rand.New(rand.NewSource(4)), 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] || truthA[i] != truthB[i] {
			t.Fatalf("measurement %d differs", i)
		}
	}
	if _, _, err := SimulateMeasurements(rand.New(rand.NewSource(1)), 3, 9); err == nil {
		t.Fatal("more modules than genes accepted")
	}
	if _, _, err := SimulateMeasurements(rand.New(rand.NewSource(1)), 0, 1); err == nil {
		t.Fatal("zero genes accepted")
	}
}

func TestBuildRecoversPlantedModules(t *testing.T) {
	ms, truth, err := SimulateMeasurements(rand.New(rand.NewSource(8)), 60, 4)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]Node, len(ms))
	for i, m := range ms {
		nodes[i] = Node{Name: m.Name, Value: m.Value}
	}
	net := Build(nodes, Config{})
	if len(net.Modules) != 4 {
		t.Fatalf("modules = %d, want 4 planted", len(net.Modules))
	}
	// Every detected module is exactly one planted module's gene set.
	total := 0
	for _, mod := range net.Modules {
		want := truth[mod[0]]
		for _, gene := range mod {
			if truth[gene] != want {
				t.Fatalf("module %v mixes planted modules %d and %d", mod, want, truth[gene])
			}
		}
		total += len(mod)
	}
	if total != 60 {
		t.Fatalf("modules cover %d genes, want 60", total)
	}
	if len(net.Edges) == 0 {
		t.Fatal("no edges built")
	}
	for _, e := range net.Edges {
		if e.A >= e.B || e.Weight < 0 || e.Weight > 1 {
			t.Fatalf("malformed edge %+v", e)
		}
	}
}

// TestRangePartitionMatchesFullBuild: concatenating per-range edge slabs
// (any partitioning) reproduces the single-pass edge set — the gather
// invariant of the Integrate scatter.
func TestRangePartitionMatchesFullBuild(t *testing.T) {
	ms, _, err := SimulateMeasurements(rand.New(rand.NewSource(13)), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]Node, len(ms))
	for i, m := range ms {
		nodes[i] = Node{Name: m.Name, Value: m.Value}
	}
	want := EdgesInRange(nodes, 0, len(nodes), Config{})
	SortEdges(want)
	for _, per := range []int{7, 10, 25, 50} {
		var got []Edge
		for lo := 0; lo < len(nodes); lo += per {
			hi := min(lo+per, len(nodes))
			got = append(got, EdgesInRange(nodes, lo, hi, Config{})...)
		}
		SortEdges(got)
		if len(got) != len(want) {
			t.Fatalf("per=%d: %d edges, full build has %d", per, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("per=%d: edge %d = %+v, want %+v", per, i, got[i], want[i])
			}
		}
	}
}

func TestModulesSingletons(t *testing.T) {
	mods := Modules(3, nil)
	if len(mods) != 3 {
		t.Fatalf("modules = %v, want 3 singletons", mods)
	}
	mods = Modules(4, []Edge{{A: 0, B: 3}, {A: 1, B: 2}})
	if len(mods) != 2 || mods[0][0] != 0 || mods[0][1] != 3 || mods[1][0] != 1 {
		t.Fatalf("modules = %v", mods)
	}
}
