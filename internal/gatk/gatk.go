// Package gatk models the paper's 7-stage GATK variant-calling pipeline:
// per-stage single-threaded execution time E_i(d) = a_i·d + b_i, and the
// Amdahl threading model T_i(t,d) = c_i·E_i(d)/t + (1-c_i)·E_i(d), with the
// per-stage (a, b, c) coefficients of Table II. It also provides execution
// plans (threads per stage) and the offline "best constant plan" search
// used as the paper's baseline resource-allocation policy.
package gatk

import (
	"errors"
	"fmt"
)

// StageModel holds one pipeline stage's scalability coefficients.
type StageModel struct {
	Name string
	A    float64 // TU per unit of input data (slope)
	B    float64 // fixed TU overhead (intercept)
	C    float64 // parallelisable fraction, in [0, 1]
}

// SerialTime returns the single-threaded execution time for input size d.
// The model is clamped below at a small positive floor: Table II's stage 2
// has b = -0.53, which would go non-physical for tiny shards.
func (s StageModel) SerialTime(d float64) float64 {
	t := s.A*d + s.B
	if t < minStageTime {
		return minStageTime
	}
	return t
}

// minStageTime is the execution-time floor in raw model units.
const minStageTime = 0.05

// Time returns the threaded execution time for input size d with t threads,
// following Amdahl's law with parallel fraction C.
func (s StageModel) Time(threads int, d float64) float64 {
	if threads < 1 {
		threads = 1
	}
	e := s.SerialTime(d)
	return s.C*e/float64(threads) + (1-s.C)*e
}

// Speedup returns SerialTime/Time for the given thread count.
func (s StageModel) Speedup(threads int) float64 {
	return 1 / (s.C/float64(threads) + (1 - s.C))
}

// Table II of the paper: per-pipeline-stage scalability factors. Stage
// names follow the canonical GATK DNA-seq variant pipeline the paper
// evaluates (aligned BAM in, VCF out).
var tableII = []StageModel{
	{Name: "MarkDuplicates", A: 0.35, B: 5.38, C: 0.89},
	{Name: "RealignerTargetCreator", A: 2.70, B: -0.53, C: 0.02},
	{Name: "IndelRealigner", A: 1.74, B: 3.93, C: 0.69},
	{Name: "BaseRecalibrator", A: 3.35, B: 0.53, C: 0.79},
	{Name: "PrintReads", A: 1.03, B: 17.86, C: 0.91},
	{Name: "UnifiedGenotyper", A: 0.02, B: 0.39, C: 0.25},
	{Name: "VariantFiltration", A: 0.01, B: 5.10, C: 0.02},
}

// DefaultStages returns a copy of the Table II stage models.
func DefaultStages() []StageModel {
	out := make([]StageModel, len(tableII))
	copy(out, tableII)
	return out
}

// NumStages is the length of the paper's evaluation pipeline.
const NumStages = 7

// InstanceSizes are the possible worker shapes in cores (Table III).
var InstanceSizes = []int{1, 2, 4, 8, 16}

// Pipeline couples the stage models with the time-unit calibration.
//
// TimeScale converts the raw Table II profile units into simulation TUs
// (stage time in TU = raw/TimeScale). The paper does not state the
// profile's time unit; TimeScale is the main calibration constant of
// this reproduction, chosen (3.0) so that the best configuration's
// reward-to-cost ratio lands near the paper's reported 3.11 under the
// Table III reward parameters. See EXPERIMENTS.md.
type Pipeline struct {
	Stages    []StageModel
	TimeScale float64
}

// DefaultTimeScale is the calibrated raw-units-per-TU factor.
const DefaultTimeScale = 3.0

// NewPipeline returns the Table II pipeline under the default calibration.
func NewPipeline() Pipeline {
	return Pipeline{Stages: DefaultStages(), TimeScale: DefaultTimeScale}
}

// StageTime returns the simulation-TU execution time of stage i on an
// input shard of size d with the given thread count.
func (p Pipeline) StageTime(i, threads int, d float64) float64 {
	return p.Stages[i].Time(threads, d) / p.TimeScale
}

// SerialStageTime returns the single-threaded TU time of stage i for size d.
func (p Pipeline) SerialStageTime(i int, d float64) float64 {
	return p.Stages[i].SerialTime(d) / p.TimeScale
}

// TotalTime returns the end-to-end latency of one shard of size d under
// plan (no queueing).
func (p Pipeline) TotalTime(plan Plan, d float64) float64 {
	var sum float64
	for i := range p.Stages {
		sum += p.StageTime(i, plan.Threads[i], d)
	}
	return sum
}

// CoreTime returns the total core·TU consumed by one shard of size d under
// plan (threads × time summed over stages) — the quantity billed by the
// cloud cost function.
func (p Pipeline) CoreTime(plan Plan, d float64) float64 {
	var sum float64
	for i := range p.Stages {
		sum += float64(plan.Threads[i]) * p.StageTime(i, plan.Threads[i], d)
	}
	return sum
}

// Plan assigns a thread count to each pipeline stage ("the degree of
// multi-threading must be chosen when the stage starts execution ... but
// can differ from pipeline stage to stage").
type Plan struct {
	Threads []int
}

// UniformPlan gives every stage the same thread count.
func UniformPlan(stages, threads int) Plan {
	t := make([]int, stages)
	for i := range t {
		t[i] = threads
	}
	return Plan{Threads: t}
}

// CoreStages returns the paper's Figure 5 x-axis quantity: the total
// core-stages per pipeline run (threads summed over stages).
func (p Plan) CoreStages() int {
	sum := 0
	for _, t := range p.Threads {
		sum += t
	}
	return sum
}

// Validate checks the plan against a pipeline and the permitted instance
// sizes.
func (p Plan) Validate(stages int) error {
	if len(p.Threads) != stages {
		return fmt.Errorf("gatk: plan has %d stages, pipeline has %d", len(p.Threads), stages)
	}
	for i, t := range p.Threads {
		if !validSize(t) {
			return fmt.Errorf("gatk: stage %d thread count %d is not an instance size", i, t)
		}
	}
	return nil
}

func validSize(t int) bool {
	for _, s := range InstanceSizes {
		if t == s {
			return true
		}
	}
	return false
}

// ErrNoStages is returned when optimising an empty pipeline.
var ErrNoStages = errors.New("gatk: pipeline has no stages")

// PlanObjective captures the economic context of a plan decision: the
// per-TU latency penalty borne by the job's owner and the per-core-TU
// price of compute.
type PlanObjective struct {
	// LatencyCostPerTU is the reward lost per TU of added latency
	// (d·Rpenalty under the time-oriented scheme).
	LatencyCostPerTU float64
	// PricePerCoreTU is the compute price used to cost threads.
	PricePerCoreTU float64
	// Shards is the number of parallel data shards per stage (each shard
	// occupies its own worker, so stage cost scales with Shards while
	// stage latency does not).
	Shards int
	// OverheadTU is the billed-but-idle worker time per stage-task
	// (startup penalty plus expected idle tail). Charging it in the
	// objective keeps the optimiser from picking very wide plans whose
	// per-hire overheads would swamp their latency savings.
	OverheadTU float64
}

// OptimalConstantPlan performs the paper's "best constant plan" search:
// for each stage, pick the thread count minimising
//
//	LatencyCostPerTU·T_i(t) + PricePerCoreTU·Shards·t·(T_i(t) + OverheadTU)
//
// Because stage latencies and costs are additive, per-stage minimisation is
// globally optimal for the time-oriented reward (see DESIGN.md).
func (p Pipeline) OptimalConstantPlan(shardSize float64, obj PlanObjective) (Plan, error) {
	if len(p.Stages) == 0 {
		return Plan{}, ErrNoStages
	}
	threads := make([]int, len(p.Stages))
	for i := range p.Stages {
		best, bestCost := InstanceSizes[0], 0.0
		for k, t := range InstanceSizes {
			cost := p.stageObjective(i, t, shardSize, obj)
			if k == 0 || cost < bestCost {
				best, bestCost = t, cost
			}
		}
		threads[i] = best
	}
	return Plan{Threads: threads}, nil
}

// stageObjective is one stage's contribution to the plan objective.
func (p Pipeline) stageObjective(i, t int, shardSize float64, obj PlanObjective) float64 {
	shards := obj.Shards
	if shards < 1 {
		shards = 1
	}
	ti := p.StageTime(i, t, shardSize)
	return obj.LatencyCostPerTU*ti +
		obj.PricePerCoreTU*float64(shards*t)*(ti+obj.OverheadTU)
}

// PlanCost evaluates the objective for a whole plan (used by tests and the
// allocation policies to compare plans).
func (p Pipeline) PlanCost(plan Plan, shardSize float64, obj PlanObjective) float64 {
	var sum float64
	for i := range p.Stages {
		sum += p.stageObjective(i, plan.Threads[i], shardSize, obj)
	}
	return sum
}
