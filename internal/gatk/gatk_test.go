package gatk

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTableIIValues(t *testing.T) {
	stages := DefaultStages()
	if len(stages) != NumStages {
		t.Fatalf("got %d stages, want %d", len(stages), NumStages)
	}
	// Spot-check the Table II rows.
	if stages[0].A != 0.35 || stages[0].B != 5.38 || stages[0].C != 0.89 {
		t.Fatalf("stage 1 = %+v", stages[0])
	}
	if stages[1].A != 2.70 || stages[1].B != -0.53 || stages[1].C != 0.02 {
		t.Fatalf("stage 2 = %+v", stages[1])
	}
	if stages[6].A != 0.01 || stages[6].B != 5.10 || stages[6].C != 0.02 {
		t.Fatalf("stage 7 = %+v", stages[6])
	}
	// Mutating the copy must not affect the table.
	stages[0].A = 99
	if DefaultStages()[0].A != 0.35 {
		t.Fatal("DefaultStages returns a shared slice")
	}
}

func TestSerialTimeLinearAndClamped(t *testing.T) {
	s := StageModel{A: 2.70, B: -0.53, C: 0.02}
	if got := s.SerialTime(5); math.Abs(got-12.97) > 1e-12 {
		t.Fatalf("SerialTime(5) = %v", got)
	}
	// At tiny d the raw model is negative; must clamp to the floor.
	if got := s.SerialTime(0.1); got != minStageTime {
		t.Fatalf("SerialTime(0.1) = %v, want floor %v", got, minStageTime)
	}
}

func TestAmdahlBounds(t *testing.T) {
	for _, s := range DefaultStages() {
		e := s.SerialTime(5)
		for _, th := range InstanceSizes {
			tt := s.Time(th, 5)
			if tt > e+1e-12 {
				t.Fatalf("%s: threading slowed execution: T(%d)=%v > E=%v", s.Name, th, tt, e)
			}
			if tt < e/float64(th)-1e-12 {
				t.Fatalf("%s: superlinear speedup: T(%d)=%v < E/t=%v", s.Name, th, tt, e/float64(th))
			}
		}
	}
}

// Property: speedup is monotone nondecreasing in threads and bounded by
// Amdahl's limit 1/(1-c).
func TestSpeedupProperty(t *testing.T) {
	f := func(cRaw uint8, dRaw uint8) bool {
		c := float64(cRaw%100) / 100
		s := StageModel{A: 1, B: 1, C: c}
		prev := 0.0
		for _, th := range InstanceSizes {
			sp := s.Speedup(th)
			if sp < prev-1e-12 {
				return false
			}
			if c < 1 && sp > 1/(1-c)+1e-9 {
				return false
			}
			prev = sp
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadsBelowOneClamped(t *testing.T) {
	s := StageModel{A: 1, B: 0, C: 0.5}
	if s.Time(0, 10) != s.Time(1, 10) {
		t.Fatal("thread count below 1 not clamped")
	}
}

func TestPipelineTotalAndCoreTime(t *testing.T) {
	p := NewPipeline()
	plan := UniformPlan(NumStages, 1)
	total := p.TotalTime(plan, 5)
	// Serial total at d=5 is 78.66 raw units; divided by TimeScale 3.0.
	want := 78.66 / 3.0
	if math.Abs(total-want) > 1e-9 {
		t.Fatalf("TotalTime = %v, want %v", total, want)
	}
	// With one thread, core time equals total time.
	if ct := p.CoreTime(plan, 5); math.Abs(ct-total) > 1e-9 {
		t.Fatalf("CoreTime = %v, want %v", ct, total)
	}
	// More threads: latency drops, core time rises.
	plan16 := UniformPlan(NumStages, 16)
	if p.TotalTime(plan16, 5) >= total {
		t.Fatal("16 threads did not reduce latency")
	}
	if p.CoreTime(plan16, 5) <= p.CoreTime(plan, 5) {
		t.Fatal("16 threads did not increase core time")
	}
}

func TestPlanValidate(t *testing.T) {
	if err := UniformPlan(NumStages, 8).Validate(NumStages); err != nil {
		t.Fatal(err)
	}
	if err := UniformPlan(3, 8).Validate(NumStages); err == nil {
		t.Fatal("wrong stage count accepted")
	}
	bad := UniformPlan(NumStages, 8)
	bad.Threads[2] = 3
	if err := bad.Validate(NumStages); err == nil {
		t.Fatal("non-instance-size thread count accepted")
	}
}

func TestCoreStages(t *testing.T) {
	p := Plan{Threads: []int{8, 1, 4, 4, 8, 1, 1}}
	if got := p.CoreStages(); got != 27 {
		t.Fatalf("CoreStages = %d, want 27", got)
	}
}

func TestOptimalConstantPlan(t *testing.T) {
	p := NewPipeline()
	obj := PlanObjective{LatencyCostPerTU: 75, PricePerCoreTU: 5, Shards: 3}
	plan, err := p.OptimalConstantPlan(5.0/3, obj)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(NumStages); err != nil {
		t.Fatal(err)
	}
	// Nearly-serial stages (c=0.02) must stay single-threaded: threading
	// them costs cores and saves almost nothing.
	if plan.Threads[1] != 1 || plan.Threads[6] != 1 {
		t.Fatalf("serial stages got threads: %v", plan.Threads)
	}
	// Highly parallel stages (c≈0.9) must be multithreaded.
	if plan.Threads[0] < 2 || plan.Threads[4] < 2 {
		t.Fatalf("parallel stages under-threaded: %v", plan.Threads)
	}
	// The optimum must beat every uniform plan under the same objective.
	bestCost := p.PlanCost(plan, 5.0/3, obj)
	for _, th := range InstanceSizes {
		if c := p.PlanCost(UniformPlan(NumStages, th), 5.0/3, obj); c < bestCost-1e-9 {
			t.Fatalf("uniform %d-thread plan (%v) beats 'optimal' (%v)", th, c, bestCost)
		}
	}
}

// Property: OptimalConstantPlan is exact — no plan drawn from the instance
// sizes has lower objective cost.
func TestOptimalConstantPlanProperty(t *testing.T) {
	p := NewPipeline()
	f := func(latRaw, priceRaw uint8, altRaw [NumStages]uint8) bool {
		obj := PlanObjective{
			LatencyCostPerTU: 1 + float64(latRaw),
			PricePerCoreTU:   1 + float64(priceRaw%120),
			Shards:           1 + int(latRaw%4),
		}
		opt, err := p.OptimalConstantPlan(2, obj)
		if err != nil {
			return false
		}
		alt := Plan{Threads: make([]int, NumStages)}
		for i, a := range altRaw {
			alt.Threads[i] = InstanceSizes[int(a)%len(InstanceSizes)]
		}
		return p.PlanCost(opt, 2, obj) <= p.PlanCost(alt, 2, obj)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHigherPriceNarrowsPlan(t *testing.T) {
	p := NewPipeline()
	cheap, err := p.OptimalConstantPlan(2, PlanObjective{LatencyCostPerTU: 75, PricePerCoreTU: 5, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := p.OptimalConstantPlan(2, PlanObjective{LatencyCostPerTU: 75, PricePerCoreTU: 110, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dear.CoreStages() > cheap.CoreStages() {
		t.Fatalf("expensive cores widened the plan: cheap=%v dear=%v",
			cheap.Threads, dear.Threads)
	}
}

func TestOptimalPlanEmptyPipeline(t *testing.T) {
	p := Pipeline{TimeScale: 1}
	if _, err := p.OptimalConstantPlan(2, PlanObjective{}); err != ErrNoStages {
		t.Fatalf("err = %v", err)
	}
}
