package stats

import (
	"math"
	"math/rand"
)

// Dist is a sampleable probability distribution. All workload randomness in
// the simulator flows through this interface so experiments stay
// reproducible under a fixed seed.
type Dist interface {
	Sample(r *rand.Rand) float64
	// Mean returns the distribution's expected value (used by the
	// scheduler's estimators, which reason about average behaviour).
	Mean() float64
}

// Constant is a degenerate distribution that always returns its value.
type Constant float64

// Sample returns the constant value.
func (c Constant) Sample(*rand.Rand) float64 { return float64(c) }

// Mean returns the constant value.
func (c Constant) Mean() float64 { return float64(c) }

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws from the uniform distribution.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Normal is a Gaussian distribution.
type Normal struct {
	Mu, Sigma float64
}

// Sample draws from N(Mu, Sigma²).
func (n Normal) Sample(r *rand.Rand) float64 { return n.Mu + n.Sigma*r.NormFloat64() }

// Mean returns Mu.
func (n Normal) Mean() float64 { return n.Mu }

// TruncNormal is a Gaussian clipped to [Lo, Hi]. It is used for the paper's
// "mean jobs per arrival = 3, variance = 2" style parameters, which must
// stay positive. Sampling rejects up to 16 draws before clamping, keeping
// the distribution close to a true truncated normal without risking an
// unbounded loop.
type TruncNormal struct {
	Mu, Sigma float64
	Lo, Hi    float64
}

// Sample draws from the truncated distribution.
func (t TruncNormal) Sample(r *rand.Rand) float64 {
	for i := 0; i < 16; i++ {
		x := t.Mu + t.Sigma*r.NormFloat64()
		if x >= t.Lo && x <= t.Hi {
			return x
		}
	}
	x := t.Mu
	if x < t.Lo {
		x = t.Lo
	}
	if x > t.Hi {
		x = t.Hi
	}
	return x
}

// Mean returns Mu (the untruncated mean; adequate for the estimators given
// the mild truncation used by the experiments).
func (t TruncNormal) Mean() float64 { return t.Mu }

// Exponential has the given mean (rate 1/Mean). Inter-arrival gaps in the
// workload generator are exponential, making arrivals a Poisson process as
// in the paper's "mean job inter-arrival interval" parameter.
type Exponential struct {
	MeanVal float64
}

// Sample draws from the exponential distribution.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() * e.MeanVal
}

// Mean returns the configured mean.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Lognormal wraps exp(N(mu, sigma²)), parameterised directly by mu and
// sigma of the underlying normal.
type Lognormal struct {
	Mu, Sigma float64
}

// Sample draws from the lognormal distribution.
func (l Lognormal) Sample(r *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(mu + sigma²/2).
func (l Lognormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }
