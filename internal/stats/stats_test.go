package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); !almostEq(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("Variance of single element != 0")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Fatal("Summarize(nil) not zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Fatalf("Min/Max wrong: %v %v", Min(xs), Max(xs))
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Min(nil)
}

func TestRunningMatchesBatch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	xs := make([]float64, 500)
	var run Running
	for i := range xs {
		xs[i] = r.NormFloat64()*3 + 10
		run.Add(xs[i])
	}
	if !almostEq(run.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("running mean %v != batch %v", run.Mean(), Mean(xs))
	}
	if !almostEq(run.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("running var %v != batch %v", run.Variance(), Variance(xs))
	}
	if run.Min() != Min(xs) || run.Max() != Max(xs) {
		t.Fatal("running min/max mismatch")
	}
	if run.N() != len(xs) {
		t.Fatal("running N mismatch")
	}
}

// Property: Welford accumulation agrees with the two-pass formulas for any
// input.
func TestRunningProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		var run Running
		for i, v := range raw {
			xs[i] = float64(v) / 16
			run.Add(xs[i])
		}
		return almostEq(run.Mean(), Mean(xs), 1e-6) &&
			almostEq(run.Variance(), Variance(xs), 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summary{N: 3, Mean: 1.5, Std: 0.25}
	if got := s.String(); got != "1.500 ± 0.250 (n=3)" {
		t.Fatalf("String() = %q", got)
	}
}
