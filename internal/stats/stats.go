// Package stats provides the small statistical toolkit used across the SCAN
// platform: descriptive statistics, least-squares fitting for the pipeline
// performance models, and the random distributions that drive the workload
// generator.
package stats

import (
	"fmt"
	"math"
)

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs, or 0 if len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds descriptive statistics for a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
	}
}

// String renders the summary as "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.3f ± %.3f (n=%d)", s.Mean, s.Std, s.N)
}

// Running accumulates streaming statistics using Welford's algorithm, so the
// simulator can track long series without retaining every observation.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the number of observations seen.
func (r *Running) N() int { return r.n }

// Mean returns the running mean, or 0 before any observation.
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the unbiased sample variance, or 0 with fewer than two
// observations.
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the running sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest observation, or 0 before any observation.
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation, or 0 before any observation.
func (r *Running) Max() float64 { return r.max }

// Summary converts the accumulator into a Summary value.
func (r *Running) Summary() Summary {
	return Summary{N: r.n, Mean: r.mean, Std: r.StdDev(), Min: r.min, Max: r.max}
}
