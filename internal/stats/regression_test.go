package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLineExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.0
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 2.5, 1e-12) || !almostEq(f.Intercept, -1, 1e-12) {
		t.Fatalf("fit = %+v", f)
	}
	if !almostEq(f.R2, 1, 1e-12) {
		t.Fatalf("R2 = %v, want 1", f.R2)
	}
	if !almostEq(f.Predict(10), 24, 1e-12) {
		t.Fatalf("Predict(10) = %v", f.Predict(10))
	}
}

func TestFitLineNoisy(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := r.Float64() * 20
		xs = append(xs, x)
		ys = append(ys, 0.35*x+5.38+r.NormFloat64()*0.05)
	}
	f, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(f.Slope, 0.35, 0.01) || !almostEq(f.Intercept, 5.38, 0.05) {
		t.Fatalf("noisy fit off: %+v", f)
	}
	if f.R2 < 0.99 {
		t.Fatalf("R2 = %v too low", f.R2)
	}
}

func TestFitLineDegenerate(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); err == nil {
		t.Fatal("expected error for single point")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Fatal("expected error for constant x")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
}

func amdahl(e, c float64, t int) float64 {
	return c*e/float64(t) + (1-c)*e
}

func TestFitAmdahlExact(t *testing.T) {
	for _, c := range []float64{0.02, 0.25, 0.69, 0.89, 1.0} {
		threads := []int{1, 2, 4, 8, 16}
		times := make([]float64, len(threads))
		for i, th := range threads {
			times[i] = amdahl(100, c, th)
		}
		got, err := FitAmdahl(threads, times)
		if err != nil {
			t.Fatal(err)
		}
		if !almostEq(got, c, 1e-9) {
			t.Fatalf("c = %v, want %v", got, c)
		}
	}
}

func TestFitAmdahlNoSingleThreadSample(t *testing.T) {
	threads := []int{2, 4, 8}
	times := make([]float64, len(threads))
	for i, th := range threads {
		times[i] = amdahl(50, 0.8, th)
	}
	got, err := FitAmdahl(threads, times)
	if err != nil {
		t.Fatal(err)
	}
	// The α+β/t parametrisation recovers c exactly even without t=1.
	if !almostEq(got, 0.8, 1e-9) {
		t.Fatalf("c = %v, want 0.8", got)
	}
}

func TestFitAmdahlClamps(t *testing.T) {
	// Superlinear speedup observations must clamp to c = 1.
	threads := []int{1, 2, 4}
	times := []float64{100, 40, 15}
	got, err := FitAmdahl(threads, times)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("c = %v, want clamp to 1", got)
	}
	// Slowdown with threads clamps to 0.
	times = []float64{100, 120, 150}
	got, err = FitAmdahl(threads, times)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Fatalf("c = %v, want clamp to 0", got)
	}
}

func TestFitAmdahlErrors(t *testing.T) {
	if _, err := FitAmdahl([]int{1}, []float64{5}); err == nil {
		t.Fatal("expected error: too few points")
	}
	if _, err := FitAmdahl([]int{1, 0}, []float64{5, 5}); err == nil {
		t.Fatal("expected error: zero thread count")
	}
	if _, err := FitAmdahl([]int{1, 1}, []float64{5, 5}); err == nil {
		t.Fatal("expected error: no multi-thread sample")
	}
}

// Property: FitAmdahl recovers c from exact model data for any c in [0,1]
// and E > 0.
func TestFitAmdahlProperty(t *testing.T) {
	f := func(cRaw uint8, eRaw uint16) bool {
		c := float64(cRaw) / 255
		e := 1 + float64(eRaw)
		threads := []int{1, 2, 3, 4, 6, 8, 12, 16}
		times := make([]float64, len(threads))
		for i, th := range threads {
			times[i] = amdahl(e, c, th)
		}
		got, err := FitAmdahl(threads, times)
		return err == nil && almostEq(got, c, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFitPlaneExact(t *testing.T) {
	var xs, ys, zs []float64
	for x := 0.0; x < 4; x++ {
		for y := 0.0; y < 4; y++ {
			xs = append(xs, x)
			ys = append(ys, y)
			zs = append(zs, 1.5*x-2*y+7)
		}
	}
	a, b, c, err := FitPlane(xs, ys, zs)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(a, 1.5, 1e-9) || !almostEq(b, -2, 1e-9) || !almostEq(c, 7, 1e-9) {
		t.Fatalf("plane = %v %v %v", a, b, c)
	}
}

func TestFitPlaneSingular(t *testing.T) {
	// x == y everywhere: rank-deficient.
	xs := []float64{1, 2, 3, 4}
	if _, _, _, err := FitPlane(xs, xs, xs); err == nil {
		t.Fatal("expected singular system error")
	}
}

func TestDistributionMeans(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		d    Dist
		mean float64
		tol  float64
	}{
		{Constant(4), 4, 0},
		{Uniform{2, 6}, 4, 0.1},
		{Normal{Mu: 5, Sigma: 1}, 5, 0.1},
		// Truncation at 0.5 shifts the mean of N(3, 2²) up to ≈ 3.41.
		{TruncNormal{Mu: 3, Sigma: 2, Lo: 0.5, Hi: 100}, 3.41, 0.1},
		{Exponential{MeanVal: 2.5}, 2.5, 0.15},
		{Lognormal{Mu: 0, Sigma: 0.25}, math.Exp(0.03125), 0.1},
	}
	for _, c := range cases {
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			sum += c.d.Sample(r)
		}
		got := sum / n
		if math.Abs(got-c.mean) > c.tol+0.05 {
			t.Errorf("%T: sample mean %v, want %v", c.d, got, c.mean)
		}
		if c.tol == 0 && c.d.Mean() != c.mean {
			t.Errorf("%T: Mean() = %v", c.d, c.d.Mean())
		}
	}
}

func TestTruncNormalRespectsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	d := TruncNormal{Mu: 0, Sigma: 10, Lo: -1, Hi: 1}
	for i := 0; i < 5000; i++ {
		x := d.Sample(r)
		if x < -1 || x > 1 {
			t.Fatalf("sample %v outside bounds", x)
		}
	}
}
