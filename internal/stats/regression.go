package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned by the fitting routines when the sample is
// too small or degenerate to determine the model coefficients.
var ErrInsufficientData = errors.New("stats: insufficient or degenerate data for fit")

// LinearFit holds the least-squares line y = Slope*x + Intercept together
// with its coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// Predict evaluates the fitted line at x.
func (f LinearFit) Predict(x float64) float64 {
	return f.Slope*x + f.Intercept
}

// FitLine computes the ordinary least-squares line through (xs[i], ys[i]).
// It is used to recover the a_i (slope) and b_i (intercept) coefficients of
// the paper's per-stage execution model E_i(d) = a_i*d + b_i from profiling
// observations.
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return LinearFit{}, ErrInsufficientData
	}
	n := float64(len(xs))
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy, syy float64
	for i := range xs {
		dx := xs[i] - mx
		dy := ys[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	_ = n
	if sxx == 0 {
		return LinearFit{}, ErrInsufficientData
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		var ssRes float64
		for i := range xs {
			e := ys[i] - (slope*xs[i] + intercept)
			ssRes += e * e
		}
		r2 = 1 - ssRes/syy
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// FitAmdahl estimates the parallel fraction c of the paper's threaded
// execution model
//
//	T(t) = c*E/t + (1-c)*E
//
// from observations (threads[i], times[i]). Substituting α = (1-c)E and
// β = cE turns the model into T = α + β·(1/t), a plain least-squares line in
// 1/t, which is solved exactly even when no single-thread observation is
// present. The recovered c = β/(α+β) is clamped to [0, 1].
func FitAmdahl(threads []int, times []float64) (float64, error) {
	if len(threads) != len(times) || len(threads) < 2 {
		return 0, ErrInsufficientData
	}
	inv := make([]float64, len(threads))
	for i, t := range threads {
		if t < 1 {
			return 0, ErrInsufficientData
		}
		inv[i] = 1 / float64(t)
	}
	fit, err := FitLine(inv, times)
	if err != nil {
		return 0, err
	}
	alpha, beta := fit.Intercept, fit.Slope
	e := alpha + beta
	if e <= 0 {
		return 0, ErrInsufficientData
	}
	c := beta / e
	if c < 0 {
		c = 0
	}
	if c > 1 {
		c = 1
	}
	return c, nil
}

// FitPlane computes the least-squares plane z = A*x + B*y + C. The knowledge
// base uses it when a profile varies both input size and a second covariate
// (for example record count and reference size).
func FitPlane(xs, ys, zs []float64) (a, b, c float64, err error) {
	n := len(xs)
	if n != len(ys) || n != len(zs) || n < 3 {
		return 0, 0, 0, ErrInsufficientData
	}
	// Normal equations for [A B C] via 3x3 solve.
	var sx, sy, sz, sxx, syy, sxy, sxz, syz float64
	for i := 0; i < n; i++ {
		sx += xs[i]
		sy += ys[i]
		sz += zs[i]
		sxx += xs[i] * xs[i]
		syy += ys[i] * ys[i]
		sxy += xs[i] * ys[i]
		sxz += xs[i] * zs[i]
		syz += ys[i] * zs[i]
	}
	nf := float64(n)
	m := [3][4]float64{
		{sxx, sxy, sx, sxz},
		{sxy, syy, sy, syz},
		{sx, sy, nf, sz},
	}
	sol, ok := solve3(m)
	if !ok {
		return 0, 0, 0, ErrInsufficientData
	}
	return sol[0], sol[1], sol[2], nil
}

// solve3 performs Gaussian elimination with partial pivoting on a 3x4
// augmented matrix. Returns false when the system is singular.
func solve3(m [3][4]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		pivot := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < 3; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	var out [3]float64
	for i := 0; i < 3; i++ {
		out[i] = m[i][3] / m[i][i]
	}
	return out, true
}
