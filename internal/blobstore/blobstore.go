// Package blobstore implements the platform's disk-backed, content-addressed
// payload store: every blob is one file named by the hex SHA-256 of its
// bytes, written through a temp file and atomically renamed into place, and
// served back through pread-style section readers so consumers slice large
// payloads without the store ever buffering them on the heap.
//
// pread over an ordinary *os.File was chosen over mmap deliberately: it is
// portable, it needs no unsafe, and the access pattern here — sequential
// re-decode of a whole part, or ranged reads by the fleet data plane — gets
// no locality win from a mapping while an mmap'd slice would pin address
// space per open blob.
//
// Reference counts are store metadata, not heap bookkeeping: each blob's
// dataset reference count lives in a sibling "<hash>.ref" file, rewritten
// atomically, so references survive a restart. Runtime pins (a job actively
// reading a blob) are process-local and additionally hold a blob alive;
// eviction is simply the release that drops both counts to zero, which
// unlinks the chunk file. Opening a store sweeps orphaned temp files and
// unreferenced blobs left by a crash.
package blobstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// ErrNoBlob reports an unknown blob hash.
var ErrNoBlob = errors.New("blobstore: no such blob")

// Store is a directory of content-addressed blobs with durable refcounts.
// Safe for concurrent use.
type Store struct {
	mu   sync.Mutex
	dir  string
	refs map[string]int // durable dataset references, mirrored in .ref files
	pins map[string]int // process-local pins; never persisted
}

// Open opens (creating if needed) the blob store rooted at dir and recovers
// its metadata: refcount files are loaded, orphaned temp files from
// interrupted writes are removed, and blobs whose reference count is zero —
// including blobs missing their .ref file entirely — are swept, so a crash
// between ingest and the owner taking its reference cannot leak disk.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	s := &Store{dir: dir, refs: make(map[string]int), pins: make(map[string]int)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	present := map[string]bool{}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".tmp"):
			_ = os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, ".ref"):
			hash := strings.TrimSuffix(name, ".ref")
			if !ValidHash(hash) {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				continue
			}
			if n, err := strconv.Atoi(strings.TrimSpace(string(raw))); err == nil && n > 0 {
				s.refs[hash] = n
			}
		case ValidHash(name):
			present[name] = true
		}
	}
	// Sweep: a blob without a positive refcount is unowned (crash between
	// ingest and AddRef, or between the last Release and the unlink); a
	// refcount without its blob is stale metadata. The store is not yet
	// published, but removeLocked's contract wants the mutex regardless.
	s.mu.Lock()
	defer s.mu.Unlock()
	for hash := range present {
		if s.refs[hash] == 0 {
			s.removeLocked(hash)
		}
	}
	for hash := range s.refs {
		if !present[hash] {
			delete(s.refs, hash)
			_ = os.Remove(s.refPath(hash))
		}
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// ValidHash reports whether hash is a well-formed lowercase hex SHA-256 —
// the only names the store will touch on disk, which keeps URL-supplied
// hashes from escaping the store directory.
func ValidHash(hash string) bool {
	if len(hash) != 64 {
		return false
	}
	for i := 0; i < len(hash); i++ {
		c := hash[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) blobPath(hash string) string { return filepath.Join(s.dir, hash) }
func (s *Store) refPath(hash string) string  { return filepath.Join(s.dir, hash+".ref") }

// Write streams r into the store and returns the blob's hash and size,
// holding one reference for the caller (pass ownership on with AddRef /
// Release). The bytes spool through a temp file in the store directory and
// rename into place only once fully written and hashed, so a crash mid-write
// leaves a sweepable .tmp, never a half-blob under a valid name.
func (s *Store) Write(r io.Reader) (hash string, size int64, err error) {
	tmp, err := os.CreateTemp(s.dir, "ingest-*.tmp")
	if err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	h := sha256.New()
	size, err = io.Copy(io.MultiWriter(tmp, h), r)
	if err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	if err = tmp.Sync(); err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	if err = tmp.Close(); err != nil {
		return "", 0, fmt.Errorf("blobstore: %w", err)
	}
	hash = hex.EncodeToString(h.Sum(nil))
	if err = s.Ingest(tmp.Name(), hash); err != nil {
		return "", 0, err
	}
	return hash, size, nil
}

// Ingest moves the file at path into the store as the blob named hash,
// taking one reference for the caller. The caller vouches for the hash
// (upload sessions hash while spooling); if the blob already exists the
// file is discarded and the existing blob gains the reference — the
// content-dedup path. The rename is atomic within the filesystem, which is
// what "commit atomically promotes the blob" means mechanically, so path
// must live on the same filesystem as the store (spool into Dir()).
func (s *Store) Ingest(path, hash string) error {
	if !ValidHash(hash) {
		return fmt.Errorf("blobstore: bad hash %q", hash)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.blobPath(hash)); err == nil {
		_ = os.Remove(path)
	} else if err := os.Rename(path, s.blobPath(hash)); err != nil {
		return fmt.Errorf("blobstore: %w", err)
	}
	return s.setRefLocked(hash, s.refs[hash]+1)
}

// AddRef takes one durable reference on an existing blob.
func (s *Store) AddRef(hash string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(s.blobPath(hash)); err != nil {
		return fmt.Errorf("%w: %q", ErrNoBlob, hash)
	}
	return s.setRefLocked(hash, s.refs[hash]+1)
}

// Release drops one durable reference. The blob is unlinked once no
// references and no pins remain — eviction is exactly this edge. Unknown
// hashes are a no-op so release-after-crash-sweep stays safe.
func (s *Store) Release(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.refs[hash]
	if !ok {
		return
	}
	if n > 1 {
		_ = s.setRefLocked(hash, n-1)
		return
	}
	delete(s.refs, hash)
	_ = os.Remove(s.refPath(hash))
	if s.pins[hash] == 0 {
		s.removeLocked(hash)
	}
}

// Pin marks a blob as actively read by this process (a pinned blob is never
// unlinked even if every durable reference is released mid-read). Pair with
// Unpin.
func (s *Store) Pin(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pins[hash]++
}

// Unpin drops one pin, completing a deferred eviction if the last durable
// reference went away while the blob was pinned.
func (s *Store) Unpin(hash string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[hash] <= 1 {
		delete(s.pins, hash)
	} else {
		s.pins[hash]--
	}
	if s.refs[hash] == 0 && s.pins[hash] == 0 {
		s.removeLocked(hash)
	}
}

// setRefLocked persists a refcount through an atomic rewrite of the .ref
// file, keeping the in-memory mirror consistent. The caller holds s.mu.
func (s *Store) setRefLocked(hash string, n int) error {
	tmp := s.refPath(hash) + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(n)), 0o644); err != nil {
		return fmt.Errorf("blobstore: %w", err)
	}
	if err := os.Rename(tmp, s.refPath(hash)); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("blobstore: %w", err)
	}
	s.refs[hash] = n
	return nil
}

// removeLocked unlinks a blob's files best-effort. The caller holds s.mu.
func (s *Store) removeLocked(hash string) {
	_ = os.Remove(s.blobPath(hash))
	_ = os.Remove(s.refPath(hash))
}

// Refs reports a blob's durable reference count (0 for unknown blobs).
func (s *Store) Refs(hash string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs[hash]
}

// Hashes returns every referenced blob hash, in no particular order. Owners
// use it on startup to reconcile their own metadata against the store —
// releasing references a crash orphaned (e.g. an upload session that was
// ingested but never promoted).
func (s *Store) Hashes() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.refs))
	for hash := range s.refs {
		out = append(out, hash)
	}
	return out
}

// Len reports resident blobs and their summed sizes.
func (s *Store) Len() (blobs int, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for hash := range s.refs {
		if fi, err := os.Stat(s.blobPath(hash)); err == nil {
			blobs++
			bytes += fi.Size()
		}
	}
	return blobs, bytes
}

// Blob is one open blob: a pread-backed io.ReaderAt over the chunk file.
// Readers built on it slice the file without buffering it, so resident
// memory stays bounded however large the blob is. Close when done; an open
// Blob stays readable even if the blob is evicted (POSIX unlink semantics).
type Blob struct {
	f    *os.File
	size int64
}

// Get opens a blob for reading.
func (s *Store) Get(hash string) (*Blob, error) {
	if !ValidHash(hash) {
		return nil, fmt.Errorf("%w: %q", ErrNoBlob, hash)
	}
	f, err := os.Open(s.blobPath(hash))
	if err != nil {
		return nil, fmt.Errorf("%w: %q", ErrNoBlob, hash)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("blobstore: %w", err)
	}
	return &Blob{f: f, size: fi.Size()}, nil
}

// Size returns the blob's byte length.
func (b *Blob) Size() int64 { return b.size }

// ReadAt reads from the blob at the given offset (pread).
func (b *Blob) ReadAt(p []byte, off int64) (int, error) { return b.f.ReadAt(p, off) }

// Reader returns a sequential reader over the whole blob. Multiple readers
// are independent: each is its own section over the shared pread handle.
func (b *Blob) Reader() io.Reader { return io.NewSectionReader(b, 0, b.size) }

// Close releases the underlying file handle.
func (b *Blob) Close() error { return b.f.Close() }
