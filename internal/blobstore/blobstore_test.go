package blobstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestWriteGetRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("spill me to disk\n"), 1000)
	hash, size, err := s.Write(bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Fatalf("size = %d, want %d", size, len(payload))
	}
	sum := sha256.Sum256(payload)
	if want := hex.EncodeToString(sum[:]); hash != want {
		t.Fatalf("hash = %s, want %s", hash, want)
	}
	if got := s.Refs(hash); got != 1 {
		t.Fatalf("refs = %d, want 1", got)
	}
	b, err := s.Get(hash)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	got, err := io.ReadAll(b.Reader())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload round-trip mismatch")
	}
	// Ranged pread.
	mid := make([]byte, 7)
	if _, err := b.ReadAt(mid, 17); err != nil {
		t.Fatal(err)
	}
	if string(mid) != string(payload[17:24]) {
		t.Fatalf("ReadAt = %q", mid)
	}
}

func TestDedupAndRefcountLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := s.Write(strings.NewReader("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	// Second write of identical content dedups onto the same blob.
	hash2, _, err := s.Write(strings.NewReader("same bytes"))
	if err != nil {
		t.Fatal(err)
	}
	if hash != hash2 {
		t.Fatalf("dedup split hashes: %s vs %s", hash, hash2)
	}
	if got := s.Refs(hash); got != 2 {
		t.Fatalf("refs = %d, want 2", got)
	}
	if err := s.AddRef(hash); err != nil {
		t.Fatal(err)
	}
	s.Release(hash)
	s.Release(hash)
	if _, err := s.Get(hash); err != nil {
		t.Fatalf("blob evicted while referenced: %v", err)
	}
	s.Release(hash)
	if _, err := s.Get(hash); err == nil {
		t.Fatal("blob survived its last release")
	}
	if _, err := os.Stat(filepath.Join(dir, hash+".ref")); !os.IsNotExist(err) {
		t.Fatal("ref file survived eviction")
	}
}

func TestPinDefersEviction(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := s.Write(strings.NewReader("pinned"))
	if err != nil {
		t.Fatal(err)
	}
	s.Pin(hash)
	s.Release(hash) // last durable ref, but pinned
	if _, err := s.Get(hash); err != nil {
		t.Fatalf("pinned blob evicted: %v", err)
	}
	s.Unpin(hash)
	if _, err := s.Get(hash); err == nil {
		t.Fatal("unpinned zero-ref blob not evicted")
	}
}

func TestOpenRecoversRefsAndSweepsOrphans(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	hash, _, err := s.Write(strings.NewReader("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddRef(hash); err != nil {
		t.Fatal(err)
	}
	// Crash debris: a temp spool, an unreferenced blob, a stale ref file.
	orphan := strings.Repeat("0", 63) + "a"
	if err := os.WriteFile(filepath.Join(dir, orphan), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "ingest-zz.tmp"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	stale := strings.Repeat("1", 63) + "b"
	if err := os.WriteFile(filepath.Join(dir, stale+".ref"), []byte("3"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := s2.Refs(hash); got != 2 {
		t.Fatalf("recovered refs = %d, want 2", got)
	}
	if _, err := s2.Get(hash); err != nil {
		t.Fatalf("referenced blob swept: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, orphan)); !os.IsNotExist(err) {
		t.Fatal("unreferenced blob not swept")
	}
	if _, err := os.Stat(filepath.Join(dir, "ingest-zz.tmp")); !os.IsNotExist(err) {
		t.Fatal("temp spool not swept")
	}
	if got := s2.Refs(stale); got != 0 {
		t.Fatalf("stale ref survived: %d", got)
	}
}

func TestRejectsBadHashes(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []string{"", "short", "../../etc/passwd", strings.Repeat("Z", 64)} {
		if _, err := s.Get(h); err == nil {
			t.Fatalf("Get(%q) accepted", h)
		}
		if err := s.Ingest("nowhere", h); err == nil {
			t.Fatalf("Ingest(%q) accepted", h)
		}
	}
}

func TestConcurrentWriteReleaseRace(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				hash, _, err := s.Write(strings.NewReader("contended content"))
				if err != nil {
					t.Error(err)
					return
				}
				s.Pin(hash)
				if b, err := s.Get(hash); err == nil {
					_, _ = io.ReadAll(b.Reader())
					b.Close()
				}
				s.Unpin(hash)
				s.Release(hash)
			}
		}()
	}
	wg.Wait()
}
