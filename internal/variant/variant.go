// Package variant implements the pileup-based SNV caller that stands in
// for the GATK variant-calling stages of the paper's pipeline. Alignments
// are accumulated into per-position base counts; positions where a non-
// reference allele reaches the configured depth and allele-fraction
// thresholds are emitted as VCF records with a simplified Phred-style
// quality.
package variant

import (
	"errors"
	"fmt"
	"math"

	"scan/internal/genomics"
)

// Config controls variant calling.
type Config struct {
	// MinDepth is the minimum total coverage at a site (default 4).
	MinDepth int
	// MinAltFraction is the minimum fraction of reads supporting the
	// alternate allele (default 0.3).
	MinAltFraction float64
	// BaseErrorRate is the assumed per-base sequencing error used for the
	// quality model (default 0.01).
	BaseErrorRate float64
}

func (c *Config) fill() {
	if c.MinDepth <= 0 {
		c.MinDepth = 4
	}
	if c.MinAltFraction <= 0 {
		c.MinAltFraction = 0.3
	}
	if c.BaseErrorRate <= 0 {
		c.BaseErrorRate = 0.01
	}
}

// Caller accumulates a pileup over one reference and calls SNVs.
type Caller struct {
	cfg    Config
	ref    genomics.Sequence
	counts [][4]uint32 // per-position A/C/G/T counts
	depth  []uint32
}

var baseIndex = [256]int8{}

func init() {
	for i := range baseIndex {
		baseIndex[i] = -1
	}
	baseIndex['A'], baseIndex['a'] = 0, 0
	baseIndex['C'], baseIndex['c'] = 1, 1
	baseIndex['G'], baseIndex['g'] = 2, 2
	baseIndex['T'], baseIndex['t'] = 3, 3
}

var indexBase = [4]byte{'A', 'C', 'G', 'T'}

// ErrWrongReference is returned when an alignment references a different
// sequence than the caller's reference.
var ErrWrongReference = errors.New("variant: alignment references a different sequence")

// NewCaller returns a caller over ref.
func NewCaller(ref genomics.Sequence, cfg Config) *Caller {
	cfg.fill()
	return &Caller{
		cfg:    cfg,
		ref:    ref,
		counts: make([][4]uint32, ref.Len()),
		depth:  make([]uint32, ref.Len()),
	}
}

// Add folds one alignment into the pileup. Unmapped records are ignored.
// Only pure-match CIGARs (the aligner's output) are supported; soft-clips
// and indels are rejected.
func (c *Caller) Add(a genomics.Alignment) error {
	if a.Unmapped() {
		return nil
	}
	if a.RName != c.ref.Name {
		return fmt.Errorf("%w: got %q, want %q", ErrWrongReference, a.RName, c.ref.Name)
	}
	if !pureMatch(a.CIGAR, len(a.Seq)) {
		return fmt.Errorf("variant: unsupported CIGAR %q for read %q", a.CIGAR, a.QName)
	}
	start := a.Pos - 1
	if start < 0 || start+len(a.Seq) > c.ref.Len() {
		return fmt.Errorf("variant: read %q at %d overflows reference of %d bases",
			a.QName, a.Pos, c.ref.Len())
	}
	for i, b := range a.Seq {
		idx := baseIndex[b]
		if idx < 0 {
			continue // N or other ambiguity code: not evidence
		}
		c.counts[start+i][idx]++
		c.depth[start+i]++
	}
	return nil
}

// AddAll folds a batch of alignments, stopping at the first error.
func (c *Caller) AddAll(alns []genomics.Alignment) error {
	for _, a := range alns {
		if err := c.Add(a); err != nil {
			return err
		}
	}
	return nil
}

// pureMatch reports whether cigar is exactly "<n>M" for the given length.
func pureMatch(cigar string, n int) bool {
	if len(cigar) < 2 || cigar[len(cigar)-1] != 'M' {
		return false
	}
	v := 0
	for i := 0; i < len(cigar)-1; i++ {
		d := cigar[i]
		if d < '0' || d > '9' {
			return false
		}
		v = v*10 + int(d-'0')
	}
	return v == n
}

// Depth returns the pileup depth at 0-based position pos.
func (c *Caller) Depth(pos int) int { return int(c.depth[pos]) }

// Call scans the pileup and returns SNVs sorted by position.
func (c *Caller) Call() []genomics.Variant {
	var out []genomics.Variant
	for pos := 0; pos < c.ref.Len(); pos++ {
		depth := c.depth[pos]
		if int(depth) < c.cfg.MinDepth {
			continue
		}
		refIdx := baseIndex[c.ref.Seq[pos]]
		bestAlt, bestCount := -1, uint32(0)
		for idx := 0; idx < 4; idx++ {
			if int8(idx) == refIdx {
				continue
			}
			if n := c.counts[pos][idx]; n > bestCount {
				bestAlt, bestCount = idx, n
			}
		}
		if bestAlt < 0 || bestCount == 0 {
			continue
		}
		frac := float64(bestCount) / float64(depth)
		if frac < c.cfg.MinAltFraction {
			continue
		}
		refBase := byte('N')
		if refIdx >= 0 {
			refBase = indexBase[refIdx]
		}
		out = append(out, genomics.Variant{
			Chrom: c.ref.Name,
			Pos:   pos + 1,
			Ref:   string(refBase),
			Alt:   string(indexBase[bestAlt]),
			Qual:  c.quality(bestCount, depth),
			Info:  fmt.Sprintf("DP=%d;AF=%.3f;AC=%d", depth, frac, bestCount),
		})
	}
	return out
}

// quality is a simplified Phred score: the probability that altCount
// observations arose from sequencing error alone, approximated as
// e^altCount, converted to -10·log10 and capped at 1000.
func (c *Caller) quality(altCount, depth uint32) float64 {
	q := -10 * float64(altCount) * math.Log10(c.cfg.BaseErrorRate)
	if q > 1000 {
		q = 1000
	}
	return math.Round(q*10) / 10
}

// MeanCoverage returns the average pileup depth across the reference.
func (c *Caller) MeanCoverage() float64 {
	if c.ref.Len() == 0 {
		return 0
	}
	var sum uint64
	for _, d := range c.depth {
		sum += uint64(d)
	}
	return float64(sum) / float64(c.ref.Len())
}
