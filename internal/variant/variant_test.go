package variant

import (
	"math/rand"
	"testing"

	"scan/internal/align"
	"scan/internal/genomics"
)

func TestPileupAndCall(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("ACGTACGTAC")}
	c := NewCaller(ref, Config{MinDepth: 3, MinAltFraction: 0.5})
	// Five reads covering position 3 (0-based), all reading 'G' where the
	// reference has 'T'.
	for i := 0; i < 5; i++ {
		err := c.Add(genomics.Alignment{
			QName: "r", RName: "chr1", Pos: 3, CIGAR: "3M",
			Seq: []byte("GGA"), Qual: []byte("III"),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Reference at 1-based 3..5 is "GTA"; reads say "GGA": alt at pos 4.
	vars := c.Call()
	if len(vars) != 1 {
		t.Fatalf("called %d variants, want 1: %+v", len(vars), vars)
	}
	v := vars[0]
	if v.Pos != 4 || v.Ref != "T" || v.Alt != "G" {
		t.Fatalf("variant = %+v", v)
	}
	if v.Qual <= 0 {
		t.Fatal("quality must be positive")
	}
	if c.Depth(3) != 5 {
		t.Fatalf("Depth(3) = %d", c.Depth(3))
	}
}

func TestCallRespectsMinDepth(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("AAAA")}
	c := NewCaller(ref, Config{MinDepth: 4, MinAltFraction: 0.3})
	for i := 0; i < 3; i++ {
		if err := c.Add(genomics.Alignment{
			QName: "r", RName: "chr1", Pos: 1, CIGAR: "4M",
			Seq: []byte("TTTT"), Qual: []byte("IIII"),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if vars := c.Call(); len(vars) != 0 {
		t.Fatalf("called %d variants below MinDepth", len(vars))
	}
}

func TestCallRespectsAltFraction(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("AAAA")}
	c := NewCaller(ref, Config{MinDepth: 4, MinAltFraction: 0.5})
	add := func(seq string, n int) {
		for i := 0; i < n; i++ {
			if err := c.Add(genomics.Alignment{
				QName: "r", RName: "chr1", Pos: 1, CIGAR: "4M",
				Seq: []byte(seq), Qual: []byte("IIII"),
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	add("TAAA", 2) // 2 alt
	add("AAAA", 8) // 8 ref -> frac 0.2 < 0.5
	if vars := c.Call(); len(vars) != 0 {
		t.Fatalf("low-fraction allele called: %+v", vars)
	}
}

func TestAddValidations(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("ACGTACGT")}
	c := NewCaller(ref, Config{})
	if err := c.Add(genomics.Alignment{QName: "r", RName: "chr2", Pos: 1, CIGAR: "4M",
		Seq: []byte("ACGT"), Qual: []byte("IIII")}); err == nil {
		t.Fatal("wrong reference accepted")
	}
	if err := c.Add(genomics.Alignment{QName: "r", RName: "chr1", Pos: 7, CIGAR: "4M",
		Seq: []byte("ACGT"), Qual: []byte("IIII")}); err == nil {
		t.Fatal("overflowing read accepted")
	}
	if err := c.Add(genomics.Alignment{QName: "r", RName: "chr1", Pos: 1, CIGAR: "2M1I1M",
		Seq: []byte("ACGT"), Qual: []byte("IIII")}); err == nil {
		t.Fatal("indel CIGAR accepted")
	}
	// Unmapped records are silently skipped.
	if err := c.Add(genomics.Alignment{QName: "r", Flag: genomics.FlagUnmapped}); err != nil {
		t.Fatalf("unmapped record rejected: %v", err)
	}
	// N bases contribute no evidence but are not an error.
	if err := c.Add(genomics.Alignment{QName: "r", RName: "chr1", Pos: 1, CIGAR: "4M",
		Seq: []byte("ANGT"), Qual: []byte("IIII")}); err != nil {
		t.Fatal(err)
	}
	if c.Depth(1) != 0 {
		t.Fatalf("N counted as evidence: depth = %d", c.Depth(1))
	}
}

// The headline integration test: plant SNVs, simulate reads from the
// mutated genome, align against the clean reference, call variants, and
// verify the planted mutations are recovered.
func TestEndToEndVariantRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	ref := genomics.GenerateReference(rng, "chr1", 8000)
	mutated, planted := genomics.PlantSNVs(rng, ref, 12)

	reads, err := genomics.SimulateReads(rng, mutated, genomics.ReadSimConfig{
		Count: 2400, Length: 100, ErrorRate: 0.002, // 30x coverage
	})
	if err != nil {
		t.Fatal(err)
	}
	aligner, err := align.New(ref, Config2Aligner())
	if err != nil {
		t.Fatal(err)
	}
	alns, mapped := aligner.AlignAll(reads)
	if mapped < len(reads)*9/10 {
		t.Fatalf("mapped only %d/%d reads", mapped, len(reads))
	}
	caller := NewCaller(ref, Config{MinDepth: 8, MinAltFraction: 0.6})
	if err := caller.AddAll(alns); err != nil {
		t.Fatal(err)
	}
	called := caller.Call()

	calledAt := map[int]genomics.Variant{}
	for _, v := range called {
		calledAt[v.Pos-1] = v
	}
	recovered := 0
	for _, m := range planted {
		if v, ok := calledAt[m.Pos]; ok && v.Alt == string(m.Alt) && v.Ref == string(m.Ref) {
			recovered++
		}
	}
	if recovered < len(planted)-1 {
		t.Fatalf("recovered %d/%d planted SNVs (called %d total)",
			recovered, len(planted), len(called))
	}
	// False positives should be rare at these thresholds.
	if len(called) > len(planted)+3 {
		t.Fatalf("too many calls: %d for %d planted", len(called), len(planted))
	}
}

// Config2Aligner returns the aligner settings used by the end-to-end test
// (kept as a function so the core package's integration tests reuse it).
func Config2Aligner() align.Config {
	return align.Config{K: 16, MaxMismatches: 6}
}

func TestMeanCoverage(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("ACGTACGTAC")}
	c := NewCaller(ref, Config{})
	if err := c.Add(genomics.Alignment{QName: "r", RName: "chr1", Pos: 1, CIGAR: "10M",
		Seq: []byte("ACGTACGTAC"), Qual: []byte("IIIIIIIIII")}); err != nil {
		t.Fatal(err)
	}
	if got := c.MeanCoverage(); got != 1 {
		t.Fatalf("MeanCoverage = %v", got)
	}
}

func TestQualityCapped(t *testing.T) {
	ref := genomics.Sequence{Name: "chr1", Seq: []byte("AAAA")}
	c := NewCaller(ref, Config{MinDepth: 1, MinAltFraction: 0.1})
	for i := 0; i < 600; i++ {
		if err := c.Add(genomics.Alignment{QName: "r", RName: "chr1", Pos: 1, CIGAR: "4M",
			Seq: []byte("TTTT"), Qual: []byte("IIII")}); err != nil {
			t.Fatal(err)
		}
	}
	vars := c.Call()
	if len(vars) == 0 {
		t.Fatal("no call")
	}
	if vars[0].Qual > 1000 {
		t.Fatalf("quality %v exceeds cap", vars[0].Qual)
	}
}

func BenchmarkPileup(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ref := genomics.GenerateReference(rng, "chr1", 50000)
	reads, err := genomics.SimulateReads(rng, ref, genomics.ReadSimConfig{Count: 5000, Length: 100})
	if err != nil {
		b.Fatal(err)
	}
	alns := make([]genomics.Alignment, len(reads))
	for i, r := range reads {
		// Reads are exact substrings; reconstruct position from ID suffix.
		alns[i] = genomics.Alignment{
			QName: r.ID, RName: "chr1", Pos: 1, CIGAR: "100M",
			Seq: r.Seq, Qual: r.Qual,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := NewCaller(ref, Config{})
		if err := c.AddAll(alns); err != nil {
			b.Fatal(err)
		}
		c.Call()
	}
}
