package cloud

import (
	"math"
	"testing"

	"scan/internal/sim"
)

func newTestCloud(publicPrice float64) (*sim.Engine, *Cloud) {
	e := sim.NewEngine()
	c := New(e, 0.5, DefaultTiers(publicPrice)...)
	return e, c
}

func TestHirePrefersPrivateTier(t *testing.T) {
	_, c := newTestCloud(50)
	vm, err := c.Hire(-1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.tiers[vm.Tier].Name != "private" {
		t.Fatalf("hired from %q, want private", c.tiers[vm.Tier].Name)
	}
	if vm.ReadyAt != 0.5 {
		t.Fatalf("ReadyAt = %v, want startup 0.5", vm.ReadyAt)
	}
	if c.CoresInUse(0) != 8 || c.ActiveVMs() != 1 {
		t.Fatal("bookkeeping wrong after hire")
	}
}

func TestHireSpillsToPublicWhenPrivateFull(t *testing.T) {
	_, c := newTestCloud(50)
	// Fill the 624-core private tier with 39 × 16-core VMs.
	for i := 0; i < 39; i++ {
		if _, err := c.Hire(-1, 16); err != nil {
			t.Fatal(err)
		}
	}
	if c.FreeCores(0) != 0 {
		t.Fatalf("private free = %d, want 0", c.FreeCores(0))
	}
	vm, err := c.Hire(-1, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.tiers[vm.Tier].Name != "public" {
		t.Fatal("overflow hire did not go public")
	}
	// Explicit private hire must fail now.
	if _, err := c.Hire(0, 1); err != ErrNoCapacity {
		t.Fatalf("full private hire err = %v", err)
	}
}

func TestCostAccrual(t *testing.T) {
	e, c := newTestCloud(50)
	vm, err := c.Hire(0, 4) // private @5
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(10, func() {})
	e.Run() // clock -> 10
	// 4 cores × 10 TU × 5 CU = 200.
	if got := c.Cost(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("running cost = %v, want 200", got)
	}
	if err := c.Release(vm); err != nil {
		t.Fatal(err)
	}
	if got := c.Cost(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("settled cost = %v, want 200", got)
	}
	if c.ActiveVMs() != 0 || c.CoresInUse(0) != 0 {
		t.Fatal("release did not return cores")
	}
	// Releasing twice is an error, and cost must not change.
	if err := c.Release(vm); err != ErrReleased {
		t.Fatalf("double release err = %v", err)
	}
	if got := c.Cost(); math.Abs(got-200) > 1e-9 {
		t.Fatalf("cost after double release = %v", got)
	}
}

func TestPublicTierPriceApplied(t *testing.T) {
	e, c := newTestCloud(110)
	vm, err := c.Hire(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(3, func() {})
	e.Run()
	if err := c.Release(vm); err != nil {
		t.Fatal(err)
	}
	// 2 cores × 3 TU × 110 = 660.
	if got := c.Cost(); math.Abs(got-660) > 1e-9 {
		t.Fatalf("cost = %v, want 660", got)
	}
}

func TestReconfigure(t *testing.T) {
	e, c := newTestCloud(50)
	vm, err := c.Hire(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e.Schedule(2, func() {})
	e.Run()
	if err := c.Reconfigure(vm, 8); err != nil {
		t.Fatal(err)
	}
	if vm.Cores != 8 || c.CoresInUse(0) != 8 {
		t.Fatal("resize bookkeeping wrong")
	}
	if vm.ReadyAt != 2.5 {
		t.Fatalf("ReadyAt = %v, want now+startup = 2.5", vm.ReadyAt)
	}
	e.Schedule(4, func() {})
	e.Run()
	if err := c.Release(vm); err != nil {
		t.Fatal(err)
	}
	// 4 cores × 2 TU × 5 + 8 cores × 2 TU × 5 = 40 + 80 = 120.
	if got := c.Cost(); math.Abs(got-120) > 1e-9 {
		t.Fatalf("cost = %v, want 120", got)
	}
}

func TestReconfigureValidation(t *testing.T) {
	_, c := newTestCloud(50)
	vm, err := c.Hire(0, 620)
	if err != nil {
		t.Fatal(err)
	}
	// Growing past capacity fails.
	if err := c.Reconfigure(vm, 640); err != ErrNoCapacity {
		t.Fatalf("err = %v", err)
	}
	if err := c.Reconfigure(vm, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if err := c.Release(vm); err != nil {
		t.Fatal(err)
	}
	if err := c.Reconfigure(vm, 4); err != ErrReleased {
		t.Fatalf("reconfigure after release err = %v", err)
	}
}

func TestHireValidation(t *testing.T) {
	_, c := newTestCloud(50)
	if _, err := c.Hire(-1, 0); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := c.Hire(7, 1); err == nil {
		t.Fatal("bad tier accepted")
	}
}

func TestCheapestTierWithCapacity(t *testing.T) {
	_, c := newTestCloud(50)
	if got := c.CheapestTierWithCapacity(16); got != 0 {
		t.Fatalf("cheapest = %d, want private", got)
	}
	for i := 0; i < 39; i++ {
		if _, err := c.Hire(0, 16); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CheapestTierWithCapacity(16); got != 1 {
		t.Fatalf("cheapest when private full = %d, want public", got)
	}
}

func TestUtilization(t *testing.T) {
	_, c := newTestCloud(50)
	if c.Utilization(0) != 0 {
		t.Fatal("empty utilization nonzero")
	}
	if _, err := c.Hire(0, 312); err != nil {
		t.Fatal(err)
	}
	if got := c.Utilization(0); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization = %v, want 0.5", got)
	}
	// Unbounded tiers report zero utilisation.
	if _, err := c.Hire(1, 1000); err != nil {
		t.Fatal(err)
	}
	if c.Utilization(1) != 0 {
		t.Fatal("unbounded tier utilization nonzero")
	}
}
