// Package cloud models the elastic, tiered cloud the SCAN scheduler hires
// workers from: a private tier with bounded capacity and cheap cores, and a
// public tier with effectively unbounded capacity at a higher price
// (Section IV-A's hybrid configuration). It tracks per-VM hire time and
// accrues cost at each tier's per-core-per-TU price, and charges the 30 s
// (0.5 TU) startup penalty on hires and reconfigurations, standing in for
// the CELAR middleware's provisioning behaviour.
package cloud

import (
	"errors"
	"fmt"
)

// Unbounded marks a tier without a capacity limit.
const Unbounded = -1

// Tier is one class of purchasable cores.
type Tier struct {
	Name           string
	PricePerCoreTU float64
	// Cores is the tier capacity in cores; Unbounded for public clouds.
	Cores int
}

// Clock supplies the current simulation time; satisfied by *sim.Engine.
type Clock interface {
	Now() float64
}

// VM is one hired worker machine.
type VM struct {
	ID    int
	Tier  int // index into the cloud's tier list
	Cores int
	// ReadyAt is when the machine finishes booting/reconfiguring.
	ReadyAt float64

	hiredAt  float64
	released bool
}

// Cloud tracks hired VMs and accrued cost.
type Cloud struct {
	clock   Clock
	tiers   []Tier
	startup float64

	nextID  int
	inUse   map[int]int // tier index -> cores currently hired
	vms     map[int]*VM
	settled float64 // cost of released VMs
}

// Errors returned by hire operations.
var (
	ErrNoCapacity = errors.New("cloud: no tier has sufficient free capacity")
	ErrReleased   = errors.New("cloud: VM already released")
)

// New returns a cloud with the given tiers (tried in order by Hire) and
// startup penalty in TU.
func New(clock Clock, startup float64, tiers ...Tier) *Cloud {
	return &Cloud{
		clock:   clock,
		tiers:   tiers,
		startup: startup,
		inUse:   make(map[int]int),
		vms:     make(map[int]*VM),
	}
}

// DefaultTiers returns the paper's hybrid configuration: a 624-core private
// tier at 5 CU/core/TU and an unbounded public tier at publicPrice.
func DefaultTiers(publicPrice float64) []Tier {
	return []Tier{
		{Name: "private", PricePerCoreTU: 5, Cores: 624},
		{Name: "public", PricePerCoreTU: publicPrice, Cores: Unbounded},
	}
}

// StartupDelay returns the configured boot/reconfigure penalty.
func (c *Cloud) StartupDelay() float64 { return c.startup }

// Tiers returns the tier table.
func (c *Cloud) Tiers() []Tier { return c.tiers }

// FreeCores reports the remaining capacity of tier i (a large sentinel for
// unbounded tiers).
func (c *Cloud) FreeCores(i int) int {
	t := c.tiers[i]
	if t.Cores == Unbounded {
		return 1 << 30
	}
	return t.Cores - c.inUse[i]
}

// CoresInUse reports the cores currently hired from tier i.
func (c *Cloud) CoresInUse(i int) int { return c.inUse[i] }

// ActiveVMs returns the number of currently hired machines.
func (c *Cloud) ActiveVMs() int { return len(c.vms) }

// Hire acquires a VM with the given core count from the first tier with
// free capacity, or from a specific tier when tier >= 0. The VM is billed
// from now and becomes ready after the startup delay.
func (c *Cloud) Hire(tier, cores int) (*VM, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("cloud: invalid core count %d", cores)
	}
	idx := -1
	if tier >= 0 {
		if tier >= len(c.tiers) {
			return nil, fmt.Errorf("cloud: no tier %d", tier)
		}
		if c.FreeCores(tier) >= cores {
			idx = tier
		}
	} else {
		for i := range c.tiers {
			if c.FreeCores(i) >= cores {
				idx = i
				break
			}
		}
	}
	if idx < 0 {
		return nil, ErrNoCapacity
	}
	now := c.clock.Now()
	vm := &VM{
		ID:      c.nextID,
		Tier:    idx,
		Cores:   cores,
		ReadyAt: now + c.startup,
		hiredAt: now,
	}
	c.nextID++
	c.inUse[idx] += cores
	c.vms[vm.ID] = vm
	return vm, nil
}

// CheapestTierWithCapacity returns the index of the lowest-price tier able
// to supply cores, or -1.
func (c *Cloud) CheapestTierWithCapacity(cores int) int {
	best, bestPrice := -1, 0.0
	for i, t := range c.tiers {
		if c.FreeCores(i) >= cores && (best < 0 || t.PricePerCoreTU < bestPrice) {
			best, bestPrice = i, t.PricePerCoreTU
		}
	}
	return best
}

// Release returns the VM's cores and settles its bill.
func (c *Cloud) Release(vm *VM) error {
	if vm.released {
		return ErrReleased
	}
	vm.released = true
	now := c.clock.Now()
	c.settled += c.vmCost(vm, now)
	c.inUse[vm.Tier] -= vm.Cores
	delete(c.vms, vm.ID)
	return nil
}

// Reconfigure resizes a running VM to newCores (the dynamic heterogeneous-
// worker configuration of Figure 5: CELAR shuts the worker down, adjusts
// its VCPUs, and restarts it). The VM becomes ready again after the startup
// penalty. Cost accrues at the new size from now; the old usage is settled.
func (c *Cloud) Reconfigure(vm *VM, newCores int) error {
	if vm.released {
		return ErrReleased
	}
	if newCores <= 0 {
		return fmt.Errorf("cloud: invalid core count %d", newCores)
	}
	delta := newCores - vm.Cores
	if delta > 0 && c.FreeCores(vm.Tier) < delta {
		return ErrNoCapacity
	}
	now := c.clock.Now()
	c.settled += c.vmCost(vm, now)
	c.inUse[vm.Tier] += delta
	vm.Cores = newCores
	vm.hiredAt = now
	vm.ReadyAt = now + c.startup
	return nil
}

// vmCost is the accrued cost of vm between its hire time and now.
func (c *Cloud) vmCost(vm *VM, now float64) float64 {
	dt := now - vm.hiredAt
	if dt < 0 {
		dt = 0
	}
	return dt * float64(vm.Cores) * c.tiers[vm.Tier].PricePerCoreTU
}

// Cost returns the total accrued cost: settled bills plus the running cost
// of currently hired VMs up to now.
func (c *Cloud) Cost() float64 {
	now := c.clock.Now()
	total := c.settled
	for _, vm := range c.vms {
		total += c.vmCost(vm, now)
	}
	return total
}

// Price returns tier i's per-core-TU price.
func (c *Cloud) Price(i int) float64 { return c.tiers[i].PricePerCoreTU }

// Utilization returns the fraction of tier i's capacity in use (0 for
// unbounded tiers).
func (c *Cloud) Utilization(i int) float64 {
	t := c.tiers[i]
	if t.Cores == Unbounded || t.Cores == 0 {
		return 0
	}
	return float64(c.inUse[i]) / float64(t.Cores)
}
