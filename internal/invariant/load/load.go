// Package load is the driver under cmd/scanvet and the invariant test
// harness: a minimal replacement for golang.org/x/tools/go/packages that
// loads, parses and typechecks Go packages, then runs go/analysis
// analyzers over them. It shells out to `go list -export` for package
// discovery and build-cache export data (so imports resolve without
// typechecking the whole dependency closure from source), which keeps the
// vendored x/tools surface down to go/analysis itself plus the inspector.
//
// The loader supports exactly what the invariant suite needs: non-test Go
// files, full types.Info, analyzer Requires resolution (the inspect pass),
// and positioned diagnostics. Facts are not supported — the suite's
// analyzers are all intraprocedural and per-package.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
	Sizes types.Sizes
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` over the patterns and returns
// every listed package, dependencies included.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,DepOnly,Incomplete,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&out)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// Packages loads and typechecks the packages matching the go list patterns,
// resolved relative to dir. Dependencies are consumed as export data, the
// matched packages themselves are parsed and typechecked from source.
func Packages(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var targets []*listedPackage
	for _, p := range listed {
		if p.Error != nil && !p.DepOnly {
			return nil, fmt.Errorf("package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}
	fset := token.NewFileSet()
	imp := exportDataImporter{
		base: importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := exports[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(f)
		}),
	}
	sizes := types.SizesFor("gc", runtime.GOARCH)
	var out []*Package
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, sizes, t)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// exportDataImporter resolves imports from build-cache export data, with
// the one special case the gc importer leaves to drivers.
type exportDataImporter struct{ base types.Importer }

func (i exportDataImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.base.Import(path)
}

// typecheck parses one listed package's non-test files and typechecks them.
func typecheck(fset *token.FileSet, imp types.Importer, sizes types.Sizes, p *listedPackage) (*Package, error) {
	if len(p.GoFiles) == 0 {
		return nil, fmt.Errorf("package %s: no Go files", p.ImportPath)
	}
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Sizes: sizes}
	pkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
		Sizes: sizes,
	}, nil
}

// Diagnostic is one analyzer finding, positioned and attributed.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes the analyzers (and their Requires closures) over every
// package and returns the combined findings sorted by position. Analyzer
// facts are not supported; an analyzer using them fails loudly.
func Run(pkgs []*Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	if err := analysis.Validate(analyzers); err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		results := make(map[*analysis.Analyzer]any)
		for _, a := range analyzers {
			if err := runAnalyzer(pkg, a, results, &diags); err != nil {
				return nil, err
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// runAnalyzer runs one analyzer over one package, memoizing results so a
// shared dependency (the inspect pass) runs once per package.
func runAnalyzer(pkg *Package, a *analysis.Analyzer, results map[*analysis.Analyzer]any, diags *[]Diagnostic) error {
	if _, done := results[a]; done {
		return nil
	}
	if len(a.FactTypes) > 0 {
		return fmt.Errorf("analyzer %s uses facts, which this driver does not support", a.Name)
	}
	for _, req := range a.Requires {
		if err := runAnalyzer(pkg, req, results, diags); err != nil {
			return err
		}
	}
	resultOf := make(map[*analysis.Analyzer]any, len(a.Requires))
	for _, req := range a.Requires {
		resultOf[req] = results[req]
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       pkg.Fset,
		Files:      pkg.Files,
		Pkg:        pkg.Pkg,
		TypesInfo:  pkg.Info,
		TypesSizes: pkg.Sizes,
		ResultOf:   resultOf,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, Diagnostic{
				Pos:      pkg.Fset.Position(d.Pos),
				Analyzer: a.Name,
				Message:  d.Message,
			})
		},
		ReadFile:          os.ReadFile,
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("analyzer %s on %s: %v", a.Name, pkg.Path, err)
	}
	if a.ResultType != nil && res != nil {
		// Trust the analyzer's declared contract; analysis.Validate already
		// checked the suite's wiring.
		results[a] = res
	} else {
		results[a] = res
	}
	return nil
}
