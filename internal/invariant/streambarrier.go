package invariant

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// StreamBarrier pins the engine's pipelined-vs-barrier equivalence
// contract: a streaming executor implements Execute *through* its stream
// (runStreamBarrier), so the barrier scheduler and the pipelined scheduler
// share one Split/Transform/Gather implementation and cannot drift. An
// executor that declares a Stream method but hand-rolls its Execute grows
// a second barrier code path — the exact silent break the ROADMAP warns
// about.
//
// Mechanical rule: for every type declaring a StreamingExecutor-shaped
// Stream method (three results, the middle one bool, the last one error),
// its Execute method body must contain a call to runStreamBarrier (or an
// exported RunStreamBarrier). Types with a Stream method and no Execute
// are not executors and are ignored.
var StreamBarrier = &analysis.Analyzer{
	Name:     "streambarrier",
	Doc:      "streaming executors must route Execute through runStreamBarrier",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      runStreamBarrierCheck,
}

func runStreamBarrierCheck(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	streaming := make(map[string]bool)         // receiver type name -> declares Stream
	executes := make(map[string]*ast.FuncDecl) // receiver type name -> Execute decl
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		recv := receiverTypeName(fd)
		if recv == "" || fd.Body == nil {
			return
		}
		switch fd.Name.Name {
		case "Stream":
			if streamShaped(pass, fd) {
				streaming[recv] = true
			}
		case "Execute":
			executes[recv] = fd
		}
	})
	for recv := range streaming {
		fd, ok := executes[recv]
		if !ok {
			continue // declares a stream but is not a StageExecutor
		}
		if !callsStreamBarrier(fd.Body) {
			pass.Reportf(fd.Pos(), "%s declares a Stream method but its Execute does not call runStreamBarrier: streaming executors must route Execute through the shared stream barrier (pipelined==barrier equivalence)", recv)
		}
	}
	return nil, nil
}

// streamShaped reports whether fd matches StreamingExecutor.Stream:
// func (T) Stream(...) (S, bool, error).
func streamShaped(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	sig, ok := pass.TypesInfo.TypeOf(fd.Name).(*types.Signature)
	if !ok || sig.Results().Len() != 3 {
		return false
	}
	mid, ok := sig.Results().At(1).Type().Underlying().(*types.Basic)
	if !ok || mid.Kind() != types.Bool {
		return false
	}
	last, ok := sig.Results().At(2).Type().(*types.Named)
	return ok && last.Obj().Name() == "error" && last.Obj().Pkg() == nil
}

// callsStreamBarrier reports whether body contains a call whose callee is
// named runStreamBarrier or RunStreamBarrier.
func callsStreamBarrier(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		if name == "runStreamBarrier" || name == "RunStreamBarrier" {
			found = true
			return false
		}
		return true
	})
	return found
}
