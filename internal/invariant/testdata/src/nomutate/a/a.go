package a

import (
	"context"
	"sort"
)

type Variant struct {
	Pos   int
	Depth float64
}

type Dataset struct {
	Variants []Variant
	Labels   map[string]string
	Raw      any
}

type executor struct{}

// Execute seeds the classic in-place mutations the zero-copy rule forbids.
func (executor) Execute(ctx context.Context, in *Dataset) (*Dataset, error) {
	for i := range in.Variants {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		in.Variants[i].Depth *= 2 // want `zero-copy invariant: writes through the executor's input`
	}
	vs := in.Variants
	vs[0] = Variant{} // want `zero-copy invariant: writes through the executor's input`
	sub := in.Variants[1:]
	sub[0].Pos = 9                                // want `zero-copy invariant: writes through the executor's input`
	sort.Slice(in.Variants, func(i, j int) bool { // want `zero-copy invariant: sorts the executor's input in place`
		return in.Variants[i].Pos < in.Variants[j].Pos
	})
	_ = append(in.Variants, Variant{}) // want `zero-copy invariant: append on the executor's input slice`
	return in, nil
}

type asserter struct{}

// Transform recovers the slice by type assertion: still input memory.
func (asserter) Transform(ctx context.Context, i int, in *Dataset) (*Dataset, error) {
	raw := in.Raw.([]float64)
	raw[0] = 0 // want `zero-copy invariant: writes through the executor's input`
	p := &in.Variants[0]
	p.Depth++ // want `zero-copy invariant: writes through the executor's input`
	return in, nil
}

type cleaner struct{}

// Execute shows the compliant idioms: shallow copy with rebound reference
// fields, fresh output slices, and sorting a copy.
func (cleaner) Execute(ctx context.Context, in *Dataset) (*Dataset, error) {
	out := *in
	out.Variants = make([]Variant, 0, len(in.Variants))
	for i, v := range in.Variants {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		v.Depth *= 2 // v is a value copy of the element: clean
		out.Variants = append(out.Variants, v)
	}
	sorted := make([]Variant, len(out.Variants))
	copy(sorted, out.Variants)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pos < sorted[j].Pos })
	out.Variants = sorted
	return &out, nil
}

// reshape is a helper, not an executor entry point: out of scope.
func reshape(in *Dataset) {
	for i := range in.Variants {
		in.Variants[i].Pos++
	}
}
